// Batch-buffer recycling: once the freelist is warm, the steady-state
// publish → seal → drain → take → recycle cycle must perform zero heap
// allocations — batch vectors circulate between the server's freelist and
// its producer slots instead of being malloc'd and freed per batch.
//
// Allocation counting is done by overriding the global allocation
// functions for this test binary (they only count; behaviour is
// unchanged). new[]/delete[] funnel through these two by default.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "test_alloc_count.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

// GCC pairs the malloc-backed replacement operator new below with the
// inlined operator delete and misreports a mismatch; both halves are ours
// and consistently use malloc/free.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Binary-wide counter (declared in test_alloc_count.hpp): other suites in
// this binary assert on it too, e.g. streaming-export memory bounds.
std::atomic<std::uint64_t> g_xsp_test_alloc_count{0};

void* operator new(std::size_t size) {
  g_xsp_test_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace xsp::trace {
namespace {

Span make_span(SpanId id, TimePoint t) {
  Span s;
  s.id = id;
  s.begin = t;
  s.end = t + 1;
  return s;
}

/// One full aggregation cycle: publish `batches` sealed batches' worth of
/// spans, take the trace, hand the buffers back.
template <typename Server>
void cycle(Server& server, std::size_t batches) {
  for (std::size_t i = 0; i < batches * TraceServer::kBatchCapacity; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  SpanBatches taken = server.take_batches();
  std::size_t total = 0;
  for (const auto& b : taken) total += b.size();
  ASSERT_EQ(total, batches * TraceServer::kBatchCapacity);
  server.recycle(std::move(taken));
}

TEST(BatchRecycling, SteadyStatePublishIsAllocationFree) {
  // kSync keeps the test single-threaded and deterministic: no collector
  // thread competes for batches, and the freelist try-lock always wins.
  TraceServer server(PublishMode::kSync);

  // Warm-up: registers the producer slot, grows the sealed/staging/outer
  // vectors, and fills the freelist.
  for (int round = 0; round < 3; ++round) cycle(server, 4);

  const std::uint64_t before = g_xsp_test_alloc_count.load(std::memory_order_relaxed);
  for (int round = 0; round < 4; ++round) cycle(server, 4);
  const std::uint64_t during = g_xsp_test_alloc_count.load(std::memory_order_relaxed) - before;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizer runtimes may allocate on their own; only require that the
  // cycle completes (the functional recycling checks are in `cycle`).
  (void)during;
#else
  EXPECT_EQ(during, 0u) << "steady-state publish/drain/take/recycle allocated";
#endif
}

TEST(BatchRecycling, RecycledBuffersAreActuallyReused) {
  TraceServer server(PublishMode::kSync);
  for (std::size_t i = 0; i < TraceServer::kBatchCapacity; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  SpanBatches taken = server.take_batches();
  ASSERT_FALSE(taken.empty());
  const Span* recycled_data = taken.front().data();
  server.recycle(std::move(taken));

  // The recycled buffer becomes the replacement active batch at the next
  // seal, so it shows up once two more batches have been sealed.
  for (std::size_t i = 0; i < 2 * TraceServer::kBatchCapacity; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  SpanBatches again = server.take_batches();
  ASSERT_FALSE(again.empty());
  bool reused = false;
  for (const auto& b : again) reused = reused || b.data() == recycled_data;
  EXPECT_TRUE(reused);
}

TEST(BatchRecycling, ShardedRecycleRefillsEveryShardFreelist) {
  // Round-robin distribution: after recycling 2N buffers into an N-shard
  // fleet, each shard can seal a batch without allocating a fresh vector.
  constexpr std::size_t kShards = 2;
  ShardedTraceServer server(kShards, PublishMode::kSync, ShardPolicy::kByTimeWindow, 1);
  // Window of 1ns: span at time t lands on shard t % kShards, letting one
  // thread feed both shards.
  for (std::size_t i = 0; i < 4 * TraceServer::kBatchCapacity * kShards; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i % kShards)));
  }
  SpanBatches taken = server.take_batches();
  ASSERT_GE(taken.size(), 2 * kShards);
  server.recycle(std::move(taken));
  for (std::size_t i = 0; i < kShards; ++i) {
    // Freelist contents are not directly observable; a second cycle that
    // completes and balances per-shard counts exercises the reuse path.
    EXPECT_EQ(server.shard(i).span_count(), 0u);
  }
  for (std::size_t i = 0; i < 2 * TraceServer::kBatchCapacity * kShards; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i % kShards)));
  }
  EXPECT_EQ(server.span_count(), 2 * TraceServer::kBatchCapacity * kShards);
}

}  // namespace
}  // namespace xsp::trace
