// Shared allocation counter for the trace test binary. The global
// operator new/delete replacements live in batch_recycling_test.cpp (one
// definition per binary); any test in this suite can read the counter to
// assert allocation behaviour — e.g. that streaming-export memory is
// independent of span count.
#pragma once

#include <atomic>
#include <cstdint>

extern std::atomic<std::uint64_t> g_xsp_test_alloc_count;
