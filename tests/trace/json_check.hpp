// Minimal validating JSON parser for exporter tests: the satellite tests
// must prove exporter output *parses*, not merely that substrings appear.
// Recursive descent over the full RFC 8259 grammar (objects, arrays,
// strings with escape validation, numbers, literals); no DOM is built.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace xsp::trace::testjson {

class Validator {
 public:
  explicit Validator(std::string_view s) : s_(s) {}

  /// True when the whole input is exactly one valid JSON value.
  bool validate(std::string* error = nullptr) {
    skip_ws();
    const bool ok = value() && (skip_ws(), pos_ == s_.size());
    if (!ok && error != nullptr) {
      *error = "JSON parse error near offset " + std::to_string(pos_) + ": '" +
               std::string(s_.substr(pos_, 24)) + "'";
    }
    return ok;
  }

 private:
  bool at_end() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool eat(char c) {
    if (at_end() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool value() {
    if (at_end()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string() {
    if (!eat('"')) return false;
    while (!at_end()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++pos_;
        if (at_end()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])) == 0) {
              return false;
            }
          }
          pos_ += 5;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' && e != 'r' &&
            e != 't') {
          return false;
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    if (at_end()) return false;
    if (eat('0')) {
    } else {
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

inline bool valid_json(std::string_view s, std::string* error = nullptr) {
  return Validator(s).validate(error);
}

/// Occurrences of a literal substring — e.g. counting "\"ph\":\"X\"" events.
inline std::size_t count_occurrences(std::string_view haystack, std::string_view needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string_view::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace xsp::trace::testjson
