// XSP binary wire format: round-trip fidelity against the JSON core,
// string-delta re-interning (including cross-process id remapping), the
// drain-subscriber seam, bounded writer memory, and — most of the file —
// hostile-input decoding: every malformed stream must be a clean
// WireError, never UB (this suite runs under the TSan and ASan+UBSan CI
// matrix).
#include "xsp/trace/wire.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "test_alloc_count.hpp"
#include "xsp/common/string_table.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/timeline.hpp"
#include "xsp/trace/trace_server.hpp"
#include "xsp/trace/tracer.hpp"

namespace xsp::trace {
namespace {

using testjson::valid_json;

// --- helpers ----------------------------------------------------------------

Span make_span(SpanId id, TimePoint t) {
  Span s;
  s.id = id;
  s.name = "wire_op";
  s.tracer = "wire_test";
  s.begin = t;
  s.end = t + 10;
  return s;
}

/// Deterministic pseudo-random spans (seeded LCG — no global rng state),
/// exercising every field: kinds, levels, parents, correlation ids, full
/// and empty tag/metric sets, negative-ish times, non-finite-free doubles.
SpanBatches random_batches(std::uint64_t seed, std::size_t span_count) {
  std::uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  const std::vector<StrId> names = {"conv2d_k", "gemm_k", "relu_k", "memcpy_HtoD", "bn_k"};
  const std::vector<StrId> tag_keys = {"kind", "grid", "block", "layer_type"};
  const std::vector<StrId> tag_vals = {"kernel", "[128,1,1]", "[256,1,1]", "Conv2D"};
  const std::vector<StrId> metric_keys = {"flop_count_sp", "dram_read_bytes", "occupancy"};
  SpanBatches batches;
  SpanBatch batch;
  for (std::size_t i = 0; i < span_count; ++i) {
    Span s;
    s.id = i + 1;
    s.parent = next() % 4 == 0 ? kNoSpan : (next() % (i + 1));
    s.level = static_cast<int>(next() % 5);
    s.kind = static_cast<SpanKind>(next() % 3);
    s.name = names[next() % names.size()];
    s.tracer = "rng_tracer";
    s.begin = static_cast<TimePoint>(next());
    s.end = s.begin + static_cast<Ns>(next() % 1000000);
    s.correlation_id = next() % 7 == 0 ? 0 : next();
    const std::size_t tags = next() % (tag_keys.size() + 1);
    for (std::size_t t = 0; t < tags; ++t) s.tags.set(tag_keys[t], tag_vals[next() % 4]);
    const std::size_t metrics = next() % (metric_keys.size() + 1);
    for (std::size_t m = 0; m < metrics; ++m) {
      s.metrics.set(metric_keys[m], static_cast<double>(next()) * 1.25 - 1e9);
    }
    if (next() % 3 == 0) {
      // Inline value tags: per-span unique bytes that ride inside the
      // record (wire v4) rather than the string table.
      char rid[InlineTagMap::kValueCapacity + 1];
      std::snprintf(rid, sizeof rid, "rv-%llu", static_cast<unsigned long long>(next()));
      s.inline_tags.set(tag_keys[0], rid);
    }
    s.dropped_annotations = next() % 16 == 0 ? 2 : 0;
    batch.push_back(s);
    if (batch.size() == TraceServer::kBatchCapacity) {
      batches.push_back(std::move(batch));
      batch = SpanBatch();
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

std::string encode(const SpanBatches& batches, const TraceMeta* meta = nullptr) {
  std::string out;
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  if (meta != nullptr) writer.set_meta(*meta);
  writer.write_batches(batches);
  writer.finish();
  return out;
}

/// Stream batches through the JSON core exactly as a drain subscriber
/// does — the reference bytes a decode-then-re-export must reproduce.
std::string to_json(const SpanBatches& batches, const TraceMeta* meta = nullptr) {
  std::string out;
  StreamingExporter exporter(
      ExportFormat::kSpanJson, [&out](std::string_view chunk) { out.append(chunk); },
      /*with_metadata=*/meta != nullptr);
  if (meta != nullptr) exporter.set_meta(*meta);
  exporter.write_batches(batches);
  exporter.finish();
  return out;
}

SpanBatches decode(const std::string& bytes, BinaryReader** out_reader = nullptr) {
  std::istringstream in(bytes);
  BinaryReader reader(in);
  SpanBatches batches = reader.read_all();
  if (out_reader != nullptr) *out_reader = nullptr;  // reader is local; see decode_checked
  return batches;
}

// --- raw stream builders (for hostile-input crafting) -----------------------

template <typename T>
void put_pod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

wire::Header valid_header() {
  wire::Header h{};
  std::memcpy(h.magic, wire::kMagic, sizeof h.magic);
  h.version = wire::kVersion;
  h.endianness = wire::kEndianMark;
  h.span_size = static_cast<std::uint32_t>(sizeof(Span));
  h.header_size = static_cast<std::uint32_t>(sizeof(wire::Header));
  return h;
}

std::string frame(wire::FrameType type, std::string_view payload,
                  std::int64_t lie_about_size = -1) {
  std::string out;
  wire::FrameHeader fh{};
  fh.type = static_cast<std::uint8_t>(type);
  fh.payload_size = lie_about_size >= 0 ? static_cast<std::uint32_t>(lie_about_size)
                                        : static_cast<std::uint32_t>(payload.size());
  put_pod(out, fh);
  out.append(payload);
  return out;
}

std::string delta_entry(std::uint32_t id, std::string_view s) {
  std::string out;
  put_pod(out, id);
  put_pod(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
  return out;
}

std::string span_batch_payload(const std::vector<Span>& spans) {
  std::string out;
  put_pod(out, static_cast<std::uint32_t>(spans.size()));
  out.append(reinterpret_cast<const char*>(spans.data()), spans.size() * sizeof(Span));
  return out;
}

std::string header_bytes() {
  std::string out;
  put_pod(out, valid_header());
  return out;
}

void expect_wire_error(const std::string& bytes, const char* needle) {
  std::istringstream in(bytes);
  try {
    BinaryReader reader(in);
    SpanBatch batch;
    while (reader.next_batch(batch)) {
    }
    FAIL() << "stream decoded cleanly; expected WireError containing \"" << needle << '"';
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

// --- round trip -------------------------------------------------------------

TEST(BinaryWire, RoundTripsSeededRandomBatchesToIdenticalJson) {
  for (const std::uint64_t seed : {1ull, 42ull, 20260808ull}) {
    const SpanBatches original = random_batches(seed, 1200);
    TraceMeta meta;
    meta.dropped_annotations = seed;
    meta.shard_count = 4;
    const std::string bytes = encode(original, &meta);

    std::istringstream in(bytes);
    BinaryReader reader(in);
    const SpanBatches decoded = reader.read_all();
    EXPECT_TRUE(reader.saw_footer());
    EXPECT_EQ(reader.spans_read(), 1200u);

    // Decoded spans re-export through the same JSON core to byte-identical
    // text: every field and every string survived the wire. (Same-process
    // decode re-interns to the same ids, making byte equality valid; the
    // cross-process remap path is pinned separately below.)
    const TraceMeta round_meta = reader.meta();
    EXPECT_EQ(to_json(decoded, &round_meta), to_json(original, &meta));
    EXPECT_TRUE(valid_json(to_json(decoded, &round_meta)));
  }
}

TEST(BinaryWire, DecodedBatchesFeedTimelineAssembly) {
  const SpanBatches original = random_batches(7, 600);
  const SpanBatches decoded = decode(encode(original));
  const Timeline a = Timeline::assemble(flatten_batches(original));
  const Timeline b = Timeline::assemble(flatten_batches(decoded));
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(to_span_json(a), to_span_json(b));
}

TEST(BinaryWire, FooterCarriesTelemetryAndByteAccounting) {
  TraceMeta meta;
  meta.dropped_annotations = 3;
  meta.shard_count = 8;
  meta.interned_strings = 1234;
  meta.interned_bytes = 56789;
  meta.live_slots = 2;
  meta.retired_slots = 40;
  meta.slot_bytes = 4096;
  meta.strtab_budget_bytes = 1 << 20;
  meta.rejected_interns = 99;
  const SpanBatches batches = {{make_span(1, 100), make_span(2, 200)}};
  const std::string bytes = encode(batches, &meta);

  std::istringstream in(bytes);
  BinaryReader reader(in);
  (void)reader.read_all();
  ASSERT_TRUE(reader.saw_footer());
  const wire::Footer& f = reader.footer();
  EXPECT_EQ(f.span_count, 2u);
  EXPECT_EQ(f.dropped_annotations, 3u);
  EXPECT_EQ(f.shard_count, 8u);
  EXPECT_EQ(f.interned_strings, 1234u);
  EXPECT_EQ(f.interned_bytes, 56789u);
  EXPECT_EQ(f.live_slots, 2u);
  EXPECT_EQ(f.retired_slots, 40u);
  EXPECT_EQ(f.slot_bytes, 4096u);
  EXPECT_EQ(f.strtab_budget_bytes, static_cast<std::uint64_t>(1 << 20));
  EXPECT_EQ(f.rejected_interns, 99u);
  // export_bytes counts everything before the footer frame.
  EXPECT_EQ(f.export_bytes, bytes.size() - sizeof(wire::FrameHeader) - sizeof(wire::Footer));
}

TEST(BinaryWire, WriterCountsSpansAndBytes) {
  std::string out;
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  writer.write_batch({make_span(1, 0), make_span(2, 10), make_span(3, 20)});
  writer.finish();
  EXPECT_EQ(writer.spans_written(), 3u);
  EXPECT_EQ(writer.bytes_written(), out.size());
  writer.finish();  // idempotent
  EXPECT_EQ(writer.bytes_written(), out.size());
}

TEST(BinaryWire, WriteAfterFinishIsDroppedInRelease) {
#ifdef NDEBUG
  std::string out;
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  writer.finish();
  const std::size_t finished_size = out.size();
  writer.write_batch({make_span(1, 0)});
  EXPECT_EQ(out.size(), finished_size);
  EXPECT_EQ(writer.spans_written(), 0u);
#else
  GTEST_SKIP() << "write-after-finish asserts in debug builds";
#endif
}

TEST(BinaryWire, LargeBatchSplitsIntoBoundedFrames) {
  SpanBatch big;
  for (std::size_t i = 0; i < wire::kMaxSpansPerFrame + 100; ++i) {
    big.push_back(make_span(i + 1, static_cast<TimePoint>(i)));
  }
  std::istringstream in(encode({big}));
  BinaryReader reader(in);
  SpanBatch out;
  std::vector<std::size_t> frame_sizes;
  while (reader.next_batch(out)) frame_sizes.push_back(out.size());
  ASSERT_EQ(frame_sizes.size(), 2u);
  EXPECT_EQ(frame_sizes[0], wire::kMaxSpansPerFrame);
  EXPECT_EQ(frame_sizes[1], 100u);
  EXPECT_EQ(reader.spans_read(), big.size());
}

TEST(BinaryWire, StreamingExporterRejectsBinaryFormat) {
  EXPECT_THROW(StreamingExporter(ExportFormat::kBinary,
                                 [](std::string_view) {}),
               std::invalid_argument);
  EXPECT_STREQ(export_format_name(ExportFormat::kBinary), "binary");
}

// --- string-delta semantics -------------------------------------------------

TEST(BinaryWire, DeltaShipsStringsInternedBetweenFlushes) {
  std::string out;
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  Span first = make_span(1, 0);
  first.name = "wire_delta_first_unique_xyzzy";
  writer.write_batch({first});
  const std::size_t after_first = out.size();

  // A string interned after the first flush must ride the second delta.
  Span second = make_span(2, 10);
  second.name = "wire_delta_second_unique_plugh";
  writer.write_batch({second});
  writer.finish();

  EXPECT_EQ(out.find("wire_delta_first_unique_xyzzy") != std::string::npos, true);
  EXPECT_NE(out.find("wire_delta_second_unique_plugh", after_first), std::string::npos);
  // ... and exactly once: string bytes ship once, not per span.
  EXPECT_EQ(testjson::count_occurrences(out, "wire_delta_first_unique_xyzzy"), 1u);

  const SpanBatches decoded = decode(out);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0][0].name, "wire_delta_first_unique_xyzzy");
  EXPECT_EQ(decoded[1][0].name, "wire_delta_second_unique_plugh");
}

TEST(BinaryWire, RemapsForeignProducerIdsThroughReintern) {
  // A cross-process stream: the producer's table assigned ids this
  // process's table never did. The reader must resolve spans through the
  // delta, not through raw id reuse.
  constexpr std::uint32_t kName = 0x00ABC120;
  constexpr std::uint32_t kTracer = 0x00ABC130;
  constexpr std::uint32_t kTagKey = 0x00ABC140;
  constexpr std::uint32_t kTagVal = 0x00ABC150;
  constexpr std::uint32_t kMetricKey = 0x00ABC160;
  std::string delta;
  delta += delta_entry(kName, "wire_remap_kernel_name");
  delta += delta_entry(kTracer, "wire_remap_tracer");
  delta += delta_entry(kTagKey, "wire_remap_tag_key");
  delta += delta_entry(kTagVal, "wire_remap_tag_val");
  delta += delta_entry(kMetricKey, "wire_remap_metric");

  Span s;
  s.id = 77;
  s.kind = SpanKind::kExecution;
  s.begin = 100;
  s.end = 200;
  s.name = StrId::from_raw(kName);
  s.tracer = StrId::from_raw(kTracer);
  s.tags.set(StrId::from_raw(kTagKey), StrId::from_raw(kTagVal));
  s.metrics.set(StrId::from_raw(kMetricKey), 2.5);

  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, delta);
  bytes += frame(wire::FrameType::kSpanBatch, span_batch_payload({s}));

  std::istringstream in(bytes);
  BinaryReader reader(in);
  const SpanBatches decoded = reader.read_all();
  EXPECT_FALSE(reader.saw_footer());  // no footer: clean truncation
  ASSERT_EQ(decoded.size(), 1u);
  const Span& d = decoded[0][0];
  EXPECT_EQ(d.name, "wire_remap_kernel_name");
  EXPECT_EQ(d.tracer, "wire_remap_tracer");
  EXPECT_EQ(d.tag_or("wire_remap_tag_key"), "wire_remap_tag_val");
  EXPECT_EQ(d.metric_or("wire_remap_metric", 0), 2.5);
  EXPECT_EQ(d.id, 77u);
  EXPECT_EQ(reader.strings_reinterned(), 5u);
}

TEST(BinaryWire, RepeatedDeltaEntryWithSameBytesIsIdempotent) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, delta_entry(500, "wire_idem"));
  bytes += frame(wire::FrameType::kStringDelta, delta_entry(500, "wire_idem"));
  std::istringstream in(bytes);
  BinaryReader reader(in);
  EXPECT_TRUE(reader.read_all().empty());
  EXPECT_EQ(reader.strings_reinterned(), 1u);
}

// --- drain-subscriber integration -------------------------------------------

TEST(BinaryWire, ConsumesShardedServerDrainAsSubscriber) {
  std::string out;
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  ShardedTraceServer server(4, PublishMode::kSync);
  const SubscriberId sub = server.add_drain_subscriber(
      [&writer](const SpanBatches& batches) { writer.write_batches(batches); },
      DrainHandoff::kConsume);
  constexpr std::size_t kPerThread = 700;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&server, t] {
      Tracer tracer(server, "wire_sub", kKernelLevel);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Span s = make_span(0, static_cast<TimePoint>(t * 1000000 + i));
        s.id = server.next_span_id();
        tracer.publish_completed(std::move(s));
      }
    });
  }
  for (auto& t : threads) t.join();
  server.flush();
  server.remove_drain_subscriber(sub);
  writer.finish();

  // kConsume: the writer took the spans; nothing left to take.
  EXPECT_TRUE(server.take_batches().empty());
  EXPECT_EQ(writer.spans_written(), 3 * kPerThread);
  std::istringstream in(out);
  BinaryReader reader(in);
  std::size_t total = 0;
  for (const SpanBatch& b : reader.read_all()) total += b.size();
  EXPECT_EQ(total, 3 * kPerThread);
  EXPECT_TRUE(reader.saw_footer());
}

// --- bounded memory ---------------------------------------------------------

std::uint64_t writer_allocations(std::size_t batches) {
  std::uint64_t bytes = 0;
  BinaryWriter writer([&bytes](std::string_view chunk) { bytes += chunk.size(); });
  SpanBatch batch;
  batch.reserve(TraceServer::kBatchCapacity);
  for (std::size_t i = 0; i < TraceServer::kBatchCapacity; ++i) {
    batch.push_back(make_span(i + 1, static_cast<TimePoint>(i)));
  }
  // Warm-up: the first flush ships the whole string table as one delta
  // and the sink buffer reaches steady state.
  for (int i = 0; i < 4; ++i) writer.write_batch(batch);

  const std::uint64_t before = g_xsp_test_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < batches; ++i) writer.write_batch(batch);
  const std::uint64_t during = g_xsp_test_alloc_count.load(std::memory_order_relaxed) - before;
  writer.finish();
  EXPECT_GT(bytes, batches * TraceServer::kBatchCapacity * sizeof(Span));  // it really wrote
  return during;
}

TEST(BinaryWire, WriterAllocationIsIndependentOfSpanCount) {
  const std::uint64_t small = writer_allocations(4);
  const std::uint64_t large = writer_allocations(256);  // 64x the spans
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  (void)small;
  (void)large;
#else
  EXPECT_EQ(small, large) << "writer memory must not scale with span count";
  EXPECT_EQ(large, 0u) << "steady-state binary streaming allocated";
#endif
}

// --- hostile input ----------------------------------------------------------

TEST(WireHostileInput, RejectsBadMagic) {
  wire::Header h = valid_header();
  h.magic[0] = 'J';
  std::string bytes;
  put_pod(bytes, h);
  expect_wire_error(bytes, "bad magic");
}

TEST(WireHostileInput, RejectsUnsupportedVersion) {
  wire::Header h = valid_header();
  h.version = static_cast<std::uint16_t>(wire::kVersion + 1);  // from the future
  std::string bytes;
  put_pod(bytes, h);
  expect_wire_error(bytes, "unsupported format version");
  h.version = 0;  // below kMinVersion
  bytes.clear();
  put_pod(bytes, h);
  expect_wire_error(bytes, "unsupported format version");
}

TEST(WireHostileInput, RejectsForeignEndianness) {
  wire::Header h = valid_header();
  h.endianness = 0xFFFE;  // byte-swapped kEndianMark
  std::string bytes;
  put_pod(bytes, h);
  expect_wire_error(bytes, "endianness");
}

TEST(WireHostileInput, RejectsMismatchedSpanSize) {
  wire::Header h = valid_header();
  h.span_size = static_cast<std::uint32_t>(sizeof(Span)) + 8;  // a future layout
  std::string bytes;
  put_pod(bytes, h);
  expect_wire_error(bytes, "span struct size mismatch");
}

TEST(WireHostileInput, RejectsBadHeaderSize) {
  wire::Header h = valid_header();
  h.header_size = 12;
  std::string bytes;
  put_pod(bytes, h);
  expect_wire_error(bytes, "bad header size");
}

TEST(WireHostileInput, RejectsTruncatedStreamHeader) {
  expect_wire_error(header_bytes().substr(0, 9), "truncated stream header");
  expect_wire_error("", "truncated stream header");
}

TEST(WireHostileInput, RejectsTruncatedFrameHeader) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kFooter, std::string(sizeof(wire::Footer), '\0'))
               .substr(0, 3);
  expect_wire_error(bytes, "truncated frame header");
}

TEST(WireHostileInput, RejectsOversizedFramePayloadLength) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, "",
                 /*lie_about_size=*/static_cast<std::int64_t>(wire::kMaxFramePayload) + 1);
  expect_wire_error(bytes, "exceeds the");
}

TEST(WireHostileInput, RejectsUnknownFrameType) {
  std::string bytes = header_bytes();
  bytes += frame(static_cast<wire::FrameType>(9), "abcd");
  expect_wire_error(bytes, "unknown frame type");
}

TEST(WireHostileInput, RejectsMidDeltaEof) {
  std::string bytes = header_bytes();
  // The frame header promises 100 payload bytes; the stream ends after 10.
  bytes += frame(wire::FrameType::kStringDelta, delta_entry(7, "ab"),
                 /*lie_about_size=*/100);
  expect_wire_error(bytes, "truncated string-delta payload");
}

TEST(WireHostileInput, RejectsTruncatedDeltaEntryHeader) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, std::string(5, '\x01'));
  expect_wire_error(bytes, "truncated string-delta entry header");
}

TEST(WireHostileInput, RejectsDeltaEntryLengthBeyondPayload) {
  std::string payload;
  put_pod(payload, std::uint32_t{42});
  put_pod(payload, std::uint32_t{1000});  // promises 1000 string bytes
  payload += "xy";                        // delivers 2
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, payload);
  expect_wire_error(bytes, "exceeds remaining payload");
}

TEST(WireHostileInput, RejectsDeltaRedefiningReservedIdZero) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, delta_entry(0, "not empty"));
  expect_wire_error(bytes, "reserved id 0");
}

TEST(WireHostileInput, RejectsDeltaRedefiningIdWithDifferentBytes) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta,
                 delta_entry(600, "wire_conflict_a") + delta_entry(600, "wire_conflict_b"));
  expect_wire_error(bytes, "redefined with different contents");
}

TEST(WireHostileInput, RejectsSpanBatchFrameSmallerThanItsCount) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, "ab");  // 2 bytes < sizeof(count)
  expect_wire_error(bytes, "too small");
}

TEST(WireHostileInput, RejectsSpanCountBeyondPerFrameBound) {
  std::string payload;
  put_pod(payload, static_cast<std::uint32_t>(wire::kMaxSpansPerFrame + 1));
  std::string bytes = header_bytes();
  // A consistent-looking payload_size, still within the frame cap.
  bytes += frame(wire::FrameType::kSpanBatch, payload,
                 /*lie_about_size=*/static_cast<std::int64_t>(
                     sizeof(std::uint32_t) + (wire::kMaxSpansPerFrame + 1) * sizeof(Span)));
  expect_wire_error(bytes, "exceeds the per-frame bound");
}

TEST(WireHostileInput, RejectsSpanCountPayloadSizeMismatch) {
  Span s = make_span(1, 0);
  std::string payload;
  put_pod(payload, std::uint32_t{2});  // claims two spans, carries one
  payload.append(reinterpret_cast<const char*>(&s), sizeof s);
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, payload);
  expect_wire_error(bytes, "does not match its span count");
}

TEST(WireHostileInput, RejectsTruncatedSpanPayload) {
  Span s = make_span(1, 0);
  std::string payload;
  put_pod(payload, std::uint32_t{1});
  payload.append(reinterpret_cast<const char*>(&s), sizeof s);
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, payload);
  bytes.resize(bytes.size() - 50);  // cut mid-span
  expect_wire_error(bytes, "truncated span-batch payload");
}

TEST(WireHostileInput, RejectsSpanWithUnknownStringId) {
  Span s = make_span(1, 0);
  s.name = StrId::from_raw(0x7FFFFFF0);  // no delta ever delivered this id
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, span_batch_payload({s}));
  expect_wire_error(bytes, "no delta delivered");
}

TEST(WireHostileInput, RejectsSpanWithOutOfRangeKind) {
  Span s;
  s.id = 1;
  s.begin = 0;
  s.end = 1;
  std::string payload = span_batch_payload({s});
  // Poke the kind byte inside the serialized span to an undefined value.
  payload[sizeof(std::uint32_t) + offsetof(Span, kind)] = 0x40;
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, payload);
  expect_wire_error(bytes, "bad span kind");
}

TEST(WireHostileInput, RejectsAnnotationCountBeyondCapacity) {
  // A FlatMap count_ past the inline capacity would make iteration read
  // out of bounds; the decoder must bounds-check it before any use.
  Span s;
  s.id = 1;
  s.begin = 0;
  s.end = 1;
  std::string payload = span_batch_payload({s});
  constexpr std::size_t kTagCountOffset =
      offsetof(Span, tags) + 2 * 6 * sizeof(StrId);  // keys[6] + values[6], then count_
  payload[sizeof(std::uint32_t) + kTagCountOffset] = 0x7F;
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, payload);
  expect_wire_error(bytes, "annotation count exceeds capacity");
}

TEST(WireHostileInput, RejectsBadFooterPayloadSize) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kFooter, std::string(sizeof(wire::Footer) - 8, '\0'));
  expect_wire_error(bytes, "footer payload length mismatch");
}

TEST(WireHostileInput, RejectsDataAfterFooter) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kFooter, std::string(sizeof(wire::Footer), '\0'));
  bytes += 'x';
  expect_wire_error(bytes, "data after footer");
}

TEST(WireHostileInput, ToleratesCleanEofBeforeFooter) {
  // A producer that died mid-export: every complete frame decodes, the
  // missing footer is reported via saw_footer(), no error.
  Span s = make_span(9, 0);
  std::string delta = delta_entry(s.name.raw(), "wire_op");
  delta += delta_entry(s.tracer.raw(), "wire_test");
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, delta);
  bytes += frame(wire::FrameType::kSpanBatch, span_batch_payload({s}));
  std::istringstream in(bytes);
  BinaryReader reader(in);
  const SpanBatches decoded = reader.read_all();
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0][0].id, 9u);
  EXPECT_FALSE(reader.saw_footer());
  EXPECT_EQ(reader.footer().span_count, 0u);  // zeros until a footer
}

// --- version compatibility (v1/v2 streams against the current reader) -------

std::string v1_header_bytes() {
  wire::Header h = valid_header();
  h.version = 1;
  std::string out;
  put_pod(out, h);
  return out;
}

TEST(WireVersionCompat, V1FooterDecodesAsPrefixWithZeroSampledFields) {
  // A v1 producer sends the 11-field footer; the v2 reader must accept it
  // and zero-fill the appended sampling fields.
  wire::Footer f{};
  f.span_count = 1;
  f.dropped_annotations = 7;
  f.shard_count = 3;
  f.remote_dropped_spans = 11;
  f.remote_reconnects = 2;
  Span s = make_span(5, 0);
  std::string delta = delta_entry(s.name.raw(), "wire_op");
  delta += delta_entry(s.tracer.raw(), "wire_test");
  std::string bytes = v1_header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, delta);
  bytes += frame(wire::FrameType::kSpanBatch, span_batch_payload({s}));
  bytes += frame(wire::FrameType::kFooter,
                 std::string(reinterpret_cast<const char*>(&f), wire::kFooterSizeV1));
  std::istringstream in(bytes);
  BinaryReader reader(in);
  const SpanBatches decoded = reader.read_all();
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(reader.stream_version(), 1u);
  ASSERT_TRUE(reader.saw_footer());
  EXPECT_EQ(reader.footer().span_count, 1u);
  EXPECT_EQ(reader.footer().dropped_annotations, 7u);
  EXPECT_EQ(reader.footer().remote_dropped_spans, 11u);
  EXPECT_EQ(reader.footer().sampled_kept, 0u);
  EXPECT_EQ(reader.footer().sampled_dropped, 0u);
  EXPECT_EQ(reader.meta().sampled_kept, 0u);
  EXPECT_EQ(reader.meta().sampled_dropped, 0u);
}

TEST(WireVersionCompat, V2FooterRoundTripsSampledCounters) {
  TraceMeta meta;
  meta.sampled_kept = 1234;
  meta.sampled_dropped = 8766;
  const SpanBatches batches = {{make_span(1, 100)}};
  const std::string bytes = encode(batches, &meta);
  std::istringstream in(bytes);
  BinaryReader reader(in);
  (void)reader.read_all();
  EXPECT_EQ(reader.stream_version(), wire::kVersion);
  ASSERT_TRUE(reader.saw_footer());
  EXPECT_EQ(reader.footer().sampled_kept, 1234u);
  EXPECT_EQ(reader.footer().sampled_dropped, 8766u);
  EXPECT_EQ(reader.meta().sampled_kept, 1234u);
  EXPECT_EQ(reader.meta().sampled_dropped, 8766u);
}

TEST(WireVersionCompat, RejectsV1SizedFooterOnV2Stream) {
  // A v2 header promises the 13-field footer; sending the 88-byte v1
  // payload is truncation, not compatibility.
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kFooter, std::string(wire::kFooterSizeV1, '\0'));
  expect_wire_error(bytes, "footer payload length mismatch");
}

TEST(WireVersionCompat, RejectsV2SizedFooterOnV1Stream) {
  std::string bytes = v1_header_bytes();
  bytes += frame(wire::FrameType::kFooter, std::string(sizeof(wire::Footer), '\0'));
  expect_wire_error(bytes, "footer payload length mismatch");
}

TEST(WireVersionCompat, RejectsOversizedV2Footer) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kFooter, std::string(sizeof(wire::Footer) + 8, '\0'));
  expect_wire_error(bytes, "footer payload length mismatch");
}

// --- wire v4 inline tags & legacy-record widening ---------------------------

std::string versioned_header_bytes(std::uint16_t version) {
  wire::Header h = valid_header();
  h.version = version;
  std::string out;
  put_pod(out, h);
  return out;
}

/// A v1–v3 producer's batch payload: each span truncated to the frozen
/// 200-byte legacy record (the field prefix up to inline_tags, zero-padded
/// to kLegacySpanSize).
std::string legacy_span_payload(const std::vector<Span>& spans) {
  std::string out;
  put_pod(out, static_cast<std::uint32_t>(spans.size()));
  for (const Span& s : spans) {
    char rec[wire::kLegacySpanSize] = {};
    std::memcpy(rec, &s, offsetof(Span, inline_tags));
    out.append(rec, sizeof rec);
  }
  return out;
}

std::string legacy_header_bytes(std::uint16_t version) {
  wire::Header h = valid_header();
  h.version = version;
  h.span_size = static_cast<std::uint32_t>(wire::kLegacySpanSize);
  std::string out;
  put_pod(out, h);
  return out;
}

TEST(WireInlineTags, RoundTripInlineValuesThroughWriterAndReader) {
  const StrId key{"request_id"};
  Span a = make_span(1, 0);
  a.inline_tags.set(key, "req-000041");
  Span b = make_span(2, 50);
  b.inline_tags.set(key, "req-000042");
  b.inline_tags.set(StrId{"grid"}, "[128,1,1]");

  std::istringstream in(encode({{a, b}}));
  BinaryReader reader(in);
  const SpanBatches decoded = reader.read_all();
  ASSERT_EQ(decoded.size(), 1u);
  ASSERT_EQ(decoded[0].size(), 2u);
  EXPECT_EQ(decoded[0][0].inline_tags.value_or(key), "req-000041");
  EXPECT_EQ(decoded[0][1].inline_tags.value_or(key), "req-000042");
  EXPECT_EQ(decoded[0][1].inline_tags.value_or(StrId{"grid"}), "[128,1,1]");
}

TEST(WireInlineTags, RemapsForeignKeysAndPassesValueBytesThrough) {
  // Cross-process: the key id remaps through the delta like any StrId;
  // the value bytes ride inside the record and must arrive untouched —
  // and must NOT intern into this process's table.
  constexpr std::uint32_t kName = 0x00DEF120;
  constexpr std::uint32_t kTracer = 0x00DEF130;
  constexpr std::uint32_t kInlineKey = 0x00DEF140;
  std::string delta;
  delta += delta_entry(kName, "wire_inline_span");
  delta += delta_entry(kTracer, "wire_inline_tracer");
  delta += delta_entry(kInlineKey, "wire_inline_key");

  Span s;
  s.id = 42;
  s.begin = 0;
  s.end = 1;
  s.name = StrId::from_raw(kName);
  s.tracer = StrId::from_raw(kTracer);
  s.inline_tags.set(StrId::from_raw(kInlineKey), "unique-value-9001");

  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kStringDelta, delta);
  bytes += frame(wire::FrameType::kSpanBatch, span_batch_payload({s}));

  const std::size_t interned_before = common::StringTable::global().size();
  std::istringstream in(bytes);
  BinaryReader reader(in);
  const SpanBatches decoded = reader.read_all();
  ASSERT_EQ(decoded.size(), 1u);
  const Span& d = decoded[0][0];
  EXPECT_EQ(d.name, "wire_inline_span");
  EXPECT_EQ(d.inline_tags.value_or(StrId{"wire_inline_key"}), "unique-value-9001");
  // The three delta strings re-intern (idempotently); the value does not.
  EXPECT_EQ(common::StringTable::global().str(
                common::StringTable::global().intern("wire_inline_key")),
            "wire_inline_key");
  EXPECT_LE(common::StringTable::global().size(), interned_before + 3);
}

TEST(WireInlineTags, RejectsInlineTagCountBeyondCapacity) {
  Span s;
  s.id = 1;
  s.begin = 0;
  s.end = 1;
  std::string payload = span_batch_payload({s});
  // The inline-tag map's count is its trailing std::uint32_t.
  constexpr std::size_t kCountOffset =
      offsetof(Span, inline_tags) + sizeof(InlineTagMap) - sizeof(std::uint32_t);
  payload[sizeof(std::uint32_t) + kCountOffset] = 0x7F;
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, payload);
  expect_wire_error(bytes, "annotation count exceeds capacity");
}

TEST(WireVersionCompat, LegacySpanRecordsWidenWithEmptyInlineTags) {
  // Every pre-v4 version: 200-byte records decode field-for-field, the
  // appended inline-tag map comes back empty.
  for (const std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}, std::uint16_t{3}}) {
    Span s = make_span(21, 50);
    s.tags.set(StrId{"legacy_key"}, StrId{"legacy_val"});
    s.dropped_annotations = 9;
    std::string delta = delta_entry(s.name.raw(), "wire_op");
    delta += delta_entry(s.tracer.raw(), "wire_test");
    delta += delta_entry(StrId{"legacy_key"}.raw(), "legacy_key");
    delta += delta_entry(StrId{"legacy_val"}.raw(), "legacy_val");
    std::string bytes = legacy_header_bytes(version);
    bytes += frame(wire::FrameType::kStringDelta, delta);
    bytes += frame(wire::FrameType::kSpanBatch, legacy_span_payload({s}));

    std::istringstream in(bytes);
    BinaryReader reader(in);
    const SpanBatches decoded = reader.read_all();
    ASSERT_EQ(decoded.size(), 1u) << "v" << version;
    const Span& d = decoded[0][0];
    EXPECT_EQ(d.id, 21u);
    EXPECT_EQ(d.begin, 50);
    EXPECT_EQ(d.name, "wire_op");
    EXPECT_EQ(d.tag_or("legacy_key"), "legacy_val");
    EXPECT_EQ(d.dropped_annotations, 9u);
    EXPECT_TRUE(d.inline_tags.empty());
    EXPECT_EQ(reader.spans_read(), 1u);
  }
}

TEST(WireVersionCompat, LegacyRecordWideningDoesNotLeakRecycledInlineTags) {
  // The same reader decodes a v4-shaped batch (inline tags present) and
  // then widened legacy records must not inherit the recycled buffer's
  // tags. Two readers share one SpanBatch via next_batch.
  Span modern = make_span(3, 0);
  modern.inline_tags.set(StrId{"grid"}, "[64,1,1]");
  SpanBatch out;
  {
    std::istringstream in(encode({{modern}}));
    BinaryReader reader(in);
    ASSERT_TRUE(reader.next_batch(out));
    EXPECT_FALSE(out[0].inline_tags.empty());
  }
  Span legacy = make_span(4, 10);
  std::string bytes = legacy_header_bytes(3);
  bytes += frame(wire::FrameType::kStringDelta,
                 delta_entry(legacy.name.raw(), "wire_op") +
                     delta_entry(legacy.tracer.raw(), "wire_test"));
  bytes += frame(wire::FrameType::kSpanBatch, legacy_span_payload({legacy}));
  std::istringstream in(bytes);
  BinaryReader reader(in);
  ASSERT_TRUE(reader.next_batch(out));
  EXPECT_TRUE(out[0].inline_tags.empty()) << "stale inline tags leaked through widening";
}

TEST(WireVersionCompat, RejectsLegacySpanSizeOnV4Stream) {
  // v4 promised the widened record; the legacy size on a v4 header is a
  // layout mismatch, not compatibility.
  wire::Header h = valid_header();
  h.span_size = static_cast<std::uint32_t>(wire::kLegacySpanSize);
  std::string bytes;
  put_pod(bytes, h);
  expect_wire_error(bytes, "span struct size mismatch");
}

TEST(WireVersionCompat, ModernSpanSizeAcceptedOnPreV4Streams) {
  // A rebuilt v3 producer may already carry the widened record; the
  // header's span_size, not the version, drives batch decode.
  Span s = make_span(6, 0);
  s.inline_tags.set(StrId{"grid"}, "[32,1,1]");
  std::string delta = delta_entry(s.name.raw(), "wire_op");
  delta += delta_entry(s.tracer.raw(), "wire_test");
  delta += delta_entry(StrId{"grid"}.raw(), "grid");
  std::string bytes = versioned_header_bytes(3);
  bytes += frame(wire::FrameType::kStringDelta, delta);
  bytes += frame(wire::FrameType::kSpanBatch, span_batch_payload({s}));
  std::istringstream in(bytes);
  BinaryReader reader(in);
  const SpanBatches decoded = reader.read_all();
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0][0].inline_tags.value_or(StrId{"grid"}), "[32,1,1]");
}

TEST(WireVersionCompat, FooterSizeFollowsStreamVersion) {
  // v1 → 88-byte prefix, v2/v3 → 104, v4 → the full 120-byte struct; the
  // strtab fields zero-fill on pre-v4 streams.
  EXPECT_EQ(wire::footer_size(1), wire::kFooterSizeV1);
  EXPECT_EQ(wire::footer_size(2), wire::kFooterSizeV2);
  EXPECT_EQ(wire::footer_size(3), wire::kFooterSizeV2);
  EXPECT_EQ(wire::footer_size(4), sizeof(wire::Footer));

  for (const std::uint16_t version : {std::uint16_t{2}, std::uint16_t{3}}) {
    wire::Footer f{};
    f.span_count = 0;
    f.sampled_kept = 5;
    std::string bytes = versioned_header_bytes(version);
    bytes += frame(wire::FrameType::kFooter,
                   std::string(reinterpret_cast<const char*>(&f), wire::kFooterSizeV2));
    std::istringstream in(bytes);
    BinaryReader reader(in);
    (void)reader.read_all();
    ASSERT_TRUE(reader.saw_footer()) << "v" << version;
    EXPECT_EQ(reader.footer().sampled_kept, 5u);
    EXPECT_EQ(reader.footer().strtab_budget_bytes, 0u);
    EXPECT_EQ(reader.footer().rejected_interns, 0u);
  }
}

TEST(WireVersionCompat, RejectsFullFooterOnV3Stream) {
  std::string bytes = versioned_header_bytes(3);
  bytes += frame(wire::FrameType::kFooter, std::string(sizeof(wire::Footer), '\0'));
  expect_wire_error(bytes, "footer payload length mismatch");
}

TEST(WireVersionCompat, RejectsV2SizedFooterOnV4Stream) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kFooter, std::string(wire::kFooterSizeV2, '\0'));
  expect_wire_error(bytes, "footer payload length mismatch");
}

// --- wire v3 heartbeats -----------------------------------------------------

wire::Heartbeat sample_heartbeat(std::uint64_t seq) {
  wire::Heartbeat hb{};
  hb.sequence = seq;
  hb.spans_published = 1000 + seq;
  hb.spans_sent = 900 + seq;
  hb.spans_dropped = 50 + seq;
  hb.spans_shed = 25 + seq;
  hb.sampled_kept = 800 + seq;
  hb.sampled_dropped = 200 + seq;
  hb.reconnects = seq;
  hb.outbox_spans = 7;
  return hb;
}

std::string heartbeat_frame(const wire::Heartbeat& hb) {
  std::string payload;
  put_pod(payload, hb);
  return frame(wire::FrameType::kHeartbeat, payload);
}

TEST(WireHeartbeat, RoundTripsThroughWriterAndReaderLatestWins) {
  std::string out;
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  writer.write_batch({make_span(1, 0)});
  writer.write_heartbeat(sample_heartbeat(1));
  writer.write_batch({make_span(2, 10)});
  writer.write_heartbeat(sample_heartbeat(2));
  writer.finish();

  std::istringstream in(out);
  BinaryReader reader(in);
  const SpanBatches decoded = reader.read_all();
  EXPECT_EQ(reader.spans_read(), 2u);
  EXPECT_TRUE(reader.saw_footer());
  EXPECT_EQ(reader.heartbeats_seen(), 2u);
  const wire::Heartbeat& hb = reader.last_heartbeat();
  EXPECT_EQ(hb.sequence, 2u);
  EXPECT_EQ(hb.spans_published, 1002u);
  EXPECT_EQ(hb.spans_sent, 902u);
  EXPECT_EQ(hb.spans_dropped, 52u);
  EXPECT_EQ(hb.spans_shed, 27u);
  EXPECT_EQ(hb.sampled_kept, 802u);
  EXPECT_EQ(hb.sampled_dropped, 202u);
  EXPECT_EQ(hb.reconnects, 2u);
  EXPECT_EQ(hb.outbox_spans, 7u);
  // Heartbeats are telemetry, not data: span decode is unaffected.
  std::size_t total = 0;
  for (const SpanBatch& b : decoded) total += b.size();
  EXPECT_EQ(total, 2u);
}

TEST(WireHeartbeat, WriterFlushesEachHeartbeatPromptly) {
  // A buffered heartbeat measures nothing: the frame must be visible at
  // the sink immediately after write_heartbeat returns.
  std::string out;
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  writer.write_heartbeat(sample_heartbeat(1));
  // Stream header (written lazily with the first frame) + the heartbeat.
  EXPECT_EQ(out.size(),
            sizeof(wire::Header) + sizeof(wire::FrameHeader) + sizeof(wire::Heartbeat));
  writer.finish();
  writer.write_heartbeat(sample_heartbeat(2));  // dropped after finish
  std::istringstream in(out);
  BinaryReader reader(in);
  (void)reader.read_all();
  EXPECT_EQ(reader.heartbeats_seen(), 1u);
}

TEST(WireHeartbeat, PreV3StreamsDecodeWithZeroHeartbeats) {
  // The compat half of the matrix: v1 and v2 streams (no heartbeat
  // frames) decode exactly as before, reporting zero heartbeats.
  for (const std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    Span s = make_span(4, 0);
    std::string delta = delta_entry(s.name.raw(), "wire_op");
    delta += delta_entry(s.tracer.raw(), "wire_test");
    std::string bytes = versioned_header_bytes(version);
    bytes += frame(wire::FrameType::kStringDelta, delta);
    bytes += frame(wire::FrameType::kSpanBatch, span_batch_payload({s}));
    std::istringstream in(bytes);
    BinaryReader reader(in);
    const SpanBatches decoded = reader.read_all();
    ASSERT_EQ(decoded.size(), 1u) << "v" << version;
    EXPECT_EQ(reader.stream_version(), version);
    EXPECT_EQ(reader.heartbeats_seen(), 0u);
    EXPECT_EQ(reader.last_heartbeat().sequence, 0u);
  }
}

TEST(WireHeartbeat, RejectsHeartbeatFrameInPreV3Stream) {
  // A heartbeat frame in a stream whose header claims v1/v2 is a protocol
  // violation, not a silently tolerated extension.
  for (const std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    std::string bytes = versioned_header_bytes(version);
    bytes += heartbeat_frame(sample_heartbeat(1));
    expect_wire_error(bytes, "heartbeats require v3");
  }
}

TEST(WireHeartbeat, RejectsUndersizedHeartbeatPayload) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kHeartbeat,
                 std::string(sizeof(wire::Heartbeat) - 8, '\0'));
  expect_wire_error(bytes, "heartbeat payload length");
}

TEST(WireHeartbeat, RejectsOversizedHeartbeatPayload) {
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kHeartbeat,
                 std::string(sizeof(wire::Heartbeat) + 8, '\0'));
  expect_wire_error(bytes, "heartbeat payload length");
}

TEST(WireHeartbeat, RejectsMidHeartbeatEof) {
  // The frame header promises a full heartbeat; the stream ends after 10
  // payload bytes.
  std::string bytes = header_bytes();
  std::string payload;
  put_pod(payload, sample_heartbeat(1));
  bytes += frame(wire::FrameType::kHeartbeat, payload.substr(0, 10),
                 /*lie_about_size=*/static_cast<std::int64_t>(sizeof(wire::Heartbeat)));
  expect_wire_error(bytes, "truncated heartbeat payload");
}

TEST(WireHostileInput, HeaderOnlyStreamDecodesEmpty) {
  std::istringstream in(header_bytes());
  BinaryReader reader(in);
  EXPECT_TRUE(reader.read_all().empty());
  EXPECT_FALSE(reader.saw_footer());
  EXPECT_EQ(reader.spans_read(), 0u);
}

TEST(WireHostileInput, EmptySpanBatchFrameIsLegal) {
  std::string payload;
  put_pod(payload, std::uint32_t{0});
  std::string bytes = header_bytes();
  bytes += frame(wire::FrameType::kSpanBatch, payload);
  bytes += frame(wire::FrameType::kFooter, std::string(sizeof(wire::Footer), '\0'));
  std::istringstream in(bytes);
  BinaryReader reader(in);
  EXPECT_TRUE(reader.read_all().empty());
  EXPECT_TRUE(reader.saw_footer());
}

}  // namespace
}  // namespace xsp::trace
