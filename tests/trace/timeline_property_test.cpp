// Property tests: randomized nested traces checked against a brute-force
// parent-assignment oracle, and structural invariants of assembly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "xsp/common/rng.hpp"
#include "xsp/trace/timeline.hpp"

namespace xsp::trace {
namespace {

/// Generate a random strictly-nested trace: the model span covers
/// disjoint layer spans, each covering disjoint kernel spans.
std::vector<Span> random_nested_trace(std::uint64_t seed, int layers, int kernels_per_layer) {
  SplitMix64 rng(seed);
  std::vector<Span> spans;
  SpanId next_id = 1;

  Span model;
  model.id = next_id++;
  model.level = kModelLevel;
  model.name = "Predict";
  model.begin = 0;

  TimePoint t = 10;
  for (int l = 0; l < layers; ++l) {
    Span layer;
    layer.id = next_id++;
    layer.level = kLayerLevel;
    layer.name = "layer_" + std::to_string(l);
    layer.begin = t;
    TimePoint kt = t + 1 + static_cast<TimePoint>(rng.below(5));
    for (int k = 0; k < kernels_per_layer; ++k) {
      Span kernel;
      kernel.id = next_id++;
      kernel.level = kKernelLevel;
      kernel.name = "kernel_" + std::to_string(l) + "_" + std::to_string(k);
      kernel.begin = kt;
      kernel.end = kt + 1 + static_cast<TimePoint>(rng.below(50));
      kt = kernel.end + 1 + static_cast<TimePoint>(rng.below(5));
      spans.push_back(kernel);
    }
    layer.end = kt + static_cast<TimePoint>(rng.below(5));
    t = layer.end + 1 + static_cast<TimePoint>(rng.below(10));
    spans.push_back(layer);
  }
  model.end = t + 5;
  spans.push_back(model);
  return spans;
}

/// Brute-force oracle: smallest enclosing span at the nearest lower level
/// that has any spans (mirroring assembly's absent-level fall-through).
std::map<SpanId, SpanId> oracle_parents(const std::vector<Span>& spans) {
  std::map<SpanId, SpanId> parents;
  std::map<int, int> level_counts;
  for (const auto& s : spans) level_counts[s.level] += 1;

  for (const auto& child : spans) {
    int parent_level = child.level - 1;
    while (parent_level >= kApplicationLevel && level_counts[parent_level] == 0) {
      --parent_level;
    }
    SpanId best = kNoSpan;
    Ns best_len = 0;
    for (const auto& cand : spans) {
      if (cand.level != parent_level) continue;
      if (cand.begin <= child.begin && cand.end >= child.end) {
        if (best == kNoSpan || cand.duration() < best_len) {
          best = cand.id;
          best_len = cand.duration();
        }
      }
    }
    parents[child.id] = best;
  }
  return parents;
}

class TimelineRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineRandomized, MatchesBruteForceOracle) {
  const auto spans = random_nested_trace(GetParam(), 20, 4);
  const auto expected = oracle_parents(spans);
  const auto tl = Timeline::assemble(spans);
  ASSERT_EQ(tl.size(), spans.size());
  for (const auto& s : spans) {
    EXPECT_EQ(tl.node(s.id).parent, expected.at(s.id)) << s.name;
  }
  EXPECT_EQ(tl.ambiguous_count(), 0u);
}

TEST_P(TimelineRandomized, EveryNodeReachableExactlyOnceFromRoots) {
  const auto spans = random_nested_trace(GetParam(), 15, 3);
  const auto tl = Timeline::assemble(spans);
  std::map<SpanId, int> visits;
  tl.walk([&](const TimelineNode& n, int) { visits[n.span.id] += 1; });
  EXPECT_EQ(visits.size(), spans.size());
  for (const auto& [id, count] : visits) {
    EXPECT_EQ(count, 1) << "span " << id;
  }
}

TEST_P(TimelineRandomized, ChildrenIntervalsWithinParent) {
  const auto spans = random_nested_trace(GetParam(), 15, 3);
  const auto tl = Timeline::assemble(spans);
  tl.walk([&](const TimelineNode& n, int) {
    for (const SpanId c : n.children) {
      const auto& child = tl.node(c).span;
      EXPECT_GE(child.begin, n.span.begin);
      EXPECT_LE(child.end, n.span.end);
    }
  });
}

TEST_P(TimelineRandomized, ChildrenSortedByBeginTime) {
  const auto spans = random_nested_trace(GetParam(), 15, 3);
  const auto tl = Timeline::assemble(spans);
  tl.walk([&](const TimelineNode& n, int) {
    for (std::size_t i = 1; i < n.children.size(); ++i) {
      EXPECT_LE(tl.node(n.children[i - 1]).span.begin, tl.node(n.children[i]).span.begin);
    }
  });
}

TEST_P(TimelineRandomized, ShuffledPublicationOrderIsIrrelevant) {
  auto spans = random_nested_trace(GetParam(), 12, 3);
  const auto reference = Timeline::assemble(spans);
  SplitMix64 rng(GetParam() ^ 0xABCDEF);
  for (std::size_t i = spans.size(); i > 1; --i) {
    std::swap(spans[i - 1], spans[rng.below(i)]);
  }
  const auto shuffled = Timeline::assemble(spans);
  ASSERT_EQ(shuffled.size(), reference.size());
  reference.walk([&](const TimelineNode& n, int) {
    EXPECT_EQ(shuffled.node(n.span.id).parent, n.parent) << n.span.name;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineRandomized,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u));

}  // namespace
}  // namespace xsp::trace
