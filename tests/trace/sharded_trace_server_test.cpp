// Shard routing, id uniqueness, and merge-equivalence tests for
// ShardedTraceServer: a multi-shard fleet must behave observably like one
// server — same spans in, same assembled timeline out — while routing
// publication across independent shards.
#include "xsp/trace/sharded_trace_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "xsp/trace/timeline.hpp"
#include "xsp/trace/tracer.hpp"

namespace xsp::trace {
namespace {

Span make_span(SpanId id, TimePoint begin, TimePoint end, int level = kModelLevel) {
  Span s;
  s.id = id;
  s.begin = begin;
  s.end = end;
  s.level = level;
  return s;
}

TEST(ShardedTraceServer, DefaultsToHardwareShardCountCapped) {
  ShardedTraceServer server(0, PublishMode::kSync);
  EXPECT_GE(server.shard_count(), 1u);
  EXPECT_LE(server.shard_count(), 8u);
  EXPECT_EQ(ShardedTraceServer(3, PublishMode::kSync).shard_count(), 3u);
}

TEST(ShardedTraceServer, IdsAreUniqueAcrossShardsAndThreads) {
  // Each shard stripes the id-block sequence; ids drawn by many threads
  // (hashing to different shards) must never collide and never be kNoSpan.
  ShardedTraceServer server(4, PublishMode::kSync);
  constexpr int kThreads = 8;
  constexpr int kIdsPerThread = 5000;  // several blocks per thread

  std::vector<std::vector<SpanId>> per_thread(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, &ids = per_thread[t]] {
      ids.reserve(kIdsPerThread);
      for (int i = 0; i < kIdsPerThread; ++i) ids.push_back(server.next_span_id());
    });
  }
  for (auto& w : workers) w.join();

  std::unordered_set<SpanId> seen;
  seen.reserve(kThreads * kIdsPerThread);
  for (const auto& ids : per_thread) {
    for (const SpanId id : ids) {
      EXPECT_NE(id, kNoSpan);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate span id " << id;
    }
  }
}

TEST(ShardedTraceServer, IdStripesAreDisjointPerShard) {
  // Directly check the stripe arithmetic: block numbers of shard i of N
  // are ≡ i (mod N).
  ShardedTraceServer server(3, PublishMode::kSync);
  for (std::size_t i = 0; i < server.shard_count(); ++i) {
    const SpanId first = server.shard(i).next_span_id();
    const std::uint64_t block = (first - 1) / TraceServer::kIdBlockSize;
    EXPECT_EQ(block % server.shard_count(), i);
    EXPECT_EQ((first - 1) % TraceServer::kIdBlockSize, 0u);
  }
}

TEST(ShardedTraceServer, ByThreadRoutingSticksToOneShard) {
  ShardedTraceServer server(4, PublishMode::kSync, ShardPolicy::kByThread);
  const std::size_t mine = server.shard_for_current_thread();
  for (int i = 0; i < 50; ++i) {
    server.publish(make_span(server.next_span_id(), i, i + 1));
  }
  for (std::size_t i = 0; i < server.shard_count(); ++i) {
    EXPECT_EQ(server.shard(i).span_count(), i == mine ? 50u : 0u);
  }
}

TEST(ShardedTraceServer, ByTracerRoutingGroupsSpansByTracer) {
  ShardedTraceServer server(4, PublishMode::kSync, ShardPolicy::kByTracer);
  const StrId tracers[] = {"cupti", "framework_profiler", "model_timer"};
  for (const StrId tracer : tracers) {
    Span probe;
    probe.tracer = tracer;
    const std::size_t expected = server.shard_for(probe);
    const std::size_t before = server.shard(expected).span_count();
    for (int i = 0; i < 10; ++i) {
      Span s = make_span(server.next_span_id(), i, i + 1);
      s.tracer = tracer;
      server.publish(std::move(s));
    }
    EXPECT_EQ(server.shard(expected).span_count(), before + 10);
  }
  EXPECT_EQ(server.span_count(), 30u);
}

TEST(ShardedTraceServer, ByTimeWindowRoutingSlicesTheTimeline) {
  constexpr Ns kWindow = 1000;
  ShardedTraceServer server(2, PublishMode::kSync, ShardPolicy::kByTimeWindow, kWindow);
  // Window w lands on shard w % 2: [0,1000) -> 0, [1000,2000) -> 1, ...
  for (int w = 0; w < 4; ++w) {
    server.publish(make_span(server.next_span_id(), w * kWindow + 10, w * kWindow + 20));
  }
  EXPECT_EQ(server.shard(0).span_count(), 2u);
  EXPECT_EQ(server.shard(1).span_count(), 2u);
}

/// Structural fingerprint of an assembled timeline, ignoring span ids
/// (different servers assign different ids for the same logical spans).
std::vector<std::tuple<TimePoint, TimePoint, int, int>> walk_shape(const Timeline& tl) {
  std::vector<std::tuple<TimePoint, TimePoint, int, int>> shape;
  tl.walk([&](const TimelineNode& n, int depth) {
    shape.emplace_back(n.span.begin, n.span.end, n.span.level, depth);
  });
  return shape;
}

TEST(ShardedTraceServer, MergedAssemblyEqualsSingleServerAssembly) {
  // The same logical spans (a model span, two layers, kernels inside them)
  // published to a single server and to a 3-shard fleet must assemble to
  // identical hierarchies — merge order must not matter.
  const auto publish_all = [](SpanSink& sink) {
    sink.publish(make_span(sink.next_span_id(), 0, 1000, kModelLevel));
    sink.publish(make_span(sink.next_span_id(), 100, 400, kLayerLevel));
    sink.publish(make_span(sink.next_span_id(), 500, 900, kLayerLevel));
    sink.publish(make_span(sink.next_span_id(), 150, 250, kKernelLevel));
    sink.publish(make_span(sink.next_span_id(), 550, 650, kKernelLevel));
    sink.publish(make_span(sink.next_span_id(), 700, 800, kKernelLevel));
  };

  TraceServer single(PublishMode::kSync);
  publish_all(single);
  const Timeline single_tl = Timeline::assemble(single.take_batches());

  // kByTimeWindow with a narrow window scatters the spans across shards,
  // exercising a merge where one hierarchy spans all three shards.
  ShardedTraceServer sharded(3, PublishMode::kSync, ShardPolicy::kByTimeWindow, 200);
  publish_all(sharded);
  const Timeline sharded_tl = Timeline::assemble(sharded.take_batches());

  ASSERT_EQ(single_tl.size(), sharded_tl.size());
  EXPECT_EQ(single_tl.roots().size(), sharded_tl.roots().size());
  EXPECT_EQ(single_tl.ambiguous_count(), sharded_tl.ambiguous_count());
  EXPECT_EQ(walk_shape(single_tl), walk_shape(sharded_tl));
}

TEST(ShardedTraceServer, DroppedAnnotationsSumAcrossShards) {
  ShardedTraceServer server(2, PublishMode::kSync, ShardPolicy::kByTimeWindow, 100);
  for (int w = 0; w < 4; ++w) {
    Span s = make_span(server.next_span_id(), w * 100, w * 100 + 50);
    s.dropped_annotations = 3;
    server.publish(std::move(s));
  }
  EXPECT_EQ(server.dropped_annotation_count(), 12u);
  EXPECT_GT(server.shard(0).dropped_annotation_count(), 0u);
  EXPECT_GT(server.shard(1).dropped_annotation_count(), 0u);
  // Taking the trace resets the aggregate along with the spans.
  (void)server.take_batches();
  EXPECT_EQ(server.dropped_annotation_count(), 0u);
}

TEST(ShardedTraceServerStress, NThreadsTimesMShardsLoseNothing) {
  // N tracer threads publish through a ShardedTraceServer in async mode;
  // every span must be aggregated exactly once across the fleet.
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 4000;

  ShardedTraceServer server(4, PublishMode::kAsync);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server, t] {
      Tracer tracer(server, t % 2 == 0 ? "cupti" : "framework_profiler",
                    t % 2 == 0 ? kKernelLevel : kLayerLevel);
      for (int i = 0; i < kSpansPerThread; ++i) {
        const TimePoint begin = static_cast<TimePoint>(t) * 1000000 + i * 10;
        const SpanId id = tracer.start_span("volta_scudnn_128x64_relu", begin);
        tracer.add_tag(id, "kind", "kernel");
        tracer.finish_span(id, begin + 9);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(kThreads) * kSpansPerThread);

  std::unordered_set<SpanId> ids;
  ids.reserve(trace.size());
  for (const auto& s : trace) {
    EXPECT_NE(s.id, kNoSpan);
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
  }
}

TEST(ShardedTraceServerStress, TakesRacingShardedPublishersLoseNothing) {
  // The drain/take race, fleet edition: a taker repeatedly merges all
  // shards while producers publish across them.
  constexpr int kProducers = 4;
  constexpr int kSpansPerProducer = 10000;

  ShardedTraceServer server(2, PublishMode::kAsync);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> taken_total{0};

  std::thread taker([&] {
    while (!done.load(std::memory_order_acquire)) {
      taken_total.fetch_add(server.take_trace().size(), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&server] {
      for (int i = 0; i < kSpansPerProducer; ++i) {
        server.publish(make_span(server.next_span_id(), i, i + 1));
      }
    });
  }
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_release);
  taker.join();

  taken_total.fetch_add(server.take_trace().size(), std::memory_order_relaxed);
  EXPECT_EQ(taken_total.load(), static_cast<std::size_t>(kProducers) * kSpansPerProducer);
}

}  // namespace
}  // namespace xsp::trace
