#include "xsp/trace/tracer.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <utility>

#include "xsp/trace/trace_server.hpp"

namespace xsp::trace {
namespace {

TEST(Tracer, StartFinishPublishesOneSpan) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "model_timer", kModelLevel);
  const SpanId id = tracer.start_span("Predict", us(5));
  tracer.finish_span(id, us(105));

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].name, "Predict");
  EXPECT_EQ(trace[0].tracer, "model_timer");
  EXPECT_EQ(trace[0].level, kModelLevel);
  EXPECT_EQ(trace[0].begin, us(5));
  EXPECT_EQ(trace[0].end, us(105));
}

TEST(Tracer, DisabledTracerDropsSpans) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "t", kLayerLevel);
  tracer.set_enabled(false);
  const SpanId id = tracer.start_span("x", 0);
  EXPECT_EQ(id, kNoSpan);
  tracer.finish_span(id, 10);  // no-op, no crash
  EXPECT_EQ(server.span_count(), 0u);

  Span completed;
  completed.name = "offline";
  EXPECT_EQ(tracer.publish_completed(completed), kNoSpan);
  EXPECT_EQ(server.span_count(), 0u);
}

TEST(Tracer, ReEnablingRestoresPublication) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "t", kLayerLevel);
  tracer.set_enabled(false);
  tracer.set_enabled(true);
  const SpanId id = tracer.start_span("y", 0);
  tracer.finish_span(id, 1);
  EXPECT_EQ(server.span_count(), 1u);
}

TEST(Tracer, TagsAndMetricsAttach) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "gpu", kKernelLevel);
  const SpanId id = tracer.start_span("kernel", 0);
  tracer.add_tag(id, "grid", "[4,1,1]");
  tracer.add_metric(id, "flop_count_sp", 1e9);
  tracer.set_correlation(id, 77);
  tracer.finish_span(id, 100);

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].tags.at("grid"), "[4,1,1]");
  EXPECT_DOUBLE_EQ(trace[0].metrics.at("flop_count_sp"), 1e9);
  EXPECT_EQ(trace[0].correlation_id, 77u);
}

TEST(Tracer, ExplicitParentIsKept) {
  TraceServer server(PublishMode::kSync);
  Tracer model(server, "m", kModelLevel);
  Tracer layer(server, "l", kLayerLevel);
  const SpanId parent = model.start_span("Predict", 0);
  const SpanId child = layer.start_span("conv0", 1, parent);
  layer.finish_span(child, 5);
  model.finish_span(parent, 10);

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 2u);
  // conv0 was finished (and published) first.
  EXPECT_EQ(trace[0].name, "conv0");
  EXPECT_EQ(trace[0].parent, parent);
}

TEST(Tracer, PublishCompletedStampsTracerAndLevel) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "cupti", kKernelLevel);
  Span offline;
  offline.name = "volta_sgemm";
  offline.level = kModelLevel;  // wrong on purpose; must be overwritten
  const SpanId id = tracer.publish_completed(offline);
  EXPECT_NE(id, kNoSpan);

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].level, kKernelLevel);
  EXPECT_EQ(trace[0].tracer, "cupti");
  EXPECT_EQ(trace[0].id, id);
}

TEST(Tracer, OpenCountTracksUnfinishedSpans) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "t", kModelLevel);
  const SpanId a = tracer.start_span("a", 0);
  const SpanId b = tracer.start_span("b", 0);
  EXPECT_EQ(tracer.open_count(), 2u);
  tracer.finish_span(a, 1);
  EXPECT_EQ(tracer.open_count(), 1u);
  tracer.finish_span(b, 1);
  EXPECT_EQ(tracer.open_count(), 0u);
}

TEST(Tracer, AnnotationOverflowIsCountedNotSilent) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "gpu", kKernelLevel);
  const SpanId id = tracer.start_span("kernel", 0);
  for (int i = 0; i < static_cast<int>(TagMap::capacity()) + 2; ++i) {
    tracer.add_tag(id, "tag_" + std::to_string(i), "v");
  }
  tracer.finish_span(id, 10);

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].tags.size(), TagMap::capacity());
  EXPECT_EQ(trace[0].dropped_annotations, 2u);
}

TEST(Tracer, ScopedSpanFinishesOnDestruction) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "t", kModelLevel);
  TimePoint now = 0;
  {
    ScopedSpan scoped(tracer, "scoped", [&now] { return now; });
    now = us(50);
  }
  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].end, us(50));
}

TEST(Tracer, MovedFromScopedSpanDoesNotDoubleFinish) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "t", kModelLevel);
  TimePoint now = 0;
  auto now_fn = [&now] { return now; };
  // optional forces a real move construction (a factory `return` could be
  // elided by NRVO) and lets the moved-from object die first.
  std::optional<ScopedSpan<decltype(now_fn)>> moved_to;
  {
    ScopedSpan inner(tracer, "factory", now_fn);
    moved_to.emplace(std::move(inner));
    now = us(10);
    // inner's destructor runs here, at 10us — it must finish nothing.
  }
  EXPECT_EQ(tracer.open_count(), 1u);
  now = us(20);
  moved_to.reset();
  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u) << "span finished once, not per ScopedSpan object";
  // Finished by the moved-to span at 20us, not by the moved-from at 10us.
  EXPECT_EQ(trace[0].end, us(20));
  EXPECT_EQ(tracer.open_count(), 0u);
}

}  // namespace
}  // namespace xsp::trace
