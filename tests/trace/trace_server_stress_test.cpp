// Lifecycle and concurrency regression tests for the batched TraceServer.
//
// These pin the contracts the batched publication path must keep:
//   * kSync never spawns a collector thread,
//   * spans sitting in producer batches are never dropped — not by thread
//     exit, not by destruction, not by a take racing the collector,
//   * N tracers publishing simultaneously yield a complete, id-unique
//     trace after flush (paper Section III-A: the server "aggregates the
//     spans published by the different tracers into one trace").
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "xsp/trace/trace_server.hpp"
#include "xsp/trace/tracer.hpp"

namespace xsp::trace {
namespace {

TEST(TraceServerLifecycle, SyncModeSpawnsNoCollectorThread) {
  TraceServer sync_server(PublishMode::kSync);
  EXPECT_FALSE(sync_server.has_collector());

  TraceServer async_server(PublishMode::kAsync);
  EXPECT_TRUE(async_server.has_collector());
}

TEST(TraceServerLifecycle, SpansFromExitedThreadsSurvive) {
  // A producer thread seals batches and exits with a partial batch still
  // in its slot; the next take must see every span.
  TraceServer server(PublishMode::kAsync);
  constexpr std::size_t kSpans = TraceServer::kBatchCapacity * 3 + 17;
  std::thread producer([&server] {
    for (std::size_t i = 0; i < kSpans; ++i) {
      Span s;
      s.id = server.next_span_id();
      s.begin = static_cast<TimePoint>(i);
      s.end = static_cast<TimePoint>(i + 1);
      server.publish(std::move(s));
    }
  });
  producer.join();
  EXPECT_EQ(server.take_trace().size(), kSpans);
}

TEST(TraceServerLifecycle, TakeWithoutExplicitFlushIsComplete) {
  // take_trace()/take_batches() imply a flush: partial batches included.
  TraceServer server(PublishMode::kSync);
  constexpr std::size_t kSpans = TraceServer::kBatchCapacity + 1;
  for (std::size_t i = 0; i < kSpans; ++i) {
    Span s;
    s.id = server.next_span_id();
    server.publish(std::move(s));
  }
  auto batches = server.take_batches();
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  EXPECT_EQ(total, kSpans);
  EXPECT_EQ(server.span_count(), 0u);
}

TEST(TraceServerLifecycle, DestructionWithQueuedSpansDoesNotHang) {
  // Queued = sealed batches the collector has not yet taken plus a partial
  // active batch. Destruction must join the collector and finish cleanly.
  auto server = std::make_unique<TraceServer>(PublishMode::kAsync);
  for (std::size_t i = 0; i < TraceServer::kBatchCapacity * 2 + 5; ++i) {
    Span s;
    s.id = server->next_span_id();
    server->publish(std::move(s));
  }
  server.reset();
  SUCCEED();
}

TEST(TraceServerStress, ConcurrentTracersFlushCompleteIdUniqueTrace) {
  // N tracers (one per simulated profiler) publish span batches
  // simultaneously; the aggregated trace contains every span exactly once.
  constexpr int kTracers = 8;
  constexpr int kSpansPerTracer = 4000;

  TraceServer server(PublishMode::kAsync);
  std::vector<std::thread> workers;
  workers.reserve(kTracers);
  for (int t = 0; t < kTracers; ++t) {
    workers.emplace_back([&server, t] {
      Tracer tracer(server, t % 2 == 0 ? "cupti" : "framework_profiler",
                    t % 2 == 0 ? kKernelLevel : kLayerLevel);
      for (int i = 0; i < kSpansPerTracer; ++i) {
        const TimePoint begin = static_cast<TimePoint>(t) * 1000000 + i * 10;
        const SpanId id = tracer.start_span("volta_scudnn_128x64_relu", begin);
        tracer.add_tag(id, "kind", "kernel");
        tracer.add_metric(id, "flop_count_sp", 1e9);
        tracer.finish_span(id, begin + 9);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(kTracers) * kSpansPerTracer);

  std::unordered_set<SpanId> ids;
  ids.reserve(trace.size());
  for (const auto& s : trace) {
    EXPECT_NE(s.id, kNoSpan);
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
    EXPECT_EQ(s.duration(), 9);
    EXPECT_EQ(s.tags.at("kind"), "kernel");
  }
}

TEST(TraceServerStress, TakesRacingPublishersLoseNothing) {
  // Regression for the drain/take race: a taker repeatedly steals the
  // trace while producers publish; total spans across every take plus the
  // final take must equal everything published.
  constexpr int kProducers = 4;
  constexpr int kSpansPerProducer = 20000;

  TraceServer server(PublishMode::kAsync);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> taken_total{0};

  std::thread taker([&] {
    while (!done.load(std::memory_order_acquire)) {
      taken_total.fetch_add(server.take_trace().size(), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&server] {
      for (int i = 0; i < kSpansPerProducer; ++i) {
        Span s;
        s.id = server.next_span_id();
        server.publish(std::move(s));
      }
    });
  }
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_release);
  taker.join();

  taken_total.fetch_add(server.take_trace().size(), std::memory_order_relaxed);
  EXPECT_EQ(taken_total.load(), static_cast<std::size_t>(kProducers) * kSpansPerProducer);
}

}  // namespace
}  // namespace xsp::trace
