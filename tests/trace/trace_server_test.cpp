#include "xsp/trace/trace_server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace xsp::trace {
namespace {

Span make_span(SpanId id, TimePoint begin, TimePoint end) {
  Span s;
  s.id = id;
  s.begin = begin;
  s.end = end;
  return s;
}

TEST(TraceServer, SyncPublishAggregates) {
  TraceServer server(PublishMode::kSync);
  server.publish(make_span(server.next_span_id(), 0, 10));
  server.publish(make_span(server.next_span_id(), 10, 20));
  EXPECT_EQ(server.span_count(), 2u);
}

TEST(TraceServer, AsyncPublishAggregatesAfterFlush) {
  TraceServer server(PublishMode::kAsync);
  for (int i = 0; i < 100; ++i) {
    server.publish(make_span(server.next_span_id(), i, i + 1));
  }
  server.flush();
  EXPECT_EQ(server.span_count(), 100u);
}

TEST(TraceServer, IdsAreUniqueAndNonZero) {
  TraceServer server(PublishMode::kSync);
  std::vector<SpanId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(server.next_span_id());
  std::sort(ids.begin(), ids.end());
  EXPECT_NE(ids.front(), kNoSpan);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(TraceServer, CorrelationIdsAreUnique) {
  TraceServer server(PublishMode::kSync);
  const auto a = server.next_correlation_id();
  const auto b = server.next_correlation_id();
  EXPECT_NE(a, b);
}

TEST(TraceServer, TakeTraceDrainsAndResets) {
  TraceServer server(PublishMode::kSync);
  server.publish(make_span(server.next_span_id(), 0, 5));
  auto trace = server.take_trace();
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(server.span_count(), 0u);
}

TEST(TraceServer, ConcurrentPublishersLoseNothing) {
  // Multiple tracers publish concurrently (CPU + GPU tracers coexist);
  // the server must aggregate every span exactly once.
  TraceServer server(PublishMode::kAsync);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&server] {
      for (int i = 0; i < kPerThread; ++i) {
        Span s;
        s.id = server.next_span_id();
        server.publish(std::move(s));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(server.span_count(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(TraceServer, DroppedAnnotationsAggregateAtAggregationTime) {
  TraceServer server(PublishMode::kSync);
  EXPECT_EQ(server.dropped_annotation_count(), 0u);
  Span a = make_span(server.next_span_id(), 0, 10);
  a.dropped_annotations = 2;
  Span b = make_span(server.next_span_id(), 10, 20);
  b.dropped_annotations = 5;
  server.publish(std::move(a));
  server.publish(std::move(b));
  server.publish(make_span(server.next_span_id(), 20, 30));  // lossless span
  EXPECT_EQ(server.dropped_annotation_count(), 7u);
  // Taking the trace starts the next run's count from zero.
  (void)server.take_batches();
  EXPECT_EQ(server.dropped_annotation_count(), 0u);
}

TEST(TraceServer, IdStripesProduceDisjointIds) {
  // Two striped servers (shard 0 and 1 of 2) must never hand out the same
  // id, even across many blocks.
  TraceServer even(PublishMode::kSync, IdStripe{0, 2});
  TraceServer odd(PublishMode::kSync, IdStripe{1, 2});
  std::vector<SpanId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(even.next_span_id());
    ids.push_back(odd.next_span_id());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_NE(ids.front(), kNoSpan);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(TraceServer, DestructionWithQueuedSpansIsClean) {
  // No hang or crash when a server with pending async work is destroyed.
  auto server = std::make_unique<TraceServer>(PublishMode::kAsync);
  for (int i = 0; i < 10; ++i) {
    Span s;
    s.id = server->next_span_id();
    server->publish(std::move(s));
  }
  server.reset();
  SUCCEED();
}

}  // namespace
}  // namespace xsp::trace
