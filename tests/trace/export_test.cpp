#include "xsp/trace/export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "json_check.hpp"

namespace xsp::trace {
namespace {

using testjson::valid_json;

Timeline sample_timeline() {
  std::vector<Span> spans;
  Span model;
  model.id = 1;
  model.level = kModelLevel;
  model.name = "Model Prediction";
  model.tracer = "model_timer";
  model.begin = 0;
  model.end = ms(10);
  spans.push_back(model);

  Span layer;
  layer.id = 2;
  layer.level = kLayerLevel;
  layer.name = "conv2d/Conv2D";
  layer.begin = us(100);
  layer.end = us(900);
  layer.tags.set("layer_type", "Conv2D");
  layer.metrics.set("alloc_bytes", 1024);
  spans.push_back(layer);
  return Timeline::assemble(spans);
}

TEST(Export, ChromeTraceHasCompleteEvents) {
  const auto json = to_chrome_trace(sample_timeline());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Model Prediction\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"conv2d/Conv2D\""), std::string::npos);
  // Duration of the model span: 10 ms = 10000 us.
  EXPECT_NE(json.find("\"dur\":10000"), std::string::npos);
}

TEST(Export, ChromeTraceNamesLevelTracks) {
  const auto json = to_chrome_trace(sample_timeline());
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"gpu_kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"layer\""), std::string::npos);
}

TEST(Export, ArgsCarryTagsAndMetrics) {
  const auto json = to_chrome_trace(sample_timeline());
  EXPECT_NE(json.find("\"layer_type\":\"Conv2D\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc_bytes\":1024"), std::string::npos);
}

TEST(Export, SpanJsonRoundTripsStructure) {
  const auto json = to_span_json(sample_timeline());
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);  // layer -> model
  EXPECT_NE(json.find("\"begin_ns\":100000"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"regular\""), std::string::npos);
}

TEST(Export, EscapesSpecialCharacters) {
  std::vector<Span> spans;
  Span s;
  s.id = 1;
  s.level = kKernelLevel;
  s.name = "Eigen::TensorCwiseBinaryOp<scalar_max_op<float>, \"quoted\">\n";
  s.begin = 0;
  s.end = 1;
  spans.push_back(s);
  const auto json = to_chrome_trace(Timeline::assemble(spans));
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // no raw newlines
}

TEST(Export, SpanJsonWithMetaWrapsSpansAndSurfacesTelemetry) {
  TraceMeta meta;
  meta.dropped_annotations = 7;
  meta.shard_count = 4;
  meta.interned_strings = 123;
  meta.interned_bytes = 4567;
  meta.live_slots = 3;
  meta.retired_slots = 9999;
  meta.slot_bytes = 151 * 1024;
  meta.remote_dropped_spans = 42;
  meta.remote_reconnects = 2;
  meta.sampled_kept = 750;
  meta.sampled_dropped = 250;
  meta.strtab_budget_bytes = 1 << 20;
  meta.rejected_interns = 31;
  const auto json = to_span_json(sample_timeline(), meta);
  // Metadata lives in the footer — the streaming layout, where telemetry
  // totals are only final after the last span has been written.
  EXPECT_EQ(json.find("{\"spans\":[{"), 0u);
  EXPECT_NE(json.find("\"metadata\":{\"dropped_annotations\":7,\"shard_count\":4,"
                      "\"interned_strings\":123,\"interned_bytes\":4567,"
                      "\"live_slots\":3,\"retired_slots\":9999,\"slot_bytes\":154624,"
                      "\"remote_dropped_spans\":42,\"remote_reconnects\":2,"
                      "\"sampled_kept\":750,\"sampled_dropped\":250,"
                      "\"strtab_budget_bytes\":1048576,\"rejected_interns\":31,"
                      "\"span_count\":2,\"export_format\":\"span_json\","
                      "\"export_bytes\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_TRUE(valid_json(json));
}

TEST(Export, EmptyTimelineIsValidJson) {
  const auto chrome = to_chrome_trace(Timeline::assemble(std::vector<Span>{}));
  EXPECT_EQ(chrome.find("\"ph\":\"X\""), std::string::npos);
  // Regression: the pre-streaming exporter emitted "[,{" for an empty
  // timeline (track-name events always comma-prefixed).
  EXPECT_TRUE(valid_json(chrome));
  EXPECT_EQ(to_span_json(Timeline::assemble(std::vector<Span>{})), "[]");
}

// --- timestamp/metric precision regressions --------------------------------

TEST(Export, ChromeTimestampsStayExactPastOneSecond) {
  // > 1 s of trace: 6-significant-digit double streaming (the old path)
  // rounded 2500123.456 us to 2.50012e+06, snapping spans off their true
  // positions by up to a millisecond.
  std::vector<Span> spans;
  Span s;
  s.id = 1;
  s.level = kKernelLevel;
  s.name = "late_kernel";
  s.begin = 2'500'123'456;          // ns -> ts 2500123.456 us, exactly
  s.end = s.begin + 1'000'001;      // -> dur 1000.001 us, exactly
  spans.push_back(s);
  const auto json = to_chrome_trace(Timeline::assemble(spans));
  EXPECT_NE(json.find("\"ts\":2500123.456,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":1000.001,"), std::string::npos) << json;
  EXPECT_EQ(json.find("e+"), std::string::npos) << "timestamps must be fixed-point";
  EXPECT_TRUE(valid_json(json));
}

TEST(Export, ChromeTimestampsTrimTrailingZeros) {
  std::vector<Span> spans;
  Span s;
  s.id = 1;
  s.name = "k";
  s.begin = 1'500;  // 1.5 us
  s.end = 3'500;    // dur 2 us exactly
  spans.push_back(s);
  const auto json = to_chrome_trace(Timeline::assemble(spans));
  EXPECT_NE(json.find("\"ts\":1.5,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2,"), std::string::npos) << json;
}

TEST(Export, LargeIntegerMetricsPrintExactly) {
  // Byte/flop counters: the old "%.6g" collapsed 1099511627776 to
  // 1.09951e+12. Integers up to 2^53 must print exactly.
  std::vector<Span> spans;
  Span s;
  s.id = 1;
  s.name = "kernel";
  s.begin = 0;
  s.end = 1;
  s.metrics.set("dram_read_bytes", 1099511627776.0);              // 2^40
  s.metrics.set("flop_count_sp", 9007199254740992.0);             // 2^53
  s.metrics.set("achieved_occupancy", 0.125);
  spans.push_back(s);
  const auto json = to_span_json(Timeline::assemble(spans));
  EXPECT_NE(json.find("\"dram_read_bytes\":1099511627776"), std::string::npos) << json;
  EXPECT_NE(json.find("\"flop_count_sp\":9007199254740992"), std::string::npos) << json;
  EXPECT_NE(json.find("\"achieved_occupancy\":0.125"), std::string::npos) << json;
  EXPECT_TRUE(valid_json(json));
}

TEST(Export, NonIntegralMetricsRoundTrip) {
  std::vector<Span> spans;
  Span s;
  s.id = 1;
  s.name = "kernel";
  s.begin = 0;
  s.end = 1;
  const double third = 1.0 / 3.0;
  s.metrics.set("ratio", third);
  s.metrics.set("nan_metric", std::nan(""));
  s.metrics.set("neg_zero", -0.0);
  spans.push_back(s);
  const auto json = to_span_json(Timeline::assemble(spans));
  // Shortest-round-trip printing: parsing the emitted text recovers the
  // exact double.
  const auto pos = json.find("\"ratio\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(std::stod(json.substr(pos + 8)), third);
  EXPECT_NE(json.find("\"nan_metric\":null"), std::string::npos);
  EXPECT_NE(json.find("\"neg_zero\":-0"), std::string::npos);  // sign round-trips
  EXPECT_TRUE(valid_json(json));
}

TEST(Export, EscapingEdgeCasesSurviveARealJsonParse) {
  std::vector<Span> spans;
  Span s;
  s.id = 1;
  s.level = kKernelLevel;
  s.name = "name with \"quotes\" and \\backslashes\\";
  s.begin = 0;
  s.end = 1;
  s.tags.set("crlf", "line1\r\nline2");
  s.tags.set("del", std::string("before\x7f") + "after");
  s.tags.set("utf8", "µs → 畳み込み");  // multi-byte UTF-8 passes through raw
  s.tags.set("controls", std::string("\x01\x1f\b\f", 4));
  spans.push_back(s);
  for (const auto& json : {to_chrome_trace(Timeline::assemble(spans)),
                           to_span_json(Timeline::assemble(spans))}) {
    std::string error;
    EXPECT_TRUE(valid_json(json, &error)) << error << "\n" << json;
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(json.find("\\\\backslashes\\\\"), std::string::npos);
    EXPECT_NE(json.find("line1\\r\\nline2"), std::string::npos);
    EXPECT_NE(json.find("before\\u007fafter"), std::string::npos);
    EXPECT_NE(json.find("µs → 畳み込み"), std::string::npos);
    EXPECT_NE(json.find("\\u0001\\u001f\\b\\f"), std::string::npos);
    // No raw control bytes anywhere in the document.
    for (const char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
}

TEST(Export, AllExporterOutputsParseAsJson) {
  const auto timeline = sample_timeline();
  std::string error;
  EXPECT_TRUE(valid_json(to_chrome_trace(timeline), &error)) << error;
  EXPECT_TRUE(valid_json(to_span_json(timeline), &error)) << error;
  EXPECT_TRUE(valid_json(to_span_json(timeline, TraceMeta{3, 2}), &error)) << error;
}

TEST(Export, BalancedBracesSmokeCheck) {
  const auto json = to_chrome_trace(sample_timeline());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace xsp::trace
