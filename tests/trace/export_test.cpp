#include "xsp/trace/export.hpp"

#include <gtest/gtest.h>

namespace xsp::trace {
namespace {

Timeline sample_timeline() {
  std::vector<Span> spans;
  Span model;
  model.id = 1;
  model.level = kModelLevel;
  model.name = "Model Prediction";
  model.tracer = "model_timer";
  model.begin = 0;
  model.end = ms(10);
  spans.push_back(model);

  Span layer;
  layer.id = 2;
  layer.level = kLayerLevel;
  layer.name = "conv2d/Conv2D";
  layer.begin = us(100);
  layer.end = us(900);
  layer.tags.set("layer_type", "Conv2D");
  layer.metrics.set("alloc_bytes", 1024);
  spans.push_back(layer);
  return Timeline::assemble(spans);
}

TEST(Export, ChromeTraceHasCompleteEvents) {
  const auto json = to_chrome_trace(sample_timeline());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Model Prediction\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"conv2d/Conv2D\""), std::string::npos);
  // Duration of the model span: 10 ms = 10000 us.
  EXPECT_NE(json.find("\"dur\":10000"), std::string::npos);
}

TEST(Export, ChromeTraceNamesLevelTracks) {
  const auto json = to_chrome_trace(sample_timeline());
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"gpu_kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"layer\""), std::string::npos);
}

TEST(Export, ArgsCarryTagsAndMetrics) {
  const auto json = to_chrome_trace(sample_timeline());
  EXPECT_NE(json.find("\"layer_type\":\"Conv2D\""), std::string::npos);
  EXPECT_NE(json.find("\"alloc_bytes\":1024"), std::string::npos);
}

TEST(Export, SpanJsonRoundTripsStructure) {
  const auto json = to_span_json(sample_timeline());
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);  // layer -> model
  EXPECT_NE(json.find("\"begin_ns\":100000"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"regular\""), std::string::npos);
}

TEST(Export, EscapesSpecialCharacters) {
  std::vector<Span> spans;
  Span s;
  s.id = 1;
  s.level = kKernelLevel;
  s.name = "Eigen::TensorCwiseBinaryOp<scalar_max_op<float>, \"quoted\">\n";
  s.begin = 0;
  s.end = 1;
  spans.push_back(s);
  const auto json = to_chrome_trace(Timeline::assemble(spans));
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // no raw newlines
}

TEST(Export, SpanJsonWithMetaWrapsSpansAndSurfacesTelemetry) {
  TraceMeta meta;
  meta.dropped_annotations = 7;
  meta.shard_count = 4;
  const auto json = to_span_json(sample_timeline(), meta);
  EXPECT_EQ(json.find("{\"metadata\":{"), 0u);
  EXPECT_NE(json.find("\"dropped_annotations\":7"), std::string::npos);
  EXPECT_NE(json.find("\"shard_count\":4"), std::string::npos);
  EXPECT_NE(json.find("\"span_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
}

TEST(Export, EmptyTimelineIsValidJson) {
  const auto chrome = to_chrome_trace(Timeline::assemble(std::vector<Span>{}));
  EXPECT_EQ(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(to_span_json(Timeline::assemble(std::vector<Span>{})), "[]");
}

TEST(Export, BalancedBracesSmokeCheck) {
  const auto json = to_chrome_trace(sample_timeline());
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace xsp::trace
