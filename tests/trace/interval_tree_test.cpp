#include "xsp/trace/interval_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "xsp/common/rng.hpp"

namespace xsp::trace {
namespace {

using Tree = IntervalTree<int>;

Tree make_tree(std::vector<Tree::Entry> entries) { return Tree(std::move(entries)); }

TEST(IntervalTree, EmptyTreeHasNoMatches) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.containing(0, 1).empty());
  EXPECT_TRUE(t.overlapping(0, 1).empty());
}

TEST(IntervalTree, StabbingFindsContainingIntervals) {
  auto t = make_tree({{0, 100, 1}, {10, 20, 2}, {50, 60, 3}});
  std::vector<int> hits;
  t.visit_stabbing(15, [&](const Tree::Entry& e) { hits.push_back(e.value); });
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{1, 2}));
}

TEST(IntervalTree, StabbingAtBoundariesIsInclusive) {
  auto t = make_tree({{10, 20, 1}});
  int count = 0;
  t.visit_stabbing(10, [&](const Tree::Entry&) { ++count; });
  t.visit_stabbing(20, [&](const Tree::Entry&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(IntervalTree, ContainingRequiresFullInclusion) {
  auto t = make_tree({{0, 100, 1}, {10, 40, 2}, {30, 60, 3}});
  auto res = t.containing(35, 38);
  std::vector<int> hits;
  for (const auto* e : res) hits.push_back(e->value);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{1, 2, 3}));

  res = t.containing(35, 50);  // extends past entry 2's end
  hits.clear();
  for (const auto* e : res) hits.push_back(e->value);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{1, 3}));
}

TEST(IntervalTree, OverlappingFindsPartialOverlaps) {
  auto t = make_tree({{0, 10, 1}, {20, 30, 2}, {40, 50, 3}});
  auto res = t.overlapping(25, 45);
  std::vector<int> hits;
  for (const auto* e : res) hits.push_back(e->value);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{2, 3}));
}

TEST(IntervalTree, DisjointQueriesMissEverything) {
  auto t = make_tree({{0, 10, 1}, {20, 30, 2}});
  EXPECT_TRUE(t.overlapping(11, 19).empty());
  EXPECT_TRUE(t.containing(11, 12).empty());
}

TEST(IntervalTree, HandlesNestedSpanStructure) {
  // The shape timeline assembly produces: model contains layers contains
  // kernels; siblings are disjoint.
  auto t = make_tree({{0, 1000, 1},   // model
                      {0, 300, 10},   // layer 1
                      {300, 700, 11}, // layer 2
                      {700, 1000, 12}});
  auto res = t.containing(350, 400);
  std::vector<int> hits;
  for (const auto* e : res) hits.push_back(e->value);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int>{1, 11}));
}

// Property check against a brute-force oracle over random interval sets.
class IntervalTreeRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalTreeRandomized, MatchesBruteForce) {
  SplitMix64 rng(GetParam());
  std::vector<Tree::Entry> entries;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto lo = static_cast<TimePoint>(rng.below(10'000));
    const auto len = static_cast<TimePoint>(rng.below(500));
    entries.push_back({lo, lo + len, i});
  }
  Tree tree(entries);
  EXPECT_EQ(tree.size(), static_cast<std::size_t>(n));

  for (int q = 0; q < 100; ++q) {
    const auto lo = static_cast<TimePoint>(rng.below(10'500));
    const auto hi = lo + static_cast<TimePoint>(rng.below(300));

    std::vector<int> expected_contain, expected_overlap;
    for (const auto& e : entries) {
      if (e.lo <= lo && e.hi >= hi) expected_contain.push_back(e.value);
      if (e.lo <= hi && e.hi >= lo) expected_overlap.push_back(e.value);
    }
    std::sort(expected_contain.begin(), expected_contain.end());
    std::sort(expected_overlap.begin(), expected_overlap.end());

    std::vector<int> got_contain, got_overlap;
    for (const auto* e : tree.containing(lo, hi)) got_contain.push_back(e->value);
    for (const auto* e : tree.overlapping(lo, hi)) got_overlap.push_back(e->value);
    std::sort(got_contain.begin(), got_contain.end());
    std::sort(got_overlap.begin(), got_overlap.end());

    EXPECT_EQ(got_contain, expected_contain) << "containing query [" << lo << "," << hi << "]";
    EXPECT_EQ(got_overlap, expected_overlap) << "overlapping query [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreeRandomized,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(IntervalTree, DegenerateAllIdenticalIntervals) {
  std::vector<Tree::Entry> entries;
  for (int i = 0; i < 50; ++i) entries.push_back({100, 200, i});
  Tree t(std::move(entries));
  EXPECT_EQ(t.containing(150, 160).size(), 50u);
  EXPECT_TRUE(t.containing(50, 60).empty());
}

TEST(IntervalTree, PointIntervals) {
  auto t = make_tree({{5, 5, 1}, {7, 7, 2}});
  EXPECT_EQ(t.containing(5, 5).size(), 1u);
  EXPECT_EQ(t.overlapping(0, 10).size(), 2u);
  EXPECT_TRUE(t.containing(5, 7).empty());
}

}  // namespace
}  // namespace xsp::trace
