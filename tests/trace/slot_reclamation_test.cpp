// Producer-slot lifecycle: thread-exit reclamation for long-lived servers.
//
// These pin the contracts of the reclamation protocol (see src/trace/
// README.md "Producer-slot lifecycle"):
//   * an exited producer thread's slot is retired by the next drain pass,
//     after a final sweep — every published span survives, exactly once;
//   * slot count on a long-lived server is O(live threads + freelist
//     cap), never O(threads ever) — the thread-churn stress;
//   * retired slots are parked and reused, so steady-state churn is
//     allocation-free on the server side once the freelists warm;
//   * the lifetime edges are safe in both orders: server destroyed before
//     thread exit (weak uid-keyed hook), publish from a TLS destructor
//     after the exit hook ran (slot resurrection), main-thread TLS vs
//     static destruction, and a new server reusing a dead server's
//     address must never inherit its cached slot pointer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "test_alloc_count.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

namespace xsp::trace {
namespace {

Span make_span(SpanId id, TimePoint t = 0) {
  Span s;
  s.id = id;
  s.begin = t;
  s.end = t + 1;
  return s;
}

template <typename Server>
void publish_n(Server& server, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
}

TEST(SlotReclamation, ExitedThreadsSlotIsRetiredAndSpansSurvive) {
  TraceServer server(PublishMode::kSync);
  std::thread producer([&server] { publish_n(server, TraceServer::kBatchCapacity + 17); });
  producer.join();
  // The exit hook has marked the slot; nothing is retired until a drain
  // pass sweeps it (kSync: the flush inside take_trace()).
  EXPECT_EQ(server.live_slot_count(), 1u);
  EXPECT_EQ(server.retired_slot_count(), 0u);
  EXPECT_EQ(server.take_trace().size(), TraceServer::kBatchCapacity + 17);
  EXPECT_EQ(server.live_slot_count(), 0u);
  EXPECT_EQ(server.retired_slot_count(), 1u);
  EXPECT_EQ(server.pooled_slot_count(), 1u);
}

TEST(SlotReclamation, RetiredSlotsAreReusedBeforeGrowingTheRegistry) {
  TraceServer server(PublishMode::kSync);
  for (int round = 0; round < 32; ++round) {
    std::thread producer([&server] { publish_n(server, 8); });
    producer.join();
    EXPECT_EQ(server.take_trace().size(), 8u);
  }
  // 32 churned threads, but the registry never outgrew the churn and the
  // parking lot holds at most one slot from this sequential pattern.
  EXPECT_EQ(server.live_slot_count(), 0u);
  EXPECT_EQ(server.retired_slot_count(), 32u);
  EXPECT_EQ(server.pooled_slot_count(), 1u);
  EXPECT_LE(server.approx_slot_bytes(),
            std::uint64_t{2} * TraceServer::kBatchCapacity * sizeof(Span) + 4096);
}

TEST(SlotReclamation, DisabledReclamationAccretesSlotsButLosesNothing) {
  // The ablation/escape-hatch switch: with reclamation off (set before
  // the churn), dead slots accrete exactly as they did pre-reclamation.
  TraceServer server(PublishMode::kSync);
  server.set_slot_reclamation(false);
  for (int round = 0; round < 8; ++round) {
    std::thread producer([&server] { publish_n(server, 4); });
    producer.join();
    server.flush();
  }
  EXPECT_EQ(server.live_slot_count(), 8u);
  EXPECT_EQ(server.retired_slot_count(), 0u);
  EXPECT_EQ(server.take_trace().size(), 32u);
}

TEST(SlotReclamation, ThreadTouchingManyServersIsReclaimedOnAll) {
  // More servers than the per-thread cache holds (64): the second pass
  // re-looks-up after eviction, and the deduplicated touched-uid list
  // must still reclaim the one slot on every server at exit.
  constexpr std::size_t kServers = 80;
  std::vector<std::unique_ptr<TraceServer>> servers;
  servers.reserve(kServers);
  for (std::size_t i = 0; i < kServers; ++i) {
    servers.push_back(std::make_unique<TraceServer>(PublishMode::kSync));
  }
  std::thread producer([&servers] {
    for (int pass = 0; pass < 2; ++pass) {
      for (auto& server : servers) publish_n(*server, 1);
    }
  });
  producer.join();
  for (auto& server : servers) {
    EXPECT_EQ(server->take_trace().size(), 2u);
    EXPECT_EQ(server->live_slot_count(), 0u);
    EXPECT_EQ(server->retired_slot_count(), 1u);
  }
}

// --- thread-churn stress ---------------------------------------------------

/// Drive `total_threads` short-lived producer threads (waves of `kWave`)
/// against `server`, each publishing `spans_per_thread`. Returns the
/// maximum live-slot count observed right after a wave joined. Calls
/// `flush_fn` every `kFlushEveryWaves` waves — with flushes that far
/// apart, live slots are HARD-bounded by kWave * kFlushEveryWaves even
/// if no collector ever runs in between (slots only register between
/// drains), so the peak assertion cannot flake on scheduling.
template <typename Server, typename FlushFn>
std::size_t churn(Server& server, std::size_t total_threads, std::size_t spans_per_thread,
                  FlushFn&& flush_fn) {
  constexpr std::size_t kWave = 16;
  constexpr std::size_t kFlushEveryWaves = 8;
  std::size_t peak_live = 0;
  std::size_t launched = 0;
  std::size_t wave_index = 0;
  while (launched < total_threads) {
    const std::size_t n = std::min(kWave, total_threads - launched);
    std::vector<std::thread> wave;
    wave.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      wave.emplace_back([&server, spans_per_thread] { publish_n(server, spans_per_thread); });
    }
    for (auto& t : wave) t.join();
    launched += n;
    peak_live = std::max(peak_live, server.live_slot_count());
    if (++wave_index % kFlushEveryWaves == 0) flush_fn();
  }
  flush_fn();
  return peak_live;
}

TEST(SlotChurnStress, TenThousandThreadsSingleServerAsyncConsume) {
  constexpr std::size_t kThreads = 10000;
  constexpr std::size_t kSpansPerThread = 40;
  TraceServer server(PublishMode::kAsync);
  // The long-lived-service shape: a kConsume subscriber keeps the server
  // empty forever while counting every span exactly once.
  std::atomic<std::uint64_t> consumed{0};
  server.add_drain_subscriber(
      [&consumed](const SpanBatches& batches) {
        std::uint64_t n = 0;
        for (const auto& batch : batches) n += batch.size();
        consumed.fetch_add(n, std::memory_order_relaxed);
      },
      DrainHandoff::kConsume);

  const std::size_t peak = churn(server, kThreads, kSpansPerThread, [&server] { server.flush(); });

  // Zero span loss, exactly once: a lost batch makes the count short, a
  // double delivery makes it long.
  EXPECT_EQ(consumed.load(), kThreads * kSpansPerThread);
  // Bounded slots: O(live threads + flush period), never O(total churn).
  EXPECT_LE(peak, 16u * 8u);
  EXPECT_EQ(server.live_slot_count(), 0u);
  EXPECT_EQ(server.retired_slot_count(), kThreads);
  EXPECT_LE(server.pooled_slot_count(), TraceServer::kSlotFreelistCapacity);
}

TEST(SlotChurnStress, TenThousandThreadsShardedAsyncConsume) {
  constexpr std::size_t kThreads = 10000;
  constexpr std::size_t kSpansPerThread = 24;
  ShardedTraceServer server(4, PublishMode::kAsync, ShardPolicy::kByThread);
  std::atomic<std::uint64_t> consumed{0};
  server.add_drain_subscriber(
      [&consumed](const SpanBatches& batches) {
        std::uint64_t n = 0;
        for (const auto& batch : batches) n += batch.size();
        consumed.fetch_add(n, std::memory_order_relaxed);
      },
      DrainHandoff::kConsume);

  const std::size_t peak = churn(server, kThreads, kSpansPerThread, [&server] { server.flush(); });

  EXPECT_EQ(consumed.load(), kThreads * kSpansPerThread);
  // kByThread: each churned thread registers on exactly one shard, so
  // the fleet-wide bound matches the single-server one.
  EXPECT_LE(peak, 16u * 8u);
  EXPECT_EQ(server.live_slot_count(), 0u);
  EXPECT_EQ(server.retired_slot_count(), kThreads);
  EXPECT_LE(server.pooled_slot_count(), 4 * TraceServer::kSlotFreelistCapacity);
}

TEST(SlotChurnStress, SyncServersRetireOnFlushAndLoseNothing) {
  constexpr std::size_t kThreads = 2500;
  constexpr std::size_t kSpansPerThread = 24;

  TraceServer single(PublishMode::kSync);
  std::uint64_t taken_single = 0;
  const std::size_t peak_single =
      churn(single, kThreads, kSpansPerThread, [&single, &taken_single] {
        for (const auto& batch : single.take_batches()) taken_single += batch.size();
      });
  EXPECT_EQ(taken_single, kThreads * kSpansPerThread);
  EXPECT_LE(peak_single, 16u * 8u);
  EXPECT_EQ(single.live_slot_count(), 0u);
  EXPECT_EQ(single.retired_slot_count(), kThreads);

  ShardedTraceServer sharded(4, PublishMode::kSync, ShardPolicy::kByThread);
  std::uint64_t taken_sharded = 0;
  const std::size_t peak_sharded =
      churn(sharded, kThreads, kSpansPerThread, [&sharded, &taken_sharded] {
        for (const auto& batch : sharded.take_batches()) taken_sharded += batch.size();
      });
  EXPECT_EQ(taken_sharded, kThreads * kSpansPerThread);
  EXPECT_LE(peak_sharded, 16u * 8u);
  EXPECT_EQ(sharded.live_slot_count(), 0u);
  EXPECT_EQ(sharded.retired_slot_count(), kThreads);
}

TEST(SlotChurnStress, SteadyStateChurnIsAllocationFreeOnTheServerSide) {
  // Once the slot and batch freelists warm, a churn round — spawn a
  // producer thread, publish a full batch, exit, drain, take, recycle —
  // recirculates parked slots and recycled buffers: the only allocations
  // left are the constant per-thread ones (std::thread state, the TLS
  // record's two vectors), so per-round allocation counts must stop
  // changing. kSync keeps the rounds single-threaded-deterministic.
  TraceServer server(PublishMode::kSync);
  const auto round = [&server] {
    std::thread producer([&server] { publish_n(server, TraceServer::kBatchCapacity); });
    producer.join();
    SpanBatches taken = server.take_batches();
    std::size_t total = 0;
    for (const auto& batch : taken) total += batch.size();
    server.recycle(std::move(taken));
    return total;
  };
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(round(), TraceServer::kBatchCapacity);  // warm-up
  }
  const std::uint64_t before_a = g_xsp_test_alloc_count.load(std::memory_order_relaxed);
  const std::size_t got_a = round();
  const std::uint64_t during_a = g_xsp_test_alloc_count.load(std::memory_order_relaxed) - before_a;
  const std::uint64_t before_b = g_xsp_test_alloc_count.load(std::memory_order_relaxed);
  const std::size_t got_b = round();
  const std::uint64_t during_b = g_xsp_test_alloc_count.load(std::memory_order_relaxed) - before_b;
  EXPECT_EQ(got_a, TraceServer::kBatchCapacity);
  EXPECT_EQ(got_b, TraceServer::kBatchCapacity);
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizer runtimes allocate on their own schedule; the functional
  // recirculation checks above still ran.
  (void)during_a;
  (void)during_b;
#else
  EXPECT_EQ(during_a, during_b) << "per-round allocations grew: slot/batch freelists not reused";
  // The remaining per-round allocations are the per-thread constants —
  // nothing proportional to spans, batches, or accumulated churn.
  EXPECT_LE(during_b, 8u);
#endif
  EXPECT_EQ(server.retired_slot_count(), 10u);
  EXPECT_EQ(server.live_slot_count(), 0u);
}

// --- lifetime edges --------------------------------------------------------

TEST(SlotLifecycle, ServerDestroyedWhileProducerThreadsStillAlive) {
  // The exit hook must be weak: these threads outlive the server, and
  // their hooks run against a uid that is no longer registered.
  auto server = std::make_unique<TraceServer>(PublishMode::kAsync);
  constexpr int kProducers = 4;
  std::atomic<int> published{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      publish_n(*server, 100);
      published.fetch_add(1, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
    });
  }
  while (published.load(std::memory_order_acquire) < kProducers) std::this_thread::yield();
  EXPECT_EQ(server->take_trace().size(), 400u);
  server.reset();
  release.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();  // hooks fire after the server died
  SUCCEED();
}

namespace late_publish {

/// A TLS object whose destructor publishes. Constructed BEFORE the
/// thread's first publish, so TLS destruction (reverse order) runs it
/// AFTER the reclamation hook — the publish-after-exit-hook edge: the
/// marked slot must be resurrected (or a fresh one registered if the
/// drain already retired it), never published into a parked slot.
struct LatePublisher {
  TraceServer* server = nullptr;
  ~LatePublisher() {
    if (server == nullptr) return;
    Span s;
    s.id = server->next_span_id();
    s.begin = 7;
    s.end = 8;
    server->publish(std::move(s));
  }
};
thread_local LatePublisher tls_late_publisher;

}  // namespace late_publish

TEST(SlotLifecycle, PublishFromTlsDestructorAfterExitHookIsNotLost) {
  TraceServer server(PublishMode::kAsync);
  for (int round = 0; round < 16; ++round) {
    std::thread t([&server] {
      late_publish::tls_late_publisher.server = &server;  // constructed first
      publish_n(server, 3);
    });
    t.join();
  }
  // Every round: 3 regular spans + 1 from the late TLS destructor. Which
  // path the late publish took (resurrection vs fresh registration after
  // a racing retirement) depends on collector timing; both must count.
  EXPECT_EQ(server.take_trace().size(), 16u * 4u);
  // Slots from resurrected/late registrations have no future exit hook
  // and legitimately live until the server dies — but never more than
  // one per churned thread.
  EXPECT_LE(server.live_slot_count(), 16u);
}

TEST(SlotLifecycle, DeadServersSlotIsNotInheritedAcrossServerAddressReuse) {
  // Regression for TLS-cache aliasing: destroy a server this thread has
  // a cached slot for, then allocate a new one — the allocator readily
  // hands back the same block, so the (address, uid) cache key collides
  // on the address and only the process-unique uid keeps the dead
  // server's slot pointer from being inherited. Inheriting it is a
  // heap-use-after-free under ASan and span loss in a plain build.
  const void* first_addr = nullptr;
  bool address_reused = false;
  for (int i = 0; i < 64; ++i) {
    auto server = std::make_unique<TraceServer>(PublishMode::kSync);
    if (first_addr == nullptr) {
      first_addr = server.get();
    } else {
      address_reused = address_reused || server.get() == first_addr;
    }
    publish_n(*server, 2);
    EXPECT_EQ(server->take_trace().size(), 2u);
    EXPECT_EQ(server->live_slot_count(), 1u);  // a fresh slot, every time
  }
  // Same-size alloc/free cycles usually reuse the block, which is what
  // makes the cache key collide on the address — but no standard obliges
  // the allocator to (and ASan deliberately quarantines freed blocks,
  // which is exactly how it would catch a true inheritance as
  // use-after-free). When no reuse happened the aliasing scenario was
  // simply not exercised: the in-loop assertions above still guard the
  // accounting, so report a skip rather than an environment failure.
  if (!address_reused) {
    GTEST_SKIP() << "allocator never reused the first server's block; "
                    "TLS-cache aliasing not exercised in this environment";
  }
}

/// Static-destruction-order smoke for the main thread: this server dies
/// during static destruction, the main thread's TLS exit hook runs during
/// process exit, and the runtime picks the order. Both orders must be
/// clean — hook first marks a live server's slot (retired or freed with
/// the server), server first unregisters its uid (the hook then finds
/// nothing). A crash here fails the whole test binary, which is the
/// assertion.
TraceServer& static_server() {
  static TraceServer server(PublishMode::kAsync);
  return server;
}

TEST(SlotLifecycle, MainThreadStaticDestructionOrderSmoke) {
  publish_n(static_server(), 3);
  EXPECT_EQ(static_server().span_count(), 3u);
  EXPECT_EQ(static_server().live_slot_count(), 1u);
}

}  // namespace
}  // namespace xsp::trace
