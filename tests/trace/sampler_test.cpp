#include "xsp/trace/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

namespace xsp::trace {
namespace {

std::uint64_t drained_spans(TraceServer& server) {
  std::uint64_t n = 0;
  for (const auto& batch : server.take_batches()) n += batch.size();
  return n;
}

Span make_span(std::uint64_t corr, Ns dur = 100, int level = kKernelLevel) {
  Span s;
  s.id = corr;  // distinct non-zero id; the hash keys on corr when set
  s.level = level;
  s.begin = 0;
  s.end = dur;
  s.correlation_id = corr;
  return s;
}

TEST(Sampler, RateOneIsPassThrough) {
  Sampler sampler(SamplerOptions{});
  EXPECT_TRUE(sampler.pass_through());
  for (std::uint64_t c = 1; c < 1000; ++c) {
    EXPECT_TRUE(sampler.admit(make_span(c)));
    EXPECT_DOUBLE_EQ(sampler.effective_rate(make_span(c)), 1.0);
  }
}

TEST(Sampler, RateZeroRejectsEverything) {
  SamplerOptions opts;
  opts.rate = 0.0;
  Sampler sampler(opts);
  for (std::uint64_t c = 1; c < 1000; ++c) {
    EXPECT_FALSE(sampler.admit(make_span(c)));
  }
}

TEST(Sampler, DecisionsAreDeterministic) {
  SamplerOptions opts;
  opts.rate = 0.3;
  Sampler a(opts);
  Sampler b(opts);
  for (std::uint64_t c = 1; c < 5000; ++c) {
    const Span s = make_span(c);
    EXPECT_EQ(a.admit(s), b.admit(s)) << "corr " << c;
  }
}

TEST(Sampler, DistinctSeedsSampleDistinctSubsets) {
  SamplerOptions opts;
  opts.rate = 0.5;
  Sampler a(opts);
  opts.seed = 0x1234;
  Sampler b(opts);
  int differ = 0;
  for (std::uint64_t c = 1; c < 4000; ++c) {
    if (a.admit(make_span(c)) != b.admit(make_span(c))) ++differ;
  }
  // Independent 50% draws disagree ~50% of the time; far from zero.
  EXPECT_GT(differ, 1000);
}

TEST(Sampler, RateIsAccurateOverManyKeys) {
  for (const double rate : {0.5, 0.1, 0.01}) {
    SamplerOptions opts;
    opts.rate = rate;
    Sampler sampler(opts);
    constexpr int kKeys = 100000;
    int kept = 0;
    for (std::uint64_t c = 1; c <= kKeys; ++c) {
      if (sampler.admit(make_span(c))) ++kept;
    }
    const double observed = static_cast<double>(kept) / kKeys;
    // splitmix64 over sequential keys behaves as iid draws; 5 sigma.
    const double sigma = std::sqrt(rate * (1 - rate) / kKeys);
    EXPECT_NEAR(observed, rate, 5 * sigma) << "rate " << rate;
  }
}

TEST(Sampler, CorrelationGroupsAreCoherent) {
  SamplerOptions opts;
  opts.rate = 0.2;
  Sampler sampler(opts);
  // All spans of one request (same correlation id, any level/id/duration)
  // get one verdict — whole requests are kept or shed, never halves.
  for (std::uint64_t corr = 1; corr < 2000; ++corr) {
    const bool verdict = sampler.admit(make_span(corr));
    for (int level = 0; level <= kKernelLevel; ++level) {
      Span s = make_span(corr, /*dur=*/100 + level, level);
      s.id = corr * 100 + static_cast<std::uint64_t>(level);  // distinct span ids
      EXPECT_EQ(sampler.admit(s), verdict) << "corr " << corr << " level " << level;
    }
  }
}

TEST(Sampler, SpansWithoutCorrelationFallBackToSpanId) {
  SamplerOptions opts;
  opts.rate = 0.5;
  Sampler sampler(opts);
  int kept = 0;
  for (std::uint64_t id = 1; id <= 4000; ++id) {
    Span s = make_span(0);
    s.id = id;
    s.correlation_id = 0;
    if (sampler.admit(s)) ++kept;
  }
  EXPECT_GT(kept, 1500);
  EXPECT_LT(kept, 2500);
}

TEST(Sampler, PerLevelRatesApply) {
  SamplerOptions opts;
  opts.rate = 1.0;
  opts.level_rates = {{kKernelLevel, 0.0}};
  Sampler sampler(opts);
  EXPECT_FALSE(sampler.pass_through());
  for (std::uint64_t c = 1; c < 500; ++c) {
    EXPECT_TRUE(sampler.admit(make_span(c, 100, kModelLevel)));
    EXPECT_FALSE(sampler.admit(make_span(c, 100, kKernelLevel)));
  }
}

TEST(Sampler, PerTracerOverrideWinsOverLevel) {
  const StrId cupti{"cupti"};
  SamplerOptions opts;
  opts.rate = 1.0;
  opts.level_rates = {{kKernelLevel, 0.0}};
  opts.tracer_rates = {{cupti, 1.0}};
  Sampler sampler(opts);
  Span s = make_span(7, 100, kKernelLevel);
  EXPECT_FALSE(sampler.admit(s));
  s.tracer = cupti;
  EXPECT_TRUE(sampler.admit(s));
}

TEST(Sampler, TailKeepForceAdmitsLongSpans) {
  SamplerOptions opts;
  opts.rate = 0.0;
  opts.tail_keep_ns = 1000;
  Sampler sampler(opts);
  for (std::uint64_t c = 1; c < 500; ++c) {
    EXPECT_FALSE(sampler.admit(make_span(c, 999)));
    EXPECT_TRUE(sampler.admit(make_span(c, 1000)));
    // Force-admitted spans carry inclusion probability 1 (unbiased HT).
    EXPECT_DOUBLE_EQ(sampler.effective_rate(make_span(c, 1000)), 1.0);
  }
}

TEST(Sampler, EffectiveRateMatchesPolicy) {
  SamplerOptions opts;
  opts.rate = 0.25;
  opts.level_rates = {{kModelLevel, 1.0}};
  Sampler sampler(opts);
  EXPECT_DOUBLE_EQ(sampler.effective_rate(make_span(3, 100, kKernelLevel)), 0.25);
  EXPECT_DOUBLE_EQ(sampler.effective_rate(make_span(3, 100, kModelLevel)), 1.0);
}

TEST(Sampler, ShedLowValueKeepsTailsAndHighPrioritySlice) {
  SamplerOptions opts;
  opts.rate = 1.0;  // everything admitted normally...
  opts.tail_keep_ns = 10000;
  Sampler sampler(opts);
  SpanBatch batch;
  for (std::uint64_t c = 1; c <= 1000; ++c) {
    batch.push_back(make_span(c, c == 500 ? 20000 : 100));
  }
  const std::size_t removed = sampler.shed_low_value(batch);
  EXPECT_EQ(removed + batch.size(), 1000u);
  // The shed is selective, not total: the tail outlier always survives,
  // and the rate*shed_keep_fraction hash slice keeps a deterministic core.
  bool tail_survived = false;
  for (const Span& s : batch) {
    if (s.correlation_id == 500) tail_survived = true;
    EXPECT_TRUE(sampler.keep_under_pressure(s));
  }
  EXPECT_TRUE(tail_survived);
  EXPECT_LT(batch.size(), 1000u);  // something was shed
}

// --- admission accounting through the servers ---------------------------

TEST(TraceServerSampling, InvariantPublishedEqualsKeptPlusDropped) {
  for (const PublishMode mode : {PublishMode::kSync, PublishMode::kAsync}) {
    TraceServer server(mode);
    SamplerOptions opts;
    opts.rate = 0.25;
    server.set_sampler(std::make_shared<const Sampler>(opts));
    constexpr std::uint64_t kSpans = 20000;
    for (std::uint64_t i = 0; i < kSpans; ++i) {
      Span s = make_span(server.next_correlation_id());
      s.id = server.next_span_id();
      server.publish(s);
    }
    const std::uint64_t kept = server.sampled_kept_count();
    const std::uint64_t dropped = server.sampled_dropped_count();
    EXPECT_EQ(kept + dropped, kSpans);
    EXPECT_GT(dropped, 0u);
    // Admitted spans all made it into the trace.
    EXPECT_EQ(drained_spans(server), kept);
  }
}

TEST(TraceServerSampling, CountersSurviveEmptyDrains) {
  TraceServer server(PublishMode::kSync);
  SamplerOptions opts;
  opts.rate = 0.0;
  server.set_sampler(std::make_shared<const Sampler>(opts));
  for (std::uint64_t i = 0; i < 100; ++i) {
    Span s = make_span(server.next_correlation_id());
    s.id = server.next_span_id();
    server.publish(s);
  }
  // Every span was sampled out, so the drain sees no batches — the
  // accounting must still land.
  EXPECT_EQ(drained_spans(server), 0u);
  EXPECT_EQ(server.sampled_dropped_count(), 100u);
  EXPECT_EQ(server.sampled_kept_count(), 0u);
}

TEST(TraceServerSampling, NoSamplerMeansNoAccounting) {
  TraceServer server(PublishMode::kSync);
  for (std::uint64_t i = 0; i < 50; ++i) {
    Span s = make_span(i + 1);
    s.id = server.next_span_id();
    server.publish(s);
  }
  EXPECT_EQ(server.sampled_kept_count(), 0u);
  EXPECT_EQ(server.sampled_dropped_count(), 0u);
}

TEST(TraceServerSampling, InvariantHoldsUnderConcurrentPublishers) {
  TraceServer server(PublishMode::kAsync);
  SamplerOptions opts;
  opts.rate = 0.5;
  server.set_sampler(std::make_shared<const Sampler>(opts));
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        Span s = make_span(server.next_correlation_id());
        s.id = server.next_span_id();
        server.publish(s);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t kept = server.sampled_kept_count();
  EXPECT_EQ(kept + server.sampled_dropped_count(), kThreads * kPerThread);
  EXPECT_EQ(drained_spans(server), kept);
}

TEST(ShardedTraceServerSampling, InvariantAcrossShards) {
  ShardedTraceServer fleet(4, PublishMode::kAsync, ShardPolicy::kByThread);
  SamplerOptions opts;
  opts.rate = 0.25;
  fleet.set_sampler(std::make_shared<const Sampler>(opts));
  constexpr std::uint64_t kSpans = 20000;
  for (std::uint64_t i = 0; i < kSpans; ++i) {
    Span s = make_span(fleet.next_correlation_id());
    s.id = fleet.next_span_id();
    fleet.publish(s);
  }
  const std::uint64_t kept = fleet.sampled_kept_count();
  const std::uint64_t dropped = fleet.sampled_dropped_count();
  EXPECT_EQ(kept + dropped, kSpans);
  std::uint64_t in_trace = 0;
  for (const auto& batch : fleet.take_batches()) in_trace += batch.size();
  EXPECT_EQ(in_trace, kept);
}

TEST(TraceServerSampling, SetSamplerMidStreamTakesEffect) {
  TraceServer server(PublishMode::kSync);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Span s = make_span(i + 1);
    s.id = server.next_span_id();
    server.publish(s);
  }
  SamplerOptions opts;
  opts.rate = 0.0;
  server.set_sampler(std::make_shared<const Sampler>(opts));
  for (std::uint64_t i = 0; i < 10; ++i) {
    Span s = make_span(i + 100);
    s.id = server.next_span_id();
    server.publish(s);
  }
  EXPECT_EQ(drained_spans(server), 10u);
  EXPECT_EQ(server.sampled_dropped_count(), 10u);
}

}  // namespace
}  // namespace xsp::trace
