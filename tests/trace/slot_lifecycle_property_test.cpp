// Property tests for the producer-slot lifecycle: a seeded interleaving
// of publish / flush / take_batches / recycle / thread-exit against a
// live server must collect every span of the schedule exactly once, and
// the timeline assembled from the collected batches must equal the
// single-threaded oracle assembly of the same schedule — extending the
// randomized-oracle pattern of timeline_property_test.cpp from assembly
// to the full collection lifecycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "xsp/common/rng.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/timeline.hpp"
#include "xsp/trace/trace_server.hpp"

namespace xsp::trace {
namespace {

/// Random strictly-nested span schedule (the timeline_property_test
/// generator shape): a model span covering disjoint layers, each covering
/// disjoint kernels. Ids are pre-assigned — the schedule is the oracle.
std::vector<Span> random_nested_trace(std::uint64_t seed, int layers, int kernels_per_layer) {
  SplitMix64 rng(seed);
  std::vector<Span> spans;
  SpanId next_id = 1;

  Span model;
  model.id = next_id++;
  model.level = kModelLevel;
  model.name = "Predict";
  model.begin = 0;

  TimePoint t = 10;
  for (int l = 0; l < layers; ++l) {
    Span layer;
    layer.id = next_id++;
    layer.level = kLayerLevel;
    layer.name = "layer_" + std::to_string(l);
    layer.begin = t;
    TimePoint kt = t + 1 + static_cast<TimePoint>(rng.below(5));
    for (int k = 0; k < kernels_per_layer; ++k) {
      Span kernel;
      kernel.id = next_id++;
      kernel.level = kKernelLevel;
      kernel.name = "kernel_" + std::to_string(l) + "_" + std::to_string(k);
      kernel.begin = kt;
      kernel.end = kt + 1 + static_cast<TimePoint>(rng.below(50));
      kt = kernel.end + 1 + static_cast<TimePoint>(rng.below(5));
      spans.push_back(kernel);
    }
    layer.end = kt + static_cast<TimePoint>(rng.below(5));
    t = layer.end + 1 + static_cast<TimePoint>(rng.below(10));
    spans.push_back(layer);
  }
  model.end = t + 5;
  spans.push_back(model);
  return spans;
}

/// Run the seeded op interleaving against `server`; returns every span
/// collected (across all takes plus the final one).
template <typename Server>
std::vector<Span> run_lifecycle(Server& server, const std::vector<Span>& schedule,
                                std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Span> collected;
  collected.reserve(schedule.size());
  std::size_t next = 0;

  const auto take_all = [&] {
    SpanBatches batches = server.take_batches();
    for (const auto& batch : batches) {
      collected.insert(collected.end(), batch.begin(), batch.end());
    }
    server.recycle(std::move(batches));
  };

  while (next < schedule.size()) {
    const std::size_t chunk = std::min<std::size_t>(1 + rng.below(40), schedule.size() - next);
    switch (rng.below(5)) {
      case 0: {
        // The churn op: a short-lived producer thread publishes the next
        // chunk and exits — its slot is marked and later retired by
        // whichever drain the other ops trigger.
        std::thread producer([&server, &schedule, next, chunk] {
          for (std::size_t i = 0; i < chunk; ++i) server.publish(schedule[next + i]);
        });
        producer.join();
        next += chunk;
        break;
      }
      case 1:
        // Main-thread publication (a long-lived producer).
        for (std::size_t i = 0; i < chunk; ++i) server.publish(schedule[next + i]);
        next += chunk;
        break;
      case 2: server.flush(); break;
      case 3: take_all(); break;
      case 4:
        // Telemetry reads interleave with everything else; the slot
        // counters must never wedge or lose a drain.
        (void)server.live_slot_count();
        (void)server.retired_slot_count();
        break;
    }
  }
  take_all();
  return collected;
}

struct LifecycleCase {
  const char* name;
  std::function<std::vector<Span>(const std::vector<Span>&, std::uint64_t)> run;
};

class SlotLifecycleRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlotLifecycleRandomized, CollectedTimelineMatchesSingleThreadedOracle) {
  const std::uint64_t seed = GetParam();
  const auto schedule = random_nested_trace(seed, 25, 4);
  const Timeline oracle = Timeline::assemble(schedule);

  const std::vector<LifecycleCase> cases = {
      {"single_sync",
       [](const std::vector<Span>& s, std::uint64_t rng_seed) {
         TraceServer server(PublishMode::kSync);
         return run_lifecycle(server, s, rng_seed);
       }},
      {"single_async",
       [](const std::vector<Span>& s, std::uint64_t rng_seed) {
         TraceServer server(PublishMode::kAsync);
         return run_lifecycle(server, s, rng_seed);
       }},
      {"sharded_2_async",
       [](const std::vector<Span>& s, std::uint64_t rng_seed) {
         ShardedTraceServer server(2, PublishMode::kAsync, ShardPolicy::kByThread);
         return run_lifecycle(server, s, rng_seed);
       }},
  };

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    std::vector<Span> collected = c.run(schedule, seed ^ 0xC0FFEE);

    // Exactly once: the collected id multiset equals the schedule's.
    ASSERT_EQ(collected.size(), schedule.size());
    std::vector<SpanId> got_ids, want_ids;
    got_ids.reserve(collected.size());
    want_ids.reserve(schedule.size());
    for (const auto& s : collected) got_ids.push_back(s.id);
    for (const auto& s : schedule) want_ids.push_back(s.id);
    std::sort(got_ids.begin(), got_ids.end());
    std::sort(want_ids.begin(), want_ids.end());
    EXPECT_EQ(got_ids, want_ids);

    // The assembled timeline is oblivious to how collection interleaved:
    // same nodes, same parents as the oracle.
    const Timeline assembled = Timeline::assemble(collected);
    ASSERT_EQ(assembled.size(), oracle.size());
    oracle.walk([&](const TimelineNode& n, int) {
      EXPECT_EQ(assembled.node(n.span.id).parent, n.parent) << n.span.name.view();
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotLifecycleRandomized,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace xsp::trace
