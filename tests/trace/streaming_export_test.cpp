// Streaming export subsystem: the StreamingExporter consuming batches as
// they drain from (sharded) trace servers, with bounded memory, against
// the materializing wrappers as the byte-exact reference.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "test_alloc_count.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

namespace xsp::trace {
namespace {

using testjson::count_occurrences;
using testjson::valid_json;

Span make_span(SpanId id, TimePoint t, SpanId parent = kNoSpan) {
  Span s;
  s.id = id;
  s.parent = parent;
  s.name = "op";
  s.tracer = "test";
  s.begin = t;
  s.end = t + 10;
  return s;
}

/// Spans with explicit parents in begin order: publication order equals
/// walk order and the assembled parent equals the published parent, so a
/// raw batch stream and a timeline walk must produce identical bytes.
SpanBatch linear_trace() {
  SpanBatch spans;
  Span root = make_span(1, 0);
  root.level = kModelLevel;
  root.name = "Model Prediction";
  root.end = 1'000'000;
  spans.push_back(root);
  for (SpanId id = 2; id <= 6; ++id) {
    Span child = make_span(id, static_cast<TimePoint>(id * 1000), /*parent=*/1);
    child.level = kLayerLevel;
    child.metrics.set("alloc_bytes", static_cast<double>(id) * 1e9);
    spans.push_back(child);
  }
  return spans;
}

std::string stream_to_string(ExportFormat format, const SpanBatch& batch, bool with_meta,
                             const TraceMeta* meta) {
  std::string out;
  StreamingExporter exporter(
      format, [&out](std::string_view chunk) { out.append(chunk); }, with_meta);
  if (meta != nullptr) exporter.set_meta(*meta);
  exporter.write_batch(batch);
  exporter.finish();
  return out;
}

// --- acceptance: one emission path ----------------------------------------

TEST(StreamingExport, BytesIdenticalToMaterializingWrappers) {
  const SpanBatch spans = linear_trace();
  const Timeline timeline = Timeline::assemble(std::vector<Span>(spans));
  ASSERT_EQ(timeline.size(), spans.size());

  EXPECT_EQ(stream_to_string(ExportFormat::kChromeTrace, spans, false, nullptr),
            to_chrome_trace(timeline));
  EXPECT_EQ(stream_to_string(ExportFormat::kSpanJson, spans, false, nullptr),
            to_span_json(timeline));
  const TraceMeta meta{5, 3};
  EXPECT_EQ(stream_to_string(ExportFormat::kSpanJson, spans, true, &meta),
            to_span_json(timeline, meta));
}

// --- consuming drain subscriber -------------------------------------------

TEST(StreamingExport, ConsumeModeStreamsEverySpanAndLeavesServerEmpty) {
  TraceServer server(PublishMode::kSync);
  std::string out;
  StreamingExporter exporter(ExportFormat::kChromeTrace,
                             [&out](std::string_view chunk) { out.append(chunk); });
  const SubscriberId sub = server.add_drain_subscriber(
      [&exporter](const SpanBatches& batches) { exporter.write_batches(batches); },
      DrainHandoff::kConsume);

  const std::size_t total = 3 * TraceServer::kBatchCapacity + 7;
  for (std::size_t i = 0; i < total; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  server.flush();
  server.remove_drain_subscriber(sub);
  exporter.finish();

  EXPECT_EQ(exporter.spans_written(), total);
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"X\""), total);
  std::string error;
  EXPECT_TRUE(valid_json(out, &error)) << error;
  // The exporter consumed the trace: nothing accumulated for take_batches.
  EXPECT_TRUE(server.take_batches().empty());
}

TEST(StreamingExport, ConsumeModeRecyclesBatchBuffersToTheFreelist) {
  TraceServer server(PublishMode::kSync);
  std::vector<const Span*> seen;
  const SubscriberId sub = server.add_drain_subscriber(
      [&seen](const SpanBatches& batches) {
        for (const auto& b : batches) seen.push_back(b.data());
      },
      DrainHandoff::kConsume);

  for (std::size_t i = 0; i < TraceServer::kBatchCapacity; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  server.flush();
  ASSERT_EQ(seen.size(), 1u);
  const Span* first = seen.front();
  seen.clear();

  // The consumed buffer must come back out of the freelist for a later
  // seal instead of being freed.
  for (std::size_t i = 0; i < 2 * TraceServer::kBatchCapacity; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  server.flush();
  bool reused = false;
  for (const Span* p : seen) reused = reused || p == first;
  EXPECT_TRUE(reused);
  server.remove_drain_subscriber(sub);
}

TEST(StreamingExport, ObserveModeTeesWithoutConsuming) {
  TraceServer server(PublishMode::kSync);
  std::string out;
  StreamingExporter exporter(ExportFormat::kSpanJson,
                             [&out](std::string_view chunk) { out.append(chunk); });
  const SubscriberId sub = server.add_drain_subscriber(
      [&exporter](const SpanBatches& batches) { exporter.write_batches(batches); },
      DrainHandoff::kObserve);

  const std::size_t total = TraceServer::kBatchCapacity + 11;
  for (std::size_t i = 0; i < total; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  SpanBatches batches = server.take_batches();
  server.remove_drain_subscriber(sub);
  exporter.finish();

  // The subscriber saw every span AND the consumer still got the trace.
  EXPECT_EQ(exporter.spans_written(), total);
  EXPECT_EQ(flatten_batches(batches).size(), total);
  EXPECT_TRUE(valid_json(out));
}

// --- sharded fleet: per-shard writers, one sink ----------------------------

TEST(StreamingExport, ShardedConcurrentPublishersFunnelIntoOneValidDocument) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 1500;
  ShardedTraceServer server(3, PublishMode::kAsync, ShardPolicy::kByThread);

  std::string out;
  StreamingExporter exporter(
      ExportFormat::kSpanJson, [&out](std::string_view chunk) { out.append(chunk); },
      /*with_metadata=*/true);
  const SubscriberId sub = server.add_drain_subscriber(
      [&exporter](const SpanBatches& batches) { exporter.write_batches(batches); },
      DrainHandoff::kConsume);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  server.flush();
  server.remove_drain_subscriber(sub);
  exporter.set_meta({server.dropped_annotation_count(), server.shard_count()});
  exporter.finish();

  EXPECT_EQ(exporter.spans_written(), kThreads * kPerThread);
  EXPECT_EQ(count_occurrences(out, "\"kind\":\"regular\""), kThreads * kPerThread);
  EXPECT_NE(out.find("\"shard_count\":3"), std::string::npos);
  EXPECT_NE(out.find("\"span_count\":6000"), std::string::npos);
  std::string error;
  EXPECT_TRUE(valid_json(out, &error)) << error;
  EXPECT_TRUE(server.take_batches().empty());
}

TEST(StreamingExport, ThrowingSubscriberIsDetachedWithoutLosingSpans) {
  TraceServer server(PublishMode::kSync);
  int calls = 0;
  server.add_drain_subscriber(
      [&calls](const SpanBatches&) {
        ++calls;
        throw std::runtime_error("sink failed");
      },
      DrainHandoff::kConsume);

  const std::size_t total = TraceServer::kBatchCapacity + 5;
  for (std::size_t i = 0; i < total; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
  server.flush();  // must not propagate; subscriber detached on the throw
  EXPECT_EQ(calls, 1);
  server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(total)));
  server.flush();
  EXPECT_EQ(calls, 1) << "throwing subscriber must be detached";
  // Every span fell back to in-server accumulation, none delivered twice.
  EXPECT_EQ(flatten_batches(server.take_batches()).size(), total + 1);
}

#if defined(NDEBUG)
// In release builds a write after finish() must be dropped, not corrupt
// the already-footered document (debug builds assert instead).
TEST(StreamingExport, WritesAfterFinishAreDroppedNotAppended) {
  std::string out;
  StreamingExporter exporter(ExportFormat::kChromeTrace,
                             [&out](std::string_view chunk) { out.append(chunk); });
  exporter.write_span(make_span(1, 0), kNoSpan);
  exporter.finish();
  const std::string finished = out;
  exporter.write_span(make_span(2, 100), kNoSpan);
  exporter.finish();
  EXPECT_EQ(out, finished);
  EXPECT_EQ(exporter.spans_written(), 1u);
  EXPECT_TRUE(valid_json(out));
}
#endif

// --- acceptance: bounded memory --------------------------------------------

std::uint64_t exporter_allocations(std::size_t batches) {
  std::uint64_t bytes = 0;
  StreamingExporter exporter(ExportFormat::kChromeTrace,
                             [&bytes](std::string_view chunk) { bytes += chunk.size(); });
  SpanBatch batch;
  batch.reserve(TraceServer::kBatchCapacity);
  for (std::size_t i = 0; i < TraceServer::kBatchCapacity; ++i) {
    batch.push_back(make_span(static_cast<SpanId>(i + 1), static_cast<TimePoint>(i)));
  }
  // Warm-up: internal buffer reaches steady state, per-thread scratch grows.
  for (int i = 0; i < 4; ++i) exporter.write_batch(batch);

  const std::uint64_t before = g_xsp_test_alloc_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < batches; ++i) exporter.write_batch(batch);
  const std::uint64_t during =
      g_xsp_test_alloc_count.load(std::memory_order_relaxed) - before;
  exporter.finish();
  EXPECT_GT(bytes, batches * TraceServer::kBatchCapacity * 32);  // it really streamed
  return during;
}

TEST(StreamingExport, ExporterAllocationIsIndependentOfSpanCount) {
  const std::uint64_t small = exporter_allocations(4);
  const std::uint64_t large = exporter_allocations(256);  // 64x the spans
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  // Sanitizer runtimes allocate on their own; the functional streaming
  // assertions above still ran.
  (void)small;
  (void)large;
#else
  EXPECT_EQ(small, large) << "exporter memory must not scale with span count";
  EXPECT_EQ(large, 0u) << "steady-state streaming allocated";
#endif
}

}  // namespace
}  // namespace xsp::trace
