// FrameSink fallible-sink semantics: short writes (backpressure) keep the
// unaccepted suffix buffered in order, kWriteError latches failure and
// discards, and the BinaryWriter passthroughs (flush/sink_failed/
// sink_pending_bytes) expose exactly that state — the contract
// trace::RemoteSink's bounded-send-buffer and reconnect policy is built
// on. The original FrameSink assumed every write was accepted whole;
// these tests pin the surfaced-short-write fix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>

#include "xsp/trace/wire.hpp"

namespace xsp::trace {
namespace {

/// A sink with a per-call acceptance budget: accepts at most `cap` bytes
/// each call and appends them to `out`. cap == 0 models a saturated
/// socket, kWriteError a dead one.
struct ThrottledSink {
  std::string out;
  std::size_t cap = 0;
  std::size_t calls = 0;
  bool fail = false;

  FrameSink::TryWriteFn fn() {
    return [this](std::string_view bytes) -> std::size_t {
      ++calls;
      if (fail) return FrameSink::kWriteError;
      const std::size_t n = std::min(cap, bytes.size());
      out.append(bytes.substr(0, n));
      return n;
    };
  }
};

TEST(FrameSinkFallible, ShortWritesKeepSuffixPendingAndRetryInOrder) {
  ThrottledSink sink;
  sink.cap = 5;
  FrameSink fs(sink.fn(), FrameSink::Fallible{});
  EXPECT_TRUE(fs.write("hello world, this frame must arrive whole"));

  // Sub-threshold writes buffer; nothing reached the sink yet.
  EXPECT_EQ(sink.out, "");
  // flush drains in cap-sized steps until the sink stops making progress;
  // a cap-K sink never returns 0 here, so one flush fully drains.
  EXPECT_TRUE(fs.flush());
  EXPECT_EQ(sink.out, "hello world, this frame must arrive whole");
  EXPECT_EQ(fs.pending_bytes(), 0u);
  EXPECT_FALSE(fs.failed());
}

TEST(FrameSinkFallible, SaturatedSinkReportsPendingBytesUntilItDrains) {
  ThrottledSink sink;
  sink.cap = 0;  // accepts nothing: a socket whose buffer is full
  FrameSink fs(sink.fn(), FrameSink::Fallible{});
  EXPECT_TRUE(fs.write("abcdef"));
  EXPECT_FALSE(fs.flush());
  EXPECT_EQ(fs.pending_bytes(), 6u);
  EXPECT_FALSE(fs.failed());

  // Later writes queue behind the pending bytes, never ahead of them.
  EXPECT_TRUE(fs.write("ghi"));
  sink.cap = 4;
  EXPECT_TRUE(fs.flush());
  EXPECT_EQ(sink.out, "abcdefghi");
  EXPECT_EQ(fs.pending_bytes(), 0u);
}

TEST(FrameSinkFallible, WriteErrorLatchesDiscardsAndDropsLaterWrites) {
  ThrottledSink sink;
  sink.fail = true;
  FrameSink fs(sink.fn(), FrameSink::Fallible{});
  EXPECT_TRUE(fs.write("doomed"));  // buffered; failure surfaces at drain
  EXPECT_FALSE(fs.flush());
  EXPECT_TRUE(fs.failed());
  EXPECT_EQ(fs.pending_bytes(), 0u) << "failed sink must not retain bytes";

  // Latched: recovery of the fn does not resurrect the sink.
  sink.fail = false;
  sink.cap = 1024;
  EXPECT_FALSE(fs.write("after failure"));
  EXPECT_FALSE(fs.flush());
  EXPECT_EQ(sink.out, "");
}

TEST(FrameSinkFallible, BulkPathShortWriteBuffersRemainderInOrder) {
  // A threshold-sized payload takes the zero-copy bypass; a short accept
  // mid-payload must buffer the suffix so later writes stay behind it.
  ThrottledSink sink;
  sink.cap = FrameSink::kFlushThreshold / 2;
  FrameSink fs(sink.fn(), FrameSink::Fallible{});
  const std::string big(FrameSink::kFlushThreshold, 'A');
  EXPECT_TRUE(fs.write("prefix-"));
  EXPECT_TRUE(fs.write(big));

  sink.cap = 0;  // saturate before the tail goes out
  EXPECT_TRUE(fs.write("-suffix"));
  sink.cap = 1 << 20;
  EXPECT_TRUE(fs.flush());
  EXPECT_EQ(sink.out, "prefix-" + big + "-suffix");
}

TEST(FrameSinkFallible, InfallibleSinksNeverShortNeverFail) {
  std::string out;
  FrameSink fs(FrameSink::WriteFn([&out](std::string_view b) { out.append(b); }));
  EXPECT_TRUE(fs.write("plain"));
  EXPECT_TRUE(fs.flush());
  EXPECT_EQ(out, "plain");
  EXPECT_FALSE(fs.failed());
  EXPECT_EQ(fs.pending_bytes(), 0u);
  EXPECT_EQ(fs.bytes_written(), 5u);
}

TEST(FrameSinkFallible, BinaryWriterSurfacesSinkStateForBackpressurePolicy) {
  ThrottledSink sink;
  sink.cap = 1 << 20;
  BinaryWriter writer(sink.fn(), FrameSink::Fallible{});
  // The 16-byte header buffers below the flush threshold; flush pushes it
  // out through the fallible path.
  EXPECT_TRUE(writer.flush());
  EXPECT_GE(sink.out.size(), sizeof(wire::Header));
  EXPECT_FALSE(writer.sink_failed());

  Span s;
  s.id = 1;
  s.name = "frame_sink_writer_op";
  s.tracer = "frame_sink_test";
  s.begin = 0;
  s.end = 1;

  sink.cap = 0;  // saturate: encoded frames stay pending, not lost
  writer.write_batch({s});
  EXPECT_FALSE(writer.flush());
  EXPECT_GT(writer.sink_pending_bytes(), 0u);
  EXPECT_FALSE(writer.sink_failed());

  sink.cap = 1 << 20;  // socket drains: flush retries and empties
  EXPECT_TRUE(writer.flush());
  EXPECT_EQ(writer.sink_pending_bytes(), 0u);

  sink.fail = true;  // connection dies: failure latches through
  writer.write_batch({s});
  writer.flush();
  EXPECT_TRUE(writer.sink_failed());
}

}  // namespace
}  // namespace xsp::trace
