// Drain-subscriber fan-out: multiple observers plus at most one consumer
// on one drain, subscriber lifecycle, and the per-shard load telemetry
// that rides the same drain counters.
//
// Regression anchor: the pre-fan-out API had a single subscriber slot and
// setting it twice silently replaced the first — a second exporter
// quietly starved the first one. The fan-out API errors loudly instead:
// observers are unlimited, a second kConsume attach throws.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

namespace xsp::trace {
namespace {

Span make_span(SpanId id, TimePoint t) {
  Span s;
  s.id = id;
  s.begin = t;
  s.end = t + 10;
  s.name = "op";
  return s;
}

void publish_n(TraceServer& server, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
  }
}

std::uint64_t count_spans(const SpanBatches& batches) {
  std::uint64_t total = 0;
  for (const auto& b : batches) total += b.size();
  return total;
}

// --- fan-out ---------------------------------------------------------------

TEST(DrainFanout, TwoObserversBothSeeEverySpanAndTraceStillAccumulates) {
  TraceServer server(PublishMode::kSync);
  std::uint64_t seen_a = 0;
  std::uint64_t seen_b = 0;
  server.add_drain_subscriber(
      [&seen_a](const SpanBatches& b) { seen_a += count_spans(b); }, DrainHandoff::kObserve);
  server.add_drain_subscriber(
      [&seen_b](const SpanBatches& b) { seen_b += count_spans(b); }, DrainHandoff::kObserve);
  EXPECT_EQ(server.drain_subscriber_count(), 2u);

  const std::size_t total = 2 * TraceServer::kBatchCapacity + 3;
  publish_n(server, total);
  server.flush();

  EXPECT_EQ(seen_a, total);
  EXPECT_EQ(seen_b, total);
  // Observers tee; the trace still accumulates for the normal consumer.
  EXPECT_EQ(count_spans(server.take_batches()), total);
}

TEST(DrainFanout, ObserverComposesWithConsumer) {
  TraceServer server(PublishMode::kSync);
  std::uint64_t observed = 0;
  std::uint64_t consumed = 0;
  std::vector<int> order;
  server.add_drain_subscriber(
      [&](const SpanBatches& b) {
        observed += count_spans(b);
        order.push_back(0);
      },
      DrainHandoff::kObserve);
  server.add_drain_subscriber(
      [&](const SpanBatches& b) {
        consumed += count_spans(b);
        order.push_back(1);
      },
      DrainHandoff::kConsume);

  const std::size_t total = TraceServer::kBatchCapacity + 9;
  publish_n(server, total);
  server.flush();

  EXPECT_EQ(observed, total);
  EXPECT_EQ(consumed, total);
  // The consumer runs last in every pass: an observer must see a batch
  // before its buffers are declared consumable.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  // Consumed: nothing accumulated.
  EXPECT_TRUE(server.take_batches().empty());
}

TEST(DrainFanout, ObserverAttachedAfterConsumerStillRunsBeforeIt) {
  TraceServer server(PublishMode::kSync);
  std::vector<int> order;
  server.add_drain_subscriber([&](const SpanBatches&) { order.push_back(1); },
                              DrainHandoff::kConsume);
  server.add_drain_subscriber([&](const SpanBatches&) { order.push_back(0); },
                              DrainHandoff::kObserve);
  publish_n(server, TraceServer::kBatchCapacity);
  server.flush();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0) << "observer must be delivered before the consumer";
  EXPECT_EQ(order[1], 1);
}

// --- consumer exclusivity (the loud-error regression) -----------------------

TEST(DrainFanout, SecondConsumerThrowsInsteadOfSilentlyReplacing) {
  TraceServer server(PublishMode::kSync);
  std::uint64_t consumed = 0;
  server.add_drain_subscriber(
      [&consumed](const SpanBatches& b) { consumed += count_spans(b); },
      DrainHandoff::kConsume);
  EXPECT_THROW(server.add_drain_subscriber([](const SpanBatches&) {}, DrainHandoff::kConsume),
               std::logic_error);
  // Observers remain unlimited after the failed attach.
  server.add_drain_subscriber([](const SpanBatches&) {}, DrainHandoff::kObserve);
  EXPECT_EQ(server.drain_subscriber_count(), 2u);

  // And the original consumer still owns the stream.
  publish_n(server, TraceServer::kBatchCapacity);
  server.flush();
  EXPECT_EQ(consumed, TraceServer::kBatchCapacity);
  EXPECT_TRUE(server.take_batches().empty());
}

TEST(DrainFanout, RemovingTheConsumerAllowsANewOne) {
  TraceServer server(PublishMode::kSync);
  const SubscriberId first =
      server.add_drain_subscriber([](const SpanBatches&) {}, DrainHandoff::kConsume);
  server.remove_drain_subscriber(first);
  EXPECT_NO_THROW(
      server.add_drain_subscriber([](const SpanBatches&) {}, DrainHandoff::kConsume));
}

TEST(DrainFanout, NullSubscriberIsRejected) {
  TraceServer server(PublishMode::kSync);
  EXPECT_THROW(server.add_drain_subscriber(DrainSubscriber{}), std::logic_error);
}

// --- lifecycle --------------------------------------------------------------

TEST(DrainFanout, RemoveDetachesOnlyThatSubscriber) {
  TraceServer server(PublishMode::kSync);
  std::uint64_t seen_a = 0;
  std::uint64_t seen_b = 0;
  const SubscriberId a = server.add_drain_subscriber(
      [&seen_a](const SpanBatches& b) { seen_a += count_spans(b); }, DrainHandoff::kObserve);
  server.add_drain_subscriber(
      [&seen_b](const SpanBatches& b) { seen_b += count_spans(b); }, DrainHandoff::kObserve);

  publish_n(server, TraceServer::kBatchCapacity);
  server.flush();
  server.remove_drain_subscriber(a);
  publish_n(server, TraceServer::kBatchCapacity);
  server.flush();

  EXPECT_EQ(seen_a, TraceServer::kBatchCapacity);
  EXPECT_EQ(seen_b, 2 * TraceServer::kBatchCapacity);
  // Unknown/stale ids are a harmless no-op.
  server.remove_drain_subscriber(a);
  server.remove_drain_subscriber(9999);
}

TEST(DrainFanout, ThrowingObserverIsDetachedOthersKeepRunningNoSpansLost) {
  TraceServer server(PublishMode::kSync);
  int throw_calls = 0;
  std::uint64_t healthy_seen = 0;
  server.add_drain_subscriber(
      [&throw_calls](const SpanBatches&) {
        ++throw_calls;
        throw std::runtime_error("observer died");
      },
      DrainHandoff::kObserve);
  server.add_drain_subscriber(
      [&healthy_seen](const SpanBatches& b) { healthy_seen += count_spans(b); },
      DrainHandoff::kObserve);

  publish_n(server, TraceServer::kBatchCapacity);
  server.flush();
  publish_n(server, TraceServer::kBatchCapacity);
  server.flush();

  EXPECT_EQ(throw_calls, 1) << "throwing observer must be detached after the first throw";
  EXPECT_EQ(healthy_seen, 2 * TraceServer::kBatchCapacity)
      << "a healthy observer must survive a sibling's failure";
  // No spans were lost to the failure: observers only tee.
  EXPECT_EQ(count_spans(server.take_batches()), 2 * TraceServer::kBatchCapacity);
}

// --- sharded fan-out + load telemetry ---------------------------------------

TEST(DrainFanout, ShardedShardAwareSubscriberReceivesCorrectShardIndices) {
  // kByTimeWindow with a 1ns window routes span at time t to shard
  // t % kShards, so one thread deterministically feeds every shard.
  constexpr std::size_t kShards = 3;
  ShardedTraceServer server(kShards, PublishMode::kSync, ShardPolicy::kByTimeWindow, 1);

  std::vector<std::uint64_t> per_shard(kShards, 0);
  server.add_drain_subscriber(
      [&per_shard](std::size_t shard, const SpanBatches& b) {
        ASSERT_LT(shard, per_shard.size());
        per_shard[shard] += count_spans(b);
      },
      DrainHandoff::kConsume);

  constexpr std::size_t kPerShard = 2 * TraceServer::kBatchCapacity;
  for (std::size_t i = 0; i < kShards * kPerShard; ++i) {
    server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i % kShards)));
  }
  server.flush();

  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(per_shard[shard], kPerShard) << "shard " << shard;
    // The server-side load counters tell the same story, and survive the
    // consumer keeping the shards empty.
    EXPECT_EQ(server.span_count(shard), kPerShard);
  }
  EXPECT_EQ(server.shard_loads(), per_shard);
  EXPECT_TRUE(server.take_batches().empty());
}

TEST(DrainFanout, ShardLoadsAreCumulativeAcrossTakes) {
  ShardedTraceServer server(2, PublishMode::kSync, ShardPolicy::kByTimeWindow, 1);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < 2 * TraceServer::kBatchCapacity; ++i) {
      server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i % 2)));
    }
    server.recycle(server.take_batches());
  }
  // span_count() (held) is zero after the takes; the loads are not.
  EXPECT_EQ(server.span_count(), 0u);
  const auto loads = server.shard_loads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0], 3 * TraceServer::kBatchCapacity);
  EXPECT_EQ(loads[1], 3 * TraceServer::kBatchCapacity);
}

TEST(DrainFanout, ShardedSecondConsumerThrowsAndLeavesNoPartialSubscription) {
  ShardedTraceServer server(4, PublishMode::kSync);
  server.add_drain_subscriber([](const SpanBatches&) {}, DrainHandoff::kConsume);
  EXPECT_THROW(
      server.add_drain_subscriber([](std::size_t, const SpanBatches&) {},
                                  DrainHandoff::kConsume),
      std::logic_error);
  // The failed attach unwound cleanly: every shard still has exactly the
  // first consumer attached.
  for (std::size_t i = 0; i < server.shard_count(); ++i) {
    EXPECT_EQ(server.shard(i).drain_subscriber_count(), 1u) << "shard " << i;
  }
}

TEST(DrainFanout, ConcurrentPublishersFanOutToObserverAndConsumer) {
  // 4 publisher threads, async collectors, an observer and a consumer on
  // every shard: both must account for every span exactly once.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 3000;
  ShardedTraceServer server(2, PublishMode::kAsync);

  std::atomic<std::uint64_t> observed{0};
  std::atomic<std::uint64_t> consumed{0};
  server.add_drain_subscriber(
      [&observed](const SpanBatches& b) {
        observed.fetch_add(count_spans(b), std::memory_order_relaxed);
      },
      DrainHandoff::kObserve);
  server.add_drain_subscriber(
      [&consumed](const SpanBatches& b) {
        consumed.fetch_add(count_spans(b), std::memory_order_relaxed);
      },
      DrainHandoff::kConsume);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        server.publish(make_span(server.next_span_id(), static_cast<TimePoint>(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  server.flush();

  EXPECT_EQ(observed.load(), kThreads * kPerThread);
  EXPECT_EQ(consumed.load(), kThreads * kPerThread);
  std::uint64_t load_total = 0;
  for (const auto load : server.shard_loads()) load_total += load;
  EXPECT_EQ(load_total, kThreads * kPerThread);
  EXPECT_TRUE(server.take_batches().empty());
}

}  // namespace
}  // namespace xsp::trace
