#include "xsp/trace/timeline.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xsp::trace {
namespace {

Span make(SpanId id, int level, TimePoint b, TimePoint e, std::string name,
          SpanId parent = kNoSpan) {
  Span s;
  s.id = id;
  s.level = level;
  s.begin = b;
  s.end = e;
  s.name = std::move(name);
  s.parent = parent;
  return s;
}

// model [0,1000] > layer1 [10,400] > k1 [20,100], k2 [150,300];
//                  layer2 [420,900] > k3 [500,600]
std::vector<Span> nested_trace() {
  std::vector<Span> spans;
  spans.push_back(make(1, kModelLevel, 0, 1000, "Predict"));
  spans.push_back(make(2, kLayerLevel, 10, 400, "conv0"));
  spans.push_back(make(3, kLayerLevel, 420, 900, "relu0"));
  spans.push_back(make(4, kKernelLevel, 20, 100, "k1"));
  spans.push_back(make(5, kKernelLevel, 150, 300, "k2"));
  spans.push_back(make(6, kKernelLevel, 500, 600, "k3"));
  return spans;
}

TEST(Timeline, ReconstructsNestedHierarchyByIntervals) {
  auto tl = Timeline::assemble(nested_trace());
  ASSERT_EQ(tl.roots().size(), 1u);
  const SpanId root = tl.roots()[0];
  EXPECT_EQ(tl.node(root).span.name, "Predict");
  ASSERT_EQ(tl.children(root).size(), 2u);
  EXPECT_EQ(tl.node(tl.children(root)[0]).span.name, "conv0");
  EXPECT_EQ(tl.node(tl.children(root)[1]).span.name, "relu0");

  const SpanId conv0 = tl.children(root)[0];
  ASSERT_EQ(tl.children(conv0).size(), 2u);
  EXPECT_EQ(tl.node(tl.children(conv0)[0]).span.name, "k1");
  EXPECT_EQ(tl.node(tl.children(conv0)[1]).span.name, "k2");

  const SpanId relu0 = tl.children(root)[1];
  ASSERT_EQ(tl.children(relu0).size(), 1u);
  EXPECT_EQ(tl.node(tl.children(relu0)[0]).span.name, "k3");
  EXPECT_EQ(tl.ambiguous_count(), 0u);
}

TEST(Timeline, ExplicitParentOverridesIntervals) {
  auto spans = nested_trace();
  // Attach k3 explicitly to conv0 even though its interval sits in relu0.
  spans[5].parent = 2;
  auto tl = Timeline::assemble(spans);
  const auto& k3 = tl.node(6);
  EXPECT_EQ(k3.parent, 2u);
}

TEST(Timeline, ExplicitParentsCanBeDistrusted) {
  auto spans = nested_trace();
  spans[5].parent = 2;
  AssembleOptions opts;
  opts.trust_explicit_parents = false;
  auto tl = Timeline::assemble(spans, opts);
  EXPECT_EQ(tl.node(6).parent, 3u);  // back to interval containment
}

TEST(Timeline, AbsentLevelsAreSkippedInParentSearch) {
  // A kernel-level span with no layer or library profiling enabled:
  // those level trees are empty, so the parent search falls through to the
  // model span (Section III-E: tracers can be enabled per level, and the
  // hierarchy must still assemble).
  std::vector<Span> spans;
  spans.push_back(make(1, kModelLevel, 0, 100, "Predict"));
  spans.push_back(make(2, kKernelLevel, 10, 20, "k"));
  auto tl = Timeline::assemble(spans);
  ASSERT_EQ(tl.roots().size(), 1u);
  EXPECT_EQ(tl.node(2).parent, 1u);
}

TEST(Timeline, LibraryLevelNestsBetweenLayerAndKernel) {
  // With an ML-library tracer attached, kernels parent onto the library
  // call span and the library span onto the layer.
  std::vector<Span> spans;
  spans.push_back(make(1, kModelLevel, 0, 1000, "Predict"));
  spans.push_back(make(2, kLayerLevel, 10, 400, "conv0"));
  spans.push_back(make(3, kLibraryLevel, 20, 120, "cudnnConvolutionForward"));
  spans.push_back(make(4, kKernelLevel, 30, 100, "volta_scudnn"));
  auto tl = Timeline::assemble(spans);
  EXPECT_EQ(tl.node(4).parent, 3u);
  EXPECT_EQ(tl.node(3).parent, 2u);
  EXPECT_EQ(tl.node(2).parent, 1u);
}

TEST(Timeline, KernelOutsideLibraryWindowFallsToNoParent) {
  // A kernel whose interval is not contained by any library span stays
  // unparented rather than mis-attaching (the level exists, so no
  // fall-through happens).
  std::vector<Span> spans;
  spans.push_back(make(1, kLibraryLevel, 0, 50, "cublasSgemm"));
  spans.push_back(make(2, kKernelLevel, 60, 80, "stray"));
  auto tl = Timeline::assemble(spans);
  EXPECT_EQ(tl.node(2).parent, kNoSpan);
}

TEST(Timeline, CorrelatesLaunchAndExecutionSpans) {
  std::vector<Span> spans;
  spans.push_back(make(1, kModelLevel, 0, 1000, "Predict"));
  spans.push_back(make(2, kLayerLevel, 10, 100, "conv0"));

  // Launch inside the layer; execution completes after the layer ended.
  Span launch = make(3, kKernelLevel, 20, 25, "k_launch");
  launch.kind = SpanKind::kLaunch;
  launch.correlation_id = 42;
  Span exec = make(4, kKernelLevel, 120, 200, "volta_scudnn");
  exec.kind = SpanKind::kExecution;
  exec.correlation_id = 42;
  exec.metrics.set("flop_count_sp", 5e9);
  spans.push_back(launch);
  spans.push_back(exec);

  auto tl = Timeline::assemble(spans);
  EXPECT_EQ(tl.correlated_async_count(), 1u);
  EXPECT_EQ(tl.unmatched_async_count(), 0u);

  // The merged kernel node: parent via launch interval, timing from exec.
  const auto kid = tl.find_by_name("volta_scudnn");
  ASSERT_TRUE(kid.has_value());
  const auto& node = tl.node(*kid);
  EXPECT_TRUE(node.is_async);
  EXPECT_EQ(node.parent, 2u);
  EXPECT_EQ(node.span.begin, 120);
  EXPECT_EQ(node.span.end, 200);
  EXPECT_EQ(node.launch_begin, 20);
  EXPECT_EQ(node.launch_end, 25);
  EXPECT_DOUBLE_EQ(node.span.metrics.at("flop_count_sp"), 5e9);
}

TEST(Timeline, UnmatchedAsyncSpansDegradeGracefully) {
  std::vector<Span> spans;
  Span launch = make(1, kKernelLevel, 0, 5, "k_launch");
  launch.kind = SpanKind::kLaunch;
  launch.correlation_id = 7;
  spans.push_back(launch);
  auto tl = Timeline::assemble(spans);
  EXPECT_EQ(tl.unmatched_async_count(), 1u);
  EXPECT_EQ(tl.size(), 1u);
}

TEST(Timeline, AmbiguousParentDetectedForParallelEvents) {
  // Two identical overlapping layer spans both contain the kernel: parallel
  // execution makes the parent ambiguous, requiring a serialized re-run.
  std::vector<Span> spans;
  spans.push_back(make(1, kLayerLevel, 0, 100, "branch_a"));
  spans.push_back(make(2, kLayerLevel, 0, 100, "branch_b"));
  spans.push_back(make(3, kKernelLevel, 10, 20, "k"));
  auto tl = Timeline::assemble(spans);
  EXPECT_EQ(tl.ambiguous_count(), 1u);
}

TEST(Timeline, SmallestEnclosingIntervalWins) {
  // Nested same-level spans: the tighter one is the parent.
  std::vector<Span> spans;
  spans.push_back(make(1, kLayerLevel, 0, 1000, "outer"));
  spans.push_back(make(2, kLayerLevel, 100, 300, "inner"));
  spans.push_back(make(3, kKernelLevel, 150, 200, "k"));
  auto tl = Timeline::assemble(spans);
  EXPECT_EQ(tl.node(3).parent, 2u);
  EXPECT_EQ(tl.ambiguous_count(), 0u);
}

TEST(Timeline, AtLevelReturnsSpansInTimeOrder) {
  auto tl = Timeline::assemble(nested_trace());
  const auto kernels = tl.at_level(kKernelLevel);
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_EQ(tl.node(kernels[0]).span.name, "k1");
  EXPECT_EQ(tl.node(kernels[1]).span.name, "k2");
  EXPECT_EQ(tl.node(kernels[2]).span.name, "k3");
}

TEST(Timeline, WalkVisitsEveryNodeWithDepths) {
  auto tl = Timeline::assemble(nested_trace());
  int count = 0;
  int max_depth = 0;
  tl.walk([&](const TimelineNode&, int depth) {
    ++count;
    max_depth = std::max(max_depth, depth);
  });
  EXPECT_EQ(count, 6);
  EXPECT_EQ(max_depth, 2);
}

TEST(Timeline, EmptyTraceYieldsEmptyTimeline) {
  auto tl = Timeline::assemble(std::vector<Span>{});
  EXPECT_TRUE(tl.empty());
  EXPECT_TRUE(tl.roots().empty());
}

TEST(Timeline, FindByNamePicksEarliest) {
  std::vector<Span> spans;
  spans.push_back(make(1, kLayerLevel, 100, 200, "conv"));
  spans.push_back(make(2, kLayerLevel, 0, 50, "conv"));
  auto tl = Timeline::assemble(spans);
  const auto found = tl.find_by_name("conv");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 2u);
}

TEST(Timeline, DeterministicRegardlessOfPublicationOrder) {
  auto spans = nested_trace();
  std::vector<Span> reversed(spans.rbegin(), spans.rend());
  auto a = Timeline::assemble(spans);
  auto b = Timeline::assemble(reversed);
  ASSERT_EQ(a.roots().size(), b.roots().size());
  const auto ka = a.at_level(kKernelLevel);
  const auto kb = b.at_level(kKernelLevel);
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) {
    EXPECT_EQ(a.node(ka[i]).span.name, b.node(kb[i]).span.name);
    EXPECT_EQ(a.node(ka[i]).parent, b.node(kb[i]).parent);
  }
}

}  // namespace
}  // namespace xsp::trace
