// Acceptance workload for bounded interning, on the PROCESS-GLOBAL
// string table and the real publish path: a high-cardinality tag stream
// must plateau approx_bytes() at the configured budget with exact
// rejection accounting, and the same stream carried as inline value tags
// must intern nothing at all. The global budget is process-wide state —
// every test here restores set_budget_bytes(0) before returning so the
// rest of the binary sees an unbounded table.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "xsp/common/string_table.hpp"
#include "xsp/trace/span.hpp"
#include "xsp/trace/trace_server.hpp"
#include "xsp/trace/tracer.hpp"

namespace xsp::trace {
namespace {

constexpr int kRequests = 4000;

TEST(BoundedInterningWorkload, ApproxBytesPlateausAtBudgetWithExactRejections) {
  auto& table = common::StringTable::global();
  const std::size_t base_bytes = table.approx_bytes();
  const std::uint64_t base_rejected = table.rejected_interns();
  // Headroom for a handful of admissions, then a hard ceiling well below
  // what kRequests unique values would cost unbounded.
  const std::size_t budget = base_bytes + 2048;
  table.set_budget_bytes(budget);

  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "workload", kKernelLevel);
  const StrId key{"request_id"};
  std::uint64_t sentinel_hits = 0;
  for (int i = 0; i < kRequests; ++i) {
    const SpanId id = tracer.start_span("hc_kernel", static_cast<Ns>(i));
    // The interning path: every unique value tries the table. Past the
    // budget each attempt resolves to the sentinel and counts.
    const StrId value{"hc-value-" + std::to_string(i)};
    if (value.raw() == table.sentinel_id()) ++sentinel_hits;
    tracer.add_tag(id, key, value);
    tracer.finish_span(id, static_cast<Ns>(i) + 1);
  }
  const std::size_t plateau = table.approx_bytes();
  const std::uint64_t rejected = table.rejected_interns() - base_rejected;
  table.set_budget_bytes(0);

  EXPECT_LE(plateau, budget) << "approx_bytes must plateau at the budget";
  EXPECT_GT(sentinel_hits, 0u) << "the budget never bit; raise kRequests";
  // Exactness: every sentinel handed back corresponds to one counted
  // rejection — no TLS-cached rejections, no double counting.
  EXPECT_EQ(rejected, sentinel_hits);
  EXPECT_EQ(server.take_trace().size(), static_cast<std::size_t>(kRequests));
}

TEST(BoundedInterningWorkload, InlineTagWorkloadInternsZeroNewStrings) {
  auto& table = common::StringTable::global();
  table.set_budget_bytes(0);  // unbounded: any leak would grow the table

  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "workload", kKernelLevel);
  // The constants intern once, up front; the measured loop must add none.
  const StrId name{"hc_inline_kernel"};
  const StrId key{"request_id"};
  const std::size_t before_size = table.size();
  const std::size_t before_bytes = table.approx_bytes();
  const std::uint64_t before_rejected = table.rejected_interns();

  for (int i = 0; i < kRequests; ++i) {
    const SpanId id = tracer.start_span(name, static_cast<Ns>(i));
    char rid[InlineTagMap::kValueCapacity + 1];
    std::snprintf(rid, sizeof rid, "req-%08d", i);
    tracer.tag_inline(id, key, rid);
    tracer.finish_span(id, static_cast<Ns>(i) + 1);
  }

  EXPECT_EQ(table.size(), before_size);
  EXPECT_EQ(table.approx_bytes(), before_bytes);
  EXPECT_EQ(table.rejected_interns(), before_rejected);

  const auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(trace.front().inline_tags.value_or(key), "req-00000000");
  EXPECT_EQ(trace.back().inline_tags.value_or(key),
            "req-" + std::string(4, '0') + "3999");
}

}  // namespace
}  // namespace xsp::trace
