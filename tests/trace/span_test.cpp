#include "xsp/trace/span.hpp"

#include <gtest/gtest.h>

namespace xsp::trace {
namespace {

TEST(Span, DurationIsEndMinusBegin) {
  Span s;
  s.begin = us(10);
  s.end = us(35);
  EXPECT_EQ(s.duration(), us(25));
}

TEST(Span, DefaultsAreEmpty) {
  Span s;
  EXPECT_EQ(s.id, kNoSpan);
  EXPECT_EQ(s.parent, kNoSpan);
  EXPECT_EQ(s.kind, SpanKind::kRegular);
  EXPECT_EQ(s.correlation_id, 0u);
  EXPECT_TRUE(s.tags.empty());
  EXPECT_TRUE(s.metrics.empty());
}

TEST(Span, LevelNamesMatchPaperNumbering) {
  EXPECT_STREQ(level_name(kModelLevel), "model");
  EXPECT_STREQ(level_name(kLayerLevel), "layer");
  EXPECT_STREQ(level_name(kLibraryLevel), "library");
  EXPECT_STREQ(level_name(kKernelLevel), "gpu_kernel");
  EXPECT_STREQ(level_name(kApplicationLevel), "application");
  EXPECT_STREQ(level_name(42), "custom");
}

TEST(Span, KindNames) {
  EXPECT_STREQ(kind_name(SpanKind::kRegular), "regular");
  EXPECT_STREQ(kind_name(SpanKind::kLaunch), "launch");
  EXPECT_STREQ(kind_name(SpanKind::kExecution), "execution");
}

TEST(Span, LevelsAreOrderedTopDown) {
  // Parent reconstruction relies on "one level higher" meaning level - 1,
  // with absent levels skipped. The ML-library level (Section III-E) sits
  // between layer and kernel.
  EXPECT_EQ(kModelLevel, kApplicationLevel + 1);
  EXPECT_EQ(kLayerLevel, kModelLevel + 1);
  EXPECT_EQ(kLibraryLevel, kLayerLevel + 1);
  EXPECT_EQ(kKernelLevel, kLibraryLevel + 1);
}

}  // namespace
}  // namespace xsp::trace
