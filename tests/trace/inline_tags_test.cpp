// Inline value tags (Span::inline_tags / InlineTagMap) and the
// dropped_annotations saturation guard. Inline tags carry small
// high-cardinality values (grid/block dims, request ids) inside the span
// itself so they never touch the process-lifetime StringTable; the map
// mirrors FlatMap's fixed-capacity discipline, and overflow feeds the
// same dropped_annotations fidelity signal tags/metrics use — which in
// turn must saturate at 0xFFFF, never wrap back to "clean".
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "xsp/common/string_table.hpp"
#include "xsp/trace/span.hpp"
#include "xsp/trace/trace_server.hpp"
#include "xsp/trace/tracer.hpp"

namespace xsp::trace {
namespace {

std::size_t global_interned() { return common::StringTable::global().size(); }

TEST(InlineTagMap, SetGetOverwriteAndCapacity) {
  InlineTagMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), InlineTagMap::kCapacity);

  const StrId grid{"grid"};
  const StrId block{"block"};
  EXPECT_TRUE(m.set(grid, "[4,1,1]"));
  EXPECT_TRUE(m.set(block, "[256,1,1]"));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.value_or(grid), "[4,1,1]");
  EXPECT_EQ(m.value_or(block), "[256,1,1]");
  EXPECT_EQ(m.count(grid), 1u);

  // Overwriting an existing key succeeds even at capacity.
  EXPECT_TRUE(m.set(grid, "[8,2,1]"));
  EXPECT_EQ(m.value_or(grid), "[8,2,1]");
  EXPECT_EQ(m.size(), 2u);

  // A third distinct key reports rejection, leaving the map intact.
  EXPECT_FALSE(m.set(StrId{"overflow"}, "x"));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.value_or(StrId{"overflow"}, "fallback"), "fallback");
}

TEST(InlineTagMap, ValuesTruncateAtValueCapacity) {
  InlineTagMap m;
  const std::string long_value(InlineTagMap::kValueCapacity + 16, 'x');
  EXPECT_TRUE(m.set(StrId{"k"}, long_value));
  const std::string_view stored = m.value_or(StrId{"k"});
  EXPECT_EQ(stored.size(), InlineTagMap::kValueCapacity);
  EXPECT_EQ(stored, long_value.substr(0, InlineTagMap::kValueCapacity));
}

TEST(InlineTagMap, ValidRejectsHostileCounts) {
  InlineTagMap m;
  m.set(StrId{"k"}, "v");
  EXPECT_TRUE(m.valid());
  // A wire-decoded span is untrusted bytes: memcpy a corrupted image the
  // way the decoder would receive one and check valid() catches it. The
  // count is the map's trailing std::uint32_t.
  InlineTagMap hostile;
  unsigned char raw[sizeof(InlineTagMap)];
  std::memcpy(raw, &m, sizeof raw);
  const std::uint32_t bad_count = 0xFF;  // > kCapacity
  std::memcpy(raw + sizeof raw - sizeof bad_count, &bad_count, sizeof bad_count);
  std::memcpy(&hostile, raw, sizeof hostile);
  EXPECT_FALSE(hostile.valid());
}

TEST(InlineTagMap, RemapKeysRewritesKeysOnly) {
  InlineTagMap m;
  const StrId a{"remap-a"};
  const StrId b{"remap-b"};
  m.set(a, "va");
  m.set(b, "vb");
  m.remap_keys([](StrId k) { return StrId::from_raw(k.raw() + 1000); });
  EXPECT_EQ(m.count(a), 0u);
  EXPECT_EQ(m.value_or(StrId::from_raw(a.raw() + 1000)), "va");
  EXPECT_EQ(m.value_or(StrId::from_raw(b.raw() + 1000)), "vb");
}

TEST(Tracer, TagInlineAttachesWithoutInterningValues) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "gpu", kKernelLevel);
  const StrId key{"request_id"};  // the key interns once, here
  const SpanId id = tracer.start_span("kernel", 0);

  const std::size_t before = global_interned();
  // High-cardinality values: none of these bytes may reach the table.
  tracer.tag_inline(id, key, "req-000042");
  tracer.finish_span(id, 10);
  EXPECT_EQ(global_interned(), before);

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].inline_tags.value_or(key), "req-000042");
  EXPECT_EQ(trace[0].dropped_annotations, 0u);
}

TEST(Tracer, TagInlineOverflowCountsAsDroppedAnnotation) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "gpu", kKernelLevel);
  const SpanId id = tracer.start_span("kernel", 0);
  tracer.tag_inline(id, StrId{"k1"}, "a");
  tracer.tag_inline(id, StrId{"k2"}, "b");
  tracer.tag_inline(id, StrId{"k3"}, "c");  // over capacity
  tracer.finish_span(id, 10);

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].inline_tags.size(), InlineTagMap::kCapacity);
  EXPECT_EQ(trace[0].dropped_annotations, 1u);
}

TEST(ScopedSpan, TagInlineForwardsToGuardedSpan) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "model", kModelLevel);
  const StrId key{"request_id"};
  {
    Ns t = 0;
    ScopedSpan span(tracer, "request", [&t] { return t += 10; });
    span.tag_inline(key, "req-7");
  }
  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].inline_tags.value_or(key), "req-7");
}

TEST(Span, NoteDroppedSaturatesAtMax) {
  Span s;
  s.note_dropped();
  EXPECT_EQ(s.dropped_annotations, 1u);
  // 65535 more single drops would wrap a bare uint16 increment to 0 —
  // the "at least 65535 drops" signal must stick instead.
  for (int i = 0; i < 0x10000; ++i) s.note_dropped();
  EXPECT_EQ(s.dropped_annotations, 0xFFFFu);
  s.note_dropped();
  EXPECT_EQ(s.dropped_annotations, 0xFFFFu);
  // Bulk accounting (timeline merge folding a launch span's drops into
  // the execution span) saturates the same way.
  Span bulk;
  bulk.note_dropped(3);
  EXPECT_EQ(bulk.dropped_annotations, 3u);
  bulk.note_dropped(0x10000);
  EXPECT_EQ(bulk.dropped_annotations, 0xFFFFu);
}

TEST(Tracer, DroppedAnnotationsSaturateThroughAddTag) {
  TraceServer server(PublishMode::kSync);
  Tracer tracer(server, "t", kLayerLevel);
  const SpanId id = tracer.start_span("span", 0);
  // Fill the tag map with distinct keys (anything past capacity already
  // drops), then push one rejected key far past the uint16 range.
  const StrId value{"v"};
  for (int i = 0; i < 64; ++i) tracer.add_tag(id, StrId{"satkey-" + std::to_string(i)}, value);
  const StrId overflow_key{"satkey-overflow"};
  for (int n = 0; n < 0x10001; ++n) tracer.add_tag(id, overflow_key, value);
  tracer.finish_span(id, 1);

  auto trace = server.take_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].dropped_annotations, 0xFFFFu);
}

}  // namespace
}  // namespace xsp::trace
