#include "xsp/common/rng.hpp"

#include <gtest/gtest.h>

namespace xsp {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, DoubleInUnitInterval) {
  SplitMix64 g(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = g.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(SplitMix64, UniformRespectsBounds) {
  SplitMix64 g(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = g.uniform(5.0, 6.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 6.0);
  }
}

TEST(SplitMix64, BelowZeroIsZero) {
  SplitMix64 g(3);
  EXPECT_EQ(g.below(0), 0u);
}

TEST(SplitMix64, BelowRespectsModulus) {
  SplitMix64 g(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(g.below(10), 10u);
}

}  // namespace
}  // namespace xsp
