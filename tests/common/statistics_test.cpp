#include "xsp/common/statistics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xsp {
namespace {

TEST(Statistics, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Statistics, MeanOfConstants) {
  const std::vector<double> xs{4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
}

TEST(Statistics, MeanSimple) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Statistics, StddevNeedsTwoSamples) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(Statistics, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);  // sample stddev
}

TEST(Statistics, TrimmedMeanDropsOutliers) {
  // One enormous outlier among ten samples; 20% trim removes it.
  std::vector<double> xs{10, 10, 10, 10, 10, 10, 10, 10, 10, 1000};
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.2), 10.0);
}

TEST(Statistics, TrimmedMeanFallsBackForTinySamples) {
  const std::vector<double> xs{1.0, 100.0};
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.2), 50.5);
}

TEST(Statistics, TrimmedMeanZeroTrimIsMean) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.0), mean(xs));
}

TEST(Statistics, PercentileEndpoints) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Statistics, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Statistics, PercentileClampsOutOfRange) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200), 3.0);
}

TEST(Statistics, SummaryFieldsConsistent) {
  const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

// Property sweep: trimmed mean always lies within [min, max] and trimming
// never moves the estimate outside the untrimmed extremes.
class TrimmedMeanProperty : public ::testing::TestWithParam<double> {};

TEST_P(TrimmedMeanProperty, WithinBounds) {
  const double trim = GetParam();
  std::vector<double> xs;
  for (int i = 0; i < 101; ++i) xs.push_back(static_cast<double>((i * 37) % 101));
  const double tm = trimmed_mean(xs, trim);
  EXPECT_GE(tm, min_of(xs));
  EXPECT_LE(tm, max_of(xs));
}

INSTANTIATE_TEST_SUITE_P(Trims, TrimmedMeanProperty,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.49));

}  // namespace
}  // namespace xsp
