// Bounded-interning semantics of StringTable: the byte budget, the
// reserved "<interned-cap>" sentinel, exact rejection accounting, the
// TLS intern-cache behaviour at the budget boundary, and the id-space
// slot-ceiling guard. All on private StringTable instances so the
// process-global table's state (and the tests that pin its telemetry)
// stays untouched. These suites run under the TSan and ASan CI matrices
// like the rest of tests/common.
#include "xsp/common/string_table.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace xsp::common {
namespace {

TEST(StringTableBudget, FreshTableHasResolvableSentinelOutsideTelemetry) {
  StringTable table;
  // The sentinel is reserved at construction but excluded from the growth
  // telemetry, exactly like the empty string: a fresh table reports
  // empty even though sentinel_id() already resolves.
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.approx_bytes(), 0u);
  EXPECT_NE(table.sentinel_id(), 0u);
  EXPECT_EQ(table.str(table.sentinel_id()), StringTable::kSentinel);
  EXPECT_EQ(table.rejected_interns(), 0u);
  EXPECT_EQ(table.budget_bytes(), 0u);
}

TEST(StringTableBudget, InterningTheSentinelTextYieldsTheSentinelId) {
  StringTable table;
  // Not a rejection — the hit path finds the reserved entry.
  EXPECT_EQ(table.intern(StringTable::kSentinel), table.sentinel_id());
  EXPECT_EQ(table.rejected_interns(), 0u);
}

TEST(StringTableBudget, RejectsPastBudgetAndPlateausUnderIt) {
  StringTable table;
  table.set_budget_bytes(1);  // below any entry's cost: everything rejects
  const std::uint32_t id = table.intern("over-budget");
  EXPECT_EQ(id, table.sentinel_id());
  EXPECT_EQ(table.str(id), StringTable::kSentinel);
  EXPECT_EQ(table.rejected_interns(), 1u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_LE(table.approx_bytes(), 1u);
}

TEST(StringTableBudget, ExistingStringsResolvePastBudgetNewOnesReject) {
  StringTable table;
  const std::uint32_t hot = table.intern("hot-path-key");
  ASSERT_NE(hot, table.sentinel_id());
  table.set_budget_bytes(1);
  // Already-interned strings keep their real ids — only growth is capped.
  EXPECT_EQ(table.intern("hot-path-key"), hot);
  EXPECT_EQ(table.rejected_interns(), 0u);
  EXPECT_EQ(table.intern("brand-new"), table.sentinel_id());
  EXPECT_EQ(table.rejected_interns(), 1u);
}

TEST(StringTableBudget, RejectedInternsCountsEveryCallExactly) {
  StringTable table;
  table.set_budget_bytes(1);
  // Rejections must never be cached: each repeated call re-attempts the
  // intern and counts again, which is what makes the counter exact and
  // what lets a later budget raise actually admit the string.
  constexpr int kStrings = 7;
  constexpr int kRepeats = 5;
  for (int r = 0; r < kRepeats; ++r) {
    for (int s = 0; s < kStrings; ++s) {
      EXPECT_EQ(table.intern("rejected-" + std::to_string(s)), table.sentinel_id());
    }
  }
  EXPECT_EQ(table.rejected_interns(),
            static_cast<std::uint64_t>(kStrings) * kRepeats);
}

TEST(StringTableBudget, BudgetRaiseAdmitsPreviouslyRejectedStrings) {
  StringTable table;
  table.set_budget_bytes(1);
  EXPECT_EQ(table.intern("late-bloomer"), table.sentinel_id());
  table.set_budget_bytes(1 << 20);
  const std::uint32_t id = table.intern("late-bloomer");
  EXPECT_NE(id, table.sentinel_id());
  EXPECT_EQ(table.str(id), "late-bloomer");
  // And the admitted entry is cached/stable like any other.
  EXPECT_EQ(table.intern("late-bloomer"), id);
}

TEST(StringTableBudget, TlsCacheSurvivesBudgetBoundary) {
  StringTable table;
  // Interned before the budget: lands in this thread's TLS intern cache.
  const std::uint32_t cached = table.intern("cached-before-budget");
  table.set_budget_bytes(1);
  // The cache (and the shared-lock hit path behind it) must still resolve
  // to the real id — the budget gates growth, not resolution.
  EXPECT_EQ(table.intern("cached-before-budget"), cached);
  EXPECT_EQ(table.rejected_interns(), 0u);
  // A miss at the boundary rejects, and — because rejections are never
  // cached — the same bytes intern for real the moment the budget lifts.
  EXPECT_EQ(table.intern("missed-at-budget"), table.sentinel_id());
  table.set_budget_bytes(0);
  EXPECT_NE(table.intern("missed-at-budget"), table.sentinel_id());
}

TEST(StringTableBudget, SentinelStableAndAccountingExactAcrossThreads) {
  StringTable table;
  table.set_budget_bytes(1);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> mismatches(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &mismatches, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint32_t id =
            table.intern("t" + std::to_string(t) + "-v" + std::to_string(i));
        if (id != table.sentinel_id()) ++mismatches[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
  EXPECT_EQ(table.rejected_interns(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(table.size(), 0u);
}

TEST(StringTableBudget, ForEachSinceDeliversSentinelExactlyOnce) {
  StringTable table;
  table.intern("alpha");
  table.set_budget_bytes(1);
  table.intern("rejected-one");
  table.intern("rejected-two");

  StringTable::Cursor cursor;
  std::vector<std::pair<std::uint32_t, std::string>> delivered;
  table.for_each_since(cursor, [&](std::uint32_t id, std::string_view s) {
    delivered.emplace_back(id, std::string(s));
  });
  // First snapshot: the sentinel (a real entry the wire must ship) plus
  // "alpha"; rejected strings were never interned so never appear.
  std::size_t sentinel_count = 0;
  bool saw_alpha = false;
  for (const auto& [id, s] : delivered) {
    if (id == table.sentinel_id()) {
      EXPECT_EQ(s, StringTable::kSentinel);
      ++sentinel_count;
    }
    if (s == "alpha") saw_alpha = true;
    EXPECT_NE(s, "rejected-one");
    EXPECT_NE(s, "rejected-two");
  }
  EXPECT_EQ(sentinel_count, 1u);
  EXPECT_TRUE(saw_alpha);

  // Later deltas — even after more rejections resolve to the sentinel —
  // must not deliver it again: it was already shipped once.
  table.intern("rejected-three");
  std::size_t second_delta = 0;
  table.for_each_since(cursor, [&](std::uint32_t, std::string_view) { ++second_delta; });
  EXPECT_EQ(second_delta, 0u);
}

TEST(StringTableSlotGuard, SaturatesToSentinelAtSlotCeiling) {
  StringTable table;
  // A ceiling of 2 slots/shard stands in for the real 2^28 one: the guard
  // must hand back the sentinel instead of letting `slot << kShardBits`
  // wrap into an id already issued to another string.
  constexpr std::uint32_t kLimit = 2;
  table.set_slot_limit_for_testing(kLimit);
  std::set<std::uint32_t> real_ids;
  constexpr int kAttempts = 256;
  for (int i = 0; i < kAttempts; ++i) {
    const std::uint32_t id = table.intern("slot-guard-" + std::to_string(i));
    if (id == table.sentinel_id()) continue;
    // Every admitted id is unique (no wrap-around collisions) and decodes
    // to a slot under the ceiling.
    EXPECT_TRUE(real_ids.insert(id).second) << "colliding id " << id;
    EXPECT_LT(id >> StringTable::kShardBits, kLimit);
  }
  // The ceiling actually bit: far fewer than kAttempts slots exist.
  EXPECT_LE(real_ids.size(), static_cast<std::size_t>(kLimit) * StringTable::kShardCount);
  EXPECT_EQ(table.rejected_interns(),
            static_cast<std::uint64_t>(kAttempts) - real_ids.size());
  // Raising the ceiling back un-wedges future interns (saturation, not a
  // poisoned table).
  table.set_slot_limit_for_testing(StringTable::kMaxSlotsPerShard);
  EXPECT_NE(table.intern("after-the-ceiling"), table.sentinel_id());
}

}  // namespace
}  // namespace xsp::common
