#include "xsp/common/clock.hpp"

#include <gtest/gtest.h>

namespace xsp {
namespace {

TEST(SimClock, StartsAtZero) {
  SimClock c;
  EXPECT_EQ(c.now(), 0);
}

TEST(SimClock, StartsAtGivenOrigin) {
  SimClock c(ms(5));
  EXPECT_EQ(c.now(), ms(5));
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock c;
  c.advance(us(10));
  c.advance(us(15));
  EXPECT_EQ(c.now(), us(25));
}

TEST(SimClock, AdvanceReturnsNewTime) {
  SimClock c;
  EXPECT_EQ(c.advance(ms(1)), ms(1));
}

TEST(SimClock, AdvanceToFutureMoves) {
  SimClock c;
  c.advance_to(ms(3));
  EXPECT_EQ(c.now(), ms(3));
}

TEST(SimClock, AdvanceToPastIsNoOp) {
  SimClock c(ms(10));
  c.advance_to(ms(2));
  EXPECT_EQ(c.now(), ms(10));
}

TEST(SimClock, ResetRestoresOrigin) {
  SimClock c;
  c.advance(seconds(1));
  c.reset();
  EXPECT_EQ(c.now(), 0);
}

TEST(TimeUnits, ConversionsRoundTrip) {
  EXPECT_EQ(ms(1), us(1000));
  EXPECT_EQ(seconds(1), ms(1000));
  EXPECT_DOUBLE_EQ(to_ms(ms(275.05)), 275.05);
  EXPECT_DOUBLE_EQ(to_us(us(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
}

}  // namespace
}  // namespace xsp
