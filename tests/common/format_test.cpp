#include "xsp/common/format.hpp"

#include <gtest/gtest.h>

namespace xsp {
namespace {

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(3.0, 0), "3");
  EXPECT_EQ(fmt_fixed(-1.5, 1), "-1.5");
}

TEST(Format, BytesMb) {
  EXPECT_EQ(fmt_bytes_mb(25'700'000.0, 1), "25.7");
}

TEST(Format, BytesGb) {
  EXPECT_EQ(fmt_bytes_gb(50'640'000'000.0, 2), "50.64");
}

TEST(Format, CountSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1234567), "-1,234,567");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.3087, 2), "30.87%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace xsp
