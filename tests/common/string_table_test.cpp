#include "xsp/common/string_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "xsp/common/flat_map.hpp"

namespace xsp::common {
namespace {

TEST(StringTable, EmptyStringIsAlwaysIdZero) {
  EXPECT_EQ(StringTable::global().intern(""), 0u);
  StrId id;
  EXPECT_TRUE(id.empty());
  EXPECT_EQ(id.view(), "");
}

TEST(StringTable, EqualStringsInternToEqualIds) {
  const StrId a("conv2d/Conv2D");
  const StrId b(std::string("conv2d/Conv2D"));
  const StrId c("conv2d/Relu");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, b);
}

TEST(StringTable, GrowthTelemetryTracksSizeAndBytes) {
  // A private table so the global's contents cannot perturb the counts.
  StringTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.approx_bytes(), 0u);

  table.intern("conv2d/Conv2D");
  const std::size_t after_one = table.approx_bytes();
  // One entry: its character data plus the documented per-entry overhead.
  EXPECT_EQ(after_one, std::string("conv2d/Conv2D").size() + StringTable::kApproxEntryOverhead);
  EXPECT_EQ(table.size(), 1u);

  // Re-interning the same string grows nothing (the whole point of the
  // telemetry: distinct-string growth, not intern-call volume).
  table.intern("conv2d/Conv2D");
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.approx_bytes(), after_one);

  // Dynamically composed values (the ROADMAP growth concern) do grow it,
  // monotonically.
  std::size_t previous = after_one;
  for (int i = 0; i < 100; ++i) {
    table.intern("grid=[" + std::to_string(i) + ",1,1]");
    const std::size_t now = table.approx_bytes();
    EXPECT_GT(now, previous);
    previous = now;
  }
  EXPECT_EQ(table.size(), 101u);
}

TEST(StringTable, ResolutionRoundTrips) {
  const StrId id("volta_scudnn_128x64_relu_interior_nn_v1");
  EXPECT_EQ(id.str(), "volta_scudnn_128x64_relu_interior_nn_v1");
  EXPECT_EQ(id.view(), "volta_scudnn_128x64_relu_interior_nn_v1");
  EXPECT_STREQ(id.c_str(), "volta_scudnn_128x64_relu_interior_nn_v1");
}

TEST(StringTable, ComparesAgainstTextWithoutInterning) {
  const StrId id("layer_type");
  EXPECT_EQ(id, "layer_type");
  EXPECT_EQ(id, std::string("layer_type"));
  EXPECT_FALSE(id == "layer_typo");
}

TEST(StringTable, LexicographicOrderForPresentationSorts) {
  EXPECT_LT(StrId("Add"), StrId("Conv2D"));
  EXPECT_FALSE(StrId("Conv2D") < StrId("Conv2D"));
}

TEST(StringTable, ConcurrentInterningIsConsistent) {
  // Many threads intern the same names; every thread must observe the same
  // id per name, and resolution must never dangle.
  constexpr int kThreads = 8;
  constexpr int kNames = 64;
  std::vector<std::vector<std::uint32_t>> per_thread(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&per_thread, t] {
      for (int i = 0; i < kNames; ++i) {
        const StrId id("concurrent_intern_test_name_" + std::to_string(i));
        per_thread[static_cast<std::size_t>(t)].push_back(id.raw());
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[static_cast<std::size_t>(t)], per_thread[0]);
  }
}

TEST(FlatMap, SetFindAtCount) {
  FlatMap<double, 4> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.set("flop_count_sp", 1e9));
  EXPECT_TRUE(m.set("achieved_occupancy", 0.5));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.count("flop_count_sp"), 1u);
  EXPECT_EQ(m.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(m.at("achieved_occupancy"), 0.5);
  EXPECT_THROW((void)m.at("missing"), std::out_of_range);
}

TEST(FlatMap, SetOverwritesExistingKey) {
  FlatMap<double, 2> m;
  EXPECT_TRUE(m.set("k", 1.0));
  EXPECT_TRUE(m.set("k", 2.0));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.at("k"), 2.0);
}

TEST(FlatMap, DropsBeyondCapacityAndReportsIt) {
  FlatMap<double, 2> m;
  EXPECT_TRUE(m.set("a", 1));
  EXPECT_TRUE(m.set("b", 2));
  EXPECT_FALSE(m.set("c", 3));  // full: dropped
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.count("c"), 0u);
  // Overwriting an existing key still works at capacity.
  EXPECT_TRUE(m.set("a", 9));
  EXPECT_DOUBLE_EQ(m.at("a"), 9);
}

TEST(StringTableCursor, FreshCursorDeliversEveryStringExactlyOnce) {
  StringTable& table = StringTable::global();
  const std::uint32_t a = table.intern("cursor_test_alpha_unique");
  const std::uint32_t b = table.intern("cursor_test_beta_unique");
  StringTable::Cursor cursor;
  std::size_t delivered = 0;
  bool saw_a = false;
  bool saw_b = false;
  table.for_each_since(cursor, [&](std::uint32_t id, std::string_view s) {
    EXPECT_NE(id, 0u) << "cursor delivered reserved id 0";
    EXPECT_EQ(table.view(id), s);
    saw_a |= id == a;
    saw_b |= id == b;
    ++delivered;
  });
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  EXPECT_GE(delivered, 2u);  // whole table: everything interned so far

  // The cursor advanced past everything: a second sweep is empty.
  const std::size_t after_full_sweep = delivered;
  table.for_each_since(cursor, [&](std::uint32_t, std::string_view) { ++delivered; });
  EXPECT_EQ(delivered, after_full_sweep);

  // Only strings interned after the last sweep ride the next delta.
  const std::uint32_t c = table.intern("cursor_test_gamma_unique");
  std::vector<std::uint32_t> fresh;
  table.for_each_since(cursor,
                       [&](std::uint32_t id, std::string_view) { fresh.push_back(id); });
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], c);

  // Re-interning an existing string advances nothing.
  (void)table.intern("cursor_test_alpha_unique");
  fresh.clear();
  table.for_each_since(cursor,
                       [&](std::uint32_t id, std::string_view) { fresh.push_back(id); });
  EXPECT_TRUE(fresh.empty());
}

TEST(StringTableCursor, IndependentCursorsTrackIndependently) {
  StringTable& table = StringTable::global();
  StringTable::Cursor first;
  table.for_each_since(first, [](std::uint32_t, std::string_view) {});
  const std::uint32_t fresh = table.intern("cursor_test_independent_unique");

  StringTable::Cursor second;  // starts from the beginning
  bool second_saw_fresh = false;
  std::size_t second_total = 0;
  table.for_each_since(second, [&](std::uint32_t id, std::string_view) {
    second_saw_fresh |= id == fresh;
    ++second_total;
  });
  EXPECT_TRUE(second_saw_fresh);
  EXPECT_GT(second_total, 1u);

  std::vector<std::uint32_t> first_delta;
  table.for_each_since(first,
                       [&](std::uint32_t id, std::string_view) { first_delta.push_back(id); });
  ASSERT_EQ(first_delta.size(), 1u);
  EXPECT_EQ(first_delta[0], fresh);
}

TEST(FlatMap, IterationPreservesInsertionOrder) {
  FlatMap<StrId, 4> m;
  m.set("grid", "[4,1,1]");
  m.set("block", "[256,1,1]");
  std::vector<std::string> keys;
  for (const auto& e : m) keys.push_back(e.key.str());
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "grid");
  EXPECT_EQ(keys[1], "block");
}

}  // namespace
}  // namespace xsp::common
