#!/usr/bin/env bash
# Multi-process collection smoke: one xsp_collectd daemon on a UDS, a
# fleet of example_remote_producer processes streaming real profiled
# traces into it, then exact accounting — the daemon's spans_ingested
# must equal the fleet's published-minus-dropped sum, every footer must
# arrive, and the daemon's merged binary export must decode back to
# valid JSON via trace_export. The daemon also serves /metrics (live
# Prometheus exposition) on a loopback TCP port: the script scrapes it
# mid-run, requires the exposition to parse, and asserts the wire-level
# accounting invariant — xsp_ingested_spans_total equals the same fleet
# sum — then drives one xsp_top --daemon scrape against it.
#
# Bounded interning rides the same harness: the daemon runs with a
# string-table byte budget and every producer also streams a
# high-cardinality synthetic workload (--inline-tags: unique request-id
# values carried as inline tag bytes, not interned strings). The final
# scrape asserts xsp_strtab_bytes stayed under the budget and
# xsp_strtab_rejected_total stayed zero — the values never touched the
# table, and legitimate names never hit the ceiling. Run by CI's
# multiproc job and usable locally:
#
#   tests/ci/multiproc_smoke.sh [BUILD_DIR] [PRODUCERS] [RUNS]
set -euo pipefail

BUILD_DIR="${1:-build}"
PRODUCERS="${2:-4}"
RUNS="${3:-2}"
# Comfortable headroom for the fleet's real vocabulary (kernel/layer
# names, tag keys) and far less than PRODUCERS*RUNS*INLINE_TAGS unique
# values would cost if they interned.
STRTAB_BUDGET=262144
INLINE_TAGS=64

SOCK="/tmp/xsp_multiproc_$$.sock"
OUT_DIR="$(mktemp -d /tmp/xsp_multiproc_out.XXXXXX)"
DPID=""

cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  rm -f "$SOCK"
  rm -rf "$OUT_DIR"
}
trap cleanup EXIT

fail() {
  echo "multiproc_smoke: FAIL: $*" >&2
  echo "--- collectd stdout ---" >&2
  cat "$OUT_DIR/collectd.out" >&2 || true
  echo "--- collectd stderr ---" >&2
  cat "$OUT_DIR/collectd.err" >&2 || true
  exit 1
}

# field <name> <file>: extract the integer after "name=" (greppable
# stats lines are the daemon/producer machine interface).
field() {
  grep -o "$1=[0-9][0-9]*" "$2" | head -n1 | cut -d= -f2
}

# scrape <url> <out-file>: fetch one URL to a file (python3 stdlib; no
# curl dependency on the runner).
scrape() {
  python3 -c '
import sys, urllib.request
with urllib.request.urlopen(sys.argv[1], timeout=10) as r:
    sys.stdout.buffer.write(r.read())
' "$1" > "$2"
}

"$BUILD_DIR/tools/xsp_collectd" \
  --listen "unix:$SOCK" --out "$OUT_DIR/fleet.xspb" --online --shards 2 \
  --metrics tcp://127.0.0.1:0 --stats-json --stats-interval-ms 200 \
  --strtab-budget "$STRTAB_BUDGET" \
  > "$OUT_DIR/collectd.out" 2> "$OUT_DIR/collectd.err" &
DPID=$!

# Readiness: the daemon binds before printing "listening", so the socket
# file appearing means "connect now".
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$DPID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon never bound $SOCK"

# The metrics endpoint resolves its ephemeral port before run() starts;
# the daemon prints it (and flushes) right after "listening".
for _ in $(seq 1 100); do
  grep -q 'metrics on tcp://' "$OUT_DIR/collectd.out" && break
  sleep 0.1
done
METRICS_PORT="$(grep -o 'metrics on tcp://127.0.0.1:[0-9]*' "$OUT_DIR/collectd.out" \
  | grep -o '[0-9]*$' || true)"
[ -n "$METRICS_PORT" ] || fail "daemon never announced its metrics endpoint"
METRICS_URL="http://127.0.0.1:$METRICS_PORT/metrics"

# The fleet: PRODUCERS concurrent processes, each profiling RUNS runs and
# streaming every publication span to the daemon.
pids=()
for p in $(seq 1 "$PRODUCERS"); do
  "$BUILD_DIR/examples/example_remote_producer" \
    --endpoint "unix:$SOCK" --runs "$RUNS" --batch 1 \
    --inline-tags "$INLINE_TAGS" \
    > "$OUT_DIR/producer_$p.out" &
  pids+=("$!")
done

# Mid-run scrape: with the fleet still streaming, /metrics must answer
# with exposition that parses — every non-comment line "name[{labels}]
# value", every comment a HELP/TYPE header.
scrape "$METRICS_URL" "$OUT_DIR/metrics_midrun.txt" \
  || fail "mid-run /metrics scrape failed"
python3 - "$OUT_DIR/metrics_midrun.txt" <<'EOF' || fail "mid-run exposition does not parse"
import re, sys
families = 0
samples = 0
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("#"):
        assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line), line
        families += line.startswith("# TYPE")
        continue
    m = re.match(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$', line)
    assert m, line
    samples += 1
assert families > 0 and samples > 0, "empty exposition"
EOF
grep -q '^xsp_ingested_spans_total ' "$OUT_DIR/metrics_midrun.txt" \
  || fail "mid-run scrape lacks xsp_ingested_spans_total"

for pid in "${pids[@]}"; do
  wait "$pid" || fail "a producer exited non-zero"
done

# Fleet-side accounting: what must have reached the daemon — the
# session stream plus each producer's inline-tag side channel.
expected=0
for p in $(seq 1 "$PRODUCERS"); do
  published="$(field published "$OUT_DIR/producer_$p.out")"
  dropped="$(field dropped "$OUT_DIR/producer_$p.out")"
  inline_published="$(field inline_published "$OUT_DIR/producer_$p.out")"
  inline_dropped="$(field inline_dropped "$OUT_DIR/producer_$p.out")"
  [ -n "$published" ] || fail "producer $p printed no accounting"
  [ -n "$inline_published" ] || fail "producer $p printed no inline accounting"
  expected=$((expected + published - dropped + inline_published - inline_dropped))
done

# The accounting invariant on the live endpoint: with the fleet drained,
# the daemon's own exposition must agree with the producers' sum.
scrape "$METRICS_URL" "$OUT_DIR/metrics_final.txt" \
  || fail "post-fleet /metrics scrape failed"
scraped_ingested="$(grep '^xsp_ingested_spans_total ' "$OUT_DIR/metrics_final.txt" \
  | awk '{print $2}')"
[ "$scraped_ingested" = "$expected" ] \
  || fail "/metrics xsp_ingested_spans_total $scraped_ingested != fleet published-dropped $expected"

# Bounded interning: the high-cardinality inline-tag values rode inside
# the spans, so the daemon's string table must sit under its budget with
# zero rejections (the budget is a backstop, not a tripwire, here).
scraped_strtab="$(grep '^xsp_strtab_bytes ' "$OUT_DIR/metrics_final.txt" | awk '{print $2}')"
scraped_rejected="$(grep '^xsp_strtab_rejected_total ' "$OUT_DIR/metrics_final.txt" \
  | awk '{print $2}')"
[ -n "$scraped_strtab" ] || fail "/metrics lacks xsp_strtab_bytes"
[ -n "$scraped_rejected" ] || fail "/metrics lacks xsp_strtab_rejected_total"
[ "$scraped_strtab" -le "$STRTAB_BUDGET" ] \
  || fail "xsp_strtab_bytes $scraped_strtab exceeds the $STRTAB_BUDGET budget"
[ "$scraped_rejected" -eq 0 ] \
  || fail "xsp_strtab_rejected_total $scraped_rejected != 0: legitimate interns were capped"

# One fleet-view scrape through the dashboard's daemon mode.
"$BUILD_DIR/tools/xsp_top" --daemon "tcp://127.0.0.1:$METRICS_PORT" --runs 1 \
  > "$OUT_DIR/top_daemon.out" || fail "xsp_top --daemon scrape failed"
grep -q "ingested $expected spans" "$OUT_DIR/top_daemon.out" \
  || fail "xsp_top --daemon did not report the ingested span count"
grep -q 'xsp_top: done' "$OUT_DIR/top_daemon.out" \
  || fail "xsp_top --daemon did not finish cleanly"

# Graceful drain: SIGTERM, then the daemon must exit 0 on its own.
kill -TERM "$DPID"
wait "$DPID" || fail "daemon exited non-zero on SIGTERM"
DPID=""

# Exit accounting rides stderr; --stats-json snapshots ride stdout (one
# JSON object per line, each of which must parse).
ingested="$(field spans_ingested "$OUT_DIR/collectd.err")"
footers="$(field footers_seen "$OUT_DIR/collectd.err")"
errored="$(field errored "$OUT_DIR/collectd.err")"
[ "$ingested" -eq "$expected" ] || fail "ingested $ingested != fleet published-dropped $expected"
# Two streams per producer: the session's RemoteSink and the inline-tag
# side channel each close with their own footer.
[ "$footers" -eq $((2 * PRODUCERS)) ] \
  || fail "footers_seen $footers != $((2 * PRODUCERS)) (2 per producer)"
[ "$errored" -eq 0 ] || fail "daemon counted $errored errored connections"
grep '^{' "$OUT_DIR/collectd.out" > "$OUT_DIR/stats_json.out" \
  || fail "--stats-json printed no snapshots"
python3 - "$OUT_DIR/stats_json.out" <<'EOF' || fail "--stats-json line does not parse"
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "no JSON snapshots"
for l in lines:
    snap = json.loads(l)
    assert "spans_ingested" in snap, l
EOF

# The merged export must be a decodable wire stream whose span count
# matches, and the decode must be real JSON.
"$BUILD_DIR/tools/trace_export" \
  --decode "$OUT_DIR/fleet.xspb" --out "$OUT_DIR/fleet.json" --format spans \
  > "$OUT_DIR/decode.out"
python3 -m json.tool "$OUT_DIR/fleet.json" > /dev/null \
  || fail "decoded fleet trace is not valid JSON"
decoded="$(grep -o 'decoded [0-9]*' "$OUT_DIR/decode.out" | cut -d' ' -f2)"
[ "$decoded" -eq "$ingested" ] || fail "decode saw $decoded spans, daemon ingested $ingested"

echo "multiproc_smoke: OK — $PRODUCERS producers, $ingested spans ingested," \
     "$footers footers, /metrics invariant holds, strtab $scraped_strtab B" \
     "under $STRTAB_BUDGET B budget, decode matches"
