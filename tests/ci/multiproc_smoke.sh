#!/usr/bin/env bash
# Multi-process collection smoke: one xsp_collectd daemon on a UDS, a
# fleet of example_remote_producer processes streaming real profiled
# traces into it, then exact accounting — the daemon's spans_ingested
# must equal the fleet's published-minus-dropped sum, every footer must
# arrive, and the daemon's merged binary export must decode back to
# valid JSON via trace_export. Run by CI's multiproc job and usable
# locally:
#
#   tests/ci/multiproc_smoke.sh [BUILD_DIR] [PRODUCERS] [RUNS]
set -euo pipefail

BUILD_DIR="${1:-build}"
PRODUCERS="${2:-4}"
RUNS="${3:-2}"

SOCK="/tmp/xsp_multiproc_$$.sock"
OUT_DIR="$(mktemp -d /tmp/xsp_multiproc_out.XXXXXX)"
DPID=""

cleanup() {
  [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
  rm -f "$SOCK"
  rm -rf "$OUT_DIR"
}
trap cleanup EXIT

fail() {
  echo "multiproc_smoke: FAIL: $*" >&2
  echo "--- collectd output ---" >&2
  cat "$OUT_DIR/collectd.out" >&2 || true
  exit 1
}

# field <name> <file>: extract the integer after "name=" (greppable
# stats lines are the daemon/producer machine interface).
field() {
  grep -o "$1=[0-9][0-9]*" "$2" | head -n1 | cut -d= -f2
}

"$BUILD_DIR/tools/xsp_collectd" \
  --listen "unix:$SOCK" --out "$OUT_DIR/fleet.xspb" --online --shards 2 \
  > "$OUT_DIR/collectd.out" &
DPID=$!

# Readiness: the daemon binds before printing "listening", so the socket
# file appearing means "connect now".
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$DPID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon never bound $SOCK"

# The fleet: PRODUCERS concurrent processes, each profiling RUNS runs and
# streaming every publication span to the daemon.
pids=()
for p in $(seq 1 "$PRODUCERS"); do
  "$BUILD_DIR/examples/example_remote_producer" \
    --endpoint "unix:$SOCK" --runs "$RUNS" --batch 1 \
    > "$OUT_DIR/producer_$p.out" &
  pids+=("$!")
done
for pid in "${pids[@]}"; do
  wait "$pid" || fail "a producer exited non-zero"
done

# Fleet-side accounting: what must have reached the daemon.
expected=0
for p in $(seq 1 "$PRODUCERS"); do
  published="$(field published "$OUT_DIR/producer_$p.out")"
  dropped="$(field dropped "$OUT_DIR/producer_$p.out")"
  [ -n "$published" ] || fail "producer $p printed no accounting"
  expected=$((expected + published - dropped))
done

# Graceful drain: SIGTERM, then the daemon must exit 0 on its own.
kill -TERM "$DPID"
wait "$DPID" || fail "daemon exited non-zero on SIGTERM"
DPID=""

ingested="$(field spans_ingested "$OUT_DIR/collectd.out")"
footers="$(field footers_seen "$OUT_DIR/collectd.out")"
errored="$(field errored "$OUT_DIR/collectd.out")"
[ "$ingested" -eq "$expected" ] || fail "ingested $ingested != fleet published-dropped $expected"
[ "$footers" -eq "$PRODUCERS" ] || fail "footers_seen $footers != $PRODUCERS"
[ "$errored" -eq 0 ] || fail "daemon counted $errored errored connections"

# The merged export must be a decodable wire stream whose span count
# matches, and the decode must be real JSON.
"$BUILD_DIR/tools/trace_export" \
  --decode "$OUT_DIR/fleet.xspb" --out "$OUT_DIR/fleet.json" --format spans \
  > "$OUT_DIR/decode.out"
python3 -m json.tool "$OUT_DIR/fleet.json" > /dev/null \
  || fail "decoded fleet trace is not valid JSON"
decoded="$(grep -o 'decoded [0-9]*' "$OUT_DIR/decode.out" | cut -d' ' -f2)"
[ "$decoded" -eq "$ingested" ] || fail "decode saw $decoded spans, daemon ingested $ingested"

echo "multiproc_smoke: OK — $PRODUCERS producers, $ingested spans ingested," \
     "$footers footers, decode matches"
