// Integration sweep: every registered model profiles end-to-end through
// the full XSP stack, and the merged profile satisfies the cross-level
// invariants the analyses depend on.
#include <gtest/gtest.h>

#include "xsp/analysis/analyses.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace xsp {
namespace {

class FullZoo : public ::testing::TestWithParam<int> {};

TEST_P(FullZoo, ProfilesEndToEndWithConsistentInvariants) {
  const auto& model = models::tensorflow_models()[static_cast<std::size_t>(GetParam() - 1)];
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run_model(model, /*batch=*/1);
  const auto& p = result.profile;

  // Structure.
  ASSERT_GT(p.layers.size(), 5u) << model.name;
  ASSERT_GT(p.kernels.size(), 3u) << model.name;
  EXPECT_GT(p.model_latency, 0) << model.name;

  // Leveled-experimentation overheads are positive.
  EXPECT_GT(p.layer_profiling_overhead, 0) << model.name;
  EXPECT_GT(p.gpu_profiling_overhead, 0) << model.name;

  // Every kernel correlates to a layer, and no correlation is ambiguous.
  for (const auto& k : p.kernels) {
    EXPECT_GE(k.layer_index, 0) << model.name << ": " << k.name;
  }
  EXPECT_EQ(result.mlg.timeline.ambiguous_count(), 0u) << model.name;
  EXPECT_EQ(result.mlg.timeline.unmatched_async_count(), 0u) << model.name;

  // Per-layer: kernel time within layer time; metrics non-negative.
  for (const auto& l : p.layers) {
    EXPECT_LE(l.kernel_latency, l.latency) << model.name << ": " << l.name;
    EXPECT_GE(l.flops, 0) << model.name;
    EXPECT_GE(l.dram_bytes(), 0) << model.name;
  }

  // Aggregates.
  EXPECT_LE(p.total_kernel_latency(), p.model_latency) << model.name;
  const double gpu_pct = analysis::gpu_latency_percentage(p);
  EXPECT_GT(gpu_pct, 5.0) << model.name;
  EXPECT_LE(gpu_pct, 100.0) << model.name;
  const double conv_pct = analysis::conv_latency_percentage(p);
  EXPECT_GE(conv_pct, 0.0) << model.name;
  EXPECT_LT(conv_pct, 100.0) << model.name;

  const double occ = p.weighted_occupancy();
  EXPECT_GT(occ, 0.0) << model.name;
  EXPECT_LE(occ, 1.0) << model.name;
}

INSTANTIATE_TEST_SUITE_P(AllTensorflowModels, FullZoo, ::testing::Range(1, 56),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name =
                               models::tensorflow_models()[static_cast<std::size_t>(
                                                               info.param - 1)]
                                   .name;
                           for (auto& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

class MxnetZoo : public ::testing::TestWithParam<int> {};

TEST_P(MxnetZoo, ProfilesEndToEndUnderMxlite) {
  const auto* model = models::find_mxnet_model(GetParam());
  ASSERT_NE(model, nullptr);
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kMXLite);
  const auto result = runner.run_model(*model, /*batch=*/1);
  EXPECT_GT(result.profile.layers.size(), 5u);
  for (const auto& k : result.profile.kernels) {
    EXPECT_GE(k.layer_index, 0) << k.name;
  }
  // MXNet graphs carry fused BatchNorm layers, never decomposed Mul/Add.
  for (const auto& l : result.profile.layers) {
    EXPECT_NE(l.type, "Mul") << model->name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMxnetModels, MxnetZoo,
                         ::testing::Values(4, 5, 6, 8, 10, 11, 18, 23, 28, 34));

}  // namespace
}  // namespace xsp
