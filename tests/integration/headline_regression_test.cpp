// Regression guards on the headline reproduction numbers. The simulator is
// deterministic, so these pin the calibrated behaviour: if a change moves a
// headline result out of its paper-anchored band, a test fails and the
// change needs a conscious recalibration (and an EXPERIMENTS.md update).
#include <gtest/gtest.h>

#include "xsp/analysis/analyses.hpp"
#include "xsp/analysis/batch_sweep.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace xsp {
namespace {

const profile::LeveledResult& headline() {
  static const profile::LeveledResult result = [] {
    profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    return runner.run_model(*models::find_tensorflow_model("MLPerf_ResNet50_v1.5"), 256);
  }();
  return result;
}

TEST(Headline, ModelLatencyNearPaperScale) {
  // Paper: 275.05 ms. Band: within 1.6x.
  const double ms_measured = to_ms(headline().profile.model_latency);
  EXPECT_GT(ms_measured, 200.0);
  EXPECT_LT(ms_measured, 440.0);
}

TEST(Headline, LayerProfilingOverheadNearPaper) {
  // Paper: 157 ms.
  const double ms_measured = to_ms(headline().layer_overhead());
  EXPECT_GT(ms_measured, 100.0);
  EXPECT_LT(ms_measured, 220.0);
}

TEST(Headline, GpuProfilingOverheadNearPaper) {
  // Paper: 215.2 ms.
  const double ms_measured = to_ms(headline().gpu_overhead());
  EXPECT_GT(ms_measured, 120.0);
  EXPECT_LT(ms_measured, 320.0);
}

TEST(Headline, LayerAndKernelCountsNearPaper) {
  // Paper: 234 layers, 375 kernel invocations.
  EXPECT_NEAR(static_cast<double>(headline().profile.layers.size()), 234.0, 20.0);
  EXPECT_NEAR(static_cast<double>(headline().profile.kernels.size()), 375.0, 60.0);
}

TEST(Headline, ComputeBoundAtBatch256) {
  // Paper Table VI: compute-bound at batch 256.
  const auto agg = analysis::a15_model_aggregate(headline().profile, sim::tesla_v100());
  EXPECT_FALSE(agg.memory_bound);
  EXPECT_GT(agg.occupancy_pct, 30.0);  // paper: 43.15%
  EXPECT_LT(agg.occupancy_pct, 55.0);
}

TEST(Headline, TopTwoLayersAreTheDeep7x7Convs) {
  // Paper Table II: conv2d_48 and conv2d_51 lead.
  const auto top = analysis::top_layers_by_latency(headline().profile, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].name, "conv2d_48/Conv2D");
  EXPECT_EQ(top[1].name, "conv2d_51/Conv2D");
  EXPECT_EQ(top[0].shape, "<256, 512, 7, 7>");
}

TEST(Headline, MostTimeConsumingKernelIsScudnn128x64) {
  // Paper Table IV: volta_scudnn_128x64_relu_interior_nn_v1, ~31% of the
  // model latency, ~34 invocations.
  const auto rows = analysis::a10_kernel_by_name(headline().profile, sim::tesla_v100());
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].name, "volta_scudnn_128x64_relu_interior_nn_v1");
  EXPECT_NEAR(rows[0].latency_pct, 31.0, 8.0);
  EXPECT_NEAR(rows[0].count, 34, 6);
  EXPECT_FALSE(rows[0].memory_bound);
}

TEST(Headline, EigenMaxOpHasZeroFlopsHighOccupancy) {
  // Paper Table IV's scalar_max_op row: 0 flops, 98.4% occupancy.
  for (const auto& r : analysis::a10_kernel_by_name(headline().profile, sim::tesla_v100())) {
    if (r.name.find("scalar_max_op") != std::string::npos) {
      EXPECT_DOUBLE_EQ(r.gflops, 0.0);
      EXPECT_GT(r.occupancy_pct, 85.0);
      EXPECT_TRUE(r.memory_bound);
      return;
    }
  }
  FAIL() << "scalar_max_op kernel not found";
}

TEST(Headline, CgemmServesTheDeepLayersAtBatch256) {
  // Paper Table III: volta_cgemm_32x32_tn on the two deepest conv layers.
  const auto top =
      analysis::top_kernels_by_latency(headline().profile, sim::tesla_v100(), 5);
  int cgemm = 0;
  for (const auto& r : top) {
    if (r.name == "volta_cgemm_32x32_tn") ++cgemm;
  }
  EXPECT_EQ(cgemm, 2);
}

TEST(Headline, AlgorithmSwitchAtBatch16) {
  // Paper Section III-D3: implicit_convolve_sgemm below batch 16,
  // volta_scudnn_* at and above.
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto* model = models::find_tensorflow_model("MLPerf_ResNet50_v1.5");

  const auto has_kernel = [&](std::int64_t batch, const char* needle) {
    const auto result = runner.run_model(*model, batch, /*gpu_metrics=*/false);
    for (const auto& k : result.profile.kernels) {
      if (k.name.view().find(needle) != std::string_view::npos) return true;
    }
    return false;
  };
  // Below batch 16 the 3x3/7x7 convolutions use implicit GEMM (1x1
  // convolutions always take the precomputed path); at 16 the switch to
  // the scudnn kernels is complete.
  EXPECT_TRUE(has_kernel(8, "implicit_convolve_sgemm"));
  EXPECT_TRUE(has_kernel(16, "scudnn_128x64"));
  EXPECT_FALSE(has_kernel(16, "implicit_convolve_sgemm"));
}

TEST(Headline, OccupancyClimbsTowardOptimalBatch) {
  // Paper Table VI: achieved occupancy grows with batch size.
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto* model = models::find_tensorflow_model("MLPerf_ResNet50_v1.5");
  double prev = 0;
  for (std::int64_t batch : {1, 8, 64}) {
    const auto result = runner.run_model(*model, batch);
    const double occ = result.profile.weighted_occupancy();
    EXPECT_GT(occ, prev) << "batch " << batch;
    prev = occ;
  }
}

TEST(Headline, MobileNetMxnetThroughputAdvantageInPaperRange) {
  // Paper Table X: MXNet MobileNets reach 1.35-1.76x TF's max throughput.
  const auto* model = models::find_tensorflow_model("MobileNet_v1_1.0_224");
  profile::LeveledRunner tf(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  profile::LeveledRunner mx(sim::tesla_v100(), framework::FrameworkKind::kMXLite);
  const auto tf_info = analysis::model_information(tf, *model, 256);
  const auto mx_info = analysis::model_information(mx, *model, 256);
  const double ratio = mx_info.max_throughput / tf_info.max_throughput;
  EXPECT_GT(ratio, 1.25);
  EXPECT_LT(ratio, 1.85);
}

TEST(Headline, SystemOrderingMatchesPaper) {
  // Paper Fig. 11: V100 fastest, then RTX, P100, P4, M60 on ResNet-50.
  const auto* model = models::find_tensorflow_model("MLPerf_ResNet50_v1.5");
  const auto latency_on = [&](const sim::GpuSpec& system) {
    profile::LeveledRunner runner(system, framework::FrameworkKind::kTFlow);
    return runner.model_latency(model->build(64, runner.decompose_batchnorm()));
  };
  const Ns v100 = latency_on(sim::tesla_v100());
  const Ns rtx = latency_on(sim::quadro_rtx());
  const Ns p100 = latency_on(sim::tesla_p100());
  const Ns p4 = latency_on(sim::tesla_p4());
  const Ns m60 = latency_on(sim::tesla_m60());
  EXPECT_LE(v100, rtx);
  EXPECT_LT(rtx, p100);
  EXPECT_LT(p100, p4);
  EXPECT_LT(p4, m60);
}

TEST(Headline, DetectionModelIsWhereDominated) {
  // Paper Section IV-A.
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto* ssd = models::find_tensorflow_model("MLPerf_SSD_MobileNet_v1_300x300");
  const auto result = runner.run_model(*ssd, 1);
  const auto types = analysis::layer_type_aggregation(result.profile);
  EXPECT_EQ(types[0].type, "Where");
  EXPECT_LT(analysis::conv_latency_percentage(result.profile), 20.0);
}

}  // namespace
}  // namespace xsp
