#include "xsp/models/zoo.hpp"

#include <gtest/gtest.h>

#include <map>

#include "xsp/models/registry.hpp"

namespace xsp::models {
namespace {

std::map<std::string, int> type_histogram(const Graph& g) {
  std::map<std::string, int> h;
  for (const auto& l : g.layers) h[layer_type_name(l.type)] += 1;
  return h;
}

double conv_flops(const Graph& g) {
  double total = 0;
  for (const auto& l : g.layers) {
    if (l.type == framework::LayerType::kConv2D) {
      total += 2.0 * static_cast<double>(l.output.elements()) *
               static_cast<double>(l.input.c * l.kernel_hw * l.kernel_hw);
    }
  }
  return total;
}

TEST(Zoo, ResNet50V15LayerCountMatchesPaperScale) {
  // The paper reports 234 runtime layers for MLPerf_ResNet50_v1.5 in
  // TensorFlow (Table II caption).
  const auto g = resnet("r50", 256, true, 1, {3, 4, 6, 3}, true);
  EXPECT_GE(g.layers.size(), 220u);
  EXPECT_LE(g.layers.size(), 245u);
}

TEST(Zoo, ResNet50LayerTypeMixMatchesFigure4) {
  // Figure 4a: Add, Mul, Conv2D, Relu each ~20-24% of layers, AddN ~6%.
  const auto g = resnet("r50", 1, true, 1, {3, 4, 6, 3}, true);
  const auto h = type_histogram(g);
  const auto total = static_cast<double>(g.layers.size());
  EXPECT_NEAR(h.at("Conv2D") / total, 0.23, 0.03);
  EXPECT_NEAR(h.at("Mul") / total, 0.23, 0.03);
  EXPECT_NEAR(h.at("Add") / total, 0.23, 0.03);
  EXPECT_NEAR(h.at("Relu") / total, 0.21, 0.03);
  EXPECT_NEAR(h.at("AddN") / total, 0.06, 0.03);
}

TEST(Zoo, ResNet50FlopsNearFourGplopsPerImage) {
  // ResNet50's published forward cost is ~3.9-4.1 GMACs (~8 Gflops).
  const auto g = resnet("r50", 1, true, 1, {3, 4, 6, 3}, true);
  const double gflops = conv_flops(g) / 1e9;
  EXPECT_GT(gflops, 5.0);
  EXPECT_LT(gflops, 10.0);
}

TEST(Zoo, ResNetDepthOrdering) {
  const auto r50 = resnet("r50", 1, true, 1, {3, 4, 6, 3}, false);
  const auto r101 = resnet("r101", 1, true, 1, {3, 4, 23, 3}, false);
  const auto r152 = resnet("r152", 1, true, 1, {3, 8, 36, 3}, false);
  EXPECT_LT(r50.layers.size(), r101.layers.size());
  EXPECT_LT(r101.layers.size(), r152.layers.size());
  EXPECT_LT(conv_flops(r50), conv_flops(r101));
  EXPECT_LT(conv_flops(r101), conv_flops(r152));
}

TEST(Zoo, ResNetV2HasPreActivationStructure) {
  const auto v1 = resnet("v1", 1, true, 1, {3, 4, 6, 3}, false);
  const auto v2 = resnet("v2", 1, true, 2, {3, 4, 6, 3}, false);
  // Both are runnable and have comparable sizes.
  EXPECT_GT(v2.layers.size(), 150u);
  EXPECT_NEAR(static_cast<double>(v1.layers.size()),
              static_cast<double>(v2.layers.size()), 40.0);
}

TEST(Zoo, MobileNetGridScalesWithAlphaAndResolution) {
  const auto full = mobilenet_v1("m", 1, true, 1.0, 224);
  const auto half = mobilenet_v1("m", 1, true, 0.5, 224);
  const auto small = mobilenet_v1("m", 1, true, 1.0, 128);
  EXPECT_LT(conv_flops(half), conv_flops(full));
  EXPECT_LT(conv_flops(small), conv_flops(full));
  // alpha halves channels -> ~4x fewer pointwise flops.
  EXPECT_NEAR(conv_flops(full) / conv_flops(half), 4.0, 1.0);
}

TEST(Zoo, MobileNetIsDepthwiseSeparable) {
  const auto g = mobilenet_v1("m", 1, true, 1.0, 224);
  const auto h = type_histogram(g);
  EXPECT_EQ(h.at("DepthwiseConv2dNative"), 13);
  EXPECT_EQ(h.at("Conv2D"), 14);  // stem + 13 pointwise
}

TEST(Zoo, VggIsParameterHeavy) {
  // Table VIII: VGG16 = 528 MB frozen graph, dominated by FC weights.
  const auto g16 = vgg("vgg16", 1, 16);
  const auto g19 = vgg("vgg19", 1, 19);
  EXPECT_NEAR(g16.graph_size_bytes() / 1e6, 528, 60);
  EXPECT_GT(g19.graph_size_bytes(), g16.graph_size_bytes());
}

TEST(Zoo, AlexNetIsShallow) {
  const auto g = alexnet("alex", 1);
  EXPECT_EQ(type_histogram(g).at("Conv2D"), 5);
  EXPECT_NEAR(g.graph_size_bytes() / 1e6, 233, 60);
}

TEST(Zoo, InceptionFamilyDepthOrdering) {
  const auto v1 = inception_v1("i1", 1, true, true);
  const auto v3 = inception_v3("i3", 1, true);
  const auto v4 = inception_v4("i4", 1, true);
  EXPECT_LT(v1.layers.size(), v3.layers.size());
  EXPECT_LT(v3.layers.size(), v4.layers.size());
  EXPECT_LT(conv_flops(v3), conv_flops(v4));
}

TEST(Zoo, BvlcGoogleNetHasNoBatchNorm) {
  const auto g = inception_v1("bvlc", 1, true, /*with_bn=*/false);
  const auto h = type_histogram(g);
  EXPECT_EQ(h.count("Mul"), 0u);
  EXPECT_GT(h.at("BiasAdd"), 10);
}

TEST(Zoo, InceptionResnetHasResidualAdds) {
  const auto g = inception_resnet_v2("ir2", 1, true);
  const auto h = type_histogram(g);
  EXPECT_GE(h.at("AddN"), 40);  // 10 + 20 + 10 residual blocks
}

TEST(Zoo, DenseNetIsConcatHeavy) {
  const auto g = densenet121("d121", 1, true);
  const auto h = type_histogram(g);
  EXPECT_EQ(h.at("ConcatV2"), 58);  // 6+12+24+16 dense layers
  EXPECT_GT(g.layers.size(), 350u);
}

TEST(Zoo, SsdIsWhereDominatedInLayerCount) {
  // Section IV-A: for detection models "the dominating layer type is
  // Where".
  const auto g = ssd("ssd", 1, true, "mobilenet_v1", 300, 0);
  const auto h = type_histogram(g);
  int max_count = 0;
  std::string max_type;
  for (const auto& [type, count] : h) {
    if (count > max_count) {
      max_count = count;
      max_type = type;
    }
  }
  EXPECT_EQ(max_type, "Where");
}

TEST(Zoo, DetectionPostprocessScalesWithBatch) {
  const auto b1 = ssd("ssd", 1, true, "mobilenet_v1", 300, 0);
  const auto b4 = ssd("ssd", 4, true, "mobilenet_v1", 300, 0);
  // Per-image NMS unrolling: layer count grows with batch.
  EXPECT_GT(b4.layers.size(), b1.layers.size() + 50);
}

TEST(Zoo, FasterRcnnNasIsConvDominated) {
  const auto nas = faster_rcnn("nas", 1, true, "nas", true);
  const auto h = type_histogram(nas);
  EXPECT_GT(h.at("Conv2D") + h.at("DepthwiseConv2dNative"), h.at("Where"));
  EXPECT_GT(conv_flops(nas), conv_flops(faster_rcnn("r50", 1, true, "resnet50")));
}

TEST(Zoo, MaskRcnnExtendsFasterRcnn) {
  const auto frcnn = faster_rcnn("f", 1, true, "resnet50");
  const auto mrcnn = mask_rcnn("m", 1, true, "resnet50");
  EXPECT_GT(mrcnn.layers.size(), frcnn.layers.size());
}

TEST(Zoo, DeepLabVariantsScale) {
  const auto xception = deeplab_v3("x65", 1, true, "xception65");
  const auto mnv2 = deeplab_v3("mnv2", 1, true, "mobilenet_v2");
  const auto dm05 = deeplab_v3("dm05", 1, true, "mobilenet_v2_dm05");
  EXPECT_GT(conv_flops(xception), conv_flops(mnv2));
  EXPECT_GT(conv_flops(mnv2), conv_flops(dm05));
  // Segmentation heads emit resize layers.
  EXPECT_GE(type_histogram(xception).count("ResizeBilinear"), 1u);
}

TEST(Zoo, SrganUpsamples) {
  const auto g = srgan("sr", 1, true);
  // Output resolution is 4x the 96x96 input.
  bool found_4x = false;
  for (const auto& l : g.layers) {
    if (l.output.h == 384) found_4x = true;
  }
  EXPECT_TRUE(found_4x);
  EXPECT_GE(type_histogram(g).at("Conv2D"), 35);  // 16 res blocks x2 + ends
}

// Published forward-pass costs (GFlops per image, multiply-add counted as
// 2 flops) for the classic architectures. Bands are generous (+-40%)
// because our graphs approximate auxiliary structure, but they catch
// order-of-magnitude construction mistakes.
struct KnownCost {
  const char* model;
  double gflops;
};

class ZooFlopsFidelity : public ::testing::TestWithParam<KnownCost> {};

TEST_P(ZooFlopsFidelity, ConvFlopsNearPublishedValue) {
  const auto& expected = GetParam();
  const auto* info = find_tensorflow_model(expected.model);
  ASSERT_NE(info, nullptr);
  const auto g = info->build(1, true);
  double total = 0;
  for (const auto& l : g.layers) {
    if (l.type == framework::LayerType::kConv2D) {
      const std::int64_t kw = l.kernel_w2 > 0 ? l.kernel_w2 : l.kernel_hw;
      total += 2.0 * static_cast<double>(l.output.elements()) *
               static_cast<double>(l.input.c * l.kernel_hw * kw);
    } else if (l.type == framework::LayerType::kDepthwiseConv2D) {
      total += 2.0 * static_cast<double>(l.output.elements()) *
               static_cast<double>(l.kernel_hw * l.kernel_hw);
    } else if (l.type == framework::LayerType::kMatMul) {
      total += 2.0 * static_cast<double>(l.output.elements()) *
               static_cast<double>(l.matmul_k);
    }
  }
  const double measured = total / 1e9;
  EXPECT_GT(measured, expected.gflops * 0.6) << expected.model;
  EXPECT_LT(measured, expected.gflops * 1.6) << expected.model;
}

INSTANTIATE_TEST_SUITE_P(PublishedCosts, ZooFlopsFidelity,
                         ::testing::Values(KnownCost{"ResNet_v1_50", 7.7},
                                           KnownCost{"ResNet_v1_101", 15.2},
                                           KnownCost{"ResNet_v1_152", 22.6},
                                           KnownCost{"MLPerf_ResNet50_v1.5", 8.2},
                                           KnownCost{"VGG16", 31.0},
                                           KnownCost{"VGG19", 39.0},
                                           KnownCost{"MobileNet_v1_1.0_224", 1.14},
                                           KnownCost{"MobileNet_v1_0.5_224", 0.30},
                                           KnownCost{"BVLC_AlexNet_Caffe", 1.5},
                                           KnownCost{"Inception_v1", 3.0},
                                           KnownCost{"Inception_v3", 11.4},
                                           KnownCost{"AI_Matrix_DenseNet121", 5.7}),
                         [](const ::testing::TestParamInfo<KnownCost>& info) {
                           std::string name = info.param.model;
                           for (auto& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(Zoo, AllGraphsRespectBatchParameter) {
  for (std::int64_t batch : {1, 8}) {
    EXPECT_EQ(resnet("r", batch, true, 1, {3, 4, 6, 3}, true).batch(), batch);
    EXPECT_EQ(mobilenet_v1("m", batch, true, 1.0, 224).batch(), batch);
    EXPECT_EQ(ssd("s", batch, true, "mobilenet_v1", 300, 0).batch(), batch);
  }
}

}  // namespace
}  // namespace xsp::models
