#include "xsp/models/registry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace xsp::models {
namespace {

TEST(Registry, FiftyFiveTensorflowModels) {
  EXPECT_EQ(tensorflow_models().size(), 55u);
}

TEST(Registry, TenMxnetModels) {
  EXPECT_EQ(mxnet_models().size(), 10u);
}

TEST(Registry, IdsAreTableVIIIOrder) {
  int expected = 1;
  for (const auto& m : tensorflow_models()) {
    EXPECT_EQ(m.id, expected++);
  }
}

TEST(Registry, TaskCountsMatchTableVIII) {
  std::map<std::string, int> tasks;
  for (const auto& m : tensorflow_models()) tasks[m.task] += 1;
  EXPECT_EQ(tasks.at("IC"), 37);
  EXPECT_EQ(tasks.at("OD"), 10);
  EXPECT_EQ(tasks.at("IS"), 4);
  EXPECT_EQ(tasks.at("SS"), 3);
  EXPECT_EQ(tasks.at("SR"), 1);
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& m : tensorflow_models()) names.insert(m.name);
  EXPECT_EQ(names.size(), 55u);
}

TEST(Registry, AccuracySortedWithinImageClassification) {
  // Table VIII sorts models within a task by reported accuracy.
  const auto ic = image_classification_models();
  ASSERT_EQ(ic.size(), 37u);
  for (std::size_t i = 1; i < ic.size(); ++i) {
    EXPECT_GE(ic[i - 1]->paper.accuracy, ic[i]->paper.accuracy)
        << ic[i - 1]->name << " vs " << ic[i]->name;
  }
}

TEST(Registry, FindByName) {
  const auto* m = find_tensorflow_model("MLPerf_ResNet50_v1.5");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->id, 7);
  EXPECT_DOUBLE_EQ(m->paper.accuracy, 76.46);
  EXPECT_EQ(m->paper.optimal_batch, 256);
  EXPECT_EQ(find_tensorflow_model("NoSuchModel"), nullptr);
}

TEST(Registry, MxnetIdsMatchComparableTensorflowRows) {
  // Table X labels MXNet models with the same ids as Table VIII.
  const std::set<int> expected{4, 5, 6, 8, 10, 11, 18, 23, 28, 34};
  std::set<int> got;
  for (const auto& m : mxnet_models()) got.insert(m.id);
  EXPECT_EQ(got, expected);

  for (int id : expected) {
    const auto* mx = find_mxnet_model(id);
    ASSERT_NE(mx, nullptr);
    EXPECT_EQ(tensorflow_models()[static_cast<std::size_t>(id - 1)].name, mx->name);
  }
  EXPECT_EQ(find_mxnet_model(1), nullptr);
}

TEST(Registry, EveryModelBuilds) {
  // Every registered builder must produce a non-trivial graph at batch 1
  // in both frameworks' lowering modes.
  for (const auto& m : tensorflow_models()) {
    const auto g = m.build(1, true);
    EXPECT_GT(g.layers.size(), 10u) << m.name;
    EXPECT_EQ(g.batch(), 1) << m.name;
    EXPECT_GT(g.graph_size_bytes(), 0) << m.name;
  }
  for (const auto& m : mxnet_models()) {
    const auto g = m.build(1, false);
    EXPECT_GT(g.layers.size(), 10u) << m.name;
  }
}

TEST(Registry, GraphSizesTrackPaperOrdering) {
  // Bigger paper-reported frozen graphs should have more parameters here:
  // spot-check a clearly ordered pair set.
  const auto size_of = [](const char* name) {
    return find_tensorflow_model(name)->build(1, true).graph_size_bytes();
  };
  EXPECT_GT(size_of("VGG16"), size_of("ResNet_v1_50"));
  EXPECT_GT(size_of("ResNet_v1_152"), size_of("ResNet_v1_50"));
  EXPECT_GT(size_of("MobileNet_v1_1.0_224"), size_of("MobileNet_v1_0.25_224"));
  EXPECT_GT(size_of("Inception_v4"), size_of("Inception_v1"));
}

TEST(Registry, PaperRowsPopulatedForTensorflow) {
  for (const auto& m : tensorflow_models()) {
    EXPECT_GT(m.paper.online_latency_ms, 0) << m.name;
    EXPECT_GT(m.paper.max_throughput, 0) << m.name;
    EXPECT_GE(m.paper.optimal_batch, 1) << m.name;
  }
}

class RegistryBatchBuild : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RegistryBatchBuild, ResNet50BuildsAtEveryBatch) {
  const auto* m = find_tensorflow_model("MLPerf_ResNet50_v1.5");
  const auto g = m->build(GetParam(), true);
  EXPECT_EQ(g.batch(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Batches, RegistryBatchBuild,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

}  // namespace
}  // namespace xsp::models
