#include "xsp/models/builder.hpp"

#include <gtest/gtest.h>

namespace xsp::models {
namespace {

TEST(GraphBuilder, InputCreatesDataLayer) {
  GraphBuilder b("m", 4, true);
  b.input(3, 224, 224);
  const auto& g = b.peek();
  ASSERT_EQ(g.layers.size(), 1u);
  EXPECT_EQ(g.layers[0].type, LayerType::kData);
  EXPECT_EQ(g.layers[0].output, (Shape4{4, 3, 224, 224}));
}

TEST(GraphBuilder, ConvTracksShapeAndParams) {
  GraphBuilder b("m", 1, true);
  b.input(3, 224, 224).conv(64, 7, 2, 3);
  EXPECT_EQ(b.shape(), (Shape4{1, 64, 112, 112}));
  const auto& conv = b.peek().layers.back();
  EXPECT_DOUBLE_EQ(conv.param_bytes, 64.0 * 3 * 7 * 7 * 4);
}

TEST(GraphBuilder, ConvDefaultPadIsSame) {
  GraphBuilder b("m", 1, true);
  b.input(16, 28, 28).conv(32, 3);  // stride 1, pad k/2
  EXPECT_EQ(b.shape(), (Shape4{1, 32, 28, 28}));
}

TEST(GraphBuilder, BatchNormDecompositionSwitch) {
  GraphBuilder tf("tf", 1, true);
  tf.input(3, 8, 8).conv(4, 3).batch_norm();
  EXPECT_EQ(tf.peek().layers.size(), 4u);  // Data, Conv, Mul, Add
  EXPECT_EQ(tf.peek().layers[2].type, LayerType::kMul);
  EXPECT_EQ(tf.peek().layers[3].type, LayerType::kAdd);

  GraphBuilder mx("mx", 1, false);
  mx.input(3, 8, 8).conv(4, 3).batch_norm();
  EXPECT_EQ(mx.peek().layers.size(), 3u);  // Data, Conv, FusedBatchNorm
  EXPECT_EQ(mx.peek().layers[2].type, LayerType::kFusedBatchNorm);
}

TEST(GraphBuilder, TensorFlowScopeNaming) {
  // First instance bare, later instances suffixed (paper's
  // "conv2d/Conv2D" ... "conv2d_48/Conv2D").
  GraphBuilder b("m", 1, true);
  b.input(3, 8, 8).conv(4, 1).conv(4, 1).conv(4, 1);
  const auto& layers = b.peek().layers;
  EXPECT_EQ(layers[1].name, "conv2d/Conv2D");
  EXPECT_EQ(layers[2].name, "conv2d_1/Conv2D");
  EXPECT_EQ(layers[3].name, "conv2d_2/Conv2D");
}

TEST(GraphBuilder, RectangularConvGeometryAndParams) {
  // Factorized 1x7 / 7x1 pair (Inception module B style).
  GraphBuilder b("m", 1, true);
  b.input(768, 17, 17);
  b.conv_rect(192, 1, 7);
  EXPECT_EQ(b.shape(), (Shape4{1, 192, 17, 17}));
  const Layer h7 = b.peek().layers.back();  // copy: later appends may reallocate
  EXPECT_EQ(h7.kernel_hw, 1);
  EXPECT_EQ(h7.kernel_w2, 7);
  EXPECT_DOUBLE_EQ(h7.param_bytes, 192.0 * 768 * 1 * 7 * 4);

  b.conv_rect(192, 7, 1);
  EXPECT_EQ(b.shape(), (Shape4{1, 192, 17, 17}));
  // The factorized pair costs far less than a dense 7x7.
  GraphBuilder dense("d", 1, true);
  dense.input(768, 17, 17);
  dense.conv(192, 7);
  EXPECT_LT(h7.param_bytes * 2, dense.peek().layers.back().param_bytes);
}

TEST(GraphBuilder, DepthwiseKeepsChannels) {
  GraphBuilder b("m", 2, true);
  b.input(32, 56, 56).depthwise(3, 2);
  EXPECT_EQ(b.shape(), (Shape4{2, 32, 28, 28}));
}

TEST(GraphBuilder, PoolingGeometry) {
  GraphBuilder b("m", 1, true);
  b.input(64, 112, 112).max_pool(3, 2);
  EXPECT_EQ(b.shape().h, 55);
  b.global_avg_pool();
  EXPECT_EQ(b.shape(), (Shape4{1, 64, 1, 1}));
}

TEST(GraphBuilder, FcFlattensAndAddsBias) {
  GraphBuilder b("m", 8, true);
  b.input(64, 7, 7).fc(1000);
  const auto& layers = b.peek().layers;
  ASSERT_EQ(layers.size(), 3u);  // Data, MatMul, BiasAdd
  EXPECT_EQ(layers[1].type, LayerType::kMatMul);
  EXPECT_EQ(layers[1].matmul_k, 64 * 7 * 7);
  EXPECT_EQ(layers[1].output, (Shape4{8, 1000, 1, 1}));
  EXPECT_EQ(layers[2].type, LayerType::kBiasAdd);
}

TEST(GraphBuilder, FcWithoutBias) {
  GraphBuilder b("m", 1, true);
  b.input(16, 1, 1).fc(10, /*bias=*/false);
  EXPECT_EQ(b.peek().layers.size(), 2u);
}

TEST(GraphBuilder, BranchSaveRestore) {
  GraphBuilder b("m", 1, true);
  b.input(16, 14, 14);
  const Shape4 entry = b.shape();
  b.conv(32, 3);
  b.set_shape(entry);
  b.conv(64, 3);
  b.concat(96, 2);
  EXPECT_EQ(b.shape(), (Shape4{1, 96, 14, 14}));
}

TEST(GraphBuilder, AddNRecordsInputCount) {
  GraphBuilder b("m", 1, true);
  b.input(8, 4, 4).add_n(3);
  EXPECT_EQ(b.peek().layers.back().n_inputs, 3);
}

TEST(GraphBuilder, ResizeAndWhereShapes) {
  GraphBuilder b("m", 1, true);
  b.input(4, 10, 10).resize(20, 20);
  EXPECT_EQ(b.shape(), (Shape4{1, 4, 20, 20}));
  b.where();
  EXPECT_EQ(b.peek().layers.back().type, LayerType::kWhere);
}

TEST(GraphBuilder, LayerCountAccessor) {
  GraphBuilder b("m", 1, true);
  EXPECT_EQ(b.layer_count(), 0u);
  b.input(3, 8, 8).conv(4, 3).relu();
  EXPECT_EQ(b.layer_count(), 3u);
}

TEST(GraphBuilder, ModelNamePropagates) {
  GraphBuilder b("MyModel", 1, true);
  b.input(3, 8, 8);
  EXPECT_EQ(std::move(b).build().model_name, "MyModel");
}

}  // namespace
}  // namespace xsp::models
