#include "xsp/sim/gpu_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xsp::sim {
namespace {

TEST(GpuSpec, FiveSystemsInPaperOrder) {
  auto all = all_systems();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "Quadro_RTX");
  EXPECT_EQ(all[1].name, "Tesla_V100");
  EXPECT_EQ(all[2].name, "Tesla_P100");
  EXPECT_EQ(all[3].name, "Tesla_P4");
  EXPECT_EQ(all[4].name, "Tesla_M60");
}

TEST(GpuSpec, TableSevenNumbers) {
  EXPECT_DOUBLE_EQ(quadro_rtx().peak_tflops, 16.3);
  EXPECT_DOUBLE_EQ(quadro_rtx().mem_bw_gbps, 624);
  EXPECT_DOUBLE_EQ(tesla_v100().peak_tflops, 15.7);
  EXPECT_DOUBLE_EQ(tesla_v100().mem_bw_gbps, 900);
  EXPECT_DOUBLE_EQ(tesla_p100().peak_tflops, 9.3);
  EXPECT_DOUBLE_EQ(tesla_p100().mem_bw_gbps, 732);
  EXPECT_DOUBLE_EQ(tesla_p4().peak_tflops, 5.5);
  EXPECT_DOUBLE_EQ(tesla_p4().mem_bw_gbps, 192);
  EXPECT_DOUBLE_EQ(tesla_m60().peak_tflops, 4.8);
  EXPECT_DOUBLE_EQ(tesla_m60().mem_bw_gbps, 160);
}

TEST(GpuSpec, IdealArithmeticIntensityMatchesTableSeven) {
  // Table VII's last column, computed the same way the paper does.
  EXPECT_NEAR(quadro_rtx().ideal_arithmetic_intensity(), 26.12, 0.01);
  EXPECT_NEAR(tesla_v100().ideal_arithmetic_intensity(), 17.44, 0.01);
  EXPECT_NEAR(tesla_p100().ideal_arithmetic_intensity(), 12.70, 0.01);
  EXPECT_NEAR(tesla_p4().ideal_arithmetic_intensity(), 28.64, 0.35);
  EXPECT_NEAR(tesla_m60().ideal_arithmetic_intensity(), 30.0, 0.15);
}

TEST(GpuSpec, ArchitecturesMatchGenerations) {
  EXPECT_EQ(quadro_rtx().arch, GpuArch::kTuring);
  EXPECT_EQ(tesla_v100().arch, GpuArch::kVolta);
  EXPECT_EQ(tesla_p100().arch, GpuArch::kPascal);
  EXPECT_EQ(tesla_p4().arch, GpuArch::kPascal);
  EXPECT_EQ(tesla_m60().arch, GpuArch::kMaxwell);
}

TEST(GpuSpec, KernelPrefixSplitsAtVolta) {
  // Section IV-C: Volta/Turing dispatch volta_* kernels, earlier parts
  // dispatch maxwell_* kernels.
  EXPECT_STREQ(arch_kernel_prefix(GpuArch::kTuring), "volta");
  EXPECT_STREQ(arch_kernel_prefix(GpuArch::kVolta), "volta");
  EXPECT_STREQ(arch_kernel_prefix(GpuArch::kPascal), "maxwell");
  EXPECT_STREQ(arch_kernel_prefix(GpuArch::kMaxwell), "maxwell");
}

TEST(GpuSpec, LookupByName) {
  EXPECT_EQ(system_by_name("Tesla_V100").gpu, "Tesla V100-SXM2-16GB");
  EXPECT_THROW(system_by_name("Tesla_K80"), std::invalid_argument);
}

TEST(GpuSpec, ArchNames) {
  EXPECT_STREQ(arch_name(GpuArch::kMaxwell), "Maxwell");
  EXPECT_STREQ(arch_name(GpuArch::kTuring), "Turing");
}

}  // namespace
}  // namespace xsp::sim
