#include "xsp/sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace xsp::sim {
namespace {

KernelDesc big_conv() {
  KernelDesc k;
  k.name = "volta_scudnn_128x64_relu_interior_nn_v1";
  k.klass = KernelClass::kConvImplicitPrecompGemm;
  k.grid = {512, 1, 1};
  k.block = {256, 1, 1};
  k.flops = 62.89e9;
  k.dram_read_bytes = 11.55e6;
  k.dram_write_bytes = 283.05e6;
  return k;
}

KernelDesc elementwise() {
  KernelDesc k;
  k.name = "Eigen::TensorCwiseBinaryOp";
  k.klass = KernelClass::kElementwise;
  k.grid = {4096, 1, 1};
  k.block = {256, 1, 1};
  k.flops = 51.4e6;
  k.dram_read_bytes = 80e6;
  k.dram_write_bytes = 123e6;
  return k;
}

TEST(CostModel, ComputeBoundKernelScalesWithFlops) {
  const auto& g = tesla_v100();
  auto k = big_conv();
  const double occ = achieved_occupancy(k, g);
  const Ns t1 = kernel_duration(k, g, occ);
  k.flops *= 2;
  const Ns t2 = kernel_duration(k, g, occ);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.1);
}

TEST(CostModel, MemoryBoundKernelScalesWithBytes) {
  const auto& g = tesla_v100();
  auto k = elementwise();
  const double occ = achieved_occupancy(k, g);
  const Ns t1 = kernel_duration(k, g, occ);
  k.dram_read_bytes *= 2;
  k.dram_write_bytes *= 2;
  const Ns t2 = kernel_duration(k, g, occ);
  EXPECT_GT(t2, t1);
  EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0, 0.15);
}

TEST(CostModel, BigConvLandsInPaperLatencyRange) {
  // Table III: this kernel measures 4.91 ms on V100 at batch 256.
  const auto& g = tesla_v100();
  const auto k = big_conv();
  const double occ = achieved_occupancy(k, g);
  const Ns t = kernel_duration(k, g, occ);
  EXPECT_GT(to_ms(t), 2.0);
  EXPECT_LT(to_ms(t), 10.0);
}

TEST(CostModel, FasterGpuIsFasterOnComputeBoundKernels) {
  const auto k = big_conv();
  const Ns v100 = kernel_duration(k, tesla_v100(), 0.5);
  const Ns m60 = kernel_duration(k, tesla_m60(), 0.5);
  EXPECT_LT(v100, m60);
}

TEST(CostModel, HigherBandwidthWinsOnMemoryBoundKernels) {
  const auto k = elementwise();
  // V100: 900 GB/s; Quadro RTX: 624 GB/s. The paper notes Quadro RTX
  // "straggles on memory-bound layers" despite higher peak FLOPS.
  const Ns v100 = kernel_duration(k, tesla_v100(), 0.6);
  const Ns rtx = kernel_duration(k, quadro_rtx(), 0.6);
  EXPECT_LT(v100, rtx);
}

TEST(CostModel, LowOccupancySlowsKernels) {
  const auto& g = tesla_v100();
  const auto k = big_conv();
  const Ns high = kernel_duration(k, g, 0.9);
  const Ns low = kernel_duration(k, g, 0.05);
  EXPECT_GT(low, high);
}

TEST(CostModel, DurationIsAlwaysPositive) {
  const auto& g = tesla_v100();
  KernelDesc empty;
  empty.name = "noop";
  EXPECT_GT(kernel_duration(empty, g, 0.5), 0);
}

TEST(Occupancy, SmallGridCannotFillDevice) {
  const auto& g = tesla_v100();
  KernelDesc k = big_conv();
  k.grid = {2, 1, 1};  // 2 blocks on an 80-SM part
  EXPECT_LT(achieved_occupancy(k, g), 0.05);
}

TEST(Occupancy, LargeGridApproachesTheoreticalLimit) {
  const auto& g = tesla_v100();
  KernelDesc k = elementwise();
  k.grid = {100'000, 1, 1};
  k.registers_per_thread = 32;
  EXPECT_GT(achieved_occupancy(k, g), 0.5);
}

TEST(Occupancy, RegisterPressureLimitsOccupancy) {
  const auto& g = tesla_v100();
  KernelDesc heavy = elementwise();
  heavy.grid = {100'000, 1, 1};
  heavy.registers_per_thread = 255;
  KernelDesc light = heavy;
  light.registers_per_thread = 32;
  EXPECT_LT(achieved_occupancy(heavy, g), achieved_occupancy(light, g));
}

TEST(Occupancy, AlwaysInUnitInterval) {
  const auto& g = tesla_p4();
  for (int grid = 1; grid <= 1 << 20; grid *= 4) {
    KernelDesc k = elementwise();
    k.grid = {grid, 1, 1};
    const double occ = achieved_occupancy(k, g);
    EXPECT_GT(occ, 0.0);
    EXPECT_LE(occ, 1.0);
  }
}

TEST(Roofline, ClassificationMatchesIdealIntensity) {
  const auto& g = tesla_v100();  // knee at 17.44 flops/byte
  EXPECT_TRUE(is_memory_bound(10.0, 1.0, g));    // AI = 10
  EXPECT_FALSE(is_memory_bound(100.0, 1.0, g));  // AI = 100
}

TEST(Roofline, PaperKernelClassifications) {
  const auto& g = tesla_v100();
  // Table III: volta_cgemm_32x32_tn — AI 876.97, compute-bound.
  EXPECT_FALSE(is_memory_bound(77.42e9, 40.33e6 + 43.86e6, g));
  // Table IV: Eigen scalar_product_op — AI 0.26, memory-bound.
  EXPECT_TRUE(is_memory_bound(2.85e9, 4181.23e6 + 6371.12e6, g));
}

TEST(Roofline, ArithmeticHelpers) {
  EXPECT_DOUBLE_EQ(arithmetic_intensity(100.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(arithmetic_intensity(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(arithmetic_throughput(1e9, ms(1)), 1e12);
  EXPECT_DOUBLE_EQ(arithmetic_throughput(1e9, 0), 0.0);
}

TEST(Memcpy, DurationScalesWithBytes) {
  const auto& g = tesla_v100();
  MemcpyDesc small{MemcpyDesc::Direction::kHostToDevice, 1e6};
  MemcpyDesc large{MemcpyDesc::Direction::kHostToDevice, 100e6};
  EXPECT_LT(memcpy_duration(small, g), memcpy_duration(large, g));
}

TEST(Memcpy, DeviceToDeviceUsesDramBandwidth) {
  const auto& g = tesla_v100();
  MemcpyDesc h2d{MemcpyDesc::Direction::kHostToDevice, 100e6};
  MemcpyDesc d2d{MemcpyDesc::Direction::kDeviceToDevice, 100e6};
  EXPECT_LT(memcpy_duration(d2d, g), memcpy_duration(h2d, g));
}

TEST(KernelClass, AllClassesHaveNamesAndEfficiencies) {
  for (auto c : {KernelClass::kConvImplicitGemm, KernelClass::kConvImplicitPrecompGemm,
                 KernelClass::kConvFft, KernelClass::kConvWinograd, KernelClass::kGemm,
                 KernelClass::kElementwise, KernelClass::kReduction,
                 KernelClass::kDataMovement}) {
    EXPECT_STRNE(kernel_class_name(c), "?");
    const auto eff = class_efficiency(c);
    EXPECT_GT(eff.compute, 0.0);
    EXPECT_LE(eff.compute, 1.0);
    EXPECT_GT(eff.memory, 0.0);
    EXPECT_LE(eff.memory, 1.0);
  }
}

}  // namespace
}  // namespace xsp::sim
