// Parameterized property sweeps of the cost and occupancy models across
// every Table VII system and kernel class.
#include <gtest/gtest.h>

#include <tuple>

#include "xsp/sim/cost_model.hpp"

namespace xsp::sim {
namespace {

constexpr KernelClass kAllClasses[] = {
    KernelClass::kConvImplicitGemm, KernelClass::kConvImplicitPrecompGemm,
    KernelClass::kConvFft,          KernelClass::kConvWinograd,
    KernelClass::kGemm,             KernelClass::kElementwise,
    KernelClass::kReduction,        KernelClass::kDataMovement,
};

KernelDesc make_kernel(KernelClass klass, double flops, double bytes, int grid) {
  KernelDesc k;
  k.name = kernel_class_name(klass);
  k.klass = klass;
  k.grid = {grid, 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 64;
  k.flops = flops;
  k.dram_read_bytes = bytes / 2;
  k.dram_write_bytes = bytes / 2;
  return k;
}

using SystemClass = std::tuple<std::size_t, KernelClass>;

class CostModelSweep : public ::testing::TestWithParam<SystemClass> {
 protected:
  const GpuSpec& system() const { return all_systems()[std::get<0>(GetParam())]; }
  KernelClass klass() const { return std::get<1>(GetParam()); }
};

TEST_P(CostModelSweep, DurationPositiveAndFiniteAcrossScales) {
  for (double scale : {1e3, 1e6, 1e9, 1e12}) {
    const auto k = make_kernel(klass(), scale, scale, 1024);
    const Ns t = kernel_duration(k, system(), occupancy_info(k, system()));
    EXPECT_GT(t, 0);
    EXPECT_LT(t, seconds(3600));
  }
}

TEST_P(CostModelSweep, MonotoneInWork) {
  Ns prev = 0;
  for (double scale : {1e6, 1e7, 1e8, 1e9, 1e10}) {
    const auto k = make_kernel(klass(), scale, scale / 10, 4096);
    const Ns t = kernel_duration(k, system(), occupancy_info(k, system()));
    EXPECT_GE(t, prev) << "flops " << scale;
    prev = t;
  }
}

TEST_P(CostModelSweep, MonotoneInGridSaturation) {
  // More blocks never make a fixed-work kernel slower per unit.
  Ns prev_total = seconds(3600);
  for (int grid : {1, 8, 64, 512, 4096, 32768}) {
    const auto k = make_kernel(klass(), 1e9, 1e8, grid);
    const Ns t = kernel_duration(k, system(), occupancy_info(k, system()));
    EXPECT_LE(t, prev_total) << "grid " << grid;
    prev_total = t;
  }
}

TEST_P(CostModelSweep, OccupancyInUnitRange) {
  for (int grid : {1, 17, 333, 5000, 100000}) {
    const auto k = make_kernel(klass(), 1e8, 1e8, grid);
    const auto occ = occupancy_info(k, system());
    EXPECT_GT(occ.achieved, 0.0);
    EXPECT_LE(occ.achieved, 1.0);
    EXPECT_GT(occ.saturation, 0.0);
    EXPECT_LE(occ.saturation, 1.0);
  }
}

TEST_P(CostModelSweep, NeverFasterThanPhysics) {
  // No kernel may beat the device's theoretical peak FLOPS or bandwidth.
  const auto& g = system();
  const auto k = make_kernel(klass(), 1e12, 1e11, 65536);
  const Ns t = kernel_duration(k, g, occupancy_info(k, g));
  const double secs = to_seconds(t);
  EXPECT_GE(secs, k.flops / (g.peak_tflops * 1e12) * 0.999);
  EXPECT_GE(secs, k.total_dram_bytes() / (g.mem_bw_gbps * 1e9) * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    SystemsByClasses, CostModelSweep,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1, 2, 3, 4),
                       ::testing::ValuesIn(kAllClasses)),
    [](const ::testing::TestParamInfo<SystemClass>& info) {
      return std::string(all_systems()[std::get<0>(info.param)].name) + "_" +
             kernel_class_name(std::get<1>(info.param));
    });

TEST(CostModelCrossSystem, PeakOrderingHoldsForComputeBoundKernels) {
  // For a saturated compute-bound kernel, systems rank by peak FLOPS.
  const auto k = make_kernel(KernelClass::kGemm, 1e11, 1e8, 65536);
  std::vector<std::pair<double, Ns>> results;
  for (const auto& g : all_systems()) {
    results.emplace_back(g.peak_tflops, kernel_duration(k, g, occupancy_info(k, g)));
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (results[i].first > results[j].first) {
        EXPECT_LT(results[i].second, results[j].second);
      }
    }
  }
}

TEST(CostModelCrossSystem, BandwidthOrderingHoldsForMemoryBoundKernels) {
  const auto k = make_kernel(KernelClass::kElementwise, 1e6, 1e10, 65536);
  std::vector<std::pair<double, Ns>> results;
  for (const auto& g : all_systems()) {
    results.emplace_back(g.mem_bw_gbps, kernel_duration(k, g, occupancy_info(k, g)));
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (results[i].first > results[j].first) {
        EXPECT_LT(results[i].second, results[j].second);
      }
    }
  }
}

}  // namespace
}  // namespace xsp::sim
