#include "xsp/sim/device.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xsp::sim {
namespace {

KernelDesc small_kernel(const std::string& name = "k") {
  KernelDesc k;
  k.name = name;
  k.klass = KernelClass::kElementwise;
  k.grid = {1024, 1, 1};
  k.block = {256, 1, 1};
  k.flops = 1e6;
  k.dram_read_bytes = 10e6;
  k.dram_write_bytes = 10e6;
  return k;
}

TEST(GpuDevice, LaunchIsAsynchronous) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  const auto r = dev.launch_kernel(kDefaultStream, small_kernel());
  // CPU returned after only the API cost; execution is in the future.
  EXPECT_EQ(clock.now(), r.api_end);
  EXPECT_GT(r.exec_end, clock.now());
  EXPECT_GT(r.exec_begin, r.api_begin);
}

TEST(GpuDevice, SynchronizeAdvancesCpuToCompletion) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  const auto r = dev.launch_kernel(kDefaultStream, small_kernel());
  dev.synchronize();
  EXPECT_EQ(clock.now(), r.exec_end);
}

TEST(GpuDevice, StreamIsFifo) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  const auto a = dev.launch_kernel(kDefaultStream, small_kernel("a"));
  const auto b = dev.launch_kernel(kDefaultStream, small_kernel("b"));
  EXPECT_GE(b.exec_begin, a.exec_end);
}

TEST(GpuDevice, IndependentStreamsOverlap) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  const StreamId s2 = dev.create_stream();
  const auto a = dev.launch_kernel(kDefaultStream, small_kernel("a"));
  const auto b = dev.launch_kernel(s2, small_kernel("b"));
  // The second launch did not wait for the first stream's tail.
  EXPECT_LT(b.exec_begin, a.exec_end);
}

TEST(GpuDevice, SerializedModeBlocksUntilExecution) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  dev.set_serialized(true);
  const auto r = dev.launch_kernel(kDefaultStream, small_kernel());
  EXPECT_EQ(clock.now(), r.exec_end);
}

TEST(GpuDevice, CorrelationIdsIncrease) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  const auto a = dev.launch_kernel(kDefaultStream, small_kernel());
  const auto b = dev.launch_kernel(kDefaultStream, small_kernel());
  EXPECT_LT(a.correlation_id, b.correlation_id);
}

TEST(GpuDevice, ActivityRecordsMatchLaunches) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  const auto r1 = dev.launch_kernel(kDefaultStream, small_kernel("x"));
  const auto r2 = dev.launch_kernel(kDefaultStream, small_kernel("y"));
  auto acts = dev.drain_activities();
  ASSERT_EQ(acts.size(), 2u);
  EXPECT_EQ(acts[0].correlation_id, r1.correlation_id);
  EXPECT_EQ(acts[0].name, "x");
  EXPECT_EQ(acts[0].begin, r1.exec_begin);
  EXPECT_EQ(acts[0].end, r1.exec_end);
  EXPECT_EQ(acts[1].correlation_id, r2.correlation_id);
  // Draining clears the buffer.
  EXPECT_TRUE(dev.drain_activities().empty());
}

TEST(GpuDevice, ActivityRecordingCanBeDisabled) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  dev.set_record_activities(false);
  dev.launch_kernel(kDefaultStream, small_kernel());
  EXPECT_TRUE(dev.activities().empty());
}

TEST(GpuDevice, ApiCallbacksFireWithCorrelation) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  std::vector<ApiCallbackInfo> seen;
  dev.subscribe([&](const ApiCallbackInfo& info) { seen.push_back(info); });
  const auto r = dev.launch_kernel(kDefaultStream, small_kernel("k"));
  dev.synchronize();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].api, ApiCallbackInfo::Api::kLaunchKernel);
  EXPECT_EQ(seen[0].correlation_id, r.correlation_id);
  EXPECT_EQ(seen[0].name, "k");
  EXPECT_EQ(seen[1].api, ApiCallbackInfo::Api::kDeviceSynchronize);
}

TEST(GpuDevice, CallbackClockAdvanceIsAttributedToApi) {
  // A profiler that burns CPU inside the callback (as CUPTI subscribers do)
  // stretches simulated time; later launches start later.
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  dev.subscribe([&clock](const ApiCallbackInfo& info) {
    if (info.api == ApiCallbackInfo::Api::kLaunchKernel) clock.advance(us(100));
  });
  const TimePoint before = clock.now();
  dev.launch_kernel(kDefaultStream, small_kernel());
  EXPECT_GE(clock.now() - before, us(100));
}

TEST(GpuDevice, ReplayMultipliesStreamOccupancy) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  dev.set_replay_count(4);
  const auto r = dev.launch_kernel(kDefaultStream, small_kernel());
  dev.synchronize();
  const Ns one_run = r.exec_end - r.exec_begin;
  // Device busy until 4 replays complete; reported window is one run.
  EXPECT_EQ(clock.now(), r.exec_begin + 4 * one_run);
  auto acts = dev.drain_activities();
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].duration(), one_run);
}

TEST(GpuDevice, MemcpyActivitiesRecorded) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  MemcpyDesc copy{MemcpyDesc::Direction::kHostToDevice, 64e6};
  const auto r = dev.enqueue_memcpy(kDefaultStream, copy);
  dev.synchronize_stream(kDefaultStream);
  EXPECT_EQ(clock.now(), r.exec_end);
  auto acts = dev.drain_activities();
  ASSERT_EQ(acts.size(), 1u);
  EXPECT_EQ(acts[0].type, ActivityRecord::Type::kMemcpy);
  EXPECT_EQ(acts[0].name, "MemcpyHtoD");
}

TEST(GpuDevice, ResetClearsStateButKeepsSubscribers) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  int callback_count = 0;
  dev.subscribe([&](const ApiCallbackInfo&) { ++callback_count; });
  dev.launch_kernel(kDefaultStream, small_kernel());
  dev.reset();
  EXPECT_TRUE(dev.activities().empty());
  EXPECT_EQ(dev.kernels_launched(), 0u);
  dev.launch_kernel(kDefaultStream, small_kernel());
  EXPECT_EQ(callback_count, 2);
}

TEST(GpuDevice, KernelOrderOnStreamPreservedInActivities) {
  SimClock clock;
  GpuDevice dev(tesla_v100(), clock);
  for (int i = 0; i < 10; ++i) {
    dev.launch_kernel(kDefaultStream, small_kernel("k" + std::to_string(i)));
  }
  auto acts = dev.drain_activities();
  ASSERT_EQ(acts.size(), 10u);
  for (std::size_t i = 1; i < acts.size(); ++i) {
    EXPECT_GE(acts[i].begin, acts[i - 1].end) << "stream must serialize kernels";
  }
}

}  // namespace
}  // namespace xsp::sim
