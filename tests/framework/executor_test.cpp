#include "xsp/framework/executor.hpp"

#include <gtest/gtest.h>

#include "xsp/models/builder.hpp"

namespace xsp::framework {
namespace {

using models::GraphBuilder;

Graph tiny_graph(std::int64_t batch, bool decompose_bn) {
  GraphBuilder b("tiny", batch, decompose_bn);
  b.input(3, 32, 32);
  b.conv(16, 3, 1).batch_norm().relu();
  b.global_avg_pool().fc(10).softmax();
  return std::move(b).build();
}

TEST(Executor, RunsGraphAndAdvancesTime) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  const auto result = ex.run(tiny_graph(1, true));
  EXPECT_GT(result.latency(), 0);
  EXPECT_EQ(result.end, clock.now());
}

TEST(Executor, LayerRecordsOnlyWhenProfiling) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  EXPECT_TRUE(ex.run(tiny_graph(1, true)).layer_records.empty());

  RunOptions opts;
  opts.enable_layer_profiling = true;
  const auto result = ex.run(tiny_graph(1, true), opts);
  EXPECT_EQ(result.layer_records.size(), tiny_graph(1, true).layers.size());
}

TEST(Executor, LayerRecordsCarryMetadata) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  RunOptions opts;
  opts.enable_layer_profiling = true;
  const auto result = ex.run(tiny_graph(4, true), opts);

  const auto& conv = result.layer_records[1];
  EXPECT_EQ(conv.type, "Conv2D");
  EXPECT_EQ(conv.index, 1);
  EXPECT_GT(conv.latency(), 0);
  EXPECT_DOUBLE_EQ(conv.alloc_bytes, 4.0 * 16 * 32 * 32 * 4);
  // Records are contiguous and ordered.
  for (std::size_t i = 1; i < result.layer_records.size(); ++i) {
    EXPECT_GE(result.layer_records[i].begin, result.layer_records[i - 1].end);
  }
}

TEST(Executor, ProfilingOverheadOutsideLayerSpans) {
  // Section III-C: the framework profiler inflates the model latency but
  // each layer's recorded latency stays accurate.
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  const auto plain = ex.run(tiny_graph(1, true));

  dev.reset();
  clock.reset();
  RunOptions opts;
  opts.enable_layer_profiling = true;
  const auto profiled = ex.run(tiny_graph(1, true), opts);

  EXPECT_GT(profiled.latency(), plain.latency());
  Ns layer_sum = 0;
  for (const auto& rec : profiled.layer_records) layer_sum += rec.latency();
  // Layers exclude the profiler's own cost.
  EXPECT_LT(layer_sum, profiled.latency());
  const Ns expected_overhead =
      traits_for(FrameworkKind::kTFlow).profiler_per_layer_ns *
      static_cast<Ns>(profiled.layer_records.size());
  EXPECT_NEAR(static_cast<double>(profiled.latency() - plain.latency()),
              static_cast<double>(expected_overhead), static_cast<double>(us(50)));
}

TEST(Executor, TFlowDecomposesBatchNormMXLiteFuses) {
  EXPECT_TRUE(traits_for(FrameworkKind::kTFlow).decompose_batchnorm);
  EXPECT_FALSE(traits_for(FrameworkKind::kMXLite).decompose_batchnorm);

  const auto tf_graph = tiny_graph(1, true);
  const auto mx_graph = tiny_graph(1, false);
  int tf_bn_parts = 0;
  int mx_bn = 0;
  for (const auto& l : tf_graph.layers) {
    if (l.type == LayerType::kMul || l.type == LayerType::kAdd) ++tf_bn_parts;
    EXPECT_NE(l.type, LayerType::kFusedBatchNorm);
  }
  for (const auto& l : mx_graph.layers) {
    if (l.type == LayerType::kFusedBatchNorm) ++mx_bn;
  }
  EXPECT_EQ(tf_bn_parts, 2);
  EXPECT_EQ(mx_bn, 1);
}

TEST(Executor, MXLiteHasHigherEngineOverhead) {
  // Section IV-B: "MXNet incurs a fixed overhead for model execution which
  // is more pronounced for small batch sizes". The cost is batch-independent
  // and per-layer, so deep ResNets feel it while shallow MobileNets don't
  // (Table X batch-1 latencies).
  EXPECT_GT(traits_for(FrameworkKind::kMXLite).per_layer_dispatch_ns,
            traits_for(FrameworkKind::kTFlow).per_layer_dispatch_ns * 2);
  EXPECT_GT(traits_for(FrameworkKind::kMXLite).fixed_run_overhead_ns,
            traits_for(FrameworkKind::kTFlow).fixed_run_overhead_ns);
}

TEST(Executor, KernelsLaunchedMatchLayerTypes) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  ex.run(tiny_graph(1, true));
  const auto acts = dev.activities();
  // Data memcpy + conv (>=1) + Mul + Add + Relu(max) + avgpool + gemm +
  // bias + softmax.
  EXPECT_GE(acts.size(), 9u);
  EXPECT_EQ(acts.front().type, sim::ActivityRecord::Type::kMemcpy);
}

TEST(Executor, EveryLayerTypeExecutes) {
  // One graph touching every LayerType must run without crashing and
  // launch work for all device-backed types.
  GraphBuilder b("all_types", 2, true);
  b.input(3, 64, 64);
  b.conv(8, 3, 1).batch_norm().relu();
  b.depthwise(3, 1).batch_norm();
  b.sigmoid().tanh();
  b.add_n(2);
  b.max_pool(2, 2).avg_pool(2, 2);
  b.pad_layer(1);
  b.concat(16, 2);
  b.transpose();
  b.where();
  b.resize(32, 32);
  b.reduce();
  b.reshape({2, 8, 32, 32});
  b.fc(10).softmax();
  const Graph g = std::move(b).build();

  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  RunOptions opts;
  opts.enable_layer_profiling = true;
  const auto result = ex.run(g, opts);
  EXPECT_EQ(result.layer_records.size(), g.layers.size());
  EXPECT_GT(dev.activities().size(), 15u);
}

TEST(Executor, LibraryRecordsNameTheBackendCalls) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  RunOptions opts;
  opts.enable_library_profiling = true;
  const auto result = ex.run(tiny_graph(2, true), opts);

  ASSERT_FALSE(result.library_records.empty());
  // One record per device-backed layer (no Reshape), in layer order.
  std::vector<common::StrId> names;
  for (const auto& rec : result.library_records) {
    EXPECT_LE(rec.begin, rec.end);
    names.push_back(rec.name);
  }
  EXPECT_EQ(names[0], "cudaMemcpyAsync");              // Data
  EXPECT_EQ(names[1], "cudnnConvolutionForward");      // Conv2D
  EXPECT_EQ(names[2], "Eigen::GpuDevice::execute");    // BN Mul
  EXPECT_EQ(names.back(), "cudnnSoftmaxForward");
}

TEST(Executor, LibraryRecordsWindowIsCpuSideOnly) {
  // The library call returns once its kernels are enqueued; the record's
  // window must not include the device execution drained by the layer sync.
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  RunOptions opts;
  opts.enable_layer_profiling = true;
  opts.enable_library_profiling = true;
  const auto result = ex.run(tiny_graph(64, true), opts);
  ASSERT_EQ(result.library_records.size(), result.layer_records.size());
  for (std::size_t i = 0; i < result.library_records.size(); ++i) {
    const auto& lib = result.library_records[i];
    const auto& layer = result.layer_records[i];
    EXPECT_GE(lib.begin, layer.begin);
    EXPECT_LE(lib.end, layer.end);
    EXPECT_LE(lib.end - lib.begin, layer.latency()) << layer.name;
  }
}

TEST(Executor, ReshapeLaunchesNothing) {
  GraphBuilder b("reshape_only", 1, true);
  b.input(1, 4, 4);
  b.reshape({1, 16, 1, 1});
  const Graph g = std::move(b).build();

  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  ex.run(g);
  // Only the Data memcpy.
  EXPECT_EQ(dev.activities().size(), 1u);
}

TEST(Executor, BatchScalesLatency) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  Executor ex(FrameworkKind::kTFlow, dev);
  const Ns t1 = ex.run(tiny_graph(1, true)).latency();
  dev.reset();
  const Ns t64 = ex.run(tiny_graph(64, true)).latency();
  EXPECT_GT(t64, t1);
  // Throughput improves with batching.
  EXPECT_LT(static_cast<double>(t64) / 64.0, static_cast<double>(t1));
}

TEST(Executor, FrameworkNames) {
  EXPECT_STREQ(framework_name(FrameworkKind::kTFlow), "TFlow");
  EXPECT_STREQ(framework_name(FrameworkKind::kMXLite), "MXLite");
}

TEST(Graph, SizeSumsParameters) {
  const auto g = tiny_graph(1, true);
  EXPECT_GT(g.graph_size_bytes(), 0);
  EXPECT_EQ(g.batch(), 1);
}

}  // namespace
}  // namespace xsp::framework
