#include "xsp/report/table.hpp"

#include <gtest/gtest.h>

namespace xsp::report {
namespace {

TEST(TextTable, AlignedOutput) {
  TextTable t({"Name", "Latency"});
  t.add_row({"conv2d", "7.59"});
  t.add_row({"x", "1"});
  const auto s = t.str();
  EXPECT_NE(s.find("Name    Latency"), std::string::npos);
  EXPECT_NE(s.find("conv2d  7.59"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, MissingCellsRenderEmpty) {
  TextTable t({"A", "B", "C"});
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.str());
}

TEST(TextTable, ExtraCellsDropped) {
  TextTable t({"A"});
  t.add_row({"1", "2", "3"});
  const auto s = t.csv();
  EXPECT_EQ(s, "A\n1\n");
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"Kernel"});
  t.add_row({"Eigen::TensorCwiseBinaryOp<a,b>"});
  t.add_row({"say \"hi\""});
  const auto s = t.csv();
  EXPECT_NE(s.find("\"Eigen::TensorCwiseBinaryOp<a,b>\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, MarkdownShape) {
  TextTable t({"A", "B"});
  t.add_row({"1", "2"});
  const auto s = t.markdown();
  EXPECT_NE(s.find("| A | B |"), std::string::npos);
  EXPECT_NE(s.find("|---|---|"), std::string::npos);
  EXPECT_NE(s.find("| 1 | 2 |"), std::string::npos);
}

TEST(TextTable, EmptyTableStillRenders) {
  TextTable t({"OnlyHeader"});
  EXPECT_NE(t.str().find("OnlyHeader"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

}  // namespace
}  // namespace xsp::report
