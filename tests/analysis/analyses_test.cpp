#include "xsp/analysis/analyses.hpp"

#include <gtest/gtest.h>

#include "xsp/models/builder.hpp"
#include "xsp/profile/leveled.hpp"

namespace xsp::analysis {
namespace {

using profile::LeveledRunner;

framework::Graph test_graph(std::int64_t batch = 8) {
  models::GraphBuilder b("test_model", batch, true);
  b.input(3, 64, 64);
  b.conv(32, 3, 1).batch_norm().relu();
  b.conv(64, 3, 2).batch_norm().relu();
  b.add_n(2);
  b.global_avg_pool().fc(10).softmax();
  return std::move(b).build();
}

const ModelProfile& test_profile() {
  static const ModelProfile p = [] {
    LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    return runner.run(test_graph()).profile;
  }();
  return p;
}

// --------------------------------------------------------------- A1 ----

TEST(A1, OptimalBatchByDoublingRule) {
  // Throughputs: 100, 180, 200 -> doubling 1->2 gains 80% (>5%), 2->4 gains
  // 11% (>5%), so the sweep ends at the last point.
  std::vector<BatchPoint> pts{{1, 10.0}, {2, 11.1}, {4, 20.0}};
  auto info = a1_model_information(pts);
  EXPECT_EQ(info.optimal_batch, 4);

  // Flat curve: optimal is the first batch.
  std::vector<BatchPoint> flat{{1, 10.0}, {2, 20.0}, {4, 40.0}};
  info = a1_model_information(flat);
  EXPECT_EQ(info.optimal_batch, 1);
  EXPECT_DOUBLE_EQ(info.max_throughput, 100.0);
}

TEST(A1, OnlineLatencyIsBatchOne) {
  std::vector<BatchPoint> pts{{2, 12.0}, {1, 7.0}};
  const auto info = a1_model_information(pts);
  EXPECT_DOUBLE_EQ(info.online_latency_ms, 7.0);
}

TEST(A1, ThroughputComputation) {
  BatchPoint pt{256, 275.05};
  EXPECT_NEAR(pt.throughput(), 930.7, 1.0);  // the paper's headline number
}

TEST(A1, EmptyPointsAreSafe) {
  const auto info = a1_model_information({});
  EXPECT_EQ(info.optimal_batch, 1);
  EXPECT_DOUBLE_EQ(info.max_throughput, 0.0);
}

// ------------------------------------------------------------ A2-A4 ----

TEST(A2, LayerTableMatchesProfile) {
  const auto rows = a2_layer_info(test_profile());
  EXPECT_EQ(rows.size(), test_profile().layers.size());
  EXPECT_EQ(rows[0].type, "Data");
  EXPECT_EQ(rows[1].type, "Conv2D");
  EXPECT_GT(rows[1].latency_ms, 0);
  EXPECT_GT(rows[1].alloc_mb, 0);
}

TEST(A2, TopLayersSortedByLatency) {
  const auto top = top_layers_by_latency(test_profile(), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].latency_ms, top[1].latency_ms);
  EXPECT_GE(top[1].latency_ms, top[2].latency_ms);
}

TEST(A3A4, VectorsInExecutionOrder) {
  const auto latency = a3_layer_latency_us(test_profile());
  const auto alloc = a4_layer_alloc_mb(test_profile());
  EXPECT_EQ(latency.size(), test_profile().layers.size());
  EXPECT_EQ(alloc.size(), test_profile().layers.size());
  for (double v : latency) EXPECT_GE(v, 0);
}

// ------------------------------------------------------------ A5-A7 ----

TEST(A5A6A7, TypeAggregationSumsTo100Percent) {
  const auto aggs = layer_type_aggregation(test_profile());
  double count_pct = 0;
  double latency_pct = 0;
  double alloc_pct = 0;
  int count = 0;
  for (const auto& a : aggs) {
    count_pct += a.count_pct;
    latency_pct += a.latency_pct;
    alloc_pct += a.alloc_pct;
    count += a.count;
  }
  EXPECT_NEAR(count_pct, 100.0, 1e-6);
  EXPECT_NEAR(latency_pct, 100.0, 1e-6);
  EXPECT_NEAR(alloc_pct, 100.0, 1e-6);
  EXPECT_EQ(count, static_cast<int>(test_profile().layers.size()));
  // Sorted by latency descending.
  for (std::size_t i = 1; i < aggs.size(); ++i) {
    EXPECT_GE(aggs[i - 1].latency_ms, aggs[i].latency_ms);
  }
}

// ------------------------------------------------------------ A8-A10 ----

TEST(A8, KernelTableExcludesMemcpys) {
  const auto rows = a8_kernel_info(test_profile(), sim::tesla_v100());
  for (const auto& r : rows) {
    EXPECT_EQ(r.name.find("Memcpy"), std::string::npos);
    EXPECT_GE(r.layer_index, 0);
  }
}

TEST(A8, RooflineFieldsConsistent) {
  for (const auto& r : a8_kernel_info(test_profile(), sim::tesla_v100())) {
    if (r.gflops > 0) {
      EXPECT_GT(r.tflops, 0) << r.name;
      const bool expect_bound =
          r.arithmetic_intensity < sim::tesla_v100().ideal_arithmetic_intensity();
      EXPECT_EQ(r.memory_bound, expect_bound) << r.name;
    }
  }
}

TEST(A9, RooflinePointsMatchKernelTable) {
  const auto pts = a9_kernel_roofline(test_profile(), sim::tesla_v100());
  const auto rows = a8_kernel_info(test_profile(), sim::tesla_v100());
  EXPECT_EQ(pts.size(), rows.size());
}

TEST(A10, AggregationByNameConservesTotals) {
  const auto aggs = a10_kernel_by_name(test_profile(), sim::tesla_v100());
  double agg_latency = 0;
  int agg_count = 0;
  for (const auto& a : aggs) {
    agg_latency += a.latency_ms;
    agg_count += a.count;
    EXPECT_GE(a.occupancy_pct, 0);
    EXPECT_LE(a.occupancy_pct, 100);
  }
  EXPECT_NEAR(agg_latency, to_ms(test_profile().total_kernel_latency()), 1e-6);
  EXPECT_EQ(agg_count, static_cast<int>(a8_kernel_info(test_profile(), sim::tesla_v100()).size()));
}

// ----------------------------------------------------------- A11-A14 ----

TEST(A11, PerLayerAggregatesConserveKernelTotals) {
  const auto rows = a11_kernel_by_layer(test_profile(), sim::tesla_v100());
  EXPECT_EQ(rows.size(), test_profile().layers.size());
  double total_kernel_ms = 0;
  for (const auto& r : rows) {
    EXPECT_LE(r.kernel_latency_ms, r.layer_latency_ms + 1e-9) << r.name;
    total_kernel_ms += r.kernel_latency_ms;
  }
  EXPECT_NEAR(total_kernel_ms, to_ms(test_profile().total_kernel_latency()), 1e-6);
}

TEST(A12, MetricsVectorsAligned) {
  const auto m = a12_layer_gpu_metrics(test_profile());
  EXPECT_EQ(m.gflops.size(), test_profile().layers.size());
  EXPECT_EQ(m.dram_reads_mb.size(), test_profile().layers.size());
  EXPECT_EQ(m.dram_writes_mb.size(), test_profile().layers.size());
}

TEST(A13, GpuPlusNonGpuEqualsLayer) {
  for (const auto& r : a13_gpu_vs_nongpu(test_profile())) {
    EXPECT_NEAR(r.gpu_ms + r.non_gpu_ms, r.layer_ms, 1e-9);
    EXPECT_GE(r.gpu_pct, 0);
    EXPECT_LE(r.gpu_pct, 100.0 + 1e-9);
  }
}

TEST(A14, LayerRooflineSkipsGpuFreeLayers) {
  const auto pts = a14_layer_roofline(test_profile(), sim::tesla_v100());
  EXPECT_LE(pts.size(), test_profile().layers.size());
  for (const auto& p : pts) EXPECT_GE(p.arithmetic_intensity, 0);
}

// --------------------------------------------------------------- A15 ----

TEST(A15, ModelAggregateConsistent) {
  const auto agg = a15_model_aggregate(test_profile(), sim::tesla_v100());
  EXPECT_EQ(agg.batch, 8);
  EXPECT_NEAR(agg.model_latency_ms, to_ms(test_profile().model_latency), 1e-9);
  EXPECT_LE(agg.kernel_latency_ms, agg.model_latency_ms);
  EXPECT_NEAR(agg.gflops, test_profile().total_flops() / 1e9, 1e-6);
  EXPECT_GT(agg.occupancy_pct, 0);
}

// ------------------------------------------------------------ derived ----

TEST(Derived, ConvPercentageBetweenZeroAndHundred) {
  const double pct = conv_latency_percentage(test_profile());
  EXPECT_GT(pct, 0);
  EXPECT_LT(pct, 100);
}

TEST(Derived, GpuLatencyPercentage) {
  const double pct = gpu_latency_percentage(test_profile());
  EXPECT_GT(pct, 30);
  EXPECT_LE(pct, 100);
}

TEST(Derived, StageAnalysisProducesValidStages) {
  const auto s = stage_analysis(test_profile());
  for (auto stage : {s.latency, s.alloc, s.flops, s.memory_access}) {
    EXPECT_GE(static_cast<int>(stage), 0);
    EXPECT_LE(static_cast<int>(stage), 2);
  }
  EXPECT_STREQ(stage_name(Stage::kBeginning), "B");
  EXPECT_STREQ(stage_name(Stage::kMiddle), "M");
  EXPECT_STREQ(stage_name(Stage::kEnd), "E");
}

}  // namespace
}  // namespace xsp::analysis
