#include "xsp/analysis/compare.hpp"

#include <gtest/gtest.h>

#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"

namespace xsp::analysis {
namespace {

using profile::LeveledRunner;

const profile::ModelProfile& tf_profile() {
  static const profile::ModelProfile p = [] {
    LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    return runner.run_model(*models::find_tensorflow_model("MobileNet_v1_0.5_128"), 128).profile;
  }();
  return p;
}

const profile::ModelProfile& mx_profile() {
  static const profile::ModelProfile p = [] {
    LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kMXLite);
    return runner.run_model(*models::find_tensorflow_model("MobileNet_v1_0.5_128"), 128).profile;
  }();
  return p;
}

TEST(Compare, LabelsIdentifyConfigurations) {
  const auto cmp =
      compare_profiles(tf_profile(), sim::tesla_v100(), mx_profile(), sim::tesla_v100());
  EXPECT_NE(cmp.label_a.find("TFlow"), std::string::npos);
  EXPECT_NE(cmp.label_b.find("MXLite"), std::string::npos);
  EXPECT_NE(cmp.label_a.find("Tesla_V100"), std::string::npos);
}

TEST(Compare, CoversThePaperComparedQuantities) {
  const auto cmp =
      compare_profiles(tf_profile(), sim::tesla_v100(), mx_profile(), sim::tesla_v100());
  for (const char* q : {"model_latency_ms", "throughput_per_s", "gpu_latency_pct",
                        "non_gpu_latency_ms", "conv_latency_pct", "gflops", "dram_read_mb",
                        "dram_write_mb", "achieved_occupancy_pct", "arithmetic_intensity",
                        "memory_bound"}) {
    EXPECT_NE(cmp.find(q), nullptr) << q;
  }
  EXPECT_EQ(cmp.find("no_such_quantity"), nullptr);
}

TEST(Compare, RatiosConsistentWithValues) {
  const auto cmp =
      compare_profiles(tf_profile(), sim::tesla_v100(), mx_profile(), sim::tesla_v100());
  const auto* latency = cmp.find("model_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->a, 0);
  EXPECT_GT(latency->b, 0);
  EXPECT_NEAR(latency->ratio(), latency->b / latency->a, 1e-12);
}

TEST(Compare, MxnetWinsOnElementwiseLayerTypes) {
  // The paper's drill-down: the TF/MXNet MobileNet gap comes from the
  // element-wise (Eigen) layers. TF reports Mul/Add (decomposed BN); MXNet
  // reports fused BatchNorm — both should show TF paying more on its side.
  const auto rows = compare_layer_types(tf_profile(), mx_profile());
  double tf_elementwise = 0;
  double mx_elementwise = 0;
  for (const auto& r : rows) {
    if (r.quantity == "Mul" || r.quantity == "Add" || r.quantity == "Relu") {
      tf_elementwise += r.a;
      mx_elementwise += r.b;
    }
    if (r.quantity == "FusedBatchNorm") mx_elementwise += r.b;
  }
  EXPECT_GT(tf_elementwise, mx_elementwise);
}

TEST(Compare, SameProfileComparesAsUnity) {
  const auto cmp =
      compare_profiles(tf_profile(), sim::tesla_v100(), tf_profile(), sim::tesla_v100());
  for (const auto& r : cmp.rows) {
    if (r.a != 0) {
      EXPECT_NEAR(r.ratio(), 1.0, 1e-12) << r.quantity;
    }
  }
}

TEST(Compare, CrossSystemComparisonUsesEachRoofline) {
  // Same model+framework on two systems: boundness may differ because the
  // roofline knee differs (17.44 vs 30.0 flops/byte).
  LeveledRunner v100(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  LeveledRunner m60(sim::tesla_m60(), framework::FrameworkKind::kTFlow);
  const auto* model = models::find_tensorflow_model("ResNet_v1_50");
  const auto a = v100.run_model(*model, 64).profile;
  const auto b = m60.run_model(*model, 64).profile;
  const auto cmp = compare_profiles(a, sim::tesla_v100(), b, sim::tesla_m60());
  const auto* latency = cmp.find("model_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_LT(latency->a, latency->b);  // V100 faster
  const auto* bound = cmp.find("memory_bound");
  ASSERT_NE(bound, nullptr);
  // ResNet-50 at batch 64: compute-bound nowhere near M60's 30 flops/byte
  // knee -> memory-bound there, while V100's 17.44 knee is reachable.
  EXPECT_EQ(bound->b, 1.0);
}

}  // namespace
}  // namespace xsp::analysis
