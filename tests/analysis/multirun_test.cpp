#include "xsp/analysis/multirun.hpp"

#include <gtest/gtest.h>

#include "xsp/analysis/analyses.hpp"
#include "xsp/models/builder.hpp"

namespace xsp::analysis {
namespace {

using profile::LeveledRunner;

framework::Graph tiny(std::int64_t batch = 4) {
  models::GraphBuilder b("tiny", batch, true);
  b.input(3, 32, 32);
  b.conv(16, 3, 1).batch_norm().relu();
  b.global_avg_pool().fc(10).softmax();
  return std::move(b).build();
}

TEST(MultiRun, AggregatesAcrossJitteredRuns) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto agg = profile_n_runs(runner, tiny(), 8, 0.05);
  EXPECT_EQ(agg.runs, 8u);
  EXPECT_EQ(agg.model_latency_ms.count, 8u);
  EXPECT_GT(agg.model_latency_ms.stddev, 0);  // jitter produced spread
  EXPECT_GE(agg.model_latency_ms.trimmed_mean, agg.model_latency_ms.min);
  EXPECT_LE(agg.model_latency_ms.trimmed_mean, agg.model_latency_ms.max);
}

TEST(MultiRun, PerLayerAndKernelStatsAligned) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto agg = profile_n_runs(runner, tiny(), 5, 0.05);
  EXPECT_EQ(agg.layers.size(), tiny().layers.size());
  EXPECT_FALSE(agg.kernels.empty());
  for (const auto& l : agg.layers) {
    EXPECT_EQ(l.latency_ms.count, 5u);
    EXPECT_LE(l.kernel_latency_ms.trimmed_mean, l.latency_ms.trimmed_mean + 1e-9) << l.name;
  }
  for (const auto& k : agg.kernels) {
    EXPECT_GE(k.layer_index, 0) << k.name;
    EXPECT_GT(k.latency_ms.trimmed_mean, 0) << k.name;
  }
}

TEST(MultiRun, RepresentativeCarriesTrimmedMeans) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto agg = profile_n_runs(runner, tiny(), 6, 0.05);
  EXPECT_NEAR(to_ms(agg.representative.model_latency), agg.model_latency_ms.trimmed_mean,
              1e-6);
  for (std::size_t i = 0; i < agg.layers.size(); ++i) {
    EXPECT_NEAR(to_ms(agg.representative.layers[i].latency),
                agg.layers[i].latency_ms.trimmed_mean, 1e-6);
  }
  // The downstream analyses run directly on the representative profile.
  const auto rows = a2_layer_info(agg.representative);
  EXPECT_EQ(rows.size(), agg.layers.size());
}

TEST(MultiRun, TrimmedMeanShrugsOffOutlierRun) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  std::vector<profile::ModelProfile> profiles;
  for (int i = 0; i < 9; ++i) {
    profiles.push_back(runner.run(tiny(), true, 0.01, static_cast<std::uint64_t>(i) + 1).profile);
  }
  // Fabricate one pathological run (e.g. the machine hiccupped).
  auto outlier = profiles.front();
  outlier.model_latency *= 50;
  profiles.push_back(outlier);

  const auto agg = aggregate_runs(profiles);
  EXPECT_LT(agg.model_latency_ms.trimmed_mean, agg.model_latency_ms.mean);
  EXPECT_LT(agg.model_latency_ms.trimmed_mean, to_ms(profiles.front().model_latency) * 1.2);
}

TEST(MultiRun, RejectsEmptyAndMismatchedInputs) {
  EXPECT_THROW(aggregate_runs({}), std::invalid_argument);

  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  std::vector<profile::ModelProfile> mixed;
  mixed.push_back(runner.run(tiny(2)).profile);
  models::GraphBuilder b("other", 2, true);
  b.input(3, 32, 32);
  b.conv(8, 3, 1).relu();
  b.global_avg_pool().fc(10).softmax();
  mixed.push_back(runner.run(std::move(b).build()).profile);
  EXPECT_THROW(aggregate_runs(mixed), std::invalid_argument);
}

TEST(MultiRun, ZeroJitterGivesZeroSpread) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto agg = profile_n_runs(runner, tiny(), 4, 0.0);
  EXPECT_DOUBLE_EQ(agg.model_latency_ms.stddev, 0.0);
  EXPECT_DOUBLE_EQ(agg.model_latency_ms.min, agg.model_latency_ms.max);
}

}  // namespace
}  // namespace xsp::analysis
