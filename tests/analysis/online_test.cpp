// OnlineAnalyzer: the online-vs-offline equivalence suite.
//
// The subsystem's core claim is that the streaming aggregates are
// *provably equivalent* — exact counts, exact integer-ns totals, the same
// interned StrId keys — to offline A6/A7/A10-style aggregation computed
// over the identical batch stream, including under concurrent sharded
// drains, while steady-state aggregation performs zero heap allocations.
// Only percentiles are approximate, with the histogram's documented
// bucket bound.
#include "xsp/analysis/online.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "../trace/json_check.hpp"
#include "xsp/models/builder.hpp"
#include "xsp/profile/model_profile.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/profile/span_keys.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

// GCC pairs the malloc-backed replacement operator new below with the
// inlined operator delete and misreports a mismatch; both halves are ours
// and consistently use malloc/free.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Binary-wide allocation counter (one definition per test binary — the
// trace suite has its own): the steady-state zero-allocation acceptance
// check reads it around observe() calls.
static std::atomic<std::uint64_t> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace xsp::analysis {
namespace {

using profile::span_keys;
using trace::Span;
using trace::SpanBatch;
using trace::SpanBatches;
using trace::SpanKind;

// --- span builders using the production annotation keys --------------------

Span layer_span(trace::SpanId id, TimePoint begin, Ns dur, StrId type, double alloc_bytes) {
  Span s;
  s.id = id;
  s.level = trace::kLayerLevel;
  s.kind = SpanKind::kRegular;
  s.name = "layer";
  s.tracer = "framework_profiler";
  s.begin = begin;
  s.end = begin + dur;
  s.tags.set(span_keys().layer_type, type);
  s.metrics.set(span_keys().alloc_bytes, alloc_bytes);
  return s;
}

Span kernel_span(trace::SpanId id, TimePoint begin, Ns dur, StrId name, double reads,
                 double writes) {
  Span s;
  s.id = id;
  s.level = trace::kKernelLevel;
  s.kind = SpanKind::kExecution;
  s.name = name;
  s.tracer = "cupti";
  s.begin = begin;
  s.end = begin + dur;
  s.tags.set(span_keys().kind, span_keys().kind_kernel);
  s.metrics.set(span_keys().dram_read_bytes, reads);
  s.metrics.set(span_keys().dram_write_bytes, writes);
  return s;
}

Span memcpy_span(trace::SpanId id, TimePoint begin, Ns dur) {
  Span s;
  s.id = id;
  s.level = trace::kKernelLevel;
  s.kind = SpanKind::kExecution;
  s.name = "memcpy_HtoD";
  s.tracer = "cupti";
  s.begin = begin;
  s.end = begin + dur;
  s.tags.set(span_keys().kind, span_keys().kind_memcpy);
  return s;
}

/// Offline reference aggregation over a span stream — the A6/A7/A10-style
/// grouping the analyzer must match key for key, written as the obvious
/// direct loop so the test is its own specification.
struct OfflineRef {
  struct Agg {
    std::uint64_t count = 0;
    Ns total_ns = 0;
    Ns min_ns = std::numeric_limits<Ns>::max();
    Ns max_ns = 0;
    double bytes = 0;
  };
  std::map<std::uint32_t, Agg> layer_types;  // keyed by raw StrId
  std::map<std::uint32_t, Agg> kernels;
  std::uint64_t spans = 0, layer_spans = 0, kernel_spans = 0, memcpy_spans = 0;
  Ns layer_total = 0, kernel_total = 0;

  void add(const Span& s) {
    ++spans;
    const Ns dur = s.duration() > 0 ? s.duration() : 0;
    if (s.level == trace::kLayerLevel && s.kind == SpanKind::kRegular) {
      ++layer_spans;
      layer_total += dur;
      StrId type = s.tag_or(span_keys().layer_type);
      if (type.empty()) type = s.name;
      auto& agg = layer_types[type.raw()];
      ++agg.count;
      agg.total_ns += dur;
      agg.min_ns = std::min(agg.min_ns, dur);
      agg.max_ns = std::max(agg.max_ns, dur);
      agg.bytes += s.metric_or(span_keys().alloc_bytes, 0);
    } else if (s.level == trace::kKernelLevel && s.kind == SpanKind::kExecution) {
      if (s.tag_or(span_keys().kind) == span_keys().kind_memcpy) {
        ++memcpy_spans;
      } else {
        ++kernel_spans;
        kernel_total += dur;
        auto& agg = kernels[s.name.raw()];
        ++agg.count;
        agg.total_ns += dur;
        agg.min_ns = std::min(agg.min_ns, dur);
        agg.max_ns = std::max(agg.max_ns, dur);
        agg.bytes += s.metric_or(span_keys().dram_read_bytes, 0) +
                     s.metric_or(span_keys().dram_write_bytes, 0);
      }
    }
  }

  void add(const SpanBatches& batches) {
    for (const auto& batch : batches) {
      for (const Span& s : batch) add(s);
    }
  }
};

void expect_rows_equal(const std::vector<OnlineAggregate>& online,
                       const std::map<std::uint32_t, OfflineRef::Agg>& offline,
                       const char* what) {
  ASSERT_EQ(online.size(), offline.size()) << what;
  for (const OnlineAggregate& row : online) {
    const auto it = offline.find(row.key.raw());
    ASSERT_NE(it, offline.end()) << what << ": unexpected key " << row.key;
    EXPECT_EQ(row.count, it->second.count) << what << " key " << row.key;
    EXPECT_EQ(row.total_ns, it->second.total_ns) << what << " key " << row.key;
    EXPECT_EQ(row.min_ns, it->second.min_ns) << what << " key " << row.key;
    EXPECT_EQ(row.max_ns, it->second.max_ns) << what << " key " << row.key;
    EXPECT_DOUBLE_EQ(row.bytes, it->second.bytes) << what << " key " << row.key;
  }
}

// --- exact equivalence over a synthetic batch stream ------------------------

SpanBatches synthetic_stream(std::size_t spans) {
  SpanBatches batches;
  SpanBatch batch;
  trace::SpanId id = 1;
  for (std::size_t i = 0; i < spans; ++i) {
    const auto t = static_cast<TimePoint>(i * 1000);
    switch (i % 5) {
      case 0:
        batch.push_back(layer_span(id++, t, 900 + static_cast<Ns>(i % 13) * 10,
                                   i % 2 == 0 ? "Conv2D" : "Relu", 1e6 + double(i)));
        break;
      case 1:
        batch.push_back(layer_span(id++, t, 500, "Add", 2e6));
        break;
      case 2:
        batch.push_back(kernel_span(id++, t, 700 + static_cast<Ns>(i % 7) * 11,
                                    i % 3 == 0 ? "volta_sgemm" : "eigen_kernel", 1e5 + double(i),
                                    5e4));
        break;
      case 3:
        batch.push_back(memcpy_span(id++, t, 300));
        break;
      default: {
        // Unclassified span (model level): counts toward totals only.
        Span s;
        s.id = id++;
        s.level = trace::kModelLevel;
        s.name = "Model Prediction";
        s.begin = t;
        s.end = t + 50;
        batch.push_back(s);
      }
    }
    if (batch.size() == 100) {
      batches.push_back(std::move(batch));
      batch = SpanBatch();
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

TEST(OnlineEquivalence, ExactlyMatchesOfflineAggregationOverTheSameBatches) {
  const SpanBatches batches = synthetic_stream(5003);
  OfflineRef ref;
  ref.add(batches);

  OnlineAnalyzer analyzer;
  analyzer.observe(batches);
  const OnlineSnapshot snap = analyzer.snapshot();

  EXPECT_EQ(snap.spans, ref.spans);
  EXPECT_EQ(snap.layer_spans, ref.layer_spans);
  EXPECT_EQ(snap.kernel_spans, ref.kernel_spans);
  EXPECT_EQ(snap.memcpy_spans, ref.memcpy_spans);
  EXPECT_EQ(snap.layer_total_ns, ref.layer_total);
  EXPECT_EQ(snap.kernel_total_ns, ref.kernel_total);
  expect_rows_equal(snap.layer_types, ref.layer_types, "layer_types");
  expect_rows_equal(snap.kernels, ref.kernels, "kernels");
}

TEST(OnlineEquivalence, SplitDeliveryEqualsSingleDelivery) {
  // Aggregation must be associative over delivery granularity: one
  // observe() of N batches == N observe() calls of one batch each.
  const SpanBatches batches = synthetic_stream(2000);
  OnlineAnalyzer whole;
  whole.observe(batches);
  OnlineAnalyzer split;
  for (const auto& batch : batches) {
    SpanBatches one;
    one.push_back(batch);
    split.observe(one);
  }
  const auto a = whole.snapshot();
  const auto b = split.snapshot();
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.layer_total_ns, b.layer_total_ns);
  EXPECT_EQ(a.kernel_total_ns, b.kernel_total_ns);
  ASSERT_EQ(a.kernels.size(), b.kernels.size());
  for (std::size_t i = 0; i < a.kernels.size(); ++i) {
    EXPECT_EQ(a.kernels[i].key, b.kernels[i].key);
    EXPECT_EQ(a.kernels[i].count, b.kernels[i].count);
    EXPECT_EQ(a.kernels[i].total_ns, b.kernels[i].total_ns);
  }
  EXPECT_EQ(a.layer_p50, b.layer_p50);
  EXPECT_EQ(a.kernel_p99, b.kernel_p99);
}

// --- equivalence under the 4-thread sharded stress harness ------------------

TEST(OnlineEquivalence, ShardedFourThreadStressMatchesOfflineAggregation) {
  // 4 publisher threads into a 4-shard async fleet; the analyzer is the
  // stream's only consumer (kConsume — the bounded-memory service shape)
  // while a kObserve collector captures the identical stream for the
  // offline reference. Whatever the interleaving, the aggregates must
  // match the reference exactly.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 5000;
  trace::ShardedTraceServer server(4, trace::PublishMode::kAsync);

  OnlineAnalyzerOptions opts;
  opts.shard_count = server.shard_count();
  OnlineAnalyzer analyzer(opts);
  server.add_drain_subscriber(analyzer.shard_subscriber(), trace::DrainHandoff::kConsume);

  std::mutex collected_mu;
  std::vector<Span> collected;
  server.add_drain_subscriber(
      [&](const SpanBatches& batches) {
        std::lock_guard lk(collected_mu);
        for (const auto& b : batches) collected.insert(collected.end(), b.begin(), b.end());
      },
      trace::DrainHandoff::kObserve);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const auto time = static_cast<TimePoint>(t * 1'000'000 + i * 100);
        const trace::SpanId id = server.next_span_id();
        // Deterministic per-thread mix; metric values are integral so
        // double sums are order-independent and compare exactly.
        if (i % 3 == 0) {
          server.publish(layer_span(id, time, 800 + static_cast<Ns>((t + i) % 9) * 25,
                                    i % 2 == 0 ? "Conv2D" : "Softmax",
                                    double(1000 * t + i % 50)));
        } else if (i % 3 == 1) {
          server.publish(kernel_span(id, time, 400 + static_cast<Ns>((t + i) % 5) * 17,
                                     t % 2 == 0 ? "volta_sgemm" : "implicit_gemm",
                                     double(100 * (i % 11)), double(10 * (i % 7))));
        } else {
          server.publish(memcpy_span(id, time, 200));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  server.flush();

  // The consumer kept the fleet empty the whole time.
  EXPECT_TRUE(server.take_batches().empty());

  OfflineRef ref;
  {
    std::lock_guard lk(collected_mu);
    ASSERT_EQ(collected.size(), kThreads * kPerThread);
    for (const Span& s : collected) ref.add(s);
  }

  const OnlineSnapshot snap = analyzer.snapshot();
  EXPECT_EQ(snap.spans, ref.spans);
  EXPECT_EQ(snap.layer_spans, ref.layer_spans);
  EXPECT_EQ(snap.kernel_spans, ref.kernel_spans);
  EXPECT_EQ(snap.memcpy_spans, ref.memcpy_spans);
  EXPECT_EQ(snap.layer_total_ns, ref.layer_total);
  EXPECT_EQ(snap.kernel_total_ns, ref.kernel_total);
  expect_rows_equal(snap.layer_types, ref.layer_types, "layer_types");
  expect_rows_equal(snap.kernels, ref.kernels, "kernels");

  // The analyzer's per-shard counters agree with the server's own drained
  // load telemetry, shard for shard.
  EXPECT_EQ(snap.shard_spans, server.shard_loads());
  std::uint64_t load_total = 0;
  for (const auto load : snap.shard_spans) load_total += load;
  EXPECT_EQ(load_total, kThreads * kPerThread);
}

// --- equivalence against the real profiling pipeline ------------------------

framework::Graph test_graph(std::int64_t batch = 4) {
  models::GraphBuilder b("online_test_model", batch, true);
  b.input(3, 32, 32);
  b.conv(16, 3, 1).batch_norm().relu();
  b.conv(32, 3, 2).relu();
  b.global_avg_pool().fc(10).softmax();
  return std::move(b).build();
}

TEST(OnlineEquivalence, SessionLayerRunMatchesTimelineDerivedA6A7Aggregation) {
  profile::Session session(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = profile::ProfileOptions::model_layer();
  opts.live_stats = true;
  const auto run = session.profile(test_graph(), opts);
  const OnlineSnapshot snap = session.live_snapshot();

  // M/L publishes no async pairs: raw stream == assembled timeline.
  EXPECT_EQ(snap.spans, run.timeline.size());

  // Offline reference: the same grouping A6/A7 perform, computed from the
  // assembled timeline's layer spans (integer-exact, same StrId keys).
  OfflineRef ref;
  run.timeline.walk([&ref](const trace::TimelineNode& node, int) { ref.add(node.span); });
  EXPECT_EQ(snap.layer_spans, ref.layer_spans);
  EXPECT_EQ(snap.layer_total_ns, ref.layer_total);
  expect_rows_equal(snap.layer_types, ref.layer_types, "layer_types");
}

TEST(OnlineEquivalence, SessionGpuRunMatchesModelProfileA10Aggregation) {
  // Leveled runs, by hand, with live stats on the M/L/G session: the
  // merged ModelProfile's kernels come from exactly the span stream that
  // session's analyzer observed, so the online kernel table must equal
  // the offline A10 grouping of profile.kernels — same keys, same counts,
  // same integer-ns totals, same byte sums.
  profile::Session sm(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  profile::Session sml(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  profile::Session smlg(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto m = sm.profile(test_graph(), profile::ProfileOptions::model_only());
  const auto ml = sml.profile(test_graph(), profile::ProfileOptions::model_layer());
  auto gopts = profile::ProfileOptions::full(/*metrics=*/true);
  gopts.live_stats = true;
  const auto mlg = smlg.profile(test_graph(), gopts);
  const auto profile =
      profile::merge_runs(m, ml, mlg, "online_test_model", "Tesla_V100", "tensorflow", 4);
  const OnlineSnapshot snap = smlg.live_snapshot();

  struct Agg {
    std::uint64_t count = 0;
    Ns total_ns = 0;
    double bytes = 0;
  };
  std::map<std::uint32_t, Agg> offline;  // A10: kernels grouped by name
  std::uint64_t memcpys = 0;
  for (const auto& k : profile.kernels) {
    if (k.is_memcpy) {
      ++memcpys;
      continue;
    }
    auto& agg = offline[k.name.raw()];
    ++agg.count;
    agg.total_ns += k.latency;
    agg.bytes += k.dram_read_bytes + k.dram_write_bytes;
  }
  ASSERT_FALSE(offline.empty());
  EXPECT_EQ(snap.memcpy_spans, memcpys);
  EXPECT_EQ(snap.kernel_total_ns, profile.total_kernel_latency());
  ASSERT_EQ(snap.kernels.size(), offline.size());
  for (const OnlineAggregate& row : snap.kernels) {
    const auto it = offline.find(row.key.raw());
    ASSERT_NE(it, offline.end()) << "unexpected kernel " << row.key;
    EXPECT_EQ(row.count, it->second.count) << row.key;
    EXPECT_EQ(row.total_ns, it->second.total_ns) << row.key;
    EXPECT_DOUBLE_EQ(row.bytes, it->second.bytes) << row.key;
  }
  // Streaming A13 consistency: cumulative gpu_pct derives from the two
  // exact totals.
  if (snap.layer_total_ns > 0) {
    EXPECT_DOUBLE_EQ(snap.gpu_pct, 100.0 * double(snap.kernel_total_ns) /
                                       double(snap.layer_total_ns));
  }
}

// --- acceptance: zero steady-state allocation -------------------------------

TEST(OnlineAnalyzerMemory, SteadyStateObserveIsAllocationFree) {
  const SpanBatches batches = synthetic_stream(2000);
  OnlineAnalyzer analyzer;
  // Warm-up: key set saturates, tables/histograms reach steady state.
  for (int i = 0; i < 3; ++i) analyzer.observe(batches);

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) analyzer.observe(batches);
  const std::uint64_t during = g_alloc_count.load(std::memory_order_relaxed) - before;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  (void)during;  // sanitizer runtimes allocate on their own
#else
  EXPECT_EQ(during, 0u) << "steady-state observe() allocated";
#endif
  // The aggregates kept advancing while allocation-free.
  EXPECT_EQ(analyzer.snapshot().spans, 11u * 2000u);
}

// --- histogram --------------------------------------------------------------

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (Ns v = 0; v < 8; ++v) h.record(v);  // one of each of 0..7
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.percentile(0), 0);
  EXPECT_EQ(h.percentile(100), 7);
  EXPECT_EQ(h.percentile(50), 3);  // 4th of 8 values
}

TEST(LatencyHistogramTest, PercentileErrorIsWithinBucketBound) {
  LatencyHistogram h;
  std::vector<Ns> values;
  std::uint64_t seed = 42;
  for (int i = 0; i < 10000; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    const Ns v = static_cast<Ns>(seed % 10'000'000);  // 0..10ms
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 95.0, 99.0}) {
    const Ns exact = values[static_cast<std::size_t>(p / 100.0 * (values.size() - 1))];
    const Ns estimate = h.percentile(p);
    EXPECT_GE(estimate, exact - exact / 8 - 1) << "p" << p;
    EXPECT_LE(estimate, exact + exact / 8 + 1) << "p" << p;
  }
}

TEST(LatencyHistogramTest, HugeDurationsDoNotOverflowTheBucketRange) {
  LatencyHistogram h;
  h.record(std::numeric_limits<Ns>::max());
  h.record(-5);  // clamps to 0
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile(100), std::numeric_limits<Ns>::max() / 2);
  EXPECT_EQ(h.percentile(0), 0);
}

// --- sliding window ---------------------------------------------------------

TEST(OnlineWindow, OldSpansAgeOutOfTheWindowStats) {
  OnlineAnalyzerOptions opts;
  opts.window = 1000;  // 1 µs window
  OnlineAnalyzer analyzer(opts);

  // Burst at t≈0, then a lone span much later: only the recent span may
  // appear in the window.
  SpanBatches early;
  early.push_back({});
  for (int i = 0; i < 100; ++i) {
    early.back().push_back(kernel_span(static_cast<trace::SpanId>(i + 1),
                                       static_cast<TimePoint>(i), 10, "k", 0, 0));
  }
  analyzer.observe(early);
  const auto mid = analyzer.snapshot();
  EXPECT_GT(mid.window_spans_per_sec, 0);

  SpanBatches late;
  late.push_back({kernel_span(1000, 1'000'000, 10, "k", 0, 0)});
  analyzer.observe(late);
  const auto snap = analyzer.snapshot();
  // 1 span in a 1 µs window = 1e6 spans/s of simulated time.
  EXPECT_DOUBLE_EQ(snap.window_spans_per_sec, 1e6);
  // Cumulative aggregates are unaffected by aging.
  EXPECT_EQ(snap.spans, 101u);
  EXPECT_EQ(snap.kernels.front().count, 101u);
}

// --- snapshot helpers -------------------------------------------------------

TEST(OnlineSnapshotTest, ShardImbalanceFlagsHotShards) {
  EXPECT_DOUBLE_EQ(shard_imbalance({}), 0);
  EXPECT_DOUBLE_EQ(shard_imbalance({0, 0}), 0);
  EXPECT_DOUBLE_EQ(shard_imbalance({100, 100, 100, 100}), 1.0);
  EXPECT_DOUBLE_EQ(shard_imbalance({400, 0, 0, 0}), 4.0);
}

TEST(OnlineSnapshotTest, SummaryJsonIsValidAndEscaped) {
  OnlineAnalyzer analyzer;
  SpanBatches batches;
  batches.push_back(
      {kernel_span(1, 0, 500, "Eigen::Tensor<\"quoted\\name\">", 1e5, 5e4),
       layer_span(2, 1000, 900, "Conv2D", 2e6), memcpy_span(3, 2000, 100)});
  analyzer.observe(batches);
  const std::string json = online_summary_json(analyzer.snapshot());
  std::string error;
  EXPECT_TRUE(trace::testjson::valid_json(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"spans\":3"), std::string::npos);
  EXPECT_NE(json.find("\"kernels\":["), std::string::npos);
  EXPECT_NE(json.find("shard_imbalance"), std::string::npos);
}

TEST(OnlineSnapshotTest, ResetForgetsEverything) {
  OnlineAnalyzer analyzer;
  analyzer.observe(synthetic_stream(500));
  ASSERT_GT(analyzer.snapshot().spans, 0u);
  analyzer.reset();
  const auto snap = analyzer.snapshot();
  EXPECT_EQ(snap.spans, 0u);
  EXPECT_TRUE(snap.kernels.empty());
  EXPECT_TRUE(snap.layer_types.empty());
  EXPECT_EQ(snap.layer_p99, 0);
  EXPECT_DOUBLE_EQ(snap.window_spans_per_sec, 0);
}

}  // namespace
}  // namespace xsp::analysis
