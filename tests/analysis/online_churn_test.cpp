// Thread churn under a live kConsume OnlineAnalyzer: producer threads
// exit mid-drain while the analyzer is the stream's consumer, so slot
// retirement (the final sweep of an exiting thread's slot) and live
// aggregation race on every drain pass. The analyzer's totals must still
// account for every published span exactly once, and the fleet must not
// accrete dead slots — the long-lived-serving shape the producer-slot
// lifecycle work exists for.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "xsp/analysis/online.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

namespace xsp::analysis {
namespace {

using trace::DrainHandoff;
using trace::PublishMode;
using trace::ShardedTraceServer;
using trace::ShardPolicy;
using trace::Span;
using trace::TraceServer;

Span make_kernel_span(trace::SpanSink& sink, TimePoint t) {
  Span s;
  s.id = sink.next_span_id();
  s.level = trace::kKernelLevel;
  s.kind = trace::SpanKind::kExecution;
  s.name = "churn_kernel";
  s.begin = t;
  s.end = t + 10;
  return s;
}

TEST(OnlineChurn, ConsumerAnalyzerCountsEverySpanAcrossThreadChurn) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kThreads = 800;
  constexpr std::size_t kWave = 16;
  constexpr std::size_t kSpansPerThread = 32;

  ShardedTraceServer server(kShards, PublishMode::kAsync, ShardPolicy::kByThread);
  OnlineAnalyzerOptions opts;
  opts.shard_count = kShards;
  OnlineAnalyzer analyzer(opts);
  const auto id =
      server.add_drain_subscriber(analyzer.shard_subscriber(), DrainHandoff::kConsume);

  std::size_t launched = 0;
  while (launched < kThreads) {
    const std::size_t n = std::min(kWave, kThreads - launched);
    std::vector<std::thread> wave;
    wave.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      wave.emplace_back([&server] {
        for (std::size_t k = 0; k < kSpansPerThread; ++k) {
          server.publish(make_kernel_span(server, static_cast<TimePoint>(k * 20)));
        }
      });
    }
    // Threads exit while the shard collectors are mid-drain into the
    // consumer; retirement and delivery interleave freely here.
    for (auto& t : wave) t.join();
    launched += n;
  }
  server.flush();

  const OnlineSnapshot snap = analyzer.snapshot();
  EXPECT_EQ(snap.spans, kThreads * kSpansPerThread);
  EXPECT_EQ(snap.kernel_spans, kThreads * kSpansPerThread);
  // The consumer kept the fleet empty; churned slots were all retired.
  EXPECT_EQ(server.span_count(), 0u);
  EXPECT_EQ(server.live_slot_count(), 0u);
  EXPECT_EQ(server.retired_slot_count(), kThreads);
  // Per-shard load telemetry saw the same spans the analyzer did.
  std::uint64_t load_total = 0;
  for (const std::uint64_t load : server.shard_loads()) load_total += load;
  EXPECT_EQ(load_total, kThreads * kSpansPerThread);

  server.remove_drain_subscriber(id);
}

}  // namespace
}  // namespace xsp::analysis
