#include "xsp/analysis/batch_sweep.hpp"

#include <gtest/gtest.h>

namespace xsp::analysis {
namespace {

TEST(BatchSweep, GridIsPowersOfTwo) {
  const auto grid = batch_grid(256);
  EXPECT_EQ(grid, (std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64, 128, 256}));
  EXPECT_EQ(batch_grid(1).size(), 1u);
}

TEST(BatchSweep, LatencyGrowsWithBatch) {
  const auto* model = models::find_tensorflow_model("MobileNet_v1_0.25_128");
  ASSERT_NE(model, nullptr);
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto points = sweep_batches(runner, *model, {1, 4, 16});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].latency_ms, points[1].latency_ms);
  EXPECT_LT(points[1].latency_ms, points[2].latency_ms);
  // Throughput improves with batching for a tiny classification model.
  EXPECT_GT(points[2].throughput(), points[0].throughput());
}

TEST(BatchSweep, ModelInformationEndToEnd) {
  const auto* model = models::find_tensorflow_model("MobileNet_v1_0.25_128");
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto info = model_information(runner, *model, 64);
  EXPECT_EQ(info.points.size(), 7u);
  EXPECT_GE(info.optimal_batch, 1);
  EXPECT_LE(info.optimal_batch, 64);
  EXPECT_GT(info.max_throughput, 0);
  EXPECT_GT(info.online_latency_ms, 0);
}

}  // namespace
}  // namespace xsp::analysis
