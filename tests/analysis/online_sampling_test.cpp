// OnlineAnalyzer sampling-awareness suite.
//
// Three claims from the sampling layer land here:
//   1. Horvitz-Thompson rescaling: feeding the analyzer only the spans a
//      Sampler admits, with set_sampler() attached, yields est_count /
//      est_total_ns / est_spans within a few percent of an oracle
//      analyzer that saw every span — and degenerates to est == exact
//      when no sampler is attached.
//   2. SpaceSaving top-k: with max_kernel_rows set, true heavy hitters
//      are guaranteed present, the row count never exceeds the cap, and
//      every surviving row's true count lies in
//      [count - count_error, count].
//   3. Edge-triggered alerts: one callback per threshold excursion, with
//      re-arm on recovery and an unregistration path.
#include "xsp/analysis/online.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xsp/profile/span_keys.hpp"
#include "xsp/trace/sampler.hpp"
#include "xsp/trace/span.hpp"

namespace xsp::analysis {
namespace {

using profile::span_keys;
using trace::Sampler;
using trace::SamplerOptions;
using trace::Span;
using trace::SpanBatch;
using trace::SpanBatches;
using trace::SpanKind;

Span kernel_span(std::uint64_t id, TimePoint begin, Ns dur, StrId name) {
  Span s;
  s.id = id;
  s.level = trace::kKernelLevel;
  s.kind = SpanKind::kExecution;  // what the analyzer classifies as a kernel
  s.name = name;
  s.tracer = "cupti";
  s.begin = begin;
  s.end = begin + dur;
  s.correlation_id = id;  // one request per span: iid head-sampling draws
  s.tags.set(span_keys().kind, span_keys().kind_kernel);
  return s;
}

void feed(OnlineAnalyzer& analyzer, SpanBatch batch) {
  SpanBatches batches;
  batches.push_back(std::move(batch));
  analyzer.observe(batches);
}

TEST(OnlineSampling, EstimatesEqualExactValuesWithoutASampler) {
  OnlineAnalyzer analyzer;
  SpanBatch batch;
  for (std::uint64_t i = 1; i <= 500; ++i) {
    batch.push_back(kernel_span(i, i * 100, 90, "gemm"));
  }
  feed(analyzer, std::move(batch));

  const OnlineSnapshot snap = analyzer.snapshot();
  EXPECT_DOUBLE_EQ(snap.est_spans, static_cast<double>(snap.spans));
  EXPECT_DOUBLE_EQ(snap.sampling_rate, 1.0);
  ASSERT_EQ(snap.kernels.size(), 1u);
  const OnlineAggregate& row = snap.kernels[0];
  EXPECT_DOUBLE_EQ(row.est_count, static_cast<double>(row.count));
  EXPECT_DOUBLE_EQ(row.est_total_ns, static_cast<double>(row.total_ns));
  EXPECT_EQ(row.count_error, 0u);
}

TEST(OnlineSampling, RescaledEstimatesTrackAnUnsampledOracle) {
  // The acceptance shape: one synthetic stream, two analyzers. The oracle
  // sees everything; the sampled analyzer sees only what a rate-0.25
  // sampler admits, plus the sampler itself for HT weighting. The seed is
  // fixed, so this is a deterministic check, not a flaky statistical one.
  SamplerOptions sopts;
  sopts.rate = 0.25;
  auto sampler = std::make_shared<const Sampler>(sopts);

  OnlineAnalyzer oracle;
  OnlineAnalyzer sampled;
  sampled.set_sampler(sampler);

  const StrId names[4] = {"gemm", "conv", "relu", "softmax"};
  constexpr std::uint64_t kSpans = 20000;
  SpanBatch all;
  SpanBatch admitted;
  for (std::uint64_t i = 1; i <= kSpans; ++i) {
    // Durations vary per key so est_total_ns is not just est_count * c.
    const Ns dur = 50 + (i % 7) * 10;
    const Span s = kernel_span(i, i * 1000, dur, names[i % 4]);
    all.push_back(s);
    if (sampler->admit(s)) admitted.push_back(s);
  }
  feed(oracle, std::move(all));
  feed(sampled, std::move(admitted));

  const OnlineSnapshot truth = oracle.snapshot();
  const OnlineSnapshot est = sampled.snapshot();
  EXPECT_DOUBLE_EQ(est.sampling_rate, 0.25);
  EXPECT_LT(est.spans, truth.spans);  // sampling actually thinned the stream
  EXPECT_NEAR(est.est_spans, static_cast<double>(truth.spans),
              0.05 * static_cast<double>(truth.spans));

  ASSERT_EQ(truth.kernels.size(), 4u);
  ASSERT_EQ(est.kernels.size(), 4u);
  std::map<std::uint32_t, const OnlineAggregate*> by_key;
  for (const auto& row : est.kernels) by_key[row.key.raw()] = &row;
  for (const auto& exact : truth.kernels) {
    ASSERT_TRUE(by_key.count(exact.key.raw()));
    const OnlineAggregate& row = *by_key[exact.key.raw()];
    // Per-key samples are ~5000 spans at rate 0.25: relative sigma of the
    // HT estimator is sqrt((1-r)/(r n)) ~ 2.5%, so 10% is a safe fixed
    // bound for the pinned seed.
    EXPECT_NEAR(row.est_count, static_cast<double>(exact.count),
                0.10 * static_cast<double>(exact.count))
        << "key " << exact.key.raw();
    EXPECT_NEAR(row.est_total_ns, static_cast<double>(exact.total_ns),
                0.10 * static_cast<double>(exact.total_ns))
        << "key " << exact.key.raw();
    // Exact fields stay what was observed — rescaling never rewrites them.
    EXPECT_LT(row.count, exact.count);
  }
}

TEST(OnlineSampling, ForceAdmittedTailsCarryWeightOne) {
  // A tail-kept span has inclusion probability 1; weighting it by 1/rate
  // would overcount. One long span among rejected shorts must contribute
  // exactly 1 to est_spans.
  SamplerOptions sopts;
  sopts.rate = 0.0;
  sopts.tail_keep_ns = 1000;
  auto sampler = std::make_shared<const Sampler>(sopts);

  OnlineAnalyzer analyzer;
  analyzer.set_sampler(sampler);
  SpanBatch admitted;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    const Span s = kernel_span(i, i * 10000, i == 50 ? 5000 : 100, "gemm");
    if (sampler->admit(s)) admitted.push_back(s);
  }
  ASSERT_EQ(admitted.size(), 1u);
  feed(analyzer, std::move(admitted));
  const OnlineSnapshot snap = analyzer.snapshot();
  EXPECT_EQ(snap.spans, 1u);
  EXPECT_DOUBLE_EQ(snap.est_spans, 1.0);
}

TEST(OnlineSampling, AccountingInjectionSurfacesInSnapshotAndJson) {
  OnlineAnalyzer analyzer;
  analyzer.set_sampling_accounting(750, 250);
  SpanBatch batch;
  batch.push_back(kernel_span(1, 0, 90, "gemm"));
  feed(analyzer, std::move(batch));

  const OnlineSnapshot snap = analyzer.snapshot();
  EXPECT_EQ(snap.sampled_kept, 750u);
  EXPECT_EQ(snap.sampled_dropped, 250u);

  const std::string json = online_summary_json(snap);
  EXPECT_NE(json.find("\"est_spans\":"), std::string::npos);
  EXPECT_NE(json.find("\"sampling_rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"sampled_kept\":750"), std::string::npos);
  EXPECT_NE(json.find("\"sampled_dropped\":250"), std::string::npos);
  EXPECT_NE(json.find("\"kernel_evictions\":"), std::string::npos);
  EXPECT_NE(json.find("\"est_count\":"), std::string::npos);
  EXPECT_NE(json.find("\"count_error\":"), std::string::npos);

  // reset() starts a fresh epoch for the injected counters too.
  analyzer.reset();
  EXPECT_EQ(analyzer.snapshot().sampled_kept, 0u);
  EXPECT_EQ(analyzer.snapshot().sampled_dropped, 0u);
}

// --- SpaceSaving top-k -----------------------------------------------------

TEST(OnlineSampling, BoundedKernelTableKeepsHeavyHittersWithinErrorBounds) {
  constexpr std::size_t kCap = 8;
  OnlineAnalyzerOptions opts;
  opts.max_kernel_rows = kCap;
  OnlineAnalyzer analyzer(opts);

  // Skewed stream: 4 heavy kernels dominate, 64 distinct rare kernels
  // churn through the remaining slots. True counts are tracked exactly.
  std::map<std::string, std::uint64_t> true_counts;
  SpanBatch batch;
  std::uint64_t id = 0;
  for (int round = 0; round < 200; ++round) {
    for (int h = 0; h < 4; ++h) {
      const std::string name = "heavy_" + std::to_string(h);
      batch.push_back(kernel_span(++id, id * 100, 90, StrId(name)));
      ++true_counts[name];
    }
    // One rare kernel per round, cycling over 64 names.
    const std::string rare = "rare_" + std::to_string(round % 64);
    batch.push_back(kernel_span(++id, id * 100, 90, StrId(rare)));
    ++true_counts[rare];
  }
  feed(analyzer, std::move(batch));

  const OnlineSnapshot snap = analyzer.snapshot();
  EXPECT_LE(snap.kernels.size(), kCap);
  EXPECT_EQ(snap.kernel_row_limit, kCap);
  EXPECT_GT(snap.kernel_evictions, 0u);

  std::map<std::string, const OnlineAggregate*> rows;
  for (const auto& row : snap.kernels) rows[std::string(row.key.view())] = &row;
  for (int h = 0; h < 4; ++h) {
    const std::string name = "heavy_" + std::to_string(h);
    // Heavy hitters (count 200 >> observed/cap = 125) must be present.
    ASSERT_TRUE(rows.count(name)) << name << " evicted from the top-k table";
    const OnlineAggregate& row = *rows[name];
    const std::uint64_t truth = true_counts[name];
    // SpaceSaving overestimates: truth in [count - count_error, count].
    EXPECT_GE(row.count, truth) << name;
    EXPECT_LE(row.count - row.count_error, truth) << name;
  }
  // The error bound holds for every surviving row, including takeovers.
  for (const auto& row : snap.kernels) {
    const std::uint64_t truth = true_counts[std::string(row.key.view())];
    EXPECT_GE(row.count, truth);
    EXPECT_LE(row.count - row.count_error, truth);
  }
}

TEST(OnlineSampling, UnboundedTableStaysExactAndEvictionFree) {
  OnlineAnalyzer analyzer;  // max_kernel_rows = 0
  SpanBatch batch;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    batch.push_back(kernel_span(i, i * 100, 90, StrId("k" + std::to_string(i % 50))));
  }
  feed(analyzer, std::move(batch));
  const OnlineSnapshot snap = analyzer.snapshot();
  EXPECT_EQ(snap.kernels.size(), 50u);
  EXPECT_EQ(snap.kernel_evictions, 0u);
  EXPECT_EQ(snap.kernel_row_limit, 0u);
  for (const auto& row : snap.kernels) {
    EXPECT_EQ(row.count, 6u);
    EXPECT_EQ(row.count_error, 0u);
  }
}

// --- edge-triggered alerts -------------------------------------------------

TEST(OnlineSampling, AlertsFireOncePerExcursionAndReArmOnRecovery) {
  OnlineAnalyzer analyzer;
  int fired = 0;
  double last_value = 0;
  AlertRule rule;
  rule.name = "span_flood";
  rule.value = [](const OnlineSnapshot& s) { return static_cast<double>(s.spans); };
  rule.threshold = 10.0;
  rule.fire_above = true;
  const AlertId id = analyzer.add_alert(
      rule, [&](const AlertRule& r, double v, const OnlineSnapshot&) {
        EXPECT_EQ(r.name, "span_flood");
        ++fired;
        last_value = v;
      });
  ASSERT_NE(id, 0u);

  // Below threshold: armed, silent.
  SpanBatch small;
  for (std::uint64_t i = 1; i <= 5; ++i) small.push_back(kernel_span(i, i * 100, 90, "gemm"));
  feed(analyzer, std::move(small));
  EXPECT_EQ(analyzer.poll_alerts(), 0u);
  EXPECT_EQ(fired, 0);

  // Crossing fires exactly once; staying high stays latched.
  SpanBatch more;
  for (std::uint64_t i = 6; i <= 20; ++i) more.push_back(kernel_span(i, i * 100, 90, "gemm"));
  feed(analyzer, std::move(more));
  EXPECT_EQ(analyzer.poll_alerts(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(last_value, 20.0);
  EXPECT_EQ(analyzer.poll_alerts(), 0u);
  EXPECT_EQ(fired, 1);

  // Recovery re-arms without firing; the next excursion fires again.
  analyzer.reset();
  EXPECT_EQ(analyzer.poll_alerts(), 0u);
  SpanBatch again;
  for (std::uint64_t i = 1; i <= 15; ++i) again.push_back(kernel_span(i, i * 100, 90, "gemm"));
  feed(analyzer, std::move(again));
  EXPECT_EQ(analyzer.poll_alerts(), 1u);
  EXPECT_EQ(fired, 2);

  // Unregistered alerts never fire again, even while over threshold.
  analyzer.remove_alert(id);
  EXPECT_EQ(analyzer.poll_alerts(), 0u);
  EXPECT_EQ(fired, 2);
}

TEST(OnlineSampling, FireBelowAlertsWatchTheOtherEdge) {
  // A fire_above=false rule alarms on *low* values — the "sampling shed
  // everything" shape, e.g. watching est_spans starve.
  OnlineAnalyzer analyzer;
  int fired = 0;
  AlertRule rule;
  rule.name = "starved";
  rule.value = [](const OnlineSnapshot& s) { return s.est_spans; };
  rule.threshold = 3.0;
  rule.fire_above = false;
  analyzer.add_alert(rule, [&](const AlertRule&, double, const OnlineSnapshot&) { ++fired; });

  // 0 spans < 3: fires immediately, once.
  EXPECT_EQ(analyzer.poll_alerts(), 1u);
  EXPECT_EQ(analyzer.poll_alerts(), 0u);
  EXPECT_EQ(fired, 1);

  // Recovery above the threshold re-arms.
  SpanBatch batch;
  for (std::uint64_t i = 1; i <= 10; ++i) batch.push_back(kernel_span(i, i * 100, 90, "gemm"));
  feed(analyzer, std::move(batch));
  EXPECT_EQ(analyzer.poll_alerts(), 0u);
  analyzer.reset();
  EXPECT_EQ(analyzer.poll_alerts(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(OnlineSampling, MultipleAlertsPollIndependently) {
  OnlineAnalyzer analyzer;
  int high_fired = 0;
  int low_fired = 0;
  AlertRule high;
  high.name = "high";
  high.value = [](const OnlineSnapshot& s) { return static_cast<double>(s.spans); };
  high.threshold = 5.0;
  analyzer.add_alert(high, [&](const AlertRule&, double, const OnlineSnapshot&) { ++high_fired; });
  AlertRule low;
  low.name = "low";
  low.value = [](const OnlineSnapshot& s) { return static_cast<double>(s.spans); };
  low.threshold = 100.0;
  analyzer.add_alert(low, [&](const AlertRule&, double, const OnlineSnapshot&) { ++low_fired; });

  SpanBatch batch;
  for (std::uint64_t i = 1; i <= 10; ++i) batch.push_back(kernel_span(i, i * 100, 90, "gemm"));
  feed(analyzer, std::move(batch));
  // One poll, one snapshot, both rules evaluated: only the crossed one fires.
  EXPECT_EQ(analyzer.poll_alerts(), 1u);
  EXPECT_EQ(high_fired, 1);
  EXPECT_EQ(low_fired, 0);
}

}  // namespace
}  // namespace xsp::analysis
