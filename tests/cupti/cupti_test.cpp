#include "xsp/cupti/cupti.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace xsp::cupti {
namespace {

sim::KernelDesc test_kernel(const std::string& name = "k") {
  sim::KernelDesc k;
  k.name = name;
  k.klass = sim::KernelClass::kElementwise;
  k.grid = {2048, 1, 1};
  k.block = {256, 1, 1};
  k.flops = 1e7;
  k.dram_read_bytes = 50e6;
  k.dram_write_bytes = 50e6;
  return k;
}

TEST(Cupti, KnownMetricsMatchPaperSet) {
  // The four metrics the paper's analyses use (Section III-D3).
  EXPECT_TRUE(is_known_metric("flop_count_sp"));
  EXPECT_TRUE(is_known_metric("dram_read_bytes"));
  EXPECT_TRUE(is_known_metric("dram_write_bytes"));
  EXPECT_TRUE(is_known_metric("achieved_occupancy"));
  EXPECT_FALSE(is_known_metric("warp_execution_efficiency"));
  EXPECT_EQ(known_metrics().size(), 4u);
}

TEST(Cupti, MemoryMetricsAreTheExpensiveOnes) {
  // Section III-C: "GPU memory metrics are especially expensive to profile".
  EXPECT_GT(metric_replay_passes(kDramReadBytes), metric_replay_passes(kFlopCountSp));
  EXPECT_GT(metric_replay_passes(kDramWriteBytes), metric_replay_passes(kAchievedOccupancy));
}

TEST(Cupti, UnknownMetricThrows) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  CuptiOptions opts;
  opts.metrics = {"no_such_counter"};
  EXPECT_THROW(CuptiProfiler(dev, opts), std::invalid_argument);
}

TEST(Cupti, CapturesApiAndActivityRecords) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  CuptiProfiler prof(dev, {});
  prof.start();
  const auto r = dev.launch_kernel(sim::kDefaultStream, test_kernel("conv"));
  prof.stop();

  ASSERT_GE(prof.api_records().size(), 1u);
  EXPECT_EQ(prof.api_records()[0].correlation_id, r.correlation_id);
  ASSERT_EQ(prof.activity_records().size(), 1u);
  EXPECT_EQ(prof.activity_records()[0].name, "conv");
  EXPECT_EQ(prof.activity_records()[0].correlation_id, r.correlation_id);
}

TEST(Cupti, NoMetricsMeansNoReplay) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  CuptiProfiler prof(dev, {});
  EXPECT_EQ(prof.replay_count(), 1);
  prof.start();
  EXPECT_EQ(dev.replay_count(), 1);
  EXPECT_FALSE(dev.serialized());
  prof.stop();
}

TEST(Cupti, MetricsConfigureReplayAndSerialization) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  CuptiOptions opts;
  opts.metrics = {kFlopCountSp, kDramReadBytes};
  CuptiProfiler prof(dev, opts);
  EXPECT_EQ(prof.replay_count(), 1 + metric_replay_passes(kFlopCountSp) +
                                     metric_replay_passes(kDramReadBytes));
  prof.start();
  EXPECT_EQ(dev.replay_count(), prof.replay_count());
  EXPECT_TRUE(dev.serialized());
  prof.stop();
  EXPECT_EQ(dev.replay_count(), 1);
  EXPECT_FALSE(dev.serialized());
}

TEST(Cupti, MetricValuesComeFromHardwareCounters) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  CuptiOptions opts;
  opts.metrics = {kFlopCountSp, kDramReadBytes, kDramWriteBytes, kAchievedOccupancy};
  CuptiProfiler prof(dev, opts);
  prof.start();
  const auto r = dev.launch_kernel(sim::kDefaultStream, test_kernel());
  prof.stop();

  const auto& metrics = prof.metric_records();
  ASSERT_EQ(metrics.count(r.correlation_id), 1u);
  const auto& values = metrics.at(r.correlation_id);
  EXPECT_DOUBLE_EQ(values.at(kFlopCountSp), 1e7);
  EXPECT_DOUBLE_EQ(values.at(kDramReadBytes), 50e6);
  EXPECT_DOUBLE_EQ(values.at(kDramWriteBytes), 50e6);
  EXPECT_GT(values.at(kAchievedOccupancy), 0.0);
  EXPECT_LE(values.at(kAchievedOccupancy), 1.0);
}

TEST(Cupti, MetricCollectionSlowsExecutionDramatically) {
  // Section III-C: memory-metric profiling "can slow down execution by over
  // 100x" on kernel-heavy workloads; verify replay dominates wall time.
  const auto run = [](bool with_metrics) {
    SimClock clock;
    sim::GpuDevice dev(sim::tesla_v100(), clock);
    CuptiOptions opts;
    opts.init_overhead_ns = 0;
    opts.flush_overhead_ns = 0;
    if (with_metrics) {
      opts.metrics = {kFlopCountSp, kDramReadBytes, kDramWriteBytes, kAchievedOccupancy};
    }
    CuptiProfiler prof(dev, opts);
    prof.start();
    const TimePoint begin = clock.now();
    for (int i = 0; i < 50; ++i) dev.launch_kernel(sim::kDefaultStream, test_kernel());
    dev.synchronize();
    const TimePoint end = clock.now();
    prof.stop();
    return end - begin;
  };
  const Ns plain = run(false);
  const Ns with_metrics = run(true);
  EXPECT_GT(with_metrics, plain * 10);
}

TEST(Cupti, ReportedKernelDurationUnaffectedByReplay) {
  // CUPTI reports one replay's timing even though the device ran many.
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);

  CuptiProfiler plain(dev, {});
  plain.start();
  dev.launch_kernel(sim::kDefaultStream, test_kernel());
  plain.stop();
  const Ns plain_duration = plain.activity_records().at(0).duration();

  dev.reset();
  CuptiOptions opts;
  opts.metrics = {kDramReadBytes};
  CuptiProfiler with_metrics(dev, opts);
  with_metrics.start();
  dev.launch_kernel(sim::kDefaultStream, test_kernel());
  with_metrics.stop();
  EXPECT_EQ(with_metrics.activity_records().at(0).duration(), plain_duration);
}

TEST(Cupti, CallbacksChargeCpuOverhead) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  CuptiOptions opts;
  opts.init_overhead_ns = 0;
  opts.flush_overhead_ns = 0;
  opts.callback_overhead_ns = us(40);
  opts.activity_overhead_ns = us(40);

  const TimePoint t0 = clock.now();
  dev.launch_kernel(sim::kDefaultStream, test_kernel());
  const Ns unprofiled_cpu = clock.now() - t0;

  dev.reset();
  CuptiProfiler prof(dev, opts);
  prof.start();
  const TimePoint t1 = clock.now();
  dev.launch_kernel(sim::kDefaultStream, test_kernel());
  const Ns profiled_cpu = clock.now() - t1;
  prof.stop();

  EXPECT_GE(profiled_cpu - unprofiled_cpu, us(80));
}

TEST(Cupti, StopRestoresDeviceState) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  dev.set_serialized(true);
  dev.set_replay_count(2);
  {
    CuptiOptions opts;
    opts.metrics = {kFlopCountSp};
    CuptiProfiler prof(dev, opts);
    prof.start();
    prof.stop();
  }
  EXPECT_TRUE(dev.serialized());
  EXPECT_EQ(dev.replay_count(), 2);
}

TEST(Cupti, DestructorStopsRunningProfiler) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  {
    CuptiProfiler prof(dev, {});
    prof.start();
    dev.launch_kernel(sim::kDefaultStream, test_kernel());
  }  // destructor must stop and detach
  dev.launch_kernel(sim::kDefaultStream, test_kernel());
  SUCCEED();
}

TEST(Cupti, ActivitiesCanBeDisabled) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  CuptiOptions opts;
  opts.enable_activities = false;
  CuptiProfiler prof(dev, opts);
  prof.start();
  dev.launch_kernel(sim::kDefaultStream, test_kernel());
  prof.stop();
  EXPECT_TRUE(prof.activity_records().empty());
  EXPECT_FALSE(prof.api_records().empty());
}

}  // namespace
}  // namespace xsp::cupti
