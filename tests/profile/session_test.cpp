#include "xsp/profile/session.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "../trace/json_check.hpp"
#include "xsp/models/builder.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/wire.hpp"

namespace xsp::profile {
namespace {

framework::Graph small_graph(std::int64_t batch = 2) {
  models::GraphBuilder b("small", batch, true);
  b.input(3, 64, 64);
  b.conv(16, 3, 1).batch_norm().relu();
  b.conv(32, 3, 2).batch_norm().relu();
  b.global_avg_pool().fc(10).softmax();
  return std::move(b).build();
}

TEST(ProfileOptions, LevelStrings) {
  EXPECT_EQ(ProfileOptions::model_only().level_string(), "M");
  EXPECT_EQ(ProfileOptions::model_layer().level_string(), "M/L");
  EXPECT_EQ(ProfileOptions::full().level_string(), "M/L/G");
}

TEST(Session, ModelOnlyRunHasThreePipelineSpans) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::model_only());
  // Pre-process, prediction, post-process — all model-level roots.
  EXPECT_EQ(run.timeline.size(), 3u);
  EXPECT_EQ(run.timeline.roots().size(), 3u);
  EXPECT_TRUE(run.timeline.find_by_name("Model Prediction").has_value());
  EXPECT_TRUE(run.timeline.find_by_name("Input Pre-Process").has_value());
  EXPECT_TRUE(run.timeline.find_by_name("Output Post-Process").has_value());
  EXPECT_GT(run.model_latency, 0);
  EXPECT_GT(run.pipeline_latency, run.model_latency);
}

TEST(Session, LayerSpansAreChildrenOfPrediction) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::model_layer());
  const auto predict = run.timeline.find_by_name("Model Prediction");
  ASSERT_TRUE(predict.has_value());
  const auto& children = run.timeline.children(*predict);
  EXPECT_EQ(children.size(), small_graph().layers.size());
  // Layer spans carry the framework profiler's metadata.
  const auto& first = run.timeline.node(children[0]).span;
  EXPECT_EQ(first.tracer, "framework_profiler");
  EXPECT_EQ(first.level, trace::kLayerLevel);
  EXPECT_EQ(first.tags.at("layer_type"), "Data");
  EXPECT_GE(first.metrics.at("alloc_bytes"), 0.0);
}

TEST(Session, KernelSpansHangUnderLayers) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::full(false));
  const auto kernels = run.timeline.at_level(trace::kKernelLevel);
  EXPECT_GT(kernels.size(), 5u);
  // Every kernel's parent must be a layer span (launch-window containment).
  for (const auto id : kernels) {
    const auto& node = run.timeline.node(id);
    ASSERT_NE(node.parent, trace::kNoSpan) << node.span.name;
    EXPECT_EQ(run.timeline.node(node.parent).span.level, trace::kLayerLevel);
    EXPECT_TRUE(node.is_async);
  }
  EXPECT_EQ(run.timeline.ambiguous_count(), 0u);
  EXPECT_EQ(run.timeline.unmatched_async_count(), 0u);
}

TEST(Session, ConvLayerOwnsItsSetupKernels) {
  // Figure 1: the 3 kernels of the first Conv layer (shuffle, offsets,
  // scudnn main) correlate to that layer.
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(64), ProfileOptions::full(false));
  const auto conv = run.timeline.find_by_name("conv2d/Conv2D");
  ASSERT_TRUE(conv.has_value());
  const auto& kids = run.timeline.children(*conv);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_NE(run.timeline.node(kids[0]).span.name.view().find("Shuffle"), std::string::npos);
  EXPECT_NE(run.timeline.node(kids[2]).span.name.view().find("scudnn"), std::string::npos);
}

TEST(Session, MetricsAttachToKernelSpans) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::full(true));
  bool saw_metrics = false;
  for (const auto id : run.timeline.at_level(trace::kKernelLevel)) {
    const auto& span = run.timeline.node(id).span;
    if (span.tags.count("kind") && span.tags.at("kind") == "kernel") {
      EXPECT_EQ(span.metrics.count("flop_count_sp"), 1u) << span.name;
      EXPECT_EQ(span.metrics.count("achieved_occupancy"), 1u) << span.name;
      saw_metrics = true;
    }
  }
  EXPECT_TRUE(saw_metrics);
}

TEST(Session, DisabledLevelsPublishNothing) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::model_only());
  EXPECT_TRUE(run.timeline.at_level(trace::kLayerLevel).empty());
  EXPECT_TRUE(run.timeline.at_level(trace::kKernelLevel).empty());
}

TEST(Session, ProfilingLevelsInflateModelLatency) {
  // Figure 2's structure: each added level inflates the model-prediction
  // latency of that run.
  const auto latency_at = [](ProfileOptions opts) {
    Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    return s.profile(small_graph(), opts).model_latency;
  };
  const Ns m = latency_at(ProfileOptions::model_only());
  const Ns ml = latency_at(ProfileOptions::model_layer());
  const Ns mlg = latency_at(ProfileOptions::full(false));
  const Ns mlgm = latency_at(ProfileOptions::full(true));
  EXPECT_LT(m, ml);
  EXPECT_LT(ml, mlg);
  EXPECT_LT(mlg, mlgm);  // metric replay is the expensive step
}

TEST(Session, SyncPublishModeWorksToo) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::full(false);
  opts.publish_mode = trace::PublishMode::kSync;
  const auto run = s.profile(small_graph(), opts);
  EXPECT_GT(run.timeline.size(), 10u);
}

TEST(Session, ManualSpansNestByExplicitParent) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  // start_span is only live during profile(); simulate a user region by
  // checking the API returns kNoSpan before any profiling plumbing exists.
  EXPECT_EQ(s.start_span("before"), trace::kNoSpan);
  const auto run = s.profile(small_graph(), ProfileOptions::model_only());
  EXPECT_EQ(run.timeline.ambiguous_count(), 0u);
}

TEST(Session, DeterministicAcrossIdenticalRuns) {
  const auto run_once = [] {
    Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    return s.profile(small_graph(), ProfileOptions::full(true));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.model_latency, b.model_latency);
  EXPECT_EQ(a.timeline.size(), b.timeline.size());
}

TEST(Session, JitterMakesRunsDiffer) {
  const auto run_with_seed = [](std::uint64_t seed) {
    Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    auto opts = ProfileOptions::model_only();
    opts.timing_jitter = 0.05;
    opts.jitter_seed = seed;
    return s.profile(small_graph(), opts).model_latency;
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
  EXPECT_EQ(run_with_seed(3), run_with_seed(3));
}

TEST(Session, ShardCountNeverChangesTheAssembledTimeline) {
  // The trace_shards knob fans collection out across independent servers;
  // the merged, assembled result must be structurally identical.
  const auto shape_of = [](std::size_t shards) {
    Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    auto opts = ProfileOptions::full(/*metrics=*/false);
    opts.trace_shards = shards;
    const auto run = s.profile(small_graph(), opts);
    std::vector<std::tuple<TimePoint, TimePoint, int, int>> shape;
    run.timeline.walk([&](const trace::TimelineNode& n, int depth) {
      shape.emplace_back(n.span.begin, n.span.end, n.span.level, depth);
    });
    return shape;
  };
  const auto single = shape_of(1);
  EXPECT_FALSE(single.empty());
  EXPECT_EQ(single, shape_of(4));
}

TEST(Session, RunTraceCarriesCollectionTelemetry) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::model_layer();
  opts.trace_shards = 2;
  const auto run = s.profile(small_graph(), opts);
  EXPECT_EQ(run.trace_shards, 2u);
  // The simulated profilers stay within annotation capacity.
  EXPECT_EQ(run.dropped_annotations, 0u);
  const auto meta = run.trace_meta();
  EXPECT_EQ(meta.shard_count, 2u);
  EXPECT_EQ(meta.dropped_annotations, 0u);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Session, StreamExportPathWritesChromeTraceDuringTheRun) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::model_layer();
  opts.stream_export_path = ::testing::TempDir() + "xsp_stream_chrome.json";
  const auto run = s.profile(small_graph(), opts);

  const std::string streamed = read_file(opts.stream_export_path);
  ASSERT_FALSE(streamed.empty());
  std::string error;
  EXPECT_TRUE(trace::testjson::valid_json(streamed, &error)) << error;
  // M/L has no async pairs, so raw published spans == assembled nodes.
  EXPECT_EQ(trace::testjson::count_occurrences(streamed, "\"ph\":\"X\""), run.timeline.size());
  EXPECT_EQ(run.streamed_spans, run.timeline.size());
  EXPECT_NE(streamed.find("\"name\":\"Model Prediction\""), std::string::npos);
  std::remove(opts.stream_export_path.c_str());
}

TEST(Session, StreamExportSpanJsonCarriesRunTelemetryFooter) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::model_layer();
  opts.trace_shards = 2;
  opts.stream_export_path = ::testing::TempDir() + "xsp_stream_spans.json";
  opts.stream_export_format = trace::ExportFormat::kSpanJson;
  const auto run = s.profile(small_graph(), opts);

  const std::string streamed = read_file(opts.stream_export_path);
  std::string error;
  EXPECT_TRUE(trace::testjson::valid_json(streamed, &error)) << error;
  EXPECT_EQ(streamed.find("{\"spans\":[{"), 0u);
  EXPECT_NE(streamed.find("\"metadata\":{\"dropped_annotations\":0,\"shard_count\":2,"
                          "\"interned_strings\":"),
            std::string::npos);
  EXPECT_NE(streamed.find("\"span_count\":" + std::to_string(run.timeline.size()) +
                          ",\"export_format\":\"span_json\",\"export_bytes\":"),
            std::string::npos);
  // The run sampled real StringTable growth telemetry into the footer.
  EXPECT_GT(run.interned_strings, 0u);
  EXPECT_GT(run.interned_bytes, run.interned_strings);
  // ... and producer-slot health, next to it: the session's one publisher
  // thread owns the one live slot, and its ~50KB shows up in slot_bytes.
  EXPECT_NE(streamed.find("\"live_slots\":" + std::to_string(run.live_slots)),
            std::string::npos);
  EXPECT_EQ(run.live_slots, 1u);
  EXPECT_GT(run.slot_bytes, 0u);
  // The session still assembled its in-memory timeline (observe mode tees).
  EXPECT_GT(run.timeline.size(), 3u);
  std::remove(opts.stream_export_path.c_str());
}

TEST(Session, StreamExportBinaryRoundTripsThroughBinaryReader) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::model_layer();
  opts.trace_shards = 2;
  opts.stream_export_path = ::testing::TempDir() + "xsp_stream.xspb";
  opts.stream_export_format = trace::ExportFormat::kBinary;
  const auto run = s.profile(small_graph(), opts);

  const std::string bytes = read_file(opts.stream_export_path);
  ASSERT_FALSE(bytes.empty());
  // streamed_bytes telemetry is the file size; spans match the JSON path.
  EXPECT_EQ(run.streamed_bytes, bytes.size());
  EXPECT_EQ(run.streamed_spans, run.timeline.size());

  std::istringstream in(bytes);
  trace::BinaryReader reader(in);
  const trace::SpanBatches decoded = reader.read_all();
  EXPECT_TRUE(reader.saw_footer());
  EXPECT_EQ(reader.spans_read(), run.streamed_spans);
  // The footer frame carries the same run telemetry the JSON footer does.
  EXPECT_EQ(reader.footer().span_count, run.streamed_spans);
  EXPECT_EQ(reader.footer().shard_count, 2u);
  EXPECT_EQ(reader.footer().live_slots, run.live_slots);
  EXPECT_EQ(reader.footer().interned_strings, run.interned_strings);

  // Decoded spans assemble into the same timeline the live run produced.
  const trace::Timeline replay = trace::Timeline::assemble(trace::flatten_batches(decoded));
  EXPECT_EQ(replay.size(), run.timeline.size());
  EXPECT_EQ(trace::to_span_json(replay), trace::to_span_json(run.timeline));
  std::remove(opts.stream_export_path.c_str());
}

TEST(Session, WorkerThreadSlotsAreReclaimedAcrossRuns) {
  // The long-lived-service shape at the session layer: run N happens on a
  // worker thread that then dies; the reused fleet must shed that
  // thread's slots by the time run N+1 has flushed, so a service driving
  // runs from ever-fresh threads holds O(live threads) slots.
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto opts = ProfileOptions::model_layer();
  std::thread worker([&s, &opts] { (void)s.profile(small_graph(), opts); });
  worker.join();
  // Same options -> the fleet is reused; this run's initial drain retires
  // the dead worker's slot, and its own publishing registers main's.
  const auto run = s.profile(small_graph(), opts);
  EXPECT_EQ(run.live_slots, 1u);
  EXPECT_EQ(run.retired_slots, 1u);
  const SlotTelemetry t = s.slot_telemetry();
  EXPECT_EQ(t.live_slots, 1u);
  EXPECT_EQ(t.retired_slots, 1u);
  // 0 when main's registration drew the parked slot (same shard as the
  // worker), 1 when the two threads hashed to different shards.
  EXPECT_LE(t.pooled_slots, 1u);
  EXPECT_GT(t.slot_bytes, 0u);
}

TEST(Session, LiveStatsSnapshotTracksTheRunAndAccumulatesAcrossRuns) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  // Before any live run: a default snapshot, not a crash.
  EXPECT_EQ(s.live_snapshot().spans, 0u);

  auto opts = ProfileOptions::model_layer();
  opts.live_stats = true;
  const auto run = s.profile(small_graph(), opts);
  const auto snap = s.live_snapshot();
  // M/L publishes no async pairs: observed raw spans == assembled nodes.
  EXPECT_EQ(snap.spans, run.timeline.size());
  EXPECT_EQ(snap.layer_spans, small_graph().layers.size());
  EXPECT_FALSE(snap.layer_types.empty());
  EXPECT_GT(snap.layer_p50, 0);

  // The analyzer is a service-lifetime accumulator: a second run adds on.
  const auto run2 = s.profile(small_graph(), opts);
  EXPECT_EQ(s.live_snapshot().spans, run.timeline.size() + run2.timeline.size());

  // reset_live_stats() starts a fresh epoch.
  s.reset_live_stats();
  EXPECT_EQ(s.live_snapshot().spans, 0u);
}

TEST(Session, LiveStatsSurviveShardAndWindowReconfiguration) {
  // The analyzer is a lifetime accumulator: changing trace_shards or the
  // stats window between runs reconfigures it in place — it must never
  // silently drop accumulated aggregates (reset_live_stats() is the only
  // reset path).
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::model_layer();
  opts.live_stats = true;
  opts.trace_shards = 1;
  const auto run1 = s.profile(small_graph(), opts);

  opts.trace_shards = 4;
  opts.live_stats_window = 5 * kNsPerMs;
  const auto run2 = s.profile(small_graph(), opts);

  const auto snap = s.live_snapshot();
  EXPECT_EQ(snap.spans, run1.timeline.size() + run2.timeline.size());
  EXPECT_EQ(snap.window, 5 * kNsPerMs);
  EXPECT_EQ(snap.shard_spans.size(), 4u);
  std::uint64_t load_total = 0;
  for (const auto load : snap.shard_spans) load_total += load;
  EXPECT_EQ(load_total, snap.spans);
}

TEST(Session, LiveStatsComposesWithStreamExportAndFootersOnlineAggregates) {
  // The fan-out regression shape: live stats AND streaming export attach
  // to the same drains (two observers) in one run — impossible with the
  // old single-subscriber slot.
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::model_layer();
  opts.live_stats = true;
  opts.trace_shards = 2;
  opts.stream_export_path = ::testing::TempDir() + "xsp_stream_online.json";
  opts.stream_export_format = trace::ExportFormat::kSpanJson;
  const auto run = s.profile(small_graph(), opts);

  EXPECT_EQ(run.streamed_spans, run.timeline.size());
  EXPECT_EQ(s.live_snapshot().spans, run.timeline.size());

  const std::string streamed = read_file(opts.stream_export_path);
  std::string error;
  EXPECT_TRUE(trace::testjson::valid_json(streamed, &error)) << error;
  // The metadata footer carries the final online aggregates.
  EXPECT_NE(streamed.find("\"online\":{\"spans\":" + std::to_string(run.timeline.size())),
            std::string::npos);
  EXPECT_NE(streamed.find("\"layer_types\":["), std::string::npos);
  std::remove(opts.stream_export_path.c_str());
}

TEST(Session, LiveStatsOffLeavesNoAnalyzerAttached) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::model_layer());
  EXPECT_GT(run.timeline.size(), 0u);
  EXPECT_EQ(s.live_snapshot().spans, 0u);
}

TEST(Session, SamplingOffByDefaultLeavesCountersZero) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::model_layer());
  // No sampler is installed at rate 1.0 with no tail-keep: the admission
  // path is the pre-sampling fast path and the accounting stays zero.
  EXPECT_EQ(run.sampled_kept, 0u);
  EXPECT_EQ(run.sampled_dropped, 0u);
  EXPECT_EQ(run.trace_meta().sampled_kept, 0u);
  EXPECT_EQ(run.trace_meta().sampled_dropped, 0u);
}

TEST(Session, SamplingAccountsEveryPublicationAndThinsTheTimeline) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);

  // Run 1: a sampler that admits everything (rate 1.0 + tail-keep forces
  // installation). Its kept count is the run's exact publication volume.
  auto keep_all = ProfileOptions::model_layer();
  keep_all.sampling_tail_keep_ns = 1;  // install a sampler; everything admits
  const auto full = s.profile(small_graph(), keep_all);
  EXPECT_GT(full.sampled_kept, 0u);
  EXPECT_EQ(full.sampled_dropped, 0u);
  EXPECT_GT(full.timeline.size(), 0u);

  // Run 2: same graph and level at rate 0.3 — publication volume is
  // deterministic, so kept + dropped must equal run 1's kept exactly.
  auto sampled = ProfileOptions::model_layer();
  sampled.sampling_rate = 0.3;
  const auto thin = s.profile(small_graph(), sampled);
  EXPECT_EQ(thin.sampled_kept + thin.sampled_dropped, full.sampled_kept);
  EXPECT_GT(thin.sampled_dropped, 0u);
  EXPECT_LT(thin.timeline.size(), full.timeline.size());
  // The per-run accounting flows into the exportable TraceMeta.
  EXPECT_EQ(thin.trace_meta().sampled_kept, thin.sampled_kept);
  EXPECT_EQ(thin.trace_meta().sampled_dropped, thin.sampled_dropped);
}

TEST(Session, SamplingComposesWithLiveStatsAndTopK) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::full(false);
  opts.live_stats = true;
  opts.sampling_rate = 0.4;
  opts.top_k_kernels = 4;
  const auto run = s.profile(small_graph(), opts);
  EXPECT_GT(run.sampled_dropped, 0u);

  const auto snap = s.live_snapshot();
  // The analyzer only sees admitted spans; the fleet's shed accounting is
  // injected so the snapshot reports the true volumes.
  EXPECT_EQ(snap.sampled_kept, run.sampled_kept);
  EXPECT_EQ(snap.sampled_dropped, run.sampled_dropped);
  EXPECT_DOUBLE_EQ(snap.sampling_rate, 0.4);
  // HT rescaling estimates past the shed: the estimate exceeds what was
  // observed whenever anything was dropped.
  EXPECT_GT(snap.est_spans, static_cast<double>(snap.spans));
  // The bounded kernel table honours its cap.
  EXPECT_LE(snap.kernels.size(), 4u);
  EXPECT_EQ(snap.kernel_row_limit, 4u);
}

TEST(Session, StreamExportToUnwritablePathThrowsAndSessionStaysUsable) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  auto opts = ProfileOptions::model_only();
  opts.stream_export_path = "/nonexistent-dir/trace.json";
  EXPECT_THROW(s.profile(small_graph(), opts), std::runtime_error);
  // The failed run must not leave a dangling subscriber on the reused
  // fleet: a follow-up run works and assembles normally.
  const auto run = s.profile(small_graph(), ProfileOptions::model_only());
  EXPECT_EQ(run.timeline.size(), 3u);
}

}  // namespace
}  // namespace xsp::profile
