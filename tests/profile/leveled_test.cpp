#include "xsp/profile/leveled.hpp"

#include <gtest/gtest.h>

#include "xsp/models/builder.hpp"

namespace xsp::profile {
namespace {

framework::Graph small_graph(std::int64_t batch = 4) {
  models::GraphBuilder b("small", batch, true);
  b.input(3, 64, 64);
  b.conv(16, 3, 1).batch_norm().relu();
  b.conv(32, 3, 2).batch_norm().relu();
  b.global_avg_pool().fc(10).softmax();
  return std::move(b).build();
}

TEST(Leveled, OverheadsArePositiveAndQuantified) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run(small_graph());
  EXPECT_GT(result.layer_overhead(), 0);
  EXPECT_GT(result.gpu_overhead(), 0);
  EXPECT_EQ(result.profile.layer_profiling_overhead, result.layer_overhead());
  EXPECT_EQ(result.profile.gpu_profiling_overhead, result.gpu_overhead());
}

TEST(Leveled, LayerOverheadMatchesProfilerCost) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto g = small_graph();
  const auto result = runner.run(g);
  const Ns expected = framework::traits_for(framework::FrameworkKind::kTFlow)
                          .profiler_per_layer_ns *
                      static_cast<Ns>(g.layers.size());
  EXPECT_NEAR(static_cast<double>(result.layer_overhead()), static_cast<double>(expected),
              static_cast<double>(us(20)));
}

TEST(Leveled, MetricRunIsTheExpensiveOne) {
  // Section III-C: metric replay dominates; the activity-level G run stays
  // cheap so the overhead ladder is usable.
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  // A GPU-heavy graph so kernel replay dominates the CPU-side costs.
  models::GraphBuilder b("gpu_heavy", 128, true);
  b.input(3, 128, 128);
  b.conv(64, 3, 1).batch_norm().relu();
  b.conv(128, 3, 2).batch_norm().relu();
  b.global_avg_pool().fc(10).softmax();
  const auto result = runner.run(std::move(b).build(), /*gpu_metrics=*/true);
  EXPECT_GT(result.metric_slowdown(), 3.0);
  EXPECT_LT(static_cast<double>(result.gpu_overhead()),
            static_cast<double>(result.mlgm.model_latency - result.ml.model_latency));
}

TEST(Leveled, AccurateModelLatencyComesFromMRun) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run(small_graph());
  EXPECT_EQ(result.profile.model_latency, result.m.model_latency);
  EXPECT_LT(result.profile.model_latency, result.ml.model_latency);
}

TEST(Leveled, MergedProfileHasLayersAndKernels) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto g = small_graph();
  const auto result = runner.run(g);
  EXPECT_EQ(result.profile.layers.size(), g.layers.size());
  EXPECT_GT(result.profile.kernels.size(), 5u);
  EXPECT_EQ(result.profile.model_name, "small");
  EXPECT_EQ(result.profile.system_name, "Tesla_V100");
  EXPECT_EQ(result.profile.framework_name, "TFlow");
  EXPECT_EQ(result.profile.batch, 4);
}

TEST(Leveled, KernelsCorrelateToLayers) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run(small_graph());
  for (const auto& k : result.profile.kernels) {
    EXPECT_GE(k.layer_index, 0) << k.name << " must correlate to a layer";
  }
  // Layer kernel aggregates are consistent with the kernel list.
  for (const auto& l : result.profile.layers) {
    Ns sum = 0;
    for (const auto kid : l.kernel_ids) {
      const auto& k = result.profile.kernels[kid];
      if (!k.is_memcpy) sum += k.latency;
    }
    EXPECT_EQ(sum, l.kernel_latency) << l.name;
  }
}

TEST(Leveled, MetricsFlowIntoMergedKernels) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run(small_graph(), /*gpu_metrics=*/true);
  double total_flops = 0;
  for (const auto& k : result.profile.kernels) total_flops += k.flops;
  EXPECT_GT(total_flops, 0);
  EXPECT_GT(result.profile.weighted_occupancy(), 0);
  EXPECT_LE(result.profile.weighted_occupancy(), 1.0);
}

TEST(Leveled, WithoutMetricsKernelsHaveTimingOnly) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run(small_graph(), /*gpu_metrics=*/false);
  EXPECT_GT(result.profile.kernels.size(), 0u);
  EXPECT_DOUBLE_EQ(result.profile.total_flops(), 0.0);
  EXPECT_GT(result.profile.total_kernel_latency(), 0);
}

TEST(Leveled, NonGpuLatencyIsNonNegative) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run(small_graph());
  for (const auto& l : result.profile.layers) {
    EXPECT_GE(l.non_gpu_latency(), 0) << l.name;
    EXPECT_LE(l.kernel_latency, l.latency) << l.name;
  }
}

TEST(Leveled, LayerLatenciesSumNearModelLatency) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto result = runner.run(small_graph());
  Ns layer_sum = 0;
  for (const auto& l : result.profile.layers) layer_sum += l.latency;
  EXPECT_LE(layer_sum, result.ml.model_latency);
  // Model latency = session fixed cost + the layers themselves.
  const Ns fixed = framework::traits_for(framework::FrameworkKind::kTFlow).fixed_run_overhead_ns;
  EXPECT_NEAR(static_cast<double>(layer_sum + fixed),
              static_cast<double>(result.profile.model_latency),
              0.05 * static_cast<double>(result.profile.model_latency));
}

TEST(Leveled, RunModelBuildsWithFrameworkLowering) {
  const auto* model = models::find_tensorflow_model("MobileNet_v1_0.25_128");
  ASSERT_NE(model, nullptr);
  LeveledRunner tf(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  LeveledRunner mx(sim::tesla_v100(), framework::FrameworkKind::kMXLite);
  const auto tf_result = tf.run_model(*model, 2);
  const auto mx_result = mx.run_model(*model, 2);
  // TF decomposes BN -> more layers than the fused MXNet graph.
  EXPECT_GT(tf_result.profile.layers.size(), mx_result.profile.layers.size());
}

TEST(Leveled, RepeatedLatencySummary) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto summary = runner.repeated_model_latency_ms(small_graph(), 10, 0.05);
  EXPECT_EQ(summary.count, 10u);
  EXPECT_GT(summary.stddev, 0);  // jitter produced spread
  EXPECT_GE(summary.trimmed_mean, summary.min);
  EXPECT_LE(summary.trimmed_mean, summary.max);
}

TEST(Leveled, ModelLatencyDeterministicWithoutJitter) {
  LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  EXPECT_EQ(runner.model_latency(small_graph()), runner.model_latency(small_graph()));
}

}  // namespace
}  // namespace xsp::profile
