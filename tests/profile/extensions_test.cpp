// Tests for the paper's Section III-E extensions: the ML-library profiling
// level between layer and kernel, and the application level above the
// model level (multi-model applications through distributed tracing).
#include <gtest/gtest.h>

#include "xsp/models/builder.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/profile/session.hpp"

namespace xsp::profile {
namespace {

framework::Graph small_graph(std::int64_t batch = 2, bool decompose_bn = true) {
  models::GraphBuilder b("small", batch, decompose_bn);
  b.input(3, 64, 64);
  b.conv(16, 3, 1).batch_norm().relu();
  b.max_pool(2, 2);
  b.global_avg_pool().fc(10).softmax();
  return std::move(b).build();
}

ProfileOptions with_library() {
  auto o = ProfileOptions::full(false);
  o.library_level = true;
  return o;
}

TEST(LibraryLevel, LevelStringIncludesLib) {
  EXPECT_EQ(with_library().level_string(), "M/L/Lib/G");
}

TEST(LibraryLevel, LibrarySpansAppearBetweenLayersAndKernels) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), with_library());

  const auto libs = run.timeline.at_level(trace::kLibraryLevel);
  ASSERT_GT(libs.size(), 4u);
  for (const auto id : libs) {
    const auto& node = run.timeline.node(id);
    ASSERT_NE(node.parent, trace::kNoSpan) << node.span.name;
    EXPECT_EQ(run.timeline.node(node.parent).span.level, trace::kLayerLevel);
  }
  // Kernels now hang under the library spans.
  for (const auto id : run.timeline.at_level(trace::kKernelLevel)) {
    const auto& node = run.timeline.node(id);
    ASSERT_NE(node.parent, trace::kNoSpan) << node.span.name;
    EXPECT_EQ(run.timeline.node(node.parent).span.level, trace::kLibraryLevel)
        << node.span.name;
  }
}

TEST(LibraryLevel, CudnnAndCublasCallsNamed) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), with_library());
  EXPECT_TRUE(run.timeline.find_by_name("cudnnConvolutionForward").has_value());
  EXPECT_TRUE(run.timeline.find_by_name("cublasSgemm").has_value());
  EXPECT_TRUE(run.timeline.find_by_name("cudnnPoolingForward").has_value());
  EXPECT_TRUE(run.timeline.find_by_name("cudnnSoftmaxForward").has_value());
}

TEST(LibraryLevel, MxnetUsesItsOwnLaunchers) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kMXLite);
  const auto run = s.profile(small_graph(2, /*decompose_bn=*/false), with_library());
  EXPECT_TRUE(run.timeline.find_by_name("cudnnBatchNormalizationForwardInference").has_value());
  EXPECT_TRUE(run.timeline.find_by_name("mxnet::op::Kernel::Launch").has_value());
  EXPECT_FALSE(run.timeline.find_by_name("Eigen::GpuDevice::execute").has_value());
}

TEST(LibraryLevel, MergeStillCorrelatesKernelsToLayers) {
  // With the intermediate level present, kernels must still resolve their
  // layer through the ancestor walk.
  Session m_session(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  Session ml_session(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  Session mlg_session(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto m = m_session.profile(small_graph(), ProfileOptions::model_only());
  const auto ml = ml_session.profile(small_graph(), ProfileOptions::model_layer());
  const auto mlg = mlg_session.profile(small_graph(), with_library());
  const auto profile = merge_runs(m, ml, mlg, "small", "Tesla_V100", "TFlow", 2);
  for (const auto& k : profile.kernels) {
    EXPECT_GE(k.layer_index, 0) << k.name;
  }
  Ns layer_kernel_sum = 0;
  for (const auto& l : profile.layers) layer_kernel_sum += l.kernel_latency;
  EXPECT_EQ(layer_kernel_sum, profile.total_kernel_latency());
}

TEST(LibraryLevel, DisabledByDefaultEverywhere) {
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto run = s.profile(small_graph(), ProfileOptions::full(false));
  EXPECT_TRUE(run.timeline.at_level(trace::kLibraryLevel).empty());
}

TEST(ApplicationLevel, MultiModelPipelineUnderOneApplicationSpan) {
  // "Adding an application profiling level above the model level to
  // measure whole applications (possibly ... using more than one ML model)
  // is naturally supported" — Section III-E. Two models, one timeline.
  Session s(sim::tesla_v100(), framework::FrameworkKind::kTFlow);

  trace::TraceServer server(trace::PublishMode::kSync);
  trace::Tracer app_tracer(server, "application", trace::kApplicationLevel);
  trace::Tracer model_tracer(server, "model_timer", trace::kModelLevel);

  const auto detector = small_graph(1);
  const auto classifier = small_graph(1);

  const auto app = app_tracer.start_span("VideoAnalyticsApp", s.clock().now());
  for (const auto* g : {&detector, &classifier}) {
    const auto m = model_tracer.start_span(g->model_name + "/Predict", s.clock().now());
    s.executor().run(*g);
    model_tracer.finish_span(m, s.clock().now());
  }
  app_tracer.finish_span(app, s.clock().now());

  const auto tl = trace::Timeline::assemble(server.take_trace());
  ASSERT_EQ(tl.roots().size(), 1u);
  const auto& root = tl.node(tl.roots()[0]);
  EXPECT_EQ(root.span.name, "VideoAnalyticsApp");
  EXPECT_EQ(root.span.level, trace::kApplicationLevel);
  EXPECT_EQ(root.children.size(), 2u);
}

}  // namespace
}  // namespace xsp::profile
