#include "xsp/dnn/conv.hpp"

#include <gtest/gtest.h>

namespace xsp::dnn {
namespace {

ConvParams resnet_first_conv(std::int64_t batch) {
  ConvParams p;
  p.batch = batch;
  p.in_channels = 3;
  p.in_h = 224;
  p.in_w = 224;
  p.out_channels = 64;
  p.kernel_h = 7;
  p.kernel_w = 7;
  p.stride = 2;
  p.pad = 3;
  return p;
}

ConvParams deep_7x7_conv(std::int64_t batch) {
  // ResNet50's conv2d_48 shape family: 512 channels at 7x7 spatial.
  ConvParams p;
  p.batch = batch;
  p.in_channels = 512;
  p.in_h = 7;
  p.in_w = 7;
  p.out_channels = 512;
  p.kernel_h = 3;
  p.kernel_w = 3;
  p.stride = 1;
  p.pad = 1;
  return p;
}

TEST(ConvParams, OutputGeometry) {
  const auto p = resnet_first_conv(1);
  EXPECT_EQ(p.out_h(), 112);
  EXPECT_EQ(p.out_w(), 112);
  EXPECT_EQ(p.output_shape(), (Shape4{1, 64, 112, 112}));
}

TEST(ConvParams, FlopCount) {
  // 2 * N * K * C * R * S * OH * OW.
  ConvParams p;
  p.batch = 2;
  p.in_channels = 16;
  p.in_h = 8;
  p.in_w = 8;
  p.out_channels = 32;
  p.kernel_h = 3;
  p.kernel_w = 3;
  p.pad = 1;
  EXPECT_DOUBLE_EQ(p.flops(), 2.0 * 2 * 32 * 8 * 8 * 16 * 3 * 3);
}

TEST(ConvParams, DepthwiseGroupsReduceFlops) {
  ConvParams dense;
  dense.batch = 1;
  dense.in_channels = 32;
  dense.in_h = 16;
  dense.in_w = 16;
  dense.out_channels = 32;
  dense.kernel_h = 3;
  dense.kernel_w = 3;
  dense.pad = 1;
  ConvParams depthwise = dense;
  depthwise.groups = 32;
  EXPECT_DOUBLE_EQ(depthwise.flops() * 32, dense.flops());
}

TEST(ConvAlgo, SmallBatchUsesImplicitGemm) {
  // Section III-D3: "For batch sizes less than 16, the cuDNN convolution
  // API uses the IMPLICIT_GEMM algorithm".
  for (std::int64_t b : {1, 2, 4, 8}) {
    EXPECT_EQ(choose_conv_algo(deep_7x7_conv(b), sim::GpuArch::kVolta),
              ConvAlgo::kImplicitGemm)
        << "batch " << b;
  }
}

TEST(ConvAlgo, LargeBatchUsesPrecompGemm) {
  ConvParams p = deep_7x7_conv(64);
  p.in_channels = 256;  // below the FFT trigger
  for (std::int64_t b : {16, 32, 64}) {
    p.batch = b;
    EXPECT_EQ(choose_conv_algo(p, sim::GpuArch::kVolta), ConvAlgo::kImplicitPrecompGemm)
        << "batch " << b;
  }
}

TEST(ConvAlgo, DeepTinySpatialLargeBatchUsesFft) {
  // Table III: volta_cgemm_32x32_tn serves the 512-channel 7x7 layers of
  // ResNet50 at batch 256.
  EXPECT_EQ(choose_conv_algo(deep_7x7_conv(256), sim::GpuArch::kVolta), ConvAlgo::kFft);
}

TEST(ConvAlgo, OneByOneConvAlwaysPrecomp) {
  ConvParams p = deep_7x7_conv(1);
  p.kernel_h = p.kernel_w = 1;
  p.pad = 0;
  EXPECT_EQ(choose_conv_algo(p, sim::GpuArch::kVolta), ConvAlgo::kImplicitPrecompGemm);
}

TEST(ConvKernels, PrecompGemmLaunchesSetupKernels) {
  // Figure 1: the first Conv layer launches ShuffleTensor, OffsetComp, and
  // the main scudnn kernel.
  const auto kernels =
      conv_kernels(resnet_first_conv(256), ConvAlgo::kImplicitPrecompGemm, sim::tesla_v100());
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_NE(kernels[0].name.find("Shuffle"), std::string::npos);
  EXPECT_NE(kernels[1].name.find("Offsets"), std::string::npos);
  EXPECT_NE(kernels[2].name.find("volta_scudnn_128x"), std::string::npos);
  // The main kernel carries all the flops.
  EXPECT_DOUBLE_EQ(kernels[2].flops, resnet_first_conv(256).flops());
}

TEST(ConvKernels, FftLaunchesTransformsAroundCgemm) {
  const auto kernels = conv_kernels(deep_7x7_conv(256), ConvAlgo::kFft, sim::tesla_v100());
  ASSERT_EQ(kernels.size(), 3u);
  EXPECT_NE(kernels[0].name.find("fft2d_r2c"), std::string::npos);
  EXPECT_NE(kernels[1].name.find("cgemm_32x32_tn"), std::string::npos);
  EXPECT_NE(kernels[2].name.find("fft2d_c2r"), std::string::npos);
}

TEST(ConvKernels, ArchitecturePrefixesKernelNames) {
  // Section IV-C: volta_* on Volta/Turing, maxwell_* on Pascal/Maxwell.
  const auto p = deep_7x7_conv(64);
  const auto volta = conv_kernels(p, ConvAlgo::kImplicitPrecompGemm, sim::tesla_v100());
  const auto pascal = conv_kernels(p, ConvAlgo::kImplicitPrecompGemm, sim::tesla_p100());
  const auto maxwell = conv_kernels(p, ConvAlgo::kImplicitPrecompGemm, sim::tesla_m60());
  EXPECT_EQ(volta.back().name.rfind("volta_", 0), 0u);
  EXPECT_EQ(pascal.back().name.rfind("maxwell_", 0), 0u);
  EXPECT_EQ(maxwell.back().name.rfind("maxwell_", 0), 0u);
}

TEST(ConvKernels, TuringPromotesMoreLayersTo128x128) {
  // Section IV-C: on the same model, V100 dispatches 34 calls to 128x64
  // where Quadro RTX dispatches 18, sending the rest to 128x128. The tile
  // heuristic must therefore promote mid-size problems on Turing only.
  ConvParams p;
  p.batch = 256;
  p.in_channels = 256;
  p.in_h = 14;
  p.in_w = 14;
  p.out_channels = 256;
  p.kernel_h = 3;
  p.kernel_w = 3;
  p.pad = 1;
  EXPECT_EQ(choose_scudnn_tile(p, sim::GpuArch::kVolta), ScudnnTile::k128x64);
  EXPECT_EQ(choose_scudnn_tile(p, sim::GpuArch::kTuring), ScudnnTile::k128x128);
}

TEST(ConvKernels, ImplicitGemmIsSingleKernel) {
  const auto kernels = conv_kernels(deep_7x7_conv(1), ConvAlgo::kImplicitGemm, sim::tesla_v100());
  ASSERT_EQ(kernels.size(), 1u);
  EXPECT_EQ(kernels[0].name, "cudnn::detail::implicit_convolve_sgemm");
}

TEST(ConvKernels, WinogradReducesMultiplies) {
  const auto p = deep_7x7_conv(32);
  const auto wino = conv_kernels(p, ConvAlgo::kWinograd, sim::tesla_v100());
  ASSERT_EQ(wino.size(), 1u);
  EXPECT_LT(wino[0].flops, p.flops());
}

TEST(ConvKernels, TrafficIsPositiveAndBounded) {
  for (auto algo : {ConvAlgo::kImplicitGemm, ConvAlgo::kImplicitPrecompGemm, ConvAlgo::kFft,
                    ConvAlgo::kWinograd}) {
    const auto kernels = conv_kernels(resnet_first_conv(32), algo, sim::tesla_v100());
    double reads = 0;
    double writes = 0;
    for (const auto& k : kernels) {
      reads += k.dram_read_bytes;
      writes += k.dram_write_bytes;
    }
    EXPECT_GT(reads, 0) << conv_algo_name(algo);
    EXPECT_GT(writes, 0) << conv_algo_name(algo);
    // Sanity: no algorithm moves more than ~8x the tensor volumes.
    const auto p = resnet_first_conv(32);
    const double tensors = p.input_shape().bytes() + p.output_shape().bytes() + p.weight_bytes();
    EXPECT_LT(reads + writes, tensors * 8) << conv_algo_name(algo);
  }
}

TEST(ConvKernels, AutoMatchesHeuristic) {
  const auto p = deep_7x7_conv(256);
  const auto kernels = conv_kernels_auto(p, sim::tesla_v100());
  EXPECT_EQ(kernels.size(),
            conv_kernels(p, choose_conv_algo(p, sim::GpuArch::kVolta), sim::tesla_v100()).size());
}

TEST(ConvAlgo, NamesAreStable) {
  EXPECT_STREQ(conv_algo_name(ConvAlgo::kImplicitGemm), "IMPLICIT_GEMM");
  EXPECT_STREQ(conv_algo_name(ConvAlgo::kImplicitPrecompGemm), "IMPLICIT_PRECOMP_GEMM");
  EXPECT_STREQ(conv_algo_name(ConvAlgo::kFft), "FFT");
  EXPECT_STREQ(conv_algo_name(ConvAlgo::kWinograd), "WINOGRAD");
}

}  // namespace
}  // namespace xsp::dnn
