#include "xsp/dnn/ops.hpp"

#include <gtest/gtest.h>

#include "xsp/sim/cost_model.hpp"

namespace xsp::dnn {
namespace {

const Shape4 kBig{256, 256, 56, 56};

TEST(Elementwise, EigenNamesMatchPaperTableIV) {
  EXPECT_EQ(elementwise_kernel(EwOp::kMul, kBig, 1, EwBackend::kEigen).name,
            "Eigen::TensorCwiseBinaryOp<scalar_product_op>");
  EXPECT_EQ(elementwise_kernel(EwOp::kAdd, kBig, 1, EwBackend::kEigen).name,
            "Eigen::TensorCwiseBinaryOp<scalar_sum_op>");
  EXPECT_EQ(elementwise_kernel(EwOp::kMax, kBig, 1, EwBackend::kEigen).name,
            "Eigen::TensorCwiseBinaryOp<scalar_max_op>");
}

TEST(Elementwise, MaxOpHasZeroFlops) {
  // Table IV: scalar_max_op reports 0 flops (comparisons are not FLOPs).
  EXPECT_DOUBLE_EQ(elementwise_kernel(EwOp::kMax, kBig, 1, EwBackend::kEigen).flops, 0.0);
  EXPECT_GT(elementwise_kernel(EwOp::kMul, kBig, 1, EwBackend::kEigen).flops, 0.0);
}

TEST(Elementwise, MaxOpAchievesNearFullOccupancy) {
  // Table IV: scalar_max_op achieves 98.39% occupancy; the binary arith
  // ops sit near 50%.
  const auto max_k = elementwise_kernel(EwOp::kMax, kBig, 1, EwBackend::kEigen);
  const auto mul_k = elementwise_kernel(EwOp::kMul, kBig, 1, EwBackend::kEigen);
  EXPECT_GT(sim::achieved_occupancy(max_k, sim::tesla_v100()), 0.9);
  EXPECT_NEAR(sim::achieved_occupancy(mul_k, sim::tesla_v100()), 0.5, 0.05);
}

TEST(Elementwise, EigenMovesMoreTrafficThanMxnet) {
  // Section IV-B: "the Eigen library ... incurs excessive DRAM reads and
  // writes" relative to MXNet's kernels.
  const auto eigen = elementwise_kernel(EwOp::kMul, kBig, 1, EwBackend::kEigen);
  const auto mx = elementwise_kernel(EwOp::kMul, kBig, 1, EwBackend::kMxMath);
  EXPECT_GT(eigen.total_dram_bytes(), mx.total_dram_bytes());
}

TEST(Elementwise, MxnetKernelsAreFasterOnSameTensor) {
  const auto& gpu = sim::tesla_v100();
  const auto eigen = elementwise_kernel(EwOp::kMul, kBig, 1, EwBackend::kEigen);
  const auto mx = elementwise_kernel(EwOp::kMul, kBig, 1, EwBackend::kMxMath);
  const Ns t_eigen = sim::kernel_duration(eigen, gpu, sim::occupancy_info(eigen, gpu));
  const Ns t_mx = sim::kernel_duration(mx, gpu, sim::occupancy_info(mx, gpu));
  EXPECT_LT(t_mx, t_eigen);
}

TEST(Elementwise, ElementwiseKernelsAreMemoryBound) {
  const auto& gpu = sim::tesla_v100();
  for (auto op : {EwOp::kMul, EwOp::kAdd, EwOp::kMax, EwOp::kAddN}) {
    const auto k = elementwise_kernel(op, kBig, 2, EwBackend::kEigen);
    EXPECT_TRUE(sim::is_memory_bound(k.flops, k.total_dram_bytes(), gpu)) << ew_op_name(op);
  }
}

TEST(Elementwise, AddNScalesReadsWithInputs) {
  const auto two = elementwise_kernel(EwOp::kAddN, kBig, 2, EwBackend::kEigen);
  const auto four = elementwise_kernel(EwOp::kAddN, kBig, 4, EwBackend::kEigen);
  EXPECT_NEAR(four.dram_read_bytes / two.dram_read_bytes, 2.0, 0.01);
  EXPECT_DOUBLE_EQ(four.dram_write_bytes, two.dram_write_bytes);
}

TEST(Gemm, FlopsAndNaming) {
  const auto k = gemm_kernel(256, 1001, 2048, sim::tesla_v100());
  EXPECT_DOUBLE_EQ(k.flops, 2.0 * 256 * 1001 * 2048);
  EXPECT_EQ(k.name, "volta_sgemm_128x64_tn");
  const auto km = gemm_kernel(256, 1001, 2048, sim::tesla_m60());
  EXPECT_EQ(km.name, "maxwell_sgemm_128x64_tn");
}

TEST(Gemm, ComputeBoundForLargeK) {
  const auto& gpu = sim::tesla_v100();
  const auto k = gemm_kernel(4096, 4096, 4096, gpu);
  EXPECT_FALSE(sim::is_memory_bound(k.flops, k.total_dram_bytes(), gpu));
}

TEST(Pooling, MaxPoolHasNoFlopsAvgDoes) {
  const auto& gpu = sim::tesla_v100();
  const Shape4 in{8, 64, 112, 112};
  EXPECT_DOUBLE_EQ(pooling_kernel(in, 3, 2, false, gpu).flops, 0.0);
  EXPECT_GT(pooling_kernel(in, 3, 2, true, gpu).flops, 0.0);
}

TEST(Pooling, OutputSmallerThanInput) {
  const auto& gpu = sim::tesla_v100();
  const Shape4 in{8, 64, 112, 112};
  const auto k = pooling_kernel(in, 2, 2, false, gpu);
  EXPECT_LT(k.dram_write_bytes, k.dram_read_bytes);
}

TEST(BatchNorm, FusedKernelTouchesTensorTwice) {
  const auto& gpu = sim::tesla_v100();
  const auto k = batchnorm_inference_kernel(kBig, gpu);
  EXPECT_DOUBLE_EQ(k.dram_read_bytes, kBig.bytes());
  EXPECT_DOUBLE_EQ(k.dram_write_bytes, kBig.bytes());
  EXPECT_DOUBLE_EQ(k.flops, static_cast<double>(kBig.elements()) * 2.0);
}

TEST(Depthwise, MemoryBoundUnlikeDenseConv) {
  const auto& gpu = sim::tesla_v100();
  const Shape4 in{64, 512, 14, 14};
  const Shape4 out{64, 512, 14, 14};
  const auto k = depthwise_conv_kernel(in, out, 3, gpu);
  EXPECT_TRUE(sim::is_memory_bound(k.flops, k.total_dram_bytes(), gpu));
  EXPECT_EQ(k.name, "tensorflow::DepthwiseConv2dGPUKernelNCHW");
}

TEST(Where, PoorLocalityInflatesTraffic) {
  const auto& gpu = sim::tesla_v100();
  const auto k = where_kernel(1'000'000, gpu);
  const double bytes = 1'000'000 * kElementBytes;
  EXPECT_GT(k.dram_read_bytes, bytes * 2);  // gather amplification
  EXPECT_GT(k.dram_write_bytes, bytes);
  EXPECT_LT(k.occupancy_cap, 0.5);
}

TEST(Softmax, TrafficScalesWithTensor) {
  const auto& gpu = sim::tesla_v100();
  const Shape4 small{1, 1001, 1, 1};
  const Shape4 large{256, 1001, 1, 1};
  EXPECT_GT(softmax_kernel(large, gpu).total_dram_bytes(),
            softmax_kernel(small, gpu).total_dram_bytes());
}

TEST(OpNames, AllOpsNamed) {
  for (auto op : {EwOp::kMul, EwOp::kAdd, EwOp::kMax, EwOp::kRelu, EwOp::kAddN, EwOp::kSigmoid,
                  EwOp::kTanh}) {
    EXPECT_STRNE(ew_op_name(op), "?");
    EXPECT_NE(elementwise_kernel(op, kBig, 1, EwBackend::kEigen).name, "?");
    EXPECT_NE(elementwise_kernel(op, kBig, 1, EwBackend::kMxMath).name, "?");
  }
}

TEST(Shape4, ElementsAndBytes) {
  const Shape4 s{2, 3, 4, 5};
  EXPECT_EQ(s.elements(), 120);
  EXPECT_DOUBLE_EQ(s.bytes(), 480.0);
  EXPECT_EQ(s.str(), "<2, 3, 4, 5>");
}

}  // namespace
}  // namespace xsp::dnn
