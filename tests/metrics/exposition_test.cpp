// Prometheus text-exposition parser (metrics/exposition.hpp): the read
// side xsp_top --daemon depends on. The regression pinned here: a line
// with a trailing timestamp ("name value ts") must parse the VALUE, not
// the timestamp — the old split-at-last-space parser got that wrong.
#include "xsp/metrics/exposition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace xsp::metrics {
namespace {

ExpositionSample parse_ok(std::string_view line) {
  ExpositionSample s;
  EXPECT_TRUE(parse_exposition_line(line, s)) << "line: " << line;
  return s;
}

TEST(Exposition, ParsesPlainSample) {
  const ExpositionSample s = parse_ok("xsp_ingested_spans_total 4242");
  EXPECT_EQ(s.name, "xsp_ingested_spans_total");
  EXPECT_TRUE(s.labels.empty());
  EXPECT_DOUBLE_EQ(s.value, 4242.0);
  EXPECT_FALSE(s.has_timestamp);
}

TEST(Exposition, TimestampedSampleParsesValueNotTimestamp) {
  // The bug this parser replaces: rfind(' ') made the value 1723111465000.
  const ExpositionSample s = parse_ok("xsp_strtab_bytes 1536 1723111465000");
  EXPECT_EQ(s.name, "xsp_strtab_bytes");
  EXPECT_DOUBLE_EQ(s.value, 1536.0);
  EXPECT_TRUE(s.has_timestamp);
  EXPECT_EQ(s.timestamp_ms, 1723111465000);
}

TEST(Exposition, ParsesLabeledSamples) {
  const ExpositionSample s = parse_ok("xsp_connection_spans_total{conn=\"3\"} 17");
  EXPECT_EQ(s.name, "xsp_connection_spans_total");
  EXPECT_EQ(s.labels, "conn=\"3\"");
  EXPECT_DOUBLE_EQ(s.value, 17.0);
  const auto conn = label_value(s.labels, "conn");
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(*conn, "3");
  EXPECT_FALSE(label_value(s.labels, "shard").has_value());
}

TEST(Exposition, LabeledAndTimestamped) {
  const ExpositionSample s =
      parse_ok("xsp_producer_outbox_spans{conn=\"7\",shard=\"1\"} 12 99");
  EXPECT_DOUBLE_EQ(s.value, 12.0);
  EXPECT_TRUE(s.has_timestamp);
  EXPECT_EQ(s.timestamp_ms, 99);
  EXPECT_EQ(*label_value(s.labels, "shard"), "1");
}

TEST(Exposition, QuotedLabelValuesMayContainSpacesBracesAndEscapes) {
  const ExpositionSample s =
      parse_ok(R"(job_info{desc="hello world {x}",path="a\\b\"c"} 1)");
  EXPECT_EQ(s.name, "job_info");
  EXPECT_DOUBLE_EQ(s.value, 1.0);
  EXPECT_EQ(*label_value(s.labels, "desc"), "hello world {x}");
  EXPECT_EQ(*label_value(s.labels, "path"), "a\\b\"c");
}

TEST(Exposition, ScientificAndSpecialValues) {
  EXPECT_DOUBLE_EQ(parse_ok("m 2.5e3").value, 2500.0);
  EXPECT_DOUBLE_EQ(parse_ok("m -0.25").value, -0.25);
  EXPECT_TRUE(std::isinf(parse_ok("m +Inf").value));
  EXPECT_TRUE(std::isnan(parse_ok("m NaN").value));
}

TEST(Exposition, ToleratesWhitespaceAndCrlf) {
  const ExpositionSample s = parse_ok("  xsp_foo_total   3   \r");
  EXPECT_EQ(s.name, "xsp_foo_total");
  EXPECT_DOUBLE_EQ(s.value, 3.0);
}

TEST(Exposition, RejectsCommentsBlanksAndMalformedLines) {
  ExpositionSample s;
  EXPECT_FALSE(parse_exposition_line("", s));
  EXPECT_FALSE(parse_exposition_line("   ", s));
  EXPECT_FALSE(parse_exposition_line("# HELP xsp_foo help text", s));
  EXPECT_FALSE(parse_exposition_line("# TYPE xsp_foo counter", s));
  EXPECT_FALSE(parse_exposition_line("name_without_value", s));
  EXPECT_FALSE(parse_exposition_line("name 12abc", s));            // garbage value
  EXPECT_FALSE(parse_exposition_line("name 1 2 3", s));            // trailing garbage
  EXPECT_FALSE(parse_exposition_line("name 1 not-a-timestamp", s));
  EXPECT_FALSE(parse_exposition_line("name{unterminated=\"v 1", s));  // no closing brace
}

}  // namespace
}  // namespace xsp::metrics
