// Registry semantics (idempotent registration, type conflicts, callback
// lifetimes), Prometheus exposition shape, and — the reason this suite is
// in the sanitizer matrix — concurrent mutation: N writer threads driving
// counters/gauges/histograms while a reader scrapes, with monotonicity
// checked across scrapes.
#include "xsp/metrics/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace xsp::metrics {
namespace {

// Minimal exposition parser: `name{labels} value` or `name value` lines
// into a flat map keyed by "name{labels}". Comment lines are validated to
// look like HELP/TYPE and skipped.
std::map<std::string, double> parse_exposition(const std::string& text) {
  std::map<std::string, double> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_FALSE(line.empty()) << "blank line in exposition";
    if (line.empty()) return {};
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0)
          << "unexpected comment: " << line;
      continue;
    }
    const auto sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    if (sp == std::string::npos) return {};
    out[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
  }
  if (::testing::Test::HasFailure()) return {};
  return out;
}

std::map<std::string, double> parse_exposition(const Registry& reg) {
  return parse_exposition(reg.text());
}

TEST(RegistryTest, CounterRegistrationIsIdempotent) {
  Registry reg;
  auto a = reg.counter("xsp_test_total", "help");
  auto b = reg.counter("xsp_test_total", "help");
  EXPECT_EQ(a.get(), b.get());
  a->inc();
  b->inc(4);
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(RegistryTest, LabeledSeriesAreDistinct) {
  Registry reg;
  auto a = reg.counter("xsp_test_total", "help", {{"shard", "0"}});
  auto b = reg.counter("xsp_test_total", "help", {{"shard", "1"}});
  EXPECT_NE(a.get(), b.get());
  a->inc(3);
  const auto samples = parse_exposition(reg);
  EXPECT_EQ(samples.at("xsp_test_total{shard=\"0\"}"), 3.0);
  EXPECT_EQ(samples.at("xsp_test_total{shard=\"1\"}"), 0.0);
}

TEST(RegistryTest, KindConflictThrows) {
  Registry reg;
  (void)reg.counter("xsp_test_total", "help");
  EXPECT_THROW((void)reg.gauge("xsp_test_total", "help"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("xsp_test_total", "help", {1, 2}), std::logic_error);
}

TEST(RegistryTest, HistogramBoundsConflictThrows) {
  Registry reg;
  (void)reg.histogram("xsp_test_ns", "help", {1, 2, 3});
  // Same bounds: fine, same instrument.
  (void)reg.histogram("xsp_test_ns", "help", {1, 2, 3});
  EXPECT_THROW((void)reg.histogram("xsp_test_ns", "help", {1, 2}), std::logic_error);
}

TEST(RegistryTest, InvalidNameThrows) {
  Registry reg;
  EXPECT_THROW((void)reg.counter("0starts_with_digit", "h"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has-dash", "h"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("", "h"), std::invalid_argument);
  (void)reg.counter("_ok:name_1", "h");  // must not throw
}

TEST(RegistryTest, GaugeGoesUpAndDown) {
  Registry reg;
  auto g = reg.gauge("xsp_test_depth", "help");
  g->set(7);
  g->add(-9);
  EXPECT_EQ(g->value(), -2);
  const auto samples = parse_exposition(reg);
  EXPECT_EQ(samples.at("xsp_test_depth"), -2.0);
}

TEST(RegistryTest, HistogramBucketsAreCumulativeInExposition) {
  Registry reg;
  auto h = reg.histogram("xsp_test_ns", "help", {10, 100, 1000});
  h->observe(5);     // le=10
  h->observe(10);    // le=10 (inclusive upper bound)
  h->observe(50);    // le=100
  h->observe(5000);  // +Inf
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 5065u);
  const auto samples = parse_exposition(reg);
  EXPECT_EQ(samples.at("xsp_test_ns_bucket{le=\"10\"}"), 2.0);
  EXPECT_EQ(samples.at("xsp_test_ns_bucket{le=\"100\"}"), 3.0);
  EXPECT_EQ(samples.at("xsp_test_ns_bucket{le=\"1000\"}"), 3.0);
  EXPECT_EQ(samples.at("xsp_test_ns_bucket{le=\"+Inf\"}"), 4.0);
  EXPECT_EQ(samples.at("xsp_test_ns_sum"), 5065.0);
  EXPECT_EQ(samples.at("xsp_test_ns_count"), 4.0);
}

TEST(RegistryTest, LabelValuesAreEscaped) {
  Registry reg;
  auto c = reg.counter("xsp_test_total", "help", {{"path", "a\"b\\c\nd"}});
  c->inc();
  const std::string text = reg.text();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
}

TEST(RegistryTest, CallbackSeriesSampleAtScrape) {
  Registry reg;
  std::atomic<std::uint64_t> backing{0};
  CallbackHandle handle = reg.callback(
      "xsp_test_cb_total", "help", Kind::kCounter, {},
      [&backing] { return static_cast<double>(backing.load()); });
  backing = 41;
  EXPECT_EQ(parse_exposition(reg).at("xsp_test_cb_total"), 41.0);
  backing = 42;
  EXPECT_EQ(parse_exposition(reg).at("xsp_test_cb_total"), 42.0);
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST(RegistryTest, DuplicateCallbackThrows) {
  Registry reg;
  CallbackHandle a = reg.callback("xsp_test_cb", "h", Kind::kGauge, {}, [] { return 0.0; });
  EXPECT_THROW((void)reg.callback("xsp_test_cb", "h", Kind::kGauge, {}, [] { return 0.0; }),
               std::logic_error);
  // Releasing frees the slot for re-registration.
  a.release();
  CallbackHandle b = reg.callback("xsp_test_cb", "h", Kind::kGauge, {}, [] { return 1.0; });
  EXPECT_EQ(parse_exposition(reg).at("xsp_test_cb"), 1.0);
}

TEST(RegistryTest, ReleasedCallbackDisappearsFromScrape) {
  Registry reg;
  {
    CallbackHandle handle =
        reg.callback("xsp_test_cb", "h", Kind::kGauge, {}, [] { return 1.0; });
    EXPECT_EQ(reg.series_count(), 1u);
  }
  EXPECT_EQ(reg.series_count(), 0u);
  EXPECT_EQ(reg.text().find("xsp_test_cb"), std::string::npos);
}

TEST(RegistryTest, HandleOutlivingRegistryIsSafe) {
  CallbackHandle handle;
  {
    Registry reg;
    handle = reg.callback("xsp_test_cb", "h", Kind::kGauge, {}, [] { return 1.0; });
  }
  handle.release();  // must be a no-op, not a crash
}

TEST(RegistryTest, InstrumentOutlivingRegistryIsSafe) {
  std::shared_ptr<Counter> c;
  {
    Registry reg;
    c = reg.counter("xsp_test_total", "h");
  }
  c->inc();  // instrument is shared, registry death must not invalidate it
  EXPECT_EQ(c->value(), 1u);
}

TEST(RegistryTest, HistogramCallbackKindThrows) {
  Registry reg;
  EXPECT_THROW(
      (void)reg.callback("xsp_test", "h", Kind::kHistogram, {}, [] { return 0.0; }),
      std::logic_error);
}

TEST(RegistryTest, FamiliesExposeInRegistrationOrder) {
  Registry reg;
  (void)reg.counter("xsp_b_total", "h");
  (void)reg.counter("xsp_a_total", "h");
  const std::string text = reg.text();
  EXPECT_LT(text.find("xsp_b_total"), text.find("xsp_a_total"));
}

// The sanitizer-matrix test: writers hammer shared instruments while a
// reader scrapes into a reused buffer. TSan checks the synchronization
// story; the assertions check monotonic counters across scrapes and exact
// totals once the writers join.
TEST(RegistryConcurrencyTest, WritersVsScrapingReader) {
  Registry reg;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kIncsPerWriter = 20000;
  auto counter = reg.counter("xsp_stress_total", "h");
  auto gauge = reg.gauge("xsp_stress_depth", "h");
  auto hist = reg.histogram("xsp_stress_ns", "h", {8, 64, 512});
  std::atomic<std::uint64_t> cb_backing{0};
  CallbackHandle cb = reg.callback("xsp_stress_cb_total", "h", Kind::kCounter, {},
                                   [&cb_backing] { return static_cast<double>(cb_backing.load()); });

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kIncsPerWriter; ++i) {
        counter->inc();
        gauge->set(static_cast<std::int64_t>(i));
        hist->observe((i * 37 + static_cast<std::uint64_t>(w)) % 1000);
        cb_backing.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread reader([&] {
    std::string buf;
    double last_counter = 0.0;
    double last_cb = 0.0;
    std::uint64_t scrapes = 0;
    while (!stop.load(std::memory_order_acquire)) {
      buf.clear();
      reg.write_prometheus(buf);
      const auto samples = parse_exposition(buf);
      if (samples.empty()) break;  // parse assertion already failed
      const double now_counter = samples.at("xsp_stress_total");
      const double now_cb = samples.at("xsp_stress_cb_total");
      EXPECT_GE(now_counter, last_counter);
      EXPECT_GE(now_cb, last_cb);
      // A histogram's cumulative buckets never exceed its count.
      EXPECT_LE(samples.at("xsp_stress_ns_bucket{le=\"512\"}"),
                samples.at("xsp_stress_ns_count"));
      last_counter = now_counter;
      last_cb = now_cb;
      ++scrapes;
    }
    EXPECT_GT(scrapes, 0u);
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  constexpr std::uint64_t kTotal = kWriters * kIncsPerWriter;
  EXPECT_EQ(counter->value(), kTotal);
  EXPECT_EQ(hist->count(), kTotal);
  const auto samples = parse_exposition(reg);
  EXPECT_EQ(samples.at("xsp_stress_total"), static_cast<double>(kTotal));
  EXPECT_EQ(samples.at("xsp_stress_ns_bucket{le=\"+Inf\"}"), static_cast<double>(kTotal));
  EXPECT_EQ(samples.at("xsp_stress_cb_total"), static_cast<double>(kTotal));
}

// Callback release must serialize with scrapes: a component dying while
// another thread scrapes can never leave the scrape calling into freed
// state. (ASan/TSan would flag the use-after-free / race.)
TEST(RegistryConcurrencyTest, ReleaseRacesScrape) {
  Registry reg;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::string buf;
    while (!stop.load(std::memory_order_acquire)) {
      buf.clear();
      reg.write_prometheus(buf);
    }
  });
  for (int round = 0; round < 200; ++round) {
    auto value = std::make_shared<std::atomic<std::uint64_t>>(round);
    CallbackHandle handle = reg.callback(
        "xsp_churn", "h", Kind::kGauge, {},
        [value] { return static_cast<double>(value->load()); });
    // Handle (and the captured state) dies here, mid-scrape-loop.
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(reg.series_count(), 0u);
}

}  // namespace
}  // namespace xsp::metrics
