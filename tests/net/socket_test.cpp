// Socket / Listener / try_connect / Poller over real fds: UDS and TCP
// round trips, half-close semantics (the drain protocol's signalling
// primitive), connect failure as a value rather than an exception, and
// ephemeral-port resolution.
#include "xsp/net/socket.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net_test_util.hpp"
#include "xsp/net/endpoint.hpp"

namespace xsp::net {
namespace {

using testutil::accept_within;
using testutil::read_to_eof;
using testutil::send_all;
using testutil::uds_endpoint;

TEST(SocketIo, UdsRoundTripAndHalfClose) {
  const Endpoint ep = uds_endpoint("sock_rt");
  Listener listener(ep);
  Socket client = try_connect(ep, 1000);
  ASSERT_TRUE(client.valid());
  Socket server = accept_within(listener);
  ASSERT_TRUE(server.valid());

  ASSERT_TRUE(send_all(client, "ping from producer"));
  // Half-close: the peer reads everything already sent, then clean EOF —
  // exactly how a producer says "stream complete" while staying readable.
  client.shutdown_write();
  EXPECT_EQ(read_to_eof(server), "ping from producer");

  // The reverse direction still works after the half-close (the ack path).
  ASSERT_TRUE(send_all(server, "ack"));
  server.close();
  EXPECT_EQ(read_to_eof(client), "ack");
}

TEST(SocketIo, TcpEphemeralPortResolvesAndRoundTrips) {
  Listener listener(Endpoint::parse("tcp://127.0.0.1:0"));
  const Endpoint bound = listener.endpoint();
  ASSERT_NE(bound.port, 0) << "port 0 bind must report the resolved port";

  Socket client = try_connect(bound, 1000);
  ASSERT_TRUE(client.valid());
  Socket server = accept_within(listener);
  ASSERT_TRUE(server.valid());
  ASSERT_TRUE(send_all(client, "tcp bytes"));
  client.shutdown_write();
  EXPECT_EQ(read_to_eof(server), "tcp bytes");
}

TEST(SocketIo, ConnectFailureIsAValueNotAnException) {
  std::string error;
  Socket s = try_connect(uds_endpoint("sock_nobody_listening"), 200, &error);
  EXPECT_FALSE(s.valid());
  EXPECT_FALSE(error.empty());
}

TEST(SocketIo, StaleUdsPathIsReclaimedByNextListener) {
  const Endpoint ep = uds_endpoint("sock_stale");
  { Listener first(ep); }  // killed-daemon simulation: path may linger
  // A second bind on the same path must succeed (unlink-before-bind).
  Listener second(ep);
  Socket client = try_connect(ep, 1000);
  EXPECT_TRUE(client.valid());
}

TEST(SocketIo, ListenerAcceptReturnsInvalidWhenNonePending) {
  Listener listener(uds_endpoint("sock_none"));
  EXPECT_FALSE(listener.accept().valid());
}

TEST(PollerTest, ReportsReadableOnlyWhenDataArrives) {
  const Endpoint ep = uds_endpoint("sock_poll");
  Listener listener(ep);
  Socket client = try_connect(ep, 1000);
  Socket server = accept_within(listener);
  ASSERT_TRUE(server.valid());

  Poller poller;
  poller.watch(server.fd(), Poller::kReadable);
  EXPECT_TRUE(poller.wait(0).empty()) << "no data yet: poll must time out";

  ASSERT_TRUE(send_all(client, "x"));
  ASSERT_TRUE(server.wait_readable(1000));
  const auto& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, server.fd());
  EXPECT_TRUE(events[0].readable);

  poller.forget(server.fd());
  EXPECT_EQ(poller.watched(), 0u);
  EXPECT_TRUE(poller.wait(0).empty());
}

TEST(PollerTest, FlagsHangupWhenPeerCloses) {
  const Endpoint ep = uds_endpoint("sock_hup");
  Listener listener(ep);
  Socket client = try_connect(ep, 1000);
  Socket server = accept_within(listener);
  ASSERT_TRUE(server.valid());
  client.close();

  Poller poller;
  poller.watch(server.fd(), Poller::kReadable);
  const auto& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 1u);
  // A closed peer surfaces as hangup and/or readable-EOF; either way the
  // event fires so the collector notices the death promptly.
  EXPECT_TRUE(events[0].hangup || events[0].readable);
  std::size_t n = 0;
  char buf[8];
  EXPECT_EQ(server.read_some(buf, sizeof buf, n), IoResult::kClosed);
}

}  // namespace
}  // namespace xsp::net
