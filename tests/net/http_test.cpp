// The collector's HTTP responder under friendly and hostile clients.
// Unit tests pin the HttpRequestParser state machine (incremental feeds,
// the head-size cap, token validation); the live tests point real sockets
// at a CollectorService metrics endpoint and verify hostility stays
// connection-local: an oversized request line or a slowloris dribble
// costs that one connection, while parallel scrapes and producer ingest
// proceed untouched.
#include "xsp/net/http.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "net_test_util.hpp"
#include "xsp/net/collector.hpp"
#include "xsp/net/endpoint.hpp"
#include "xsp/net/socket.hpp"
#include "xsp/trace/remote_sink.hpp"
#include "xsp/trace/sharded_trace_server.hpp"

namespace xsp::net {
namespace {

using testutil::read_to_eof;
using testutil::send_all;
using testutil::uds_endpoint;
using Status = HttpRequestParser::Status;

// --- parser state machine ---------------------------------------------------

TEST(HttpRequestParser, ParsesSimpleGet) {
  HttpRequestParser p;
  EXPECT_EQ(p.feed("GET /metrics HTTP/1.0\r\n\r\n"), Status::kComplete);
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().path, "/metrics");
}

TEST(HttpRequestParser, KeepsQueryStringInPath) {
  HttpRequestParser p;
  EXPECT_EQ(p.feed("GET /metrics?format=prometheus HTTP/1.1\r\nHost: x\r\n\r\n"),
            Status::kComplete);
  EXPECT_EQ(p.request().path, "/metrics?format=prometheus");
}

TEST(HttpRequestParser, AssemblesAcrossByteSizedFeeds) {
  // The slowloris shape at the parser level: one byte per feed must walk
  // kNeedMore all the way to kComplete with the same result as one chunk.
  const std::string req = "GET /healthz HTTP/1.0\r\nUser-Agent: drip\r\n\r\n";
  HttpRequestParser p;
  for (std::size_t i = 0; i + 1 < req.size(); ++i) {
    ASSERT_EQ(p.feed(req.substr(i, 1)), Status::kNeedMore) << "byte " << i;
  }
  EXPECT_EQ(p.feed(req.substr(req.size() - 1)), Status::kComplete);
  EXPECT_EQ(p.request().path, "/healthz");
}

TEST(HttpRequestParser, OversizedHeadErrorsInOneChunk) {
  HttpRequestParser p;
  const std::string line(kMaxHttpRequestBytes + 1, 'A');
  EXPECT_EQ(p.feed(line), Status::kError);
  EXPECT_STREQ(p.error(), "request head exceeds limit");
}

TEST(HttpRequestParser, OversizedHeadErrorsAcrossManyFeeds) {
  // A client dribbling an endless request line must hit the cap, not
  // buffer forever.
  HttpRequestParser p;
  const std::string chunk(512, 'A');
  Status st = Status::kNeedMore;
  std::size_t fed = 0;
  while (st == Status::kNeedMore && fed < 4 * kMaxHttpRequestBytes) {
    st = p.feed(chunk);
    fed += chunk.size();
  }
  EXPECT_EQ(st, Status::kError);
  EXPECT_LE(fed, kMaxHttpRequestBytes + chunk.size());
  EXPECT_STREQ(p.error(), "request head exceeds limit");
}

TEST(HttpRequestParser, RejectsBinaryMethodToken) {
  HttpRequestParser p;
  EXPECT_EQ(p.feed("G@T /metrics HTTP/1.0\r\n\r\n"), Status::kError);
  EXPECT_STREQ(p.error(), "malformed method token");
}

TEST(HttpRequestParser, RejectsMissingRequestLineParts) {
  {
    HttpRequestParser p;
    EXPECT_EQ(p.feed("GET/metrics\r\n\r\n"), Status::kError);
  }
  {
    HttpRequestParser p;
    EXPECT_EQ(p.feed("GET /metrics\r\n\r\n"), Status::kError);
  }
  {
    HttpRequestParser p;
    EXPECT_EQ(p.feed(" / HTTP/1.0\r\n\r\n"), Status::kError);
  }
}

TEST(HttpRequestParser, RejectsNonSlashPathAndNonHttpVersion) {
  {
    HttpRequestParser p;
    EXPECT_EQ(p.feed("GET metrics HTTP/1.0\r\n\r\n"), Status::kError);
    EXPECT_STREQ(p.error(), "malformed request path");
  }
  {
    HttpRequestParser p;
    EXPECT_EQ(p.feed("GET /metrics GOPHER/1.0\r\n\r\n"), Status::kError);
    EXPECT_STREQ(p.error(), "unsupported protocol");
  }
}

TEST(HttpRequestParser, TerminalStatesAreSticky) {
  HttpRequestParser ok;
  ASSERT_EQ(ok.feed("GET / HTTP/1.0\r\n\r\n"), Status::kComplete);
  EXPECT_EQ(ok.feed("trailing garbage after the head"), Status::kComplete);
  EXPECT_EQ(ok.request().path, "/");

  HttpRequestParser bad;
  ASSERT_EQ(bad.feed("\x01\x02\x03 / HTTP/1.0\r\n\r\n"), Status::kError);
  EXPECT_EQ(bad.feed("GET / HTTP/1.0\r\n\r\n"), Status::kError)
      << "an errored parser must not resurrect";
}

TEST(HttpResponse, FormatsStatusLineHeadersAndBody) {
  const std::string r = http_response(200, "text/plain", "ok\n");
  EXPECT_EQ(r.compare(0, 15, "HTTP/1.0 200 OK"), 0);
  EXPECT_NE(r.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 3), "ok\n");
  EXPECT_EQ(http_response(404, "text/plain", "").compare(0, 22,
                                                         "HTTP/1.0 404 Not Found"),
            0);
}

// --- live endpoint: friendly and hostile clients ----------------------------

template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

/// Collector with its metrics endpoint live on an ephemeral TCP port.
struct ScrapableCollector {
  trace::ShardedTraceServer server;
  CollectorService service;
  std::thread thread;

  static CollectorOptions with_metrics() {
    CollectorOptions copts;
    copts.metrics_endpoint = "tcp://127.0.0.1:0";
    return copts;
  }

  explicit ScrapableCollector(const Endpoint& ep)
      : server(2, trace::PublishMode::kSync),
        service(ep, server, with_metrics()),
        thread([this] { service.run(); }) {}
  ~ScrapableCollector() { stop(); }

  void stop() {
    service.stop();
    if (thread.joinable()) thread.join();
  }

  [[nodiscard]] const Endpoint& scrape_endpoint() const {
    return *service.metrics_endpoint();
  }
};

/// One full HTTP exchange: connect, send the raw request, read to close.
std::string http_exchange(const Endpoint& ep, std::string_view raw_request) {
  Socket s = try_connect(ep, 1000);
  if (!s.valid()) return {};
  if (!send_all(s, raw_request)) return {};
  s.shutdown_write();
  return read_to_eof(s);
}

TEST(MetricsEndpoint, ServesHealthzAndMetrics) {
  ScrapableCollector collector(uds_endpoint("http_serve"));
  ASSERT_NE(collector.service.metrics_endpoint(), nullptr);

  const std::string health =
      http_exchange(collector.scrape_endpoint(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(health.compare(0, 15, "HTTP/1.0 200 OK"), 0) << health;
  EXPECT_EQ(health.substr(health.size() - 3), "ok\n");

  const std::string scrape =
      http_exchange(collector.scrape_endpoint(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(scrape.compare(0, 15, "HTTP/1.0 200 OK"), 0);
  EXPECT_NE(scrape.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(scrape.find("# TYPE xsp_ingested_spans_total counter"), std::string::npos);
  EXPECT_NE(scrape.find("xsp_collector_open_connections 0"), std::string::npos);

  collector.stop();
  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.http_requests, 2u);
  EXPECT_EQ(stats.http_errors, 0u);
}

TEST(MetricsEndpoint, UnknownPathAndNonGetAreErrors) {
  ScrapableCollector collector(uds_endpoint("http_404"));
  const std::string missing =
      http_exchange(collector.scrape_endpoint(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_EQ(missing.compare(0, 22, "HTTP/1.0 404 Not Found"), 0) << missing;
  const std::string post =
      http_exchange(collector.scrape_endpoint(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(post.compare(0, 12, "HTTP/1.0 405"), 0) << post;

  collector.stop();
  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.http_requests, 2u);
  EXPECT_EQ(stats.http_errors, 2u);
}

TEST(MetricsEndpoint, OversizedRequestLineIsConnectionLocal) {
  const Endpoint ingest_ep = uds_endpoint("http_oversz");
  ScrapableCollector collector(ingest_ep);

  // 4x the head budget of 'A' with no terminator: the responder must
  // answer 400 (or just cut the connection) without unbounded buffering.
  const std::string flood(4 * kMaxHttpRequestBytes, 'A');
  {
    Socket s = try_connect(collector.scrape_endpoint(), 1000);
    ASSERT_TRUE(s.valid());
    (void)send_all(s, flood);  // the daemon may 400+close mid-send
    const std::string resp = read_to_eof(s);
    if (!resp.empty()) {
      EXPECT_EQ(resp.compare(0, 12, "HTTP/1.0 400"), 0) << resp;
      EXPECT_NE(resp.find("request head exceeds limit"), std::string::npos);
    }
  }
  ASSERT_TRUE(wait_until([&] { return collector.service.stats().http_errors >= 1; }));

  // The daemon took the hit on that connection only: a well-formed scrape
  // still answers, and producer ingest never noticed.
  trace::RemoteSink sink(ingest_ep);
  for (int i = 0; i < 10; ++i) {
    trace::Span sp;
    sp.id = sink.next_span_id();
    sp.name = trace::StrId("post_flood_op");
    sp.tracer = trace::StrId("post_flood_tracer");
    sp.begin = i;
    sp.end = i + 1;
    sink.publish(sp);
  }
  sink.close();

  const std::string scrape =
      http_exchange(collector.scrape_endpoint(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(scrape.compare(0, 15, "HTTP/1.0 200 OK"), 0) << scrape.substr(0, 64);
  EXPECT_NE(scrape.find("xsp_ingested_spans_total 10"), std::string::npos);

  collector.stop();
  EXPECT_EQ(collector.service.stats().spans_ingested, 10u);
  EXPECT_EQ(collector.service.stats().connections_errored, 0u)
      << "HTTP hostility must never count against producer connections";
}

TEST(MetricsEndpoint, SlowlorisClientDoesNotStallOtherScrapes) {
  ScrapableCollector collector(uds_endpoint("http_slow"));

  // The slow client parks half a request line and goes quiet.
  Socket slow = try_connect(collector.scrape_endpoint(), 1000);
  ASSERT_TRUE(slow.valid());
  ASSERT_TRUE(send_all(slow, "GET /metr"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Meanwhile scrapes from other clients are answered immediately.
  for (int i = 0; i < 3; ++i) {
    const std::string scrape =
        http_exchange(collector.scrape_endpoint(), "GET /metrics HTTP/1.0\r\n\r\n");
    ASSERT_EQ(scrape.compare(0, 15, "HTTP/1.0 200 OK"), 0)
        << "scrape " << i << " stalled behind a slowloris client";
  }

  // The dribbler eventually finishing gets a normal response — slow is
  // not hostile, just slow.
  ASSERT_TRUE(send_all(slow, "ics HTTP/1.0\r\n\r\n"));
  const std::string late = read_to_eof(slow);
  EXPECT_EQ(late.compare(0, 15, "HTTP/1.0 200 OK"), 0) << late.substr(0, 64);

  collector.stop();
  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.http_requests, 4u);
  EXPECT_EQ(stats.http_errors, 0u);
}

TEST(MetricsEndpoint, BinaryGarbageGets400) {
  ScrapableCollector collector(uds_endpoint("http_junk"));
  const std::string resp =
      http_exchange(collector.scrape_endpoint(),
                    std::string("\x00\x01\x02\x03 / HTTP/1.0\r\n\r\n", 21));
  if (!resp.empty()) {
    EXPECT_EQ(resp.compare(0, 12, "HTTP/1.0 400"), 0) << resp;
  }
  ASSERT_TRUE(wait_until([&] { return collector.service.stats().http_errors >= 1; }));
  collector.stop();
  EXPECT_EQ(collector.service.stats().connections_errored, 0u);
}

}  // namespace
}  // namespace xsp::net
