// Shared helpers for the net test suite: unique per-process UDS paths
// (parallel ctest runs must not collide) and blocking send/recv loops
// composed from the nonblocking Socket primitives.
#pragma once

#include <unistd.h>

#include <chrono>
#include <string>
#include <string_view>

#include "xsp/net/endpoint.hpp"
#include "xsp/net/socket.hpp"

namespace xsp::net::testutil {

/// unix:/tmp/xsp_t<pid>_<name>.sock — unique per test process.
inline Endpoint uds_endpoint(const std::string& name) {
  return Endpoint::parse("unix:/tmp/xsp_t" + std::to_string(::getpid()) + "_" +
                         name + ".sock");
}

/// Blocking write of the whole buffer (poll + retry over write_some).
inline bool send_all(Socket& sock, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    std::size_t n = 0;
    switch (sock.write_some(bytes.data() + off, bytes.size() - off, n)) {
      case IoResult::kOk:
        off += n;
        break;
      case IoResult::kWouldBlock:
        sock.wait_writable(200);
        break;
      default:
        return false;
    }
  }
  return true;
}

/// Read until EOF/error or the deadline; returns everything received.
inline std::string read_to_eof(Socket& sock, int timeout_ms = 5000) {
  std::string out;
  char buf[4096];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    std::size_t n = 0;
    switch (sock.read_some(buf, sizeof buf, n)) {
      case IoResult::kOk:
        out.append(buf, n);
        break;
      case IoResult::kWouldBlock:
        sock.wait_readable(50);
        break;
      case IoResult::kClosed:
      case IoResult::kError:
        return out;
    }
  }
  return out;
}

/// Read until `out` contains `needle` (or EOF/deadline). Returns true on
/// a hit; bytes read so far accumulate into `out` either way.
inline bool read_until_contains(Socket& sock, std::string& out,
                                std::string_view needle,
                                int timeout_ms = 5000) {
  char buf[4096];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (out.find(needle) == std::string::npos) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::size_t n = 0;
    switch (sock.read_some(buf, sizeof buf, n)) {
      case IoResult::kOk:
        out.append(buf, n);
        break;
      case IoResult::kWouldBlock:
        sock.wait_readable(50);
        break;
      case IoResult::kClosed:
      case IoResult::kError:
        return out.find(needle) != std::string::npos;
    }
  }
  return true;
}

/// Accept with a bounded wait (the listener fd is nonblocking).
inline Socket accept_within(Listener& listener, int timeout_ms = 5000) {
  Poller poller;
  poller.watch(listener.fd(), Poller::kReadable);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    Socket s = listener.accept();
    if (s.valid()) return s;
    if (std::chrono::steady_clock::now() >= deadline) return Socket();
    poller.wait(50);
  }
}

}  // namespace xsp::net::testutil
