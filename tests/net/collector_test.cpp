// CollectorService + RemoteSink end to end: the cross-process ingestion
// path exercised in-process over real sockets. Covers the acceptance
// criteria of the collector tentpole — a 4-producer fleet assembling the
// same per-producer timelines remote as in-process, colliding fabricated
// StrIds never cross-contaminating after remap — plus the connection
// lifecycle: truncated frames, hostile bytes, reconnect with a fresh
// StringDelta epoch, and a daemon killed mid-stream leaving producers
// alive with every loss accounted.
#include "xsp/net/collector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net_test_util.hpp"
#include "xsp/net/endpoint.hpp"
#include "xsp/net/socket.hpp"
#include "xsp/trace/remote_sink.hpp"
#include "xsp/trace/sampler.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/span_sink.hpp"
#include "xsp/trace/wire.hpp"

namespace xsp::net {
namespace {

using testutil::accept_within;
using testutil::read_to_eof;
using testutil::read_until_contains;
using testutil::send_all;
using testutil::uds_endpoint;
using trace::kNoSpan;
using trace::Span;
using trace::SpanId;
using trace::StrId;
using xsp::TimePoint;

template <typename Pred>
bool wait_until(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

/// A collector daemon in miniature: sharded server sink + service running
/// on its own thread, stopped and joined on destruction.
struct RunningCollector {
  trace::ShardedTraceServer server;
  CollectorService service;
  std::thread thread;

  explicit RunningCollector(const Endpoint& ep, CollectorOptions copts = {})
      : server(2, trace::PublishMode::kSync),
        service(ep, server, copts),
        thread([this] { service.run(); }) {}
  ~RunningCollector() { stop(); }

  void stop() {
    service.stop();
    if (thread.joinable()) thread.join();
  }
};

// --- raw wire builders (crafted producer streams) ---------------------------

template <typename T>
void put_pod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

std::string header_bytes() {
  trace::wire::Header h{};
  std::memcpy(h.magic, trace::wire::kMagic, sizeof h.magic);
  h.version = trace::wire::kVersion;
  h.endianness = trace::wire::kEndianMark;
  h.span_size = static_cast<std::uint32_t>(sizeof(Span));
  h.header_size = static_cast<std::uint32_t>(sizeof(trace::wire::Header));
  std::string out;
  put_pod(out, h);
  return out;
}

std::string frame(trace::wire::FrameType type, std::string_view payload,
                  std::int64_t lie_about_size = -1) {
  trace::wire::FrameHeader fh{};
  fh.type = static_cast<std::uint8_t>(type);
  fh.payload_size = lie_about_size >= 0 ? static_cast<std::uint32_t>(lie_about_size)
                                        : static_cast<std::uint32_t>(payload.size());
  std::string out;
  put_pod(out, fh);
  out.append(payload);
  return out;
}

std::string delta_entry(std::uint32_t id, std::string_view s) {
  std::string out;
  put_pod(out, id);
  put_pod(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
  return out;
}

std::string span_batch_payload(const std::vector<Span>& spans) {
  std::string out;
  put_pod(out, static_cast<std::uint32_t>(spans.size()));
  out.append(reinterpret_cast<const char*>(spans.data()), spans.size() * sizeof(Span));
  return out;
}

std::string footer_frame(const trace::wire::Footer& f) {
  std::string payload;
  put_pod(payload, f);
  return frame(trace::wire::FrameType::kFooter, payload);
}

// --- fleet-member publication (identical remote and in-process) -------------

/// Publish one producer's spans into any SpanSink: a parent chain with
/// producer-specific names, levels, and correlation ids — the shape whose
/// per-producer timeline must survive collection unchanged.
void publish_fleet_member(trace::SpanSink& sink, int producer, std::size_t count) {
  const StrId tracer("producer_" + std::to_string(producer));
  SpanId prev = kNoSpan;
  for (std::size_t i = 0; i < count; ++i) {
    Span s;
    s.id = sink.next_span_id();
    s.parent = prev;
    s.level = trace::kKernelLevel;
    s.name = StrId("fleet_op_" + std::to_string(producer) + "_" +
                   std::to_string(i % 5));
    s.tracer = tracer;
    s.begin = static_cast<TimePoint>(i * 10);
    s.end = s.begin + 7;
    if (i % 3 == 0) s.correlation_id = sink.next_correlation_id();
    sink.publish(s);
    prev = s.id;
  }
}

/// Per-producer digest: span count plus the sorted (name, begin, end)
/// multiset — id-free, so it compares across remapped id spaces.
using TimelineDigest = std::vector<std::tuple<std::uint32_t, std::int64_t, std::int64_t>>;

std::map<std::uint32_t, TimelineDigest> digest_by_tracer(const std::vector<Span>& spans) {
  std::map<std::uint32_t, TimelineDigest> out;
  for (const Span& s : spans) {
    out[s.tracer.raw()].emplace_back(s.name.raw(), s.begin, s.end);
  }
  for (auto& [tracer, digest] : out) std::sort(digest.begin(), digest.end());
  return out;
}

// --- end-to-end round trips -------------------------------------------------

TEST(CollectorE2E, UdsRoundTripDeliversEverySpanExactlyOnce) {
  const Endpoint ep = uds_endpoint("col_rt");
  RunningCollector collector(ep);

  trace::RemoteSinkOptions opts;
  opts.batch_spans = 64;
  {
    trace::RemoteSink sink(ep, opts);
    publish_fleet_member(sink, 0, 1000);
    sink.close();  // footer + half-close + wait for the daemon's ack
    EXPECT_EQ(sink.spans_published(), 1000u);
    EXPECT_EQ(sink.spans_sent(), 1000u);
    EXPECT_EQ(sink.spans_dropped(), 0u);
    EXPECT_EQ(sink.reconnects(), 0u);
  }
  collector.stop();

  collector.server.flush();
  EXPECT_EQ(collector.server.span_count(), 1000u);
  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
  EXPECT_EQ(stats.connections_errored, 0u);
  EXPECT_EQ(stats.spans_ingested, 1000u);
  EXPECT_EQ(stats.footers_seen, 1u);
  EXPECT_GT(stats.bytes_received, 1000u * sizeof(Span));

  // Names arrived through the re-intern remap, not raw id reuse.
  const std::vector<Span> spans = collector.server.take_trace();
  ASSERT_EQ(spans.size(), 1000u);
  for (const Span& s : spans) EXPECT_EQ(s.tracer, "producer_0");
}

TEST(CollectorE2E, TcpEphemeralPortRoundTrips) {
  RunningCollector collector(Endpoint::parse("tcp://127.0.0.1:0"));
  const Endpoint bound = collector.service.endpoint();
  ASSERT_NE(bound.port, 0);

  trace::RemoteSink sink(bound);
  publish_fleet_member(sink, 0, 100);
  sink.close();
  collector.stop();
  collector.server.flush();
  EXPECT_EQ(collector.server.span_count(), 100u);
}

TEST(CollectorE2E, FourProducerFleetMatchesInProcessPublication) {
  // The acceptance criterion: N>=4 external producers through the
  // collector assemble into the same per-producer timelines as publishing
  // into a sharded server in-process — exact span counts, names equal.
  constexpr int kProducers = 4;
  constexpr std::size_t kSpansEach = 400;

  trace::ShardedTraceServer reference(2, trace::PublishMode::kSync);
  for (int p = 0; p < kProducers; ++p) publish_fleet_member(reference, p, kSpansEach);
  reference.flush();

  const Endpoint ep = uds_endpoint("col_fleet");
  RunningCollector collector(ep);
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&ep, p, kSpansEach] {
        trace::RemoteSinkOptions opts;
        opts.batch_spans = 32;
        trace::RemoteSink sink(ep, opts);
        publish_fleet_member(sink, p, kSpansEach);
        sink.close();
        EXPECT_EQ(sink.spans_sent(), kSpansEach);
        EXPECT_EQ(sink.spans_dropped(), 0u);
      });
    }
    for (std::thread& t : producers) t.join();
  }
  collector.stop();
  collector.server.flush();

  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kProducers));
  EXPECT_EQ(stats.footers_seen, static_cast<std::uint64_t>(kProducers));
  EXPECT_EQ(stats.spans_ingested, kProducers * kSpansEach);

  const std::vector<Span> collected = collector.server.take_trace();
  const std::vector<Span> expected = reference.take_trace();
  ASSERT_EQ(collected.size(), expected.size());
  EXPECT_EQ(digest_by_tracer(collected), digest_by_tracer(expected));

  // Remapped ids stay producer-coherent: every parent reference resolves
  // within its own producer's id set — never into another producer's.
  std::map<std::uint32_t, std::vector<const Span*>> groups;
  for (const Span& s : collected) groups[s.tracer.raw()].push_back(&s);
  ASSERT_EQ(groups.size(), static_cast<std::size_t>(kProducers));
  for (const auto& [tracer, spans] : groups) {
    std::vector<SpanId> ids;
    for (const Span* s : spans) ids.push_back(s->id);
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "duplicate remapped span id within a producer";
    for (const Span* s : spans) {
      if (s->parent == kNoSpan) continue;
      EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), s->parent))
          << "parent remapped outside its producer's id set";
    }
  }
}

// --- crafted-stream isolation and hostility ---------------------------------

TEST(CollectorE2E, CollidingFabricatedStrIdsNeverCrossContaminate) {
  // Two producers whose streams fabricate the *same* string id with
  // different contents, interleaved on the wire. Per-connection remap
  // must keep them apart; shared-table reuse would swap names.
  constexpr std::uint32_t kNameId = 0x00CC0001;
  constexpr std::uint32_t kTracerId = 0x00CC0002;
  const auto stream_parts = [&](std::string_view name, std::string_view tracer,
                                std::uint64_t footer_drops, std::uint64_t footer_reconnects) {
    std::string delta = delta_entry(kNameId, name);
    delta += delta_entry(kTracerId, tracer);
    Span s;
    s.id = 77;  // identical producer-local span id on both streams
    s.name = StrId::from_raw(kNameId);
    s.tracer = StrId::from_raw(kTracerId);
    s.begin = 5;
    s.end = 9;
    trace::wire::Footer f{};
    f.span_count = 1;
    f.remote_dropped_spans = footer_drops;
    f.remote_reconnects = footer_reconnects;
    return std::make_pair(
        header_bytes() + frame(trace::wire::FrameType::kStringDelta, delta),
        frame(trace::wire::FrameType::kSpanBatch, span_batch_payload({s})) +
            footer_frame(f));
  };
  const auto [a_head, a_tail] = stream_parts("collide_alpha", "collider_tracer_a", 3, 1);
  const auto [b_head, b_tail] = stream_parts("collide_beta", "collider_tracer_b", 4, 2);

  const Endpoint ep = uds_endpoint("col_collide");
  RunningCollector collector(ep);
  Socket a = try_connect(ep, 1000);
  Socket b = try_connect(ep, 1000);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  // Interleave the two streams so both remaps are live simultaneously.
  ASSERT_TRUE(send_all(a, a_head));
  ASSERT_TRUE(send_all(b, b_head));
  ASSERT_TRUE(send_all(a, a_tail));
  ASSERT_TRUE(send_all(b, b_tail));
  a.shutdown_write();
  b.shutdown_write();
  (void)read_to_eof(a);  // daemon ack
  (void)read_to_eof(b);
  collector.stop();

  collector.server.flush();
  const std::vector<Span> spans = collector.server.take_trace();
  ASSERT_EQ(spans.size(), 2u);
  const Span* alpha = nullptr;
  const Span* beta = nullptr;
  for (const Span& s : spans) {
    if (s.name == "collide_alpha") alpha = &s;
    if (s.name == "collide_beta") beta = &s;
  }
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(alpha->tracer, "collider_tracer_a");
  EXPECT_EQ(beta->tracer, "collider_tracer_b");
  EXPECT_NE(alpha->id, beta->id) << "colliding producer span ids must remap apart";

  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.footers_seen, 2u);
  EXPECT_EQ(stats.producer_dropped_spans, 7u);  // 3 + 4, summed from footers
  EXPECT_EQ(stats.producer_reconnects, 3u);     // 1 + 2
  EXPECT_EQ(stats.connections_closed, 2u);
  EXPECT_EQ(stats.connections_errored, 0u);
}

TEST(CollectorE2E, TruncatedFrameErrorsConnectionAndDaemonServesOn) {
  const Endpoint ep = uds_endpoint("col_trunc");
  RunningCollector collector(ep);
  {
    Socket cut = try_connect(ep, 1000);
    ASSERT_TRUE(cut.valid());
    // Frame header promises 100 payload bytes; deliver 10 and vanish.
    std::string bytes = header_bytes();
    bytes += frame(trace::wire::FrameType::kSpanBatch, std::string(10, '\x01'),
                   /*lie_about_size=*/100);
    ASSERT_TRUE(send_all(cut, bytes));
  }
  ASSERT_TRUE(wait_until(
      [&] { return collector.service.stats().connections_errored == 1; }))
      << "mid-frame disconnect must count as errored";

  // The daemon took the hit on that connection only; a well-behaved
  // producer connecting next streams normally.
  trace::RemoteSink sink(ep);
  publish_fleet_member(sink, 1, 10);
  sink.close();
  collector.stop();
  collector.server.flush();
  EXPECT_EQ(collector.server.span_count(), 10u);
  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_EQ(stats.connections_closed, 1u);
  EXPECT_EQ(stats.spans_ingested, 10u);
}

TEST(CollectorE2E, HostileBytesAreContainedPerConnection) {
  const Endpoint ep = uds_endpoint("col_hostile");
  RunningCollector collector(ep);
  {
    Socket junk = try_connect(ep, 1000);
    ASSERT_TRUE(junk.valid());
    ASSERT_TRUE(send_all(junk, "JUNKJUNKJUNKJUNK"));  // 16 bytes of non-header
    junk.shutdown_write();
    (void)read_to_eof(junk);  // daemon closes on the WireError
  }
  {
    Socket oversized = try_connect(ep, 1000);
    ASSERT_TRUE(oversized.valid());
    std::string bytes = header_bytes();
    bytes += frame(trace::wire::FrameType::kSpanBatch, "",
                   static_cast<std::int64_t>(trace::wire::kMaxFramePayload) + 1);
    ASSERT_TRUE(send_all(oversized, bytes));
    oversized.shutdown_write();
    (void)read_to_eof(oversized);
  }
  ASSERT_TRUE(wait_until(
      [&] { return collector.service.stats().connections_errored == 2; }));

  trace::RemoteSink sink(ep);
  publish_fleet_member(sink, 2, 5);
  sink.close();
  collector.stop();
  collector.server.flush();
  EXPECT_EQ(collector.server.span_count(), 5u);
  EXPECT_EQ(collector.service.stats().spans_ingested, 5u);
}

TEST(CollectorE2E, ConfiguredFrameBoundIsEnforced) {
  const Endpoint ep = uds_endpoint("col_bound");
  CollectorOptions copts;
  copts.max_frame_payload = 1024;  // tighter than the format's 64 MiB cap
  RunningCollector collector(ep, copts);
  Socket s = try_connect(ep, 1000);
  ASSERT_TRUE(s.valid());
  std::string bytes = header_bytes();
  bytes += frame(trace::wire::FrameType::kStringDelta, "", /*lie_about_size=*/4096);
  ASSERT_TRUE(send_all(s, bytes));
  EXPECT_TRUE(wait_until(
      [&] { return collector.service.stats().connections_errored == 1; }));
  collector.stop();
  EXPECT_EQ(collector.service.stats().spans_ingested, 0u);
}

// --- connection lifecycle ---------------------------------------------------

TEST(CollectorE2E, GracefulDrainConsumesStreamInFlightAtStop) {
  const Endpoint ep = uds_endpoint("col_drain");
  CollectorOptions copts;
  copts.drain_timeout_ms = 3000;
  RunningCollector collector(ep, copts);

  Socket producer = try_connect(ep, 1000);
  ASSERT_TRUE(producer.valid());
  Span s;
  s.id = 1;
  s.name = StrId("drain_op");
  s.tracer = StrId("drain_tracer");
  s.begin = 0;
  s.end = 1;
  std::string bytes = header_bytes();
  bytes += frame(trace::wire::FrameType::kStringDelta,
                 delta_entry(s.name.raw(), "drain_op") +
                     delta_entry(s.tracer.raw(), "drain_tracer"));
  bytes += frame(trace::wire::FrameType::kSpanBatch, span_batch_payload({s}));
  ASSERT_TRUE(send_all(producer, bytes));
  ASSERT_TRUE(wait_until(
      [&] { return collector.service.stats().spans_ingested == 1; }));

  // Stop with the connection still open: the drain phase must keep
  // consuming it until our half-close, then ack — not cut it off.
  collector.service.stop();
  trace::wire::Footer f{};
  f.span_count = 1;
  ASSERT_TRUE(send_all(producer, footer_frame(f)));
  producer.shutdown_write();
  (void)read_to_eof(producer);
  collector.stop();

  const CollectorStats stats = collector.service.stats();
  EXPECT_EQ(stats.footers_seen, 1u);
  EXPECT_EQ(stats.connections_closed, 1u);
  EXPECT_EQ(stats.connections_errored, 0u);
}

TEST(RemoteSinkLifecycle, ReconnectOpensFreshStreamAndStringDeltaEpoch) {
  const Endpoint ep = uds_endpoint("col_epoch");
  Listener listener(ep);  // this test plays the daemon, byte-level

  trace::RemoteSinkOptions opts;
  opts.batch_spans = 1;  // every publish seals and sends promptly
  opts.backoff_initial_ms = 10;
  opts.backoff_max_ms = 100;
  opts.drain_timeout_ms = 300;
  trace::RemoteSink sink(ep, opts);

  Span first;
  first.id = sink.next_span_id();
  first.name = StrId("epoch_marker_string");
  first.tracer = StrId("epoch_tracer");
  first.begin = 0;
  first.end = 1;
  sink.publish(first);

  Socket conn_a = accept_within(listener);
  ASSERT_TRUE(conn_a.valid());
  std::string a_bytes;
  ASSERT_TRUE(read_until_contains(conn_a, a_bytes, "epoch_marker_string"));
  ASSERT_GE(a_bytes.size(), sizeof(trace::wire::Header));
  EXPECT_EQ(a_bytes.compare(0, 4, "XSPB"), 0);
  conn_a.close();  // daemon dies mid-stream

  // Keep publishing until the sink notices and re-establishes.
  std::thread prodder([&] {
    while (sink.reconnects() == 0) {
      Span filler;
      filler.id = sink.next_span_id();
      filler.name = StrId("epoch_filler");
      filler.tracer = StrId("epoch_tracer");
      filler.begin = 2;
      filler.end = 3;
      sink.publish(filler);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  Socket conn_b = accept_within(listener, 10000);
  prodder.join();
  ASSERT_TRUE(conn_b.valid());
  EXPECT_EQ(sink.reconnects(), 1u);

  // The new connection is a complete stream on its own: fresh header,
  // and the delta epoch restarts from cursor zero — a string already
  // shipped on connection A ships again.
  std::string b_bytes;
  ASSERT_TRUE(read_until_contains(conn_b, b_bytes, "epoch_marker_string"))
      << "reconnect must replay the string table from scratch";
  ASSERT_GE(b_bytes.size(), sizeof(trace::wire::Header));
  EXPECT_EQ(b_bytes.compare(0, 4, "XSPB"), 0);

  // Ack the close handshake so close() returns via the protocol, not the
  // timeout: consume to EOF (the footer) then close our end.
  std::thread acker([&] {
    (void)read_to_eof(conn_b);
    conn_b.close();
  });
  sink.close();
  acker.join();
}

TEST(RemoteSinkLifecycle, DaemonDeathLeavesProducerAliveWithAccountedDrops) {
  const Endpoint ep = uds_endpoint("col_death");
  CollectorOptions copts;
  copts.drain_timeout_ms = 100;
  auto collector = std::make_unique<RunningCollector>(ep, copts);

  trace::RemoteSinkOptions opts;
  opts.batch_spans = 16;
  opts.max_outbox_spans = 128;  // small: drops surface quickly once dead
  opts.connect_timeout_ms = 100;
  opts.backoff_initial_ms = 10;
  opts.backoff_max_ms = 50;
  opts.drain_timeout_ms = 200;
  trace::RemoteSink sink(ep, opts);

  publish_fleet_member(sink, 0, 100);
  sink.flush();
  ASSERT_TRUE(wait_until(
      [&] { return collector->service.stats().spans_ingested > 0; }))
      << "producer must be mid-stream before the daemon dies";

  collector.reset();  // daemon killed: connection cut, endpoint gone

  // The producer thread keeps publishing; the sink must absorb the death
  // without blocking or throwing, and account every span it sheds.
  std::size_t extra = 0;
  while (sink.spans_dropped() == 0 && extra < 100000) {
    Span s;
    s.id = sink.next_span_id();
    s.name = StrId("death_op");
    s.tracer = StrId("death_tracer");
    s.begin = 0;
    s.end = 1;
    sink.publish(s);
    ++extra;
  }
  EXPECT_GT(sink.spans_dropped(), 0u)
      << "a dead daemon must surface as accounted drops, not silence";

  sink.close();  // must not wedge against the unreachable endpoint
  EXPECT_EQ(sink.spans_published(), 100u + extra);
  EXPECT_EQ(sink.spans_sent() + sink.spans_dropped(), sink.spans_published())
      << "every span ends up either sent or accounted dropped";
}

// --- wire v3 heartbeats: producer health at the daemon ----------------------

std::string heartbeat_frame(const trace::wire::Heartbeat& hb) {
  std::string payload;
  put_pod(payload, hb);
  return frame(trace::wire::FrameType::kHeartbeat, payload);
}

std::string v1_header_bytes() {
  std::string out = header_bytes();
  const auto version = std::uint16_t{1};
  std::memcpy(out.data() + 4, &version, sizeof version);  // Header::version
  return out;
}

/// One full scrape against the daemon's metrics endpoint: raw HTTP/1.0
/// exchange, returns the response body (empty on any failure).
std::string scrape_metrics(const Endpoint& ep) {
  Socket s = try_connect(ep, 1000);
  if (!s.valid()) return {};
  if (!send_all(s, "GET /metrics HTTP/1.0\r\n\r\n")) return {};
  const std::string resp = read_to_eof(s);
  const std::size_t split = resp.find("\r\n\r\n");
  if (split == std::string::npos) return {};
  if (resp.compare(0, 15, "HTTP/1.0 200 OK") != 0) return {};
  return resp.substr(split + 4);
}

TEST(CollectorHeartbeat, HeartbeatIngestExposesPerProducerSeriesAndStaleness) {
  const Endpoint ep = uds_endpoint("col_hb");
  CollectorOptions copts;
  copts.metrics_endpoint = "tcp://127.0.0.1:0";
  copts.heartbeat_stale_ms = 150;
  RunningCollector collector(ep, copts);
  ASSERT_NE(collector.service.metrics_endpoint(), nullptr);
  const Endpoint scrape_ep = *collector.service.metrics_endpoint();

  // A v3 producer announces itself with a heartbeat carrying its counters.
  Socket producer = try_connect(ep, 1000);
  ASSERT_TRUE(producer.valid());
  trace::wire::Heartbeat hb{};
  hb.sequence = 1;
  hb.spans_published = 500;
  hb.spans_sent = 450;
  hb.spans_dropped = 40;
  hb.spans_shed = 10;
  hb.sampled_kept = 400;
  hb.sampled_dropped = 100;
  hb.reconnects = 2;
  hb.outbox_spans = 17;
  ASSERT_TRUE(send_all(producer, header_bytes() + heartbeat_frame(hb)));
  ASSERT_TRUE(wait_until(
      [&] { return collector.service.stats().heartbeats_seen == 1; }));

  // Fresh heartbeat: the producer's own counters are on /metrics, labeled
  // by its connection, and it is not stale.
  std::string body = scrape_metrics(scrape_ep);
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("xsp_producer_published_spans_total{conn=\"1\"} 500"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("xsp_producer_sent_spans_total{conn=\"1\"} 450"), std::string::npos);
  EXPECT_NE(body.find("xsp_producer_dropped_spans_total{conn=\"1\"} 40"), std::string::npos);
  EXPECT_NE(body.find("xsp_producer_shed_spans_total{conn=\"1\"} 10"), std::string::npos);
  EXPECT_NE(body.find("xsp_producer_reconnects_total{conn=\"1\"} 2"), std::string::npos);
  EXPECT_NE(body.find("xsp_producer_outbox_spans{conn=\"1\"} 17"), std::string::npos);
  EXPECT_NE(body.find("xsp_producer_heartbeat_sequence{conn=\"1\"} 1"), std::string::npos);
  EXPECT_NE(body.find("xsp_producer_stale{conn=\"1\"} 0"), std::string::npos);

  // Heartbeats stop but the connection stays open: staleness flips.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  body = scrape_metrics(scrape_ep);
  EXPECT_NE(body.find("xsp_producer_stale{conn=\"1\"} 1"), std::string::npos)
      << "a silent producer must be flagged stale\n" << body;

  // A later heartbeat revives it — latest wins, staleness clears.
  hb.sequence = 2;
  hb.spans_published = 600;
  ASSERT_TRUE(send_all(producer, heartbeat_frame(hb)));
  ASSERT_TRUE(wait_until(
      [&] { return collector.service.stats().heartbeats_seen == 2; }));
  body = scrape_metrics(scrape_ep);
  EXPECT_NE(body.find("xsp_producer_published_spans_total{conn=\"1\"} 600"),
            std::string::npos);
  EXPECT_NE(body.find("xsp_producer_stale{conn=\"1\"} 0"), std::string::npos);

  producer.shutdown_write();
  (void)read_to_eof(producer);
  collector.stop();
  EXPECT_EQ(collector.service.stats().connections_errored, 0u);
}

TEST(CollectorHeartbeat, PreV3ProducersGetConnectionSeriesButNoHealthSeries) {
  const Endpoint ep = uds_endpoint("col_hb_v1");
  CollectorOptions copts;
  copts.metrics_endpoint = "tcp://127.0.0.1:0";
  RunningCollector collector(ep, copts);
  const Endpoint scrape_ep = *collector.service.metrics_endpoint();

  // A v1 producer streams a span; it can never send heartbeats, so it
  // must get per-connection transport series but no xsp_producer_* ones —
  // absence, not fabricated zeros (silence is not health data).
  Socket producer = try_connect(ep, 1000);
  ASSERT_TRUE(producer.valid());
  Span s;
  s.id = 1;
  s.name = StrId("v1_op");
  s.tracer = StrId("v1_tracer");
  s.begin = 0;
  s.end = 1;
  std::string bytes = v1_header_bytes();
  bytes += frame(trace::wire::FrameType::kStringDelta,
                 delta_entry(s.name.raw(), "v1_op") +
                     delta_entry(s.tracer.raw(), "v1_tracer"));
  bytes += frame(trace::wire::FrameType::kSpanBatch, span_batch_payload({s}));
  ASSERT_TRUE(send_all(producer, bytes));
  ASSERT_TRUE(wait_until(
      [&] { return collector.service.stats().spans_ingested == 1; }));

  const std::string body = scrape_metrics(scrape_ep);
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("xsp_connection_spans_total{conn=\"1\"} 1"), std::string::npos);
  EXPECT_EQ(body.find("xsp_producer_"), std::string::npos)
      << "v1/v2 connections must not fabricate producer-health series\n" << body;
  EXPECT_NE(body.find("xsp_ingested_spans_total 1"), std::string::npos);

  producer.shutdown_write();
  (void)read_to_eof(producer);
  collector.stop();
}

TEST(CollectorHeartbeat, RemoteSinkHeartbeatsFlowEndToEnd) {
  const Endpoint ep = uds_endpoint("col_hb_e2e");
  CollectorOptions copts;
  copts.metrics_endpoint = "tcp://127.0.0.1:0";
  RunningCollector collector(ep, copts);
  const Endpoint scrape_ep = *collector.service.metrics_endpoint();

  trace::RemoteSinkOptions opts;
  opts.heartbeat_interval_ms = 30;
  trace::RemoteSink sink(ep, opts);
  publish_fleet_member(sink, 0, 50);
  sink.flush();
  ASSERT_TRUE(wait_until(
      [&] { return collector.service.stats().heartbeats_seen >= 2; }))
      << "a live RemoteSink must beacon on its configured cadence";

  const std::string body = scrape_metrics(scrape_ep);
  EXPECT_NE(body.find("xsp_producer_published_spans_total{conn=\"1\"} 50"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("xsp_producer_stale{conn=\"1\"} 0"), std::string::npos);

  sink.close();
  collector.stop();
  EXPECT_GE(sink.heartbeats_sent(), 2u);
  EXPECT_EQ(collector.service.stats().connections_errored, 0u);
  // After the connection closes its per-producer series are gone from the
  // scrape state; the aggregate heartbeat counter is what persists.
  EXPECT_GE(collector.service.stats().heartbeats_seen, 2u);
}

// --- sampling admission & selective shedding ------------------------------

TEST(RemoteSinkSampling, PublishAdmissionHoldsTheInvariant) {
  const Endpoint ep = uds_endpoint("col_sample");
  RunningCollector collector(ep);

  trace::RemoteSinkOptions opts;
  opts.batch_spans = 32;
  trace::RemoteSink sink(ep, opts);
  trace::SamplerOptions sopts;
  sopts.rate = 0.25;
  sink.set_sampler(std::make_shared<const trace::Sampler>(sopts));

  constexpr std::size_t kSpans = 4000;
  for (std::size_t i = 0; i < kSpans; ++i) {
    Span s;
    s.id = sink.next_span_id();
    s.name = StrId("sampled_op");
    s.tracer = StrId("sampled_tracer");
    s.begin = static_cast<TimePoint>(i * 10);
    s.end = s.begin + 7;
    s.correlation_id = sink.next_correlation_id();
    sink.publish(s);
  }
  sink.close();

  EXPECT_EQ(sink.spans_published(), kSpans);
  EXPECT_GT(sink.spans_sampled_dropped(), 0u);
  EXPECT_GT(sink.spans_sampled_kept(), 0u);
  EXPECT_EQ(sink.spans_sampled_kept() + sink.spans_sampled_dropped(), kSpans)
      << "every publish lands in exactly one admission bucket";
  // The close() invariant with sampling: sampled-out spans are their own
  // bucket, disjoint from congestion/disconnect drops.
  EXPECT_EQ(sink.spans_sent() + sink.spans_dropped() + sink.spans_sampled_dropped(),
            sink.spans_published());
  // Only admitted spans reached the daemon.
  EXPECT_EQ(collector.service.stats().spans_ingested, sink.spans_sent());
}

TEST(RemoteSinkSampling, BackpressureShedsSelectivelyBeforeBlindDrops) {
  // No daemon at the endpoint: the outbox fills, and with a sampler
  // attached the sink must shed low-value spans selectively (counted in
  // spans_shed) rather than only dropping whole batches blind.
  const Endpoint ep = uds_endpoint("col_shed_none");
  trace::RemoteSinkOptions opts;
  opts.batch_spans = 16;
  opts.max_outbox_spans = 64;
  opts.connect_timeout_ms = 50;
  opts.backoff_initial_ms = 10;
  opts.backoff_max_ms = 50;
  opts.drain_timeout_ms = 100;
  trace::RemoteSink sink(ep, opts);
  trace::SamplerOptions sopts;
  sopts.rate = 1.0;  // admit everything; shedding is the pressure path
  sopts.tail_keep_ns = 1000;
  sink.set_sampler(std::make_shared<const trace::Sampler>(sopts));

  constexpr std::size_t kSpans = 20000;
  for (std::size_t i = 0; i < kSpans; ++i) {
    Span s;
    s.id = sink.next_span_id();
    s.name = StrId("shed_op");
    s.tracer = StrId("shed_tracer");
    s.begin = 0;
    s.end = i % 100 == 0 ? 2000 : 10;  // a 1% tail the shed must keep
    s.correlation_id = sink.next_correlation_id();
    sink.publish(s);
  }
  sink.close();

  EXPECT_EQ(sink.spans_published(), kSpans);
  EXPECT_GT(sink.spans_shed(), 0u) << "pressure must shed selectively with a sampler";
  EXPECT_LE(sink.spans_shed(), sink.spans_dropped())
      << "sheds are an of-which breakdown of total drops";
  EXPECT_EQ(sink.spans_sampled_dropped(), 0u) << "rate 1.0 rejects nothing at admission";
  EXPECT_EQ(sink.spans_sent() + sink.spans_dropped(), sink.spans_published());
}

}  // namespace
}  // namespace xsp::net
