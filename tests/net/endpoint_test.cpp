// Endpoint URI parsing and the RxBuffer reassembly primitive — the two
// pure (fd-free) pieces of the net layer.
#include "xsp/net/endpoint.hpp"

#include <gtest/gtest.h>

#include <string>

#include "xsp/net/socket.hpp"

namespace xsp::net {
namespace {

TEST(Endpoint, ParsesUnixPath) {
  const Endpoint ep = Endpoint::parse("unix:/tmp/xsp.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/tmp/xsp.sock");
  EXPECT_EQ(ep.uri(), "unix:/tmp/xsp.sock");
}

TEST(Endpoint, ToleratesTripleSlashUnixForm) {
  // "unix:///path" is the common URI spelling; both resolve to /path.
  const Endpoint ep = Endpoint::parse("unix:///run/xsp/collect.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep.path, "/run/xsp/collect.sock");
}

TEST(Endpoint, ParsesTcpHostPort) {
  const Endpoint ep = Endpoint::parse("tcp://127.0.0.1:7450");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7450);
  EXPECT_EQ(ep.uri(), "tcp://127.0.0.1:7450");
}

TEST(Endpoint, ParsesTcpPortZeroForEphemeralBind) {
  const Endpoint ep = Endpoint::parse("tcp://localhost:0");
  EXPECT_EQ(ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep.port, 0);
}

TEST(Endpoint, RejectsMalformedUris) {
  EXPECT_THROW(Endpoint::parse(""), NetError);
  EXPECT_THROW(Endpoint::parse("/tmp/no-scheme.sock"), NetError);
  EXPECT_THROW(Endpoint::parse("udp://127.0.0.1:1"), NetError);
  EXPECT_THROW(Endpoint::parse("unix:"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp://hostonly"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp://h:notaport"), NetError);
  EXPECT_THROW(Endpoint::parse("tcp://h:70000"), NetError);
}

TEST(Endpoint, RejectsUnixPathBeyondSunPathLimit) {
  // sockaddr_un::sun_path is ~108 bytes; a longer path must fail at
  // parse time, not as a silent truncation at bind.
  const std::string long_path = "unix:/" + std::string(200, 'x');
  EXPECT_THROW(Endpoint::parse(long_path), NetError);
}

TEST(RxBuffer, AppendsAndConsumesAcrossChunkBoundaries) {
  RxBuffer rx;
  rx.append("abc");
  rx.append("defgh");
  EXPECT_EQ(rx.size(), 8u);
  EXPECT_EQ(rx.data(), "abcdefgh");
  rx.consume(3);
  EXPECT_EQ(rx.data(), "defgh");
  rx.consume(5);
  EXPECT_EQ(rx.size(), 0u);
}

TEST(RxBuffer, TrickleConsumptionStaysCoherent) {
  // One-byte-per-tick consumption (the pattern that would go quadratic
  // with eager memmove) must keep data() exact throughout.
  RxBuffer rx;
  std::string all;
  for (int i = 0; i < 10000; ++i) all += static_cast<char>('a' + i % 26);
  rx.append(all);
  std::string seen;
  while (rx.size() > 0) {
    seen += rx.data()[0];
    rx.consume(1);
  }
  EXPECT_EQ(seen, all);
}

TEST(RxBuffer, ClearResetsEverything) {
  RxBuffer rx;
  rx.append("leftover frame bytes");
  rx.consume(4);
  rx.clear();
  EXPECT_EQ(rx.size(), 0u);
  rx.append("fresh");
  EXPECT_EQ(rx.data(), "fresh");
}

}  // namespace
}  // namespace xsp::net
