// Figure 3: throughput of MLPerf_ResNet50_v1.5 across batch sizes on
// Tesla_V100, plus the A1 optimal-batch computation (paper: optimal 256,
// max 930.7 inputs/sec, batch latency 275.05 ms).
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Figure 3 / A1 — throughput across batch sizes",
                "paper Fig. 3 + Section III-D1");

  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto info = analysis::model_information(runner, bench::resnet50(), 512);

  report::TextTable t({"Batch", "Latency (ms)", "Inputs/sec"});
  for (const auto& pt : info.points) {
    t.add_row({std::to_string(pt.batch), fmt_fixed(pt.latency_ms, 2),
               fmt_fixed(pt.throughput(), 1)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("optimal batch (5%% doubling rule): %lld   max throughput: %.1f inputs/sec\n",
              static_cast<long long>(info.optimal_batch), info.max_throughput);
  std::printf("paper:                             256    930.7 inputs/sec (275.05 ms batch "
              "latency)\n");
  bench::footnote_shape();
  return 0;
}
