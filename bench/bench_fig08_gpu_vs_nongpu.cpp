// Figure 8: normalized GPU vs non-GPU latency per layer (A13) for
// MLPerf_ResNet50_v1.5 @ batch 256 on Tesla_V100.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Figure 8 / A13 — GPU vs non-GPU latency per layer",
                "paper Fig. 8: most layers are GPU-dominated; non-GPU time (framework "
                "overhead, launch gaps) shows up on short layers");

  const auto result = bench::resnet50_leveled();
  const auto rows = analysis::a13_gpu_vs_nongpu(result.profile);

  double gpu_total = 0;
  double layer_total = 0;
  int mostly_cpu = 0;
  for (const auto& r : rows) {
    gpu_total += r.gpu_ms;
    layer_total += r.layer_ms;
    if (r.gpu_pct < 50.0) ++mostly_cpu;
  }
  std::printf("aggregate GPU share of layer time: %.1f%%   layers below 50%% GPU: %d of %zu\n\n",
              100.0 * gpu_total / layer_total, mostly_cpu, rows.size());

  report::TextTable t({"layer_index", "layer_ms", "gpu_ms", "non_gpu_ms", "gpu_pct"});
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.index), fmt_fixed(r.layer_ms, 3), fmt_fixed(r.gpu_ms, 3),
               fmt_fixed(r.non_gpu_ms, 3), fmt_fixed(r.gpu_pct, 1)});
  }
  std::printf("full series (CSV):\n%s", t.csv().c_str());
  bench::footnote_shape();
  return 0;
}
