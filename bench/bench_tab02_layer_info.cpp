// Table II: the top-5 most time-consuming layers (A2) of
// MLPerf_ResNet50_v1.5 @ batch 256 on Tesla_V100.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Table II / A2 — top-5 most time-consuming layers",
                "paper Table II: conv2d_48 7.59 ms, conv2d_51 7.57 ms, conv2d_45 5.67 ms, "
                "conv2d 5.08 ms, conv2d_26 4.67 ms; 234 layers total, 143 under 1 ms");

  const auto result = bench::resnet50_leveled();
  const auto& profile = result.profile;

  report::TextTable t({"Layer Index", "Layer Name", "Layer Type", "Layer Shape", "Latency (ms)",
                       "Alloc Mem (MB)"});
  for (const auto& row : analysis::top_layers_by_latency(profile, 5)) {
    t.add_row({std::to_string(row.index), row.name, row.type, row.shape,
               fmt_fixed(row.latency_ms, 2), fmt_fixed(row.alloc_mb, 1)});
  }
  std::printf("%s\n", t.str().c_str());

  int under_1ms = 0;
  for (const auto& l : profile.layers) {
    if (to_ms(l.latency) < 1.0) ++under_1ms;
  }
  std::printf("layers: %zu total, %d under 1 ms (paper: 234 total, 143 under 1 ms)\n",
              profile.layers.size(), under_1ms);
  bench::footnote_shape();
  return 0;
}
