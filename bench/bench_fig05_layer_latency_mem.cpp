// Figure 5: per-layer (a) latency (A3) and (b) memory allocation (A4) in
// execution order for MLPerf_ResNet50_v1.5, summarized per beginning /
// middle / end interval (the paper's reading: latency and allocation
// concentrate in the early layers).
#include "common.hpp"

namespace {

void print_series(const char* name, const std::vector<double>& xs, const char* unit) {
  const std::size_t n = xs.size();
  double sums[3] = {0, 0, 0};
  double peaks[3] = {0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t stage = std::min<std::size_t>(2, i * 3 / std::max<std::size_t>(1, n));
    sums[stage] += xs[i];
    peaks[stage] = std::max(peaks[stage], xs[i]);
  }
  std::printf("%s per interval (%s): beginning %.1f (peak %.1f) | middle %.1f (peak %.1f) | "
              "end %.1f (peak %.1f)\n",
              name, unit, sums[0], peaks[0], sums[1], peaks[1], sums[2], peaks[2]);
}

}  // namespace

int main() {
  using namespace xsp;
  bench::header("Figure 5 / A3-A4 — per-layer latency & memory allocation",
                "paper Fig. 5: both series concentrate in the beginning interval");

  const auto result = bench::resnet50_leveled();
  const auto latency = analysis::a3_layer_latency_us(result.profile);
  const auto alloc = analysis::a4_layer_alloc_mb(result.profile);

  print_series("A3 latency", latency, "us");
  print_series("A4 allocation", alloc, "MB");

  // Emit the full series as CSV for plotting.
  report::TextTable t({"layer_index", "latency_us", "alloc_mb"});
  for (std::size_t i = 0; i < latency.size(); ++i) {
    t.add_row({std::to_string(i), fmt_fixed(latency[i], 1), fmt_fixed(alloc[i], 2)});
  }
  std::printf("\nfull series (CSV):\n%s", t.csv().c_str());
  bench::footnote_shape();
  return 0;
}
