// Shared helpers for the per-table / per-figure bench binaries.
//
// Every bench regenerates one table or figure of the paper and, where the
// paper reports concrete values, prints them side by side with our
// simulated measurements. Absolute agreement is not expected (the substrate
// is a simulator, not the authors' testbed); the *shape* — who wins, by
// roughly what factor, where crossovers fall — is the reproduction target.
#pragma once

#include <cstdio>
#include <string>

#include "xsp/analysis/analyses.hpp"
#include "xsp/analysis/batch_sweep.hpp"
#include "xsp/common/format.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace xsp::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n\n");
}

inline const models::ModelInfo& resnet50() {
  return *models::find_tensorflow_model("MLPerf_ResNet50_v1.5");
}

/// The headline configuration of the paper's Section III-D examples:
/// MLPerf_ResNet50_v1.5, TensorFlow, Tesla_V100, batch 256.
inline profile::LeveledResult resnet50_leveled(bool gpu_metrics = true,
                                               std::int64_t batch = 256) {
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  return runner.run_model(resnet50(), batch, gpu_metrics);
}

inline std::string yes_no(bool memory_bound) { return memory_bound ? "yes" : "no"; }

inline void footnote_shape() {
  std::printf(
      "\n(note: simulated substrate; compare shapes/ratios with the paper, not digits)\n");
}

}  // namespace xsp::bench
