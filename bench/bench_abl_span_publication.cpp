// Ablation: synchronous vs asynchronous span publication.
//
// Section III-B: XSP publishes CUPTI-derived spans "asynchronously to
// avoid added overhead". This google-benchmark ablation measures the real
// host-side cost a tracer pays per publish under both server modes, and
// under publisher contention.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "xsp/trace/trace_server.hpp"

namespace {

using xsp::trace::PublishMode;
using xsp::trace::Span;
using xsp::trace::TraceServer;

Span make_span(TraceServer& server, int i) {
  Span s;
  s.id = server.next_span_id();
  s.name = "volta_scudnn_128x64_relu_interior_nn_v1";
  s.begin = i * 100;
  s.end = i * 100 + 90;
  return s;
}

void BM_PublishSync(benchmark::State& state) {
  TraceServer server(PublishMode::kSync);
  int i = 0;
  for (auto _ : state) {
    server.publish(make_span(server, i++));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PublishAsync(benchmark::State& state) {
  TraceServer server(PublishMode::kAsync);
  int i = 0;
  for (auto _ : state) {
    server.publish(make_span(server, i++));
  }
  server.flush();
  state.SetItemsProcessed(state.iterations());
}

void BM_PublishAsyncContended(benchmark::State& state) {
  // Multiple tracers publish concurrently (model + layer + GPU tracers).
  for (auto _ : state) {
    TraceServer server(PublishMode::kAsync);
    std::vector<std::thread> tracers;
    for (int t = 0; t < 4; ++t) {
      tracers.emplace_back([&server] {
        for (int i = 0; i < 1000; ++i) server.publish(make_span(server, i));
      });
    }
    for (auto& t : tracers) t.join();
    server.flush();
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}

BENCHMARK(BM_PublishSync);
BENCHMARK(BM_PublishAsync);
BENCHMARK(BM_PublishAsyncContended)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
