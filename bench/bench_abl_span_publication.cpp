// Ablation: span-publication throughput through the trace server.
//
// Section III-B: XSP publishes CUPTI-derived spans "asynchronously to
// avoid added overhead". This google-benchmark ablation measures the real
// host-side cost a tracer pays per span in steady state — publish plus the
// server's aggregation work, with the trace drained periodically the way a
// long-running evaluation drains it per run — under one producer (sync and
// async modes) and under publisher contention (pre-spawned threads, the
// model + layer + GPU tracer shape).
//
// The per-span work is identical across implementations: build a span with
// a realistic kernel name and publish it. Ratios against
// bench/results/BENCH_abl_span_publication_*.json track the span-pipeline
// refactor (interned names + flat annotations + per-thread batch
// publication vs heap strings + std::maps + one global lock).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdio>
#include <memory>

#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

namespace {

using xsp::trace::PublishMode;
using xsp::trace::ShardedTraceServer;
using xsp::trace::Span;
using xsp::trace::SpanBatches;
using xsp::trace::TraceServer;

/// Spans between take_trace() drains: large enough to amortize the drain,
/// small enough that the benchmark measures steady-state publication rather
/// than unbounded trace accumulation.
constexpr std::size_t kDrainEvery = 1 << 16;

template <typename Server>
Span make_span(Server& server, int i) {
  Span s;
  s.id = server.next_span_id();
  s.name = "volta_scudnn_128x64_relu_interior_nn_v1";
  s.begin = i * 100;
  s.end = i * 100 + 90;
  return s;
}

/// Drain through each implementation's intended hand-off: batched servers
/// hand whole batches to the aggregation consumer, the pre-refactor server
/// hands the flat trace vector. (Template so the detection also compiles
/// against the pre-refactor server for A/B runs.)
template <typename Server>
void drain_trace(Server& server) {
  if constexpr (requires { server.take_batches(); }) {
    benchmark::DoNotOptimize(server.take_batches());
  } else {
    benchmark::DoNotOptimize(server.take_trace());
  }
}

void publish_loop(benchmark::State& state, TraceServer& server) {
  std::size_t since_drain = 0;
  int i = 0;
  for (auto _ : state) {
    server.publish(make_span(server, i++));
    if (++since_drain == kDrainEvery) {
      since_drain = 0;
      drain_trace(server);
    }
  }
  drain_trace(server);
  state.SetItemsProcessed(state.iterations());
}

void BM_PublishSync(benchmark::State& state) {
  TraceServer server(PublishMode::kSync);
  publish_loop(state, server);
}

void BM_PublishAsync(benchmark::State& state) {
  TraceServer server(PublishMode::kAsync);
  publish_loop(state, server);
}

/// Multiple tracers publish concurrently (model + layer + GPU tracers).
/// Threads are pre-spawned by the benchmark harness; the drain runs on
/// thread 0 so the measured region is publish traffic, not thread churn.
void BM_PublishContended(benchmark::State& state) {
  static std::unique_ptr<TraceServer> server;
  if (state.thread_index() == 0) server = std::make_unique<TraceServer>(PublishMode::kAsync);

  std::size_t since_drain = 0;
  int i = 0;
  for (auto _ : state) {
    server->publish(make_span(*server, i++));
    if (state.thread_index() == 0 && ++since_drain == kDrainEvery) {
      since_drain = 0;
      drain_trace(*server);
    }
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    drain_trace(*server);
    server.reset();
  }
}

/// The bounded-interning shape: every span carries one *unique*
/// high-cardinality value (a request id) as an inline tag — value bytes
/// formatted into the span record, nothing interned, the string table
/// flat for the whole run. The delta against BM_PublishSync is the
/// marginal cost of snprintf + InlineTagMap::set on the publish path;
/// interning these values instead would grow the table by one entry per
/// iteration forever.
void BM_PublishSyncInlineTag(benchmark::State& state) {
  TraceServer server(PublishMode::kSync);
  const xsp::trace::StrId key{"request_id"};
  std::size_t since_drain = 0;
  int i = 0;
  for (auto _ : state) {
    Span s = make_span(server, i);
    char rid[xsp::trace::InlineTagMap::kValueCapacity + 1];
    std::snprintf(rid, sizeof rid, "req-%d", i);
    s.inline_tags.set(key, rid);
    server.publish(std::move(s));
    ++i;
    if (++since_drain == kDrainEvery) {
      since_drain = 0;
      drain_trace(server);
    }
  }
  drain_trace(server);
  state.SetItemsProcessed(state.iterations());
}

/// Single producer draining through take_batches() + recycle(): the
/// intended steady-state hand-off, where batch buffers circulate through
/// the server freelist instead of being malloc'd/freed per batch.
void BM_PublishSyncRecycled(benchmark::State& state) {
  TraceServer server(PublishMode::kSync);
  std::size_t since_drain = 0;
  int i = 0;
  for (auto _ : state) {
    server.publish(make_span(server, i++));
    if (++since_drain == kDrainEvery) {
      since_drain = 0;
      server.recycle(server.take_batches());
    }
  }
  server.recycle(server.take_batches());
  state.SetItemsProcessed(state.iterations());
}

/// Contended publication through a ShardedTraceServer: the same four
/// pre-spawned publisher threads as BM_PublishContended, fanned out across
/// state.range(0) shards by the thread-hash selector. The merge step
/// (take_batches concatenation + recycle) runs on thread 0. On multicore
/// hardware this is the case that scales with shard count; on one core it
/// shows the fleet does not regress under scheduler churn.
void BM_PublishContendedSharded(benchmark::State& state) {
  static std::unique_ptr<ShardedTraceServer> server;
  if (state.thread_index() == 0) {
    server = std::make_unique<ShardedTraceServer>(static_cast<std::size_t>(state.range(0)),
                                                  PublishMode::kAsync);
  }

  std::size_t since_drain = 0;
  int i = 0;
  for (auto _ : state) {
    server->publish(make_span(*server, i++));
    if (state.thread_index() == 0 && ++since_drain == kDrainEvery) {
      since_drain = 0;
      server->recycle(server->take_batches());
    }
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    server->recycle(server->take_batches());
    server.reset();
  }
}

BENCHMARK(BM_PublishSync);
BENCHMARK(BM_PublishAsync);
BENCHMARK(BM_PublishSyncInlineTag);
BENCHMARK(BM_PublishSyncRecycled);
BENCHMARK(BM_PublishContended)->Threads(4)->UseRealTime();
BENCHMARK(BM_PublishContendedSharded)
    ->ArgName("shards")
    ->Arg(2)
    ->Arg(4)
    ->Threads(4)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
