// Ablation: online-analysis subscriber overhead on the drain path.
//
// The OnlineAnalyzer promises live aggregates without meaningfully taxing
// publication. This bench pins that: steady-state publish + drain
// throughput with no subscriber vs with the analyzer attached (observe
// tee, and consume where the analyzer is the stream's only consumer),
// plus the analyzer's raw aggregation rate over pre-built batches. The
// acceptance target is <10% publish-throughput cost for the attached
// analyzer vs the no-subscriber drain.
//
//   BM_DrainNoSubscriber       publish -> flush -> take -> recycle, no hooks
//   BM_DrainOnlineObserver     same cycle with the analyzer observing
//   BM_DrainOnlineConsumer     publish -> flush; the analyzer consumes
//                              (buffers recycle straight to the freelist)
//   BM_ObserveBatchesOnly      analyzer aggregation alone, no server
#include <benchmark/benchmark.h>

#include <cstdint>

#include "xsp/analysis/online.hpp"
#include "xsp/trace/trace_server.hpp"

namespace {

using namespace xsp;
using namespace xsp::trace;

constexpr std::size_t kSpansPerIter = 4096;

/// Realistic mixed stream: alternating layer and kernel-execution spans
/// with the tags/metrics the analyzer actually reads, a handful of
/// distinct keys (the steady-state shape: key set saturates immediately).
Span make_span(std::size_t i, SpanId id) {
  Span s;
  s.id = id;
  s.begin = static_cast<TimePoint>(i * 1000);
  s.end = s.begin + 700 + static_cast<Ns>((i % 7) * 50);
  if (i % 2 == 0) {
    s.level = kLayerLevel;
    s.kind = SpanKind::kRegular;
    s.name = "conv_layer";
    s.tracer = "framework_profiler";
    s.tags.set("layer_type", i % 4 == 0 ? "Conv2D" : "Relu");
    s.metrics.set("alloc_bytes", 1.5e6);
  } else {
    s.level = kKernelLevel;
    s.kind = SpanKind::kExecution;
    s.name = i % 3 == 0 ? "volta_sgemm_128x64" : "eigen_elementwise";
    s.tracer = "cupti";
    s.tags.set("kind", "kernel");
    s.metrics.set("dram_read_bytes", 2.0e5);
    s.metrics.set("dram_write_bytes", 1.0e5);
  }
  return s;
}

void publish_spans(TraceServer& server) {
  for (std::size_t i = 0; i < kSpansPerIter; ++i) {
    server.publish(make_span(i, server.next_span_id()));
  }
}

void BM_DrainNoSubscriber(benchmark::State& state) {
  TraceServer server(PublishMode::kSync);
  for (auto _ : state) {
    publish_spans(server);
    SpanBatches taken = server.take_batches();
    benchmark::DoNotOptimize(taken.size());
    server.recycle(std::move(taken));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpansPerIter));
}
BENCHMARK(BM_DrainNoSubscriber);

void BM_DrainOnlineObserver(benchmark::State& state) {
  TraceServer server(PublishMode::kSync);
  analysis::OnlineAnalyzer analyzer;
  const SubscriberId sub =
      server.add_drain_subscriber(analyzer.subscriber(), DrainHandoff::kObserve);
  for (auto _ : state) {
    publish_spans(server);
    SpanBatches taken = server.take_batches();
    benchmark::DoNotOptimize(taken.size());
    server.recycle(std::move(taken));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpansPerIter));
  state.counters["spans_aggregated"] =
      static_cast<double>(analyzer.snapshot().spans);
  server.remove_drain_subscriber(sub);
}
BENCHMARK(BM_DrainOnlineObserver);

void BM_DrainOnlineConsumer(benchmark::State& state) {
  TraceServer server(PublishMode::kSync);
  analysis::OnlineAnalyzer analyzer;
  const SubscriberId sub =
      server.add_drain_subscriber(analyzer.subscriber(), DrainHandoff::kConsume);
  for (auto _ : state) {
    publish_spans(server);
    server.flush();  // analyzer consumed everything; nothing to take
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpansPerIter));
  state.counters["spans_aggregated"] =
      static_cast<double>(analyzer.snapshot().spans);
  server.remove_drain_subscriber(sub);
}
BENCHMARK(BM_DrainOnlineConsumer);

void BM_ObserveBatchesOnly(benchmark::State& state) {
  SpanBatches batches;
  SpanBatch batch;
  batch.reserve(TraceServer::kBatchCapacity);
  for (std::size_t i = 0; i < kSpansPerIter; ++i) {
    batch.push_back(make_span(i, static_cast<SpanId>(i + 1)));
    if (batch.size() == TraceServer::kBatchCapacity) {
      batches.push_back(std::move(batch));
      batch = SpanBatch();
      batch.reserve(TraceServer::kBatchCapacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));

  analysis::OnlineAnalyzer analyzer;
  for (auto _ : state) {
    analyzer.observe(batches);
  }
  benchmark::DoNotOptimize(analyzer.snapshot().spans);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpansPerIter));
}
BENCHMARK(BM_ObserveBatchesOnly);

}  // namespace

BENCHMARK_MAIN();
