// Table V: GPU kernel information aggregated by layer (A11) for the top-5
// most time-consuming layers of MLPerf_ResNet50_v1.5.
#include <algorithm>

#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Table V / A11 — kernel information aggregated by layer (top-5 layers)",
      "paper Table V: layers 208/221 ~7.6 ms (79.74 Gflops, ~19.4% occupancy, compute-bound), "
      "layer 3 5.08 ms (62.89 Gflops, AI 202.78)");

  const auto result = bench::resnet50_leveled();
  const auto& gpu = sim::tesla_v100();
  auto rows = analysis::a11_kernel_by_layer(result.profile, gpu);
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.layer_latency_ms > b.layer_latency_ms; });

  report::TextTable t({"Layer Index", "Layer (ms)", "Kernel (ms)", "Gflops", "Reads (MB)",
                       "Writes (MB)", "Occup (%)", "AI", "Tflops/s", "Mem Bound?"});
  for (std::size_t i = 0; i < rows.size() && i < 5; ++i) {
    const auto& r = rows[i];
    t.add_row({std::to_string(r.index), fmt_fixed(r.layer_latency_ms, 2),
               fmt_fixed(r.kernel_latency_ms, 2), fmt_fixed(r.gflops, 2),
               fmt_fixed(r.dram_reads_mb, 2), fmt_fixed(r.dram_writes_mb, 2),
               fmt_fixed(r.occupancy_pct, 2), fmt_fixed(r.arithmetic_intensity, 2),
               fmt_fixed(r.tflops, 2), bench::yes_no(r.memory_bound)});
  }
  std::printf("%s", t.str().c_str());
  bench::footnote_shape();
  return 0;
}
