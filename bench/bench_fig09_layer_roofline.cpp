// Figure 9: roofline analysis of all layers (A14) for
// MLPerf_ResNet50_v1.5 @ batch 256 on Tesla_V100.
#include <map>

#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Figure 9 / A14 — layer roofline",
                "paper Fig. 9: Conv2D/MatMul/BiasAdd/Softmax layers compute-bound; "
                "Add/Mul/Relu layers memory-bound");

  const auto result = bench::resnet50_leveled();
  const auto& gpu = sim::tesla_v100();
  const auto pts = analysis::a14_layer_roofline(result.profile, gpu);

  // Aggregate boundness by layer type for the paper's qualitative claim.
  std::map<std::string, std::pair<int, int>> by_type;  // type -> {mem, compute}
  for (const auto& p : pts) {
    auto& c = by_type[p.label];
    (p.memory_bound ? c.first : c.second) += 1;
  }
  report::TextTable t({"Layer Type", "Memory-Bound", "Compute-Bound"});
  for (const auto& [type, counts] : by_type) {
    t.add_row({type, std::to_string(counts.first), std::to_string(counts.second)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("roofline knee: %.2f flops/byte; %zu layers plotted\n",
              gpu.ideal_arithmetic_intensity(), pts.size());
  bench::footnote_shape();
  return 0;
}
