// Figure 1: the model-, layer-, and GPU-kernel-level profile of
// MLPerf_ResNet50_v1.5 at batch 256 — the hierarchical view the paper
// opens with, including the three kernels of the first Conv layer and the
// GPU metrics of the main convolution kernel.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Figure 1 — the across-stack hierarchical view",
      "paper Fig. 1: first Conv layer launches ShuffleTensor, OffsetComp and the "
      "volta scudnn kernel; metrics shown for kernel 3 (62 Gflops, 12.1 MB reads, "
      "296 MB writes, 13.2% occupancy)");

  const auto result = bench::resnet50_leveled(/*gpu_metrics=*/true);
  // Hierarchy and timings from the activity-level run; counter values from
  // the merged profile (leveled experimentation keeps both accurate).
  const auto& tl = result.mlg.timeline;

  // Model level: the three pipeline steps.
  std::printf("model level:\n");
  for (const auto root : tl.roots()) {
    const auto& span = tl.node(root).span;
    std::printf("  %-20s %10.2f ms\n", span.name.c_str(), to_ms(span.duration()));
  }

  // Layer level: the first few layers under Model Prediction.
  const auto predict = tl.find_by_name("Model Prediction");
  std::printf("\nlayer level (first 6 of %zu):\n", tl.at_level(trace::kLayerLevel).size());
  const auto& layers = tl.children(*predict);
  for (std::size_t i = 0; i < layers.size() && i < 6; ++i) {
    const auto& span = tl.node(layers[i]).span;
    std::printf("  [%zu] %-24s %-10s %8.2f ms\n", i, span.name.c_str(),
                span.tags.count("layer_type") ? span.tags.at("layer_type").c_str() : "?",
                to_ms(span.duration()));
  }

  // Kernel level: the first Conv layer's three kernels, metrics on the main
  // one — exactly the figure's callout.
  const auto conv = tl.find_by_name("conv2d/Conv2D");
  std::printf("\nGPU kernel level — kernels of conv2d/Conv2D:\n");
  const auto& kernels = tl.children(*conv);
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& node = tl.node(kernels[i]);
    std::printf("  Kernel%zu  %-45s grid=%s block=%s  %0.3f ms\n", i + 1,
                node.span.name.c_str(),
                node.span.tags.count("grid") ? node.span.tags.at("grid").c_str() : "?",
                node.span.tags.count("block") ? node.span.tags.at("block").c_str() : "?",
                to_ms(node.span.duration()));
  }
  // Counter values for the main kernel, from the merged accurate profile.
  for (const auto& l : result.profile.layers) {
    if (l.name != "conv2d/Conv2D") continue;
    const auto& main_kernel = result.profile.kernels[l.kernel_ids.back()];
    std::printf("\nGPU metrics of Kernel%zu (%s):\n", l.kernel_ids.size(),
                main_kernel.name.c_str());
    std::printf("  SP Flop Count        = %.1f Gflop  (paper: 62 Gflop)\n",
                main_kernel.flops / 1e9);
    std::printf("  DRAM Read Bytes      = %.1f MB    (paper: 12.1 MB)\n",
                main_kernel.dram_read_bytes / 1e6);
    std::printf("  DRAM Write Bytes     = %.1f MB    (paper: 296 MB)\n",
                main_kernel.dram_write_bytes / 1e6);
    std::printf("  Achieved Occupancy   = %.1f%%       (paper: 13.2%%)\n",
                main_kernel.achieved_occupancy * 100.0);
    break;
  }
  bench::footnote_shape();
  return 0;
}
