// Ablation: sampling & admission cost through the publish path.
//
// The sampling layer's performance contract has two sides:
//   1. rate 1.0 must be free — an attached pass-through sampler (and the
//      no-sampler baseline) must publish at the same throughput as a
//      build with no sampling layer at all (BENCH_abl_span_publication
//      gates that separately);
//   2. aggressive rates must be a *speedup* — a rejected span costs one
//      hash + one counter bump instead of slot/batch work, so rate 0.01
//      publication should be measurably faster per offered span.
//
// Benchmarks:
//   BM_SamplerDecision/<pct>  admit() alone, no server: the raw cost of
//                             the splitmix64 draw at rates 1.0/0.1/0.01
//   BM_PublishUnsampled       publish with no sampler attached (baseline)
//   BM_PublishSampled/<pct>   publish through a TraceServer with a
//                             sampler at rate pct/100; items = offered
//                             spans, so lower ns/op at lower rates is the
//                             shed-before-work win
//
// Spans carry a correlation id cycling over many requests, so the hash
// path exercised is the head-sampling (whole-request) decision, the shape
// a real session publishes.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <memory>

#include "xsp/trace/sampler.hpp"
#include "xsp/trace/trace_server.hpp"

namespace {

using xsp::trace::PublishMode;
using xsp::trace::Sampler;
using xsp::trace::SamplerOptions;
using xsp::trace::Span;
using xsp::trace::TraceServer;

/// Spans between take_batches() drains — matches
/// bench_abl_span_publication so per-span costs are comparable.
constexpr std::size_t kDrainEvery = 1 << 16;

Span make_span(TraceServer& server, int i) {
  Span s;
  s.id = server.next_span_id();
  s.name = "volta_scudnn_128x64_relu_interior_nn_v1";
  s.begin = i * 100;
  s.end = i * 100 + 90;
  // ~8 spans per request: the correlation id is what the head-sampling
  // hash keys on, so kept/shed decisions are per request, not per span.
  s.correlation_id = static_cast<std::uint64_t>(i >> 3) + 1;
  return s;
}

Sampler make_sampler(int rate_pct) {
  SamplerOptions opts;
  opts.rate = static_cast<double>(rate_pct) / 100.0;
  return Sampler(opts);
}

void BM_SamplerDecision(benchmark::State& state) {
  const Sampler sampler = make_sampler(static_cast<int>(state.range(0)));
  Span s;
  s.name = "volta_scudnn_128x64_relu_interior_nn_v1";
  s.begin = 0;
  s.end = 90;
  std::uint64_t corr = 1;
  std::uint64_t admitted = 0;
  for (auto _ : state) {
    s.correlation_id = corr++;
    admitted += sampler.admit(s) ? 1 : 0;
  }
  benchmark::DoNotOptimize(admitted);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SamplerDecision)->Arg(100)->Arg(10)->Arg(1);

void publish_loop(benchmark::State& state, TraceServer& server) {
  std::size_t since_drain = 0;
  int i = 0;
  for (auto _ : state) {
    server.publish(make_span(server, i++));
    if (++since_drain == kDrainEvery) {
      since_drain = 0;
      benchmark::DoNotOptimize(server.take_batches());
    }
  }
  benchmark::DoNotOptimize(server.take_batches());
  state.SetItemsProcessed(state.iterations());
}

void BM_PublishUnsampled(benchmark::State& state) {
  TraceServer server(PublishMode::kAsync);
  publish_loop(state, server);
}
BENCHMARK(BM_PublishUnsampled);

void BM_PublishSampled(benchmark::State& state) {
  TraceServer server(PublishMode::kAsync);
  server.set_sampler(std::make_shared<const Sampler>(
      make_sampler(static_cast<int>(state.range(0)))));
  publish_loop(state, server);
}
BENCHMARK(BM_PublishSampled)->Arg(100)->Arg(10)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
