// Ablation: XSP binary wire v1 vs JSON streaming export.
//
// The binary format exists for export throughput: JSON spends its time
// formatting timestamps and metric doubles per span, while the binary
// writer memcpys sealed batches and ships each interned string once via
// StringTable cursor deltas. This bench pins the headline ratio — binary
// encode must clear 10x the JSON streaming baseline (see
// bench/results/BENCH_abl_export_stream.json) — and the cost of reading
// it back.
//
//   BM_ExportSpanJsonFromBatches  StreamingExporter span-JSON -> null sink
//                                 (the JSON baseline, same shape as
//                                 bench_abl_export_stream for comparison)
//   BM_ExportBinaryFromBatches    BinaryWriter -> null sink, raw batches
//   BM_ExportBinaryToSink         BinaryWriter -> FrameSink buffering path
//                                 (what a file sink exercises, minus the OS)
//   BM_DecodeBinaryToBatches      BinaryReader over an in-memory stream
//   BM_RoundTripBinary            encode + decode, the replay path
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <string_view>

#include "xsp/trace/export.hpp"
#include "xsp/trace/trace_server.hpp"
#include "xsp/trace/wire.hpp"

namespace {

using namespace xsp;
using namespace xsp::trace;

constexpr std::size_t kSpanCount = 8192;

SpanBatches synthetic_batches() {
  // Same span mix as bench_abl_export_stream so the two dumps compare:
  // interned names, a tag, two metrics, full-width timestamps.
  SpanBatches batches;
  SpanBatch batch;
  batch.reserve(TraceServer::kBatchCapacity);
  for (std::size_t i = 0; i < kSpanCount; ++i) {
    Span s;
    s.id = i + 1;
    s.level = kKernelLevel;
    s.name = "volta_scudnn_128x64_relu_interior_nn_v1";
    s.tracer = "cupti";
    s.begin = static_cast<TimePoint>(1'000'000'000 + i * 12'345);
    s.end = s.begin + 9'876;
    s.tags.set("kind", "kernel");
    s.metrics.set("flop_count_sp", 123456789012.0);
    s.metrics.set("achieved_occupancy", 0.4375);
    batch.push_back(s);
    if (batch.size() == TraceServer::kBatchCapacity) {
      batches.push_back(std::move(batch));
      batch = SpanBatch();
      batch.reserve(TraceServer::kBatchCapacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

std::string encode_batches(const SpanBatches& batches) {
  std::string out;
  out.reserve(kSpanCount * sizeof(Span) + 4096);
  BinaryWriter writer([&out](std::string_view chunk) { out.append(chunk); });
  writer.write_batches(batches);
  writer.finish();
  return out;
}

/// The JSON baseline, duplicated here so one binary's dump carries both
/// sides of the headline ratio.
void BM_ExportSpanJsonFromBatches(benchmark::State& state) {
  const SpanBatches batches = synthetic_batches();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    StreamingExporter exporter(
        ExportFormat::kSpanJson, [&bytes](std::string_view chunk) { bytes += chunk.size(); },
        /*with_metadata=*/true);
    exporter.write_batches(batches);
    exporter.finish();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_ExportSpanJsonFromBatches);

void BM_ExportBinaryFromBatches(benchmark::State& state) {
  const SpanBatches batches = synthetic_batches();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    BinaryWriter writer([&bytes](std::string_view chunk) { bytes += chunk.size(); });
    writer.write_batches(batches);
    writer.finish();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_ExportBinaryFromBatches);

void BM_ExportBinaryToSink(benchmark::State& state) {
  // Through an ostringstream-backed FrameSink: the buffered path a file
  // sink takes, without the filesystem's noise.
  const SpanBatches batches = synthetic_batches();
  for (auto _ : state) {
    state.PauseTiming();
    std::ostringstream out;
    state.ResumeTiming();
    BinaryWriter writer(out);
    writer.write_batches(batches);
    writer.finish();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_ExportBinaryToSink);

void BM_DecodeBinaryToBatches(benchmark::State& state) {
  const std::string encoded = encode_batches(synthetic_batches());
  std::uint64_t spans = 0;
  for (auto _ : state) {
    std::istringstream in(encoded);
    BinaryReader reader(in);
    SpanBatch batch;
    while (reader.next_batch(batch)) spans += batch.size();
    benchmark::DoNotOptimize(spans);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_DecodeBinaryToBatches);

void BM_RoundTripBinary(benchmark::State& state) {
  const SpanBatches batches = synthetic_batches();
  std::uint64_t spans = 0;
  for (auto _ : state) {
    std::istringstream in(encode_batches(batches));
    BinaryReader reader(in);
    SpanBatch batch;
    while (reader.next_batch(batch)) spans += batch.size();
    benchmark::DoNotOptimize(spans);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_RoundTripBinary);

}  // namespace

BENCHMARK_MAIN();
