// Table IX: in-depth characterization of the 37 image-classification
// models at their optimal batch sizes on Tesla_V100 — GPU latency
// percentage, GPU metrics, roofline classification, and the dominant
// beginning/middle/end stage per quantity.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Table IX — in-depth characterization of the 37 IC models",
      "paper Table IX: GPU latency % 53.68-95.61; ~20 of 37 memory-bound; MobileNets "
      "memory-bound with low occupancy, big ResNets/VGG compute-bound");

  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto& gpu = sim::tesla_v100();

  report::TextTable t({"ID", "Batch Lat (ms)", "GPU Lat %", "GPU Gflops", "Reads (GB)",
                       "Writes (GB)", "Occup %", "AI", "Tflops", "Mem Bound?", "Lat Stage",
                       "Alloc Stage", "Flops Stage", "Mem Stage"});

  int memory_bound_count = 0;
  for (const auto* m : models::image_classification_models()) {
    const auto info = analysis::model_information(runner, *m, 256);
    const auto leveled = runner.run_model(*m, info.optimal_batch);
    const auto agg = analysis::a15_model_aggregate(leveled.profile, gpu);
    const auto stages = analysis::stage_analysis(leveled.profile);
    memory_bound_count += agg.memory_bound ? 1 : 0;

    t.add_row({std::to_string(m->id), fmt_fixed(agg.model_latency_ms, 2),
               fmt_fixed(analysis::gpu_latency_percentage(leveled.profile), 2),
               fmt_fixed(agg.gflops, 2), fmt_fixed(agg.dram_reads_mb / 1e3, 2),
               fmt_fixed(agg.dram_writes_mb / 1e3, 2), fmt_fixed(agg.occupancy_pct, 2),
               fmt_fixed(agg.arithmetic_intensity, 2), fmt_fixed(agg.tflops, 2),
               bench::yes_no(agg.memory_bound), analysis::stage_name(stages.latency),
               analysis::stage_name(stages.alloc), analysis::stage_name(stages.flops),
               analysis::stage_name(stages.memory_access)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("memory-bound models: %d of 37 (paper: 20 of 37)\n", memory_bound_count);
  bench::footnote_shape();
  return 0;
}
