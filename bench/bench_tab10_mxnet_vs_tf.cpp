// Table X: the 10 MXNet models vs their TensorFlow counterparts on
// Tesla_V100 — normalized online latency, normalized maximum throughput,
// and GPU characteristics at the optimal batch size.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Table X — MXNet vs TensorFlow",
      "paper Table X + Section IV-B: MXNet ResNets slower at batch 1 (fixed engine "
      "overhead: 4.44 ms non-GPU vs 2.18 ms), comparable max throughput; MXNet MobileNets "
      "35-74% higher max throughput (Eigen element-wise DRAM excess on the TF side)");

  profile::LeveledRunner tf_runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  profile::LeveledRunner mx_runner(sim::tesla_v100(), framework::FrameworkKind::kMXLite);
  const auto& gpu = sim::tesla_v100();

  report::TextTable t({"ID", "Name", "Norm Online Lat", "Opt Batch", "Norm Max Tput",
                       "GPU Lat %", "Gflops", "Reads (GB)", "Writes (GB)", "Occup %",
                       "Mem Bound?"});

  for (const auto& mx : models::mxnet_models()) {
    const auto* tf = models::find_tensorflow_model(mx.name);

    const auto tf_info = analysis::model_information(tf_runner, *tf, 256);
    const auto mx_info = analysis::model_information(mx_runner, mx, 256);
    const auto mx_leveled = mx_runner.run_model(mx, mx_info.optimal_batch);
    const auto agg = analysis::a15_model_aggregate(mx_leveled.profile, gpu);

    const double norm_online = mx_info.online_latency_ms / tf_info.online_latency_ms;
    const double norm_tput = mx_info.max_throughput / tf_info.max_throughput;

    t.add_row({std::to_string(mx.id), mx.name,
               fmt_fixed(norm_online, 2) + " (" + fmt_fixed(mx.paper.online_latency_ms, 2) + ")",
               std::to_string(mx_info.optimal_batch) + " (" +
                   std::to_string(mx.paper.optimal_batch) + ")",
               fmt_fixed(norm_tput, 2) + " (" + fmt_fixed(mx.paper.max_throughput, 2) + ")",
               fmt_fixed(analysis::gpu_latency_percentage(mx_leveled.profile), 2),
               fmt_fixed(agg.gflops, 2), fmt_fixed(agg.dram_reads_mb / 1e3, 2),
               fmt_fixed(agg.dram_writes_mb / 1e3, 2), fmt_fixed(agg.occupancy_pct, 2),
               bench::yes_no(agg.memory_bound)});
  }
  std::printf("%s\n", t.str().c_str());

  // The batch-1 non-GPU latency comparison behind the ResNet finding.
  const auto* r50 = models::find_tensorflow_model("ResNet_v1_50");
  const auto tf_b1 = tf_runner.run_model(*r50, 1, /*gpu_metrics=*/false);
  const auto mx_b1 = mx_runner.run_model(*models::find_mxnet_model(11), 1,
                                         /*gpu_metrics=*/false);
  const double tf_non_gpu =
      to_ms(tf_b1.profile.model_latency - tf_b1.profile.total_kernel_latency());
  const double mx_non_gpu =
      to_ms(mx_b1.profile.model_latency - mx_b1.profile.total_kernel_latency());
  std::printf("ResNet_v1_50 @ batch 1 non-GPU latency: TFlow %.2f ms (%.1f%%), MXLite %.2f ms "
              "(%.1f%%)  [paper: 2.18 ms / 35.3%% vs 4.44 ms / 55.1%%]\n",
              tf_non_gpu, 100.0 * tf_non_gpu / to_ms(tf_b1.profile.model_latency), mx_non_gpu,
              100.0 * mx_non_gpu / to_ms(mx_b1.profile.model_latency));
  bench::footnote_shape();
  return 0;
}
