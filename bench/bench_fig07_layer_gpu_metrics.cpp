// Figure 7: per-layer GPU totals (A12) — (a) flops, (b) DRAM reads,
// (c) DRAM writes — for MLPerf_ResNet50_v1.5 @ batch 256 on Tesla_V100.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Figure 7 / A12 — per-layer GPU flops / DRAM reads / DRAM writes",
                "paper Fig. 7: flops peak mid-network (up to ~80 Gflops per layer); DRAM "
                "traffic peaks in the early layers (hundreds of MB)");

  const auto result = bench::resnet50_leveled();
  const auto metrics = analysis::a12_layer_gpu_metrics(result.profile);

  double max_gflops = 0;
  double max_reads = 0;
  double max_writes = 0;
  for (std::size_t i = 0; i < metrics.gflops.size(); ++i) {
    max_gflops = std::max(max_gflops, metrics.gflops[i]);
    max_reads = std::max(max_reads, metrics.dram_reads_mb[i]);
    max_writes = std::max(max_writes, metrics.dram_writes_mb[i]);
  }
  std::printf("peaks: %.1f Gflops | %.1f MB reads | %.1f MB writes "
              "(paper: ~80 Gflops, ~600 MB, ~500 MB)\n\n",
              max_gflops, max_reads, max_writes);

  report::TextTable t({"layer_index", "gflops", "dram_reads_mb", "dram_writes_mb"});
  for (std::size_t i = 0; i < metrics.gflops.size(); ++i) {
    t.add_row({std::to_string(i), fmt_fixed(metrics.gflops[i], 2),
               fmt_fixed(metrics.dram_reads_mb[i], 1), fmt_fixed(metrics.dram_writes_mb[i], 1)});
  }
  std::printf("full series (CSV):\n%s", t.csv().c_str());
  bench::footnote_shape();
  return 0;
}
