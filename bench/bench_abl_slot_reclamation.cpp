// Ablation: drain-sweep cost vs. accumulated dead producer slots.
//
// Pre-reclamation, a (thread, server) producer slot lived until the
// server died: a long-lived server fed by short-lived worker threads
// accreted one ~50KB slot per thread, and EVERY drain pass — collector
// tick, flush, take — swept all of them (a spinlock acquire + batch scan
// per slot) forever. This ablation measures exactly that: churn N
// threads through one server, then time steady-state flush() with slot
// reclamation on (churned slots retired by the first sweep; the sweep
// cost stays O(live slots)) vs. off (the pre-reclamation behaviour: the
// sweep walks all N dead slots every time).
//
//   dead:0/reclaim:{0,1}      — baseline, no churn (identical by design)
//   dead:{1000,10000}/reclaim:0 — sweep cost grows with cumulative churn
//   dead:{1000,10000}/reclaim:1 — sweep cost independent of churn
//
// Record with --benchmark_format=json into
// bench/results/BENCH_abl_slot_reclamation.json (see bench/README.md).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "xsp/trace/trace_server.hpp"

namespace {

using xsp::trace::PublishMode;
using xsp::trace::Span;
using xsp::trace::TraceServer;

/// Churn `total` short-lived producer threads through `server`, each
/// publishing a few spans (a partial batch — the worst retirement shape:
/// the final sweep must steal it).
void churn_threads(TraceServer& server, std::size_t total) {
  constexpr std::size_t kWave = 32;
  std::size_t launched = 0;
  while (launched < total) {
    const std::size_t n = std::min(kWave, total - launched);
    std::vector<std::thread> wave;
    wave.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      wave.emplace_back([&server] {
        for (int k = 0; k < 4; ++k) {
          Span s;
          s.id = server.next_span_id();
          s.begin = k;
          s.end = k + 1;
          server.publish(std::move(s));
        }
      });
    }
    for (auto& t : wave) t.join();
    launched += n;
  }
}

void BM_DrainSweep(benchmark::State& state) {
  const auto dead_threads = static_cast<std::size_t>(state.range(0));
  const bool reclaim = state.range(1) != 0;

  TraceServer server(PublishMode::kSync);
  server.set_slot_reclamation(reclaim);
  churn_threads(server, dead_threads);
  // Move the churned spans (and, with reclamation, the churned slots) out
  // of the measurement: what remains is the steady-state sweep an idle
  // long-lived server pays per drain.
  (void)server.take_trace();

  for (auto _ : state) {
    server.flush();
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["live_slots"] = static_cast<double>(server.live_slot_count());
  state.counters["retired_slots"] = static_cast<double>(server.retired_slot_count());
  state.counters["slot_bytes"] = static_cast<double>(server.approx_slot_bytes());
}

}  // namespace

BENCHMARK(BM_DrainSweep)
    ->ArgNames({"dead", "reclaim"})
    ->ArgsProduct({{0, 1000, 10000}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
