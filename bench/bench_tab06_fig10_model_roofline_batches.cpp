// Table VI + Figure 10: whole-model GPU aggregation (A15) across batch
// sizes for MLPerf_ResNet50_v1.5 on Tesla_V100, including the roofline
// classification per batch size and the cuDNN algorithm switch that makes
// mid-range batches memory-bound in the paper.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Table VI + Figure 10 / A15 — model aggregate across batch sizes",
      "paper Table VI: occupancy climbs 22.65% -> 43.15% toward the optimal batch; "
      "model compute-bound except batches 16/32 (cuDNN algorithm switch at batch 16)");

  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto& gpu = sim::tesla_v100();

  report::TextTable t({"Batch", "Model (ms)", "Kernel (ms)", "Gflops", "Reads (MB)",
                       "Writes (MB)", "Occup (%)", "AI", "Mem Bound?", "Main Conv Kernel"});
  for (std::int64_t batch : analysis::batch_grid(256)) {
    const auto result = runner.run_model(bench::resnet50(), batch);
    const auto agg = analysis::a15_model_aggregate(result.profile, gpu);

    // The dominant convolution kernel at this batch size (paper: switches
    // from implicit_convolve_sgemm to volta_scudnn_* at batch 16).
    std::string conv_kernel = "-";
    double conv_ms = 0;
    for (const auto& row : analysis::a10_kernel_by_name(result.profile, gpu)) {
      if (row.name.find("scudnn") != std::string::npos ||
          row.name.find("convolve") != std::string::npos) {
        if (row.latency_ms > conv_ms) {
          conv_ms = row.latency_ms;
          conv_kernel = row.name;
        }
      }
    }
    t.add_row({std::to_string(batch), fmt_fixed(agg.model_latency_ms, 2),
               fmt_fixed(agg.kernel_latency_ms, 2), fmt_fixed(agg.gflops, 2),
               fmt_fixed(agg.dram_reads_mb, 1), fmt_fixed(agg.dram_writes_mb, 1),
               fmt_fixed(agg.occupancy_pct, 2), fmt_fixed(agg.arithmetic_intensity, 2),
               bench::yes_no(agg.memory_bound), conv_kernel});
  }
  std::printf("%s", t.str().c_str());
  bench::footnote_shape();
  return 0;
}
