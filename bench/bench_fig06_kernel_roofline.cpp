// Figure 6: roofline analysis of all GPU kernels (A9) for
// MLPerf_ResNet50_v1.5 @ batch 256 on Tesla_V100.
#include <algorithm>

#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Figure 6 / A9 — GPU kernel roofline",
                "paper Fig. 6: the most time-consuming kernels are compute-bound convolutions; "
                "element-wise kernels sit deep in the memory-bound region");

  const auto result = bench::resnet50_leveled();
  const auto& gpu = sim::tesla_v100();
  auto pts = analysis::a9_kernel_roofline(result.profile, gpu);

  int memory_bound = 0;
  for (const auto& p : pts) memory_bound += p.memory_bound ? 1 : 0;
  std::printf("ideal arithmetic intensity (roofline knee): %.2f flops/byte\n",
              gpu.ideal_arithmetic_intensity());
  std::printf("kernels: %zu total, %d memory-bound, %d compute-bound\n\n", pts.size(),
              memory_bound, static_cast<int>(pts.size()) - memory_bound);

  std::sort(pts.begin(), pts.end(),
            [](const auto& a, const auto& b) { return a.latency_ms > b.latency_ms; });
  report::TextTable t({"Kernel", "AI (flops/B)", "Tflops/s", "Latency (ms)", "Region"});
  for (std::size_t i = 0; i < pts.size() && i < 10; ++i) {
    const auto& p = pts[i];
    t.add_row({p.label, fmt_fixed(p.arithmetic_intensity, 2), fmt_fixed(p.tflops, 2),
               fmt_fixed(p.latency_ms, 2), p.memory_bound ? "memory-bound" : "compute-bound"});
  }
  std::printf("top-10 kernels by latency:\n%s", t.str().c_str());
  bench::footnote_shape();
  return 0;
}
