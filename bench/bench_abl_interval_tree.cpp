// Ablation: interval-tree vs linear-scan parent reconstruction.
//
// XSP's design choice (Section III-A) is an interval tree for the
// set-inclusion queries that rebuild span parent-child links. This
// google-benchmark ablation measures both against trace sizes from a few
// hundred spans (one model) to hundreds of thousands (long-running
// applications), in real host time.
#include <benchmark/benchmark.h>

#include <vector>

#include "xsp/common/rng.hpp"
#include "xsp/trace/interval_tree.hpp"

namespace {

using xsp::trace::IntervalTree;
using Entry = IntervalTree<int>::Entry;

/// Layer-like intervals: disjoint siblings covering a long timeline.
std::vector<Entry> make_layers(int n) {
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  xsp::TimePoint t = 0;
  xsp::SplitMix64 rng(42);
  for (int i = 0; i < n; ++i) {
    const auto len = static_cast<xsp::TimePoint>(1000 + rng.below(20000));
    entries.push_back({t, t + len, i});
    t += len + 100;
  }
  return entries;
}

/// Kernel-like query points: a few per layer.
std::vector<std::pair<xsp::TimePoint, xsp::TimePoint>> make_queries(
    const std::vector<Entry>& layers, int per_layer) {
  std::vector<std::pair<xsp::TimePoint, xsp::TimePoint>> qs;
  xsp::SplitMix64 rng(7);
  for (const auto& l : layers) {
    for (int i = 0; i < per_layer; ++i) {
      const auto lo = l.lo + static_cast<xsp::TimePoint>(rng.below(
                                 static_cast<std::uint64_t>(l.hi - l.lo) / 2 + 1));
      qs.emplace_back(lo, lo + 10);
    }
  }
  return qs;
}

void BM_IntervalTreeCorrelation(benchmark::State& state) {
  const auto layers = make_layers(static_cast<int>(state.range(0)));
  const auto queries = make_queries(layers, 3);
  for (auto _ : state) {
    IntervalTree<int> tree{std::vector<Entry>(layers)};
    std::size_t found = 0;
    for (const auto& [lo, hi] : queries) found += tree.containing(lo, hi).size();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(queries.size()));
}

void BM_LinearScanCorrelation(benchmark::State& state) {
  const auto layers = make_layers(static_cast<int>(state.range(0)));
  const auto queries = make_queries(layers, 3);
  for (auto _ : state) {
    std::size_t found = 0;
    for (const auto& [lo, hi] : queries) {
      for (const auto& l : layers) {
        if (l.lo <= lo && l.hi >= hi) ++found;
      }
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(queries.size()));
}

BENCHMARK(BM_IntervalTreeCorrelation)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_LinearScanCorrelation)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
