// Figure 2: leveled experimentation on MLPerf_ResNet50_v1.5 @ batch 256 on
// Tesla_V100 — model latency under M, M/L, M/L/G profiling and the
// per-level overhead quantified by subtraction.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Figure 2 — leveled experimentation & profiling overhead",
                "paper Fig. 2: M = 275.1 ms; layer overhead 157 ms; GPU overhead 215.2 ms; "
                "first Conv layer 5.1 ms with 0.24 ms kernel-profiling overhead");

  const auto result = bench::resnet50_leveled(/*gpu_metrics=*/true);

  report::TextTable t({"Run", "Model Prediction (ms)", "Added Overhead (ms)", "Paper (ms)"});
  t.add_row({"M", fmt_fixed(to_ms(result.m.model_latency), 2), "-", "275.1 / -"});
  t.add_row({"M/L", fmt_fixed(to_ms(result.ml.model_latency), 2),
             fmt_fixed(to_ms(result.layer_overhead()), 2), "432.1 / 157.0"});
  t.add_row({"M/L/G", fmt_fixed(to_ms(result.mlg.model_latency), 2),
             fmt_fixed(to_ms(result.gpu_overhead()), 2), "490.3 / 215.2"});
  std::printf("%s\n", t.str().c_str());

  // The first Conv layer's kernel-level profiling overhead (paper: 0.24 ms
  // over its 3 child kernels).
  const auto find_layer = [](const trace::Timeline& tl, const std::string& name) {
    const auto id = tl.find_by_name(name);
    return id ? to_ms(tl.node(*id).span.duration()) : 0.0;
  };
  const double conv_ml = find_layer(result.ml.timeline, "conv2d/Conv2D");
  const double conv_mlg = find_layer(result.mlg.timeline, "conv2d/Conv2D");
  std::printf("first Conv layer: M/L %.2f ms -> M/L/G %.2f ms (overhead %.2f ms; paper 0.24 ms "
              "over 3 kernels)\n",
              conv_ml, conv_mlg, conv_mlg - conv_ml);

  std::printf("metric-collection run (kernel replay): %.1f ms, %.1fx the activity-level run "
              "(Section III-C: memory metrics can exceed 100x on kernel-dense workloads)\n",
              to_ms(result.mlgm.model_latency), result.metric_slowdown());
  bench::footnote_shape();
  return 0;
}
