// Ablation: streaming export vs the materializing wrappers.
//
// The streaming rewrite exists for memory (bounded buffer instead of a
// whole-trace string), but it must not cost throughput: the wrappers are
// now thin drivers of the same emission core, so this bench pins
// (a) spans/s through each path and (b) that the core's fixed-point
// timestamp/round-trip metric formatting did not regress emission speed.
//
//   BM_ExportChromeMaterialized  to_chrome_trace(timeline) -> std::string
//   BM_ExportChromeStreaming     StreamingExporter -> null sink, timeline walk
//   BM_ExportChromeFromBatches   StreamingExporter -> null sink, raw batches
//                                (the drain-subscriber path: no assembly at all)
//   BM_ExportSpanJsonFromBatches same, span-JSON with metadata footer
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>

#include "xsp/trace/export.hpp"
#include "xsp/trace/timeline.hpp"
#include "xsp/trace/trace_server.hpp"

namespace {

using namespace xsp;
using namespace xsp::trace;

constexpr std::size_t kSpanCount = 8192;

SpanBatches synthetic_batches() {
  // Realistic span mix: interned names, a tag, two metrics, timestamps
  // past one second so the fixed-point path exercises full-width output.
  SpanBatches batches;
  SpanBatch batch;
  batch.reserve(TraceServer::kBatchCapacity);
  for (std::size_t i = 0; i < kSpanCount; ++i) {
    Span s;
    s.id = i + 1;
    s.level = kKernelLevel;
    s.name = "volta_scudnn_128x64_relu_interior_nn_v1";
    s.tracer = "cupti";
    s.begin = static_cast<TimePoint>(1'000'000'000 + i * 12'345);
    s.end = s.begin + 9'876;
    s.tags.set("kind", "kernel");
    s.metrics.set("flop_count_sp", 123456789012.0);
    s.metrics.set("achieved_occupancy", 0.4375);
    batch.push_back(s);
    if (batch.size() == TraceServer::kBatchCapacity) {
      batches.push_back(std::move(batch));
      batch = SpanBatch();
      batch.reserve(TraceServer::kBatchCapacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

Timeline synthetic_timeline() { return Timeline::assemble(flatten_batches(synthetic_batches())); }

void BM_ExportChromeMaterialized(benchmark::State& state) {
  const Timeline timeline = synthetic_timeline();
  for (auto _ : state) {
    std::string json = to_chrome_trace(timeline);
    benchmark::DoNotOptimize(json.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_ExportChromeMaterialized);

void BM_ExportChromeStreaming(benchmark::State& state) {
  const Timeline timeline = synthetic_timeline();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    StreamingExporter exporter(ExportFormat::kChromeTrace,
                               [&bytes](std::string_view chunk) { bytes += chunk.size(); });
    timeline.walk([&exporter](const TimelineNode& node, int) {
      exporter.write_span(node.span, node.parent);
    });
    exporter.finish();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_ExportChromeStreaming);

void BM_ExportChromeFromBatches(benchmark::State& state) {
  const SpanBatches batches = synthetic_batches();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    StreamingExporter exporter(ExportFormat::kChromeTrace,
                               [&bytes](std::string_view chunk) { bytes += chunk.size(); });
    exporter.write_batches(batches);
    exporter.finish();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_ExportChromeFromBatches);

void BM_ExportSpanJsonFromBatches(benchmark::State& state) {
  const SpanBatches batches = synthetic_batches();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    StreamingExporter exporter(
        ExportFormat::kSpanJson, [&bytes](std::string_view chunk) { bytes += chunk.size(); },
        /*with_metadata=*/true);
    exporter.write_batches(batches);
    exporter.finish();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kSpanCount));
}
BENCHMARK(BM_ExportSpanJsonFromBatches);

}  // namespace

BENCHMARK_MAIN();
