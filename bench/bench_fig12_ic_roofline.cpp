// Figure 12: roofline of the 37 image-classification models at their
// optimal batch sizes on Tesla_V100.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Figure 12 — roofline of the 37 IC models at optimal batch",
                "paper Fig. 12: 20 of 37 memory-bound; low-accuracy/low-compute models "
                "(MobileNet variants) cluster in the memory-bound region; all models reach "
                "at most ~52% of theoretical peak");

  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto& gpu = sim::tesla_v100();

  report::TextTable t({"ID", "Name", "AI (flops/B)", "Tflops/s", "% of Peak", "Region"});
  int memory_bound = 0;
  double max_peak_pct = 0;
  for (const auto* m : models::image_classification_models()) {
    const auto info = analysis::model_information(runner, *m, 256);
    const auto leveled = runner.run_model(*m, info.optimal_batch);
    const auto agg = analysis::a15_model_aggregate(leveled.profile, gpu);
    memory_bound += agg.memory_bound ? 1 : 0;
    const double peak_pct = agg.tflops / gpu.peak_tflops * 100.0;
    max_peak_pct = std::max(max_peak_pct, peak_pct);
    t.add_row({std::to_string(m->id), m->name, fmt_fixed(agg.arithmetic_intensity, 2),
               fmt_fixed(agg.tflops, 2), fmt_fixed(peak_pct, 1),
               agg.memory_bound ? "memory-bound" : "compute-bound"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("memory-bound: %d of 37 (paper: 20)   best utilization: %.1f%% of peak "
              "(paper: <= 52%%)\n",
              memory_bound, max_peak_pct);
  bench::footnote_shape();
  return 0;
}
