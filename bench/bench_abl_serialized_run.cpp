// Ablation: serialized (CUDA_LAUNCH_BLOCKING=1) vs concurrent execution.
//
// Section III-A: when parallel events make a span's parent ambiguous, XSP
// "requires another profiling run where the parallel events are
// serialized". This bench quantifies what that extra run costs and shows
// that serialization resolves the ambiguity on a multi-stream workload.
#include "common.hpp"

namespace {

using namespace xsp;

/// A deliberately ambiguous workload: two overlapping same-level "branch"
/// spans, each launching kernels concurrently on its own stream.
trace::Timeline run_branches(bool serialized, Ns* wall = nullptr) {
  SimClock clock;
  sim::GpuDevice dev(sim::tesla_v100(), clock);
  dev.set_serialized(serialized);
  trace::TraceServer server(trace::PublishMode::kSync);
  trace::Tracer layers(server, "framework_profiler", trace::kLayerLevel);
  trace::Tracer gpu(server, "cupti", trace::kKernelLevel);

  const auto kernel = [] {
    sim::KernelDesc k;
    k.name = "branch_kernel";
    k.klass = sim::KernelClass::kElementwise;
    k.grid = {4096, 1, 1};
    k.block = {256, 1, 1};
    k.dram_read_bytes = 40e6;
    k.dram_write_bytes = 40e6;
    return k;
  }();

  const sim::StreamId s1 = sim::kDefaultStream;
  const sim::StreamId s2 = dev.create_stream();
  const TimePoint begin = clock.now();

  const auto record = [&](const sim::LaunchResult& r) {
    trace::Span launch;
    launch.kind = trace::SpanKind::kLaunch;
    launch.begin = r.api_begin;
    launch.end = r.api_end;
    launch.correlation_id = r.correlation_id;
    launch.name = "cudaLaunchKernel";
    gpu.publish_completed(std::move(launch));
    trace::Span exec;
    exec.kind = trace::SpanKind::kExecution;
    exec.begin = r.exec_begin;
    exec.end = r.exec_end;
    exec.correlation_id = r.correlation_id;
    exec.name = kernel.name;
    gpu.publish_completed(std::move(exec));
  };

  if (!serialized) {
    // Two parallel branches (two executor threads): both branch spans are
    // open across every launch window, so interval containment cannot tell
    // which branch owns a kernel.
    const auto a = layers.start_span("branch_a", clock.now());
    const auto b = layers.start_span("branch_b", clock.now());
    for (int i = 0; i < 4; ++i) {
      record(dev.launch_kernel(s1, kernel));
      record(dev.launch_kernel(s2, kernel));
    }
    dev.synchronize();
    layers.finish_span(a, clock.now());
    layers.finish_span(b, clock.now());
  } else {
    // CUDA_LAUNCH_BLOCKING=1 re-run: each launch blocks, branches execute
    // back to back, spans stop overlapping.
    for (int branch = 0; branch < 2; ++branch) {
      const auto span = layers.start_span(branch == 0 ? "branch_a" : "branch_b", clock.now());
      for (int i = 0; i < 4; ++i) record(dev.launch_kernel(branch == 0 ? s1 : s2, kernel));
      dev.synchronize();
      layers.finish_span(span, clock.now());
    }
  }
  if (wall != nullptr) *wall = clock.now() - begin;
  // Distrust explicit parents: this ablation exercises pure interval
  // reconstruction.
  trace::AssembleOptions opts;
  opts.trust_explicit_parents = false;
  return trace::Timeline::assemble(server.take_trace(), opts);
}

}  // namespace

int main() {
  bench::header("Ablation — serialized re-run for ambiguity resolution",
                "paper Section III-A (CUDA_LAUNCH_BLOCKING=1 disambiguation)");

  Ns concurrent_wall = 0;
  Ns serialized_wall = 0;
  const auto concurrent = run_branches(false, &concurrent_wall);
  const auto serialized = run_branches(true, &serialized_wall);

  report::TextTable t({"Run", "Wall (ms)", "Ambiguous Parents", "Correlated Async"});
  t.add_row({"concurrent", fmt_fixed(to_ms(concurrent_wall), 3),
             std::to_string(concurrent.ambiguous_count()),
             std::to_string(concurrent.correlated_async_count())});
  t.add_row({"serialized", fmt_fixed(to_ms(serialized_wall), 3),
             std::to_string(serialized.ambiguous_count()),
             std::to_string(serialized.correlated_async_count())});
  std::printf("%s\n", t.str().c_str());
  std::printf("serialization cost: %.2fx wall time; ambiguity eliminated: %s\n",
              static_cast<double>(serialized_wall) / static_cast<double>(concurrent_wall),
              serialized.ambiguous_count() == 0 ? "yes" : "no");
  bench::footnote_shape();
  return 0;
}
