// Table III: the top-5 most time-consuming GPU kernel invocations (A8) of
// MLPerf_ResNet50_v1.5 @ batch 256 on Tesla_V100, with full metrics.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Table III / A8 — top-5 most time-consuming kernel invocations",
      "paper Table III: volta_cgemm_32x32_tn (6.04/6.03 ms, layers 221/208), "
      "volta_scudnn_128x128 (5.48 ms), volta_scudnn_128x64 (4.91 ms, layer 3); "
      "375 kernels total, 284 under 1 ms");

  const auto result = bench::resnet50_leveled();
  const auto& gpu = sim::tesla_v100();

  report::TextTable t({"Kernel Name", "Layer", "Latency (ms)", "Gflops", "Reads (MB)",
                       "Writes (MB)", "Occup (%)", "AI (flops/B)", "Tflops/s", "Mem Bound?"});
  for (const auto& r : analysis::top_kernels_by_latency(result.profile, gpu, 5)) {
    t.add_row({r.name, std::to_string(r.layer_index), fmt_fixed(r.latency_ms, 2),
               fmt_fixed(r.gflops, 2), fmt_fixed(r.dram_reads_mb, 2),
               fmt_fixed(r.dram_writes_mb, 2), fmt_fixed(r.occupancy_pct, 2),
               fmt_fixed(r.arithmetic_intensity, 2), fmt_fixed(r.tflops, 2),
               bench::yes_no(r.memory_bound)});
  }
  std::printf("%s\n", t.str().c_str());

  const auto all = analysis::a8_kernel_info(result.profile, gpu);
  int under_1ms = 0;
  for (const auto& r : all) {
    if (r.latency_ms < 1.0) ++under_1ms;
  }
  std::printf("kernels: %zu total, %d under 1 ms (paper: 375 total, 284 under 1 ms)\n",
              all.size(), under_1ms);
  bench::footnote_shape();
  return 0;
}
