// Table VIII: the 55 TensorFlow models — online latency, maximum
// throughput, optimal batch size and convolution latency percentage on
// Tesla_V100, side by side with the paper's reported values.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Table VIII — 55 TensorFlow models on Tesla_V100",
                "paper Table VIII (values in parentheses are the paper's)");

  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);

  report::TextTable t({"ID", "Name", "Task", "Accuracy", "Graph (MB)", "Online (ms)",
                       "Max Tput (in/s)", "Opt Batch", "Conv %"});

  for (const auto& m : models::tensorflow_models()) {
    // Batch sweeps honour each task's practical range (the paper's optimal
    // batches: OD <= 16, IS <= 4, SS/SR = 1).
    std::int64_t max_batch = 256;
    if (m.task == "OD") max_batch = 32;
    if (m.task == "IS") max_batch = 16;
    if (m.task == "SS" || m.task == "SR") max_batch = 8;

    const auto info = analysis::model_information(runner, m, max_batch);
    const auto leveled = runner.run_model(m, info.optimal_batch, /*gpu_metrics=*/false);
    const double conv_pct = analysis::conv_latency_percentage(leveled.profile);
    const double graph_mb = m.build(1, true).graph_size_bytes() / 1e6;

    t.add_row({std::to_string(m.id), m.name, m.task, fmt_fixed(m.paper.accuracy, 2),
               fmt_fixed(graph_mb, 0) + " (" + fmt_fixed(m.paper.graph_size_mb, 0) + ")",
               fmt_fixed(info.online_latency_ms, 2) + " (" +
                   fmt_fixed(m.paper.online_latency_ms, 2) + ")",
               fmt_fixed(info.max_throughput, 1) + " (" + fmt_fixed(m.paper.max_throughput, 1) +
                   ")",
               std::to_string(info.optimal_batch) + " (" +
                   std::to_string(m.paper.optimal_batch) + ")",
               fmt_fixed(conv_pct, 1) + " (" + fmt_fixed(m.paper.conv_latency_pct, 1) + ")"});
  }
  std::printf("%s", t.str().c_str());
  bench::footnote_shape();
  return 0;
}
