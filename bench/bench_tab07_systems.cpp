// Table VII: the five evaluation systems and their ideal arithmetic
// intensities (computed exactly as the paper computes them).
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Table VII — evaluation systems",
                "paper Table VII: ideal AI = peak FLOPS / memory bandwidth");

  report::TextTable t({"Name", "CPU", "GPU", "Architecture", "Theoretical FLOPS (TFLOPS)",
                       "Memory Bandwidth (GB/s)", "Ideal Arithmetic Intensity (flops/byte)"});
  for (const auto& s : sim::all_systems()) {
    t.add_row({s.name, s.cpu, s.gpu, sim::arch_name(s.arch), fmt_fixed(s.peak_tflops, 1),
               fmt_fixed(s.mem_bw_gbps, 0), fmt_fixed(s.ideal_arithmetic_intensity(), 2)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\npaper ideal AI: Quadro_RTX 26.12, Tesla_V100 17.44, Tesla_P100 12.70, "
              "Tesla_P4 28.34, Tesla_M60 30.12\n");
  return 0;
}
