// Table IV: GPU kernel information aggregated by name (A10) for
// MLPerf_ResNet50_v1.5 @ batch 256 on Tesla_V100.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Table IV / A10 — kernels aggregated by name",
      "paper Table IV: volta_scudnn_128x64 34 calls 84.95 ms (30.87%), "
      "Eigen scalar_product_op 52 calls 28.43 ms (10.33%), scalar_sum_op 51 calls 26.38 ms, "
      "scalar_max_op 48 calls 24.71 ms (0 flops, 98.39% occupancy); 30 unique kernels");

  const auto result = bench::resnet50_leveled();
  const auto& gpu = sim::tesla_v100();
  const auto rows = analysis::a10_kernel_by_name(result.profile, gpu);

  report::TextTable t({"Kernel Name", "Count", "Latency (ms)", "Latency %", "Gflops",
                       "Reads (MB)", "Writes (MB)", "Occup (%)", "AI", "Tflops/s",
                       "Mem Bound?"});
  for (std::size_t i = 0; i < rows.size() && i < 8; ++i) {
    const auto& r = rows[i];
    t.add_row({r.name, std::to_string(r.count), fmt_fixed(r.latency_ms, 2),
               fmt_fixed(r.latency_pct, 2), fmt_fixed(r.gflops, 2),
               fmt_fixed(r.dram_reads_mb, 1), fmt_fixed(r.dram_writes_mb, 1),
               fmt_fixed(r.occupancy_pct, 2), fmt_fixed(r.arithmetic_intensity, 2),
               fmt_fixed(r.tflops, 2), bench::yes_no(r.memory_bound)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("%zu unique kernels (paper: 30)\n", rows.size());
  bench::footnote_shape();
  return 0;
}
