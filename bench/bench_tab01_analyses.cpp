// Table I: the 15 analyses, the profiling levels each requires, and which
// tooling can produce them. Runs every analysis once over the headline
// profile as a smoke demonstration that XSP covers the full matrix.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Table I — the 15 automated analyses", "paper Table I");

  struct Row {
    const char* id;
    const char* name;
    const char* levels;
    bool end_to_end;
    bool framework_profilers;
    bool nvidia_profilers;
  };
  // The capability matrix exactly as the paper states it; XSP covers all.
  constexpr Row kRows[] = {
      {"A1", "Model information table", "M", true, false, false},
      {"A2", "Layer information table", "L", false, true, false},
      {"A3", "Layer latency", "L", false, true, false},
      {"A4", "Layer memory allocation", "L", false, true, false},
      {"A5", "Layer type distribution", "L", false, true, false},
      {"A6", "Layer latency aggregated by type", "L", false, true, false},
      {"A7", "Layer memory allocation aggregated by type", "L", false, true, false},
      {"A8", "GPU kernel information table", "G", false, false, true},
      {"A9", "GPU kernel roofline", "G", false, false, true},
      {"A10", "GPU kernel information aggregated by name", "G", false, false, true},
      {"A11", "GPU kernel information aggregated by layer", "L/G", false, false, false},
      {"A12", "GPU metrics aggregated by layer", "L/G", false, false, false},
      {"A13", "GPU vs Non-GPU latency", "L/G", false, false, false},
      {"A14", "Layer roofline", "L/G", false, false, false},
      {"A15", "GPU kernel information aggregated by model", "M/G", false, false, true},
  };

  report::TextTable t({"Analysis", "Levels", "End-to-End Benchmarking", "Framework Profilers",
                       "NVIDIA Profilers", "XSP"});
  for (const auto& r : kRows) {
    t.add_row({std::string(r.id) + " " + r.name, r.levels, r.end_to_end ? "yes" : "no",
               r.framework_profilers ? "yes" : "no", r.nvidia_profilers ? "yes" : "no", "yes"});
  }
  std::printf("%s\n", t.str().c_str());

  // Execute all 15 against the headline profile (smaller batch keeps this
  // bench quick; the dedicated benches use batch 256).
  profile::LeveledRunner runner(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const auto info = analysis::model_information(runner, bench::resnet50(), 64);
  const auto result = runner.run_model(bench::resnet50(), 64);
  const auto& p = result.profile;
  const auto& gpu = sim::tesla_v100();

  std::printf("running all 15 analyses on %s @ batch 64:\n", p.model_name.c_str());
  std::printf("  A1  optimal batch %lld, max tput %.1f in/s\n",
              static_cast<long long>(info.optimal_batch), info.max_throughput);
  std::printf("  A2  %zu layer rows\n", analysis::a2_layer_info(p).size());
  std::printf("  A3  %zu latency points\n", analysis::a3_layer_latency_us(p).size());
  std::printf("  A4  %zu allocation points\n", analysis::a4_layer_alloc_mb(p).size());
  const auto types = analysis::layer_type_aggregation(p);
  std::printf("  A5-7 %zu layer types (top by latency: %s, %.1f%%)\n", types.size(),
              types[0].type.c_str(), types[0].latency_pct);
  std::printf("  A8  %zu kernel rows\n", analysis::a8_kernel_info(p, gpu).size());
  std::printf("  A9  %zu roofline points\n", analysis::a9_kernel_roofline(p, gpu).size());
  const auto by_name = analysis::a10_kernel_by_name(p, gpu);
  std::printf("  A10 %zu unique kernels (top: %s)\n", by_name.size(), by_name[0].name.c_str());
  std::printf("  A11 %zu layer aggregation rows\n", analysis::a11_kernel_by_layer(p, gpu).size());
  std::printf("  A12 %zu per-layer metric tuples\n", analysis::a12_layer_gpu_metrics(p).gflops.size());
  std::printf("  A13 %zu GPU/non-GPU rows\n", analysis::a13_gpu_vs_nongpu(p).size());
  std::printf("  A14 %zu layer roofline points\n", analysis::a14_layer_roofline(p, gpu).size());
  const auto agg = analysis::a15_model_aggregate(p, gpu);
  std::printf("  A15 model %s-bound, %.2f Gflops, occupancy %.1f%%\n",
              agg.memory_bound ? "memory" : "compute", agg.gflops, agg.occupancy_pct);
  return 0;
}
