// Figure 4: layer statistics by type for MLPerf_ResNet50_v1.5 —
// (a) A5 type distribution, (b) A6 latency by type, (c) A7 memory
// allocation by type.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Figure 4 / A5-A7 — layer statistics aggregated by type",
      "paper Fig. 4: counts Add 23.5% Mul 22.65% Conv2D 22.65% Relu 20.94% AddN 5.56%; "
      "latency Conv2D 58.56% Add 11.43% Mul 11.26% Relu 9.71% AddN 6.93%; "
      "alloc Mul 22.66% Conv2D 22.66% Add 22.52% Relu 19.62% AddN 9.88%");

  const auto result = bench::resnet50_leveled();
  const auto aggs = analysis::layer_type_aggregation(result.profile);

  report::TextTable t({"Layer Type", "Count", "Count %", "Latency (ms)", "Latency %",
                       "Alloc (MB)", "Alloc %"});
  for (const auto& a : aggs) {
    t.add_row({a.type, std::to_string(a.count), fmt_fixed(a.count_pct, 2),
               fmt_fixed(a.latency_ms, 2), fmt_fixed(a.latency_pct, 2), fmt_fixed(a.alloc_mb, 1),
               fmt_fixed(a.alloc_pct, 2)});
  }
  std::printf("%s", t.str().c_str());
  bench::footnote_shape();
  return 0;
}
