// Ablation: per-metric kernel-replay cost (simulated time).
//
// Section III-C: "GPU memory metrics are especially expensive to profile
// and can slow down execution by over 100x ... GPU kernels [are] replayed
// multiple times to capture the user-specified metrics." This bench
// quantifies the simulated slowdown of each metric set on the headline
// model.
#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header("Ablation — metric-collection replay cost",
                "paper Section III-C (memory metrics >100x on kernel-dense workloads)");

  const auto& model = bench::resnet50();
  const auto graph = model.build(64, true);

  const auto run_with_metrics = [&](const std::vector<std::string>& metrics) {
    profile::Session session(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
    auto& device = session.device();
    cupti::CuptiOptions copts;
    copts.metrics = metrics;
    cupti::CuptiProfiler prof(device, copts);
    prof.start();
    const auto result = session.executor().run(graph);
    prof.stop();
    return to_ms(result.latency());
  };

  const double baseline = run_with_metrics({});
  report::TextTable t({"Metric Set", "Replay Passes", "Model Latency (ms)", "Slowdown"});
  const auto add = [&](const std::string& label, const std::vector<std::string>& metrics) {
    int passes = 1;
    for (const auto& m : metrics) passes += cupti::metric_replay_passes(m);
    const double ms = run_with_metrics(metrics);
    t.add_row({label, std::to_string(passes), fmt_fixed(ms, 1),
               fmt_fixed(ms / baseline, 1) + "x"});
  };
  add("none (activity tracing only)", {});
  add("achieved_occupancy", {cupti::kAchievedOccupancy});
  add("flop_count_sp", {cupti::kFlopCountSp});
  add("dram_read_bytes", {cupti::kDramReadBytes});
  add("dram_read+write_bytes", {cupti::kDramReadBytes, cupti::kDramWriteBytes});
  add("all four (paper's set)", {cupti::kFlopCountSp, cupti::kDramReadBytes,
                                 cupti::kDramWriteBytes, cupti::kAchievedOccupancy});
  std::printf("%s", t.str().c_str());
  bench::footnote_shape();
  return 0;
}
