// Figure 11: MLPerf_ResNet50_v1.5 throughput and GPU latency across the
// five systems and batch sizes, plus the system-dependent kernel-set
// observation of Section IV-C.
#include <set>

#include "common.hpp"

int main() {
  using namespace xsp;
  bench::header(
      "Figure 11 — throughput & GPU latency across systems and batch sizes",
      "paper Fig. 11 + Section IV-C: V100 fastest; Quadro RTX lags on memory-bound layers "
      "despite higher peak FLOPS; pre-Volta parts dispatch maxwell_* kernels");

  const auto batches = analysis::batch_grid(256);

  report::TextTable tput({"System", "b=1", "b=2", "b=4", "b=8", "b=16", "b=32", "b=64", "b=128",
                          "b=256"});
  report::TextTable gpu_lat({"System", "b=1", "b=2", "b=4", "b=8", "b=16", "b=32", "b=64",
                             "b=128", "b=256"});

  for (const auto& system : sim::all_systems()) {
    profile::LeveledRunner runner(system, framework::FrameworkKind::kTFlow);
    std::vector<std::string> tput_row{system.name};
    std::vector<std::string> lat_row{system.name};
    std::set<std::string> conv_kernels;
    for (const std::int64_t batch : batches) {
      const auto result = runner.run_model(bench::resnet50(), batch, /*gpu_metrics=*/false);
      const double model_ms = to_ms(result.profile.model_latency);
      const double kernel_ms = to_ms(result.profile.total_kernel_latency());
      tput_row.push_back(fmt_fixed(static_cast<double>(batch) / model_ms * 1e3, 0));
      lat_row.push_back(fmt_fixed(kernel_ms, 1));
      if (batch == 256) {
        for (const auto& k : result.profile.kernels) {
          if (k.name.view().find("scudnn") != std::string_view::npos) conv_kernels.insert(k.name.str());
        }
      }
    }
    tput.add_row(tput_row);
    gpu_lat.add_row(lat_row);

    std::printf("%s conv kernel set at batch 256:", system.name.c_str());
    for (const auto& k : conv_kernels) std::printf(" %s", k.c_str());
    std::printf("\n");
  }

  std::printf("\n(a) throughput (inputs/sec):\n%s", tput.str().c_str());
  std::printf("\n(b) total GPU kernel latency (ms):\n%s", gpu_lat.str().c_str());
  bench::footnote_shape();
  return 0;
}
