// Ablation: cross-process ingest throughput through the collector path —
// RemoteSink -> UDS -> CollectorService -> ShardedTraceServer — against
// the in-process publication baseline the other ablations pin.
//
// Each iteration stands up a real daemon-in-miniature (listener + poll
// loop on its own thread), streams a fixed span population over the
// socket, and tears the stream down through the full drain protocol
// (footer, half-close, daemon ack), so the measured rate is the honest
// end-to-end figure a fleet producer sees — wire encode, kernel socket
// copies, frame reassembly, per-connection re-intern and id remap, and
// sharded publication all included.
//
//   BM_RemoteIngestUdsSingleProducer  one producer, one connection
//   BM_RemoteIngestUdsFourProducers   4 producer threads, 4 connections
//                                     into one daemon (the CI fleet shape)
//
// Rates are spans/s (items_per_second). The collector re-publishes every
// span it decodes, so in-process publication (~20M spans/s, see
// BENCH_abl_span_publication_*.json) is the ceiling; the gap is the
// transport tax.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "xsp/net/collector.hpp"
#include "xsp/net/endpoint.hpp"
#include "xsp/trace/remote_sink.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/trace_server.hpp"

namespace {

using namespace xsp;
using namespace xsp::trace;

constexpr std::size_t kSpansPerProducer = 16384;

net::Endpoint bench_endpoint() {
  return net::Endpoint::parse("unix:/tmp/xsp_bench_ingest_" +
                              std::to_string(::getpid()) + ".sock");
}

/// One fleet member's stream: the export-ablation span mix (interned
/// kernel name, a tag, two metrics) published through any SpanSink.
void publish_spans(SpanSink& sink, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    Span s;
    s.id = sink.next_span_id();
    s.level = kKernelLevel;
    s.name = "volta_scudnn_128x64_relu_interior_nn_v1";
    s.tracer = "remote_ingest_bench";
    s.begin = static_cast<TimePoint>(1'000'000'000 + i * 12'345);
    s.end = s.begin + 9'876;
    s.tags.set("kind", "kernel");
    s.metrics.set("flop_count_sp", 123456789012.0);
    s.metrics.set("achieved_occupancy", 0.4375);
    sink.publish(s);
  }
}

void run_fleet(benchmark::State& state, int producers) {
  const net::Endpoint ep = bench_endpoint();
  std::uint64_t total_spans = 0;
  std::uint64_t dropped = 0;
  for (auto _ : state) {
    ShardedTraceServer server(2, PublishMode::kSync);
    net::CollectorService service(ep, server);
    std::thread daemon([&service] { service.run(); });

    std::vector<std::thread> fleet;
    fleet.reserve(producers);
    for (int p = 0; p < producers; ++p) {
      fleet.emplace_back([&ep] {
        RemoteSink sink(ep);
        publish_spans(sink, kSpansPerProducer);
        sink.close();
      });
    }
    for (std::thread& t : fleet) t.join();
    service.stop();
    daemon.join();
    server.flush();

    const net::CollectorStats stats = service.stats();
    total_spans += stats.spans_ingested;
    dropped += stats.producer_dropped_spans;
    if (server.span_count() != producers * kSpansPerProducer) {
      state.SkipWithError("ingest lost spans");
      return;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total_spans));
  state.counters["producer_dropped"] =
      benchmark::Counter(static_cast<double>(dropped));
}

void BM_RemoteIngestUdsSingleProducer(benchmark::State& state) {
  run_fleet(state, 1);
}
// The pipeline's work happens on the daemon/sender threads, so rates must
// be against wall time, not the driving thread's CPU time.
BENCHMARK(BM_RemoteIngestUdsSingleProducer)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_RemoteIngestUdsFourProducers(benchmark::State& state) {
  run_fleet(state, 4);
}
BENCHMARK(BM_RemoteIngestUdsFourProducers)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
