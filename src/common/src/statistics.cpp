#include "xsp/common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace xsp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double trimmed_mean(std::span<const double> xs, double trim_fraction) {
  if (xs.size() < 3 || trim_fraction <= 0) return mean(xs);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto cut = static_cast<std::size_t>(trim_fraction * static_cast<double>(sorted.size()));
  // Never trim everything away; keep at least the middle element(s).
  const std::size_t keep = sorted.size() - 2 * cut;
  if (keep == 0) return mean(xs);
  const std::span<const double> middle(sorted.data() + cut, keep);
  return mean(middle);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs, double trim_fraction) {
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.trimmed_mean = trimmed_mean(xs, trim_fraction);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.p50 = percentile(xs, 50);
  s.p90 = percentile(xs, 90);
  s.p99 = percentile(xs, 99);
  return s;
}

}  // namespace xsp
