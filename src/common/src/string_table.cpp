#include "xsp/common/string_table.hpp"

#include <atomic>
#include <cstring>
#include <mutex>

namespace xsp::common {

StringTable& StringTable::global() {
  static StringTable table;
  return table;
}

namespace {

std::uint64_t next_table_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

StringTable::StringTable() : uid_(next_table_uid()) {
  // Reserve id 0 for the empty string: shard 0, slot 0.
  auto& shard = shards_[0];
  shard.strings.emplace_back();
  shard.index.emplace(std::string_view(shard.strings.back()), 0u);
  // Reserve the over-budget sentinel up front, before any budget can
  // apply: a rejected intern must always have a real, stable id to
  // return. Inserted directly (not via intern()) so that, like the
  // empty string, it is excluded from the size()/approx_bytes()
  // telemetry — but unlike id 0 it IS delivered by for_each_since,
  // exactly once, so cross-process decoders can resolve it.
  const std::size_t hash = std::hash<std::string_view>{}(kSentinel);
  const auto sentinel_shard_idx = static_cast<std::uint32_t>(hash & (kShardCount - 1));
  auto& sentinel_shard = shards_[sentinel_shard_idx];
  const auto slot = static_cast<std::uint32_t>(sentinel_shard.strings.size());
  sentinel_shard.strings.emplace_back(kSentinel);
  sentinel_id_ = (slot << kShardBits) | sentinel_shard_idx;
  sentinel_shard.index.emplace(std::string_view(sentinel_shard.strings.back()), sentinel_id_);
}

namespace {

/// Per-thread direct-mapped intern cache. Producers intern the same few
/// names over and over (kernel names, tag keys); a hit answers from TLS
/// with zero atomics, which also keeps concurrent publishers from
/// ping-ponging the shard lock cache line. Entries reference the table's
/// stable canonical storage, so hits never dangle.
struct InternCacheLine {
  const void* table;
  std::uint64_t table_uid;  ///< address reuse guard
  std::size_t hash;
  const char* data;
  std::uint32_t size;
  std::uint32_t id;
};

constexpr std::size_t kInternCacheSize = 256;  // power of two

}  // namespace

std::uint32_t StringTable::intern(std::string_view s) {
  if (s.empty()) return 0;
  const std::size_t hash = std::hash<std::string_view>{}(s);

  thread_local InternCacheLine cache[kInternCacheSize] = {};
  InternCacheLine& line = cache[hash & (kInternCacheSize - 1)];
  if (line.table == this && line.table_uid == uid_ && line.hash == hash &&
      line.size == s.size() && std::memcmp(line.data, s.data(), s.size()) == 0) {
    return line.id;
  }

  const auto shard_idx = static_cast<std::uint32_t>(hash & (kShardCount - 1));
  Shard& shard = shards_[shard_idx];
  std::string_view canonical;
  std::uint32_t id = 0;
  {
    std::shared_lock lk(shard.mu);
    if (auto it = shard.index.find(s); it != shard.index.end()) {
      canonical = it->first;
      id = it->second;
    }
  }
  if (canonical.data() == nullptr) {
    std::unique_lock lk(shard.mu);
    if (auto it = shard.index.find(s); it != shard.index.end()) {
      canonical = it->first;
      id = it->second;
    } else {
      const auto slot = static_cast<std::uint32_t>(shard.strings.size());
      // Id-space guard: at slot_limit_ the shifted slot would wrap into
      // another shard's id range and collide. Saturate to the sentinel.
      if (slot >= slot_limit_.load(std::memory_order_relaxed)) {
        rejected_interns_.fetch_add(1, std::memory_order_relaxed);
        return sentinel_id_;
      }
      // Budget guard: charge first, back out on overshoot so two
      // racing inserts can't both squeeze under the line. Shard byte
      // totals (what approx_bytes() reports) only grow on a real
      // insert, so steady-state approx_bytes() never exceeds a budget
      // that was in force when the table crossed it.
      const std::size_t cost = s.size() + kApproxEntryOverhead;
      const std::size_t budget = budget_bytes_.load(std::memory_order_relaxed);
      const std::size_t prev = total_bytes_.fetch_add(cost, std::memory_order_relaxed);
      if (budget != 0 && prev + cost > budget) {
        total_bytes_.fetch_sub(cost, std::memory_order_relaxed);
        rejected_interns_.fetch_add(1, std::memory_order_relaxed);
        // Deliberately NOT cached: a later budget raise must let this
        // exact string intern for real, and rejected_interns stays an
        // exact per-call count.
        return sentinel_id_;
      }
      shard.strings.emplace_back(s);
      shard.bytes += s.size();
      id = (slot << kShardBits) | shard_idx;
      canonical = std::string_view(shard.strings.back());
      shard.index.emplace(canonical, id);
    }
  }
  line = {this, uid_, hash, canonical.data(), static_cast<std::uint32_t>(canonical.size()), id};
  return id;
}

const std::string& StringTable::str(std::uint32_t id) const {
  const Shard& shard = shards_[id & (kShardCount - 1)];
  std::shared_lock lk(shard.mu);
  return shard.strings.at(id >> kShardBits);
}

std::size_t StringTable::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lk(shard.mu);
    total += shard.strings.size();
  }
  // Subtract the reserved entries (empty string + sentinel).
  return total - 2;
}

std::size_t StringTable::approx_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lk(shard.mu);
    total += shard.bytes + shard.strings.size() * kApproxEntryOverhead;
  }
  // Exclude the reserved entries (empty string + sentinel), mirroring
  // size(); the sentinel's character bytes were never added to
  // shard.bytes, so entry overheads are the whole correction.
  return total - 2 * kApproxEntryOverhead;
}

}  // namespace xsp::common
