#include "xsp/common/format.hpp"

#include <cmath>
#include <cstdio>

namespace xsp {

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_bytes_mb(double bytes, int digits) { return fmt_fixed(bytes / 1e6, digits); }

std::string fmt_bytes_gb(double bytes, int digits) { return fmt_fixed(bytes / 1e9, digits); }

std::string fmt_count(std::int64_t v) {
  const bool neg = v < 0;
  std::uint64_t mag = neg ? static_cast<std::uint64_t>(-(v + 1)) + 1 : static_cast<std::uint64_t>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string fmt_percent(double fraction, int digits) {
  return fmt_fixed(fraction * 100.0, digits) + "%";
}

}  // namespace xsp
