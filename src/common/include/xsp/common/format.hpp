// Small formatting helpers shared by reports and benches.
#pragma once

#include <cstdint>
#include <string>

namespace xsp {

/// Format a double with `digits` decimal places ("12.34").
std::string fmt_fixed(double v, int digits = 2);

/// Format a byte count with a binary-ish human unit as the paper's tables do
/// (MB with 1e6 divisor, GB with 1e9).
std::string fmt_bytes_mb(double bytes, int digits = 2);
std::string fmt_bytes_gb(double bytes, int digits = 2);

/// Format a count with thousands separators ("1,563,300").
std::string fmt_count(std::int64_t v);

/// Percent with a trailing % sign.
std::string fmt_percent(double fraction, int digits = 2);

}  // namespace xsp
