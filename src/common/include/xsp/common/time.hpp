// Time representation for the XSP simulator.
//
// All latencies in the system are *virtual* (simulated) time, expressed as
// signed 64-bit nanosecond counts. Virtual time makes every run
// deterministic and lets tests assert exact latencies, which would be
// impossible against a wall clock.
#pragma once

#include <cstdint>

namespace xsp {

/// Nanoseconds of simulated time. Signed so durations can be subtracted
/// without surprises; negative durations indicate a logic error upstream.
using Ns = std::int64_t;

/// A point on the simulated timeline, as nanoseconds since the engine epoch.
using TimePoint = std::int64_t;

constexpr Ns kNsPerUs = 1'000;
constexpr Ns kNsPerMs = 1'000'000;
constexpr Ns kNsPerSec = 1'000'000'000;

/// Construct a duration from microseconds.
constexpr Ns us(double v) { return static_cast<Ns>(v * static_cast<double>(kNsPerUs)); }
/// Construct a duration from milliseconds.
constexpr Ns ms(double v) { return static_cast<Ns>(v * static_cast<double>(kNsPerMs)); }
/// Construct a duration from seconds.
constexpr Ns seconds(double v) { return static_cast<Ns>(v * static_cast<double>(kNsPerSec)); }

/// Convert a duration to floating-point microseconds.
constexpr double to_us(Ns v) { return static_cast<double>(v) / static_cast<double>(kNsPerUs); }
/// Convert a duration to floating-point milliseconds.
constexpr double to_ms(Ns v) { return static_cast<double>(v) / static_cast<double>(kNsPerMs); }
/// Convert a duration to floating-point seconds.
constexpr double to_seconds(Ns v) { return static_cast<double>(v) / static_cast<double>(kNsPerSec); }

}  // namespace xsp
