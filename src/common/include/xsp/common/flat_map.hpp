// FlatMap: fixed-capacity, insertion-ordered flat key/value storage for
// span annotations.
//
// Span tag/metric sets are small and bounded (a layer span carries two tags
// and two metrics; a kernel execution span three tags and four metrics), so
// node-based std::map storage paid one heap allocation per entry on the
// publish hot path. FlatMap stores keys and values in separate inline
// arrays (struct-of-arrays keeps double values naturally aligned without
// per-entry padding), making the containing Span trivially copyable: batch
// hand-off and timeline assembly move spans with memcpy and destroy them
// for free.
//
// The capacity is a hard bound: set() beyond it drops the new entry and
// returns false. Producers with unbounded annotations should shard them
// across spans rather than grow one span without limit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>

#include "xsp/common/string_table.hpp"

namespace xsp::common {

template <typename V, std::size_t N>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<V>);

 public:
  /// Entry view yielded by iteration.
  struct Entry {
    StrId key;
    V value;
  };

  class const_iterator {
   public:
    const_iterator(const FlatMap* map, std::uint32_t pos) : map_(map), pos_(pos) {}
    Entry operator*() const { return {map_->keys_[pos_], map_->values_[pos_]}; }
    const_iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator!=(const const_iterator& other) const { return pos_ != other.pos_; }

   private:
    const FlatMap* map_;
    std::uint32_t pos_;
  };

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return N; }

  [[nodiscard]] const_iterator begin() const noexcept { return {this, 0}; }
  [[nodiscard]] const_iterator end() const noexcept { return {this, count_}; }

  [[nodiscard]] const V* find(StrId key) const noexcept {
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (keys_[i] == key) return &values_[i];
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t count(StrId key) const noexcept { return find(key) ? 1 : 0; }

  /// Throws std::out_of_range like std::map::at.
  [[nodiscard]] const V& at(StrId key) const {
    if (const V* v = find(key)) return *v;
    throw std::out_of_range("FlatMap::at: no entry for \"" + key.str() + '"');
  }

  /// Insert or overwrite. Returns false (dropping the entry) when the map
  /// is full and `key` is not already present.
  bool set(StrId key, V value) noexcept {
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (keys_[i] == key) {
        values_[i] = value;
        return true;
      }
    }
    if (count_ == N) return false;
    keys_[count_] = key;
    values_[count_] = value;
    ++count_;
    return true;
  }

  void clear() noexcept { count_ = 0; }

  /// True when the inline entry count is within capacity. A FlatMap
  /// memcpy'd from an untrusted byte stream (trace::BinaryReader) must
  /// pass this check before iteration — begin()/end() trust count_.
  [[nodiscard]] bool valid() const noexcept { return count_ <= N; }

  /// Rewrite every key in place: key_i = fn(key_i). The wire decoder's
  /// re-interning hook (writer-process StrIds -> this process's table);
  /// requires valid().
  template <typename Fn>
  void remap_keys(Fn&& fn) {
    for (std::uint32_t i = 0; i < count_; ++i) keys_[i] = fn(keys_[i]);
  }

  /// Rewrite every value in place: value_i = fn(value_i). Used by the
  /// wire decoder when V is itself an interned id (TagMap values).
  template <typename Fn>
  void remap_values(Fn&& fn) {
    for (std::uint32_t i = 0; i < count_; ++i) values_[i] = fn(values_[i]);
  }

 private:
  StrId keys_[N] = {};
  V values_[N] = {};
  std::uint32_t count_ = 0;
};

}  // namespace xsp::common
