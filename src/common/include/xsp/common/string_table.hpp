// StringTable / StrId: process-wide string interning for the span hot path.
//
// Every profiled event at every stack level becomes a span (paper,
// Section III-A), so at production trace rates the measurement layer's own
// allocation behaviour dominates: two heap strings plus two node-based maps
// per span is what the pre-refactor profile showed. Spans therefore carry
// 32-bit interned ids; the bytes live once, in a sharded global table.
//
// Properties:
//   * interning is thread-safe (sharded; shared-lock fast path on hit),
//   * ids are stable for the process lifetime — resolution never dangles,
//   * equal strings always intern to the equal id, so span-keyed
//     aggregations compare and hash ids instead of bytes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xsp::common {

class StringTable {
 public:
  // Id layout: (slot << kShardBits) | shard. Shard choice follows the
  // string hash so unrelated producers rarely contend on one shard lock.
  // Public because wire serialization walks the table in id order per
  // shard (see Cursor / for_each_since below).
  static constexpr std::uint32_t kShardBits = 4;
  static constexpr std::uint32_t kShardCount = 1u << kShardBits;

  /// Hard per-shard slot ceiling: one more slot and `slot << kShardBits`
  /// would wrap the 32-bit id space and hand out colliding StrIds.
  static constexpr std::uint32_t kMaxSlotsPerShard = 1u << (32 - kShardBits);

  /// The string the reserved over-budget sentinel id resolves to.
  static constexpr std::string_view kSentinel = "<interned-cap>";

  /// The process-wide table all StrIds resolve against.
  static StringTable& global();

  StringTable();
  StringTable(const StringTable&) = delete;
  StringTable& operator=(const StringTable&) = delete;

  /// Intern `s`, returning its stable id. The empty string is always id 0.
  /// Bounded: once the configured byte budget (set_budget_bytes) is
  /// reached — or a shard runs out of id space — new strings are NOT
  /// interned; the call returns sentinel_id() and bumps
  /// rejected_interns() instead of growing. Already-interned strings
  /// keep resolving to their real ids regardless of the budget.
  std::uint32_t intern(std::string_view s);

  /// Cap the table at roughly `budget` bytes as measured by
  /// approx_bytes(); 0 (the default) means unbounded. Lowering the
  /// budget below current usage rejects all further inserts but never
  /// evicts — ids stay stable for the process lifetime. May be changed
  /// at any time from any thread.
  void set_budget_bytes(std::size_t budget) noexcept {
    budget_bytes_.store(budget, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t budget_bytes() const noexcept {
    return budget_bytes_.load(std::memory_order_relaxed);
  }

  /// Lifetime count of intern() calls rejected by the budget or the
  /// per-shard slot ceiling. Monotonic; each rejected call counts once
  /// (rejections are never cached, so repeated calls keep counting).
  [[nodiscard]] std::uint64_t rejected_interns() const noexcept {
    return rejected_interns_.load(std::memory_order_relaxed);
  }

  /// The id every rejected intern() resolves to; interned at
  /// construction (before any budget applies), so it is always a real,
  /// stable entry that resolves to kSentinel.
  [[nodiscard]] std::uint32_t sentinel_id() const noexcept { return sentinel_id_; }

  /// Test seam: lower the per-shard slot ceiling so the id-space
  /// overflow guard is exercisable without interning 2^28 strings.
  /// Production code must never call this.
  void set_slot_limit_for_testing(std::uint32_t limit) noexcept {
    slot_limit_.store(limit, std::memory_order_relaxed);
  }

  /// Resolve an id. Valid for the lifetime of the table (the global table
  /// never evicts, so resolved references are stable).
  [[nodiscard]] const std::string& str(std::uint32_t id) const;
  [[nodiscard]] std::string_view view(std::uint32_t id) const { return str(id); }

  /// Number of distinct strings interned so far.
  [[nodiscard]] std::size_t size() const;

  /// Approximate resident bytes of the table: interned character data
  /// plus a fixed per-entry estimate for the std::string header and the
  /// index slot. O(shard count) — per-shard byte totals are maintained at
  /// insert — so it is cheap enough to sample every snapshot. The table
  /// never evicts, so this only grows: it is the telemetry a long-running
  /// multi-model service watches to see interned-annotation growth
  /// (dynamically composed tag values: grid/block dims, shapes). Under a
  /// byte budget (set_budget_bytes) it plateaus at the budget instead.
  [[nodiscard]] std::size_t approx_bytes() const;

  /// Per-entry overhead charged by approx_bytes() on top of character
  /// data: the deque's std::string header plus one index entry
  /// (string_view key + id + bucket link).
  static constexpr std::size_t kApproxEntryOverhead =
      sizeof(std::string) + sizeof(std::string_view) + sizeof(std::uint32_t) * 2 +
      sizeof(void*);

  /// Position in the table's per-shard intern sequences: everything a
  /// serializer needs to remember to later ask "which strings are new
  /// since I last looked?". Default-constructed, a cursor points at the
  /// beginning of time — the first snapshot delivers the whole table.
  struct Cursor {
    std::array<std::uint32_t, kShardCount> next{};
  };

  /// Visit every (id, string) interned after `cursor` was last advanced,
  /// then advance it past them — the string-table delta a binary wire
  /// writer flushes before the spans that reference the new ids. Ids are
  /// stable and strings append-only, so successive calls with one cursor
  /// partition the table exactly once; the reserved empty string (id 0)
  /// is never delivered. Thread-safe against concurrent intern(): a
  /// string interned while the snapshot runs lands in this delta or the
  /// next one, never in both and never lost. The callback runs under the
  /// shard's shared lock — keep it cheap and do not intern from it.
  /// `fn` is called as fn(std::uint32_t id, std::string_view s).
  template <typename Fn>
  void for_each_since(Cursor& cursor, Fn&& fn) const {
    for (std::uint32_t shard_idx = 0; shard_idx < kShardCount; ++shard_idx) {
      const Shard& shard = shards_[shard_idx];
      std::shared_lock lk(shard.mu);
      const auto end = static_cast<std::uint32_t>(shard.strings.size());
      for (std::uint32_t slot = cursor.next[shard_idx]; slot < end; ++slot) {
        const std::uint32_t id = (slot << kShardBits) | shard_idx;
        if (id != 0) fn(id, std::string_view(shard.strings[slot]));
      }
      cursor.next[shard_idx] = end;
    }
  }

 private:
  /// Process-unique table generation: guards per-thread intern caches
  /// against a destroyed table whose address was reused.
  std::uint64_t uid_;

  struct Shard {
    mutable std::shared_mutex mu;
    // Views key into `strings`, whose elements have stable addresses.
    std::unordered_map<std::string_view, std::uint32_t> index;
    std::deque<std::string> strings;
    /// Character bytes interned into this shard (for approx_bytes()).
    std::size_t bytes = 0;
  };

  std::array<Shard, kShardCount> shards_;

  /// Sum of (char bytes + kApproxEntryOverhead) across all non-reserved
  /// entries — kept equal to approx_bytes() so the budget check is one
  /// relaxed load instead of a 16-shard lock walk (which would also
  /// invert lock order against a concurrent insert on another shard).
  std::atomic<std::size_t> total_bytes_{0};
  std::atomic<std::size_t> budget_bytes_{0};
  std::atomic<std::uint64_t> rejected_interns_{0};
  std::atomic<std::uint32_t> slot_limit_{kMaxSlotsPerShard};
  std::uint32_t sentinel_id_ = 0;
};

/// Interned string id. Implicitly constructible from any string-ish value
/// (which interns into the global table), so call sites read like plain
/// string assignment while storage stays a 32-bit handle.
class StrId {
 public:
  constexpr StrId() noexcept = default;
  StrId(std::string_view s) : id_(StringTable::global().intern(s)) {}  // NOLINT(google-explicit-constructor)
  StrId(const char* s) : StrId(std::string_view(s)) {}                 // NOLINT(google-explicit-constructor)
  StrId(const std::string& s) : StrId(std::string_view(s)) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::uint32_t raw() const noexcept { return id_; }
  [[nodiscard]] bool empty() const noexcept { return id_ == 0; }

  /// Rebuild a StrId from a raw table id without interning — the binary
  /// wire decoder's path after it re-interned a string delta. The caller
  /// owns validity: resolving an id the table never handed out throws
  /// std::out_of_range (never UB).
  [[nodiscard]] static StrId from_raw(std::uint32_t id) noexcept {
    StrId s;
    s.id_ = id;
    return s;
  }

  [[nodiscard]] const std::string& str() const { return StringTable::global().str(id_); }
  [[nodiscard]] std::string_view view() const { return str(); }
  [[nodiscard]] const char* c_str() const { return str().c_str(); }

  friend bool operator==(StrId a, StrId b) noexcept { return a.id_ == b.id_; }
  friend bool operator!=(StrId a, StrId b) noexcept { return a.id_ != b.id_; }
  // Exact-match text comparisons (avoid ambiguity with the implicit
  // interning constructor; comparing does not intern).
  friend bool operator==(StrId a, std::string_view b) { return a.view() == b; }
  friend bool operator==(std::string_view a, StrId b) { return a == b.view(); }
  friend bool operator==(StrId a, const char* b) { return a.view() == b; }
  friend bool operator==(const char* a, StrId b) { return b.view() == a; }
  friend bool operator==(StrId a, const std::string& b) { return a.view() == b; }
  friend bool operator==(const std::string& a, StrId b) { return b.view() == a; }
  /// Lexicographic, for deterministic presentation-order sorts.
  friend bool operator<(StrId a, StrId b) { return a.id_ != b.id_ && a.view() < b.view(); }

  friend std::ostream& operator<<(std::ostream& os, StrId id) { return os << id.view(); }

 private:
  std::uint32_t id_ = 0;
};

struct StrIdHash {
  std::size_t operator()(StrId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.raw());
  }
};

}  // namespace xsp::common
