// Statistical summaries used by the analysis pipeline.
//
// The paper's analysis pipeline "takes traces from a user-defined number of
// evaluations, correlates the information, and computes the trimmed mean
// value (or other user-defined statistical summaries)" (Section III-D).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xsp {

/// Arithmetic mean; returns 0 for an empty input.
double mean(std::span<const double> xs);

/// Sample standard deviation; returns 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Trimmed mean: drop `trim_fraction` of the samples from each tail (after
/// sorting) and average the rest. `trim_fraction` in [0, 0.5). With fewer
/// than three samples, falls back to the plain mean.
double trimmed_mean(std::span<const double> xs, double trim_fraction = 0.2);

/// Linear-interpolated percentile, `p` in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Minimum; returns 0 for an empty input.
double min_of(std::span<const double> xs);

/// Maximum; returns 0 for an empty input.
double max_of(std::span<const double> xs);

/// A one-pass accumulation of a sample set with the summaries the analysis
/// pipeline reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double trimmed_mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Compute every Summary field from the sample set.
Summary summarize(std::span<const double> xs, double trim_fraction = 0.2);

}  // namespace xsp
