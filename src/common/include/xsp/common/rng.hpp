// Deterministic pseudo-random number generation.
//
// The simulator is fully deterministic given a seed; SplitMix64 is small,
// fast, and has well-understood statistical quality for this use.
#pragma once

#include <cstdint>

namespace xsp {

/// SplitMix64 generator (Steele, Lea, Flood 2014 finalizer).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return n == 0 ? 0 : next() % n; }

 private:
  std::uint64_t state_;
};

}  // namespace xsp
