// Virtual clocks driving the discrete-event simulation.
#pragma once

#include <cassert>

#include "xsp/common/time.hpp"

namespace xsp {

/// A monotonically advancing simulated clock.
///
/// The CPU side of the simulation owns one SimClock and advances it as work
/// is (virtually) performed; the GPU device schedules kernel executions on
/// the same timeline. There is no relation to the host wall clock.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(TimePoint start) : now_(start) {}

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Advance the clock by a non-negative duration and return the new time.
  TimePoint advance(Ns d) noexcept {
    assert(d >= 0 && "cannot advance a clock backwards");
    now_ += d;
    return now_;
  }

  /// Move the clock forward to `t` if `t` is in the future; no-op otherwise.
  /// Used when the CPU blocks on an event completing later on the timeline
  /// (e.g. a stream synchronize).
  TimePoint advance_to(TimePoint t) noexcept {
    if (t > now_) now_ = t;
    return now_;
  }

  /// Reset to a given origin (used between independent evaluations).
  void reset(TimePoint t = 0) noexcept { now_ = t; }

 private:
  TimePoint now_ = 0;
};

}  // namespace xsp
