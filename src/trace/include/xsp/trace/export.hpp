// Trace exporters: Chrome trace-event JSON (chrome://tracing, Perfetto)
// and a flat span JSON for downstream tooling.
//
// The tracing server aggregates spans the way Jaeger/Zipkin-style backends
// do; exporting the assembled timeline in the Chrome trace-event format
// gives the same "smooth hierarchical step-through" experience the paper
// describes, inside a standard viewer.
#pragma once

#include <cstdint>
#include <string>

#include "xsp/trace/timeline.hpp"

namespace xsp::trace {

/// Chrome trace-event JSON ("traceEvents" array of complete "X" events).
/// Stack levels map to track (tid) ids so the viewer shows one lane per
/// level; tags and metrics become event args.
std::string to_chrome_trace(const Timeline& timeline);

/// Flat JSON array of spans with ids, parents, levels, timestamps, tags,
/// and metrics — lossless for re-analysis.
std::string to_span_json(const Timeline& timeline);

/// Collection-level telemetry to embed alongside the spans — the numbers
/// an operator needs without scanning the trace. Populated from
/// TraceServer::dropped_annotation_count() / ShardedTraceServer.
struct TraceMeta {
  /// Server-level aggregate of per-span annotation drops (tag/metric
  /// capacity overflow) for the run that produced the timeline.
  std::uint64_t dropped_annotations = 0;
  /// Number of trace-server shards the spans were collected across.
  std::size_t shard_count = 1;
};

/// Like to_span_json(timeline), but wraps the span array in an object with
/// a "metadata" section: {"metadata":{...},"spans":[...]}.
std::string to_span_json(const Timeline& timeline, const TraceMeta& meta);

}  // namespace xsp::trace
