// Trace exporters: Chrome trace-event JSON (chrome://tracing, Perfetto)
// and a flat span JSON for downstream tooling.
//
// The tracing server aggregates spans the way Jaeger/Zipkin-style backends
// do; exporting the assembled timeline in the Chrome trace-event format
// gives the same "smooth hierarchical step-through" experience the paper
// describes, inside a standard viewer.
//
// There is exactly one JSON-emission path: StreamingExporter. It consumes
// spans incrementally (single spans, publication batches, or whole batch
// lists) and writes through a bounded internal buffer to any std::ostream
// or sink callback — no whole-trace string is ever materialized, so a
// long-running service can export an unbounded trace with bounded memory.
// The classic to_chrome_trace()/to_span_json() helpers are thin wrappers
// that drive the same core over an assembled timeline into a string.
// Batch framing and the byte sink live in wire.hpp (FrameSink): the same
// seam the binary wire writer drives, so "which bytes" (JSON text vs
// binary frames) is the only difference between export backends.
//
// Number formatting is exact by construction:
//   * Chrome "ts"/"dur" are fixed-point microseconds computed from the
//     integer nanosecond timestamps (123456789 ns -> "123456.789"), never
//     default-precision double streaming — a >1 s trace keeps microsecond
//     positions instead of snapping to 6 significant digits.
//   * Metric values print integers up to 2^53 exactly and round-trip every
//     other finite double (shortest-round-trip via std::to_chars);
//     non-finite values emit null.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "xsp/trace/span.hpp"
#include "xsp/trace/timeline.hpp"
#include "xsp/trace/wire.hpp"

namespace xsp::trace {

// TraceMeta lives in wire.hpp (the format-agnostic serialization core);
// every backend — this JSON exporter's metadata footer, the binary
// writer's Footer frame — ships the same telemetry struct.

/// Output document shape of a streamed export.
enum class ExportFormat : std::uint8_t {
  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with one complete "X" event per span and per-level track names.
  kChromeTrace,
  /// Flat span JSON — lossless for re-analysis. A plain array [...] by
  /// default; with_metadata wraps it as {"spans":[...],"metadata":{...}}
  /// (metadata in the footer, so counts/drops can be filled in after the
  /// last span has streamed).
  kSpanJson,
  /// XSP binary wire format v1 (wire.hpp): length-prefixed memcpy'd span
  /// batches + string-table deltas. Not a StreamingExporter format —
  /// handled by BinaryWriter; the StreamingExporter constructor rejects
  /// it with std::invalid_argument.
  kBinary,
};

const char* export_format_name(ExportFormat f);

/// Incremental JSON exporter with bounded memory.
///
/// Spans stream through a fixed-size internal buffer into the sink; the
/// exporter's footprint is independent of how many spans pass through it
/// (pinned by StreamingExport.ExporterAllocationIsIndependentOfSpanCount).
///
/// Thread safety: write_span/write_batch/write_batches/set_meta/finish may
/// be called from any thread; batches are formatted into a per-thread
/// scratch buffer outside the sink lock, so N shard collector threads pay
/// the lock only to splice finished chunks into the one ordered output.
/// Events never interleave mid-object; cross-batch order is the arrival
/// order at the sink, which is as arbitrary as publication order itself
/// (viewers and re-analysis order by timestamp, not array position).
class StreamingExporter {
 public:
  using WriteFn = FrameSink::WriteFn;

  /// Internal buffer size at which buffered output is pushed to the sink
  /// (the FrameSink threshold). The buffer may transiently exceed this by
  /// one formatted event.
  static constexpr std::size_t kFlushThreshold = FrameSink::kFlushThreshold;

  /// Stream to a sink callback. `with_metadata` selects the span-JSON
  /// wrapped form (ignored for kChromeTrace). Throws std::invalid_argument
  /// for ExportFormat::kBinary — that format is BinaryWriter's (wire.hpp).
  StreamingExporter(ExportFormat format, WriteFn sink, bool with_metadata = false);

  /// Stream to an ostream (file, socket, stringstream). The stream must
  /// outlive the exporter.
  StreamingExporter(ExportFormat format, std::ostream& os, bool with_metadata = false);

  /// Finishes the document if finish() was not called explicitly.
  ~StreamingExporter();

  StreamingExporter(const StreamingExporter&) = delete;
  StreamingExporter& operator=(const StreamingExporter&) = delete;

  /// Write one span. `parent` is the parent reference to emit for span
  /// JSON (wrappers pass the timeline-resolved parent; raw streaming uses
  /// the span's own explicit parent).
  void write_span(const Span& span, SpanId parent);

  /// Write every span of a publication batch (parents: span.parent).
  void write_batch(const SpanBatch& batch);

  /// Write every span of a batch list — the TraceServer drain-subscriber
  /// shape (parents: span.parent).
  void write_batches(const SpanBatches& batches);

  /// Set/update the metadata emitted in the span-JSON footer. May be
  /// called any time before finish() — telemetry like the dropped-
  /// annotation count is only final after the last drain.
  void set_meta(const TraceMeta& meta);

  /// Attach an extra section to the span-JSON metadata footer:
  /// `"key":<json_value>` is spliced verbatim after the built-in fields.
  /// `json_value` must be a complete, valid JSON value — the caller owns
  /// its well-formedness (exports are pinned by a real JSON parser in
  /// tests). This is how subsystems layered above trace (the online
  /// analysis aggregates) ship their final numbers in the document
  /// without the exporter knowing their types. Setting the same key again
  /// replaces the section; ignored for kChromeTrace. May be called any
  /// time before finish().
  void set_footer_section(std::string key, std::string json_value);

  /// Write the document footer and flush. Idempotent. Writes arriving
  /// after finish() are dropped (asserted in debug builds) — detach drain
  /// subscribers before finishing so no spans are lost. Chrome footer
  /// carries the per-level track-name events; span-JSON footer carries
  /// the metadata section when enabled.
  void finish();

  /// Spans written so far (also the "span_count" the footer reports).
  [[nodiscard]] std::uint64_t spans_written() const;

  /// Bytes accepted by the sink so far, including buffered bytes — the
  /// "export_bytes" cost figure the span-JSON footer reports.
  [[nodiscard]] std::uint64_t bytes_written() const { return sink_.bytes_written(); }

 private:
  void append_event(std::string& out, const Span& span, SpanId parent) const;
  /// Splice pre-formatted events (each ','-prefixed) into the output.
  void append_chunk_locked(std::string_view chunk, std::uint64_t span_count);

  ExportFormat format_;
  bool with_metadata_;
  FrameSink sink_;

  mutable std::mutex mu_;
  bool wrote_event_ = false;
  bool finished_ = false;
  std::uint64_t spans_written_ = 0;
  TraceMeta meta_{};
  /// Extra footer sections (key, pre-serialized JSON value), emitted in
  /// set order after the built-in metadata fields.
  std::vector<std::pair<std::string, std::string>> footer_sections_;
};

/// Chrome trace-event JSON ("traceEvents" array of complete "X" events).
/// Stack levels map to track (tid) ids so the viewer shows one lane per
/// level; tags and metrics become event args. Thin wrapper over
/// StreamingExporter collecting into a string.
std::string to_chrome_trace(const Timeline& timeline);

/// Flat JSON array of spans with ids, parents, levels, timestamps, tags,
/// and metrics — lossless for re-analysis.
std::string to_span_json(const Timeline& timeline);

/// Like to_span_json(timeline), but wraps the span array in an object with
/// a trailing "metadata" section: {"spans":[...],"metadata":{...}} — the
/// same layout the streaming path produces, where final telemetry is only
/// known after the last span.
std::string to_span_json(const Timeline& timeline, const TraceMeta& meta);

}  // namespace xsp::trace
