// XSP binary span-batch wire format (v4; v1–v3 accepted) and the
// format-agnostic serialization core shared by every exporter backend.
//
// The JSON path (StreamingExporter) tops out around 2.8M spans/s because
// every span is re-formatted as text. Spans are trivially copyable fixed-size
// PODs whose strings are interned 32-bit StrIds, so the binary format moves
// whole sealed batches with memcpy and ships string bytes exactly once, as
// deltas of the process-wide StringTable — an order of magnitude more
// throughput through the same drain-subscriber seam, and the on-disk /
// on-socket format a cross-process collector daemon will speak (ROADMAP:
// cross-process trace ingestion).
//
// Layered as:
//   FrameSink      — bounded-buffer byte sink (ostream or callback), the
//                    seam both StreamingExporter and BinaryWriter drive.
//   wire::*        — the format itself: versioned stream header, then
//                    length-prefixed frames (StringDelta, SpanBatch,
//                    Footer), all little-into-host-endian POD structs.
//   BinaryWriter   — drain-subscriber-compatible encoder: per flush, a
//                    StringDelta frame carrying only interns new since the
//                    last flush (StringTable::for_each_since cursor), then
//                    one SpanBatch frame per sealed batch (payload is the
//                    batch memcpy'd whole). finish() appends a Footer frame
//                    with the collection telemetry (TraceMeta).
//   BinaryReader   — validating decoder: checks magic/version/endianness/
//                    span-size, bounds every length prefix, re-interns the
//                    deltas into this process's StringTable and rewrites
//                    each span's StrIds, and yields SpanBatches ready for
//                    Timeline::assemble or OnlineAnalyzer replay. Hostile
//                    input (truncation, oversized prefixes, unknown ids,
//                    out-of-bounds annotation counts) throws WireError —
//                    never UB.
//
// Format spec (layout, delta semantics, versioning/compat rules):
// src/trace/README.md, "XSP binary wire format v1".
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>

#include "xsp/common/string_table.hpp"
#include "xsp/trace/span.hpp"

namespace xsp::trace {

/// Collection-level telemetry to embed alongside the spans — the numbers
/// an operator needs without scanning the trace. Populated from
/// TraceServer::dropped_annotation_count() / ShardedTraceServer. Defined
/// here, in the format-agnostic serialization core, because every backend
/// ships it: the JSON exporter as its metadata footer, the binary writer
/// as its Footer frame.
struct TraceMeta {
  /// Server-level aggregate of per-span annotation drops (tag/metric
  /// capacity overflow) for the run that produced the timeline.
  std::uint64_t dropped_annotations = 0;
  /// Number of trace-server shards the spans were collected across.
  std::size_t shard_count = 1;
  /// Global StringTable growth telemetry sampled at export time: distinct
  /// interned strings and their approximate resident bytes. The table
  /// never evicts, so a long-running service watches these to see
  /// interned-annotation growth. 0/0 when not sampled.
  std::uint64_t interned_strings = 0;
  std::uint64_t interned_bytes = 0;
  /// Producer-slot health sampled at export time (see
  /// TraceServer::live_slot_count() et al.): slots currently registered,
  /// slots retired by thread-exit reclamation over the collection fleet's
  /// lifetime, and approximate bytes resident in slots. A live_slots
  /// figure that tracks thread churn instead of live threads means
  /// reclamation is off or broken. All 0 when not sampled.
  std::uint64_t live_slots = 0;
  std::uint64_t retired_slots = 0;
  std::uint64_t slot_bytes = 0;
  /// Remote-transport telemetry (trace::RemoteSink): spans dropped by the
  /// producer because the bounded send buffer was full or a connection
  /// died with frames still queued, and the number of reconnects the sink
  /// performed. Non-zero remote_dropped_spans means the collector's copy
  /// of the trace is incomplete — by accounted backpressure, never
  /// silently. Both 0 when no remote sink was involved.
  std::uint64_t remote_dropped_spans = 0;
  std::uint64_t remote_reconnects = 0;
  /// Sampling accounting (trace::Sampler): spans the admission policy kept
  /// and shed at publish. `published == sampled_kept + sampled_dropped`
  /// whenever a sampler was attached; both 0 when none was (every span
  /// implicitly admitted). Consumers rescale rate/count aggregates by the
  /// effective sampling fraction (see analysis::OnlineAnalyzer). Wire v2
  /// footer fields; a v1 stream decodes with both zero.
  std::uint64_t sampled_kept = 0;
  std::uint64_t sampled_dropped = 0;
  /// Bounded-interning accounting (wire v4 footer fields): the string
  /// table's configured byte budget (0 = unbounded) and the lifetime
  /// count of intern() calls rejected at the budget or the id-space cap
  /// (each resolved to the `<interned-cap>` sentinel instead of growing
  /// the table). Non-zero rejected_interns means some annotation values
  /// in the trace read as the sentinel. v1–v3 streams decode with both
  /// zero.
  std::uint64_t strtab_budget_bytes = 0;
  std::uint64_t rejected_interns = 0;
};

/// Bounded-buffer byte sink: the serialization core's output seam. Bytes
/// append into a fixed-threshold internal buffer and are pushed to the
/// underlying ostream/callback whenever the threshold is reached — the
/// sink's footprint is independent of how many bytes stream through it.
/// Writes at or above the threshold bypass the buffer entirely (after a
/// flush, to preserve order), so a whole-batch memcpy payload is handed to
/// the sink zero-copy. Thread-safe; bytes of concurrent write() calls
/// never interleave.
///
/// Fallible sinks (sockets): construct with a TryWriteFn, which reports
/// how many bytes it accepted. A short count keeps the unaccepted suffix
/// buffered — in order, ahead of later writes — and retries it on the
/// next write()/flush(), so a saturated socket never tears a frame; a
/// kWriteError return latches failure (failed()), after which all bytes
/// are discarded and write()/flush() return false. Infallible WriteFn
/// sinks behave exactly as before (never short, never failed).
class FrameSink {
 public:
  using WriteFn = std::function<void(std::string_view)>;
  /// Fallible sink callback: returns bytes accepted (0..size — a short
  /// count is backpressure, the rest stays buffered for retry) or
  /// kWriteError for a hard, unrecoverable failure.
  using TryWriteFn = std::function<std::size_t(std::string_view)>;
  static constexpr std::size_t kWriteError = static_cast<std::size_t>(-1);
  /// Constructor tag selecting the TryWriteFn overload (a callable
  /// returning size_t is also invocable-as-void, so the overload must be
  /// explicit, not deduced).
  struct Fallible {};

  /// Buffered bytes at which the buffer is pushed to the sink. The buffer
  /// may transiently exceed this by one sub-threshold write.
  static constexpr std::size_t kFlushThreshold = 64 * 1024;

  explicit FrameSink(WriteFn fn);
  FrameSink(TryWriteFn fn, Fallible);
  /// The stream must outlive the sink.
  explicit FrameSink(std::ostream& os);

  FrameSink(const FrameSink&) = delete;
  FrameSink& operator=(const FrameSink&) = delete;

  /// Append bytes (buffered; auto-flush at the threshold). Returns false
  /// once the sink has failed — from this call or a previous one — at
  /// which point the bytes were discarded, not sent.
  bool write(std::string_view bytes);

  /// Push buffered bytes to the underlying sink. Returns true when the
  /// buffer fully drained; false when the sink is saturated (bytes remain
  /// pending, see pending_bytes()) or has failed.
  bool flush();

  /// Bytes accepted so far, including bytes still buffered — the
  /// export-cost telemetry exporters surface in their footers.
  [[nodiscard]] std::uint64_t bytes_written() const;

  /// True after the sink reported kWriteError; latched. Buffered bytes
  /// were discarded and later writes are dropped — the caller (e.g. a
  /// socket-backed exporter) decides whether to reconnect with a fresh
  /// sink or give up.
  [[nodiscard]] bool failed() const;

  /// Bytes a saturated sink has not accepted yet (0 for infallible
  /// sinks outside a write call). The number a bounded-send-buffer
  /// policy compares against its cap.
  [[nodiscard]] std::size_t pending_bytes() const;

 private:
  /// Drain buf_ into fn_; returns true when buf_ emptied. Caller holds mu_.
  bool drain_locked();

  TryWriteFn fn_;
  mutable std::mutex mu_;
  std::string buf_;
  bool failed_ = false;
  std::uint64_t bytes_ = 0;
};

/// Malformed or truncated binary wire input. Every decoder failure path
/// raises this with a position/context message; no input can reach UB.
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

namespace wire {

/// Stream header magic: "XSPB".
inline constexpr char kMagic[4] = {'X', 'S', 'P', 'B'};
/// Format version this build writes. v2 extended the v1 Footer with the
/// sampling accounting fields (sampled_kept / sampled_dropped); v3 adds the
/// Heartbeat frame type (periodic producer-side counters, the wire-level
/// producer-health signal a collector turns into per-producer staleness);
/// v4 widens the span record with the inline-tag map (non-interned value
/// bytes riding in the span) and appends the bounded-interning footer
/// fields (strtab_budget_bytes / rejected_interns). Frames and header
/// layout are otherwise identical across versions.
inline constexpr std::uint16_t kVersion = 4;
/// Oldest version this build still reads: v1–v3 streams decode normally,
/// with later-version footer fields reported as zero, no heartbeats
/// (pre-v3), and every span's inline-tag map empty (pre-v4).
inline constexpr std::uint16_t kMinVersion = 1;
/// The span record size every pre-v4 producer wrote (the v1 layout,
/// frozen: everything in Span up to and excluding `inline_tags`, plus
/// trailing padding). A v1–v3 stream header carries this span_size; the
/// decoder widens each legacy record into the current Span by copying its
/// legacy prefix and leaving the inline-tag map empty. Pinned by
/// static_asserts in wire.cpp against the live Span layout.
inline constexpr std::size_t kLegacySpanSize = 200;
/// Endianness marker as written by the producer; a consumer reading the
/// byte-swapped value rejects the stream (frames are host-endian memcpy).
inline constexpr std::uint16_t kEndianMark = 0xFEFF;
/// Upper bound a reader accepts for one frame payload — any larger length
/// prefix is hostile or corrupt, not data.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;  // 64 MiB
/// Spans per SpanBatch frame; the writer splits larger batches so frames
/// stay bounded and a reader can validate count * sizeof(Span) exactly.
inline constexpr std::size_t kMaxSpansPerFrame = 4096;

enum class FrameType : std::uint8_t {
  /// Payload: repeated { u32 string_id, u32 byte_len, byte_len bytes } —
  /// the producer-table interns new since the previous delta.
  kStringDelta = 1,
  /// Payload: u32 span_count, then span_count * sizeof(Span) raw span
  /// bytes (one memcpy of a sealed publication batch).
  kSpanBatch = 2,
  /// Payload: one Footer struct. Terminates the stream.
  kFooter = 3,
  /// Payload: one Heartbeat struct (v3+). Periodic producer-health
  /// counters; legal anywhere between header and footer. A heartbeat
  /// frame in a v1/v2 stream is a protocol violation (WireError).
  kHeartbeat = 4,
};

/// Fixed 16-byte stream header. span_size pins the producer's span layout
/// so a consumer built against a different Span rejects the stream instead
/// of misinterpreting it (the forward-compat rule: v1 consumers never
/// guess).
struct Header {
  char magic[4];
  std::uint16_t version;
  std::uint16_t endianness;
  std::uint32_t span_size;
  std::uint32_t header_size;
};
static_assert(sizeof(Header) == 16);
static_assert(std::is_trivially_copyable_v<Header>);

/// 8-byte frame prefix: every frame is self-delimiting, so a consumer can
/// skip-validate a stream without decoding payloads.
struct FrameHeader {
  std::uint8_t type;
  std::uint8_t reserved[3];
  std::uint32_t payload_size;
};
static_assert(sizeof(FrameHeader) == 8);
static_assert(std::is_trivially_copyable_v<FrameHeader>);

/// Trailing telemetry frame: the TraceMeta the JSON footer carries, plus
/// the stream's own span/byte accounting. export_bytes counts every byte
/// written before this frame (header, deltas, span batches).
struct Footer {
  std::uint64_t span_count;
  std::uint64_t export_bytes;
  std::uint64_t dropped_annotations;
  std::uint64_t shard_count;
  std::uint64_t interned_strings;
  std::uint64_t interned_bytes;
  std::uint64_t live_slots;
  std::uint64_t retired_slots;
  std::uint64_t slot_bytes;
  std::uint64_t remote_dropped_spans;
  std::uint64_t remote_reconnects;
  /// v2 fields — appended so a v1 footer is an exact prefix of a v2 one
  /// (readers zero-fill when decoding a v1 stream).
  std::uint64_t sampled_kept;
  std::uint64_t sampled_dropped;
  /// v4 fields — bounded-interning accounting, appended under the same
  /// prefix rule (v1–v3 readers never see them; v4 readers zero-fill
  /// when decoding older streams).
  std::uint64_t strtab_budget_bytes;
  std::uint64_t rejected_interns;
};
static_assert(std::is_trivially_copyable_v<Footer>);

/// Byte size of the 11-field v1 footer payload (a prefix of Footer).
inline constexpr std::size_t kFooterSizeV1 = 11 * sizeof(std::uint64_t);
/// Byte size of the 13-field v2/v3 footer payload (also a prefix).
inline constexpr std::size_t kFooterSizeV2 = 13 * sizeof(std::uint64_t);
static_assert(kFooterSizeV2 == kFooterSizeV1 + 2 * sizeof(std::uint64_t));
static_assert(sizeof(Footer) == kFooterSizeV2 + 2 * sizeof(std::uint64_t));

/// Footer payload size a stream of the given version carries. Shared by
/// every decode driver (BinaryReader, the collector daemon) so the
/// version-to-size rule cannot drift between them.
[[nodiscard]] inline constexpr std::size_t footer_size(std::uint16_t version) noexcept {
  if (version <= 1) return kFooterSizeV1;
  if (version <= 3) return kFooterSizeV2;
  return sizeof(Footer);
}

/// Validate a SpanBatch frame's span count against its payload size,
/// given the stream's validated per-span record size (the header's
/// span_size: sizeof(Span) for v4 streams, kLegacySpanSize for v1–v3
/// producers); returns the count. Shared by every decode driver so the
/// bounds logic cannot drift between them. Throws WireError.
std::uint32_t checked_span_count(std::size_t payload_size, std::uint32_t count,
                                 std::size_t span_size = sizeof(Span));

/// Materialize `count` spans from `raw` (exactly count * span_size raw
/// record bytes) into `out` (overwritten). For the current record size
/// this is one whole memcpy; for kLegacySpanSize records each span's
/// legacy prefix is copied and its inline-tag map left empty (the v1–v3
/// widening path). `span_size` must be a value validate_header accepted.
/// Throws WireError on a size mismatch.
void materialize_spans(std::string_view raw, std::uint32_t count, std::size_t span_size,
                       SpanBatch& out);

/// v3 heartbeat payload: a producer's live transport/sampling counters,
/// cumulative since the producer started (monotonic per stream except
/// outbox_spans, an instantaneous depth). The collector exposes them as
/// per-producer metrics and derives staleness from heartbeat arrival age
/// — a producer whose heartbeats stop while its connection stays open is
/// dead or stalled, which footers alone can never show.
struct Heartbeat {
  /// 1-based per-stream heartbeat counter (gaps mean dropped frames).
  std::uint64_t sequence;
  /// Spans handed to the producer's RemoteSink (before any shedding).
  std::uint64_t spans_published;
  /// Spans encoded onto the socket so far.
  std::uint64_t spans_sent;
  /// Spans dropped by bounded-outbox backpressure or a dying connection.
  std::uint64_t spans_dropped;
  /// Low-value spans shed selectively under backpressure.
  std::uint64_t spans_shed;
  /// Admission-sampling accounting (0/0 when no sampler is attached).
  std::uint64_t sampled_kept;
  std::uint64_t sampled_dropped;
  /// Reconnects the sink performed (each opens a fresh wire epoch).
  std::uint64_t reconnects;
  /// Spans currently queued in the producer's outbox (instantaneous).
  std::uint64_t outbox_spans;
};
static_assert(sizeof(Heartbeat) == 9 * sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<Heartbeat>);

/// Validate a Heartbeat frame against the stream version and its payload
/// size, and decode it. Shared by every decode driver (BinaryReader, the
/// collector daemon) so the version gate cannot drift between them.
/// Throws WireError for a heartbeat in a pre-v3 stream or a payload that
/// is not exactly sizeof(Heartbeat).
Heartbeat checked_heartbeat(std::string_view payload, std::uint16_t version);

}  // namespace wire

/// Binary wire encoder. Drop-in for the StreamingExporter drain-subscriber
/// shape: attach write_batches under kObserve or kConsume, call set_meta
/// when telemetry is final, finish() to append the footer frame.
///
/// Thread safety: write_batch/write_batches/set_meta/finish may be called
/// from any thread (N shard collectors funnel into one writer); one
/// internal mutex serializes frame emission, so frames never interleave.
///
/// Memory: allocation count is independent of span count (pinned by
/// BinaryWire.WriterAllocationIsIndependentOfSpanCount) — span payloads
/// hand the batch memory straight to the sink, the string-delta scratch is
/// reused across flushes, and the FrameSink buffer is bounded.
class BinaryWriter {
 public:
  explicit BinaryWriter(FrameSink::WriteFn sink);
  /// Fallible (socket-backed) sink: short writes stay pending in the
  /// FrameSink, kWriteError latches failure — observable via
  /// sink_failed()/sink_pending_bytes() so the owner can apply its
  /// backpressure/reconnect policy (see trace::RemoteSink).
  BinaryWriter(FrameSink::TryWriteFn sink, FrameSink::Fallible);
  explicit BinaryWriter(std::ostream& os);

  /// Finishes the stream if finish() was not called explicitly.
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Emit the pending string delta, then the batch as SpanBatch frames.
  void write_batch(const SpanBatch& batch);

  /// Write every batch of a batch list — the drain-subscriber shape.
  void write_batches(const SpanBatches& batches);

  /// Set/update the telemetry the footer frame will carry. May be called
  /// any time before finish().
  void set_meta(const TraceMeta& meta);

  /// Emit a v3 Heartbeat frame carrying the producer's live counters, and
  /// flush so the frame reaches the peer promptly (a buffered heartbeat
  /// measures nothing). Dropped after finish(), like batches.
  void write_heartbeat(const wire::Heartbeat& hb);

  /// Append the footer frame and flush. Idempotent; batches written after
  /// finish() are dropped (asserted in debug builds), mirroring
  /// StreamingExporter.
  void finish();

  /// Spans written so far (the footer's span_count).
  [[nodiscard]] std::uint64_t spans_written() const;

  /// Bytes accepted by the sink so far (including buffered bytes).
  [[nodiscard]] std::uint64_t bytes_written() const;

  /// Retry pushing bytes a saturated fallible sink has not accepted yet.
  /// Returns true when nothing remains pending (see FrameSink::flush).
  bool flush();

  /// True once the sink latched a hard write failure; the stream is dead
  /// and the owner should reconnect with a fresh writer.
  [[nodiscard]] bool sink_failed() const;

  /// Bytes buffered for a saturated sink (FrameSink::pending_bytes) — the
  /// figure a bounded-send-buffer policy compares against its cap.
  [[nodiscard]] std::size_t sink_pending_bytes() const;

 private:
  void append_string_delta_locked();
  void append_span_frames_locked(const SpanBatch& batch);

  FrameSink sink_;
  mutable std::mutex mu_;
  common::StringTable::Cursor cursor_;
  /// Frame-assembly scratch, reused across flushes; capacity is bounded
  /// by the largest single delta, not by stream length.
  std::string scratch_;
  bool finished_ = false;
  std::uint64_t spans_written_ = 0;
  TraceMeta meta_{};
};

/// The format-semantic half of binary-wire decoding, independent of where
/// the bytes come from: holds one stream's producer-id -> local-StrId
/// remap and footer state, and validates/re-interns payloads handed to it
/// as memory. BinaryReader drives it from an istream; the collector
/// daemon (net::CollectorService) drives one per connection from
/// reassembled socket frames — per-stream remap is exactly what keeps two
/// producers' ids from ever colliding after ingest. Hostile payloads
/// throw WireError; nothing reaches UB. Single-threaded per instance.
class WireDecoder {
 public:
  WireDecoder();

  WireDecoder(const WireDecoder&) = delete;
  WireDecoder& operator=(const WireDecoder&) = delete;

  /// Validate a stream header (magic/version/endianness/span size) and
  /// return the stream's format version (kMinVersion..kVersion — drivers
  /// keep it to size the footer frame, wire::footer_size). A v4 header
  /// must declare span_size == sizeof(Span); a v1–v3 header may instead
  /// declare wire::kLegacySpanSize (a pre-inline-tag producer), which
  /// drivers record via set_span_size so batch decode widens each legacy
  /// record. Throws WireError on any mismatch.
  static std::uint16_t validate_header(const wire::Header& header);

  /// Record the stream's validated per-span record size (the header's
  /// span_size). Defaults to sizeof(Span); drivers call this right after
  /// validate_header so decode_span_batch sizes and widens correctly.
  void set_span_size(std::uint32_t span_size) noexcept { span_size_ = span_size; }
  [[nodiscard]] std::uint32_t span_size() const noexcept { return span_size_; }

  /// Parse a StringDelta payload: re-intern every entry into this
  /// process's global StringTable and extend the remap. A repeated id is
  /// tolerated if its bytes agree (idempotent replay); a redefinition
  /// with different contents throws.
  void decode_string_delta(std::string_view payload);

  /// Decode a whole SpanBatch payload (u32 count + count raw spans) into
  /// `out` (overwritten): validates the count against the payload size,
  /// memcpys the spans, and remaps every StrId field.
  void decode_span_batch(std::string_view payload, SpanBatch& out);

  /// Validate + remap every span of a batch in place (the zero-copy path
  /// for drivers that already read the raw spans into the output buffer).
  void remap_batch(SpanBatch& batch);

  /// Record the stream's footer frame.
  void set_footer(const wire::Footer& footer) noexcept {
    footer_ = footer;
    saw_footer_ = true;
  }

  /// Record a decoded heartbeat frame (latest wins; drivers call this
  /// after wire::checked_heartbeat validated the payload).
  void set_heartbeat(const wire::Heartbeat& hb) noexcept {
    heartbeat_ = hb;
    ++heartbeats_seen_;
  }

  /// Heartbeat frames decoded on this stream so far (0 for v1/v2).
  [[nodiscard]] std::uint64_t heartbeats_seen() const noexcept { return heartbeats_seen_; }
  /// The most recent heartbeat (zeros until heartbeats_seen() > 0).
  [[nodiscard]] const wire::Heartbeat& last_heartbeat() const noexcept { return heartbeat_; }

  [[nodiscard]] bool saw_footer() const noexcept { return saw_footer_; }
  [[nodiscard]] const wire::Footer& footer() const noexcept { return footer_; }

  /// Footer telemetry in TraceMeta shape (zeros until saw_footer()).
  [[nodiscard]] TraceMeta meta() const noexcept;

  /// Spans decoded (validated + remapped) so far.
  [[nodiscard]] std::uint64_t spans_decoded() const noexcept { return spans_decoded_; }

  /// Distinct producer string ids re-interned so far.
  [[nodiscard]] std::uint64_t strings_reinterned() const noexcept {
    return static_cast<std::uint64_t>(remap_.size()) - 1;  // minus the implicit id 0
  }

 private:
  /// Producer id -> this process's StrId; throws WireError for an id no
  /// delta delivered.
  [[nodiscard]] common::StrId map_id(std::uint32_t producer_id) const;
  void remap_span(Span& span) const;

  std::unordered_map<std::uint32_t, std::uint32_t> remap_;
  std::uint32_t span_size_ = static_cast<std::uint32_t>(sizeof(Span));
  bool saw_footer_ = false;
  wire::Footer footer_{};
  wire::Heartbeat heartbeat_{};
  std::uint64_t heartbeats_seen_ = 0;
  std::uint64_t spans_decoded_ = 0;
};

/// Binary wire decoder. Validates the stream header on construction and
/// yields re-interned span batches frame by frame; spans come out carrying
/// StrIds of *this* process's global StringTable, so a decoded batch feeds
/// Timeline::assemble, OnlineAnalyzer replay, or a StreamingExporter
/// re-export directly. The istream driver over the WireDecoder core.
/// Single-threaded (one reader per stream).
class BinaryReader {
 public:
  /// Reads and validates the stream header. The stream must outlive the
  /// reader. Throws WireError on any mismatch.
  explicit BinaryReader(std::istream& in);

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Decode up to the next SpanBatch frame into `out` (overwritten, so a
  /// caller-recycled buffer is reused). Returns false at end of stream —
  /// after the footer frame, or at a clean pre-footer EOF (a producer
  /// that died mid-export; see saw_footer()). Throws WireError on any
  /// malformed frame.
  bool next_batch(SpanBatch& out);

  /// Decode the rest of the stream into batches (convenience for replay).
  [[nodiscard]] SpanBatches read_all();

  /// True once the footer frame has been read. A stream without a footer
  /// is truncated-but-parseable: every complete frame before the cut
  /// decoded normally, only the final telemetry is missing.
  [[nodiscard]] bool saw_footer() const noexcept { return decoder_.saw_footer(); }

  /// The footer frame's telemetry; zeros until saw_footer().
  [[nodiscard]] const wire::Footer& footer() const noexcept { return decoder_.footer(); }

  /// Footer telemetry in TraceMeta shape (zeros until saw_footer()) —
  /// hand to a StreamingExporter when re-exporting as JSON.
  [[nodiscard]] TraceMeta meta() const noexcept { return decoder_.meta(); }

  /// Spans decoded so far.
  [[nodiscard]] std::uint64_t spans_read() const noexcept { return decoder_.spans_decoded(); }

  /// Distinct producer string ids re-interned so far.
  [[nodiscard]] std::uint64_t strings_reinterned() const noexcept {
    return decoder_.strings_reinterned();
  }

  /// Heartbeat frames decoded so far (always 0 for v1/v2 streams).
  [[nodiscard]] std::uint64_t heartbeats_seen() const noexcept {
    return decoder_.heartbeats_seen();
  }

  /// The most recent heartbeat (zeros until heartbeats_seen() > 0).
  [[nodiscard]] const wire::Heartbeat& last_heartbeat() const noexcept {
    return decoder_.last_heartbeat();
  }

  /// The stream's declared format version (from the validated header).
  [[nodiscard]] std::uint16_t stream_version() const noexcept { return version_; }

 private:
  void read_exact(void* dst, std::size_t n, const char* what);

  std::istream& in_;
  WireDecoder decoder_;
  std::string payload_;  ///< delta-payload scratch, reused across frames
  std::uint16_t version_ = wire::kVersion;
  /// The stream's per-span record size (validated header value); when it
  /// is wire::kLegacySpanSize, batches read via scratch + widen instead
  /// of the zero-copy path.
  std::uint32_t span_size_ = static_cast<std::uint32_t>(sizeof(Span));
  bool done_ = false;
};

}  // namespace xsp::trace
