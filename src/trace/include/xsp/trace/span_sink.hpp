// SpanSink: the minimal interface a tracer needs from a span collector.
//
// The paper's tracers only ever do three things against the tracing server
// (Section III-A): obtain ids and publish completed spans. Everything else
// — aggregation, flushing, trace hand-off — is a consumer-side concern.
// Splitting that producer surface out lets Tracer/ScopedSpan publish
// through either a single TraceServer or a ShardedTraceServer (N servers
// behind one selector) without caring which, and keeps the hot publish
// call as one virtual dispatch into a `final` implementation the compiler
// can devirtualize at concrete call sites.
//
// Deliberately NOT part of this surface: producer-slot lifecycle. A
// publishing thread needs no attach/detach hook — sink implementations
// key per-thread state on process-unique thread and server uids, register
// it lazily on first publish, and reclaim it through a TLS exit hook that
// is weak against the sink dying first (see TraceServer "Producer-slot
// lifecycle"). Producers stay fire-and-forget.
#pragma once

#include <cstdint>

#include "xsp/trace/span.hpp"

namespace xsp::trace {

/// Producer-facing surface of a span collector.
class SpanSink {
 public:
  virtual ~SpanSink() = default;

  /// Allocate a fresh sink-unique span id (never kNoSpan).
  virtual SpanId next_span_id() noexcept = 0;

  /// Allocate a fresh correlation id for an async launch/execution pair.
  virtual std::uint64_t next_correlation_id() noexcept = 0;

  /// Publish one completed span. Thread-safe.
  virtual void publish(Span span) = 0;
};

}  // namespace xsp::trace
