// Timeline: the assembled hierarchical trace of one evaluation.
//
// Assembly performs the two correlation steps of the paper's design:
//   1. join kLaunch/kExecution span pairs by correlation_id into one
//      logical async event (timing/metrics from the execution span, parent
//      derived from the launch span — Section III-B), and
//   2. reconstruct missing parent references by interval set inclusion via
//      an interval tree (Section III-A): span s1 is the parent of s2 iff
//      s1's interval contains s2's and s1 is exactly one level higher.
//
// When several candidate parents contain a span (parallel events), the
// parent is ambiguous; XSP then "requires another profiling run where the
// parallel events are serialized" — assembly records the ambiguity count so
// the caller knows a serialized re-run is needed.
//
// Storage: nodes live in one flat vector ordered by (begin, id), with a
// side index from span id to vector position. The per-level interval trees
// are built once per assembly and queried with allocation-free stabbing
// visits, so assembling a trace of n spans performs O(n log n) work and
// O(n) allocations total rather than per-lookup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "xsp/trace/span.hpp"

namespace xsp::trace {

/// One node in the assembled hierarchy.
struct TimelineNode {
  Span span;  ///< merged view; for async events: execution timing + metrics
  SpanId parent = kNoSpan;
  std::vector<SpanId> children;  ///< ordered by begin time
  /// For async events: the CPU-side launch window (begin/end of the launch
  /// span). Zero-width for regular spans.
  TimePoint launch_begin = 0;
  TimePoint launch_end = 0;
  bool is_async = false;
  bool ambiguous_parent = false;
};

struct AssembleOptions {
  /// Parent search uses the launch span's interval for async events (the
  /// launch happens inside the parent's CPU interval, while the execution
  /// may complete after the parent returned).
  bool correlate_async = true;
  /// When true, spans with an explicit parent reference keep it even if
  /// interval containment would disagree.
  bool trust_explicit_parents = true;
};

class Timeline {
 public:
  /// Assemble a hierarchy from the raw spans of one run, in the publication
  /// batches TraceServer::take_batches() hands off. Spans are copied out
  /// (they are trivially copyable), so the caller keeps the batch buffers
  /// and can hand them back via TraceServer::recycle().
  static Timeline assemble(const SpanBatches& batches, const AssembleOptions& options = {});

  /// Convenience overload for a flat span vector (wrapped as one batch).
  static Timeline assemble(std::vector<Span> spans, const AssembleOptions& options = {}) {
    SpanBatches batches;
    batches.push_back(std::move(spans));
    return assemble(std::move(batches), options);
  }

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Spans with no parent (normally the single model-prediction span plus
  /// any uncorrelated stragglers), ordered by begin time.
  [[nodiscard]] const std::vector<SpanId>& roots() const noexcept { return roots_; }

  /// Node lookup; throws std::out_of_range on an unknown id.
  [[nodiscard]] const TimelineNode& node(SpanId id) const { return nodes_[index_.at(id)]; }
  [[nodiscard]] bool contains(SpanId id) const { return index_.count(id) != 0; }

  /// All node ids at a stack level, ordered by begin time.
  [[nodiscard]] std::vector<SpanId> at_level(int level) const;

  /// Children of `id` ordered by begin time (empty for a leaf).
  [[nodiscard]] const std::vector<SpanId>& children(SpanId id) const {
    return node(id).children;
  }

  /// First node (in begin-time order) whose span name equals `name`.
  [[nodiscard]] std::optional<SpanId> find_by_name(StrId name) const;

  /// Depth-first pre-order walk over the whole hierarchy.
  void walk(const std::function<void(const TimelineNode&, int depth)>& fn) const;

  /// Number of spans whose parent could not be determined unambiguously.
  /// Non-zero means a serialized re-run is required for exact correlation.
  [[nodiscard]] std::size_t ambiguous_count() const noexcept { return ambiguous_; }

  /// Number of launch/execution pairs that were merged during assembly.
  [[nodiscard]] std::size_t correlated_async_count() const noexcept { return correlated_async_; }

  /// Launch spans with no matching execution span (or vice versa) are kept
  /// as regular nodes; this counts them.
  [[nodiscard]] std::size_t unmatched_async_count() const noexcept { return unmatched_async_; }

 private:
  void walk_from(SpanId id, int depth,
                 const std::function<void(const TimelineNode&, int depth)>& fn) const;

  /// Ordered by (span.begin, span.id); `index_` maps span id -> position.
  std::vector<TimelineNode> nodes_;
  std::unordered_map<SpanId, std::uint32_t> index_;
  std::vector<SpanId> roots_;
  std::size_t ambiguous_ = 0;
  std::size_t correlated_async_ = 0;
  std::size_t unmatched_async_ = 0;
};

}  // namespace xsp::trace
