// Span: the unit of profile data in XSP's distributed-tracing design.
//
// "In distributed tracing terminology, a timed operation representing a
//  piece of work is referred to as a span. Each span contains a unique
//  identifier (used as its reference), start/end timestamps, and
//  user-defined annotations such as name, key-value tags, and logs. A span
//  may also contain a parent reference to establish a parent-child
//  relationship."                                      — paper, Section III-A
//
// Representation: every profiled event at every stack level becomes a span
// (Section III-A), so span construction and publication are the profiling
// system's own hot path. Names, tracer ids, tag keys/values are interned
// 32-bit StrIds and annotations live in flat inline-capacity storage —
// building and publishing a typical span performs no heap allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>
#include <vector>

#include "xsp/common/flat_map.hpp"
#include "xsp/common/string_table.hpp"
#include "xsp/common/time.hpp"

namespace xsp::trace {

/// Unique span identifier. 0 is reserved for "no span".
using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

/// Interned string handle used for span names, tracer ids, and annotation
/// keys/values (resolves against common::StringTable::global()).
using common::StrId;

/// Stack levels, numbered as in the paper ("level 1 is the model level").
/// The scheme is open-ended: Section III-E's extensions are first-class —
/// an application level above the model level (level 0) and an ML-library
/// level between layer and kernel (level 3, capturing cuDNN/cuBLAS API
/// calls) — which is why the level is a plain integer rather than a closed
/// enum. Absent levels are skipped during parent reconstruction (a kernel
/// parents to its layer directly when no library tracer ran).
constexpr int kApplicationLevel = 0;
constexpr int kModelLevel = 1;
constexpr int kLayerLevel = 2;
constexpr int kLibraryLevel = 3;
constexpr int kKernelLevel = 4;

/// Returns a human-readable name for a stack level.
const char* level_name(int level);

/// Asynchronous operations are represented by two spans joined by a
/// correlation identifier: the CPU-side launch and the device-side
/// execution (paper, Section III-A/B).
enum class SpanKind : std::uint8_t {
  kRegular,    ///< ordinary synchronous timed operation
  kLaunch,     ///< asynchronous launch (e.g. cudaLaunchKernel on the CPU)
  kExecution,  ///< the corresponding future execution (e.g. the GPU kernel)
};

const char* kind_name(SpanKind k);

/// Free-form string annotations (layer type, kernel grid, ...), interned.
/// Capacities bound the span size; see FlatMap for the overflow contract.
using TagMap = common::FlatMap<StrId, 6>;
/// Numeric annotations (GPU counters, allocated bytes, ...).
using MetricMap = common::FlatMap<double, 6>;

/// Inline value tags: the value bytes live IN the span, not in the
/// process-wide StringTable. This is the annotation channel for
/// high-cardinality values (grid/block dims, per-request ids) — every
/// distinct interned value costs table memory for the process lifetime,
/// while an inline value costs nothing beyond the span it rides in.
/// Keys are still interned StrIds (keys are low-cardinality by design).
///
/// Fixed capacity keeps Span trivially copyable: kCapacity entries of
/// kValueCapacity bytes each. set() truncates overlong values to
/// kValueCapacity bytes and returns false only when the map is full,
/// mirroring FlatMap's overflow contract.
class InlineTagMap {
 public:
  static constexpr std::uint32_t kCapacity = 2;
  static constexpr std::uint32_t kValueCapacity = 27;

  /// One key + inline value payload; 32 bytes, trivially copyable.
  struct Entry {
    StrId key;
    std::uint8_t size = 0;
    char data[kValueCapacity];
    [[nodiscard]] std::string_view value() const noexcept { return {data, size}; }
  };

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept { return kCapacity; }

  [[nodiscard]] const Entry* begin() const noexcept { return entries_; }
  [[nodiscard]] const Entry* end() const noexcept { return entries_ + count_; }

  /// Insert or overwrite; truncates `value` to kValueCapacity bytes.
  /// Returns false (dropping the entry) only when full and `key` absent.
  bool set(StrId key, std::string_view value) noexcept {
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (entries_[i].key == key) {
        store(entries_[i], value);
        return true;
      }
    }
    if (count_ == kCapacity) return false;
    entries_[count_].key = key;
    store(entries_[count_], value);
    ++count_;
    return true;
  }

  /// Value lookup; `fallback` when absent.
  [[nodiscard]] std::string_view value_or(StrId key,
                                          std::string_view fallback = {}) const noexcept {
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (entries_[i].key == key) return entries_[i].value();
    }
    return fallback;
  }

  [[nodiscard]] std::size_t count(StrId key) const noexcept {
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (entries_[i].key == key) return 1;
    }
    return 0;
  }

  void clear() noexcept { count_ = 0; }

  /// True when count and every entry's size are within capacity. An
  /// InlineTagMap memcpy'd from an untrusted byte stream
  /// (trace::BinaryReader) must pass this before iteration — value()
  /// trusts size.
  [[nodiscard]] bool valid() const noexcept {
    if (count_ > kCapacity) return false;
    for (std::uint32_t i = 0; i < count_; ++i) {
      if (entries_[i].size > kValueCapacity) return false;
    }
    return true;
  }

  /// Rewrite every key in place: key_i = fn(key_i). The wire decoder's
  /// re-interning hook; values are inline bytes and pass through
  /// untouched (nothing to re-intern — that is the point).
  template <typename Fn>
  void remap_keys(Fn&& fn) {
    for (std::uint32_t i = 0; i < count_; ++i) entries_[i].key = fn(entries_[i].key);
  }

 private:
  static void store(Entry& e, std::string_view value) noexcept {
    const std::size_t n =
        value.size() < kValueCapacity ? value.size() : std::size_t{kValueCapacity};
    e.size = static_cast<std::uint8_t>(n);
    if (n != 0) std::memcpy(e.data, value.data(), n);
  }

  Entry entries_[kCapacity] = {};
  std::uint32_t count_ = 0;
};

/// A single profiled event converted into distributed-tracing form.
struct Span {
  SpanId id = kNoSpan;
  /// Explicit parent reference, when the publishing tracer knows it (e.g.
  /// layer spans are created as children of the model-prediction span).
  /// kNoSpan means "to be reconstructed from interval containment".
  SpanId parent = kNoSpan;
  int level = kModelLevel;
  SpanKind kind = SpanKind::kRegular;
  StrId name;
  /// Name of the tracer that published this span (one per profiler).
  StrId tracer;
  TimePoint begin = 0;
  TimePoint end = 0;
  /// Joins kLaunch/kExecution pairs; 0 when not applicable.
  std::uint64_t correlation_id = 0;
  TagMap tags;
  MetricMap metrics;
  /// Annotations rejected because tags/metrics/inline_tags hit capacity.
  /// Non-zero means the trace lost fidelity for this span; exporters
  /// surface it. Saturates at 0xFFFF (see note_dropped) — "at least
  /// 65535 drops" must never wrap back to "clean".
  std::uint16_t dropped_annotations = 0;
  /// Non-interned value tags. NOTE: new members ride after this point;
  /// the wire's legacy-decode path (v1–v3) copies exactly the bytes up
  /// to `inline_tags` (see wire.cpp), so everything before it is frozen
  /// at the v1 layout.
  InlineTagMap inline_tags;

  [[nodiscard]] Ns duration() const noexcept { return end - begin; }

  /// Record `n` annotation drops, saturating at 0xFFFF.
  void note_dropped(std::uint32_t n = 1) noexcept {
    const std::uint32_t total = dropped_annotations + n;
    dropped_annotations = total > 0xFFFF ? std::uint16_t{0xFFFF} : static_cast<std::uint16_t>(total);
  }

  /// Tag lookup; the empty StrId when absent.
  [[nodiscard]] StrId tag_or(StrId key, StrId fallback = {}) const noexcept {
    const StrId* v = tags.find(key);
    return v ? *v : fallback;
  }

  /// Metric lookup with fallback.
  [[nodiscard]] double metric_or(StrId key, double fallback) const noexcept {
    const double* v = metrics.find(key);
    return v ? *v : fallback;
  }
};

// The publish pipeline hands spans around in whole batches; triviality is
// what makes a batch hand-off a pointer swap and a flatten a memcpy.
static_assert(std::is_trivially_copyable_v<Span>);

/// One producer batch of spans, and a trace as the list of batches it was
/// published in. The server aggregates and hands off batch handles; spans
/// are laid out once, by Timeline::assemble or an exporter.
using SpanBatch = std::vector<Span>;
using SpanBatches = std::vector<SpanBatch>;

/// Flatten publication batches into one contiguous span vector. Spans are
/// trivially copyable, so each batch append lowers to one memcpy; the
/// batches are left intact for the caller to recycle.
inline std::vector<Span> flatten_batches(const SpanBatches& batches) {
  std::size_t total = 0;
  for (const auto& batch : batches) total += batch.size();
  std::vector<Span> flat;
  flat.reserve(total);
  for (const auto& batch : batches) flat.insert(flat.end(), batch.begin(), batch.end());
  return flat;
}

inline const char* level_name(int level) {
  switch (level) {
    case kApplicationLevel: return "application";
    case kModelLevel: return "model";
    case kLayerLevel: return "layer";
    case kLibraryLevel: return "library";
    case kKernelLevel: return "gpu_kernel";
    default: return "custom";
  }
}

inline const char* kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kRegular: return "regular";
    case SpanKind::kLaunch: return "launch";
    case SpanKind::kExecution: return "execution";
  }
  return "?";
}

}  // namespace xsp::trace
