// Span: the unit of profile data in XSP's distributed-tracing design.
//
// "In distributed tracing terminology, a timed operation representing a
//  piece of work is referred to as a span. Each span contains a unique
//  identifier (used as its reference), start/end timestamps, and
//  user-defined annotations such as name, key-value tags, and logs. A span
//  may also contain a parent reference to establish a parent-child
//  relationship."                                      — paper, Section III-A
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "xsp/common/time.hpp"

namespace xsp::trace {

/// Unique span identifier. 0 is reserved for "no span".
using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

/// Stack levels, numbered as in the paper ("level 1 is the model level").
/// The scheme is open-ended: Section III-E's extensions are first-class —
/// an application level above the model level (level 0) and an ML-library
/// level between layer and kernel (level 3, capturing cuDNN/cuBLAS API
/// calls) — which is why the level is a plain integer rather than a closed
/// enum. Absent levels are skipped during parent reconstruction (a kernel
/// parents to its layer directly when no library tracer ran).
constexpr int kApplicationLevel = 0;
constexpr int kModelLevel = 1;
constexpr int kLayerLevel = 2;
constexpr int kLibraryLevel = 3;
constexpr int kKernelLevel = 4;

/// Returns a human-readable name for a stack level.
const char* level_name(int level);

/// Asynchronous operations are represented by two spans joined by a
/// correlation identifier: the CPU-side launch and the device-side
/// execution (paper, Section III-A/B).
enum class SpanKind : std::uint8_t {
  kRegular,    ///< ordinary synchronous timed operation
  kLaunch,     ///< asynchronous launch (e.g. cudaLaunchKernel on the CPU)
  kExecution,  ///< the corresponding future execution (e.g. the GPU kernel)
};

const char* kind_name(SpanKind k);

/// A single profiled event converted into distributed-tracing form.
struct Span {
  SpanId id = kNoSpan;
  /// Explicit parent reference, when the publishing tracer knows it (e.g.
  /// layer spans are created as children of the model-prediction span).
  /// kNoSpan means "to be reconstructed from interval containment".
  SpanId parent = kNoSpan;
  int level = kModelLevel;
  SpanKind kind = SpanKind::kRegular;
  std::string name;
  /// Name of the tracer that published this span (one per profiler).
  std::string tracer;
  TimePoint begin = 0;
  TimePoint end = 0;
  /// Joins kLaunch/kExecution pairs; 0 when not applicable.
  std::uint64_t correlation_id = 0;
  /// Free-form string annotations (layer type, kernel grid, ...).
  std::map<std::string, std::string> tags;
  /// Numeric annotations (GPU counters, allocated bytes, ...).
  std::map<std::string, double> metrics;

  [[nodiscard]] Ns duration() const noexcept { return end - begin; }
};

inline const char* level_name(int level) {
  switch (level) {
    case kApplicationLevel: return "application";
    case kModelLevel: return "model";
    case kLayerLevel: return "layer";
    case kLibraryLevel: return "library";
    case kKernelLevel: return "gpu_kernel";
    default: return "custom";
  }
}

inline const char* kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kRegular: return "regular";
    case SpanKind::kLaunch: return "launch";
    case SpanKind::kExecution: return "execution";
  }
  return "?";
}

}  // namespace xsp::trace
