// Centered interval tree used to reconstruct span parent-child links.
//
// "XSP's profile analysis builds an interval tree and populates it with
//  intervals corresponding to the spans' start/end timestamps. Using the
//  interval tree, XSP reconstructs the parent-child relationship by checking
//  for interval set inclusion."                          — paper, Section III-A
//
// The tree is built once from a fixed set of intervals (spans of one trace)
// and then queried many times, so a static centered interval tree is the
// right structure: O(n log n) build, O(log n + k) stabbing query.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "xsp/common/time.hpp"

namespace xsp::trace {

/// Static interval tree over closed intervals [lo, hi] with a payload.
template <typename T>
class IntervalTree {
 public:
  struct Entry {
    TimePoint lo = 0;
    TimePoint hi = 0;
    T value{};
  };

  IntervalTree() = default;

  explicit IntervalTree(std::vector<Entry> entries) : size_(entries.size()) {
    root_ = build(std::move(entries));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Invoke `fn(const Entry&)` for every interval containing point `p`.
  template <typename Fn>
  void visit_stabbing(TimePoint p, Fn&& fn) const {
    visit_stabbing_impl(root_.get(), p, fn);
  }

  /// All entries whose interval fully contains [lo, hi].
  [[nodiscard]] std::vector<const Entry*> containing(TimePoint lo, TimePoint hi) const {
    std::vector<const Entry*> out;
    visit_stabbing(lo, [&](const Entry& e) {
      if (e.lo <= lo && e.hi >= hi) out.push_back(&e);
    });
    return out;
  }

  /// All entries overlapping [lo, hi] (closed-interval overlap).
  [[nodiscard]] std::vector<const Entry*> overlapping(TimePoint lo, TimePoint hi) const {
    std::vector<const Entry*> out;
    collect_overlapping(root_.get(), lo, hi, out);
    return out;
  }

 private:
  struct Node {
    TimePoint center = 0;
    // Intervals crossing `center`, sorted two ways for pruned scans.
    std::vector<Entry> by_lo;  // ascending lo
    std::vector<Entry> by_hi;  // descending hi
    std::unique_ptr<Node> left;   // intervals entirely left of center
    std::unique_ptr<Node> right;  // intervals entirely right of center
  };

  static std::unique_ptr<Node> build(std::vector<Entry> entries) {
    if (entries.empty()) return nullptr;
    // Median of endpoints keeps the tree balanced for adversarial inputs.
    std::vector<TimePoint> points;
    points.reserve(entries.size() * 2);
    for (const auto& e : entries) {
      points.push_back(e.lo);
      points.push_back(e.hi);
    }
    auto mid = points.begin() + static_cast<std::ptrdiff_t>(points.size() / 2);
    std::nth_element(points.begin(), mid, points.end());
    const TimePoint center = *mid;

    auto node = std::make_unique<Node>();
    node->center = center;
    std::vector<Entry> lefts, rights;
    for (auto& e : entries) {
      if (e.hi < center) {
        lefts.push_back(std::move(e));
      } else if (e.lo > center) {
        rights.push_back(std::move(e));
      } else {
        node->by_lo.push_back(e);
        node->by_hi.push_back(std::move(e));
      }
    }
    std::sort(node->by_lo.begin(), node->by_lo.end(),
              [](const Entry& a, const Entry& b) { return a.lo < b.lo; });
    std::sort(node->by_hi.begin(), node->by_hi.end(),
              [](const Entry& a, const Entry& b) { return a.hi > b.hi; });
    node->left = build(std::move(lefts));
    node->right = build(std::move(rights));
    return node;
  }

  template <typename Fn>
  static void visit_stabbing_impl(const Node* node, TimePoint p, Fn& fn) {
    while (node != nullptr) {
      if (p < node->center) {
        // Only intervals with lo <= p can contain p; by_lo is sorted asc.
        for (const auto& e : node->by_lo) {
          if (e.lo > p) break;
          fn(e);
        }
        node = node->left.get();
      } else if (p > node->center) {
        // Only intervals with hi >= p can contain p; by_hi is sorted desc.
        for (const auto& e : node->by_hi) {
          if (e.hi < p) break;
          fn(e);
        }
        node = node->right.get();
      } else {
        for (const auto& e : node->by_lo) fn(e);  // all cross the center
        return;
      }
    }
  }

  static void collect_overlapping(const Node* node, TimePoint lo, TimePoint hi,
                                  std::vector<const Entry*>& out) {
    if (node == nullptr) return;
    if (hi < node->center) {
      for (const auto& e : node->by_lo) {
        if (e.lo > hi) break;
        out.push_back(&e);
      }
      collect_overlapping(node->left.get(), lo, hi, out);
    } else if (lo > node->center) {
      for (const auto& e : node->by_hi) {
        if (e.hi < lo) break;
        out.push_back(&e);
      }
      collect_overlapping(node->right.get(), lo, hi, out);
    } else {
      for (const auto& e : node->by_lo) out.push_back(&e);
      collect_overlapping(node->left.get(), lo, hi, out);
      collect_overlapping(node->right.get(), lo, hi, out);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace xsp::trace
