// TraceServer: aggregates spans published by all tracers into one trace.
//
// "Spans are published to a tracing server which is run on a local or remote
//  system. The tracing server aggregates the spans published by the
//  different tracers into one application timeline trace."  — Section III-A
//
// This implementation is in-process but keeps the same publish/aggregate
// interface and supports asynchronous publication ("XSP converts the
// captured CUPTI information into spans and publishes them to the tracer
// server (asynchronously to avoid added overhead)" — Section III-B).
//
// Publication path: instead of one global queue behind one mutex, each
// publishing thread owns a producer slot holding an append-only batch.
// publish() appends to the caller's slot under a slot-private spinlock that
// is uncontended except when the collector steals a batch — there is no
// cross-producer synchronization. Full batches are sealed and handed to the
// collector whole, so the global trace mutex is touched once per
// kBatchCapacity spans rather than once per span. flush()/take_trace()
// semantics are unchanged: after flush() every span published
// happens-before the call is aggregated.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "xsp/trace/span.hpp"

namespace xsp::trace {

enum class PublishMode : std::uint8_t {
  kSync,   ///< no collector thread; callers drain batches on flush()
  kAsync,  ///< a collector thread drains sealed batches in the background
};

// SpanBatch/SpanBatches live in span.hpp (shared with Timeline::assemble).

/// Thread-safe span sink + aggregator.
class TraceServer {
 public:
  /// Spans per producer batch: the granularity at which the collector takes
  /// work and the worst-case count a crashing producer could strand.
  static constexpr std::size_t kBatchCapacity = 256;

  explicit TraceServer(PublishMode mode = PublishMode::kAsync);
  ~TraceServer();

  TraceServer(const TraceServer&) = delete;
  TraceServer& operator=(const TraceServer&) = delete;

  /// Allocate a fresh server-unique span id (never kNoSpan). Ids are
  /// handed to threads in blocks, so concurrent tracers do not contend on
  /// one counter cache line; ids are unique but not globally dense.
  SpanId next_span_id() noexcept;

  /// Allocate a fresh correlation id for an async launch/execution pair.
  std::uint64_t next_correlation_id() noexcept {
    return next_corr_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publish one completed span. Thread-safe; appends to the calling
  /// thread's batch without touching any global lock.
  void publish(Span span);

  /// Block until every span published before this call has been aggregated
  /// (drains all sealed and partial batches on the caller thread).
  void flush();

  /// Number of spans aggregated so far (flushes first).
  [[nodiscard]] std::size_t span_count();

  /// Flush and move the aggregated trace out, leaving the server empty and
  /// ready for the next evaluation run. Flattens into one contiguous span
  /// vector; prefer take_batches() on the hot path.
  [[nodiscard]] std::vector<Span> take_trace();

  /// Flush and move the aggregated trace out in publication batches — the
  /// zero-copy hand-off Timeline::assemble consumes directly.
  [[nodiscard]] SpanBatches take_batches();

  [[nodiscard]] PublishMode mode() const noexcept { return mode_; }

  /// True while the background collector thread exists (kAsync only; kSync
  /// must never spawn one).
  [[nodiscard]] bool has_collector() const noexcept { return collector_.joinable(); }

 private:
  /// Slots are cache-line aligned: a producer's spinlock and batch head
  /// never share a line with another producer's (or with the server's id
  /// counters below).
  struct alignas(64) ProducerSlot {
    /// Guards `active` and `sealed`. Only the owning thread and the
    /// collector/flush ever touch a slot, so this spinlock is effectively
    /// uncontended on the publish path.
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    SpanBatch active;
    SpanBatches sealed;
    /// Stable key of the owning thread: re-registration after a TLS cache
    /// eviction finds this slot again instead of growing slots_.
    std::uint64_t owner = 0;

    void acquire() noexcept {
      int spins = 0;
      while (lock.test_and_set(std::memory_order_acquire)) {
        // The holder is the collector moving batch handles (sub-µs) — spin
        // briefly, then yield so an oversubscribed core can run the holder.
        if (++spins > 64) std::this_thread::yield();
      }
    }
    void release() noexcept { lock.clear(std::memory_order_release); }
  };

  /// The calling thread's slot for this server (registered on first use,
  /// cached thread-locally keyed by a process-unique server uid so slot
  /// pointers never dangle across server lifetimes).
  ProducerSlot& local_slot();

  void collector_loop();
  /// Move sealed (and, when `steal_active`, partial) batches of every slot
  /// into trace_.
  void drain(bool steal_active);

  PublishMode mode_;
  std::uint64_t uid_;

  /// Id counters are hammered by every producer; isolate them from the
  /// locks the collector/flush paths take so RMWs on one never evict the
  /// other's line.
  alignas(64) std::atomic<SpanId> next_id_{1};
  std::atomic<std::uint64_t> next_corr_{1};

  /// Serializes whole drain passes (slot sweep + trace append). Without
  /// it, a flush could sweep the slots while a concurrent collector pass
  /// still holds swept batches in its local staging — and hand the trace
  /// off incomplete.
  alignas(64) std::mutex drain_mu_;

  alignas(64) std::mutex registry_mu_;
  std::vector<std::unique_ptr<ProducerSlot>> slots_;

  alignas(64) std::mutex trace_mu_;
  SpanBatches trace_;

  alignas(64) std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> pending_batches_{0};
  std::atomic<bool> stop_{false};
  std::thread collector_;
};

}  // namespace xsp::trace
