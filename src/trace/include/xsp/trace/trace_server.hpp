// TraceServer: aggregates spans published by all tracers into one trace.
//
// "Spans are published to a tracing server which is run on a local or remote
//  system. The tracing server aggregates the spans published by the
//  different tracers into one application timeline trace."  — Section III-A
//
// This implementation is in-process but keeps the same publish/aggregate
// interface and supports asynchronous publication ("XSP converts the
// captured CUPTI information into spans and publishes them to the tracer
// server (asynchronously to avoid added overhead)" — Section III-B).
//
// Publication path: instead of one global queue behind one mutex, each
// publishing thread owns a producer slot holding an append-only batch.
// publish() appends to the caller's slot under a slot-private spinlock that
// is uncontended except when the collector steals a batch — there is no
// cross-producer synchronization. Full batches are sealed and handed to the
// collector whole, so the global trace mutex is touched once per
// kBatchCapacity spans rather than once per span. flush()/take_trace()
// semantics are unchanged: after flush() every span published
// happens-before the call is aggregated.
//
// A server can also run as one shard of a ShardedTraceServer: the IdStripe
// constructor parameter stripes the id-block sequence so N shards hand out
// disjoint span ids with no cross-shard coordination.
//
// Producer-slot lifecycle: a (thread, server) slot is registered on the
// thread's first publish and, since PR 5, reclaimed after the thread
// exits — a TLS destructor object weakly marks the thread's slots
// reclaimable on every still-live server it touched (keyed by the
// process-unique server uid, so a dead server is never dereferenced), and
// the next drain pass sweeps the marked slots one final time (no span is
// ever lost), retires them, and parks them on a bounded freelist that new
// producer threads draw from before growing the registry. A long-lived
// server fed by ever-fresh worker threads therefore holds O(live threads
// + kSlotFreelistCapacity) slots instead of O(all threads ever).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "xsp/metrics/registry.hpp"
#include "xsp/trace/span.hpp"
#include "xsp/trace/span_sink.hpp"

namespace xsp::trace {

class Sampler;  // sampler.hpp: head-sampling admission policy

namespace detail {
class SlotRegistry;  // trace_server.cpp: uid-keyed weak map of live servers
}

enum class PublishMode : std::uint8_t {
  kSync,   ///< no collector thread; callers drain batches on flush()
  kAsync,  ///< a collector thread drains sealed batches in the background
};

// SpanBatch/SpanBatches live in span.hpp (shared with Timeline::assemble).

/// What happens to drained batches after a drain subscriber has seen them.
enum class DrainHandoff : std::uint8_t {
  /// Tee: the subscriber observes the batches, which then accumulate in
  /// the server as usual for take_batches()/take_trace(). Memory grows
  /// with the trace — the shape for "stream a copy while also assembling".
  kObserve,
  /// The subscriber *is* the consumer: after the callback returns, the
  /// batch buffers go straight back to the server freelist and never
  /// accumulate. Server memory stays bounded regardless of trace length;
  /// take_batches()/take_trace() return nothing while attached.
  kConsume,
};

/// Observes every drained batch list, in the drain pass that moved it out
/// of the producer slots (collector thread in kAsync, the flushing caller
/// in kSync). Invoked with the drain serialized — calls never overlap for
/// one server — and with no slot spinlock held, so publishers keep
/// publishing while the subscriber writes. Should not throw: a throwing
/// subscriber is detached on the spot; if it was the consumer, the drained
/// batches (and all later ones) accumulate in the server as if none were
/// attached — spans are preserved for take_batches(), never re-delivered.
using DrainSubscriber = std::function<void(const SpanBatches&)>;

/// Handle for one attached drain subscriber (remove_drain_subscriber).
/// 0 is never a valid id.
using SubscriberId = std::uint64_t;

/// Which id blocks this server hands out: global block k of this server is
/// block `index + k * stride` of the process-wide sequence. A standalone
/// server uses {0, 1} (every block); shard i of N uses {i, N}, so ids are
/// unique across shards without any shared counter.
struct IdStripe {
  std::uint64_t index = 0;
  std::uint64_t stride = 1;
};

/// Thread-safe span sink + aggregator. `final` so calls through a concrete
/// TraceServer reference devirtualize.
class TraceServer final : public SpanSink {
 public:
  /// Spans per producer batch: the granularity at which the collector takes
  /// work and the worst-case count a crashing producer could strand.
  static constexpr std::size_t kBatchCapacity = 256;

  /// Span ids per block handed to a publishing thread.
  static constexpr SpanId kIdBlockSize = 1024;

  /// Batch vectors kept for reuse after recycle(); bounds idle memory at
  /// kFreelistCapacity * kBatchCapacity * sizeof(Span).
  static constexpr std::size_t kFreelistCapacity = 16;

  /// Retired producer slots parked for reuse: a new producer thread draws
  /// a parked slot before growing the registry, so steady-state thread
  /// churn recirculates a handful of slots instead of allocating ~50KB
  /// per short-lived thread. Retired slots beyond the cap are destroyed
  /// outright — the freelist bounds idle slot memory, it is not a cache
  /// of record.
  static constexpr std::size_t kSlotFreelistCapacity = 8;

  explicit TraceServer(PublishMode mode = PublishMode::kAsync, IdStripe stripe = {});
  ~TraceServer() override;

  TraceServer(const TraceServer&) = delete;
  TraceServer& operator=(const TraceServer&) = delete;

  /// Allocate a fresh server-unique span id (never kNoSpan). Ids are
  /// handed to threads in blocks, so concurrent tracers do not contend on
  /// one counter cache line; ids are unique but not globally dense.
  SpanId next_span_id() noexcept override;

  /// Allocate a fresh correlation id for an async launch/execution pair.
  std::uint64_t next_correlation_id() noexcept override {
    return next_corr_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publish one completed span. Thread-safe; appends to the calling
  /// thread's batch without touching any global lock. When a sampler is
  /// attached, the admission decision happens here — before the span costs
  /// a batch slot — and the outcome is counted per slot (sampled_kept /
  /// sampled_dropped) so `published == admitted + sampled_dropped` holds
  /// exactly.
  void publish(Span span) override;

  /// Attach (or clear, with nullptr) the head-sampling admission policy
  /// consulted by publish(). The hot path reads one raw pointer: with no
  /// sampler attached publication cost is unchanged. Samplers set earlier
  /// stay alive until the server dies, so a publisher racing a
  /// set_sampler() call may use either policy but never a dangling one.
  void set_sampler(std::shared_ptr<const Sampler> sampler);

  /// Lifetime count of spans a sampler admitted at publish (flushes
  /// first). Monotonic, like drained_span_count(); zero when no sampler
  /// has ever been attached.
  [[nodiscard]] std::uint64_t sampled_kept_count();

  /// Lifetime count of spans a sampler rejected at publish (flushes
  /// first). Monotonic. `spans published == sampled_kept + sampled_dropped`
  /// whenever a sampler was attached for the whole run.
  [[nodiscard]] std::uint64_t sampled_dropped_count();

  /// Block until every span published before this call has been aggregated
  /// (drains all sealed and partial batches on the caller thread).
  void flush();

  /// Number of spans aggregated so far (flushes first).
  [[nodiscard]] std::size_t span_count();

  /// Cumulative spans drained from the producer slots over this server's
  /// lifetime (flushes first). Monotonic, and — unlike span_count() — not
  /// reset by take_batches() and still advancing while a kConsume
  /// subscriber keeps the server empty: this is the load signal per-shard
  /// telemetry aggregates.
  [[nodiscard]] std::uint64_t drained_span_count();

  /// Total annotations dropped (tag/metric capacity overflow) across all
  /// spans aggregated so far, summed at aggregation time so operators see
  /// fidelity loss without scanning spans (flushes first). Reset by
  /// take_trace()/take_batches() along with the trace itself.
  [[nodiscard]] std::uint64_t dropped_annotation_count();

  /// Flush and move the aggregated trace out, leaving the server empty and
  /// ready for the next evaluation run. Flattens into one contiguous span
  /// vector; prefer take_batches() on the hot path.
  [[nodiscard]] std::vector<Span> take_trace();

  /// Flush and move the aggregated trace out in publication batches — the
  /// zero-copy hand-off Timeline::assemble consumes directly.
  [[nodiscard]] SpanBatches take_batches();

  /// Return batch buffers from a previous take_batches() for reuse once the
  /// consumer is done with them. Recycled vectors feed the freelist that
  /// publish()/drain() draw replacement batches from, making steady-state
  /// publication allocation-free end to end. Dropping batches instead of
  /// recycling them is always safe — the freelist is an optimization.
  void recycle(SpanBatches batches);

  /// Recycle a single batch buffer (ShardedTraceServer distributes a merged
  /// take across shard freelists one batch at a time).
  void recycle_one(SpanBatch batch);

  /// Attach a drain subscriber: the streaming hook. Subscribers observe
  /// batches as they drain instead of a consumer waiting for
  /// take_batches(); any number of kObserve subscribers may be attached
  /// at once (fan-out: a streaming exporter teeing to disk AND an online
  /// analyzer aggregating live), but at most ONE kConsume subscriber —
  /// consuming hands the batch buffers to the freelist right after all
  /// callbacks ran, so two consumers would each believe they own the
  /// stream. Attaching a second consumer throws std::logic_error.
  ///
  /// Delivery order per drain pass: observers in attach order, the
  /// consumer last. With a consumer attached the publish → seal → drain →
  /// deliver → recycle cycle runs in bounded memory for arbitrarily long
  /// traces and take_batches() returns nothing. Attaching/detaching
  /// synchronizes with in-flight drains; spans already aggregated before
  /// attach are NOT replayed (attach before publishing starts).
  ///
  /// Returns the id to pass to remove_drain_subscriber().
  SubscriberId add_drain_subscriber(DrainSubscriber subscriber,
                                    DrainHandoff handoff = DrainHandoff::kObserve);

  /// Detach one subscriber. Unknown/already-removed ids are a no-op.
  /// Synchronizes with in-flight drains: after this returns no drain pass
  /// will call the removed subscriber (safe to destroy it).
  void remove_drain_subscriber(SubscriberId id);

  /// Number of currently attached drain subscribers (tests/telemetry).
  [[nodiscard]] std::size_t drain_subscriber_count();

  /// Producer slots currently registered: live publishing threads plus
  /// exited threads whose slots the next drain pass will retire. The slot
  /// health number a long-lived server watches — it must track live
  /// producers, not cumulative thread history.
  [[nodiscard]] std::size_t live_slot_count();

  /// Cumulative slots retired by drain sweeps over this server's
  /// lifetime (monotonic; one retirement per exited producer thread).
  [[nodiscard]] std::uint64_t retired_slot_count();

  /// Retired slots currently parked for reuse (<= kSlotFreelistCapacity).
  [[nodiscard]] std::size_t pooled_slot_count();

  /// Approximate bytes resident in producer slots, live and parked:
  /// struct plus active/sealed batch capacities. The ~50KB-per-slot
  /// figure operators size serving fleets with.
  [[nodiscard]] std::uint64_t approx_slot_bytes();

  /// Enable/disable thread-exit slot reclamation (on by default). Off,
  /// slots accrete until the server dies — the pre-reclamation behaviour,
  /// kept as the ablation switch for bench_abl_slot_reclamation and as an
  /// operational escape hatch. Spans are never lost either way.
  void set_slot_reclamation(bool enabled) noexcept {
    reclaim_enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Register this server's health series with a metrics registry under
  /// `labels` (e.g. {"shard","2"}). The series are callback-backed reads
  /// of counters the server already maintains, so the publish hot path
  /// gains ZERO new instructions; values advance at drain cadence (they
  /// are sampled without forcing a flush). The one new measurement is a
  /// drain-pass wall-time histogram (xsp_trace_drain_duration_ns),
  /// observed once per pass — nanoseconds per hundreds of spans.
  /// Rebinding replaces the previous binding; the binding is removed when
  /// either the server or the registry dies first (handles are weak).
  void bind_metrics(metrics::Registry& registry, metrics::Labels labels = {});

  [[nodiscard]] PublishMode mode() const noexcept { return mode_; }

  [[nodiscard]] IdStripe id_stripe() const noexcept { return stripe_; }

  /// True while the background collector thread exists (kAsync only; kSync
  /// must never spawn one).
  [[nodiscard]] bool has_collector() const noexcept { return collector_.joinable(); }

 private:
  /// Slots are cache-line aligned: a producer's spinlock and batch head
  /// never share a line with another producer's (or with the server's id
  /// counters below).
  struct alignas(64) ProducerSlot {
    /// Guards `active`, `sealed`, and `dropped`. Only the owning thread and
    /// the collector/flush ever touch a slot, so this spinlock is
    /// effectively uncontended on the publish path.
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    SpanBatch active;
    SpanBatches sealed;
    /// Annotation drops published through this slot since the last drain;
    /// aggregated into the server-wide counter when batches are taken.
    std::uint64_t dropped = 0;
    /// Sampler admissions/rejections through this slot since the last
    /// drain; aggregated into the lifetime sampled_kept_/sampled_dropped_
    /// counters exactly like `dropped` above.
    std::uint64_t sampled_kept = 0;
    std::uint64_t sampled_dropped = 0;
    /// Stable key of the owning thread: re-registration after a TLS cache
    /// eviction finds this slot again instead of growing slots_.
    std::uint64_t owner = 0;
    /// Set (under the slot spinlock) by the owning thread's exit hook;
    /// the next drain pass sweeps the slot one final time and retires it.
    /// Cleared if the exited thread publishes again from a later TLS
    /// destructor — the slot is resurrected rather than torn from under
    /// an in-flight publish.
    bool reclaimable = false;

    void acquire() noexcept {
      int spins = 0;
      while (lock.test_and_set(std::memory_order_acquire)) {
        // The holder is the collector moving batch handles (sub-µs) — spin
        // briefly, then yield so an oversubscribed core can run the holder.
        if (++spins > 64) std::this_thread::yield();
      }
    }
    void release() noexcept { lock.clear(std::memory_order_release); }
  };

  /// The calling thread's slot for this server (registered on first use,
  /// cached thread-locally keyed by a process-unique server uid so slot
  /// pointers never dangle across server lifetimes). First use also
  /// registers the thread's exit hook (a TLS destructor object) so the
  /// slot is reclaimed when the thread dies.
  ProducerSlot& local_slot();

  /// Find-or-register the slot for thread `thread_key` (drawing a parked
  /// retired slot before allocating). `resurrect` is the
  /// publish-after-exit-hook path: un-mark a still-registered slot so a
  /// concurrent drain cannot retire it out from under the caller.
  ProducerSlot& register_slot(std::uint64_t thread_key, bool resurrect);

  /// Called (via detail::SlotRegistry, which pins this server alive for
  /// the duration) when a producer thread exits: mark its slot
  /// reclaimable and nudge the collector so retirement is prompt.
  void note_thread_exit(std::uint64_t thread_key);
  friend class detail::SlotRegistry;

  void collector_loop();
  /// Move sealed (and, when `steal_active`, partial) batches of every slot
  /// into trace_.
  void drain(bool steal_active);

  /// Pop a recycled batch vector, or allocate a fresh one. Never blocks
  /// (try-lock), so it is safe to call while holding a slot spinlock.
  SpanBatch take_free_batch_or_new();

  PublishMode mode_;
  IdStripe stripe_;
  std::uint64_t uid_;

  /// Id counters are hammered by every producer; isolate them from the
  /// locks the collector/flush paths take so RMWs on one never evict the
  /// other's line. next_block_ counts blocks *this server* allocated; the
  /// stripe maps them onto the process-wide block sequence.
  alignas(64) std::atomic<std::uint64_t> next_block_{0};
  std::atomic<std::uint64_t> next_corr_{1};

  /// Serializes whole drain passes (slot sweep + trace append). Without
  /// it, a flush could sweep the slots while a concurrent collector pass
  /// still holds swept batches in its local staging — and hand the trace
  /// off incomplete.
  alignas(64) std::mutex drain_mu_;
  /// Drain staging, reused across passes (guarded by drain_mu_).
  SpanBatches drain_staging_;
  /// Streaming hooks (guarded by drain_mu_; called mid-drain). Observers
  /// fan out in attach order; at most one entry has kConsume (enforced by
  /// add_drain_subscriber) and is delivered to last.
  struct Subscriber {
    SubscriberId id = 0;
    DrainSubscriber fn;
    DrainHandoff handoff = DrainHandoff::kObserve;
  };
  std::vector<Subscriber> subscribers_;
  SubscriberId next_subscriber_id_ = 1;

  alignas(64) std::mutex registry_mu_;
  std::vector<std::unique_ptr<ProducerSlot>> slots_;
  /// Retired slots parked for reuse (guarded by registry_mu_; bounded by
  /// kSlotFreelistCapacity).
  std::vector<std::unique_ptr<ProducerSlot>> free_slots_;
  /// Lifetime count of slot retirements (guarded by registry_mu_).
  std::uint64_t retired_slots_ = 0;
  /// Thread-exit reclamation switch (see set_slot_reclamation()).
  std::atomic<bool> reclaim_enabled_{true};

  alignas(64) std::mutex trace_mu_;
  SpanBatches trace_;
  std::uint64_t dropped_total_ = 0;
  /// Lifetime total of spans drained out of the producer slots — the
  /// per-shard load counter. Atomic so telemetry reads race-free against
  /// a collector mid-drain.
  std::atomic<std::uint64_t> drained_spans_{0};
  /// Lifetime sampler admission counters, aggregated from the per-slot
  /// counts at drain (atomic for the same reason as drained_spans_).
  std::atomic<std::uint64_t> sampled_kept_{0};
  std::atomic<std::uint64_t> sampled_dropped_{0};

  /// Admission policy. The hot path loads the raw pointer (acquire); the
  /// shared_ptrs in sampler_refs_ keep every policy ever set alive so the
  /// raw pointer can never dangle mid-publish (set_sampler is a rare
  /// configuration action — retaining superseded policies is cheap).
  std::atomic<const Sampler*> sampler_ptr_{nullptr};
  std::mutex sampler_mu_;
  std::vector<std::shared_ptr<const Sampler>> sampler_refs_;

  /// Freelist of cleared batch vectors (and outer batch-list vectors) fed
  /// by recycle(); drawn from by publish()/drain()/take_batches().
  alignas(64) std::mutex free_mu_;
  SpanBatches free_batches_;
  std::vector<SpanBatches> free_outers_;

  alignas(64) std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> pending_batches_{0};
  std::atomic<bool> stop_{false};
  std::thread collector_;

  /// Self-metrics binding (bind_metrics). drain_hist_ is the raw pointer
  /// drain passes load with one relaxed read (null when unbound — the
  /// common case costs a branch); drain_hist_refs_ keeps every histogram
  /// ever bound alive (same retain-superseded idiom as sampler_refs_, so
  /// a drain racing a rebind can never observe a dangling pointer). The
  /// callback handles are cleared first thing in the destructor, which
  /// synchronizes with any in-flight scrape on the registry lock, so a
  /// sample can never touch a dying server.
  std::mutex metrics_mu_;
  std::vector<std::shared_ptr<metrics::Histogram>> drain_hist_refs_;
  std::atomic<metrics::Histogram*> drain_hist_{nullptr};
  std::vector<metrics::CallbackHandle> metrics_cbs_;
};

}  // namespace xsp::trace
