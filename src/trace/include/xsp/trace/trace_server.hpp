// TraceServer: aggregates spans published by all tracers into one trace.
//
// "Spans are published to a tracing server which is run on a local or remote
//  system. The tracing server aggregates the spans published by the
//  different tracers into one application timeline trace."  — Section III-A
//
// This implementation is in-process but keeps the same publish/aggregate
// interface and supports asynchronous publication ("XSP converts the
// captured CUPTI information into spans and publishes them to the tracer
// server (asynchronously to avoid added overhead)" — Section III-B).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "xsp/trace/span.hpp"

namespace xsp::trace {

enum class PublishMode : std::uint8_t {
  kSync,   ///< publish() appends under a lock on the caller thread
  kAsync,  ///< publish() enqueues; a collector thread drains the queue
};

/// Thread-safe span sink + aggregator.
class TraceServer {
 public:
  explicit TraceServer(PublishMode mode = PublishMode::kAsync);
  ~TraceServer();

  TraceServer(const TraceServer&) = delete;
  TraceServer& operator=(const TraceServer&) = delete;

  /// Allocate a fresh process-unique span id (never kNoSpan).
  SpanId next_span_id() noexcept { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Allocate a fresh correlation id for an async launch/execution pair.
  std::uint64_t next_correlation_id() noexcept {
    return next_corr_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publish one completed span. Thread-safe.
  void publish(Span span);

  /// Block until all queued spans have been aggregated.
  void flush();

  /// Number of spans aggregated so far (flushes first).
  [[nodiscard]] std::size_t span_count();

  /// Flush and move the aggregated trace out, leaving the server empty and
  /// ready for the next evaluation run.
  [[nodiscard]] std::vector<Span> take_trace();

  [[nodiscard]] PublishMode mode() const noexcept { return mode_; }

 private:
  void collector_loop();

  PublishMode mode_;
  std::atomic<SpanId> next_id_{1};
  std::atomic<std::uint64_t> next_corr_{1};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Span> queue_;
  std::vector<Span> trace_;
  bool stop_ = false;
  std::thread collector_;
};

}  // namespace xsp::trace
