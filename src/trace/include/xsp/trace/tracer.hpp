// Tracer: per-profiler span factory and publisher.
//
// "Each service in a distributed application has a tracer — some code to
//  create and publish spans. ... 1. each profiler within a stack is turned
//  into a tracer, 2. the profiled events each form a span, 3. each span is
//  tagged with its stack level ... As a feature supported by distributed
//  tracing, tracers can be enabled or disabled at runtime."  — Section III-A
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "xsp/trace/span.hpp"
#include "xsp/trace/span_sink.hpp"

namespace xsp::trace {

/// One tracer per profiler (model timer, framework profiler, CUPTI, ...).
/// Multiple tracers may share a stack level (e.g. CPU and GPU tracers at
/// the hardware level).
class Tracer {
 public:
  /// `name` identifies the publishing profiler; `level` is the stack level
  /// all spans from this tracer are tagged with. The name is interned once
  /// here, so publishing stamps a 32-bit id instead of copying a string.
  /// The sink may be a single TraceServer or a ShardedTraceServer; the
  /// tracer neither knows nor cares.
  Tracer(SpanSink& server, StrId name, int level)
      : server_(&server), name_(name), level_(level) {}

  [[nodiscard]] const std::string& name() const { return name_.str(); }
  [[nodiscard]] StrId name_id() const noexcept { return name_; }
  [[nodiscard]] int level() const noexcept { return level_; }

  /// Tracers can be toggled at runtime; a disabled tracer drops all spans.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool e) noexcept { enabled_ = e; }

  /// Begin an open span at simulated time `t`. Returns kNoSpan when the
  /// tracer is disabled (finish_span on kNoSpan is a no-op, so call sites
  /// need no enabled() checks).
  SpanId start_span(StrId span_name, TimePoint t, SpanId parent = kNoSpan,
                    SpanKind kind = SpanKind::kRegular);

  /// Attach a string tag to an open span.
  void add_tag(SpanId id, StrId key, StrId value);

  /// Attach an inline value tag to an open span: the value bytes are
  /// stored in the span itself and never interned. Use this for
  /// high-cardinality values (grid/block dims, request ids) so a
  /// long-running service's StringTable stays bounded; values longer
  /// than InlineTagMap::kValueCapacity are truncated.
  void tag_inline(SpanId id, StrId key, std::string_view value);

  /// Attach a numeric metric to an open span.
  void add_metric(SpanId id, StrId key, double value);

  /// Set the correlation id of an open span (async launch/execution pairs).
  void set_correlation(SpanId id, std::uint64_t correlation_id);

  /// Close an open span at time `t` and publish it to the server.
  void finish_span(SpanId id, TimePoint t);

  /// Publish a span that was fully formed elsewhere (offline conversion of
  /// a profiler's output — Section III-A: "the conversion from the profiled
  /// events to spans can be performed ... off-line by processing the output
  /// of the profiler"). The span's id is assigned here; tracer name and
  /// level are stamped on. Returns the assigned id, or kNoSpan if disabled.
  SpanId publish_completed(Span span);

  /// Number of spans currently open (started, not yet finished).
  [[nodiscard]] std::size_t open_count() const noexcept { return open_.size(); }

  /// Access to the owning sink (e.g. for correlation-id allocation).
  [[nodiscard]] SpanSink& server() noexcept { return *server_; }

 private:
  /// Open spans live in a flat stack-like vector: tracer nesting depth is
  /// small, and finish almost always closes a recently started span, so a
  /// backwards linear scan beats a hash map and allocates nothing after
  /// warm-up.
  Span* find_open(SpanId id) noexcept;

  SpanSink* server_;
  StrId name_;
  int level_;
  bool enabled_ = true;
  std::vector<Span> open_;
};

/// RAII helper that finishes a span when destroyed. The close timestamp is
/// read from a caller-supplied callable so simulated clocks work naturally.
template <typename NowFn>
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, StrId name, NowFn now, SpanId parent = kNoSpan)
      : tracer_(&tracer), now_(std::move(now)) {
    id_ = tracer_->start_span(name, now_(), parent);
  }
  ~ScopedSpan() {
    if (id_ != kNoSpan) tracer_->finish_span(id_, now_());
  }

  /// Move-constructible so helper factories can return a ScopedSpan; the
  /// moved-from object relinquishes the span (id kNoSpan) and its
  /// destructor finishes nothing.
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_),
        now_(std::move(other.now_)),
        id_(std::exchange(other.id_, kNoSpan)) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  [[nodiscard]] SpanId id() const noexcept { return id_; }

  /// Attach an inline value tag to the guarded span (see
  /// Tracer::tag_inline); no-op on a relinquished/disabled span.
  void tag_inline(StrId key, std::string_view value) {
    if (id_ != kNoSpan) tracer_->tag_inline(id_, key, value);
  }

 private:
  Tracer* tracer_;
  NowFn now_;
  SpanId id_;
};

}  // namespace xsp::trace
