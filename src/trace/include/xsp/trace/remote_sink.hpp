// RemoteSink: the producer half of cross-process trace ingestion — a
// SpanSink that ships spans to xsp_collectd over the binary wire format
// instead of into an in-process TraceServer.
//
// Shape: publish() appends into a pending batch under a mutex (producer
// cost is one lock + one 184-byte copy); sealed batches queue into a
// bounded outbox a background sender thread drains through a BinaryWriter
// over a socket-backed fallible FrameSink. All network latency, blocking,
// and failure lives on the sender thread — tracers never stall on the
// collector.
//
// Backpressure is bounded and *accounted*, never blocking and never
// silent (the always-on-client memory discipline the I2PA evaluation
// stresses — see PAPERS.md):
//   - outbox at max_outbox_spans  -> with a sampler attached, the batch is
//     first shed *selectively*: the sampler's value ordering keeps tail
//     outliers and the deterministic high-priority hash slice
//     (Sampler::keep_under_pressure) and drops the rest, counted in both
//     spans_shed() and spans_dropped(); survivors that still do not fit —
//     and whole batches when no sampler is attached — drop blind,
//     spans_dropped() += batch size;
//   - wire bytes pending past max_wire_pending_bytes (socket saturated
//     slower than we encode) -> the next batch drops instead of encoding;
//   - a dead connection drops the batch being written, then reconnects
//     with capped exponential backoff. Each reconnect starts a fresh
//     BinaryWriter — fresh stream header and a StringDelta epoch replayed
//     from cursor zero, so the collector's new per-connection decoder is
//     complete without any cross-connection state.
// Batches still queued in the outbox survive a reconnect (they re-encode
// against the new epoch); only bytes already half-sent die with the
// connection. The totals surface as TraceMeta::remote_dropped_spans /
// remote_reconnects in the stream footer and via accessors here.
//
// close(): seals the pending batch, drains the outbox, writes the footer
// frame, half-closes the socket (shutdown_write = "stream complete"), and
// waits up to drain_timeout_ms for the daemon to ack by closing its end —
// the drain protocol documented in src/trace/README.md. If the collector
// is unreachable, close() gives up after one connect attempt and accounts
// every undelivered span as dropped: a dead daemon must never wedge
// producer shutdown.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "xsp/metrics/registry.hpp"
#include "xsp/net/endpoint.hpp"
#include "xsp/trace/span.hpp"
#include "xsp/trace/span_sink.hpp"
#include "xsp/trace/wire.hpp"

namespace xsp::trace {

class Sampler;  // sampler.hpp

struct RemoteSinkOptions {
  /// Spans per sealed batch (the wire-frame granularity).
  std::size_t batch_spans = 512;
  /// Outbox bound: total spans queued for the sender before newly sealed
  /// batches drop with accounting.
  std::size_t max_outbox_spans = 64 * 1024;
  /// Bound on bytes the FrameSink may hold for a saturated socket before
  /// batches drop instead of encoding.
  std::size_t max_wire_pending_bytes = 1 << 20;
  int connect_timeout_ms = 1000;
  /// Reconnect backoff: initial delay, doubling to the cap.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 2000;
  /// Per-attempt bound on waiting for socket writability before a short
  /// write returns to the FrameSink buffer.
  int io_wait_ms = 20;
  /// How long close() waits for the daemon's end-of-stream ack.
  int drain_timeout_ms = 2000;
  /// Cadence of wire v3 Heartbeat frames carrying the sink's live
  /// counters, sent from the sender thread while a connection is up —
  /// the signal the collector turns into per-producer staleness (a
  /// producer whose heartbeats stop mid-connection is dead or stalled).
  /// <= 0 disables heartbeats entirely.
  int heartbeat_interval_ms = 1000;
};

class RemoteSink final : public SpanSink {
 public:
  /// Starts the sender thread immediately; connection establishment (and
  /// any retrying) happens there, so construction never blocks on the
  /// network.
  explicit RemoteSink(net::Endpoint endpoint, RemoteSinkOptions options = {});

  /// Calls close() if it was not called explicitly.
  ~RemoteSink() override;

  RemoteSink(const RemoteSink&) = delete;
  RemoteSink& operator=(const RemoteSink&) = delete;

  // SpanSink producer surface. Ids are sink-local (allocated from plain
  // counters): the collector re-maps span/parent/correlation ids into its
  // fleet-wide id space at ingest, so producers need no coordination.
  SpanId next_span_id() noexcept override;
  std::uint64_t next_correlation_id() noexcept override;
  void publish(Span span) override;

  /// Enqueue already-sealed batches — the drain-subscriber shape, so a
  /// profile::Session can forward its TraceServer drain to a collector
  /// (ProfileOptions::remote_endpoint). Same bounded-outbox accounting as
  /// publish().
  void write_batches(const SpanBatches& batches);

  /// Seal the pending partial batch and wake the sender. Does not wait
  /// for delivery.
  void flush();

  /// Telemetry to embed in the stream footer alongside the sink's own
  /// remote_dropped_spans/remote_reconnects (which are filled in by the
  /// sink itself at close()).
  void set_meta(const TraceMeta& meta);

  /// Seal + drain + footer + half-close + wait for the daemon's ack.
  /// Idempotent; publishes after close() are dropped with accounting.
  void close();

  /// Attach (or clear) the admission policy. Two roles:
  ///  - publish() consults admit() exactly like TraceServer does, so
  ///    `published == admitted + sampled_dropped` holds for direct
  ///    producers (write_batches spans were already admitted upstream and
  ///    are never re-sampled);
  ///  - under backpressure the outbox sheds low-value spans through
  ///    keep_under_pressure() instead of dropping whole batches blind.
  void set_sampler(std::shared_ptr<const Sampler> sampler);

  // --- telemetry -----------------------------------------------------------
  [[nodiscard]] std::uint64_t spans_published() const noexcept;
  /// Spans accepted by the socket layer (left the FrameSink fully).
  [[nodiscard]] std::uint64_t spans_sent() const noexcept;
  /// Spans that were admitted but never delivered (congestion, dead
  /// connections, close against an unreachable daemon). Invariant at
  /// close(): published == sent + dropped + sampled_dropped.
  [[nodiscard]] std::uint64_t spans_dropped() const noexcept;
  /// Of spans_dropped(): how many were shed *selectively* by the
  /// sampler's value ordering under backpressure (vs. blind whole-batch
  /// congestion drops). 0 without a sampler.
  [[nodiscard]] std::uint64_t spans_shed() const noexcept;
  /// Spans publish() admitted / rejected via the sampler (0 without one).
  [[nodiscard]] std::uint64_t spans_sampled_kept() const noexcept;
  [[nodiscard]] std::uint64_t spans_sampled_dropped() const noexcept;
  [[nodiscard]] std::uint64_t reconnects() const noexcept;
  [[nodiscard]] bool connected() const noexcept;
  /// Spans currently queued in the bounded outbox (instantaneous depth —
  /// the backpressure signal the heartbeat frame also carries).
  [[nodiscard]] std::uint64_t outbox_spans() const;
  /// Heartbeat frames emitted over this sink's lifetime.
  [[nodiscard]] std::uint64_t heartbeats_sent() const noexcept;

  /// Register this sink's health series with a metrics registry (callback
  /// reads of the accounting atomics — nothing on the publish path). This
  /// is what makes a wedged producer visible *while* it is wedged:
  /// xsp_remote_dropped_spans_total / xsp_remote_reconnects_total /
  /// xsp_remote_outbox_spans update live, not only in the close() footer.
  /// Rebinding replaces the previous binding; removal is automatic when
  /// either side dies first.
  void bind_metrics(metrics::Registry& registry, metrics::Labels labels = {});

 private:
  struct Conn;  // socket + writer, owned by the sender thread

  /// Seal pending_ into the outbox (or drop it, accounted). Caller holds mu_.
  void seal_locked();
  void enqueue_locked(SpanBatch&& batch);
  void sender_loop();
  bool connect_once(Conn& conn);
  void finish_stream(Conn& conn);
  /// Snapshot the live counters into a heartbeat frame (sender thread).
  [[nodiscard]] wire::Heartbeat make_heartbeat();

  const net::Endpoint endpoint_;
  const RemoteSinkOptions opts_;

  std::atomic<SpanId> next_id_{1};
  std::atomic<std::uint64_t> next_corr_{1};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  SpanBatch pending_;
  std::deque<SpanBatch> outbox_;
  std::size_t outbox_spans_ = 0;
  TraceMeta meta_{};
  /// Admission + shed policy (guarded by mu_; immutable once set).
  std::shared_ptr<const Sampler> sampler_;
  bool stop_ = false;
  bool closed_ = false;

  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> sampled_kept_{0};
  std::atomic<std::uint64_t> sampled_dropped_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> heartbeats_sent_{0};
  /// Per-stream heartbeat sequence (sender thread only).
  std::uint64_t hb_seq_ = 0;

  std::thread sender_;

  /// Self-metrics binding (bind_metrics). Declared last so the handles
  /// are destroyed first: release serializes with in-flight scrapes on
  /// the registry lock, and every member a sample reads outlives it.
  std::mutex metrics_mu_;
  std::vector<metrics::CallbackHandle> metrics_cbs_;
};

}  // namespace xsp::trace
