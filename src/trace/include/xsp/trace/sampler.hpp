// Sampler: the single span-admission decision point for the publish path.
//
// "Millions of users" means the profiler can never be the bottleneck: under
// always-on collection the publish path must be able to shed load *before*
// spans cost batch slots, wire bytes, and analysis state. The sampler is a
// head-sampling policy evaluated once per span at publication:
//
//  - Deterministic hash admission. The decision hashes the span's
//    correlation id (falling back to the span id when there is none) through
//    a splitmix64 finalizer and compares against a precomputed 64-bit
//    threshold (rate scaled to the hash space). Every span of one request
//    shares a correlation id, so a whole launch/execution pair — and any
//    future request-scoped span group — is kept or shed coherently, and the
//    same stream re-publishes to the same decisions (replay-stable).
//  - Per-level and per-tracer rate control. Each stack level can carry its
//    own rate (keep every model span, 1% of kernel spans), and a per-tracer
//    override wins over the level rate.
//  - Tail-keep escape hatch. Spans whose duration meets `tail_keep_ns` are
//    force-admitted regardless of the hash — slow outliers are exactly the
//    spans a profiler exists to catch, so rate control never hides them.
//
// The sampler is immutable after construction and every query is const, so
// publishers on any thread may consult one instance without synchronization.
// Accounting is the caller's job: TraceServer/RemoteSink count kept and
// sampled-out spans so `published == admitted + sampled_dropped` holds
// exactly and analyses can rescale (see analysis::OnlineAnalyzer).
//
// `effective_rate` returns the exact inclusion probability the admission
// decision used for a given span (1.0 for force-admitted tails). It is the
// Horvitz-Thompson weight denominator: an estimator that weights each
// admitted span by 1/effective_rate is unbiased for the unsampled total.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "xsp/trace/span.hpp"

namespace xsp::trace {

struct SamplerOptions {
  /// Base keep probability in [0, 1]. Values >= 1 keep everything.
  double rate = 1.0;
  /// Per-level overrides as (level, rate) pairs; a level not listed uses the
  /// base rate. Levels outside [0, 8) share one "custom" slot.
  std::vector<std::pair<int, double>> level_rates;
  /// Per-tracer overrides, matched on the tracer StrId; wins over the level
  /// rate. Intended for a handful of tracers (linear scan).
  std::vector<std::pair<StrId, double>> tracer_rates;
  /// Force-admit spans with duration >= this many ns; 0 disables. Tail-kept
  /// spans have inclusion probability 1.0 (they bypass the hash entirely).
  Ns tail_keep_ns = 0;
  /// Fraction of the configured rate that survives congestion shedding
  /// (`keep_under_pressure`): under backpressure a span is high-value if it
  /// is a tail outlier or its hash falls inside rate * shed_keep_fraction.
  double shed_keep_fraction = 0.125;
  /// Mixed into the hash so independent fleets decorrelate their keep sets.
  std::uint64_t seed = 0;
};

class Sampler {
 public:
  explicit Sampler(SamplerOptions options);

  /// Head-sampling decision for one span. Deterministic: same correlation
  /// id (or span id), same policy, same verdict.
  [[nodiscard]] bool admit(const Span& span) const noexcept;

  /// Exact inclusion probability `admit` used for this span: 1.0 for
  /// force-admitted tails and keep-all policies, the configured rate
  /// otherwise. Never returns 0 for an admitted span.
  [[nodiscard]] double effective_rate(const Span& span) const noexcept;

  /// Value ordering for congestion shedding: true if the span should
  /// survive backpressure (tail outlier, or hash within
  /// rate * shed_keep_fraction). Independent of `admit` accounting — the
  /// caller decides what shedding means (see RemoteSink).
  [[nodiscard]] bool keep_under_pressure(const Span& span) const noexcept;

  /// In-place congestion shed: removes every span `keep_under_pressure`
  /// rejects, preserving order. Returns the number removed.
  std::size_t shed_low_value(SpanBatch& batch) const;

  /// True when every admission decision is "keep" (rate 1.0 everywhere):
  /// callers may skip per-span consultation entirely.
  [[nodiscard]] bool pass_through() const noexcept { return pass_through_; }

  [[nodiscard]] const SamplerOptions& options() const noexcept { return options_; }

  /// splitmix64 finalizer — the admission hash, exposed so tests can
  /// predict decisions.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

 private:
  /// Sentinel threshold meaning "admit unconditionally" (a plain `hash <
  /// threshold` compare cannot express probability exactly 1).
  static constexpr std::uint64_t kAlways = ~0ull;
  /// Levels 0..6 get their own slot; everything else shares slot 7.
  static constexpr int kLevelSlots = 8;

  struct Policy {
    std::uint64_t threshold = kAlways;           ///< admission bound
    std::uint64_t pressure_threshold = kAlways;  ///< congestion-shed bound
    double rate = 1.0;                           ///< inclusion probability
  };

  [[nodiscard]] const Policy& policy_for(const Span& span) const noexcept;
  [[nodiscard]] std::uint64_t key_of(const Span& span) const noexcept {
    const std::uint64_t key =
        span.correlation_id != 0 ? span.correlation_id : span.id;
    return mix(key ^ seed_);
  }
  [[nodiscard]] bool tail_kept(const Span& span) const noexcept {
    return tail_keep_ns_ > 0 && span.duration() >= tail_keep_ns_;
  }

  SamplerOptions options_;
  Policy levels_[kLevelSlots];
  std::vector<std::pair<std::uint32_t, Policy>> tracers_;
  Ns tail_keep_ns_ = 0;
  std::uint64_t seed_ = 0;
  bool pass_through_ = true;
};

}  // namespace xsp::trace
