// ShardedTraceServer: N independent TraceServer shards behind one SpanSink.
//
// After the batched publication refactor, one TraceServer per trace was the
// last global aggregation point: every producer's sealed batches funnel
// through a single drain lock and collector thread. Sharding removes it —
// publishers are routed to one of N fully independent servers by a cheap
// selector, so heavy multi-model traffic fans out instead of serializing on
// one collector. This is the paper's "tracing server" run as a small fleet
// (Section III-A: the server may be "on a local or remote system" — here,
// N in-process instances).
//
// Design:
//   * Id uniqueness: shard i of N allocates id blocks striped i, i+N,
//     i+2N, ... (TraceServer::IdStripe), so span ids are unique across the
//     whole fleet with zero cross-shard coordination.
//   * Routing: by publishing thread (default — keeps a producer's slot,
//     id block, and batch all on one shard), by publishing tracer, or by
//     span begin-time window. All selectors are branch-cheap and
//     allocation-free.
//   * Merge: take_batches() concatenates the per-shard batch lists —
//     O(number of batches) handle moves, no span is touched. Ordering is
//     restored downstream: Timeline::assemble begin-orders nodes anyway,
//     so a merged multi-shard trace assembles identically to a
//     single-server trace of the same spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "xsp/common/time.hpp"
#include "xsp/trace/span_sink.hpp"
#include "xsp/trace/trace_server.hpp"

namespace xsp::trace {

/// How publishers are routed to shards.
enum class ShardPolicy : std::uint8_t {
  /// Hash of the publishing thread (default): each producer thread sticks
  /// to one shard, so its slot, id block, and collector stay shard-local.
  kByThread,
  /// Hash of the span's tracer id: all spans of one profiler land on one
  /// shard regardless of which thread publishes them.
  kByTracer,
  /// Span begin-timestamp window: time-sliced traces, so one shard holds
  /// a contiguous window of the timeline.
  kByTimeWindow,
};

const char* shard_policy_name(ShardPolicy p);

class ShardedTraceServer final : public SpanSink {
 public:
  /// Hard cap on shard count; beyond this the collector threads themselves
  /// become the contention.
  static constexpr std::size_t kMaxShards = 64;

  /// Default shard count: hardware concurrency, capped at 8 (one collector
  /// per shard in kAsync mode; more shards than cores only adds churn).
  static std::size_t default_shard_count() noexcept;

  /// The shard count a `requested` value resolves to (0 -> default, else
  /// capped at kMaxShards) — what shard_count() will report after
  /// construction with the same request.
  static std::size_t resolve_shard_count(std::size_t requested) noexcept;

  /// `shard_count` 0 means default_shard_count(). `time_window` is only
  /// used by ShardPolicy::kByTimeWindow.
  explicit ShardedTraceServer(std::size_t shard_count = 0,
                              PublishMode mode = PublishMode::kAsync,
                              ShardPolicy policy = ShardPolicy::kByThread,
                              Ns time_window = kNsPerMs);
  ~ShardedTraceServer() override = default;

  ShardedTraceServer(const ShardedTraceServer&) = delete;
  ShardedTraceServer& operator=(const ShardedTraceServer&) = delete;

  /// Fleet-unique span id, allocated from the calling thread's shard. Any
  /// shard's ids are unique across the whole fleet (striped blocks), so id
  /// allocation never needs to match publish routing.
  SpanId next_span_id() noexcept override;

  /// Fleet-wide correlation id (one counter; correlation ids pair launch
  /// and execution spans that may land on different shards).
  std::uint64_t next_correlation_id() noexcept override {
    return next_corr_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Publish to the shard the policy selects.
  void publish(Span span) override;

  /// Flush every shard.
  void flush();

  /// Total spans aggregated across all shards (flushes first).
  [[nodiscard]] std::size_t span_count();

  /// Sum of the per-shard dropped-annotation aggregates (flushes first).
  [[nodiscard]] std::uint64_t dropped_annotation_count();

  /// Install one admission policy on every shard (nullptr clears). One
  /// shared immutable Sampler serves the whole fleet — the decision is
  /// deterministic in the span, so shard routing cannot change a verdict.
  void set_sampler(std::shared_ptr<const Sampler> sampler);

  /// Sum of the per-shard sampler admissions (flushes first; monotonic).
  [[nodiscard]] std::uint64_t sampled_kept_count();

  /// Sum of the per-shard sampler rejections (flushes first; monotonic).
  [[nodiscard]] std::uint64_t sampled_dropped_count();

  /// The merge step: concatenation of every shard's batch list, cost
  /// O(batches). Span order across shards is arbitrary, exactly as it is
  /// across producer slots of one server; Timeline::assemble orders it.
  [[nodiscard]] SpanBatches take_batches();

  /// Flush and flatten the merged trace (convenience; prefer take_batches).
  [[nodiscard]] std::vector<Span> take_trace();

  /// Distribute recycled batch buffers round-robin across shard freelists.
  void recycle(SpanBatches batches);

  /// A drain subscriber that is also told which shard drained the batches
  /// — the shape shard-aware consumers (online analyzers tracking hot
  /// shards) subscribe with.
  using ShardDrainSubscriber = std::function<void(std::size_t shard, const SpanBatches&)>;

  /// Attach one drain subscriber on every shard — the per-shard exporter
  /// shape: in kAsync mode each shard's collector thread drains its own
  /// producers and pushes into the (thread-safe) subscriber, N writers
  /// funneling into one sink. The subscriber must tolerate concurrent
  /// calls (per-shard drains are serialized, cross-shard drains are not);
  /// StreamingExporter and analysis::OnlineAnalyzer are. Fan-out and
  /// consumer exclusivity follow TraceServer::add_drain_subscriber:
  /// observers unlimited, at most one consumer fleet-wide (a second
  /// kConsume attach throws std::logic_error and leaves no shard
  /// partially subscribed). kConsume keeps every shard's memory bounded
  /// for arbitrarily long traces.
  SubscriberId add_drain_subscriber(DrainSubscriber subscriber,
                                    DrainHandoff handoff = DrainHandoff::kObserve);

  /// Shard-aware overload: the subscriber additionally receives the index
  /// of the shard whose drain pass is delivering.
  SubscriberId add_drain_subscriber(ShardDrainSubscriber subscriber,
                                    DrainHandoff handoff = DrainHandoff::kObserve);

  /// Detach one subscriber from every shard. Unknown ids are a no-op;
  /// synchronizes with in-flight drains on all shards.
  void remove_drain_subscriber(SubscriberId id);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] ShardPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] PublishMode mode() const noexcept { return mode_; }

  /// Direct shard access (tests, per-shard telemetry).
  [[nodiscard]] TraceServer& shard(std::size_t i) noexcept { return *shards_[i]; }

  /// Cumulative spans shard `i` has drained over its lifetime (flushes
  /// that shard first). Unlike span_count() — spans currently *held* —
  /// this is monotonic load telemetry: it keeps advancing while a
  /// kConsume subscriber keeps the shards empty, which is what a serving
  /// layer compares across shards to spot a hot one.
  [[nodiscard]] std::uint64_t span_count(std::size_t shard);

  /// All shards' cumulative drained-span loads, indexed by shard
  /// (flushes every shard first). shard_loads()[i] == span_count(i).
  [[nodiscard]] std::vector<std::uint64_t> shard_loads();

  /// Fleet-wide producer-slot health: sums of the per-shard counters.
  /// Sharding multiplies slot count (a producer thread owns one slot per
  /// shard it touched), which is exactly why a long-lived sharded fleet
  /// needs thread-exit reclamation (see TraceServer).
  [[nodiscard]] std::size_t live_slot_count();
  [[nodiscard]] std::uint64_t retired_slot_count();
  [[nodiscard]] std::size_t pooled_slot_count();
  [[nodiscard]] std::uint64_t approx_slot_bytes();

  /// Toggle thread-exit slot reclamation on every shard (on by default).
  void set_slot_reclamation(bool enabled) noexcept;

  /// Bind every shard's health series to `registry`, each under `labels`
  /// plus a {"shard","<i>"} label — so fleet totals are a PromQL sum over
  /// the shard dimension and a hot shard is visible as its own series.
  /// Same zero-hot-path-cost contract as TraceServer::bind_metrics.
  void bind_metrics(metrics::Registry& registry, const metrics::Labels& labels = {});

  /// The shard index the given span would be routed to under the current
  /// policy, from the current thread. Exposed so routing is testable.
  [[nodiscard]] std::size_t shard_for(const Span& span) const noexcept;

  /// The shard index kByThread routes the calling thread to.
  [[nodiscard]] std::size_t shard_for_current_thread() const noexcept;

 private:
  /// Attach `make_fn(shard_index)` on every shard, unwinding the shards
  /// already subscribed if a later attach throws (consumer exclusivity).
  SubscriberId add_subscriber_impl(
      const std::function<DrainSubscriber(std::size_t)>& make_fn, DrainHandoff handoff);

  PublishMode mode_;
  ShardPolicy policy_;
  Ns time_window_;
  std::vector<std::unique_ptr<TraceServer>> shards_;

  /// Fleet-level subscriber registry: one fleet id maps to the per-shard
  /// ids the attach produced (guarded by sub_mu_).
  struct FleetSubscriber {
    SubscriberId id = 0;
    std::vector<SubscriberId> shard_ids;  ///< indexed by shard
  };
  std::mutex sub_mu_;
  std::vector<FleetSubscriber> subscribers_;
  SubscriberId next_subscriber_id_ = 1;

  alignas(64) std::atomic<std::uint64_t> next_corr_{1};
};

}  // namespace xsp::trace
