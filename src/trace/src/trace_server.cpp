#include "xsp/trace/trace_server.hpp"

#include <utility>

namespace xsp::trace {

TraceServer::TraceServer(PublishMode mode) : mode_(mode) {
  if (mode_ == PublishMode::kAsync) {
    collector_ = std::thread([this] { collector_loop(); });
  }
}

TraceServer::~TraceServer() {
  if (mode_ == PublishMode::kAsync) {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (collector_.joinable()) collector_.join();
  }
}

void TraceServer::publish(Span span) {
  std::lock_guard lk(mu_);
  if (mode_ == PublishMode::kSync) {
    trace_.push_back(std::move(span));
    return;
  }
  queue_.push_back(std::move(span));
  cv_.notify_one();
}

void TraceServer::collector_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    while (!queue_.empty()) {
      trace_.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    cv_.notify_all();  // wake any flush() waiters
    if (stop_) return;
  }
}

void TraceServer::flush() {
  if (mode_ == PublishMode::kSync) return;
  std::unique_lock lk(mu_);
  cv_.wait(lk, [this] { return queue_.empty(); });
}

std::size_t TraceServer::span_count() {
  flush();
  std::lock_guard lk(mu_);
  return trace_.size();
}

std::vector<Span> TraceServer::take_trace() {
  flush();
  std::lock_guard lk(mu_);
  return std::exchange(trace_, {});
}

}  // namespace xsp::trace
