#include "xsp/trace/trace_server.hpp"

#include "xsp/trace/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace xsp::trace {

namespace {

std::uint64_t next_server_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

/// Process-wide map of live servers keyed by their process-unique uid —
/// the weak link between a thread-exit hook and the servers the thread
/// published to. Keying on the uid (never reused) rather than the server
/// address (readily reused by the allocator) is what makes the hook safe
/// to run after any subset of its servers has died: a dead server simply
/// is not in the map, and a new server at the old address has a new uid.
///
/// The singleton is leaked on purpose: the main thread's TLS destructors
/// can run while static destruction is already under way (and a
/// static-storage TraceServer can die before or after them, in either
/// order), so the registry must stay valid to the very end of the
/// process.
class SlotRegistry {
 public:
  static SlotRegistry& instance() {
    static SlotRegistry* leaked = new SlotRegistry;
    return *leaked;
  }

  void add(std::uint64_t uid, TraceServer* server) {
    std::lock_guard lk(mu_);
    servers_.emplace(uid, server);
  }

  void remove(std::uint64_t uid) {
    std::lock_guard lk(mu_);
    servers_.erase(uid);
  }

  /// Drop uids whose server is gone. Bounds a long-lived thread's
  /// touched-uid list to the servers still alive: without pruning, a
  /// thread outliving many short-lived servers would accrete dead uids
  /// forever and walk them all at exit while holding mu_.
  void prune_dead(std::vector<std::uint64_t>& uids) {
    std::lock_guard lk(mu_);
    uids.erase(std::remove_if(uids.begin(), uids.end(),
                              [this](std::uint64_t uid) {
                                return servers_.find(uid) == servers_.end();
                              }),
               uids.end());
  }

  /// Thread-exit hook body: mark `thread_key`'s slot reclaimable on every
  /// still-live server among `uids`. Holding mu_ pins each server —
  /// ~TraceServer blocks in remove() until the marking is done, so the
  /// mapped pointers cannot dangle mid-call.
  void thread_exited(std::uint64_t thread_key, const std::vector<std::uint64_t>& uids) {
    std::lock_guard lk(mu_);
    for (const std::uint64_t uid : uids) {
      if (auto it = servers_.find(uid); it != servers_.end()) {
        it->second->note_thread_exit(thread_key);
      }
    }
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::uint64_t, TraceServer*> servers_;
};

}  // namespace detail

namespace {

struct IdBlock {
  const void* server;
  std::uint64_t uid;
  SpanId next;
  SpanId end;
};

thread_local IdBlock tls_id_block{nullptr, 0, 0, 0};

}  // namespace

SpanId TraceServer::next_span_id() noexcept {
  IdBlock& block = tls_id_block;
  if (block.server == this && block.uid == uid_ && block.next != block.end) {
    return block.next++;
  }
  // Global block number under the stripe: shard i of N allocates blocks
  // i, i+N, i+2N, ... — disjoint across shards by construction. Block 0
  // starts at id 1, so kNoSpan is never handed out.
  const std::uint64_t k = next_block_.fetch_add(1, std::memory_order_relaxed);
  const SpanId start = (stripe_.index + k * stripe_.stride) * kIdBlockSize + 1;
  block = {this, uid_, start + 1, start + kIdBlockSize};
  return start;
}

TraceServer::TraceServer(PublishMode mode, IdStripe stripe)
    : mode_(mode), stripe_(stripe), uid_(next_server_uid()) {
  if (stripe_.stride == 0) stripe_.stride = 1;
  if (mode_ == PublishMode::kAsync) {
    collector_ = std::thread([this] { collector_loop(); });
  }
  // Discoverable by thread-exit hooks only once fully constructed.
  detail::SlotRegistry::instance().add(uid_, this);
}

TraceServer::~TraceServer() {
  // Unbind self-metrics before anything starts tearing down: releasing the
  // callback handles serializes with any in-flight scrape on the registry
  // lock, so no sample callback can observe a half-destroyed server.
  {
    std::lock_guard lk(metrics_mu_);
    drain_hist_.store(nullptr, std::memory_order_release);
    metrics_cbs_.clear();
    // drain_hist_refs_ stays populated until member destruction (after
    // the collector join below): an in-flight drain pass may still hold
    // the raw pointer it loaded before the store above.
  }
  // Next, disappear from the exit-hook registry: remove() synchronizes
  // with any in-flight thread_exited() walk (which holds the registry
  // lock while calling into servers), so after this line no exit hook can
  // reach a server that is tearing down.
  detail::SlotRegistry::instance().remove(uid_);
  // The no-drop guarantee is that flush()/take_trace() return every span
  // published before them, at any point up to destruction — queued spans
  // are never lost while the server is alive. Destruction itself only
  // joins the collector; whatever the owner chose not to take is freed
  // with the slots.
  if (collector_.joinable()) {
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard lk(wake_mu_);
    }
    wake_cv_.notify_all();
    collector_.join();
  }
}

namespace {

struct CacheEntry {
  const void* server;
  std::uint64_t uid;
  void* slot;
};

// Single-entry fast path: the overwhelmingly common case is one thread
// publishing to one server in a tight loop. POD thread_local, so no TLS
// guard check on access.
thread_local CacheEntry tls_last_slot{nullptr, 0, nullptr};

// True once this thread's exit hook (~ThreadRecord) has run. POD, so it
// stays readable from TLS destructors sequenced after the record's own —
// the guard that keeps a late publish from touching the destroyed record.
thread_local bool tls_thread_exited = false;

/// Process-unique key for the calling thread (thread ids can be reused by
/// the OS; this never is).
std::uint64_t this_thread_key() {
  static std::atomic<std::uint64_t> counter{1};
  thread_local std::uint64_t key = counter.fetch_add(1, std::memory_order_relaxed);
  return key;
}

/// Per-thread slot-cache + reclamation record. Constructed on the
/// thread's first local_slot() registration (lazy TLS init), which is
/// also what arms the exit hook: the destructor tells every still-live
/// server the thread touched to reclaim its slot.
struct ThreadRecord {
  std::vector<CacheEntry> cache;
  /// Uids of the servers this thread registered a slot with. Uids, not
  /// pointers: the hook must be weak against servers dying first.
  std::vector<std::uint64_t> touched;

  ~ThreadRecord() {
    // Invalidate the caches BEFORE marking: the instant a slot is marked
    // reclaimable, a concurrent drain may retire (and even free) it, so
    // no cached pointer to it may survive this point. A publish from a
    // TLS destructor sequenced after this one takes the degraded
    // registry-lookup path via tls_thread_exited.
    tls_last_slot = {nullptr, 0, nullptr};
    cache.clear();
    tls_thread_exited = true;
    detail::SlotRegistry::instance().thread_exited(this_thread_key(), touched);
  }
};

thread_local ThreadRecord tls_record;

}  // namespace

TraceServer::ProducerSlot& TraceServer::local_slot() {
  if (tls_last_slot.server == this && tls_last_slot.uid == uid_) {
    return *static_cast<ProducerSlot*>(tls_last_slot.slot);
  }
  const std::uint64_t me = this_thread_key();
  if (tls_thread_exited) {
    // Publishing after this thread's exit hook already ran (a TLS
    // destructor sequenced later than the record's). No future hook will
    // mark whatever we use now, so resurrect-or-register uncached: the
    // slot simply lives until the server dies — the pre-reclamation
    // lifetime. Nothing is lost, the slot is merely not reclaimed.
    return register_slot(me, /*resurrect=*/true);
  }
  ThreadRecord& rec = tls_record;  // first use arms the exit hook
  for (const auto& e : rec.cache) {
    if (e.server == this && e.uid == uid_) {
      tls_last_slot = e;
      return *static_cast<ProducerSlot*>(e.slot);
    }
  }
  // Cache miss: find this thread's existing slot (registered before a
  // cache eviction) or register a new one. The uid check above makes
  // stale entries (a dead server whose address was reused) miss, and the
  // cache is bounded so long-lived threads touching many short-lived
  // servers re-look-up instead of growing forever.
  if (rec.cache.size() >= 64) rec.cache.clear();
  ProducerSlot& slot = register_slot(me, /*resurrect=*/false);
  if (std::find(rec.touched.begin(), rec.touched.end(), uid_) == rec.touched.end()) {
    // Like the cache bound above, but for the exit hook's work list:
    // shed uids of dead servers so a long-lived thread touching many
    // short-lived servers carries (and at exit walks) only live ones.
    if (rec.touched.size() >= 64) detail::SlotRegistry::instance().prune_dead(rec.touched);
    rec.touched.push_back(uid_);
  }
  rec.cache.push_back({this, uid_, &slot});
  tls_last_slot = rec.cache.back();
  return slot;
}

TraceServer::ProducerSlot& TraceServer::register_slot(std::uint64_t thread_key, bool resurrect) {
  std::lock_guard lk(registry_mu_);
  for (const auto& existing : slots_) {
    if (existing->owner == thread_key) {
      if (resurrect) {
        // Un-mark under the slot spinlock: a drain pass either retired
        // the slot before we got here (not found, fall through below) or
        // will see reclaimable == false and leave it alone while the
        // caller publishes into it.
        existing->acquire();
        existing->reclaimable = false;
        existing->release();
      }
      return *existing;
    }
  }
  std::unique_ptr<ProducerSlot> owned;
  if (!free_slots_.empty()) {
    owned = std::move(free_slots_.back());
    free_slots_.pop_back();
  } else {
    owned = std::make_unique<ProducerSlot>();
  }
  owned->owner = thread_key;
  owned->reclaimable = false;
  // A parked slot retired with an empty active batch kept its capacity;
  // otherwise draw a recycled buffer (or allocate, on the cold path).
  if (owned->active.capacity() < kBatchCapacity) owned->active = take_free_batch_or_new();
  ProducerSlot* slot = owned.get();
  slots_.push_back(std::move(owned));
  return *slot;
}

void TraceServer::note_thread_exit(std::uint64_t thread_key) {
  if (!reclaim_enabled_.load(std::memory_order_relaxed)) return;
  bool marked = false;
  {
    std::lock_guard lk(registry_mu_);
    for (auto& slot : slots_) {
      if (slot->owner == thread_key) {
        slot->acquire();
        slot->reclaimable = true;
        slot->release();
        marked = true;
        break;
      }
    }
  }
  // Retirement happens only inside a drain sweep; nudge the collector so
  // a churn-heavy but otherwise idle server sheds the ~50KB promptly
  // instead of waiting out the periodic timeout. (kSync retires on the
  // next flush/take, exactly like batch draining.)
  if (marked && mode_ == PublishMode::kAsync) {
    pending_batches_.fetch_add(1, std::memory_order_release);
    wake_cv_.notify_one();
  }
}

SpanBatch TraceServer::take_free_batch_or_new() {
  SpanBatch batch;
  if (free_mu_.try_lock()) {
    if (!free_batches_.empty()) {
      batch = std::move(free_batches_.back());
      free_batches_.pop_back();
    }
    free_mu_.unlock();
  }
  if (batch.capacity() < kBatchCapacity) batch.reserve(kBatchCapacity);
  return batch;
}

void TraceServer::publish(Span span) {
  // Admission: one relaxed-ordered pointer load when no sampler is
  // attached — the rate-1.0 configuration must stay within noise of the
  // unsampled publish path (bench_abl_sampling pins this).
  const Sampler* sampler = sampler_ptr_.load(std::memory_order_acquire);
  if (sampler != nullptr && !sampler->admit(span)) {
    ProducerSlot& slot = local_slot();
    slot.acquire();
    ++slot.sampled_dropped;
    slot.release();
    return;
  }
  ProducerSlot& slot = local_slot();
  bool sealed = false;
  slot.acquire();
  if (sampler != nullptr) ++slot.sampled_kept;
  if (span.dropped_annotations != 0) slot.dropped += span.dropped_annotations;
  slot.active.push_back(std::move(span));
  if (slot.active.size() >= kBatchCapacity) {
    slot.sealed.push_back(std::move(slot.active));
    slot.active = take_free_batch_or_new();
    sealed = true;
  }
  slot.release();
  if (sealed && mode_ == PublishMode::kAsync) {
    // Wake the collector once several batches are ready (its periodic
    // timeout bounds staleness); per-batch wakeups would have the collector
    // competing with producers for CPU.
    if (pending_batches_.fetch_add(1, std::memory_order_release) + 1 >= 16) {
      wake_cv_.notify_one();
    }
  }
}

void TraceServer::drain(bool steal_active) {
  // One drain pass at a time: batches must never sit in a concurrent
  // pass's staging while another pass reports the slots empty.
  std::lock_guard drain_lk(drain_mu_);
  // Drain-latency self-metric: one steady_clock pair per pass (hundreds
  // of spans), and only when bound — unbound costs a relaxed load.
  struct DrainTimer {
    metrics::Histogram* hist;
    std::chrono::steady_clock::time_point t0;
    explicit DrainTimer(metrics::Histogram* h)
        : hist(h),
          t0(h ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{}) {}
    ~DrainTimer() {
      if (hist == nullptr) return;
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      hist->observe(static_cast<std::uint64_t>(ns));
    }
  } drain_timer(drain_hist_.load(std::memory_order_acquire));
  SpanBatches& taken = drain_staging_;
  std::uint64_t dropped = 0;
  std::uint64_t s_kept = 0;
  std::uint64_t s_dropped = 0;
  const bool reclaim = reclaim_enabled_.load(std::memory_order_relaxed);
  {
    std::lock_guard lk(registry_mu_);
    for (std::size_t i = 0; i < slots_.size();) {
      ProducerSlot& slot = *slots_[i];
      slot.acquire();
      // A reclaimable slot gets a final sweep — sealed AND partial
      // batches — then retires, so an exiting thread's spans are taken
      // exactly once and never stranded in a parked slot.
      const bool retire = reclaim && slot.reclaimable;
      for (auto& batch : slot.sealed) taken.push_back(std::move(batch));
      slot.sealed.clear();
      if ((steal_active || retire) && !slot.active.empty()) {
        taken.push_back(std::move(slot.active));
        // A retiring slot's replacement is never published into; leave it
        // empty rather than drawing down the batch freelist.
        slot.active = retire ? SpanBatch{} : take_free_batch_or_new();
      }
      dropped += slot.dropped;
      slot.dropped = 0;
      s_kept += slot.sampled_kept;
      slot.sampled_kept = 0;
      s_dropped += slot.sampled_dropped;
      slot.sampled_dropped = 0;
      slot.release();
      if (!retire) {
        ++i;
        continue;
      }
      // Unlink (order is irrelevant; swap-remove), scrub ownership, and
      // park for the next producer thread — or free, once the parking lot
      // is full. Safe outside the spinlock: the slot is unreachable the
      // moment it leaves slots_ (its owner thread is exiting and its
      // caches were invalidated before the reclaim mark was set).
      std::unique_ptr<ProducerSlot> retired = std::move(slots_[i]);
      slots_[i] = std::move(slots_.back());
      slots_.pop_back();
      retired->owner = 0;
      retired->reclaimable = false;
      ++retired_slots_;
      if (free_slots_.size() < kSlotFreelistCapacity) {
        free_slots_.push_back(std::move(retired));
      } else {
        // The slot dies, but its warmed batch buffer is still good: feed
        // the batch freelist instead of re-allocating the same ~47KB for
        // the next fresh registration. (No-op for a stolen-empty active.)
        recycle_one(std::move(retired->active));
      }
    }
  }
  // Sampler accounting is lifetime-monotonic (like drained_spans_) and
  // atomic, so it lands before the early-out below: a drain pass that
  // found nothing but sampled-out spans still records them.
  if (s_kept != 0) sampled_kept_.fetch_add(s_kept, std::memory_order_relaxed);
  if (s_dropped != 0)
    sampled_dropped_.fetch_add(s_dropped, std::memory_order_relaxed);
  if (taken.empty() && dropped == 0) return;
  if (!taken.empty()) {
    std::size_t drained = 0;
    for (const auto& batch : taken) drained += batch.size();
    drained_spans_.fetch_add(drained, std::memory_order_relaxed);
  }
  // Streaming hooks: every subscriber sees the drained batches here, after
  // the slot spinlocks are released (publishers are not blocked) and under
  // drain_mu_ (subscriber calls never overlap for one server). Observers
  // fan out in attach order, the consumer runs last; when a consumer is
  // attached the buffers feed the freelist straight back and never touch
  // trace_ — the bounded-memory path for unbounded traces.
  bool consumed = false;
  if (!taken.empty() && !subscribers_.empty()) {
    for (std::size_t i = 0; i < subscribers_.size();) {
      // add_drain_subscriber keeps the one consumer at the back, so plain
      // attach-order iteration already delivers observers first.
      try {
        subscribers_[i].fn(taken);
        if (subscribers_[i].handoff == DrainHandoff::kConsume) consumed = true;
        ++i;
      } catch (...) {
        // A throwing subscriber is detached — only it. If the consumer
        // threw, its spans fall through to in-server accumulation:
        // re-delivering the still-staged batches next pass would duplicate
        // them, and an exception escaping the collector thread would
        // terminate the process.
        subscribers_.erase(subscribers_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  if (consumed) {
    {
      std::lock_guard lk(trace_mu_);
      dropped_total_ += dropped;
    }
    for (auto& batch : taken) recycle_one(std::move(batch));
    taken.clear();
    return;
  }
  // Aggregation is batch-handle moves only; spans themselves stay put.
  std::lock_guard lk(trace_mu_);
  for (auto& batch : taken) trace_.push_back(std::move(batch));
  taken.clear();
  dropped_total_ += dropped;
}

SubscriberId TraceServer::add_drain_subscriber(DrainSubscriber subscriber,
                                               DrainHandoff handoff) {
  if (!subscriber) throw std::logic_error("TraceServer: null drain subscriber");
  // Synchronize with in-flight drains: the new subscriber sees every batch
  // drained after this call, none before it.
  std::lock_guard lk(drain_mu_);
  if (handoff == DrainHandoff::kConsume) {
    for (const auto& sub : subscribers_) {
      if (sub.handoff == DrainHandoff::kConsume) {
        // Two consumers would each believe they own the span stream (the
        // first one's buffers are recycled under the second one's feet).
        // The pre-fan-out API silently replaced the first — error loudly
        // instead.
        throw std::logic_error(
            "TraceServer: a kConsume drain subscriber is already attached "
            "(at most one consumer; use kObserve for additional taps)");
      }
    }
  }
  const SubscriberId id = next_subscriber_id_++;
  Subscriber entry{id, std::move(subscriber), handoff};
  if (handoff == DrainHandoff::kConsume || subscribers_.empty()) {
    subscribers_.push_back(std::move(entry));
  } else {
    // Keep the consumer (if any) at the back: delivery is a plain forward
    // walk, and observers must see a batch before its buffers are declared
    // consumable.
    const bool has_consumer = subscribers_.back().handoff == DrainHandoff::kConsume;
    subscribers_.insert(has_consumer ? subscribers_.end() - 1 : subscribers_.end(),
                        std::move(entry));
  }
  return id;
}

void TraceServer::remove_drain_subscriber(SubscriberId id) {
  // Synchronize with in-flight drains: after this returns, no drain pass
  // will call the removed subscriber (safe to destroy the exporter).
  std::lock_guard lk(drain_mu_);
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if (subscribers_[i].id == id) {
      subscribers_.erase(subscribers_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t TraceServer::drain_subscriber_count() {
  std::lock_guard lk(drain_mu_);
  return subscribers_.size();
}

std::size_t TraceServer::live_slot_count() {
  std::lock_guard lk(registry_mu_);
  return slots_.size();
}

std::uint64_t TraceServer::retired_slot_count() {
  std::lock_guard lk(registry_mu_);
  return retired_slots_;
}

std::size_t TraceServer::pooled_slot_count() {
  std::lock_guard lk(registry_mu_);
  return free_slots_.size();
}

std::uint64_t TraceServer::approx_slot_bytes() {
  const auto slot_bytes = [](ProducerSlot& slot) {
    std::uint64_t bytes = sizeof(ProducerSlot);
    // Capacities mutate under the slot spinlock (publish/seal); take it
    // so the estimate is coherent. Telemetry-rate call, not a hot path.
    slot.acquire();
    bytes += slot.active.capacity() * sizeof(Span);
    bytes += slot.sealed.capacity() * sizeof(SpanBatch);
    for (const auto& batch : slot.sealed) bytes += batch.capacity() * sizeof(Span);
    slot.release();
    return bytes;
  };
  std::lock_guard lk(registry_mu_);
  std::uint64_t total = 0;
  for (auto& slot : slots_) total += slot_bytes(*slot);
  for (auto& slot : free_slots_) total += slot_bytes(*slot);
  return total;
}

void TraceServer::bind_metrics(metrics::Registry& registry, metrics::Labels labels) {
  std::lock_guard lk(metrics_mu_);
  metrics_cbs_.clear();
  const auto cb = [&](const char* name, const char* help, metrics::Kind kind,
                      metrics::Sample sample) {
    metrics_cbs_.push_back(registry.callback(name, help, kind, labels, std::move(sample)));
  };
  // Counters the server already maintains: sampled without flushing, so
  // they advance at drain cadence and the publish path pays nothing.
  cb("xsp_trace_drained_spans_total",
     "Spans drained out of producer slots (admitted spans, at drain cadence)",
     metrics::Kind::kCounter, [this] {
       return static_cast<double>(drained_spans_.load(std::memory_order_relaxed));
     });
  cb("xsp_trace_sampled_kept_total", "Spans the admission sampler kept at publish",
     metrics::Kind::kCounter, [this] {
       return static_cast<double>(sampled_kept_.load(std::memory_order_relaxed));
     });
  cb("xsp_trace_sampled_dropped_total", "Spans the admission sampler shed at publish",
     metrics::Kind::kCounter, [this] {
       return static_cast<double>(sampled_dropped_.load(std::memory_order_relaxed));
     });
  cb("xsp_trace_dropped_annotations_total",
     "Per-span annotation drops (tag/metric capacity overflow), as of the last drain",
     metrics::Kind::kCounter, [this] {
       std::lock_guard tl(trace_mu_);
       return static_cast<double>(dropped_total_);
     });
  cb("xsp_trace_live_slots", "Producer slots currently registered",
     metrics::Kind::kGauge, [this] {
       std::lock_guard rl(registry_mu_);
       return static_cast<double>(slots_.size());
     });
  cb("xsp_trace_retired_slots_total", "Producer slots retired by thread-exit reclamation",
     metrics::Kind::kCounter, [this] {
       std::lock_guard rl(registry_mu_);
       return static_cast<double>(retired_slots_);
     });
  cb("xsp_trace_slot_bytes", "Approximate bytes resident in producer slots",
     metrics::Kind::kGauge,
     [this] { return static_cast<double>(approx_slot_bytes()); });
  // The one new measurement: drain-pass wall time (see drain()).
  drain_hist_refs_.push_back(registry.histogram(
      "xsp_trace_drain_duration_ns", "Wall time of one drain pass in nanoseconds",
      metrics::latency_buckets_ns(), labels));
  drain_hist_.store(drain_hist_refs_.back().get(), std::memory_order_release);
}

void TraceServer::collector_loop() {
  std::unique_lock lk(wake_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    wake_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_batches_.load(std::memory_order_acquire) > 0;
    });
    pending_batches_.store(0, std::memory_order_release);
    lk.unlock();
    drain(/*steal_active=*/false);
    lk.lock();
  }
}

void TraceServer::flush() {
  // The caller drains directly instead of waiting for the collector: this
  // both bounds flush latency and keeps kSync (no collector) correct.
  drain(/*steal_active=*/true);
}

std::size_t TraceServer::span_count() {
  flush();
  std::lock_guard lk(trace_mu_);
  std::size_t total = 0;
  for (const auto& batch : trace_) total += batch.size();
  return total;
}

std::uint64_t TraceServer::drained_span_count() {
  flush();
  return drained_spans_.load(std::memory_order_relaxed);
}

std::uint64_t TraceServer::dropped_annotation_count() {
  flush();
  std::lock_guard lk(trace_mu_);
  return dropped_total_;
}

void TraceServer::set_sampler(std::shared_ptr<const Sampler> sampler) {
  std::lock_guard lk(sampler_mu_);
  const Sampler* raw = sampler.get();
  // Re-installing the current policy (a session re-applying unchanged
  // options every run) must not grow the retention list.
  if (raw == sampler_ptr_.load(std::memory_order_relaxed)) return;
  // Retain every policy ever installed: a publisher that loaded the old
  // raw pointer just before this store must still be able to finish its
  // admit() call. Policies are small and set_sampler is a configuration
  // action, so the retention list stays tiny.
  if (sampler != nullptr) sampler_refs_.push_back(std::move(sampler));
  sampler_ptr_.store(raw, std::memory_order_release);
}

std::uint64_t TraceServer::sampled_kept_count() {
  flush();
  return sampled_kept_.load(std::memory_order_relaxed);
}

std::uint64_t TraceServer::sampled_dropped_count() {
  flush();
  return sampled_dropped_.load(std::memory_order_relaxed);
}

SpanBatches TraceServer::take_batches() {
  flush();
  // Replace the outgoing trace's outer vector with a recycled one so the
  // next aggregation cycle appends into pre-grown storage.
  SpanBatches fresh;
  {
    std::lock_guard lk(free_mu_);
    if (!free_outers_.empty()) {
      fresh = std::move(free_outers_.back());
      free_outers_.pop_back();
    }
  }
  std::lock_guard lk(trace_mu_);
  dropped_total_ = 0;
  return std::exchange(trace_, std::move(fresh));
}

void TraceServer::recycle_one(SpanBatch batch) {
  batch.clear();
  if (batch.capacity() == 0) return;
  std::lock_guard lk(free_mu_);
  if (free_batches_.size() < kFreelistCapacity) free_batches_.push_back(std::move(batch));
}

void TraceServer::recycle(SpanBatches batches) {
  std::lock_guard lk(free_mu_);
  for (auto& batch : batches) {
    if (free_batches_.size() >= kFreelistCapacity) break;
    batch.clear();
    // Undersized vectors (partial batches from a steal) are still useful:
    // take_free_batch_or_new() grows them to capacity on reuse.
    if (batch.capacity() != 0) free_batches_.push_back(std::move(batch));
  }
  batches.clear();
  if (free_outers_.size() < 4 && batches.capacity() != 0) {
    free_outers_.push_back(std::move(batches));
  }
}

std::vector<Span> TraceServer::take_trace() {
  SpanBatches batches = take_batches();
  std::vector<Span> flat = flatten_batches(batches);
  recycle(std::move(batches));
  return flat;
}

}  // namespace xsp::trace
