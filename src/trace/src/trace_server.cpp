#include "xsp/trace/trace_server.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace xsp::trace {

namespace {

std::uint64_t next_server_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

struct IdBlock {
  const void* server;
  std::uint64_t uid;
  SpanId next;
  SpanId end;
};

thread_local IdBlock tls_id_block{nullptr, 0, 0, 0};

}  // namespace

SpanId TraceServer::next_span_id() noexcept {
  IdBlock& block = tls_id_block;
  if (block.server == this && block.uid == uid_ && block.next != block.end) {
    return block.next++;
  }
  // Global block number under the stripe: shard i of N allocates blocks
  // i, i+N, i+2N, ... — disjoint across shards by construction. Block 0
  // starts at id 1, so kNoSpan is never handed out.
  const std::uint64_t k = next_block_.fetch_add(1, std::memory_order_relaxed);
  const SpanId start = (stripe_.index + k * stripe_.stride) * kIdBlockSize + 1;
  block = {this, uid_, start + 1, start + kIdBlockSize};
  return start;
}

TraceServer::TraceServer(PublishMode mode, IdStripe stripe)
    : mode_(mode), stripe_(stripe), uid_(next_server_uid()) {
  if (stripe_.stride == 0) stripe_.stride = 1;
  if (mode_ == PublishMode::kAsync) {
    collector_ = std::thread([this] { collector_loop(); });
  }
}

TraceServer::~TraceServer() {
  // The no-drop guarantee is that flush()/take_trace() return every span
  // published before them, at any point up to destruction — queued spans
  // are never lost while the server is alive. Destruction itself only
  // joins the collector; whatever the owner chose not to take is freed
  // with the slots.
  if (collector_.joinable()) {
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard lk(wake_mu_);
    }
    wake_cv_.notify_all();
    collector_.join();
  }
}

namespace {

struct CacheEntry {
  const void* server;
  std::uint64_t uid;
  void* slot;
};

// Single-entry fast path: the overwhelmingly common case is one thread
// publishing to one server in a tight loop. POD thread_local, so no TLS
// guard check on access.
thread_local CacheEntry tls_last_slot{nullptr, 0, nullptr};

/// Process-unique key for the calling thread (thread ids can be reused by
/// the OS; this never is).
std::uint64_t this_thread_key() {
  static std::atomic<std::uint64_t> counter{1};
  thread_local std::uint64_t key = counter.fetch_add(1, std::memory_order_relaxed);
  return key;
}

}  // namespace

TraceServer::ProducerSlot& TraceServer::local_slot() {
  if (tls_last_slot.server == this && tls_last_slot.uid == uid_) {
    return *static_cast<ProducerSlot*>(tls_last_slot.slot);
  }
  thread_local std::vector<CacheEntry> cache;
  for (const auto& e : cache) {
    if (e.server == this && e.uid == uid_) {
      tls_last_slot = e;
      return *static_cast<ProducerSlot*>(e.slot);
    }
  }
  // Cache miss: find this thread's existing slot (registered before a
  // cache eviction) or register a new one. The uid check above makes
  // stale entries (a dead server whose address was reused) miss, and the
  // cache is bounded so long-lived threads touching many short-lived
  // servers re-look-up instead of growing forever.
  if (cache.size() >= 64) cache.clear();
  const std::uint64_t me = this_thread_key();
  ProducerSlot* slot = nullptr;
  {
    std::lock_guard lk(registry_mu_);
    for (const auto& existing : slots_) {
      if (existing->owner == me) {
        slot = existing.get();
        break;
      }
    }
    if (slot == nullptr) {
      auto owned = std::make_unique<ProducerSlot>();
      owned->active.reserve(kBatchCapacity);
      owned->owner = me;
      slot = owned.get();
      slots_.push_back(std::move(owned));
    }
  }
  cache.push_back({this, uid_, slot});
  tls_last_slot = cache.back();
  return *slot;
}

SpanBatch TraceServer::take_free_batch_or_new() {
  SpanBatch batch;
  if (free_mu_.try_lock()) {
    if (!free_batches_.empty()) {
      batch = std::move(free_batches_.back());
      free_batches_.pop_back();
    }
    free_mu_.unlock();
  }
  if (batch.capacity() < kBatchCapacity) batch.reserve(kBatchCapacity);
  return batch;
}

void TraceServer::publish(Span span) {
  ProducerSlot& slot = local_slot();
  bool sealed = false;
  slot.acquire();
  if (span.dropped_annotations != 0) slot.dropped += span.dropped_annotations;
  slot.active.push_back(std::move(span));
  if (slot.active.size() >= kBatchCapacity) {
    slot.sealed.push_back(std::move(slot.active));
    slot.active = take_free_batch_or_new();
    sealed = true;
  }
  slot.release();
  if (sealed && mode_ == PublishMode::kAsync) {
    // Wake the collector once several batches are ready (its periodic
    // timeout bounds staleness); per-batch wakeups would have the collector
    // competing with producers for CPU.
    if (pending_batches_.fetch_add(1, std::memory_order_release) + 1 >= 16) {
      wake_cv_.notify_one();
    }
  }
}

void TraceServer::drain(bool steal_active) {
  // One drain pass at a time: batches must never sit in a concurrent
  // pass's staging while another pass reports the slots empty.
  std::lock_guard drain_lk(drain_mu_);
  SpanBatches& taken = drain_staging_;
  std::uint64_t dropped = 0;
  {
    std::lock_guard lk(registry_mu_);
    for (auto& slot : slots_) {
      slot->acquire();
      for (auto& batch : slot->sealed) taken.push_back(std::move(batch));
      slot->sealed.clear();
      if (steal_active && !slot->active.empty()) {
        taken.push_back(std::move(slot->active));
        slot->active = take_free_batch_or_new();
      }
      dropped += slot->dropped;
      slot->dropped = 0;
      slot->release();
    }
  }
  if (taken.empty() && dropped == 0) return;
  if (!taken.empty()) {
    std::size_t drained = 0;
    for (const auto& batch : taken) drained += batch.size();
    drained_spans_.fetch_add(drained, std::memory_order_relaxed);
  }
  // Streaming hooks: every subscriber sees the drained batches here, after
  // the slot spinlocks are released (publishers are not blocked) and under
  // drain_mu_ (subscriber calls never overlap for one server). Observers
  // fan out in attach order, the consumer runs last; when a consumer is
  // attached the buffers feed the freelist straight back and never touch
  // trace_ — the bounded-memory path for unbounded traces.
  bool consumed = false;
  if (!taken.empty() && !subscribers_.empty()) {
    for (std::size_t i = 0; i < subscribers_.size();) {
      // add_drain_subscriber keeps the one consumer at the back, so plain
      // attach-order iteration already delivers observers first.
      try {
        subscribers_[i].fn(taken);
        if (subscribers_[i].handoff == DrainHandoff::kConsume) consumed = true;
        ++i;
      } catch (...) {
        // A throwing subscriber is detached — only it. If the consumer
        // threw, its spans fall through to in-server accumulation:
        // re-delivering the still-staged batches next pass would duplicate
        // them, and an exception escaping the collector thread would
        // terminate the process.
        subscribers_.erase(subscribers_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  if (consumed) {
    {
      std::lock_guard lk(trace_mu_);
      dropped_total_ += dropped;
    }
    for (auto& batch : taken) recycle_one(std::move(batch));
    taken.clear();
    return;
  }
  // Aggregation is batch-handle moves only; spans themselves stay put.
  std::lock_guard lk(trace_mu_);
  for (auto& batch : taken) trace_.push_back(std::move(batch));
  taken.clear();
  dropped_total_ += dropped;
}

SubscriberId TraceServer::add_drain_subscriber(DrainSubscriber subscriber,
                                               DrainHandoff handoff) {
  if (!subscriber) throw std::logic_error("TraceServer: null drain subscriber");
  // Synchronize with in-flight drains: the new subscriber sees every batch
  // drained after this call, none before it.
  std::lock_guard lk(drain_mu_);
  if (handoff == DrainHandoff::kConsume) {
    for (const auto& sub : subscribers_) {
      if (sub.handoff == DrainHandoff::kConsume) {
        // Two consumers would each believe they own the span stream (the
        // first one's buffers are recycled under the second one's feet).
        // The pre-fan-out API silently replaced the first — error loudly
        // instead.
        throw std::logic_error(
            "TraceServer: a kConsume drain subscriber is already attached "
            "(at most one consumer; use kObserve for additional taps)");
      }
    }
  }
  const SubscriberId id = next_subscriber_id_++;
  Subscriber entry{id, std::move(subscriber), handoff};
  if (handoff == DrainHandoff::kConsume || subscribers_.empty()) {
    subscribers_.push_back(std::move(entry));
  } else {
    // Keep the consumer (if any) at the back: delivery is a plain forward
    // walk, and observers must see a batch before its buffers are declared
    // consumable.
    const bool has_consumer = subscribers_.back().handoff == DrainHandoff::kConsume;
    subscribers_.insert(has_consumer ? subscribers_.end() - 1 : subscribers_.end(),
                        std::move(entry));
  }
  return id;
}

void TraceServer::remove_drain_subscriber(SubscriberId id) {
  // Synchronize with in-flight drains: after this returns, no drain pass
  // will call the removed subscriber (safe to destroy the exporter).
  std::lock_guard lk(drain_mu_);
  for (std::size_t i = 0; i < subscribers_.size(); ++i) {
    if (subscribers_[i].id == id) {
      subscribers_.erase(subscribers_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t TraceServer::drain_subscriber_count() {
  std::lock_guard lk(drain_mu_);
  return subscribers_.size();
}

void TraceServer::collector_loop() {
  std::unique_lock lk(wake_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    wake_cv_.wait_for(lk, std::chrono::milliseconds(50), [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_batches_.load(std::memory_order_acquire) > 0;
    });
    pending_batches_.store(0, std::memory_order_release);
    lk.unlock();
    drain(/*steal_active=*/false);
    lk.lock();
  }
}

void TraceServer::flush() {
  // The caller drains directly instead of waiting for the collector: this
  // both bounds flush latency and keeps kSync (no collector) correct.
  drain(/*steal_active=*/true);
}

std::size_t TraceServer::span_count() {
  flush();
  std::lock_guard lk(trace_mu_);
  std::size_t total = 0;
  for (const auto& batch : trace_) total += batch.size();
  return total;
}

std::uint64_t TraceServer::drained_span_count() {
  flush();
  return drained_spans_.load(std::memory_order_relaxed);
}

std::uint64_t TraceServer::dropped_annotation_count() {
  flush();
  std::lock_guard lk(trace_mu_);
  return dropped_total_;
}

SpanBatches TraceServer::take_batches() {
  flush();
  // Replace the outgoing trace's outer vector with a recycled one so the
  // next aggregation cycle appends into pre-grown storage.
  SpanBatches fresh;
  {
    std::lock_guard lk(free_mu_);
    if (!free_outers_.empty()) {
      fresh = std::move(free_outers_.back());
      free_outers_.pop_back();
    }
  }
  std::lock_guard lk(trace_mu_);
  dropped_total_ = 0;
  return std::exchange(trace_, std::move(fresh));
}

void TraceServer::recycle_one(SpanBatch batch) {
  batch.clear();
  if (batch.capacity() == 0) return;
  std::lock_guard lk(free_mu_);
  if (free_batches_.size() < kFreelistCapacity) free_batches_.push_back(std::move(batch));
}

void TraceServer::recycle(SpanBatches batches) {
  std::lock_guard lk(free_mu_);
  for (auto& batch : batches) {
    if (free_batches_.size() >= kFreelistCapacity) break;
    batch.clear();
    // Undersized vectors (partial batches from a steal) are still useful:
    // take_free_batch_or_new() grows them to capacity on reuse.
    if (batch.capacity() != 0) free_batches_.push_back(std::move(batch));
  }
  batches.clear();
  if (free_outers_.size() < 4 && batches.capacity() != 0) {
    free_outers_.push_back(std::move(batches));
  }
}

std::vector<Span> TraceServer::take_trace() {
  SpanBatches batches = take_batches();
  std::vector<Span> flat = flatten_batches(batches);
  recycle(std::move(batches));
  return flat;
}

}  // namespace xsp::trace
