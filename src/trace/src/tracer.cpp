#include "xsp/trace/tracer.hpp"

namespace xsp::trace {

SpanId Tracer::start_span(std::string span_name, TimePoint t, SpanId parent, SpanKind kind) {
  if (!enabled_) return kNoSpan;
  Span s;
  s.id = server_->next_span_id();
  s.parent = parent;
  s.level = level_;
  s.kind = kind;
  s.name = std::move(span_name);
  s.tracer = name_;
  s.begin = t;
  const SpanId id = s.id;
  open_.emplace(id, std::move(s));
  return id;
}

void Tracer::add_tag(SpanId id, const std::string& key, std::string value) {
  if (auto it = open_.find(id); it != open_.end()) it->second.tags[key] = std::move(value);
}

void Tracer::add_metric(SpanId id, const std::string& key, double value) {
  if (auto it = open_.find(id); it != open_.end()) it->second.metrics[key] = value;
}

void Tracer::set_correlation(SpanId id, std::uint64_t correlation_id) {
  if (auto it = open_.find(id); it != open_.end()) it->second.correlation_id = correlation_id;
}

void Tracer::finish_span(SpanId id, TimePoint t) {
  auto it = open_.find(id);
  if (it == open_.end()) return;
  it->second.end = t;
  server_->publish(std::move(it->second));
  open_.erase(it);
}

SpanId Tracer::publish_completed(Span span) {
  if (!enabled_) return kNoSpan;
  span.id = server_->next_span_id();
  span.tracer = name_;
  span.level = level_;
  const SpanId id = span.id;
  server_->publish(std::move(span));
  return id;
}

}  // namespace xsp::trace
