#include "xsp/trace/tracer.hpp"

namespace xsp::trace {

Span* Tracer::find_open(SpanId id) noexcept {
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

SpanId Tracer::start_span(StrId span_name, TimePoint t, SpanId parent, SpanKind kind) {
  if (!enabled_) return kNoSpan;
  Span s;
  s.id = server_->next_span_id();
  s.parent = parent;
  s.level = level_;
  s.kind = kind;
  s.name = span_name;
  s.tracer = name_;
  s.begin = t;
  const SpanId id = s.id;
  open_.push_back(std::move(s));
  return id;
}

void Tracer::add_tag(SpanId id, StrId key, StrId value) {
  if (Span* s = find_open(id)) {
    if (!s->tags.set(key, value)) s->note_dropped();
  }
}

void Tracer::tag_inline(SpanId id, StrId key, std::string_view value) {
  if (Span* s = find_open(id)) {
    if (!s->inline_tags.set(key, value)) s->note_dropped();
  }
}

void Tracer::add_metric(SpanId id, StrId key, double value) {
  if (Span* s = find_open(id)) {
    if (!s->metrics.set(key, value)) s->note_dropped();
  }
}

void Tracer::set_correlation(SpanId id, std::uint64_t correlation_id) {
  if (Span* s = find_open(id)) s->correlation_id = correlation_id;
}

void Tracer::finish_span(SpanId id, TimePoint t) {
  Span* s = find_open(id);
  if (s == nullptr) return;
  s->end = t;
  server_->publish(std::move(*s));
  // Swap-erase: order of the open list is irrelevant.
  if (s != &open_.back()) *s = std::move(open_.back());
  open_.pop_back();
}

SpanId Tracer::publish_completed(Span span) {
  if (!enabled_) return kNoSpan;
  span.id = server_->next_span_id();
  span.tracer = name_;
  span.level = level_;
  const SpanId id = span.id;
  server_->publish(std::move(span));
  return id;
}

}  // namespace xsp::trace
