#include "xsp/trace/sampler.hpp"

#include <algorithm>

namespace xsp::trace {

namespace {

/// Maps a keep probability onto the 64-bit hash space. The product is
/// computed against 2^53 (exact in a double for any rate in [0, 1)) and
/// shifted up, so the conversion never hits the UB of casting an
/// out-of-range double. Rates >= 1 (and NaN, defensively) collapse to the
/// kAlways sentinel via the caller.
std::uint64_t to_threshold(double rate) {
  if (!(rate > 0.0)) return 0;
  return static_cast<std::uint64_t>(rate * 9007199254740992.0) << 11;
}

constexpr std::uint64_t kAlwaysLocal = ~0ull;

}  // namespace

Sampler::Sampler(SamplerOptions options)
    : options_(std::move(options)),
      tail_keep_ns_(options_.tail_keep_ns),
      seed_(options_.seed) {
  const double shed = std::clamp(options_.shed_keep_fraction, 0.0, 1.0);
  const auto make_policy = [shed](double rate) {
    Policy p;
    if (rate < 1.0) {
      p.threshold = to_threshold(rate);
      p.rate = std::max(rate, 0.0);
    }
    const double pressure_rate = std::min(rate, 1.0) * shed;
    p.pressure_threshold =
        pressure_rate < 1.0 ? to_threshold(pressure_rate) : kAlwaysLocal;
    return p;
  };

  const Policy base = make_policy(options_.rate);
  for (Policy& level : levels_) level = base;
  for (const auto& [level, rate] : options_.level_rates) {
    const int slot = (level >= 0 && level < kLevelSlots) ? level : kLevelSlots - 1;
    levels_[slot] = make_policy(rate);
  }
  tracers_.reserve(options_.tracer_rates.size());
  for (const auto& [tracer, rate] : options_.tracer_rates)
    tracers_.emplace_back(tracer.raw(), make_policy(rate));

  pass_through_ = base.threshold == kAlways;
  for (const Policy& level : levels_)
    if (level.threshold != kAlways) pass_through_ = false;
  for (const auto& [raw, policy] : tracers_)
    if (policy.threshold != kAlways) pass_through_ = false;
}

const Sampler::Policy& Sampler::policy_for(const Span& span) const noexcept {
  const std::uint32_t tracer_raw = span.tracer.raw();
  for (const auto& [raw, policy] : tracers_)
    if (raw == tracer_raw) return policy;
  const int slot =
      (span.level >= 0 && span.level < kLevelSlots) ? span.level : kLevelSlots - 1;
  return levels_[slot];
}

bool Sampler::admit(const Span& span) const noexcept {
  if (pass_through_) return true;
  const Policy& policy = policy_for(span);
  if (policy.threshold == kAlways) return true;
  if (tail_kept(span)) return true;
  return key_of(span) < policy.threshold;
}

double Sampler::effective_rate(const Span& span) const noexcept {
  if (pass_through_) return 1.0;
  const Policy& policy = policy_for(span);
  if (policy.threshold == kAlways) return 1.0;
  if (tail_kept(span)) return 1.0;
  return policy.rate;
}

bool Sampler::keep_under_pressure(const Span& span) const noexcept {
  if (tail_kept(span)) return true;
  const Policy& policy = policy_for(span);
  if (policy.pressure_threshold == kAlways) return true;
  return key_of(span) < policy.pressure_threshold;
}

std::size_t Sampler::shed_low_value(SpanBatch& batch) const {
  const std::size_t before = batch.size();
  batch.erase(std::remove_if(batch.begin(), batch.end(),
                             [this](const Span& span) {
                               return !keep_under_pressure(span);
                             }),
              batch.end());
  return before - batch.size();
}

}  // namespace xsp::trace
