#include "xsp/trace/wire.hpp"

#include <cassert>
#include <cstddef>
#include <istream>
#include <ostream>
#include <utility>

namespace xsp::trace {

// The legacy-decode contract: a pre-v4 span record is exactly the bytes
// of the current Span up to `inline_tags` plus trailing padding. Widening
// copies offsetof(Span, inline_tags) bytes per record — never the full
// legacy record, whose tail padding would overwrite the (zeroed)
// inline-tag map. These pins fail the build the moment a Span edit breaks
// either assumption.
static_assert(offsetof(Span, inline_tags) <= wire::kLegacySpanSize,
              "inline_tags must start within the legacy span record");
static_assert(offsetof(Span, inline_tags) > offsetof(Span, dropped_annotations),
              "inline_tags must ride after every legacy field");
static_assert(sizeof(Span) > wire::kLegacySpanSize,
              "the current span record must be a strict widening of the legacy one");

// --- FrameSink --------------------------------------------------------------

FrameSink::FrameSink(TryWriteFn fn, Fallible) : fn_(std::move(fn)) {
  // Warm start at the flush threshold. Sub-threshold writes splice whole
  // (a formatted JSON batch can exceed this headroom), so capacity may
  // grow past the reservation once — it then sticks (clear() keeps
  // capacity), which is what makes steady-state streaming allocation-free
  // while the effective bound stays threshold + one chunk.
  buf_.reserve(kFlushThreshold + 4096);
}

FrameSink::FrameSink(WriteFn fn)
    : FrameSink(TryWriteFn([f = std::move(fn)](std::string_view chunk) {
                  f(chunk);
                  return chunk.size();  // infallible: always accepts whole
                }),
                Fallible{}) {}

FrameSink::FrameSink(std::ostream& os)
    : FrameSink(WriteFn([out = &os](std::string_view chunk) {
        out->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      })) {}

bool FrameSink::drain_locked() {
  while (!buf_.empty()) {
    const std::size_t n = fn_(buf_);
    if (n == kWriteError) {
      // Hard failure: latch, discard — a half-written frame stream is
      // unrecoverable anyway; the owner reconnects with a fresh sink.
      failed_ = true;
      buf_.clear();
      return false;
    }
    if (n == 0) return false;  // saturated: keep the bytes, retry later
    if (n >= buf_.size()) {
      buf_.clear();
    } else {
      buf_.erase(0, n);  // retained suffix stays ahead of later writes
    }
  }
  return true;
}

bool FrameSink::write(std::string_view bytes) {
  if (bytes.empty()) return !failed();
  std::lock_guard lk(mu_);
  if (failed_) return false;
  bytes_ += bytes.size();
  if (bytes.size() >= kFlushThreshold) {
    // Threshold-sized payloads (whole-batch span memcpys) skip the buffer:
    // flush what came before so order holds, then hand the caller's bytes
    // to the sink directly — zero copies on the bulk path.
    if (drain_locked()) {
      while (!bytes.empty()) {
        const std::size_t n = fn_(bytes);
        if (n == kWriteError) {
          failed_ = true;
          buf_.clear();
          return false;
        }
        if (n == 0) break;  // saturated mid-payload: buffer the rest
        bytes.remove_prefix(n < bytes.size() ? n : bytes.size());
      }
    }
    if (failed_) return false;
    buf_.append(bytes);  // whatever the sink has not accepted yet
    return true;
  }
  buf_.append(bytes);
  if (buf_.size() >= kFlushThreshold) drain_locked();
  return !failed_;
}

bool FrameSink::flush() {
  std::lock_guard lk(mu_);
  if (failed_) return false;
  return drain_locked();
}

std::uint64_t FrameSink::bytes_written() const {
  std::lock_guard lk(mu_);
  return bytes_;
}

bool FrameSink::failed() const {
  std::lock_guard lk(mu_);
  return failed_;
}

std::size_t FrameSink::pending_bytes() const {
  std::lock_guard lk(mu_);
  return buf_.size();
}

// --- BinaryWriter -----------------------------------------------------------

namespace {

void append_raw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

wire::Header make_header() {
  wire::Header h{};
  h.magic[0] = wire::kMagic[0];
  h.magic[1] = wire::kMagic[1];
  h.magic[2] = wire::kMagic[2];
  h.magic[3] = wire::kMagic[3];
  h.version = wire::kVersion;
  h.endianness = wire::kEndianMark;
  h.span_size = static_cast<std::uint32_t>(sizeof(Span));
  h.header_size = static_cast<std::uint32_t>(sizeof(wire::Header));
  return h;
}

}  // namespace

BinaryWriter::BinaryWriter(FrameSink::WriteFn sink) : sink_(std::move(sink)) {
  const wire::Header header = make_header();
  sink_.write({reinterpret_cast<const char*>(&header), sizeof header});
}

BinaryWriter::BinaryWriter(FrameSink::TryWriteFn sink, FrameSink::Fallible)
    : sink_(std::move(sink), FrameSink::Fallible{}) {
  const wire::Header header = make_header();
  sink_.write({reinterpret_cast<const char*>(&header), sizeof header});
}

BinaryWriter::BinaryWriter(std::ostream& os)
    : BinaryWriter(FrameSink::WriteFn([out = &os](std::string_view chunk) {
        out->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      })) {}

BinaryWriter::~BinaryWriter() {
  try {
    finish();
  } catch (...) {
    // A sink failing during unwind must not terminate; explicit finish()
    // is the path that propagates sink errors.
  }
}

void BinaryWriter::append_string_delta_locked() {
  // Delta framing: entries accumulate in scratch_ and are cut into a
  // frame whenever the soft cap is passed, so one flush after a huge
  // intern burst (the first flush ships the whole table) still emits
  // bounded frames. The frame header is patched in at cut time.
  constexpr std::size_t kSoftDeltaPayload = 256 * 1024;
  scratch_.clear();
  auto cut_frame = [this] {
    if (scratch_.empty()) return;
    wire::FrameHeader fh{};
    fh.type = static_cast<std::uint8_t>(wire::FrameType::kStringDelta);
    fh.payload_size = static_cast<std::uint32_t>(scratch_.size());
    sink_.write({reinterpret_cast<const char*>(&fh), sizeof fh});
    sink_.write(scratch_);
    scratch_.clear();
  };
  common::StringTable::global().for_each_since(
      cursor_, [this, &cut_frame](std::uint32_t id, std::string_view s) {
        const auto len = static_cast<std::uint32_t>(s.size());
        append_raw(scratch_, &id, sizeof id);
        append_raw(scratch_, &len, sizeof len);
        scratch_.append(s.data(), s.size());
        if (scratch_.size() >= kSoftDeltaPayload) cut_frame();
      });
  cut_frame();
}

void BinaryWriter::append_span_frames_locked(const SpanBatch& batch) {
  const Span* data = batch.data();
  std::size_t remaining = batch.size();
  while (remaining > 0) {
    const std::size_t n = remaining < wire::kMaxSpansPerFrame ? remaining : wire::kMaxSpansPerFrame;
    const auto count = static_cast<std::uint32_t>(n);
    wire::FrameHeader fh{};
    fh.type = static_cast<std::uint8_t>(wire::FrameType::kSpanBatch);
    fh.payload_size = static_cast<std::uint32_t>(sizeof count + n * sizeof(Span));
    // Header + count via scratch, then the span payload straight from the
    // batch memory — sizeof(Span) * n bytes in one write, no reformat.
    scratch_.clear();
    append_raw(scratch_, &fh, sizeof fh);
    append_raw(scratch_, &count, sizeof count);
    sink_.write(scratch_);
    sink_.write({reinterpret_cast<const char*>(data), n * sizeof(Span)});
    data += n;
    remaining -= n;
    spans_written_ += n;
  }
}

void BinaryWriter::write_batch(const SpanBatch& batch) {
  if (batch.empty()) return;
  std::lock_guard lk(mu_);
  // Mirror StreamingExporter's write-after-finish contract: assert in
  // debug, drop in release — never corrupt an already-footered stream.
  assert(!finished_ && "BinaryWriter: write after finish()");
  if (finished_) return;
  append_string_delta_locked();
  append_span_frames_locked(batch);
}

void BinaryWriter::write_batches(const SpanBatches& batches) {
  if (batches.empty()) return;
  std::lock_guard lk(mu_);
  assert(!finished_ && "BinaryWriter: write after finish()");
  if (finished_) return;
  // One delta covers the whole batch list: every string these spans
  // reference was interned before they were published, which
  // happened-before this drain delivery.
  append_string_delta_locked();
  for (const SpanBatch& batch : batches) {
    if (!batch.empty()) append_span_frames_locked(batch);
  }
}

void BinaryWriter::set_meta(const TraceMeta& meta) {
  std::lock_guard lk(mu_);
  meta_ = meta;
}

void BinaryWriter::write_heartbeat(const wire::Heartbeat& hb) {
  std::lock_guard lk(mu_);
  if (finished_) return;
  wire::FrameHeader fh{};
  fh.type = static_cast<std::uint8_t>(wire::FrameType::kHeartbeat);
  fh.payload_size = static_cast<std::uint32_t>(sizeof hb);
  scratch_.clear();
  append_raw(scratch_, &fh, sizeof fh);
  append_raw(scratch_, &hb, sizeof hb);
  sink_.write(scratch_);
  // A heartbeat only signals liveness if it actually leaves the buffer.
  sink_.flush();
}

void BinaryWriter::finish() {
  std::lock_guard lk(mu_);
  if (finished_) return;
  wire::Footer footer{};
  footer.span_count = spans_written_;
  footer.export_bytes = sink_.bytes_written();
  footer.dropped_annotations = meta_.dropped_annotations;
  footer.shard_count = meta_.shard_count;
  footer.interned_strings = meta_.interned_strings;
  footer.interned_bytes = meta_.interned_bytes;
  footer.live_slots = meta_.live_slots;
  footer.retired_slots = meta_.retired_slots;
  footer.slot_bytes = meta_.slot_bytes;
  footer.remote_dropped_spans = meta_.remote_dropped_spans;
  footer.remote_reconnects = meta_.remote_reconnects;
  footer.sampled_kept = meta_.sampled_kept;
  footer.sampled_dropped = meta_.sampled_dropped;
  footer.strtab_budget_bytes = meta_.strtab_budget_bytes;
  footer.rejected_interns = meta_.rejected_interns;
  wire::FrameHeader fh{};
  fh.type = static_cast<std::uint8_t>(wire::FrameType::kFooter);
  fh.payload_size = static_cast<std::uint32_t>(sizeof footer);
  scratch_.clear();
  append_raw(scratch_, &fh, sizeof fh);
  append_raw(scratch_, &footer, sizeof footer);
  sink_.write(scratch_);
  finished_ = true;
  sink_.flush();
}

std::uint64_t BinaryWriter::spans_written() const {
  std::lock_guard lk(mu_);
  return spans_written_;
}

std::uint64_t BinaryWriter::bytes_written() const { return sink_.bytes_written(); }

bool BinaryWriter::flush() { return sink_.flush(); }

bool BinaryWriter::sink_failed() const { return sink_.failed(); }

std::size_t BinaryWriter::sink_pending_bytes() const {
  return sink_.pending_bytes();
}

// --- WireDecoder ------------------------------------------------------------

namespace wire {

std::uint32_t checked_span_count(std::size_t payload_size, std::uint32_t count,
                                 std::size_t span_size) {
  if (count > kMaxSpansPerFrame) {
    throw WireError("xsp wire: span-batch count " + std::to_string(count) +
                    " exceeds the per-frame bound");
  }
  if (payload_size != sizeof count + static_cast<std::size_t>(count) * span_size) {
    throw WireError("xsp wire: span-batch payload length does not match its span count");
  }
  return count;
}

void materialize_spans(std::string_view raw, std::uint32_t count, std::size_t span_size,
                       SpanBatch& out) {
  if (raw.size() != static_cast<std::size_t>(count) * span_size) {
    throw WireError("xsp wire: span payload length does not match its span count");
  }
  if (span_size == sizeof(Span)) {
    out.resize(count);
    if (count > 0) std::memcpy(out.data(), raw.data(), raw.size());
    return;
  }
  // Legacy (v1–v3) records: widen each one — copy the legacy field prefix
  // and leave the appended inline-tag map in its value-initialized empty
  // state. assign() (not resize()) so recycled output buffers cannot leak
  // a previous batch's inline tags into the widened spans.
  constexpr std::size_t kLegacyPrefix = offsetof(Span, inline_tags);
  out.assign(count, Span{});
  for (std::uint32_t i = 0; i < count; ++i) {
    std::memcpy(&out[i], raw.data() + static_cast<std::size_t>(i) * span_size, kLegacyPrefix);
  }
}

Heartbeat checked_heartbeat(std::string_view payload, std::uint16_t version) {
  if (version < 3) {
    throw WireError("xsp wire: heartbeat frame in a v" + std::to_string(version) +
                    " stream (heartbeats require v3)");
  }
  if (payload.size() != sizeof(Heartbeat)) {
    throw WireError("xsp wire: heartbeat payload length " + std::to_string(payload.size()) +
                    " (expected " + std::to_string(sizeof(Heartbeat)) + ")");
  }
  Heartbeat hb{};
  std::memcpy(&hb, payload.data(), sizeof hb);
  return hb;
}

}  // namespace wire

WireDecoder::WireDecoder() {
  remap_.emplace(0u, 0u);  // the reserved empty string maps to itself
}

std::uint16_t WireDecoder::validate_header(const wire::Header& header) {
  if (std::memcmp(header.magic, wire::kMagic, sizeof wire::kMagic) != 0) {
    throw WireError("xsp wire: bad magic (not an XSP binary trace)");
  }
  if (header.endianness != wire::kEndianMark) {
    throw WireError("xsp wire: endianness mismatch between producer and consumer");
  }
  if (header.version < wire::kMinVersion || header.version > wire::kVersion) {
    throw WireError("xsp wire: unsupported format version " + std::to_string(header.version) +
                    " (this build reads v" + std::to_string(wire::kMinVersion) + "..v" +
                    std::to_string(wire::kVersion) + ")");
  }
  // v4 streams must carry the current span record exactly; a v1–v3
  // producer may instead declare the frozen legacy record size, which
  // the batch decoder widens (drivers record it via set_span_size).
  // Anything else is a build whose Span layout this one cannot read.
  const bool span_size_ok =
      header.span_size == sizeof(Span) ||
      (header.version < 4 && header.span_size == wire::kLegacySpanSize);
  if (!span_size_ok) {
    throw WireError("xsp wire: span struct size mismatch (stream " +
                    std::to_string(header.span_size) + ", this build " +
                    std::to_string(sizeof(Span)) + ")");
  }
  if (header.header_size != sizeof(wire::Header)) {
    throw WireError("xsp wire: bad header size " + std::to_string(header.header_size));
  }
  return header.version;
}

common::StrId WireDecoder::map_id(std::uint32_t producer_id) const {
  const auto it = remap_.find(producer_id);
  if (it == remap_.end()) {
    throw WireError("xsp wire: span references string id " + std::to_string(producer_id) +
                    " that no delta delivered");
  }
  return common::StrId::from_raw(it->second);
}

void WireDecoder::decode_string_delta(std::string_view payload) {
  const std::size_t payload_size = payload.size();
  std::size_t off = 0;
  while (off < payload_size) {
    if (payload_size - off < 2 * sizeof(std::uint32_t)) {
      throw WireError("xsp wire: truncated string-delta entry header");
    }
    std::uint32_t id = 0;
    std::uint32_t len = 0;
    std::memcpy(&id, payload.data() + off, sizeof id);
    std::memcpy(&len, payload.data() + off + sizeof id, sizeof len);
    off += 2 * sizeof(std::uint32_t);
    if (len > payload_size - off) {
      throw WireError("xsp wire: string-delta entry length " + std::to_string(len) +
                      " exceeds remaining payload");
    }
    if (id == 0) throw WireError("xsp wire: string delta redefines reserved id 0");
    const std::string_view s(payload.data() + off, len);
    off += len;
    // Re-intern into this process's table. A repeated id is tolerated
    // (idempotent) as long as the bytes agree — a writer never emits one,
    // but a concatenated stream might replay a prefix.
    const std::uint32_t local = common::StringTable::global().intern(s);
    const auto [it, inserted] = remap_.emplace(id, local);
    if (!inserted && it->second != local) {
      throw WireError("xsp wire: string id " + std::to_string(id) +
                      " redefined with different contents");
    }
  }
}

void WireDecoder::decode_span_batch(std::string_view payload, SpanBatch& out) {
  std::uint32_t count = 0;
  if (payload.size() < sizeof count) {
    throw WireError("xsp wire: span-batch frame too small for its span count");
  }
  std::memcpy(&count, payload.data(), sizeof count);
  wire::checked_span_count(payload.size(), count, span_size_);
  wire::materialize_spans(payload.substr(sizeof count), count, span_size_, out);
  remap_batch(out);
}

void WireDecoder::remap_batch(SpanBatch& batch) {
  for (Span& span : batch) remap_span(span);
  spans_decoded_ += batch.size();
}

void WireDecoder::remap_span(Span& span) const {
  // A memcpy'd FlatMap's inline count is untrusted until checked —
  // iteration beyond capacity would read past the inline arrays. The
  // inline-tag map additionally bounds each entry's value size.
  if (!span.tags.valid() || !span.metrics.valid() || !span.inline_tags.valid()) {
    throw WireError("xsp wire: span annotation count exceeds capacity");
  }
  if (static_cast<std::uint8_t>(span.kind) > static_cast<std::uint8_t>(SpanKind::kExecution)) {
    throw WireError("xsp wire: bad span kind " +
                    std::to_string(static_cast<unsigned>(span.kind)));
  }
  const auto remap = [this](common::StrId id) { return map_id(id.raw()); };
  span.name = remap(span.name);
  span.tracer = remap(span.tracer);
  span.tags.remap_keys(remap);
  span.tags.remap_values(remap);
  span.metrics.remap_keys(remap);
  // Inline tags: keys are producer StrIds and remap like any other; the
  // value bytes ride in the span itself and pass through untouched —
  // high-cardinality values never touch this process's StringTable.
  span.inline_tags.remap_keys(remap);
}

TraceMeta WireDecoder::meta() const noexcept {
  TraceMeta m;
  m.dropped_annotations = footer_.dropped_annotations;
  m.shard_count = static_cast<std::size_t>(footer_.shard_count);
  m.interned_strings = footer_.interned_strings;
  m.interned_bytes = footer_.interned_bytes;
  m.live_slots = footer_.live_slots;
  m.retired_slots = footer_.retired_slots;
  m.slot_bytes = footer_.slot_bytes;
  m.remote_dropped_spans = footer_.remote_dropped_spans;
  m.remote_reconnects = footer_.remote_reconnects;
  m.sampled_kept = footer_.sampled_kept;
  m.sampled_dropped = footer_.sampled_dropped;
  m.strtab_budget_bytes = footer_.strtab_budget_bytes;
  m.rejected_interns = footer_.rejected_interns;
  return m;
}

// --- BinaryReader -----------------------------------------------------------

BinaryReader::BinaryReader(std::istream& in) : in_(in) {
  wire::Header header{};
  read_exact(&header, sizeof header, "stream header");
  version_ = WireDecoder::validate_header(header);
  span_size_ = header.span_size;
  decoder_.set_span_size(span_size_);
}

void BinaryReader::read_exact(void* dst, std::size_t n, const char* what) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in_.gcount()) != n) {
    throw WireError(std::string("xsp wire: truncated ") + what + " (wanted " +
                    std::to_string(n) + " bytes, got " + std::to_string(in_.gcount()) + ")");
  }
}

bool BinaryReader::next_batch(SpanBatch& out) {
  out.clear();
  while (!done_) {
    wire::FrameHeader fh{};
    in_.read(reinterpret_cast<char*>(&fh), sizeof fh);
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got == 0) {
      // Clean EOF at a frame boundary: a producer that died mid-export.
      // Everything decoded so far is valid; saw_footer() reports the gap.
      done_ = true;
      return false;
    }
    if (got != sizeof fh) throw WireError("xsp wire: truncated frame header");
    const auto payload_size = static_cast<std::size_t>(fh.payload_size);
    if (payload_size > wire::kMaxFramePayload) {
      throw WireError("xsp wire: frame payload length " + std::to_string(payload_size) +
                      " exceeds the " + std::to_string(wire::kMaxFramePayload) + "-byte bound");
    }
    switch (static_cast<wire::FrameType>(fh.type)) {
      case wire::FrameType::kStringDelta: {
        payload_.resize(payload_size);
        read_exact(payload_.data(), payload_size, "string-delta payload");
        decoder_.decode_string_delta(payload_);
        break;
      }
      case wire::FrameType::kSpanBatch: {
        std::uint32_t count = 0;
        if (payload_size < sizeof count) {
          throw WireError("xsp wire: span-batch frame too small for its span count");
        }
        read_exact(&count, sizeof count, "span-batch count");
        wire::checked_span_count(payload_size, count, span_size_);
        if (span_size_ == sizeof(Span)) {
          // Decode straight into the caller's buffer: one read into span
          // memory, then in-place StrId rewrites — no intermediate copy.
          out.resize(count);
          read_exact(out.data(), count * sizeof(Span), "span-batch payload");
        } else {
          // Legacy (v1–v3) records are narrower than Span: read them
          // into scratch and widen each one (wire::materialize_spans).
          payload_.resize(static_cast<std::size_t>(count) * span_size_);
          read_exact(payload_.data(), payload_.size(), "span-batch payload");
          wire::materialize_spans(payload_, count, span_size_, out);
        }
        decoder_.remap_batch(out);
        if (count > 0) return true;
        break;  // an empty batch frame is legal; keep scanning
      }
      case wire::FrameType::kHeartbeat: {
        payload_.resize(payload_size);
        read_exact(payload_.data(), payload_size, "heartbeat payload");
        decoder_.set_heartbeat(wire::checked_heartbeat(payload_, version_));
        break;  // telemetry, not data; keep scanning for spans
      }
      case wire::FrameType::kFooter: {
        // The footer size follows the stream's declared version: a v1
        // stream carries the 11-field prefix, v2/v3 the 13-field one,
        // and a v4 stream the full struct (later-version fields decode
        // as zero on older streams). Anything else — truncated or
        // oversized — is corruption, not data.
        const std::size_t expect = wire::footer_size(version_);
        if (payload_size != expect) {
          throw WireError("xsp wire: footer payload length mismatch (v" +
                          std::to_string(version_) + " expects " +
                          std::to_string(expect) + " bytes, got " +
                          std::to_string(payload_size) + ")");
        }
        wire::Footer footer{};
        read_exact(&footer, expect, "footer payload");
        decoder_.set_footer(footer);
        done_ = true;
        // The footer terminates the stream; trailing bytes are corruption
        // (e.g. two concatenated exports), not data.
        if (in_.peek() != std::char_traits<char>::eof()) {
          throw WireError("xsp wire: data after footer frame");
        }
        return false;
      }
      default:
        throw WireError("xsp wire: unknown frame type " + std::to_string(fh.type));
    }
  }
  return false;
}

SpanBatches BinaryReader::read_all() {
  SpanBatches batches;
  SpanBatch batch;
  while (next_batch(batch)) {
    batches.push_back(std::move(batch));
    batch = SpanBatch();
  }
  return batches;
}

}  // namespace xsp::trace
