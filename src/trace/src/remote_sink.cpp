#include "xsp/trace/remote_sink.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "xsp/net/socket.hpp"
#include "xsp/trace/sampler.hpp"

namespace xsp::trace {

/// One connection's state, owned entirely by the sender thread. The
/// writer's TryWriteFn captures `sock`, so `writer` is declared after it
/// (destroyed first).
struct RemoteSink::Conn {
  net::Socket sock;
  std::unique_ptr<BinaryWriter> writer;
  /// Spans handed to the writer whose bytes have not fully left the
  /// FrameSink yet — the upper bound on what a connection death can lose.
  std::uint64_t spans_in_flight = 0;

  [[nodiscard]] bool ok() const {
    return sock.valid() && writer && !writer->sink_failed();
  }
};

RemoteSink::RemoteSink(net::Endpoint endpoint, RemoteSinkOptions options)
    : endpoint_(std::move(endpoint)), opts_(options) {
  pending_.reserve(opts_.batch_spans);
  sender_ = std::thread([this] { sender_loop(); });
}

RemoteSink::~RemoteSink() { close(); }

SpanId RemoteSink::next_span_id() noexcept {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t RemoteSink::next_correlation_id() noexcept {
  return next_corr_.fetch_add(1, std::memory_order_relaxed);
}

void RemoteSink::publish(Span span) {
  published_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lk(mu_);
  if (closed_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Admission before the span costs outbox space or wire bytes — the same
  // decision point TraceServer::publish applies in-process.
  if (sampler_ != nullptr) {
    if (!sampler_->admit(span)) {
      sampled_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sampled_kept_.fetch_add(1, std::memory_order_relaxed);
  }
  pending_.push_back(span);
  if (pending_.size() >= opts_.batch_spans) seal_locked();
}

void RemoteSink::write_batches(const SpanBatches& batches) {
  std::lock_guard lk(mu_);
  for (const SpanBatch& batch : batches) {
    if (batch.empty()) continue;
    published_.fetch_add(batch.size(), std::memory_order_relaxed);
    if (closed_) {
      dropped_.fetch_add(batch.size(), std::memory_order_relaxed);
      continue;
    }
    enqueue_locked(SpanBatch(batch));
  }
}

void RemoteSink::flush() {
  std::lock_guard lk(mu_);
  if (!closed_) seal_locked();
}

void RemoteSink::set_meta(const TraceMeta& meta) {
  std::lock_guard lk(mu_);
  meta_ = meta;
}

void RemoteSink::close() {
  {
    std::lock_guard lk(mu_);
    if (!closed_) {
      seal_locked();
      closed_ = true;
      stop_ = true;
    }
    cv_.notify_all();
  }
  // Join exactly once: the constructor's thread is only joinable until
  // the first close() completes; concurrent close() callers race benignly
  // on joinable().
  if (sender_.joinable()) sender_.join();
}

void RemoteSink::seal_locked() {
  if (pending_.empty()) return;
  enqueue_locked(std::move(pending_));
  pending_ = SpanBatch();
  pending_.reserve(opts_.batch_spans);
}

void RemoteSink::enqueue_locked(SpanBatch&& batch) {
  if (outbox_spans_ + batch.size() > opts_.max_outbox_spans) {
    // Bounded outbox. With a sampler attached the drop is selective: its
    // value ordering keeps tail outliers and the deterministic
    // high-priority hash slice, and only the low-value remainder is shed
    // (counted in both shed_ and dropped_ — shed spans are undelivered).
    // Without one, the whole batch drops — partial blind drops would
    // still ship a frame and hide how much is missing.
    if (sampler_ != nullptr) {
      const std::uint64_t removed =
          static_cast<std::uint64_t>(sampler_->shed_low_value(batch));
      shed_.fetch_add(removed, std::memory_order_relaxed);
      dropped_.fetch_add(removed, std::memory_order_relaxed);
      if (batch.empty()) return;
    }
    if (outbox_spans_ + batch.size() > opts_.max_outbox_spans) {
      dropped_.fetch_add(batch.size(), std::memory_order_relaxed);
      return;
    }
  }
  outbox_spans_ += batch.size();
  outbox_.push_back(std::move(batch));
  cv_.notify_all();
}

bool RemoteSink::connect_once(Conn& conn) {
  std::string error;
  net::Socket sock =
      net::try_connect(endpoint_, opts_.connect_timeout_ms, &error);
  if (!sock.valid()) return false;
  conn.sock = std::move(sock);
  conn.spans_in_flight = 0;
  // Fresh writer = fresh stream header + StringDelta epoch from cursor
  // zero: the collector's new per-connection decoder sees every string.
  net::Socket* raw = &conn.sock;
  const int io_wait_ms = opts_.io_wait_ms;
  conn.writer = std::make_unique<BinaryWriter>(
      FrameSink::TryWriteFn(
          [raw, io_wait_ms](std::string_view bytes) -> std::size_t {
            std::size_t total = 0;
            bool waited = false;
            while (total < bytes.size()) {
              std::size_t n = 0;
              const net::IoResult r =
                  raw->write_some(bytes.data() + total, bytes.size() - total, n);
              if (r == net::IoResult::kOk) {
                total += n;
                continue;
              }
              if (r == net::IoResult::kWouldBlock) {
                // One bounded wait per call; still saturated -> short
                // write, the FrameSink keeps the suffix and the sender's
                // backpressure policy takes over.
                if (waited) break;
                waited = true;
                raw->wait_writable(io_wait_ms);
                continue;
              }
              return FrameSink::kWriteError;
            }
            return total;
          }),
      FrameSink::Fallible{});
  if (conn.writer->sink_failed()) {
    conn.writer.reset();
    conn.sock.close();
    return false;
  }
  connected_.store(true, std::memory_order_relaxed);
  return true;
}

void RemoteSink::sender_loop() {
  Conn conn;
  int backoff_ms = opts_.backoff_initial_ms;
  bool ever_connected = false;
  const bool hb_enabled = opts_.heartbeat_interval_ms > 0;
  const auto hb_interval =
      std::chrono::milliseconds(hb_enabled ? opts_.heartbeat_interval_ms : 1);
  auto next_hb = std::chrono::steady_clock::now() + hb_interval;

  for (;;) {
    {
      std::unique_lock lk(mu_);
      const auto pred = [this] { return stop_ || !outbox_.empty(); };
      bool timed_out = false;
      if (hb_enabled) {
        // Deadline wait: wake for data/stop OR the next heartbeat tick.
        timed_out = !cv_.wait_until(lk, next_hb, pred);
      } else {
        cv_.wait(lk, pred);
      }
      if (outbox_.empty() && stop_) break;
      if (timed_out && outbox_.empty() && !conn.ok()) {
        // Pure heartbeat tick while disconnected: nothing to signal on.
        // Reconnecting belongs to the data path — an idle producer must
        // not generate connect storms just to heartbeat.
        next_hb = std::chrono::steady_clock::now() + hb_interval;
        continue;
      }
    }

    if (!conn.ok()) {
      connected_.store(false, std::memory_order_relaxed);
      if (!connect_once(conn)) {
        std::unique_lock lk(mu_);
        if (stop_) {
          // Shutting down against an unreachable collector: account and
          // abandon — a dead daemon must not wedge producer exit.
          for (const SpanBatch& b : outbox_)
            dropped_.fetch_add(b.size(), std::memory_order_relaxed);
          outbox_.clear();
          outbox_spans_ = 0;
          break;
        }
        cv_.wait_for(lk, std::chrono::milliseconds(backoff_ms),
                     [this] { return stop_; });
        backoff_ms = std::min(backoff_ms * 2, opts_.backoff_max_ms);
        continue;
      }
      backoff_ms = opts_.backoff_initial_ms;
      if (ever_connected) reconnects_.fetch_add(1, std::memory_order_relaxed);
      ever_connected = true;
      next_hb = std::chrono::steady_clock::now() + hb_interval;
    }

    // Heartbeat when due — before the next batch, so a stalled outbox
    // still reports live counters (that is the point of the frame).
    if (hb_enabled && conn.ok() && std::chrono::steady_clock::now() >= next_hb) {
      conn.writer->write_heartbeat(make_heartbeat());
      next_hb = std::chrono::steady_clock::now() + hb_interval;
      if (conn.writer->sink_failed()) {
        // Same dead-connection policy as a failed batch write below.
        dropped_.fetch_add(conn.spans_in_flight, std::memory_order_relaxed);
        conn.spans_in_flight = 0;
        conn.writer.reset();
        conn.sock.close();
        connected_.store(false, std::memory_order_relaxed);
        continue;
      }
      heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    SpanBatch batch;
    {
      std::lock_guard lk(mu_);
      if (outbox_.empty()) continue;
      batch = std::move(outbox_.front());
      outbox_.pop_front();
      outbox_spans_ -= batch.size();
    }

    // Bounded send buffer: encoding into a sink that cannot drain would
    // grow memory without bound, so past the cap the batch drops instead.
    if (conn.writer->sink_pending_bytes() > opts_.max_wire_pending_bytes) {
      conn.writer->flush();
      if (!conn.writer->sink_failed() &&
          conn.writer->sink_pending_bytes() > opts_.max_wire_pending_bytes) {
        dropped_.fetch_add(batch.size(), std::memory_order_relaxed);
        continue;
      }
    }

    if (!conn.writer->sink_failed()) {
      conn.writer->write_batch(batch);
      conn.spans_in_flight += batch.size();
      // Latency bound for trickle producers: below the FrameSink's flush
      // threshold encoded frames sit in its buffer, so once the outbox is
      // empty push them to the socket now instead of waiting for 64 KiB
      // to accumulate (a sparse stream would otherwise only ever reach
      // the collector at close()).
      bool idle;
      {
        std::lock_guard lk(mu_);
        idle = outbox_.empty();
      }
      if (idle && !conn.writer->sink_failed()) conn.writer->flush();
      if (!conn.writer->sink_failed() &&
          conn.writer->sink_pending_bytes() == 0) {
        sent_.fetch_add(conn.spans_in_flight, std::memory_order_relaxed);
        conn.spans_in_flight = 0;
      }
    }
    if (conn.writer->sink_failed()) {
      // Delivery of everything since the last full drain is unknown;
      // count it dropped — honest accounting over-counts rather than
      // hides. Queued batches survive for the reconnect.
      dropped_.fetch_add(conn.spans_in_flight, std::memory_order_relaxed);
      conn.spans_in_flight = 0;
      conn.writer.reset();
      conn.sock.close();
      connected_.store(false, std::memory_order_relaxed);
    }
  }

  finish_stream(conn);
  connected_.store(false, std::memory_order_relaxed);
}

void RemoteSink::finish_stream(Conn& conn) {
  if (!conn.ok()) return;

  TraceMeta meta;
  {
    std::lock_guard lk(mu_);
    meta = meta_;
  }
  meta.remote_dropped_spans = dropped_.load(std::memory_order_relaxed);
  meta.remote_reconnects = reconnects_.load(std::memory_order_relaxed);
  // Direct-publish admission accounting adds to whatever the owner set:
  // the two paths are disjoint (set_meta carries the upstream fleet's
  // counters; these count spans sampled at this sink's own publish()).
  meta.sampled_kept += sampled_kept_.load(std::memory_order_relaxed);
  meta.sampled_dropped += sampled_dropped_.load(std::memory_order_relaxed);
  conn.writer->set_meta(meta);
  conn.writer->finish();

  // Let a saturated socket drain the footer, bounded by drain_timeout_ms.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.drain_timeout_ms);
  while (!conn.writer->sink_failed() && conn.writer->sink_pending_bytes() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    conn.sock.wait_writable(opts_.io_wait_ms);
    conn.writer->flush();
  }
  if (conn.writer->sink_failed() || conn.writer->sink_pending_bytes() > 0) {
    dropped_.fetch_add(conn.spans_in_flight, std::memory_order_relaxed);
    conn.spans_in_flight = 0;
    return;
  }
  sent_.fetch_add(conn.spans_in_flight, std::memory_order_relaxed);
  conn.spans_in_flight = 0;

  // Drain protocol: half-close says "stream complete"; the daemon
  // finishes ingesting and acks by closing its end. Reading EOF here
  // means every frame was consumed before we tear down.
  conn.sock.shutdown_write();
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    std::size_t n = 0;
    const net::IoResult r = conn.sock.read_some(buf, sizeof buf, n);
    if (r == net::IoResult::kClosed || r == net::IoResult::kError) return;
    if (r == net::IoResult::kWouldBlock) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return;
      conn.sock.wait_readable(static_cast<int>(
          std::min<long long>(left.count(), opts_.io_wait_ms)));
    }
    // kOk: the collector never sends payload; discard and keep waiting
    // for EOF.
  }
}

std::uint64_t RemoteSink::spans_published() const noexcept {
  return published_.load(std::memory_order_relaxed);
}
std::uint64_t RemoteSink::spans_sent() const noexcept {
  return sent_.load(std::memory_order_relaxed);
}
std::uint64_t RemoteSink::spans_dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}
std::uint64_t RemoteSink::spans_shed() const noexcept {
  return shed_.load(std::memory_order_relaxed);
}
std::uint64_t RemoteSink::spans_sampled_kept() const noexcept {
  return sampled_kept_.load(std::memory_order_relaxed);
}
std::uint64_t RemoteSink::spans_sampled_dropped() const noexcept {
  return sampled_dropped_.load(std::memory_order_relaxed);
}

wire::Heartbeat RemoteSink::make_heartbeat() {
  wire::Heartbeat hb{};
  hb.sequence = ++hb_seq_;
  hb.spans_published = published_.load(std::memory_order_relaxed);
  hb.spans_sent = sent_.load(std::memory_order_relaxed);
  hb.spans_dropped = dropped_.load(std::memory_order_relaxed);
  hb.spans_shed = shed_.load(std::memory_order_relaxed);
  hb.sampled_kept = sampled_kept_.load(std::memory_order_relaxed);
  hb.sampled_dropped = sampled_dropped_.load(std::memory_order_relaxed);
  hb.reconnects = reconnects_.load(std::memory_order_relaxed);
  hb.outbox_spans = outbox_spans();
  return hb;
}

std::uint64_t RemoteSink::outbox_spans() const {
  std::lock_guard lk(mu_);
  return static_cast<std::uint64_t>(outbox_spans_);
}

std::uint64_t RemoteSink::heartbeats_sent() const noexcept {
  return heartbeats_sent_.load(std::memory_order_relaxed);
}

void RemoteSink::bind_metrics(metrics::Registry& registry, metrics::Labels labels) {
  std::lock_guard lk(metrics_mu_);
  metrics_cbs_.clear();
  const auto cb = [&](const char* name, const char* help, metrics::Kind kind,
                      metrics::Sample sample) {
    metrics_cbs_.push_back(registry.callback(name, help, kind, labels, std::move(sample)));
  };
  const auto load = [](const std::atomic<std::uint64_t>& v) {
    return static_cast<double>(v.load(std::memory_order_relaxed));
  };
  cb("xsp_remote_published_spans_total", "Spans handed to the remote sink",
     metrics::Kind::kCounter, [this, load] { return load(published_); });
  cb("xsp_remote_sent_spans_total", "Spans fully accepted by the socket layer",
     metrics::Kind::kCounter, [this, load] { return load(sent_); });
  cb("xsp_remote_dropped_spans_total",
     "Spans dropped by backpressure or dead connections (live, not just at close)",
     metrics::Kind::kCounter, [this, load] { return load(dropped_); });
  cb("xsp_remote_shed_spans_total", "Low-value spans shed selectively under backpressure",
     metrics::Kind::kCounter, [this, load] { return load(shed_); });
  cb("xsp_remote_sampled_kept_total", "Spans the admission sampler kept at publish",
     metrics::Kind::kCounter, [this, load] { return load(sampled_kept_); });
  cb("xsp_remote_sampled_dropped_total", "Spans the admission sampler shed at publish",
     metrics::Kind::kCounter, [this, load] { return load(sampled_dropped_); });
  cb("xsp_remote_reconnects_total", "Reconnects performed (each opens a fresh wire epoch)",
     metrics::Kind::kCounter, [this, load] { return load(reconnects_); });
  cb("xsp_remote_heartbeats_sent_total", "Wire v3 heartbeat frames emitted",
     metrics::Kind::kCounter, [this, load] { return load(heartbeats_sent_); });
  cb("xsp_remote_connected", "1 while the socket connection is up",
     metrics::Kind::kGauge,
     [this] { return connected_.load(std::memory_order_relaxed) ? 1.0 : 0.0; });
  cb("xsp_remote_outbox_spans", "Spans queued in the bounded outbox (instantaneous)",
     metrics::Kind::kGauge, [this] { return static_cast<double>(outbox_spans()); });
}

void RemoteSink::set_sampler(std::shared_ptr<const Sampler> sampler) {
  std::lock_guard lk(mu_);
  sampler_ = std::move(sampler);
}
std::uint64_t RemoteSink::reconnects() const noexcept {
  return reconnects_.load(std::memory_order_relaxed);
}
bool RemoteSink::connected() const noexcept {
  return connected_.load(std::memory_order_relaxed);
}

}  // namespace xsp::trace
