#include "xsp/trace/sharded_trace_server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace xsp::trace {

namespace {

/// Process-unique key for the calling thread, mixed so consecutive keys
/// spread across shards instead of clustering (threads are typically
/// created in a burst and keyed consecutively).
std::uint64_t mixed_thread_key() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  thread_local const std::uint64_t key =
      counter.fetch_add(1, std::memory_order_relaxed) * 0x9E3779B97F4A7C15ull;
  return key;
}

}  // namespace

const char* shard_policy_name(ShardPolicy p) {
  switch (p) {
    case ShardPolicy::kByThread: return "by_thread";
    case ShardPolicy::kByTracer: return "by_tracer";
    case ShardPolicy::kByTimeWindow: return "by_time_window";
  }
  return "?";
}

std::size_t ShardedTraceServer::default_shard_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 8);
}

std::size_t ShardedTraceServer::resolve_shard_count(std::size_t requested) noexcept {
  if (requested == 0) requested = default_shard_count();
  return std::min(requested, kMaxShards);
}

ShardedTraceServer::ShardedTraceServer(std::size_t shard_count, PublishMode mode,
                                       ShardPolicy policy, Ns time_window)
    : mode_(mode), policy_(policy), time_window_(time_window > 0 ? time_window : kNsPerMs) {
  shard_count = resolve_shard_count(shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<TraceServer>(mode, IdStripe{i, shard_count}));
  }
}

std::size_t ShardedTraceServer::shard_for_current_thread() const noexcept {
  return static_cast<std::size_t>(mixed_thread_key() >> 32) % shards_.size();
}

std::size_t ShardedTraceServer::shard_for(const Span& span) const noexcept {
  switch (policy_) {
    case ShardPolicy::kByTracer:
      // StrIds are dense small integers; mix before reducing.
      return static_cast<std::size_t>(
                 (span.tracer.raw() * 0x9E3779B9u) >> 16) %
             shards_.size();
    case ShardPolicy::kByTimeWindow:
      return static_cast<std::size_t>(static_cast<std::uint64_t>(span.begin) /
                                      static_cast<std::uint64_t>(time_window_)) %
             shards_.size();
    case ShardPolicy::kByThread:
    default:
      return shard_for_current_thread();
  }
}

SpanId ShardedTraceServer::next_span_id() noexcept {
  // Always the thread's shard: cheapest selector, and striped blocks make
  // any shard's ids fleet-unique, so routing of the *span* is free to
  // differ (kByTracer/kByTimeWindow).
  return shards_[shard_for_current_thread()]->next_span_id();
}

void ShardedTraceServer::publish(Span span) {
  shards_[shard_for(span)]->publish(std::move(span));
}

void ShardedTraceServer::flush() {
  for (auto& shard : shards_) shard->flush();
}

std::size_t ShardedTraceServer::span_count() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->span_count();
  return total;
}

std::uint64_t ShardedTraceServer::dropped_annotation_count() {
  std::uint64_t total = 0;
  for (auto& shard : shards_) total += shard->dropped_annotation_count();
  return total;
}

void ShardedTraceServer::set_sampler(std::shared_ptr<const Sampler> sampler) {
  for (auto& shard : shards_) shard->set_sampler(sampler);
}

std::uint64_t ShardedTraceServer::sampled_kept_count() {
  std::uint64_t total = 0;
  for (auto& shard : shards_) total += shard->sampled_kept_count();
  return total;
}

std::uint64_t ShardedTraceServer::sampled_dropped_count() {
  std::uint64_t total = 0;
  for (auto& shard : shards_) total += shard->sampled_dropped_count();
  return total;
}

SpanBatches ShardedTraceServer::take_batches() {
  SpanBatches merged = shards_[0]->take_batches();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    SpanBatches part = shards_[i]->take_batches();
    merged.reserve(merged.size() + part.size());
    for (auto& batch : part) merged.push_back(std::move(batch));
    part.clear();
    shards_[i]->recycle(std::move(part));
  }
  return merged;
}

std::vector<Span> ShardedTraceServer::take_trace() {
  SpanBatches batches = take_batches();
  std::vector<Span> flat = flatten_batches(batches);
  recycle(std::move(batches));
  return flat;
}

SubscriberId ShardedTraceServer::add_subscriber_impl(
    const std::function<DrainSubscriber(std::size_t)>& make_fn, DrainHandoff handoff) {
  FleetSubscriber entry;
  entry.shard_ids.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    try {
      entry.shard_ids.push_back(shards_[i]->add_drain_subscriber(make_fn(i), handoff));
    } catch (...) {
      // Consumer exclusivity tripped on shard i (someone subscribed a
      // consumer directly on it): unwind so no shard is left partially
      // subscribed, then surface the error.
      for (std::size_t j = 0; j < entry.shard_ids.size(); ++j) {
        shards_[j]->remove_drain_subscriber(entry.shard_ids[j]);
      }
      throw;
    }
  }
  std::lock_guard lk(sub_mu_);
  entry.id = next_subscriber_id_++;
  subscribers_.push_back(std::move(entry));
  return subscribers_.back().id;
}

SubscriberId ShardedTraceServer::add_drain_subscriber(DrainSubscriber subscriber,
                                                      DrainHandoff handoff) {
  if (!subscriber) throw std::logic_error("ShardedTraceServer: null drain subscriber");
  // Every shard shares the one callable: the subscriber must already be
  // thread-safe (cross-shard drains are concurrent), so a shared copy
  // behind shared state is the intended shape.
  auto shared = std::make_shared<DrainSubscriber>(std::move(subscriber));
  return add_subscriber_impl(
      [&shared](std::size_t) {
        return [shared](const SpanBatches& batches) { (*shared)(batches); };
      },
      handoff);
}

SubscriberId ShardedTraceServer::add_drain_subscriber(ShardDrainSubscriber subscriber,
                                                      DrainHandoff handoff) {
  if (!subscriber) throw std::logic_error("ShardedTraceServer: null drain subscriber");
  auto shared = std::make_shared<ShardDrainSubscriber>(std::move(subscriber));
  return add_subscriber_impl(
      [&shared](std::size_t shard) {
        return [shared, shard](const SpanBatches& batches) { (*shared)(shard, batches); };
      },
      handoff);
}

void ShardedTraceServer::remove_drain_subscriber(SubscriberId id) {
  std::vector<SubscriberId> shard_ids;
  {
    std::lock_guard lk(sub_mu_);
    for (std::size_t i = 0; i < subscribers_.size(); ++i) {
      if (subscribers_[i].id == id) {
        shard_ids = std::move(subscribers_[i].shard_ids);
        subscribers_.erase(subscribers_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  // Outside sub_mu_: per-shard removal synchronizes with that shard's
  // in-flight drain, which may itself be mid-callback.
  for (std::size_t i = 0; i < shard_ids.size(); ++i) {
    shards_[i]->remove_drain_subscriber(shard_ids[i]);
  }
}

std::uint64_t ShardedTraceServer::span_count(std::size_t shard) {
  return shards_[shard]->drained_span_count();
}

std::vector<std::uint64_t> ShardedTraceServer::shard_loads() {
  std::vector<std::uint64_t> loads;
  loads.reserve(shards_.size());
  for (auto& shard : shards_) loads.push_back(shard->drained_span_count());
  return loads;
}

std::size_t ShardedTraceServer::live_slot_count() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->live_slot_count();
  return total;
}

std::uint64_t ShardedTraceServer::retired_slot_count() {
  std::uint64_t total = 0;
  for (auto& shard : shards_) total += shard->retired_slot_count();
  return total;
}

std::size_t ShardedTraceServer::pooled_slot_count() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->pooled_slot_count();
  return total;
}

std::uint64_t ShardedTraceServer::approx_slot_bytes() {
  std::uint64_t total = 0;
  for (auto& shard : shards_) total += shard->approx_slot_bytes();
  return total;
}

void ShardedTraceServer::set_slot_reclamation(bool enabled) noexcept {
  for (auto& shard : shards_) shard->set_slot_reclamation(enabled);
}

void ShardedTraceServer::bind_metrics(metrics::Registry& registry,
                                      const metrics::Labels& labels) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    metrics::Labels shard_labels = labels;
    shard_labels.push_back({"shard", std::to_string(i)});
    shards_[i]->bind_metrics(registry, std::move(shard_labels));
  }
}

void ShardedTraceServer::recycle(SpanBatches batches) {
  const std::size_t n = shards_.size();
  if (n == 1) {
    shards_[0]->recycle(std::move(batches));
    return;
  }
  // Round-robin the buffers so every shard's freelist refills, not just
  // the one the consumer thread would hash to; allocation-free (no
  // per-call scaffolding), matching the single-server recycle path.
  for (std::size_t i = 0; i < batches.size(); ++i) {
    shards_[i % n]->recycle_one(std::move(batches[i]));
  }
  // Re-home the (now empty) outer vector so the next take_batches() merge
  // starts from pre-grown storage.
  batches.clear();
  shards_[0]->recycle(std::move(batches));
}

}  // namespace xsp::trace
