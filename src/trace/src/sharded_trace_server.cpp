#include "xsp/trace/sharded_trace_server.hpp"

#include <algorithm>
#include <utility>

namespace xsp::trace {

namespace {

/// Process-unique key for the calling thread, mixed so consecutive keys
/// spread across shards instead of clustering (threads are typically
/// created in a burst and keyed consecutively).
std::uint64_t mixed_thread_key() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  thread_local const std::uint64_t key =
      counter.fetch_add(1, std::memory_order_relaxed) * 0x9E3779B97F4A7C15ull;
  return key;
}

}  // namespace

const char* shard_policy_name(ShardPolicy p) {
  switch (p) {
    case ShardPolicy::kByThread: return "by_thread";
    case ShardPolicy::kByTracer: return "by_tracer";
    case ShardPolicy::kByTimeWindow: return "by_time_window";
  }
  return "?";
}

std::size_t ShardedTraceServer::default_shard_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 8);
}

std::size_t ShardedTraceServer::resolve_shard_count(std::size_t requested) noexcept {
  if (requested == 0) requested = default_shard_count();
  return std::min(requested, kMaxShards);
}

ShardedTraceServer::ShardedTraceServer(std::size_t shard_count, PublishMode mode,
                                       ShardPolicy policy, Ns time_window)
    : mode_(mode), policy_(policy), time_window_(time_window > 0 ? time_window : kNsPerMs) {
  shard_count = resolve_shard_count(shard_count);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<TraceServer>(mode, IdStripe{i, shard_count}));
  }
}

std::size_t ShardedTraceServer::shard_for_current_thread() const noexcept {
  return static_cast<std::size_t>(mixed_thread_key() >> 32) % shards_.size();
}

std::size_t ShardedTraceServer::shard_for(const Span& span) const noexcept {
  switch (policy_) {
    case ShardPolicy::kByTracer:
      // StrIds are dense small integers; mix before reducing.
      return static_cast<std::size_t>(
                 (span.tracer.raw() * 0x9E3779B9u) >> 16) %
             shards_.size();
    case ShardPolicy::kByTimeWindow:
      return static_cast<std::size_t>(static_cast<std::uint64_t>(span.begin) /
                                      static_cast<std::uint64_t>(time_window_)) %
             shards_.size();
    case ShardPolicy::kByThread:
    default:
      return shard_for_current_thread();
  }
}

SpanId ShardedTraceServer::next_span_id() noexcept {
  // Always the thread's shard: cheapest selector, and striped blocks make
  // any shard's ids fleet-unique, so routing of the *span* is free to
  // differ (kByTracer/kByTimeWindow).
  return shards_[shard_for_current_thread()]->next_span_id();
}

void ShardedTraceServer::publish(Span span) {
  shards_[shard_for(span)]->publish(std::move(span));
}

void ShardedTraceServer::flush() {
  for (auto& shard : shards_) shard->flush();
}

std::size_t ShardedTraceServer::span_count() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->span_count();
  return total;
}

std::uint64_t ShardedTraceServer::dropped_annotation_count() {
  std::uint64_t total = 0;
  for (auto& shard : shards_) total += shard->dropped_annotation_count();
  return total;
}

SpanBatches ShardedTraceServer::take_batches() {
  SpanBatches merged = shards_[0]->take_batches();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    SpanBatches part = shards_[i]->take_batches();
    merged.reserve(merged.size() + part.size());
    for (auto& batch : part) merged.push_back(std::move(batch));
    part.clear();
    shards_[i]->recycle(std::move(part));
  }
  return merged;
}

std::vector<Span> ShardedTraceServer::take_trace() {
  SpanBatches batches = take_batches();
  std::vector<Span> flat = flatten_batches(batches);
  recycle(std::move(batches));
  return flat;
}

void ShardedTraceServer::set_drain_subscriber(DrainSubscriber subscriber, DrainHandoff handoff) {
  for (auto& shard : shards_) shard->set_drain_subscriber(subscriber, handoff);
}

void ShardedTraceServer::recycle(SpanBatches batches) {
  const std::size_t n = shards_.size();
  if (n == 1) {
    shards_[0]->recycle(std::move(batches));
    return;
  }
  // Round-robin the buffers so every shard's freelist refills, not just
  // the one the consumer thread would hash to; allocation-free (no
  // per-call scaffolding), matching the single-server recycle path.
  for (std::size_t i = 0; i < batches.size(); ++i) {
    shards_[i % n]->recycle_one(std::move(batches[i]));
  }
  // Re-home the (now empty) outer vector so the next take_batches() merge
  // starts from pre-grown storage.
  batches.clear();
  shards_[0]->recycle(std::move(batches));
}

}  // namespace xsp::trace
