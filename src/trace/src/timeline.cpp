#include "xsp/trace/timeline.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "xsp/trace/interval_tree.hpp"

namespace xsp::trace {

namespace {

/// The interval a node uses when *searching for its parent*. Async events
/// search with their CPU-side launch window: the launch call happens inside
/// the parent layer's interval even when the device-side execution outlives
/// the layer (Section III-B).
struct SearchInterval {
  TimePoint lo;
  TimePoint hi;
};

SearchInterval parent_search_interval(const TimelineNode& n) {
  if (n.is_async) return {n.launch_begin, n.launch_end};
  return {n.span.begin, n.span.end};
}

}  // namespace

Timeline Timeline::assemble(const SpanBatches& batches, const AssembleOptions& options) {
  Timeline tl;

  std::size_t span_count = 0;
  for (const auto& batch : batches) span_count += batch.size();

  // --- Step 1: correlate launch/execution pairs. -------------------------
  // Group async spans by correlation id; merge each complete pair into one
  // node carrying the execution span's timing and metrics plus the launch
  // window. Incomplete pairs degrade to regular nodes (counted).
  std::unordered_map<std::uint64_t, Span> pending_launch;
  std::unordered_map<std::uint64_t, Span> pending_exec;

  std::vector<TimelineNode> merged;
  merged.reserve(span_count);

  for (const auto& batch : batches) {
    for (const auto& s : batch) {
      if (options.correlate_async && s.kind == SpanKind::kLaunch && s.correlation_id != 0) {
        pending_launch.emplace(s.correlation_id, s);
      } else if (options.correlate_async && s.kind == SpanKind::kExecution &&
                 s.correlation_id != 0) {
        pending_exec.emplace(s.correlation_id, s);
      } else {
        TimelineNode n;
        n.span = s;
        merged.push_back(std::move(n));
      }
    }
  }

  for (auto& [corr, exec] : pending_exec) {
    auto it = pending_launch.find(corr);
    TimelineNode n;
    if (it != pending_launch.end()) {
      Span& launch = it->second;
      n.span = std::move(exec);
      // The launch span carries the explicit parent (if any) and the CPU
      // window used for interval-containment parent search.
      if (n.span.parent == kNoSpan) n.span.parent = launch.parent;
      n.launch_begin = launch.begin;
      n.launch_end = launch.end;
      n.is_async = true;
      // Preserve launch-side annotations that the execution side lacks.
      for (const auto& e : launch.tags) {
        if (n.span.tags.count(e.key) == 0 && !n.span.tags.set(e.key, e.value)) {
          n.span.note_dropped();
        }
      }
      for (const auto& e : launch.metrics) {
        if (n.span.metrics.count(e.key) == 0 && !n.span.metrics.set(e.key, e.value)) {
          n.span.note_dropped();
        }
      }
      for (const auto& e : launch.inline_tags) {
        if (n.span.inline_tags.count(e.key) == 0 &&
            !n.span.inline_tags.set(e.key, e.value())) {
          n.span.note_dropped();
        }
      }
      n.span.note_dropped(launch.dropped_annotations);
      pending_launch.erase(it);
      ++tl.correlated_async_;
    } else {
      n.span = std::move(exec);
      ++tl.unmatched_async_;
    }
    merged.push_back(std::move(n));
  }
  for (auto& [corr, launch] : pending_launch) {
    (void)corr;
    TimelineNode n;
    n.span = std::move(launch);
    ++tl.unmatched_async_;
    merged.push_back(std::move(n));
  }

  // Deterministic order regardless of publication order (async publication
  // may interleave arbitrarily): sort by begin time, then id.
  std::sort(merged.begin(), merged.end(), [](const TimelineNode& a, const TimelineNode& b) {
    if (a.span.begin != b.span.begin) return a.span.begin < b.span.begin;
    return a.span.id < b.span.id;
  });

  // --- Step 2: build the parent index once. ------------------------------
  // Per-level interval trees whose payload is the node's position in
  // `merged`, so candidate inspection during the stabbing visit is an array
  // access instead of a hash lookup, and no per-query candidate vectors are
  // materialized.
  std::map<int, std::vector<IntervalTree<std::uint32_t>::Entry>> level_entries;
  for (std::uint32_t i = 0; i < merged.size(); ++i) {
    const Span& s = merged[i].span;
    level_entries[s.level].push_back({s.begin, s.end, i});
  }
  std::map<int, IntervalTree<std::uint32_t>> level_trees;
  for (auto& [level, entries] : level_entries) {
    level_trees.emplace(level, IntervalTree<std::uint32_t>(std::move(entries)));
  }

  // --- Step 3: resolve parents. -------------------------------------------
  for (auto& n : merged) {
    SpanId parent = kNoSpan;
    bool ambiguous = false;

    if (options.trust_explicit_parents && n.span.parent != kNoSpan) {
      parent = n.span.parent;
    } else {
      // The parent lives one level higher; levels with no tracer attached
      // are skipped (e.g. kernels parent directly onto layers when no
      // ML-library tracer ran — Section III-E extensibility).
      auto tree_it = level_trees.end();
      for (int parent_level = n.span.level - 1; parent_level >= kApplicationLevel;
           --parent_level) {
        tree_it = level_trees.find(parent_level);
        if (tree_it != level_trees.end()) break;
      }
      if (tree_it != level_trees.end()) {
        const auto [lo, hi] = parent_search_interval(n);
        // Smallest enclosing interval is the immediate parent; a tie
        // between distinct enclosing intervals means parallel events.
        const TimelineNode* best = nullptr;
        Ns best_duration = 0;
        std::size_t equal_best = 0;
        tree_it->second.visit_stabbing(lo, [&](const IntervalTree<std::uint32_t>::Entry& e) {
          if (e.lo > lo || e.hi < hi) return;  // must contain [lo, hi]
          const TimelineNode& candidate = merged[e.value];
          const Ns duration = candidate.span.duration();
          if (best == nullptr || duration < best_duration) {
            best = &candidate;
            best_duration = duration;
            equal_best = 1;
          } else if (duration == best_duration) {
            ++equal_best;
          }
        });
        if (best != nullptr) {
          parent = best->span.id;
          ambiguous = equal_best > 1;
        }
      }
    }

    n.parent = parent;
    n.ambiguous_parent = ambiguous;
    if (ambiguous) ++tl.ambiguous_;
  }

  // --- Step 4: materialize the hierarchy. ---------------------------------
  // `merged` is already in begin-time order, so walking it in order keeps
  // children lists and roots deterministic.
  tl.index_.reserve(merged.size());
  for (std::uint32_t i = 0; i < merged.size(); ++i) {
    tl.index_.emplace(merged[i].span.id, i);
  }
  tl.nodes_ = std::move(merged);
  for (auto& n : tl.nodes_) {
    const SpanId id = n.span.id;
    if (n.parent != kNoSpan) {
      if (auto it = tl.index_.find(n.parent); it != tl.index_.end()) {
        tl.nodes_[it->second].children.push_back(id);
        continue;
      }
      n.parent = kNoSpan;
    }
    tl.roots_.push_back(id);
  }
  return tl;
}

std::vector<SpanId> Timeline::at_level(int level) const {
  // nodes_ is ordered by (begin, id) already.
  std::vector<SpanId> out;
  for (const auto& n : nodes_) {
    if (n.span.level == level) out.push_back(n.span.id);
  }
  return out;
}

std::optional<SpanId> Timeline::find_by_name(StrId name) const {
  for (const auto& n : nodes_) {
    if (n.span.name == name) return n.span.id;
  }
  return std::nullopt;
}

void Timeline::walk(const std::function<void(const TimelineNode&, int depth)>& fn) const {
  for (SpanId root : roots_) walk_from(root, 0, fn);
}

void Timeline::walk_from(SpanId id, int depth,
                         const std::function<void(const TimelineNode&, int depth)>& fn) const {
  const auto& n = node(id);
  fn(n, depth);
  for (SpanId c : n.children) walk_from(c, depth + 1, fn);
}

}  // namespace xsp::trace
