#include "xsp/trace/timeline.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "xsp/trace/interval_tree.hpp"

namespace xsp::trace {

namespace {

/// The interval a node uses when *searching for its parent*. Async events
/// search with their CPU-side launch window: the launch call happens inside
/// the parent layer's interval even when the device-side execution outlives
/// the layer (Section III-B).
struct SearchInterval {
  TimePoint lo;
  TimePoint hi;
};

SearchInterval parent_search_interval(const TimelineNode& n) {
  if (n.is_async) return {n.launch_begin, n.launch_end};
  return {n.span.begin, n.span.end};
}

}  // namespace

Timeline Timeline::assemble(std::vector<Span> spans, const AssembleOptions& options) {
  Timeline tl;

  // --- Step 1: correlate launch/execution pairs. -------------------------
  // Group async spans by correlation id; merge each complete pair into one
  // node carrying the execution span's timing and metrics plus the launch
  // window. Incomplete pairs degrade to regular nodes (counted).
  std::unordered_map<std::uint64_t, Span> pending_launch;
  std::unordered_map<std::uint64_t, Span> pending_exec;

  std::vector<TimelineNode> merged;
  merged.reserve(spans.size());

  for (auto& s : spans) {
    if (options.correlate_async && s.kind == SpanKind::kLaunch && s.correlation_id != 0) {
      pending_launch.emplace(s.correlation_id, std::move(s));
    } else if (options.correlate_async && s.kind == SpanKind::kExecution && s.correlation_id != 0) {
      pending_exec.emplace(s.correlation_id, std::move(s));
    } else {
      TimelineNode n;
      n.span = std::move(s);
      merged.push_back(std::move(n));
    }
  }

  for (auto& [corr, exec] : pending_exec) {
    auto it = pending_launch.find(corr);
    TimelineNode n;
    if (it != pending_launch.end()) {
      Span& launch = it->second;
      n.span = std::move(exec);
      // The launch span carries the explicit parent (if any) and the CPU
      // window used for interval-containment parent search.
      if (n.span.parent == kNoSpan) n.span.parent = launch.parent;
      n.launch_begin = launch.begin;
      n.launch_end = launch.end;
      n.is_async = true;
      // Preserve launch-side annotations that the execution side lacks.
      for (auto& [k, v] : launch.tags) n.span.tags.emplace(k, std::move(v));
      for (auto& [k, v] : launch.metrics) n.span.metrics.emplace(k, v);
      pending_launch.erase(it);
      ++tl.correlated_async_;
    } else {
      n.span = std::move(exec);
      ++tl.unmatched_async_;
    }
    merged.push_back(std::move(n));
  }
  for (auto& [corr, launch] : pending_launch) {
    (void)corr;
    TimelineNode n;
    n.span = std::move(launch);
    ++tl.unmatched_async_;
    merged.push_back(std::move(n));
  }

  // Deterministic order regardless of publication order (async publication
  // may interleave arbitrarily): sort by begin time, then id.
  std::sort(merged.begin(), merged.end(), [](const TimelineNode& a, const TimelineNode& b) {
    if (a.span.begin != b.span.begin) return a.span.begin < b.span.begin;
    return a.span.id < b.span.id;
  });

  // --- Step 2: build per-level interval trees for parent search. ---------
  std::map<int, std::vector<IntervalTree<SpanId>::Entry>> level_entries;
  for (const auto& n : merged) {
    level_entries[n.span.level].push_back({n.span.begin, n.span.end, n.span.id});
  }
  std::map<int, IntervalTree<SpanId>> level_trees;
  for (auto& [level, entries] : level_entries) {
    level_trees.emplace(level, IntervalTree<SpanId>(std::move(entries)));
  }

  // Durations needed to pick the *smallest* enclosing candidate.
  std::unordered_map<SpanId, Ns> durations;
  durations.reserve(merged.size());
  for (const auto& n : merged) durations.emplace(n.span.id, n.span.duration());

  // --- Step 3: resolve parents. -------------------------------------------
  for (auto& n : merged) {
    SpanId parent = kNoSpan;
    bool ambiguous = false;

    if (options.trust_explicit_parents && n.span.parent != kNoSpan) {
      parent = n.span.parent;
    } else {
      // The parent lives one level higher; levels with no tracer attached
      // are skipped (e.g. kernels parent directly onto layers when no
      // ML-library tracer ran — Section III-E extensibility).
      auto tree_it = level_trees.end();
      for (int parent_level = n.span.level - 1; parent_level >= kApplicationLevel;
           --parent_level) {
        tree_it = level_trees.find(parent_level);
        if (tree_it != level_trees.end()) break;
      }
      if (tree_it != level_trees.end()) {
        const auto [lo, hi] = parent_search_interval(n);
        auto candidates = tree_it->second.containing(lo, hi);
        if (!candidates.empty()) {
          // Smallest enclosing interval is the immediate parent; a tie
          // between distinct enclosing intervals means parallel events.
          const IntervalTree<SpanId>::Entry* best = candidates.front();
          for (const auto* c : candidates) {
            if (durations[c->value] < durations[best->value]) best = c;
          }
          std::size_t equal_best = 0;
          for (const auto* c : candidates) {
            if (durations[c->value] == durations[best->value]) ++equal_best;
          }
          parent = best->value;
          ambiguous = equal_best > 1;
        }
      }
    }

    n.parent = parent;
    n.ambiguous_parent = ambiguous;
    if (ambiguous) ++tl.ambiguous_;
  }

  // --- Step 4: materialize the hierarchy. ---------------------------------
  // `merged` is already in begin-time order, so walking it in order keeps
  // children lists and roots deterministic.
  std::vector<SpanId> order;
  order.reserve(merged.size());
  for (auto& n : merged) {
    const SpanId id = n.span.id;
    order.push_back(id);
    tl.nodes_.emplace(id, std::move(n));
  }
  for (SpanId id : order) {
    auto& n = tl.nodes_.at(id);
    if (n.parent != kNoSpan && tl.nodes_.count(n.parent) != 0) {
      tl.nodes_.at(n.parent).children.push_back(id);
    } else {
      n.parent = kNoSpan;
      tl.roots_.push_back(id);
    }
  }
  return tl;
}

std::vector<SpanId> Timeline::at_level(int level) const {
  std::vector<SpanId> out;
  for (const auto& [id, n] : nodes_) {
    if (n.span.level == level) out.push_back(id);
  }
  std::sort(out.begin(), out.end(), [&](SpanId a, SpanId b) {
    const auto& na = nodes_.at(a).span;
    const auto& nb = nodes_.at(b).span;
    if (na.begin != nb.begin) return na.begin < nb.begin;
    return na.id < nb.id;
  });
  return out;
}

std::optional<SpanId> Timeline::find_by_name(const std::string& name) const {
  std::optional<SpanId> best;
  for (const auto& [id, n] : nodes_) {
    if (n.span.name == name) {
      if (!best || nodes_.at(*best).span.begin > n.span.begin ||
          (nodes_.at(*best).span.begin == n.span.begin && *best > id)) {
        best = id;
      }
    }
  }
  return best;
}

void Timeline::walk(const std::function<void(const TimelineNode&, int depth)>& fn) const {
  for (SpanId root : roots_) walk_from(root, 0, fn);
}

void Timeline::walk_from(SpanId id, int depth,
                         const std::function<void(const TimelineNode&, int depth)>& fn) const {
  const auto& n = nodes_.at(id);
  fn(n, depth);
  for (SpanId c : n.children) walk_from(c, depth + 1, fn);
}

}  // namespace xsp::trace
