#include "xsp/trace/export.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace xsp::trace {

namespace {

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

/// Fixed-point microseconds from integer nanoseconds: 123456789 ->
/// "123456.789", trailing zeros trimmed ("1234.5", "1234"). Exact for the
/// whole TimePoint range — the default-precision double streaming this
/// replaces rounded any timestamp past ~1 s to 6 significant digits.
void append_us_from_ns(std::string& out, Ns ns) {
  std::uint64_t mag;
  if (ns < 0) {
    out += '-';
    mag = ~static_cast<std::uint64_t>(ns) + 1;
  } else {
    mag = static_cast<std::uint64_t>(ns);
  }
  append_uint(out, mag / 1000);
  const unsigned frac = static_cast<unsigned>(mag % 1000);
  if (frac != 0) {
    const char digits[4] = {'.', static_cast<char>('0' + frac / 100),
                            static_cast<char>('0' + (frac / 10) % 10),
                            static_cast<char>('0' + frac % 10)};
    std::size_t len = 4;
    while (digits[len - 1] == '0') --len;
    out.append(digits, len);
  }
}

/// JSON number from a double: integers up to 2^53 print exactly via the
/// integer path; every other finite value prints the shortest string that
/// round-trips (std::to_chars) — the old "%.6g" truncated large byte/flop
/// counters. Non-finite values have no JSON representation; emit null.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && v >= -kMaxExactInt && v <= kMaxExactInt) {
    // Sign emitted separately so -0.0 round-trips as "-0".
    if (std::signbit(v)) out += '-';
    append_int(out, static_cast<std::int64_t>(std::fabs(v)));
    return;
  }
#if defined(__cpp_lib_to_chars)
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
#else
  char buf[32];
  out.append(buf, static_cast<std::size_t>(std::snprintf(buf, sizeof buf, "%.17g", v)));
#endif
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        // Control characters must be escaped per JSON; DEL is escaped too
        // so exported traces stay printable. Bytes >= 0x80 pass through
        // untouched (UTF-8 sequences are valid JSON string content).
        if (u < 0x20 || u == 0x7f) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xf];
        } else {
          out += c;
        }
      }
    }
  }
  out += '"';
}

void append_args(std::string& out, const Span& span) {
  out += "\"args\":{";
  bool first = true;
  for (const auto& e : span.tags) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, e.key.view());
    out += ':';
    append_escaped(out, e.value.view());
  }
  // Inline value tags read exactly like interned tags in the JSON — the
  // storage difference (span-resident bytes vs StringTable ids) is a
  // producer-side memory decision, not a consumer-visible one.
  for (const auto& e : span.inline_tags) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, e.key.view());
    out += ':';
    append_escaped(out, e.value());
  }
  for (const auto& e : span.metrics) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, e.key.view());
    out += ':';
    append_number(out, e.value);
  }
  out += '}';
}

/// Per-thread event-formatting scratch: batches are serialized here outside
/// the sink lock, so concurrent shard exporters only contend to splice
/// finished chunks. Reused across calls — its capacity is bounded by the
/// largest single batch formatted on this thread, not by trace length.
std::string& tls_scratch() {
  thread_local std::string scratch;
  return scratch;
}

}  // namespace

const char* export_format_name(ExportFormat f) {
  switch (f) {
    case ExportFormat::kChromeTrace: return "chrome_trace";
    case ExportFormat::kSpanJson: return "span_json";
    case ExportFormat::kBinary: return "binary";
  }
  return "?";
}

StreamingExporter::StreamingExporter(ExportFormat format, WriteFn sink, bool with_metadata)
    : format_(format),
      with_metadata_(format == ExportFormat::kSpanJson && with_metadata),
      sink_(std::move(sink)) {
  if (format_ == ExportFormat::kBinary) {
    throw std::invalid_argument(
        "StreamingExporter: ExportFormat::kBinary is BinaryWriter's format (wire.hpp)");
  }
  if (format_ == ExportFormat::kChromeTrace) {
    sink_.write("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  } else {
    sink_.write(with_metadata_ ? "{\"spans\":[" : "[");
  }
}

StreamingExporter::StreamingExporter(ExportFormat format, std::ostream& os, bool with_metadata)
    : StreamingExporter(
          format,
          [out = &os](std::string_view chunk) {
            out->write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
          },
          with_metadata) {}

StreamingExporter::~StreamingExporter() {
  try {
    finish();
  } catch (...) {
    // A sink failing during unwind must not terminate; explicit finish()
    // is the path that propagates sink errors.
  }
}

void StreamingExporter::append_event(std::string& out, const Span& s, SpanId parent) const {
  if (format_ == ExportFormat::kChromeTrace) {
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_int(out, s.level);
    out += ",\"name\":";
    append_escaped(out, s.name.view());
    out += ",\"cat\":";
    append_escaped(out, level_name(s.level));
    // Trace-event timestamps are microseconds.
    out += ",\"ts\":";
    append_us_from_ns(out, s.begin);
    out += ",\"dur\":";
    append_us_from_ns(out, s.duration());
    out += ',';
    append_args(out, s);
    out += '}';
  } else {
    out += "{\"id\":";
    append_uint(out, s.id);
    out += ",\"parent\":";
    append_uint(out, parent);
    out += ",\"level\":";
    append_int(out, s.level);
    out += ",\"kind\":";
    append_escaped(out, kind_name(s.kind));
    out += ",\"name\":";
    append_escaped(out, s.name.view());
    out += ",\"tracer\":";
    append_escaped(out, s.tracer.view());
    out += ",\"begin_ns\":";
    append_int(out, s.begin);
    out += ",\"end_ns\":";
    append_int(out, s.end);
    out += ",\"correlation_id\":";
    append_uint(out, s.correlation_id);
    out += ',';
    if (s.dropped_annotations > 0) {
      out += "\"dropped_annotations\":";
      append_uint(out, s.dropped_annotations);
      out += ',';
    }
    append_args(out, s);
    out += '}';
  }
}

void StreamingExporter::append_chunk_locked(std::string_view chunk, std::uint64_t span_count) {
  // A write after finish() (e.g. a drain subscriber still attached on a
  // kAsync server) must not corrupt the already-footered document: assert
  // in debug, drop the events in release. Detach subscribers before
  // finishing to not lose spans.
  assert(!finished_ && "StreamingExporter: write after finish()");
  if (finished_ || chunk.empty()) return;
  // Every event in a chunk is ','-prefixed; the document-first event drops
  // the separator here, under the lock, where "first" is well-defined.
  if (!wrote_event_) chunk.remove_prefix(1);
  wrote_event_ = true;
  sink_.write(chunk);
  spans_written_ += span_count;
}

void StreamingExporter::write_span(const Span& span, SpanId parent) {
  std::string& scratch = tls_scratch();
  scratch.clear();
  scratch += ',';
  append_event(scratch, span, parent);
  std::lock_guard lk(mu_);
  append_chunk_locked(scratch, 1);
}

void StreamingExporter::write_batch(const SpanBatch& batch) {
  if (batch.empty()) return;
  std::string& scratch = tls_scratch();
  scratch.clear();
  for (const Span& s : batch) {
    scratch += ',';
    append_event(scratch, s, s.parent);
  }
  std::lock_guard lk(mu_);
  append_chunk_locked(scratch, batch.size());
}

void StreamingExporter::write_batches(const SpanBatches& batches) {
  // One batch at a time: scratch stays bounded by a single batch even when
  // a final flush() drains a long backlog in one subscriber call.
  for (const SpanBatch& batch : batches) write_batch(batch);
}

void StreamingExporter::set_meta(const TraceMeta& meta) {
  std::lock_guard lk(mu_);
  meta_ = meta;
}

void StreamingExporter::set_footer_section(std::string key, std::string json_value) {
  std::lock_guard lk(mu_);
  for (auto& [k, v] : footer_sections_) {
    if (k == key) {
      v = std::move(json_value);
      return;
    }
  }
  footer_sections_.emplace_back(std::move(key), std::move(json_value));
}

void StreamingExporter::finish() {
  std::lock_guard lk(mu_);
  if (finished_) return;
  if (format_ == ExportFormat::kChromeTrace) {
    // Name the per-level tracks.
    std::string& scratch = tls_scratch();
    scratch.clear();
    for (const int level : {kApplicationLevel, kModelLevel, kLayerLevel, kLibraryLevel,
                            kKernelLevel}) {
      scratch += ",{\"ph\":\"M\",\"pid\":1,\"tid\":";
      append_int(scratch, level);
      scratch += ",\"name\":\"thread_name\",\"args\":{\"name\":";
      append_escaped(scratch, level_name(level));
      scratch += "}}";
    }
    append_chunk_locked(scratch, 0);
    sink_.write("]}");
  } else {
    // export_bytes reports the cost of everything before the footer
    // (prologue + spans), so it is read before the footer text is built.
    const std::uint64_t export_bytes = sink_.bytes_written();
    std::string& out = tls_scratch();
    out.clear();
    out += ']';
    if (with_metadata_) {
      out += ",\"metadata\":{\"dropped_annotations\":";
      append_uint(out, meta_.dropped_annotations);
      out += ",\"shard_count\":";
      append_uint(out, meta_.shard_count);
      out += ",\"interned_strings\":";
      append_uint(out, meta_.interned_strings);
      out += ",\"interned_bytes\":";
      append_uint(out, meta_.interned_bytes);
      out += ",\"live_slots\":";
      append_uint(out, meta_.live_slots);
      out += ",\"retired_slots\":";
      append_uint(out, meta_.retired_slots);
      out += ",\"slot_bytes\":";
      append_uint(out, meta_.slot_bytes);
      out += ",\"remote_dropped_spans\":";
      append_uint(out, meta_.remote_dropped_spans);
      out += ",\"remote_reconnects\":";
      append_uint(out, meta_.remote_reconnects);
      out += ",\"sampled_kept\":";
      append_uint(out, meta_.sampled_kept);
      out += ",\"sampled_dropped\":";
      append_uint(out, meta_.sampled_dropped);
      out += ",\"strtab_budget_bytes\":";
      append_uint(out, meta_.strtab_budget_bytes);
      out += ",\"rejected_interns\":";
      append_uint(out, meta_.rejected_interns);
      out += ",\"span_count\":";
      append_uint(out, spans_written_);
      out += ",\"export_format\":";
      append_escaped(out, export_format_name(format_));
      out += ",\"export_bytes\":";
      append_uint(out, export_bytes);
      for (const auto& [key, value] : footer_sections_) {
        out += ',';
        append_escaped(out, key);
        out += ':';
        out += value;
      }
      out += "}}";
    }
    sink_.write(out);
  }
  finished_ = true;
  sink_.flush();
}

std::uint64_t StreamingExporter::spans_written() const {
  std::lock_guard lk(mu_);
  return spans_written_;
}

namespace {

/// Drive the streaming core over an assembled timeline into one string —
/// the materializing wrappers are this and nothing else, so their bytes
/// are the streaming exporter's bytes by construction.
std::string export_timeline(const Timeline& timeline, ExportFormat format,
                            const TraceMeta* meta) {
  std::string out;
  StreamingExporter exporter(
      format, [&out](std::string_view chunk) { out.append(chunk); }, meta != nullptr);
  if (meta != nullptr) exporter.set_meta(*meta);
  timeline.walk(
      [&exporter](const TimelineNode& node, int /*depth*/) {
        exporter.write_span(node.span, node.parent);
      });
  exporter.finish();
  return out;
}

}  // namespace

std::string to_chrome_trace(const Timeline& timeline) {
  return export_timeline(timeline, ExportFormat::kChromeTrace, nullptr);
}

std::string to_span_json(const Timeline& timeline) {
  return export_timeline(timeline, ExportFormat::kSpanJson, nullptr);
}

std::string to_span_json(const Timeline& timeline, const TraceMeta& meta) {
  return export_timeline(timeline, ExportFormat::kSpanJson, &meta);
}

}  // namespace xsp::trace
