#include "xsp/trace/export.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string_view>

namespace xsp::trace {

namespace {

void append_escaped(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

void append_args(std::ostringstream& os, const Span& span) {
  os << "\"args\":{";
  bool first = true;
  for (const auto& e : span.tags) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, e.key.view());
    os << ':';
    append_escaped(os, e.value.view());
  }
  for (const auto& e : span.metrics) {
    if (!first) os << ',';
    first = false;
    append_escaped(os, e.key.view());
    os << ':';
    append_number(os, e.value);
  }
  os << '}';
}

}  // namespace

std::string to_chrome_trace(const Timeline& timeline) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  timeline.walk([&](const TimelineNode& node, int /*depth*/) {
    const Span& s = node.span;
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.level << ",\"name\":";
    append_escaped(os, s.name.view());
    os << ",\"cat\":";
    append_escaped(os, level_name(s.level));
    // Trace-event timestamps are microseconds.
    os << ",\"ts\":" << static_cast<double>(s.begin) / 1e3
       << ",\"dur\":" << static_cast<double>(s.duration()) / 1e3 << ',';
    append_args(os, s);
    os << '}';
  });
  // Name the per-level tracks.
  for (const int level : {kApplicationLevel, kModelLevel, kLayerLevel, kLibraryLevel,
                          kKernelLevel}) {
    os << ",{\"ph\":\"M\",\"pid\":1,\"tid\":" << level
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_escaped(os, level_name(level));
    os << "}}";
  }
  os << "]}";
  return os.str();
}

namespace {

void append_span_array(std::ostringstream& os, const Timeline& timeline) {
  os << '[';
  bool first = true;
  timeline.walk([&](const TimelineNode& node, int /*depth*/) {
    const Span& s = node.span;
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << s.id << ",\"parent\":" << node.parent << ",\"level\":" << s.level
       << ",\"kind\":";
    append_escaped(os, kind_name(s.kind));
    os << ",\"name\":";
    append_escaped(os, s.name.view());
    os << ",\"tracer\":";
    append_escaped(os, s.tracer.view());
    os << ",\"begin_ns\":" << s.begin << ",\"end_ns\":" << s.end
       << ",\"correlation_id\":" << s.correlation_id << ',';
    if (s.dropped_annotations > 0) {
      os << "\"dropped_annotations\":" << s.dropped_annotations << ',';
    }
    append_args(os, s);
    os << '}';
  });
  os << ']';
}

}  // namespace

std::string to_span_json(const Timeline& timeline) {
  std::ostringstream os;
  append_span_array(os, timeline);
  return os.str();
}

std::string to_span_json(const Timeline& timeline, const TraceMeta& meta) {
  std::ostringstream os;
  os << "{\"metadata\":{\"dropped_annotations\":" << meta.dropped_annotations
     << ",\"shard_count\":" << meta.shard_count << ",\"span_count\":" << timeline.size()
     << "},\"spans\":";
  append_span_array(os, timeline);
  os << '}';
  return os.str();
}

}  // namespace xsp::trace
