// Convolution algorithms and the cuDNN-style selection heuristic.
//
// The paper repeatedly leans on cuDNN's behaviour:
//  * "For batch sizes less than 16, the cuDNN convolution API uses the
//     IMPLICIT_GEMM algorithm and invokes the GPU kernel
//     cudnn::detail::implicit_convolve_sgemm. ... For batch sizes greater
//     than 16, the cuDNN convolution API chooses ... IMPLICIT_PRECOMP_GEMM
//     ... which invokes volta_scudnn_128x64_relu_interior_nn_v1."
//                                                        — Section III-D3
//  * volta_cgemm_32x32_tn (FFT-style) serves the deep 7x7x512 layers of
//     ResNet50 at batch 256 (Table III, layers 208/221).
//  * Kernel families are architecture-prefixed (volta_* vs maxwell_*), and
//     the 128x64 vs 128x128 tile split differs between V100 and Quadro RTX
//     (Section IV-C).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xsp/dnn/tensor.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/sim/kernel.hpp"

namespace xsp::dnn {

/// cuDNN-style convolution algorithm identifiers.
enum class ConvAlgo : std::uint8_t {
  kImplicitGemm,         ///< CUDNN_CONVOLUTION_FWD_ALGO_IMPLICIT_GEMM
  kImplicitPrecompGemm,  ///< CUDNN_CONVOLUTION_FWD_ALGO_IMPLICIT_PRECOMP_GEMM
  kFft,                  ///< CUDNN_CONVOLUTION_FWD_ALGO_FFT (cgemm kernels)
  kWinograd,             ///< CUDNN_CONVOLUTION_FWD_ALGO_WINOGRAD
};

const char* conv_algo_name(ConvAlgo a);

/// Forward-convolution problem description.
struct ConvParams {
  std::int64_t batch = 1;
  std::int64_t in_channels = 1;
  std::int64_t in_h = 1;
  std::int64_t in_w = 1;
  std::int64_t out_channels = 1;
  std::int64_t kernel_h = 1;
  std::int64_t kernel_w = 1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  /// Per-dimension padding for rectangular kernels (1x7/7x1 factorized
  /// convolutions); -1 falls back to `pad`.
  std::int64_t pad_h = -1;
  std::int64_t pad_w = -1;
  /// groups == in_channels models DepthwiseConv2dNative.
  std::int64_t groups = 1;

  [[nodiscard]] std::int64_t effective_pad_h() const noexcept { return pad_h < 0 ? pad : pad_h; }
  [[nodiscard]] std::int64_t effective_pad_w() const noexcept { return pad_w < 0 ? pad : pad_w; }
  [[nodiscard]] std::int64_t out_h() const noexcept {
    return (in_h + 2 * effective_pad_h() - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::int64_t out_w() const noexcept {
    return (in_w + 2 * effective_pad_w() - kernel_w) / stride + 1;
  }
  [[nodiscard]] Shape4 input_shape() const noexcept { return {batch, in_channels, in_h, in_w}; }
  [[nodiscard]] Shape4 output_shape() const noexcept {
    return {batch, out_channels, out_h(), out_w()};
  }
  [[nodiscard]] double weight_bytes() const noexcept {
    return static_cast<double>(out_channels * (in_channels / groups) * kernel_h * kernel_w) *
           kElementBytes;
  }
  /// Multiply-accumulate counted as 2 flops.
  [[nodiscard]] double flops() const noexcept {
    return 2.0 * static_cast<double>(batch) * static_cast<double>(out_channels) *
           static_cast<double>(out_h()) * static_cast<double>(out_w()) *
           static_cast<double>(in_channels / groups) * static_cast<double>(kernel_h) *
           static_cast<double>(kernel_w);
  }
};

/// The batch- and shape-driven selection heuristic described above.
ConvAlgo choose_conv_algo(const ConvParams& p, sim::GpuArch arch);

/// Tile variant of the IMPLICIT_PRECOMP_GEMM kernel. Volta favours the
/// 128x64 tile on problems where Turing's heuristics pick 128x128
/// (Section IV-C: V100 calls 128x64 34 times where Quadro RTX calls it 18
/// times, dispatching the rest to 128x128).
enum class ScudnnTile : std::uint8_t { k128x64, k128x128 };
ScudnnTile choose_scudnn_tile(const ConvParams& p, sim::GpuArch arch);

/// The kernel sequence a convolution algorithm launches. The main kernel is
/// last; preceding kernels are the small setup launches (Figure 1 of the
/// paper shows ShuffleTensor and OffsetComp ahead of the scudnn kernel).
std::vector<sim::KernelDesc> conv_kernels(const ConvParams& p, ConvAlgo algo,
                                          const sim::GpuSpec& gpu);

/// Convenience: kernels for the heuristically selected algorithm.
std::vector<sim::KernelDesc> conv_kernels_auto(const ConvParams& p, const sim::GpuSpec& gpu);

}  // namespace xsp::dnn
