// Tensor shapes used by the DNN library and the framework layer.
#pragma once

#include <cstdint>
#include <string>

namespace xsp::dnn {

/// Bytes per element; every simulated model runs single-precision floats,
/// matching the paper's flop_count_sp-based analyses.
constexpr double kElementBytes = 4.0;

/// NCHW tensor shape. Degenerate dims are 1 (a vector is {n,c,1,1}).
struct Shape4 {
  std::int64_t n = 1;
  std::int64_t c = 1;
  std::int64_t h = 1;
  std::int64_t w = 1;

  [[nodiscard]] std::int64_t elements() const noexcept { return n * c * h * w; }
  [[nodiscard]] double bytes() const noexcept {
    return static_cast<double>(elements()) * kElementBytes;
  }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Shape4&, const Shape4&) = default;
};

inline std::string Shape4::str() const {
  return "<" + std::to_string(n) + ", " + std::to_string(c) + ", " + std::to_string(h) + ", " +
         std::to_string(w) + ">";
}

}  // namespace xsp::dnn
