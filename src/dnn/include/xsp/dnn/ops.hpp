// Non-convolution kernel builders: element-wise, GEMM, pooling, softmax,
// batch-norm, data movement.
//
// Two element-wise backends are modelled after the paper's framework
// comparison (Section IV-B): TensorFlow dispatches element-wise layers to
// Eigen kernels which "incur excessive DRAM reads and writes", while
// MXNet's own kernels touch less memory — the cause of MXNet MobileNets'
// 35-74% higher throughput at the optimal batch size.
#pragma once

#include <cstdint>
#include <string>

#include "xsp/dnn/tensor.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/sim/kernel.hpp"

namespace xsp::dnn {

/// Element-wise kernel provider.
enum class EwBackend : std::uint8_t {
  kEigen,   ///< TensorFlow's provider
  kMxMath,  ///< MXNet's provider
};

/// Element-wise operation types the simulated frameworks emit.
enum class EwOp : std::uint8_t {
  kMul,      ///< scalar_product_op (BN scale)
  kAdd,      ///< scalar_sum_op (BN shift / residual add)
  kMax,      ///< scalar_max_op (Relu lowered by TF)
  kRelu,     ///< dedicated relu kernel (MXNet path)
  kAddN,     ///< n-ary accumulation
  kSigmoid,  ///< logistic activation
  kTanh,     ///< tanh activation
};

const char* ew_op_name(EwOp op);

/// Build one element-wise kernel over `out` with `n_inputs` dense operands.
sim::KernelDesc elementwise_kernel(EwOp op, const Shape4& out, int n_inputs, EwBackend backend);

/// Dense GEMM: C[m,n] = A[m,k] * B[k,n] (fully-connected layers).
sim::KernelDesc gemm_kernel(std::int64_t m, std::int64_t n, std::int64_t k,
                            const sim::GpuSpec& gpu);

/// Bias broadcast-add over an activation tensor.
sim::KernelDesc bias_add_kernel(const Shape4& out, EwBackend backend);

/// Max/average pooling.
sim::KernelDesc pooling_kernel(const Shape4& in, std::int64_t window, std::int64_t stride,
                               bool average, const sim::GpuSpec& gpu);

/// Softmax over the channel dimension.
sim::KernelDesc softmax_kernel(const Shape4& in, const sim::GpuSpec& gpu);

/// Fused inference batch-norm (cuDNN BatchNormalizationForwardInference):
/// one kernel, one read + one write of the tensor. MXNet keeps BN fused;
/// TensorFlow decomposes it into Mul/Add element-wise kernels instead.
sim::KernelDesc batchnorm_inference_kernel(const Shape4& in, const sim::GpuSpec& gpu);

/// TensorFlow's native depthwise convolution kernel
/// (DepthwiseConv2dGPUKernelNCHW) — memory-bound, unlike cuDNN convs.
sim::KernelDesc depthwise_conv_kernel(const Shape4& in, const Shape4& out, std::int64_t kernel_hw,
                                      const sim::GpuSpec& gpu);

/// Layout transpose (NHWC<->NCHW and friends).
sim::KernelDesc transpose_kernel(const Shape4& in, const sim::GpuSpec& gpu);

/// `Where`-style tensor reshuffle over `elements` items — the layer type
/// dominating object-detection models (Section IV-A). Gather/scatter
/// access defeats coalescing, hence the poor effective bandwidth.
sim::KernelDesc where_kernel(std::int64_t elements, const sim::GpuSpec& gpu);

/// Concatenation along channels producing `out`.
sim::KernelDesc concat_kernel(const Shape4& out, const sim::GpuSpec& gpu);

/// Argmax/TopK style reduction over `in` (classification heads).
sim::KernelDesc reduce_kernel(const Shape4& in, const sim::GpuSpec& gpu);

/// Nearest/bilinear resize producing `out` (up-sampling decoders, SSD).
sim::KernelDesc resize_kernel(const Shape4& out, const sim::GpuSpec& gpu);

}  // namespace xsp::dnn
