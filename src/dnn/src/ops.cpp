#include "xsp/dnn/ops.hpp"

#include <algorithm>

namespace xsp::dnn {

namespace {

std::int64_t cdiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

int grid_for(std::int64_t work_items, std::int64_t per_block) {
  return static_cast<int>(std::max<std::int64_t>(1, cdiv(work_items, per_block)));
}

/// Eigen kernels move more DRAM traffic than the math strictly requires
/// (broadcast materialization, index tensors); MXNet's mshadow kernels are
/// close to the compulsory traffic.
struct BackendTraits {
  double read_factor;
  double write_factor;
  double occupancy_cap;
  double memory_efficiency;  ///< attainable fraction of peak DRAM bandwidth
};

BackendTraits backend_traits(EwBackend b) {
  switch (b) {
    case EwBackend::kEigen: return {1.08, 1.18, 0.50, 0.62};
    case EwBackend::kMxMath: return {1.00, 1.00, 0.64, 0.76};
  }
  return {1.0, 1.0, 1.0, 0.7};
}

std::string ew_kernel_name(EwOp op, EwBackend b) {
  if (b == EwBackend::kEigen) {
    switch (op) {
      case EwOp::kMul: return "Eigen::TensorCwiseBinaryOp<scalar_product_op>";
      case EwOp::kAdd: return "Eigen::TensorCwiseBinaryOp<scalar_sum_op>";
      case EwOp::kMax: return "Eigen::TensorCwiseBinaryOp<scalar_max_op>";
      case EwOp::kRelu: return "Eigen::TensorCwiseUnaryOp<scalar_relu_op>";
      case EwOp::kAddN: return "Eigen::TensorCwiseNaryOp<scalar_sum_op>";
      case EwOp::kSigmoid: return "Eigen::TensorCwiseUnaryOp<scalar_logistic_op>";
      case EwOp::kTanh: return "Eigen::TensorCwiseUnaryOp<scalar_tanh_op>";
    }
  }
  switch (op) {
    case EwOp::kMul: return "mxnet::op::mxnet_generic_kernel<mshadow_op::mul>";
    case EwOp::kAdd: return "mxnet::op::mxnet_generic_kernel<mshadow_op::plus>";
    case EwOp::kMax: return "mxnet::op::mxnet_generic_kernel<mshadow_op::maximum>";
    case EwOp::kRelu: return "mxnet::op::mxnet_generic_kernel<mshadow_op::relu>";
    case EwOp::kAddN: return "mxnet::op::ElementWiseSumKernel";
    case EwOp::kSigmoid: return "mxnet::op::mxnet_generic_kernel<mshadow_op::sigmoid>";
    case EwOp::kTanh: return "mxnet::op::mxnet_generic_kernel<mshadow_op::tanh>";
  }
  return "?";
}

/// Flops per output element. Comparisons are not floating-point operations,
/// so max/relu count zero — exactly what Table IV shows for scalar_max_op.
double ew_flops_per_element(EwOp op, int n_inputs) {
  switch (op) {
    case EwOp::kMul:
    case EwOp::kAdd:
      return 1.0;
    case EwOp::kMax:
    case EwOp::kRelu:
      return 0.0;
    case EwOp::kAddN:
      return std::max(1, n_inputs - 1);
    case EwOp::kSigmoid:
    case EwOp::kTanh:
      return 8.0;  // exp/division expansion
  }
  return 0.0;
}

}  // namespace

const char* ew_op_name(EwOp op) {
  switch (op) {
    case EwOp::kMul: return "Mul";
    case EwOp::kAdd: return "Add";
    case EwOp::kMax: return "Max";
    case EwOp::kRelu: return "Relu";
    case EwOp::kAddN: return "AddN";
    case EwOp::kSigmoid: return "Sigmoid";
    case EwOp::kTanh: return "Tanh";
  }
  return "?";
}

sim::KernelDesc elementwise_kernel(EwOp op, const Shape4& out, int n_inputs, EwBackend backend) {
  const BackendTraits t = backend_traits(backend);
  sim::KernelDesc k;
  k.name = ew_kernel_name(op, backend);
  k.klass = sim::KernelClass::kElementwise;
  k.grid = {grid_for(out.elements(), 1024), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 28;
  k.occupancy_cap = (op == EwOp::kMax || op == EwOp::kRelu) && backend == EwBackend::kEigen
                        ? 0.985  // Table IV: scalar_max_op achieves 98.4%
                        : t.occupancy_cap;
  k.memory_efficiency_override = t.memory_efficiency;
  k.flops = static_cast<double>(out.elements()) * ew_flops_per_element(op, n_inputs);
  k.dram_read_bytes = out.bytes() * std::max(1, n_inputs) * t.read_factor;
  k.dram_write_bytes = out.bytes() * t.write_factor;
  return k;
}

sim::KernelDesc gemm_kernel(std::int64_t m, std::int64_t n, std::int64_t k_dim,
                            const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = std::string(sim::arch_kernel_prefix(gpu.arch)) + "_sgemm_128x64_tn";
  k.klass = sim::KernelClass::kGemm;
  k.grid = {static_cast<int>(cdiv(m, 128) * cdiv(n, 64)), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 122;
  k.occupancy_cap = 0.24;
  k.flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k_dim);
  const double a_bytes = static_cast<double>(m) * static_cast<double>(k_dim) * kElementBytes;
  const double b_bytes = static_cast<double>(k_dim) * static_cast<double>(n) * kElementBytes;
  const double c_bytes = static_cast<double>(m) * static_cast<double>(n) * kElementBytes;
  const double passes = std::clamp(static_cast<double>(cdiv(n, 64)) * 0.25, 1.0, 1.5);
  k.dram_read_bytes = a_bytes * passes + b_bytes;
  k.dram_write_bytes = c_bytes;
  return k;
}

sim::KernelDesc bias_add_kernel(const Shape4& out, EwBackend backend) {
  sim::KernelDesc k = elementwise_kernel(EwOp::kAdd, out, 1, backend);
  k.name = backend == EwBackend::kEigen ? "tensorflow::BiasNCHWKernel"
                                        : "mxnet::op::bias_kernel";
  return k;
}

sim::KernelDesc pooling_kernel(const Shape4& in, std::int64_t window, std::int64_t stride,
                               bool average, const sim::GpuSpec& gpu) {
  const std::int64_t out_h = std::max<std::int64_t>(1, (in.h - window) / std::max<std::int64_t>(1, stride) + 1);
  const std::int64_t out_w = std::max<std::int64_t>(1, (in.w - window) / std::max<std::int64_t>(1, stride) + 1);
  const Shape4 out{in.n, in.c, out_h, out_w};
  sim::KernelDesc k;
  k.name = std::string("cudnn::pooling_fw_4d_kernel<") + (average ? "AVG" : "MAX") + ">";
  k.klass = sim::KernelClass::kReduction;
  k.grid = {grid_for(out.elements(), 256), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 32;
  k.occupancy_cap = 0.62;
  k.flops = average ? static_cast<double>(out.elements()) * static_cast<double>(window * window)
                    : 0.0;
  k.dram_read_bytes = in.bytes();
  k.dram_write_bytes = out.bytes();
  (void)gpu;
  return k;
}

sim::KernelDesc softmax_kernel(const Shape4& in, const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "cudnn::softmax_fw_kernel";
  k.klass = sim::KernelClass::kReduction;
  k.grid = {grid_for(in.n, 4), 1, 1};
  k.block = {128, 1, 1};
  k.registers_per_thread = 30;
  k.occupancy_cap = 0.5;
  k.flops = static_cast<double>(in.elements()) * 10.0;  // exp + normalize
  k.dram_read_bytes = in.bytes() * 2;                   // max pass + exp pass
  k.dram_write_bytes = in.bytes();
  (void)gpu;
  return k;
}

sim::KernelDesc batchnorm_inference_kernel(const Shape4& in, const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "cudnn::bn_fw_inf_1C11_kernel_NCHW";
  k.klass = sim::KernelClass::kElementwise;
  k.grid = {grid_for(in.elements(), 1024), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 32;
  k.occupancy_cap = 0.64;
  k.flops = static_cast<double>(in.elements()) * 2.0;  // scale + shift fused
  k.dram_read_bytes = in.bytes();
  k.dram_write_bytes = in.bytes();
  (void)gpu;
  return k;
}

sim::KernelDesc depthwise_conv_kernel(const Shape4& in, const Shape4& out, std::int64_t kernel_hw,
                                      const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "tensorflow::DepthwiseConv2dGPUKernelNCHW";
  k.klass = sim::KernelClass::kConvImplicitGemm;
  k.grid = {grid_for(out.elements(), 512), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 48;
  k.occupancy_cap = 0.44;
  k.flops = 2.0 * static_cast<double>(out.elements()) * static_cast<double>(kernel_hw * kernel_hw);
  k.dram_read_bytes = in.bytes() * 1.3 +
                      static_cast<double>(out.c * kernel_hw * kernel_hw) * kElementBytes;
  k.dram_write_bytes = out.bytes();
  (void)gpu;
  return k;
}

sim::KernelDesc transpose_kernel(const Shape4& in, const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "tensorflow::SwapDimension1And2InTensor3";
  k.klass = sim::KernelClass::kDataMovement;
  k.grid = {grid_for(in.elements(), 512), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 24;
  k.occupancy_cap = 0.72;
  k.dram_read_bytes = in.bytes() * 1.15;  // partially uncoalesced
  k.dram_write_bytes = in.bytes() * 1.15;
  (void)gpu;
  return k;
}

sim::KernelDesc where_kernel(std::int64_t elements, const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "tensorflow::WhereCudaKernel";
  k.klass = sim::KernelClass::kDataMovement;
  k.grid = {grid_for(elements, 256), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 32;
  k.occupancy_cap = 0.38;
  const double bytes = static_cast<double>(elements) * kElementBytes;
  k.dram_read_bytes = bytes * 2.6;  // predicate + gather with poor locality
  k.dram_write_bytes = bytes * 1.4;
  (void)gpu;
  return k;
}

sim::KernelDesc concat_kernel(const Shape4& out, const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "tensorflow::concat_variable_kernel";
  k.klass = sim::KernelClass::kDataMovement;
  k.grid = {grid_for(out.elements(), 1024), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 24;
  k.occupancy_cap = 0.70;
  k.dram_read_bytes = out.bytes();
  k.dram_write_bytes = out.bytes();
  (void)gpu;
  return k;
}

sim::KernelDesc reduce_kernel(const Shape4& in, const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "cub::DeviceReduceKernel";
  k.klass = sim::KernelClass::kReduction;
  k.grid = {grid_for(in.elements(), 2048), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 40;
  k.occupancy_cap = 0.55;
  k.flops = static_cast<double>(in.elements());
  k.dram_read_bytes = in.bytes();
  k.dram_write_bytes = in.bytes() / 64.0;
  (void)gpu;
  return k;
}

sim::KernelDesc resize_kernel(const Shape4& out, const sim::GpuSpec& gpu) {
  sim::KernelDesc k;
  k.name = "tensorflow::ResizeBilinearKernel";
  k.klass = sim::KernelClass::kElementwise;
  k.grid = {grid_for(out.elements(), 512), 1, 1};
  k.block = {256, 1, 1};
  k.registers_per_thread = 36;
  k.occupancy_cap = 0.6;
  k.flops = static_cast<double>(out.elements()) * 8.0;  // 4-tap lerp
  k.dram_read_bytes = out.bytes() * 1.5;
  k.dram_write_bytes = out.bytes();
  (void)gpu;
  return k;
}

}  // namespace xsp::dnn
