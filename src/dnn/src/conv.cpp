#include "xsp/dnn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace xsp::dnn {

namespace {

/// Ceiling division for positive integers.
std::int64_t cdiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// How many times the input is streamed from DRAM: output-channel tile
/// passes that miss in L2 re-read the input, but inter-tile reuse through
/// L2 keeps the effective amplification small on real kernels.
double input_read_amplification(const ConvParams& p, const sim::GpuSpec& gpu,
                                std::int64_t tile_n) {
  const double input_bytes = p.input_shape().bytes();
  if (input_bytes <= gpu.l2_cache_bytes) return 1.0;
  const auto passes = static_cast<double>(cdiv(p.out_channels, tile_n));
  return std::clamp(1.0 + 0.15 * (passes - 1.0), 1.0, 1.6);
}

}  // namespace

const char* conv_algo_name(ConvAlgo a) {
  switch (a) {
    case ConvAlgo::kImplicitGemm: return "IMPLICIT_GEMM";
    case ConvAlgo::kImplicitPrecompGemm: return "IMPLICIT_PRECOMP_GEMM";
    case ConvAlgo::kFft: return "FFT";
    case ConvAlgo::kWinograd: return "WINOGRAD";
  }
  return "?";
}

ConvAlgo choose_conv_algo(const ConvParams& p, sim::GpuArch arch) {
  // 1x1 convolutions are plain GEMMs; the precomputed-offset variant wins
  // at every batch size.
  if (p.kernel_h == 1 && p.kernel_w == 1) return ConvAlgo::kImplicitPrecompGemm;

  // Deep, spatially tiny layers with large batch: FFT-based cgemm
  // (Table III shows volta_cgemm_32x32_tn on the 512-channel 7x7 layers of
  // ResNet50 at batch 256).
  if (p.batch >= 128 && p.in_channels >= 512 && p.in_h <= 8 && p.in_w <= 8 &&
      p.kernel_h >= 3 && p.stride == 1) {
    return ConvAlgo::kFft;
  }

  // The paper's batch-size split (Section III-D3). Pre-Volta parts lack the
  // fast precomputed path for the smallest batches too, but cuDNN's
  // heuristic keys primarily on the GEMM M-dimension = N*OH*OW.
  (void)arch;
  if (p.batch < 16) return ConvAlgo::kImplicitGemm;
  return ConvAlgo::kImplicitPrecompGemm;
}

ScudnnTile choose_scudnn_tile(const ConvParams& p, sim::GpuArch arch) {
  const std::int64_t gemm_m = p.batch * p.out_h() * p.out_w();
  if (arch == sim::GpuArch::kTuring) {
    // Turing's heuristic promotes mid-size channel counts to the wider
    // tile, which is why Quadro RTX dispatches fewer 128x64 calls than
    // V100 on the same model (Section IV-C).
    return (p.out_channels >= 256 && gemm_m >= 4096) ? ScudnnTile::k128x128
                                                     : ScudnnTile::k128x64;
  }
  return (p.out_channels >= 512 && gemm_m >= 8192) ? ScudnnTile::k128x128 : ScudnnTile::k128x64;
}

std::vector<sim::KernelDesc> conv_kernels(const ConvParams& p, ConvAlgo algo,
                                          const sim::GpuSpec& gpu) {
  using sim::KernelClass;
  using sim::KernelDesc;

  const std::string prefix = sim::arch_kernel_prefix(gpu.arch);
  const double in_bytes = p.input_shape().bytes();
  const double out_bytes = p.output_shape().bytes();
  const double w_bytes = p.weight_bytes();
  const double flops = p.flops();

  std::vector<KernelDesc> kernels;

  switch (algo) {
    case ConvAlgo::kImplicitGemm: {
      KernelDesc k;
      k.name = "cudnn::detail::implicit_convolve_sgemm";
      k.klass = KernelClass::kConvImplicitGemm;
      const std::int64_t gemm_m = p.batch * p.out_h() * p.out_w();
      k.grid = {static_cast<int>(cdiv(gemm_m, 64) * cdiv(p.out_channels, 64)), 1, 1};
      k.block = {128, 1, 1};
      k.registers_per_thread = 110;
      k.occupancy_cap = 0.36;
      k.flops = flops;
      // Without precomputed offsets the kernel re-reads input rows per
      // filter tap neighbourhood: high arithmetic intensity but extra
      // input traffic relative to the precomp variant.
      k.dram_read_bytes = in_bytes * std::min(6.0, input_read_amplification(p, gpu, 64) * 1.5) +
                          w_bytes;
      k.dram_write_bytes = out_bytes;
      kernels.push_back(std::move(k));
      break;
    }

    case ConvAlgo::kImplicitPrecompGemm: {
      const ScudnnTile tile = choose_scudnn_tile(p, gpu.arch);
      const std::int64_t tile_n = tile == ScudnnTile::k128x64 ? 64 : 128;

      // Setup launch 1: input layout shuffle (Figure 1's "ShuffleTensor").
      KernelDesc shuffle;
      shuffle.name = "ShuffleInTensor3Simple";
      shuffle.klass = KernelClass::kDataMovement;
      shuffle.grid = {static_cast<int>(cdiv(p.input_shape().elements(), 1024)), 1, 1};
      shuffle.block = {256, 1, 1};
      shuffle.registers_per_thread = 24;
      const double shuffle_bytes = std::min(in_bytes, 64e6) * 0.25;
      shuffle.dram_read_bytes = shuffle_bytes;
      shuffle.dram_write_bytes = shuffle_bytes;
      kernels.push_back(std::move(shuffle));

      // Setup launch 2: offset precomputation (Figure 1's "OffsetComp").
      KernelDesc offsets;
      offsets.name = "computeOffsetsKernel";
      offsets.klass = KernelClass::kDataMovement;
      offsets.grid = {static_cast<int>(cdiv(p.kernel_h * p.kernel_w * p.in_channels, 256)), 1, 1};
      offsets.block = {256, 1, 1};
      offsets.registers_per_thread = 16;
      offsets.dram_write_bytes =
          static_cast<double>(p.kernel_h * p.kernel_w * p.in_channels) * 4.0;
      kernels.push_back(std::move(offsets));

      KernelDesc main;
      main.name = prefix + "_scudnn_128x" + std::to_string(tile_n) + "_relu_interior_nn_v1";
      main.klass = KernelClass::kConvImplicitPrecompGemm;
      const std::int64_t gemm_m = p.batch * p.out_h() * p.out_w();
      main.grid = {static_cast<int>(cdiv(gemm_m, 128) * cdiv(p.out_channels, tile_n)), 1, 1};
      main.block = {256, 1, 1};
      main.registers_per_thread = 128;
      main.occupancy_cap = tile == ScudnnTile::k128x64 ? 0.23 : 0.155;
      main.flops = flops;
      main.dram_read_bytes = in_bytes * input_read_amplification(p, gpu, tile_n) + w_bytes;
      main.dram_write_bytes = out_bytes;
      kernels.push_back(std::move(main));
      break;
    }

    case ConvAlgo::kFft: {
      // Transform, complex GEMM, inverse transform.
      KernelDesc fwd;
      fwd.name = "fft2d_r2c_16x16";
      fwd.klass = KernelClass::kDataMovement;
      fwd.grid = {static_cast<int>(cdiv(p.input_shape().elements(), 512)), 1, 1};
      fwd.block = {256, 1, 1};
      fwd.registers_per_thread = 40;
      fwd.flops = static_cast<double>(p.input_shape().elements()) * 10.0;
      fwd.dram_read_bytes = in_bytes + w_bytes;
      fwd.dram_write_bytes = (in_bytes + w_bytes) * 1.25;  // complex halves padded
      kernels.push_back(std::move(fwd));

      KernelDesc cgemm;
      cgemm.name = prefix + "_cgemm_32x32_tn";
      cgemm.klass = KernelClass::kConvFft;
      const std::int64_t gemm_m = p.batch * p.out_h() * p.out_w();
      cgemm.grid = {static_cast<int>(cdiv(gemm_m, 32) * cdiv(p.out_channels, 32)), 1, 1};
      cgemm.block = {256, 1, 1};
      cgemm.registers_per_thread = 255;
      cgemm.occupancy_cap = 0.122;
      // Complex multiply-add costs ~4x the real flops per point but the
      // transform removes the filter-tap factor; net ~1.3x the direct count
      // on these shapes (Table III: 77.4 vs 59.2 Gflops).
      cgemm.flops = flops * 1.31;
      cgemm.dram_read_bytes = (in_bytes + w_bytes) * 0.6;
      cgemm.dram_write_bytes = out_bytes * 0.35;
      kernels.push_back(std::move(cgemm));

      KernelDesc inv;
      inv.name = "fft2d_c2r_16x16";
      inv.klass = KernelClass::kDataMovement;
      inv.grid = {static_cast<int>(cdiv(p.output_shape().elements(), 512)), 1, 1};
      inv.block = {256, 1, 1};
      inv.registers_per_thread = 40;
      inv.flops = static_cast<double>(p.output_shape().elements()) * 10.0;
      inv.dram_read_bytes = out_bytes * 1.25;
      inv.dram_write_bytes = out_bytes;
      kernels.push_back(std::move(inv));
      break;
    }

    case ConvAlgo::kWinograd: {
      KernelDesc k;
      k.name = prefix + "_scudnn_winograd_128x128_ldg1_ldg4_relu_tile148t_nt_v1";
      k.klass = KernelClass::kConvWinograd;
      const std::int64_t tiles = cdiv(p.out_h(), 4) * cdiv(p.out_w(), 4) * p.batch;
      k.grid = {static_cast<int>(cdiv(tiles, 32) * cdiv(p.out_channels, 128)), 1, 1};
      k.block = {256, 1, 1};
      k.registers_per_thread = 168;
      k.occupancy_cap = 0.19;
      k.flops = flops * 0.58;  // Winograd F(4x4,3x3) multiply reduction
      k.dram_read_bytes = in_bytes * 1.6 + w_bytes * 2.0;
      k.dram_write_bytes = out_bytes * 1.15;
      kernels.push_back(std::move(k));
      break;
    }
  }
  return kernels;
}

std::vector<sim::KernelDesc> conv_kernels_auto(const ConvParams& p, const sim::GpuSpec& gpu) {
  return conv_kernels(p, choose_conv_algo(p, gpu.arch), gpu);
}

}  // namespace xsp::dnn
