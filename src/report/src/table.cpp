#include "xsp/report/table.hpp"

#include <algorithm>
#include <sstream>

namespace xsp::report {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << csv_escape(cells[c]);
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::markdown() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      os << (c + 1 < cells.size() ? " | " : " |");
    }
    os << '\n';
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace xsp::report
