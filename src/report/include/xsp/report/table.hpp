// Aligned-text / CSV / Markdown table rendering for benches and examples.
#pragma once

#include <string>
#include <vector>

namespace xsp::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add one row; missing cells render empty, extra cells are dropped.
  TextTable& add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Fixed-width aligned text with a header separator line.
  [[nodiscard]] std::string str() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string csv() const;

  /// GitHub-flavoured Markdown.
  [[nodiscard]] std::string markdown() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xsp::report
