// Analytic kernel cost and occupancy models.
//
// Kernel duration follows the roofline shape the paper's analyses assume:
// time is the max of compute time (flops over attainable FLOPS) and memory
// time (DRAM traffic over attainable bandwidth), plus a fixed device-side
// tail. Attainable rates depend on the kernel class and on achieved
// occupancy, so under-occupied kernels run below peak exactly as the
// paper's Table III/IV kernels do.
#pragma once

#include "xsp/common/time.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/sim/kernel.hpp"

namespace xsp::sim {

/// Per-class fractions of theoretical peak a kernel can attain at full
/// occupancy.
struct ClassEfficiency {
  double compute = 0.5;  ///< fraction of peak FLOPS
  double memory = 0.6;   ///< fraction of peak DRAM bandwidth
};

ClassEfficiency class_efficiency(KernelClass c);

/// Occupancy model outputs.
///
/// `achieved` is the CUPTI achieved_occupancy metric: average active warps
/// per active cycle over the per-SM maximum. Two effects dominate it:
/// (1) the theoretical limit from register/shared-mem pressure per block,
/// and (2) whether the grid supplies enough warps to fill all SMs.
///
/// `saturation` separates *why* occupancy is low: a kernel resource-capped
/// at 12% occupancy but with plenty of blocks per SM still runs at full
/// rate (ILP hides latency — the paper's volta_cgemm_32x32_tn sustains
/// 12.8 TFlops at 12.2% occupancy), whereas a kernel whose *grid* is too
/// small to cover the SMs genuinely underutilizes the device. Only the
/// latter throttles the attainable rates.
struct OccupancyInfo {
  double achieved = 0;
  double saturation = 1.0;  ///< grid warp supply relative to the capped need
};

OccupancyInfo occupancy_info(const KernelDesc& k, const GpuSpec& g);

/// Shorthand: the achieved_occupancy metric only.
double achieved_occupancy(const KernelDesc& k, const GpuSpec& g);

/// Simulated execution duration of `k` on `g`.
Ns kernel_duration(const KernelDesc& k, const GpuSpec& g, const OccupancyInfo& occ);

/// Back-compat overload: treats `occ` as both achieved occupancy and the
/// saturation driver (small-grid semantics).
Ns kernel_duration(const KernelDesc& k, const GpuSpec& g, double occ);

/// Duration of a host<->device copy.
Ns memcpy_duration(const MemcpyDesc& m, const GpuSpec& g);

/// Arithmetic intensity in flops/byte; 0 when the kernel touches no DRAM.
double arithmetic_intensity(double flops, double dram_bytes);

/// Arithmetic throughput in flops/s for a kernel of known latency.
double arithmetic_throughput(double flops, Ns latency);

/// Roofline classification: memory-bound iff arithmetic intensity is below
/// the device's ideal arithmetic intensity (paper, Section III-D3).
bool is_memory_bound(double flops, double dram_bytes, const GpuSpec& g);

}  // namespace xsp::sim
