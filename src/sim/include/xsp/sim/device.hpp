// GpuDevice: a deterministic discrete-event simulation of a CUDA GPU.
//
// The device executes kernels and memory copies on per-stream FIFO
// timelines driven by a shared virtual clock. Launches are asynchronous:
// the CPU-side runtime API call returns after `launch_api_ns` of simulated
// CPU time while the device-side execution is scheduled at the stream tail
// — exactly the structure XSP's launch/execution span pairs capture.
//
// Profiling hooks mirror what CUPTI offers on real hardware:
//   * API callbacks   — invoked synchronously around runtime API calls
//                       (CUPTI callback API analogue),
//   * activity records — buffered device-side execution records with
//                       correlation ids (CUPTI activity API analogue),
//   * replay           — metric collection re-executes kernels, multiplying
//                       device time (CUPTI metric/event replay analogue).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xsp/common/clock.hpp"
#include "xsp/common/rng.hpp"
#include "xsp/sim/cost_model.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/sim/kernel.hpp"

namespace xsp::sim {

using StreamId = int;
constexpr StreamId kDefaultStream = 0;

/// Information passed to runtime-API callback subscribers.
struct ApiCallbackInfo {
  enum class Api : std::uint8_t {
    kLaunchKernel,
    kMemcpy,
    kStreamSynchronize,
    kDeviceSynchronize,
  };
  Api api = Api::kLaunchKernel;
  std::uint64_t correlation_id = 0;  ///< 0 for synchronize calls
  std::string name;                  ///< kernel name / memcpy direction
  TimePoint begin = 0;               ///< CPU-side API entry
  TimePoint end = 0;                 ///< CPU-side API return
};

const char* api_name(ApiCallbackInfo::Api a);

/// A completed device-side activity (kernel execution or memcpy).
struct ActivityRecord {
  enum class Type : std::uint8_t { kKernel, kMemcpy };
  Type type = Type::kKernel;
  std::uint64_t correlation_id = 0;
  std::string name;
  StreamId stream = kDefaultStream;
  TimePoint begin = 0;
  TimePoint end = 0;
  double achieved_occupancy = 0;  ///< kernels only
  KernelDesc kernel;              ///< valid when type == kKernel
  MemcpyDesc copy;                ///< valid when type == kMemcpy

  [[nodiscard]] Ns duration() const noexcept { return end - begin; }
};

/// Result of one asynchronous launch, as seen from the CPU.
struct LaunchResult {
  std::uint64_t correlation_id = 0;
  TimePoint api_begin = 0;
  TimePoint api_end = 0;
  TimePoint exec_begin = 0;
  TimePoint exec_end = 0;
};

class GpuDevice {
 public:
  /// The device shares the CPU's virtual clock: API calls advance it,
  /// synchronization waits on it.
  GpuDevice(GpuSpec spec, SimClock& clock);

  [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] SimClock& clock() noexcept { return *clock_; }

  /// Create an additional stream; kDefaultStream always exists.
  StreamId create_stream();

  /// Asynchronously launch a kernel. Charges the CPU the runtime-API cost,
  /// schedules execution at the stream tail, fires API callbacks, and
  /// buffers an activity record.
  LaunchResult launch_kernel(StreamId stream, KernelDesc kernel);

  /// Asynchronously enqueue a host<->device copy.
  LaunchResult enqueue_memcpy(StreamId stream, MemcpyDesc copy);

  /// Block the CPU until all work on `stream` has completed.
  void synchronize_stream(StreamId stream);

  /// Block the CPU until all streams have drained.
  void synchronize();

  /// Serialized-launch mode: every launch blocks until the execution
  /// completes. This is the simulator's CUDA_LAUNCH_BLOCKING=1, used by XSP
  /// to disambiguate parallel events (paper, Section III-A).
  void set_serialized(bool on) noexcept { serialized_ = on; }
  [[nodiscard]] bool serialized() const noexcept { return serialized_; }

  /// Metric-collection replay: each kernel occupies the device `count`
  /// times (the activity record still reports a single execution, as CUPTI
  /// does). count >= 1.
  void set_replay_count(int count) noexcept { replay_count_ = count < 1 ? 1 : count; }
  [[nodiscard]] int replay_count() const noexcept { return replay_count_; }

  /// Subscribe to runtime-API callbacks. Subscribers run synchronously on
  /// the (simulated) CPU; any overhead they add via the clock is naturally
  /// attributed to the API call — as with real CUPTI callbacks. Returns a
  /// token for unsubscribe().
  using ApiCallback = std::function<void(const ApiCallbackInfo&)>;
  int subscribe(ApiCallback cb) {
    const int token = next_subscriber_++;
    callbacks_.emplace_back(token, std::move(cb));
    return token;
  }
  void unsubscribe(int token) {
    std::erase_if(callbacks_, [token](const auto& p) { return p.first == token; });
  }
  void clear_subscribers() { callbacks_.clear(); }

  /// Move out all buffered activity records (oldest first).
  [[nodiscard]] std::vector<ActivityRecord> drain_activities();

  /// Buffered activity records without draining.
  [[nodiscard]] const std::vector<ActivityRecord>& activities() const noexcept {
    return activities_;
  }

  /// Enable/disable activity buffering (disabled saves memory when no GPU
  /// profiler is attached).
  void set_record_activities(bool on) noexcept { record_activities_ = on; }

  /// Total kernels launched since construction/reset.
  [[nodiscard]] std::uint64_t kernels_launched() const noexcept { return kernels_launched_; }

  /// Forget all pending state between evaluation runs (streams' tails,
  /// buffered activities, counters). Subscribers are kept.
  void reset();

  /// Deterministic run-to-run timing noise: kernel durations are scaled by
  /// a uniform factor in [1-f, 1+f] drawn from a seeded generator. Off by
  /// default (f = 0); used to exercise the analysis pipeline's multi-run
  /// trimmed-mean summaries.
  void set_timing_jitter(double fraction, std::uint64_t seed) {
    jitter_fraction_ = fraction;
    jitter_rng_ = SplitMix64(seed);
  }

 private:
  void fire_callbacks(const ApiCallbackInfo& info);
  TimePoint stream_tail(StreamId stream) const;
  Ns apply_jitter(Ns duration);

  GpuSpec spec_;
  SimClock* clock_;
  std::unordered_map<StreamId, TimePoint> streams_{{kDefaultStream, 0}};
  StreamId next_stream_ = kDefaultStream + 1;
  std::vector<std::pair<int, ApiCallback>> callbacks_;
  int next_subscriber_ = 1;
  std::vector<ActivityRecord> activities_;
  bool record_activities_ = true;
  bool serialized_ = false;
  int replay_count_ = 1;
  std::uint64_t kernels_launched_ = 0;
  double jitter_fraction_ = 0;
  SplitMix64 jitter_rng_{0};
};

}  // namespace xsp::sim
