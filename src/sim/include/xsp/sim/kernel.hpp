// Kernel descriptors consumed by the simulated GPU device.
#pragma once

#include <cstdint>
#include <string>

namespace xsp::sim {

/// CUDA-style 3-component launch dimensions.
struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  [[nodiscard]] std::int64_t total() const noexcept {
    return static_cast<std::int64_t>(x) * y * z;
  }
};

/// Broad kernel classes with distinct efficiency characteristics. The cost
/// model maps each class to attainable fractions of peak FLOPS / bandwidth.
enum class KernelClass : std::uint8_t {
  kConvImplicitGemm,         ///< cudnn::detail::implicit_convolve_sgemm
  kConvImplicitPrecompGemm,  ///< *_scudnn_128x*_relu_interior_nn_v1
  kConvFft,                  ///< *_cgemm_* (FFT-based convolution)
  kConvWinograd,             ///< *_winograd_* tiles
  kGemm,                     ///< *_sgemm_* dense matrix multiply
  kElementwise,              ///< Eigen/MShadow pointwise kernels
  kReduction,                ///< softmax/pooling style reductions
  kDataMovement,             ///< transpose/shuffle/concat/where
};

const char* kernel_class_name(KernelClass c);

/// Everything the device needs to execute (simulate) one kernel: identity,
/// geometry, and analytic work/traffic counts. The counts play the role of
/// the hardware performance counters CUPTI reads on real silicon.
struct KernelDesc {
  std::string name;
  KernelClass klass = KernelClass::kElementwise;
  Dim3 grid;
  Dim3 block;
  double flops = 0;             ///< single-precision flop count (flop_count_sp)
  double dram_read_bytes = 0;   ///< DRAM -> L2 traffic (dram_read_bytes)
  double dram_write_bytes = 0;  ///< L2 -> DRAM traffic (dram_write_bytes)
  int registers_per_thread = 64;
  int shared_mem_per_block_bytes = 0;
  /// Upper bound on achieved occupancy from effects the resource model
  /// does not capture (memory-stall limited issue, tail quantization).
  double occupancy_cap = 1.0;
  /// When positive, overrides the kernel class's attainable fraction of
  /// peak DRAM bandwidth (library-specific memory-subsystem efficiency,
  /// e.g. Eigen's strided access vs MXNet's packed kernels).
  double memory_efficiency_override = 0;

  [[nodiscard]] double total_dram_bytes() const noexcept {
    return dram_read_bytes + dram_write_bytes;
  }
};

/// A host<->device memory copy request.
struct MemcpyDesc {
  enum class Direction : std::uint8_t { kHostToDevice, kDeviceToHost, kDeviceToDevice };
  Direction direction = Direction::kHostToDevice;
  double bytes = 0;
};

const char* memcpy_direction_name(MemcpyDesc::Direction d);

}  // namespace xsp::sim
