// GPU system descriptions — the five systems of the paper's Table VII.
//
// "Five systems with Turing, Volta, Pascal, and Maxwell GPUs are selected
//  for evaluation. We calculate the ideal arithmetic intensity of each
//  system using the theoretic FLOPS and memory bandwidth reported by
//  NVIDIA."                                              — paper, Table VII
#pragma once

#include <span>
#include <string>

#include "xsp/common/time.hpp"

namespace xsp::sim {

/// GPU micro-architecture generation. Drives which kernel family the DNN
/// library dispatches to (volta_* vs maxwell_* — paper, Section IV-C).
enum class GpuArch : std::uint8_t { kMaxwell, kPascal, kVolta, kTuring };

const char* arch_name(GpuArch a);

/// Kernel-name prefix cuDNN-style libraries use for an architecture.
/// "cuDNN uses optimized kernels for GPU generations after Volta"; older
/// generations fall back to the maxwell_* family (Section IV-C).
const char* arch_kernel_prefix(GpuArch a);

/// Static description of one GPU system (Table VII row).
struct GpuSpec {
  std::string name;  ///< system name as used in the paper, e.g. "Tesla_V100"
  std::string cpu;   ///< host CPU model
  std::string gpu;   ///< GPU board model
  GpuArch arch = GpuArch::kVolta;
  double peak_tflops = 0;   ///< theoretical single-precision TFLOPS
  double mem_bw_gbps = 0;   ///< global memory bandwidth, GB/s
  int sm_count = 0;         ///< number of streaming multiprocessors
  int max_warps_per_sm = 64;
  double l2_cache_bytes = 0;
  /// CPU-side cost of one kernel-launch runtime API call.
  Ns launch_api_ns = 3'500;
  /// Device-side latency between launch and kernel start when idle.
  Ns launch_latency_ns = 1'800;
  /// Host<->device copy bandwidth (PCIe / NVLink), GB/s.
  double pcie_bw_gbps = 11.0;

  /// peak FLOPS / memory bandwidth, in flops/byte. A kernel below this is
  /// memory-bound, above it compute-bound (roofline knee).
  [[nodiscard]] double ideal_arithmetic_intensity() const {
    return peak_tflops * 1e12 / (mem_bw_gbps * 1e9);
  }
};

/// The five Table VII systems.
const GpuSpec& quadro_rtx();
const GpuSpec& tesla_v100();
const GpuSpec& tesla_p100();
const GpuSpec& tesla_p4();
const GpuSpec& tesla_m60();

/// All five, in the paper's order.
std::span<const GpuSpec> all_systems();

/// Look up a system by its paper name ("Tesla_V100"); throws
/// std::invalid_argument if unknown.
const GpuSpec& system_by_name(const std::string& name);

}  // namespace xsp::sim
