#include "xsp/sim/device.hpp"

#include <algorithm>
#include <utility>

namespace xsp::sim {

const char* api_name(ApiCallbackInfo::Api a) {
  switch (a) {
    case ApiCallbackInfo::Api::kLaunchKernel: return "cudaLaunchKernel";
    case ApiCallbackInfo::Api::kMemcpy: return "cudaMemcpyAsync";
    case ApiCallbackInfo::Api::kStreamSynchronize: return "cudaStreamSynchronize";
    case ApiCallbackInfo::Api::kDeviceSynchronize: return "cudaDeviceSynchronize";
  }
  return "?";
}

GpuDevice::GpuDevice(GpuSpec spec, SimClock& clock) : spec_(std::move(spec)), clock_(&clock) {}

StreamId GpuDevice::create_stream() {
  const StreamId id = next_stream_++;
  streams_.emplace(id, clock_->now());
  return id;
}

TimePoint GpuDevice::stream_tail(StreamId stream) const {
  const auto it = streams_.find(stream);
  return it == streams_.end() ? clock_->now() : it->second;
}

void GpuDevice::fire_callbacks(const ApiCallbackInfo& info) {
  for (const auto& [token, cb] : callbacks_) {
    (void)token;
    cb(info);
  }
}

LaunchResult GpuDevice::launch_kernel(StreamId stream, KernelDesc kernel) {
  ++kernels_launched_;
  const std::uint64_t corr = kernels_launched_;

  // CPU side: the runtime API call.
  const TimePoint api_begin = clock_->now();
  const TimePoint api_end = clock_->advance(spec_.launch_api_ns);

  // Device side: execute at the stream tail, never before the launch lands.
  const OccupancyInfo occ = occupancy_info(kernel, spec_);
  const Ns duration = apply_jitter(kernel_duration(kernel, spec_, occ));
  const TimePoint ready = std::max(stream_tail(stream), api_end + spec_.launch_latency_ns);
  const TimePoint exec_begin = ready;
  const TimePoint exec_end = exec_begin + duration;
  // Replay for metric collection occupies the stream for the extra runs but
  // the reported execution window stays a single run, mirroring CUPTI.
  const TimePoint tail = exec_begin + duration * replay_count_;
  streams_[stream] = tail;

  if (record_activities_) {
    ActivityRecord rec;
    rec.type = ActivityRecord::Type::kKernel;
    rec.correlation_id = corr;
    rec.name = kernel.name;
    rec.stream = stream;
    rec.begin = exec_begin;
    rec.end = exec_end;
    rec.achieved_occupancy = occ.achieved;
    rec.kernel = std::move(kernel);
    activities_.push_back(std::move(rec));
  }

  ApiCallbackInfo info;
  info.api = ApiCallbackInfo::Api::kLaunchKernel;
  info.correlation_id = corr;
  info.name = record_activities_ ? activities_.back().name : std::string{};
  info.begin = api_begin;
  info.end = api_end;
  fire_callbacks(info);

  if (serialized_) clock_->advance_to(tail);

  return {corr, api_begin, api_end, exec_begin, exec_end};
}

LaunchResult GpuDevice::enqueue_memcpy(StreamId stream, MemcpyDesc copy) {
  ++kernels_launched_;
  const std::uint64_t corr = kernels_launched_;

  const TimePoint api_begin = clock_->now();
  const TimePoint api_end = clock_->advance(spec_.launch_api_ns / 2);

  const Ns duration = memcpy_duration(copy, spec_);
  const TimePoint ready = std::max(stream_tail(stream), api_end + spec_.launch_latency_ns);
  const TimePoint exec_begin = ready;
  const TimePoint exec_end = exec_begin + duration;
  streams_[stream] = exec_end;

  if (record_activities_) {
    ActivityRecord rec;
    rec.type = ActivityRecord::Type::kMemcpy;
    rec.correlation_id = corr;
    rec.name = std::string("Memcpy") + memcpy_direction_name(copy.direction);
    rec.stream = stream;
    rec.begin = exec_begin;
    rec.end = exec_end;
    rec.copy = copy;
    activities_.push_back(std::move(rec));
  }

  ApiCallbackInfo info;
  info.api = ApiCallbackInfo::Api::kMemcpy;
  info.correlation_id = corr;
  info.name = memcpy_direction_name(copy.direction);
  info.begin = api_begin;
  info.end = api_end;
  fire_callbacks(info);

  if (serialized_) clock_->advance_to(exec_end);

  return {corr, api_begin, api_end, exec_begin, exec_end};
}

Ns GpuDevice::apply_jitter(Ns duration) {
  if (jitter_fraction_ <= 0) return duration;
  const double factor = 1.0 + jitter_fraction_ * (jitter_rng_.next_double() * 2.0 - 1.0);
  return static_cast<Ns>(static_cast<double>(duration) * factor);
}

void GpuDevice::synchronize_stream(StreamId stream) {
  const TimePoint begin = clock_->now();
  clock_->advance_to(stream_tail(stream));

  ApiCallbackInfo info;
  info.api = ApiCallbackInfo::Api::kStreamSynchronize;
  info.begin = begin;
  info.end = clock_->now();
  fire_callbacks(info);
}

void GpuDevice::synchronize() {
  const TimePoint begin = clock_->now();
  TimePoint latest = clock_->now();
  for (const auto& [id, tail] : streams_) {
    (void)id;
    latest = std::max(latest, tail);
  }
  clock_->advance_to(latest);

  ApiCallbackInfo info;
  info.api = ApiCallbackInfo::Api::kDeviceSynchronize;
  info.begin = begin;
  info.end = clock_->now();
  fire_callbacks(info);
}

std::vector<ActivityRecord> GpuDevice::drain_activities() {
  return std::exchange(activities_, {});
}

void GpuDevice::reset() {
  streams_.clear();
  streams_.emplace(kDefaultStream, clock_->now());
  next_stream_ = kDefaultStream + 1;
  activities_.clear();
  kernels_launched_ = 0;
}

}  // namespace xsp::sim
