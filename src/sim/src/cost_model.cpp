#include "xsp/sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace xsp::sim {

const char* kernel_class_name(KernelClass c) {
  switch (c) {
    case KernelClass::kConvImplicitGemm: return "conv_implicit_gemm";
    case KernelClass::kConvImplicitPrecompGemm: return "conv_implicit_precomp_gemm";
    case KernelClass::kConvFft: return "conv_fft";
    case KernelClass::kConvWinograd: return "conv_winograd";
    case KernelClass::kGemm: return "gemm";
    case KernelClass::kElementwise: return "elementwise";
    case KernelClass::kReduction: return "reduction";
    case KernelClass::kDataMovement: return "data_movement";
  }
  return "?";
}

const char* memcpy_direction_name(MemcpyDesc::Direction d) {
  switch (d) {
    case MemcpyDesc::Direction::kHostToDevice: return "HtoD";
    case MemcpyDesc::Direction::kDeviceToHost: return "DtoH";
    case MemcpyDesc::Direction::kDeviceToDevice: return "DtoD";
  }
  return "?";
}

ClassEfficiency class_efficiency(KernelClass c) {
  // Fractions of theoretical peak attainable at full occupancy, set to the
  // levels the paper's measured kernels reach on V100 (e.g. the big scudnn
  // kernels sustain ~12.8 of 15.7 TFLOPS ~= 82%; Eigen element-wise kernels
  // sustain ~75% of DRAM bandwidth).
  switch (c) {
    case KernelClass::kConvImplicitGemm: return {.compute = 0.70, .memory = 0.60};
    case KernelClass::kConvImplicitPrecompGemm: return {.compute = 0.82, .memory = 0.65};
    case KernelClass::kConvFft: return {.compute = 0.86, .memory = 0.70};
    case KernelClass::kConvWinograd: return {.compute = 0.85, .memory = 0.65};
    case KernelClass::kGemm: return {.compute = 0.80, .memory = 0.65};
    case KernelClass::kElementwise: return {.compute = 0.10, .memory = 0.75};
    case KernelClass::kReduction: return {.compute = 0.15, .memory = 0.60};
    case KernelClass::kDataMovement: return {.compute = 0.05, .memory = 0.55};
  }
  return {};
}

namespace {

/// Theoretical occupancy limit from per-block resource pressure.
double theoretical_occupancy(const KernelDesc& k, const GpuSpec& g) {
  const double threads_per_block = static_cast<double>(k.block.total());
  const double warps_per_block = std::ceil(threads_per_block / 32.0);
  if (warps_per_block <= 0) return 0;

  // Register file: 64K 32-bit registers per SM on all simulated parts.
  constexpr double kRegistersPerSm = 65536.0;
  const double regs_per_block = threads_per_block * std::max(1, k.registers_per_thread);
  const double blocks_by_regs = std::max(1.0, std::floor(kRegistersPerSm / regs_per_block));

  // Shared memory: 96 KiB per SM.
  constexpr double kSharedPerSm = 96.0 * 1024;
  const double blocks_by_smem =
      k.shared_mem_per_block_bytes > 0
          ? std::max(1.0, std::floor(kSharedPerSm / k.shared_mem_per_block_bytes))
          : 32.0;

  // Hard cap of resident blocks per SM.
  const double blocks_per_sm = std::min({blocks_by_regs, blocks_by_smem, 32.0});
  const double warps_per_sm = blocks_per_sm * warps_per_block;
  return std::min(1.0, warps_per_sm / g.max_warps_per_sm);
}

}  // namespace

namespace {

/// Tiled GEMM-style kernels reach their steady-state rate only after a few
/// full waves of blocks have amortized the pipeline ramp and tail
/// quantization; one wave suffices for streaming kernels. This is the
/// mechanism behind throughput continuing to improve with batch size well
/// past the point where one wave fills the device (paper Figure 3).
double waves_for_full_rate(KernelClass c) {
  switch (c) {
    case KernelClass::kConvImplicitGemm:
    case KernelClass::kConvImplicitPrecompGemm:
    case KernelClass::kConvFft:
    case KernelClass::kConvWinograd:
    case KernelClass::kGemm:
      return 2.5;
    default:
      return 1.0;
  }
}

}  // namespace

OccupancyInfo occupancy_info(const KernelDesc& k, const GpuSpec& g) {
  const double theo = theoretical_occupancy(k, g);
  const double warps_per_block = std::ceil(static_cast<double>(k.block.total()) / 32.0);
  const double total_warps = static_cast<double>(k.grid.total()) * warps_per_block;
  // Warps available per SM if the grid were spread perfectly.
  const double supplied = total_warps / (g.sm_count * g.max_warps_per_sm);
  // Achieved occupancy can neither exceed the resource-limited theoretical
  // occupancy nor the warp supply; scheduling slack keeps it below both.
  constexpr double kSchedulingSlack = 0.92;
  const double occ = std::min(theo, supplied) * kSchedulingSlack;

  OccupancyInfo info;
  info.achieved = std::clamp(std::min(occ, k.occupancy_cap), 0.005, 1.0);
  // Saturation: has the grid supplied enough warps — for enough waves — to
  // reach the steady-state rate the kernel is designed for?
  const double target =
      std::max(0.02, std::min(theo, k.occupancy_cap)) * waves_for_full_rate(k.klass);
  info.saturation = std::clamp(supplied / target, 0.12, 1.0);
  return info;
}

double achieved_occupancy(const KernelDesc& k, const GpuSpec& g) {
  return occupancy_info(k, g).achieved;
}

Ns kernel_duration(const KernelDesc& k, const GpuSpec& g, const OccupancyInfo& occ) {
  const ClassEfficiency eff = class_efficiency(k.klass);
  // An under-supplied grid (saturation < 1) leaves SMs idle and degrades
  // the attainable rates; a fully supplied grid runs at the class rate
  // regardless of how low its resource-capped occupancy is.
  const double occ_factor = occ.saturation;

  const double mem_eff =
      k.memory_efficiency_override > 0 ? k.memory_efficiency_override : eff.memory;
  const double flops_rate = g.peak_tflops * 1e12 * eff.compute * occ_factor;
  const double mem_rate = g.mem_bw_gbps * 1e9 * mem_eff * (0.5 + 0.5 * occ_factor);

  const double t_compute = k.flops > 0 ? k.flops / flops_rate : 0;
  const double t_memory = k.total_dram_bytes() > 0 ? k.total_dram_bytes() / mem_rate : 0;
  const double t = std::max(t_compute, t_memory);

  // Fixed device-side pipeline tail per kernel (ramp-up + drain).
  constexpr Ns kTailNs = 2'500;
  return static_cast<Ns>(t * 1e9) + kTailNs;
}

Ns kernel_duration(const KernelDesc& k, const GpuSpec& g, double occ) {
  OccupancyInfo info;
  info.achieved = occ;
  info.saturation = std::clamp(occ / 0.25, 0.15, 1.0);
  return kernel_duration(k, g, info);
}

Ns memcpy_duration(const MemcpyDesc& m, const GpuSpec& g) {
  const double bw = m.direction == MemcpyDesc::Direction::kDeviceToDevice
                        ? g.mem_bw_gbps * 1e9 * 0.8
                        : g.pcie_bw_gbps * 1e9 * 0.8;
  constexpr Ns kSetupNs = 4'000;
  return static_cast<Ns>(m.bytes / bw * 1e9) + kSetupNs;
}

double arithmetic_intensity(double flops, double dram_bytes) {
  return dram_bytes > 0 ? flops / dram_bytes : 0;
}

double arithmetic_throughput(double flops, Ns latency) {
  return latency > 0 ? flops / to_seconds(latency) : 0;
}

bool is_memory_bound(double flops, double dram_bytes, const GpuSpec& g) {
  return arithmetic_intensity(flops, dram_bytes) < g.ideal_arithmetic_intensity();
}

}  // namespace xsp::sim
