#include "xsp/sim/gpu_spec.hpp"

#include <array>
#include <stdexcept>

namespace xsp::sim {

const char* arch_name(GpuArch a) {
  switch (a) {
    case GpuArch::kMaxwell: return "Maxwell";
    case GpuArch::kPascal: return "Pascal";
    case GpuArch::kVolta: return "Volta";
    case GpuArch::kTuring: return "Turing";
  }
  return "?";
}

const char* arch_kernel_prefix(GpuArch a) {
  switch (a) {
    case GpuArch::kMaxwell:
    case GpuArch::kPascal:
      return "maxwell";
    case GpuArch::kVolta:
    case GpuArch::kTuring:
      return "volta";
  }
  return "?";
}

namespace {

GpuSpec make_quadro_rtx() {
  GpuSpec s;
  s.name = "Quadro_RTX";
  s.cpu = "Intel Xeon E5-2630 v4 @ 2.20GHz";
  s.gpu = "Quadro RTX 6000";
  s.arch = GpuArch::kTuring;
  s.peak_tflops = 16.3;
  s.mem_bw_gbps = 624;
  s.sm_count = 72;
  s.l2_cache_bytes = 6.0 * 1024 * 1024;
  return s;
}

GpuSpec make_tesla_v100() {
  GpuSpec s;
  s.name = "Tesla_V100";
  s.cpu = "Intel Xeon E5-2686 v4 @ 2.30GHz";
  s.gpu = "Tesla V100-SXM2-16GB";
  s.arch = GpuArch::kVolta;
  s.peak_tflops = 15.7;
  s.mem_bw_gbps = 900;
  s.sm_count = 80;
  s.l2_cache_bytes = 6.0 * 1024 * 1024;
  s.pcie_bw_gbps = 40.0;  // NVLink-attached SXM2 board on the AWS P3
  return s;
}

GpuSpec make_tesla_p100() {
  GpuSpec s;
  s.name = "Tesla_P100";
  s.cpu = "Intel Xeon E5-2682 v4 @ 2.50GHz";
  s.gpu = "Tesla P100-PCIE-16GB";
  s.arch = GpuArch::kPascal;
  s.peak_tflops = 9.3;
  s.mem_bw_gbps = 732;
  s.sm_count = 56;
  s.l2_cache_bytes = 4.0 * 1024 * 1024;
  return s;
}

GpuSpec make_tesla_p4() {
  GpuSpec s;
  s.name = "Tesla_P4";
  s.cpu = "Intel Xeon E5-2682 v4 @ 2.50GHz";
  s.gpu = "Tesla P4";
  s.arch = GpuArch::kPascal;
  s.peak_tflops = 5.5;
  s.mem_bw_gbps = 192;
  s.sm_count = 20;
  s.l2_cache_bytes = 2.0 * 1024 * 1024;
  return s;
}

GpuSpec make_tesla_m60() {
  GpuSpec s;
  s.name = "Tesla_M60";
  s.cpu = "Intel Xeon E5-2686 v4 @ 2.30GHz";
  s.gpu = "Tesla M60";
  s.arch = GpuArch::kMaxwell;
  s.peak_tflops = 4.8;
  s.mem_bw_gbps = 160;
  s.sm_count = 16;
  s.l2_cache_bytes = 2.0 * 1024 * 1024;
  return s;
}

const std::array<GpuSpec, 5>& systems() {
  static const std::array<GpuSpec, 5> all = {make_quadro_rtx(), make_tesla_v100(),
                                             make_tesla_p100(), make_tesla_p4(),
                                             make_tesla_m60()};
  return all;
}

}  // namespace

const GpuSpec& quadro_rtx() { return systems()[0]; }
const GpuSpec& tesla_v100() { return systems()[1]; }
const GpuSpec& tesla_p100() { return systems()[2]; }
const GpuSpec& tesla_p4() { return systems()[3]; }
const GpuSpec& tesla_m60() { return systems()[4]; }

std::span<const GpuSpec> all_systems() { return systems(); }

const GpuSpec& system_by_name(const std::string& name) {
  for (const auto& s : systems()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown GPU system: " + name);
}

}  // namespace xsp::sim
