#include "xsp/models/registry.hpp"

#include <array>

#include "xsp/models/zoo.hpp"

namespace xsp::models {

namespace {

using BuildFn = std::function<framework::Graph(std::int64_t, bool)>;

ModelInfo make(int id, std::string name, std::string task, PaperRow paper, BuildFn build) {
  ModelInfo m;
  m.id = id;
  m.name = std::move(name);
  m.task = std::move(task);
  m.paper = paper;
  m.build = std::move(build);
  return m;
}

BuildFn resnet_fn(int version, std::array<int, 4> blocks, bool v15, std::string name) {
  return [=](std::int64_t batch, bool bn) { return resnet(name, batch, bn, version, blocks, v15); };
}

BuildFn mobilenet_fn(double alpha, std::int64_t res, std::string name) {
  return [=](std::int64_t batch, bool bn) { return mobilenet_v1(name, batch, bn, alpha, res); };
}

std::vector<ModelInfo> build_tensorflow_models() {
  std::vector<ModelInfo> m;
  m.reserve(55);

  // --- image classification (Table VIII ids 1-37) -------------------------
  m.push_back(make(1, "Inception_ResNet_v2", "IC", {80.40, 214, 23.24, 346.6, 128, 68.8},
                   [](std::int64_t b, bool bn) { return inception_resnet_v2("Inception_ResNet_v2", b, bn); }));
  m.push_back(make(2, "Inception_v4", "IC", {80.20, 163, 17.29, 436.7, 128, 75.7},
                   [](std::int64_t b, bool bn) { return inception_v4("Inception_v4", b, bn); }));
  m.push_back(make(3, "Inception_v3", "IC", {78.00, 91, 9.85, 811.0, 64, 72.8},
                   [](std::int64_t b, bool bn) { return inception_v3("Inception_v3", b, bn); }));
  m.push_back(make(4, "ResNet_v2_152", "IC", {77.80, 231, 14.05, 466.8, 256, 60.5},
                   resnet_fn(2, {3, 8, 36, 3}, false, "ResNet_v2_152")));
  m.push_back(make(5, "ResNet_v2_101", "IC", {77.00, 170, 10.39, 671.7, 256, 60.9},
                   resnet_fn(2, {3, 4, 23, 3}, false, "ResNet_v2_101")));
  m.push_back(make(6, "ResNet_v1_152", "IC", {76.80, 230, 13.70, 541.3, 256, 69.6},
                   resnet_fn(1, {3, 8, 36, 3}, false, "ResNet_v1_152")));
  m.push_back(make(7, "MLPerf_ResNet50_v1.5", "IC", {76.46, 103, 6.22, 930.7, 256, 58.7},
                   resnet_fn(1, {3, 4, 6, 3}, true, "MLPerf_ResNet50_v1.5")));
  m.push_back(make(8, "ResNet_v1_101", "IC", {76.40, 170, 10.01, 774.7, 256, 69.9},
                   resnet_fn(1, {3, 4, 23, 3}, false, "ResNet_v1_101")));
  m.push_back(make(9, "AI_Matrix_ResNet152", "IC", {75.93, 230, 14.61, 468.0, 256, 61.8},
                   resnet_fn(1, {3, 8, 36, 3}, true, "AI_Matrix_ResNet152")));
  m.push_back(make(10, "ResNet_v2_50", "IC", {75.60, 98, 6.23, 1119.7, 256, 58.1},
                   resnet_fn(2, {3, 4, 6, 3}, false, "ResNet_v2_50")));
  m.push_back(make(11, "ResNet_v1_50", "IC", {75.20, 98, 6.19, 1284.6, 256, 67.5},
                   resnet_fn(1, {3, 4, 6, 3}, false, "ResNet_v1_50")));
  m.push_back(make(12, "AI_Matrix_ResNet50", "IC", {74.38, 98, 5.99, 1060.3, 256, 57.9},
                   resnet_fn(1, {3, 4, 6, 3}, true, "AI_Matrix_ResNet50")));
  m.push_back(make(13, "Inception_v2", "IC", {73.90, 43, 6.45, 2032.0, 128, 68.2},
                   [](std::int64_t b, bool bn) { return inception_v2("Inception_v2", b, bn); }));
  m.push_back(make(14, "AI_Matrix_DenseNet121", "IC", {73.29, 31, 12.80, 846.4, 32, 49.3},
                   [](std::int64_t b, bool bn) { return densenet121("AI_Matrix_DenseNet121", b, bn); }));
  m.push_back(make(15, "MLPerf_MobileNet_v1", "IC", {71.68, 17, 3.15, 2576.4, 128, 52.0},
                   mobilenet_fn(1.0, 224, "MLPerf_MobileNet_v1")));
  m.push_back(make(16, "VGG16", "IC", {71.50, 528, 21.33, 687.5, 256, 74.7},
                   [](std::int64_t b, bool) { return vgg("VGG16", b, 16); }));
  m.push_back(make(17, "VGG19", "IC", {71.10, 548, 22.10, 593.4, 256, 76.7},
                   [](std::int64_t b, bool) { return vgg("VGG19", b, 19); }));
  m.push_back(make(18, "MobileNet_v1_1.0_224", "IC", {70.90, 16, 3.19, 2580.6, 128, 51.9},
                   mobilenet_fn(1.0, 224, "MobileNet_v1_1.0_224")));
  m.push_back(make(19, "AI_Matrix_GoogleNet", "IC", {70.01, 27, 5.35, 2464.5, 128, 62.9},
                   [](std::int64_t b, bool bn) { return inception_v1("AI_Matrix_GoogleNet", b, bn, true); }));
  m.push_back(make(20, "MobileNet_v1_1.0_192", "IC", {70.00, 16, 3.11, 3460.8, 128, 52.5},
                   mobilenet_fn(1.0, 192, "MobileNet_v1_1.0_192")));
  m.push_back(make(21, "Inception_v1", "IC", {69.80, 26, 5.30, 2576.6, 128, 63.7},
                   [](std::int64_t b, bool bn) { return inception_v1("Inception_v1", b, bn, true); }));
  m.push_back(make(22, "BVLC_GoogLeNet_Caffe", "IC", {68.70, 27, 6.53, 951.7, 8, 55.1},
                   [](std::int64_t b, bool bn) { return inception_v1("BVLC_GoogLeNet_Caffe", b, bn, false); }));
  m.push_back(make(23, "MobileNet_v1_0.75_224", "IC", {68.40, 10, 3.18, 3183.7, 64, 51.1},
                   mobilenet_fn(0.75, 224, "MobileNet_v1_0.75_224")));
  m.push_back(make(24, "MobileNet_v1_1.0_160", "IC", {68.00, 16, 3.01, 4240.5, 64, 55.4},
                   mobilenet_fn(1.0, 160, "MobileNet_v1_1.0_160")));
  m.push_back(make(25, "MobileNet_v1_0.75_192", "IC", {67.20, 10, 3.05, 4187.8, 64, 51.8},
                   mobilenet_fn(0.75, 192, "MobileNet_v1_0.75_192")));
  m.push_back(make(26, "MobileNet_v1_0.75_160", "IC", {65.30, 10, 2.81, 5569.6, 64, 53.1},
                   mobilenet_fn(0.75, 160, "MobileNet_v1_0.75_160")));
  m.push_back(make(27, "MobileNet_v1_1.0_128", "IC", {65.20, 16, 2.91, 6743.2, 64, 55.9},
                   mobilenet_fn(1.0, 128, "MobileNet_v1_1.0_128")));
  m.push_back(make(28, "MobileNet_v1_0.5_224", "IC", {63.30, 5.2, 3.55, 3346.5, 64, 63.0},
                   mobilenet_fn(0.5, 224, "MobileNet_v1_0.5_224")));
  m.push_back(make(29, "MobileNet_v1_0.75_128", "IC", {62.10, 10, 2.96, 8378.4, 64, 55.7},
                   mobilenet_fn(0.75, 128, "MobileNet_v1_0.75_128")));
  m.push_back(make(30, "MobileNet_v1_0.5_192", "IC", {61.70, 5.2, 3.28, 4453.2, 64, 63.3},
                   mobilenet_fn(0.5, 192, "MobileNet_v1_0.5_192")));
  m.push_back(make(31, "MobileNet_v1_0.5_160", "IC", {59.10, 5.2, 3.22, 6148.7, 64, 63.7},
                   mobilenet_fn(0.5, 160, "MobileNet_v1_0.5_160")));
  m.push_back(make(32, "BVLC_AlexNet_Caffe", "IC", {57.10, 233, 2.33, 2495.8, 16, 36.3},
                   [](std::int64_t b, bool) { return alexnet("BVLC_AlexNet_Caffe", b); }));
  m.push_back(make(33, "MobileNet_v1_0.5_128", "IC", {56.30, 5.2, 3.20, 8924.0, 64, 64.1},
                   mobilenet_fn(0.5, 128, "MobileNet_v1_0.5_128")));
  m.push_back(make(34, "MobileNet_v1_0.25_224", "IC", {49.80, 1.9, 3.40, 5257.9, 64, 60.6},
                   mobilenet_fn(0.25, 224, "MobileNet_v1_0.25_224")));
  m.push_back(make(35, "MobileNet_v1_0.25_192", "IC", {47.70, 1.9, 3.26, 7135.7, 64, 61.2},
                   mobilenet_fn(0.25, 192, "MobileNet_v1_0.25_192")));
  m.push_back(make(36, "MobileNet_v1_0.25_160", "IC", {45.50, 1.9, 3.15, 10081.5, 256, 68.4},
                   mobilenet_fn(0.25, 160, "MobileNet_v1_0.25_160")));
  m.push_back(make(37, "MobileNet_v1_0.25_128", "IC", {41.50, 1.9, 3.15, 10707.6, 256, 80.2},
                   mobilenet_fn(0.25, 128, "MobileNet_v1_0.25_128")));

  // --- object detection (ids 38-47) ---------------------------------------
  m.push_back(make(38, "Faster_RCNN_NAS", "OD", {43, 405, 5079.32, 0.6, 4, 85.2},
                   [](std::int64_t b, bool bn) { return faster_rcnn("Faster_RCNN_NAS", b, bn, "nas", true); }));
  m.push_back(make(39, "Faster_RCNN_ResNet101", "OD", {32, 187, 91.15, 14.67, 4, 13},
                   [](std::int64_t b, bool bn) { return faster_rcnn("Faster_RCNN_ResNet101", b, bn, "resnet101"); }));
  m.push_back(make(40, "SSD_MobileNet_v1_FPN", "OD", {32, 49, 47.44, 33.46, 8, 4.8},
                   [](std::int64_t b, bool bn) { return ssd("SSD_MobileNet_v1_FPN", b, bn, "mobilenet_v1", 640, 1); }));
  m.push_back(make(41, "Faster_RCNN_ResNet50", "OD", {30, 115, 81.19, 16.49, 4, 10.8},
                   [](std::int64_t b, bool bn) { return faster_rcnn("Faster_RCNN_ResNet50", b, bn, "resnet50"); }));
  m.push_back(make(42, "Faster_RCNN_Inception_v2", "OD", {28, 54, 61.88, 22.17, 4, 4.7},
                   [](std::int64_t b, bool bn) { return faster_rcnn("Faster_RCNN_Inception_v2", b, bn, "inception_v2"); }));
  m.push_back(make(43, "SSD_Inception_v2", "OD", {24, 97, 50.34, 32.26, 8, 2.5},
                   [](std::int64_t b, bool bn) { return ssd("SSD_Inception_v2", b, bn, "inception_v2", 300, 0); }));
  m.push_back(make(44, "MLPerf_SSD_MobileNet_v1_300x300", "OD", {23, 28, 47.49, 33.51, 8, 0.8},
                   [](std::int64_t b, bool bn) { return ssd("MLPerf_SSD_MobileNet_v1_300x300", b, bn, "mobilenet_v1", 300, 0); }));
  m.push_back(make(45, "SSD_MobileNet_v2", "OD", {22, 66, 48.72, 32.4, 8, 1.3},
                   [](std::int64_t b, bool bn) { return ssd("SSD_MobileNet_v2", b, bn, "mobilenet_v2", 300, 0); }));
  m.push_back(make(46, "MLPerf_SSD_ResNet34_1200x1200", "OD", {20, 81, 87.4, 11.44, 1, 14.9},
                   [](std::int64_t b, bool bn) { return ssd("MLPerf_SSD_ResNet34_1200x1200", b, bn, "resnet34", 1200, 0); }));
  m.push_back(make(47, "SSD_MobileNet_v1_PPN", "OD", {20, 10, 47.07, 33.1, 16, 0.6},
                   [](std::int64_t b, bool bn) { return ssd("SSD_MobileNet_v1_PPN", b, bn, "mobilenet_v1", 300, 2); }));

  // --- instance segmentation (ids 48-51) ----------------------------------
  m.push_back(make(48, "Mask_RCNN_Inception_ResNet_v2", "IS", {36, 254, 382.52, 2.92, 4, 29.2},
                   [](std::int64_t b, bool bn) { return mask_rcnn("Mask_RCNN_Inception_ResNet_v2", b, bn, "resnet101"); }));
  m.push_back(make(49, "Mask_RCNN_ResNet101_v2", "IS", {33, 212, 295.18, 3.6, 2, 42.4},
                   [](std::int64_t b, bool bn) { return mask_rcnn("Mask_RCNN_ResNet101_v2", b, bn, "resnet101"); }));
  m.push_back(make(50, "Mask_RCNN_ResNet50_v2", "IS", {29, 138, 231.22, 4.64, 2, 40.3},
                   [](std::int64_t b, bool bn) { return mask_rcnn("Mask_RCNN_ResNet50_v2", b, bn, "resnet50"); }));
  m.push_back(make(51, "Mask_RCNN_Inception_v2", "IS", {25, 64, 86.86, 17.25, 4, 5.7},
                   [](std::int64_t b, bool bn) { return mask_rcnn("Mask_RCNN_Inception_v2", b, bn, "inception_v2"); }));

  // --- semantic segmentation / super resolution (ids 52-55) ---------------
  m.push_back(make(52, "DeepLabv3_Xception_65", "SS", {87.8, 439, 72.55, 13.78, 1, 49.2},
                   [](std::int64_t b, bool bn) { return deeplab_v3("DeepLabv3_Xception_65", b, bn, "xception65"); }));
  m.push_back(make(53, "DeepLabv3_MobileNet_v2", "SS", {80.25, 8.8, 10.96, 91.27, 1, 42.1},
                   [](std::int64_t b, bool bn) { return deeplab_v3("DeepLabv3_MobileNet_v2", b, bn, "mobilenet_v2"); }));
  m.push_back(make(54, "DeepLabv3_MobileNet_v2_DM0.5", "SS", {71.83, 7.6, 9.5, 105.21, 1, 41.5},
                   [](std::int64_t b, bool bn) { return deeplab_v3("DeepLabv3_MobileNet_v2_DM0.5", b, bn, "mobilenet_v2_dm05"); }));
  m.push_back(make(55, "SRGAN", "SR", {0, 5.9, 70.29, 14.23, 1, 62.3},
                   [](std::int64_t b, bool bn) { return srgan("SRGAN", b, bn); }));
  return m;
}

std::vector<ModelInfo> build_mxnet_models() {
  // Table X: PaperRow.online_latency_ms holds the latency *normalized to
  // TensorFlow's* and max_throughput the normalized maximum throughput.
  std::vector<ModelInfo> m;
  m.push_back(make(4, "ResNet_v2_152", "IC", {0, 0, 1.76, 1.03, 256, 0},
                   resnet_fn(2, {3, 8, 36, 3}, false, "ResNet_v2_152")));
  m.push_back(make(5, "ResNet_v2_101", "IC", {0, 0, 1.59, 1.02, 256, 0},
                   resnet_fn(2, {3, 4, 23, 3}, false, "ResNet_v2_101")));
  m.push_back(make(6, "ResNet_v1_152", "IC", {0, 0, 1.68, 0.90, 256, 0},
                   resnet_fn(1, {3, 8, 36, 3}, false, "ResNet_v1_152")));
  m.push_back(make(8, "ResNet_v1_101", "IC", {0, 0, 1.60, 0.91, 256, 0},
                   resnet_fn(1, {3, 4, 23, 3}, false, "ResNet_v1_101")));
  m.push_back(make(10, "ResNet_v2_50", "IC", {0, 0, 1.41, 1.03, 256, 0},
                   resnet_fn(2, {3, 4, 6, 3}, false, "ResNet_v2_50")));
  m.push_back(make(11, "ResNet_v1_50", "IC", {0, 0, 1.32, 0.96, 256, 0},
                   resnet_fn(1, {3, 4, 6, 3}, false, "ResNet_v1_50")));
  m.push_back(make(18, "MobileNet_v1_1.0_224", "IC", {0, 0, 1.00, 1.54, 256, 0},
                   mobilenet_fn(1.0, 224, "MobileNet_v1_1.0_224")));
  m.push_back(make(23, "MobileNet_v1_0.75_224", "IC", {0, 0, 0.95, 1.76, 64, 0},
                   mobilenet_fn(0.75, 224, "MobileNet_v1_0.75_224")));
  m.push_back(make(28, "MobileNet_v1_0.5_224", "IC", {0, 0, 0.87, 1.35, 64, 0},
                   mobilenet_fn(0.5, 224, "MobileNet_v1_0.5_224")));
  m.push_back(make(34, "MobileNet_v1_0.25_224", "IC", {0, 0, 0.93, 1.64, 64, 0},
                   mobilenet_fn(0.25, 224, "MobileNet_v1_0.25_224")));
  return m;
}

}  // namespace

const std::vector<ModelInfo>& tensorflow_models() {
  static const std::vector<ModelInfo> models = build_tensorflow_models();
  return models;
}

const std::vector<ModelInfo>& mxnet_models() {
  static const std::vector<ModelInfo> models = build_mxnet_models();
  return models;
}

const ModelInfo* find_tensorflow_model(const std::string& name) {
  for (const auto& m : tensorflow_models()) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const ModelInfo* find_mxnet_model(int id) {
  for (const auto& m : mxnet_models()) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

std::vector<const ModelInfo*> image_classification_models() {
  std::vector<const ModelInfo*> out;
  for (const auto& m : tensorflow_models()) {
    if (m.task == "IC") out.push_back(&m);
  }
  return out;
}

}  // namespace xsp::models
