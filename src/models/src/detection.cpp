// Object-detection and instance-segmentation model builders
// (Table VIII ids 38-51).
//
// The paper's characterisation of these models (Section IV-A): except for
// Faster_RCNN_NAS, convolution layers contribute only 0.6-14.9% of the
// latency; "the dominating layer type is Where, which reshapes a tensor
// with respect to a user-defined operator". The dominant cost in the
// post-processing block is per-class non-max suppression over pairwise
// IoU-style matrices, which is what the Where layers below carry; the
// per-image `map_fn` unrolling makes the cost scale with batch size, which
// is why detection models see almost no batching benefit (optimal batch
// sizes of 1-16 in Table VIII).
#include <algorithm>

#include "xsp/models/builder.hpp"
#include "xsp/models/zoo.hpp"

namespace xsp::models {

namespace {

GraphBuilder& cbr(GraphBuilder& b, std::int64_t out_c, std::int64_t k, std::int64_t stride = 1) {
  return b.conv(out_c, k, stride).batch_norm().relu();
}

/// Truncated backbone feature extractors. Returns with the builder's shape
/// at the final feature map.
void backbone_features(GraphBuilder& b, const std::string& backbone, std::int64_t resolution) {
  b.input(3, resolution, resolution);
  if (backbone == "mobilenet_v1") {
    cbr(b, 32, 3, 2);
    const std::int64_t channels[] = {64, 128, 128, 256, 256, 512, 512, 512, 512, 512, 512, 1024};
    const std::int64_t strides[] = {1, 2, 1, 2, 1, 2, 1, 1, 1, 1, 1, 2};
    for (int i = 0; i < 12; ++i) {
      b.depthwise(3, strides[i]).batch_norm().relu();
      cbr(b, channels[i], 1, 1);
    }
  } else if (backbone == "mobilenet_v2") {
    cbr(b, 32, 3, 2);
    const std::int64_t channels[] = {16, 24, 32, 64, 96, 160, 320};
    const std::int64_t strides[] = {1, 2, 2, 2, 1, 2, 1};
    const int repeats[] = {1, 2, 3, 4, 3, 3, 1};
    for (int s = 0; s < 7; ++s) {
      for (int r = 0; r < repeats[s]; ++r) {
        const std::int64_t in_c = b.shape().c;
        cbr(b, in_c * 6, 1, 1);
        b.depthwise(3, r == 0 ? strides[s] : 1).batch_norm().relu();
        b.conv(channels[s], 1, 1).batch_norm();
      }
    }
  } else if (backbone == "inception_v2") {
    cbr(b, 64, 7, 2);
    b.max_pool(3, 2);
    cbr(b, 192, 3, 1);
    b.max_pool(3, 2);
    for (int i = 0; i < 7; ++i) {
      const Shape4 entry = b.shape();
      cbr(b, 128, 1);
      b.set_shape(entry);
      cbr(b, 96, 1);
      cbr(b, 128, 3);
      b.set_shape(entry);
      b.set_shape({entry.n, 256 + (i > 3 ? 256 : 0), entry.h, entry.w});
      b.concat(b.shape().c, 3);
      if (i == 3) b.max_pool(3, 2);
    }
  } else if (backbone == "resnet34") {
    cbr(b, 64, 7, 2);
    b.max_pool(3, 2);
    const int blocks[] = {3, 4, 6, 3};
    const std::int64_t channels[] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
      for (int blk = 0; blk < blocks[stage]; ++blk) {
        const std::int64_t stride = (stage > 0 && blk == 0) ? 2 : 1;
        const Shape4 entry = b.shape();
        cbr(b, channels[stage], 3, stride);
        b.conv(channels[stage], 3, 1).batch_norm();
        if (blk == 0 && stage > 0) {
          b.set_shape(entry);
          b.conv(channels[stage], 1, stride).batch_norm();
        }
        b.add_n(2).relu();
      }
    }
  } else {  // resnet50 / resnet101 bottleneck backbones
    const int stage3 = backbone == "resnet101" ? 23 : 6;
    cbr(b, 64, 7, 2);
    b.max_pool(3, 2);
    const int blocks[] = {3, 4, stage3, 3};
    const std::int64_t mids[] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
      for (int blk = 0; blk < blocks[stage]; ++blk) {
        const std::int64_t stride = (stage > 0 && blk == 0) ? 2 : 1;
        const Shape4 entry = b.shape();
        cbr(b, mids[stage], 1, stride);
        cbr(b, mids[stage], 3, 1);
        b.conv(mids[stage] * 4, 1, 1).batch_norm();
        if (blk == 0) {
          b.set_shape(entry);
          b.conv(mids[stage] * 4, 1, stride).batch_norm();
        }
        b.add_n(2).relu();
      }
    }
  }
}

/// The Where-dominated per-image post-processing block: score transform,
/// box decode, then per-class-group suppression over pairwise overlap
/// matrices. Unrolled per image (tf.map_fn), so the layer count — and the
/// latency — scales with the batch size.
void detection_postprocess(GraphBuilder& b, std::int64_t batch, std::int64_t anchors,
                           std::int64_t classes, int where_rounds_per_image,
                           std::int64_t overlap_dim) {
  // Batched decode on the raw predictions.
  b.set_shape({batch, classes, anchors, 1});
  b.sigmoid();                     // class scores
  b.set_shape({batch, 4, anchors, 1});
  b.transpose();                   // box layout change
  b.set_shape({batch, 4, anchors, 1});
  b.add();                         // anchor decode: scale + offset
  b.where();                       // score thresholding over all anchors

  for (std::int64_t img = 0; img < batch; ++img) {
    for (int round = 0; round < where_rounds_per_image; ++round) {
      // Pairwise overlap matrix for one class group of one image.
      b.set_shape({1, classes, overlap_dim, overlap_dim});
      b.where();
      b.set_shape({1, classes, overlap_dim, 1});
      b.reduce();
    }
    b.set_shape({1, 100, 6, 1});
    b.concat(100, where_rounds_per_image);  // surviving detections
  }
  b.set_shape({batch, 100, 6, 1});
  b.reshape({batch, 100, 6, 1});
}

}  // namespace

Graph ssd(const std::string& name, std::int64_t batch, bool decompose_bn,
          const std::string& backbone, std::int64_t resolution, int head_variant) {
  GraphBuilder b(name, batch, decompose_bn);
  backbone_features(b, backbone, resolution);

  // Extra feature layers + box/class heads over 6 scales.
  const Shape4 feat = b.shape();
  std::int64_t h = feat.h;
  for (int scale = 0; scale < 6 && h >= 1; ++scale, h = std::max<std::int64_t>(1, h / 2)) {
    if (head_variant == 1) {
      // FPN: lateral 1x1 + merge 3x3 per level.
      b.set_shape({feat.n, 256, h, h});
      cbr(b, 256, 1);
      cbr(b, 256, 3);
    } else if (head_variant == 2) {
      // PPN: shared pooled features, minimal convs.
      b.set_shape({feat.n, feat.c, h, h});
      b.max_pool(1, 1);
    } else if (scale > 0) {
      b.set_shape({feat.n, feat.c, h, h});
      cbr(b, 256, 1);
      cbr(b, 512, 3, 1);
    }
    // Box + class predictors.
    const Shape4 lvl = b.shape();
    b.conv(6 * 4, 3, 1);
    b.set_shape(lvl);
    b.conv(6 * 91, 3, 1);
    b.set_shape(lvl);
  }

  detection_postprocess(b, batch, /*anchors=*/1917, /*classes=*/91,
                        /*where_rounds_per_image=*/60, /*overlap_dim=*/400);
  return std::move(b).build();
}

Graph faster_rcnn(const std::string& name, std::int64_t batch, bool decompose_bn,
                  const std::string& backbone, bool nas) {
  GraphBuilder b(name, batch, decompose_bn);

  if (nas) {
    // NAS-FPN-style oversized backbone on 1200x1200 inputs: hundreds of
    // convolution layers on large feature maps; conv-dominated (85.2% in
    // Table VIII) and by far the slowest model in the zoo.
    b.input(3, 1200, 1200);
    cbr(b, 96, 3, 2);
    for (int cell = 0; cell < 18; ++cell) {
      const std::int64_t c = cell < 6 ? 504 : (cell < 12 ? 1008 : 2016);
      if (cell == 6 || cell == 12) b.max_pool(2, 2);
      const Shape4 entry = b.shape();
      // NASNet cell: separable convs on several branches.
      for (int branch = 0; branch < 5; ++branch) {
        b.set_shape(entry);
        b.depthwise(branch < 2 ? 5 : 3, 1).batch_norm().relu();
        cbr(b, c, 1);
      }
      b.set_shape({entry.n, c, entry.h, entry.w});
      b.concat(c, 5);
    }
  } else {
    backbone_features(b, backbone, 600);
  }

  // Region proposal network (lightweight convs; the heavy lifting in a
  // Faster R-CNN is the backbone and the per-proposal post-processing, not
  // the RPN -- Table VIII shows only 4.7-13% conv latency for these models).
  const Shape4 feat = b.shape();
  cbr(b, 256, 3);
  b.conv(24, 1, 1);  // objectness
  b.set_shape(feat);
  b.conv(48, 1, 1);  // box deltas
  b.set_shape({feat.n, 300, 14, 14});
  b.where();  // proposal selection

  // Per-proposal box head: 300 ROI-pooled 7x7 crops through a small FC
  // head, batched as one matmul.
  b.set_shape({feat.n * 300, 256, 7, 7});
  b.global_avg_pool();
  b.fc(1024).relu();
  b.fc(91 * 5);

  detection_postprocess(b, batch, /*anchors=*/300, /*classes=*/91,
                        /*where_rounds_per_image=*/nas ? 12 : 42, /*overlap_dim=*/460);
  return std::move(b).build();
}

Graph mask_rcnn(const std::string& name, std::int64_t batch, bool decompose_bn,
                const std::string& backbone) {
  // Faster R-CNN with an extra fully-convolutional mask head per proposal.
  Graph out = faster_rcnn(name, batch, decompose_bn, backbone, false);
  out.model_name = name;

  GraphBuilder mask(name + "/mask_head", batch, decompose_bn);
  mask.set_shape({batch * 100, 256, 14, 14});
  cbr(mask, 256, 3);
  cbr(mask, 256, 3);
  cbr(mask, 256, 3);
  cbr(mask, 256, 3);
  mask.resize(28, 28);
  mask.conv(91, 1, 1);
  mask.sigmoid();
  Graph mask_g = std::move(mask).build();
  for (auto& l : mask_g.layers) out.layers.push_back(std::move(l));
  return out;
}

}  // namespace xsp::models
