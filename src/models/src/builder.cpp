#include "xsp/models/builder.hpp"

#include <algorithm>

namespace xsp::models {

namespace {

/// TensorFlow-style op-scope naming: first instance "conv2d", later ones
/// "conv2d_1", "conv2d_2", ... with the op name appended ("conv2d/Conv2D").
std::string scope_prefix(LayerType type) {
  switch (type) {
    case LayerType::kConv2D: return "conv2d";
    case LayerType::kDepthwiseConv2D: return "depthwise_conv2d";
    case LayerType::kFusedBatchNorm: return "batch_normalization";
    case LayerType::kMul: return "batchnorm/mul";
    case LayerType::kAdd: return "batchnorm/add";
    case LayerType::kAddN: return "add_n";
    case LayerType::kRelu: return "activation";
    case LayerType::kSigmoid: return "sigmoid";
    case LayerType::kTanh: return "tanh";
    case LayerType::kMatMul: return "dense";
    case LayerType::kBiasAdd: return "bias";
    case LayerType::kSoftmax: return "softmax";
    case LayerType::kMaxPool: return "max_pooling2d";
    case LayerType::kAvgPool: return "average_pooling2d";
    case LayerType::kPad: return "pad";
    case LayerType::kConcat: return "concat";
    case LayerType::kTranspose: return "transpose";
    case LayerType::kWhere: return "postprocessor/where";
    case LayerType::kResize: return "resize";
    case LayerType::kReduce: return "reduce";
    case LayerType::kReshape: return "reshape";
    case LayerType::kData: return "data";
  }
  return "op";
}

}  // namespace

GraphBuilder::GraphBuilder(std::string model_name, std::int64_t batch, bool decompose_batchnorm)
    : decompose_batchnorm_(decompose_batchnorm) {
  graph_.model_name = std::move(model_name);
  cur_ = {batch, 1, 1, 1};
}

std::string GraphBuilder::next_name(LayerType type) {
  const int n = type_counts_[type]++;
  const std::string prefix = scope_prefix(type);
  const std::string scope = n == 0 ? prefix : prefix + "_" + std::to_string(n);
  return scope + "/" + layer_type_name(type);
}

Layer& GraphBuilder::append(LayerType type, const Shape4& output) {
  Layer l;
  l.type = type;
  l.name = next_name(type);
  l.input = cur_;
  l.output = output;
  cur_ = output;
  graph_.layers.push_back(std::move(l));
  return graph_.layers.back();
}

GraphBuilder& GraphBuilder::input(std::int64_t channels, std::int64_t h, std::int64_t w) {
  const Shape4 out{cur_.n, channels, h, w};
  Layer& l = append(LayerType::kData, out);
  l.name = "data/Data";
  return *this;
}

GraphBuilder& GraphBuilder::conv(std::int64_t out_channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t pad) {
  if (pad < 0) pad = kernel / 2;
  const std::int64_t oh = (cur_.h + 2 * pad - kernel) / stride + 1;
  const std::int64_t ow = (cur_.w + 2 * pad - kernel) / stride + 1;
  const Shape4 out{cur_.n, out_channels, oh, ow};
  const double params =
      static_cast<double>(out_channels * cur_.c * kernel * kernel) * dnn::kElementBytes;
  Layer& l = append(LayerType::kConv2D, out);
  l.kernel_hw = kernel;
  l.stride = stride;
  l.pad = pad;
  l.param_bytes = params;
  return *this;
}

GraphBuilder& GraphBuilder::conv_rect(std::int64_t out_channels, std::int64_t kernel_h,
                                      std::int64_t kernel_w, std::int64_t stride) {
  const std::int64_t pad_h = kernel_h / 2;
  const std::int64_t pad_w = kernel_w / 2;
  const std::int64_t oh = (cur_.h + 2 * pad_h - kernel_h) / stride + 1;
  const std::int64_t ow = (cur_.w + 2 * pad_w - kernel_w) / stride + 1;
  const Shape4 out{cur_.n, out_channels, oh, ow};
  const double params =
      static_cast<double>(out_channels * cur_.c * kernel_h * kernel_w) * dnn::kElementBytes;
  Layer& l = append(LayerType::kConv2D, out);
  l.kernel_hw = kernel_h;
  l.kernel_w2 = kernel_w;
  l.stride = stride;
  l.pad = pad_h;
  l.pad_w2 = pad_w;
  l.param_bytes = params;
  return *this;
}

GraphBuilder& GraphBuilder::depthwise(std::int64_t kernel, std::int64_t stride,
                                      std::int64_t pad) {
  if (pad < 0) pad = kernel / 2;
  const std::int64_t oh = (cur_.h + 2 * pad - kernel) / stride + 1;
  const std::int64_t ow = (cur_.w + 2 * pad - kernel) / stride + 1;
  const Shape4 out{cur_.n, cur_.c, oh, ow};
  Layer& l = append(LayerType::kDepthwiseConv2D, out);
  l.kernel_hw = kernel;
  l.stride = stride;
  l.pad = pad;
  l.param_bytes = static_cast<double>(cur_.c * kernel * kernel) * dnn::kElementBytes;
  return *this;
}

GraphBuilder& GraphBuilder::batch_norm() {
  const double param_bytes = static_cast<double>(cur_.c) * 4 * dnn::kElementBytes;
  if (decompose_batchnorm_) {
    // TF runtime lowering: scale then shift as separate layers.
    Layer& mul = append(LayerType::kMul, cur_);
    mul.n_inputs = 1;  // one dense operand + broadcast scalar vector
    mul.param_bytes = param_bytes / 2;
    Layer& add = append(LayerType::kAdd, cur_);
    add.n_inputs = 1;
    add.param_bytes = param_bytes / 2;
  } else {
    Layer& bn = append(LayerType::kFusedBatchNorm, cur_);
    bn.param_bytes = param_bytes;
  }
  return *this;
}

GraphBuilder& GraphBuilder::relu() {
  append(LayerType::kRelu, cur_);
  return *this;
}

GraphBuilder& GraphBuilder::sigmoid() {
  append(LayerType::kSigmoid, cur_);
  return *this;
}

GraphBuilder& GraphBuilder::tanh() {
  append(LayerType::kTanh, cur_);
  return *this;
}

GraphBuilder& GraphBuilder::bias() {
  Layer& l = append(LayerType::kBiasAdd, cur_);
  l.param_bytes = static_cast<double>(cur_.c) * dnn::kElementBytes;
  return *this;
}

GraphBuilder& GraphBuilder::add() {
  Layer& l = append(LayerType::kAdd, cur_);
  l.n_inputs = 2;
  return *this;
}

GraphBuilder& GraphBuilder::add_n(int n_inputs) {
  Layer& l = append(LayerType::kAddN, cur_);
  l.n_inputs = n_inputs;
  return *this;
}

GraphBuilder& GraphBuilder::max_pool(std::int64_t window, std::int64_t stride) {
  const std::int64_t oh = std::max<std::int64_t>(1, (cur_.h - window) / stride + 1);
  const std::int64_t ow = std::max<std::int64_t>(1, (cur_.w - window) / stride + 1);
  Layer& l = append(LayerType::kMaxPool, {cur_.n, cur_.c, oh, ow});
  l.kernel_hw = window;
  l.stride = stride;
  return *this;
}

GraphBuilder& GraphBuilder::avg_pool(std::int64_t window, std::int64_t stride) {
  const std::int64_t oh = std::max<std::int64_t>(1, (cur_.h - window) / stride + 1);
  const std::int64_t ow = std::max<std::int64_t>(1, (cur_.w - window) / stride + 1);
  Layer& l = append(LayerType::kAvgPool, {cur_.n, cur_.c, oh, ow});
  l.kernel_hw = window;
  l.stride = stride;
  return *this;
}

GraphBuilder& GraphBuilder::global_avg_pool() {
  Layer& l = append(LayerType::kAvgPool, {cur_.n, cur_.c, 1, 1});
  l.kernel_hw = cur_.h;
  l.stride = 1;
  return *this;
}

GraphBuilder& GraphBuilder::fc(std::int64_t units, bool bias) {
  const std::int64_t k = cur_.c * cur_.h * cur_.w;
  Layer& l = append(LayerType::kMatMul, {cur_.n, units, 1, 1});
  l.matmul_k = k;
  l.param_bytes = static_cast<double>(k * units) * dnn::kElementBytes;
  if (bias) {
    Layer& b = append(LayerType::kBiasAdd, cur_);
    b.param_bytes = static_cast<double>(units) * dnn::kElementBytes;
  }
  return *this;
}

GraphBuilder& GraphBuilder::softmax() {
  append(LayerType::kSoftmax, cur_);
  return *this;
}

GraphBuilder& GraphBuilder::pad_layer(std::int64_t pad) {
  append(LayerType::kPad, {cur_.n, cur_.c, cur_.h + 2 * pad, cur_.w + 2 * pad});
  return *this;
}

GraphBuilder& GraphBuilder::concat(std::int64_t total_channels, int n_inputs) {
  Layer& l = append(LayerType::kConcat, {cur_.n, total_channels, cur_.h, cur_.w});
  l.n_inputs = n_inputs;
  return *this;
}

GraphBuilder& GraphBuilder::transpose() {
  append(LayerType::kTranspose, cur_);
  return *this;
}

GraphBuilder& GraphBuilder::where() {
  append(LayerType::kWhere, cur_);
  return *this;
}

GraphBuilder& GraphBuilder::resize(std::int64_t h, std::int64_t w) {
  append(LayerType::kResize, {cur_.n, cur_.c, h, w});
  return *this;
}

GraphBuilder& GraphBuilder::reduce() {
  append(LayerType::kReduce, {cur_.n, cur_.c, 1, 1});
  return *this;
}

GraphBuilder& GraphBuilder::reshape(const Shape4& new_shape) {
  append(LayerType::kReshape, new_shape);
  return *this;
}

}  // namespace xsp::models
