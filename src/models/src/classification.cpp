// Image-classification model builders (Table VIII ids 1-37, Table X).
#include <algorithm>
#include <cmath>

#include "xsp/models/builder.hpp"
#include "xsp/models/zoo.hpp"

namespace xsp::models {

namespace {

/// Conv + BN + optional Relu, the workhorse block of every BN-based model.
GraphBuilder& cbr(GraphBuilder& b, std::int64_t out_c, std::int64_t k, std::int64_t stride = 1,
                  bool with_relu = true, std::int64_t pad = -1) {
  b.conv(out_c, k, stride, pad).batch_norm();
  if (with_relu) b.relu();
  return b;
}

/// Factorized 7-tap convolution: a 1x7 followed by a 7x1, each with BN +
/// Relu — how Inception v3/v4 actually lower their "7x7" branches. Costs
/// ~14/49 of a dense 7x7.
GraphBuilder& cbr_f7(GraphBuilder& b, std::int64_t out_c) {
  b.conv_rect(out_c, 1, 7).batch_norm();
  b.relu();
  b.conv_rect(out_c, 7, 1).batch_norm();
  b.relu();
  return b;
}

/// Round a channel count scaled by a depth multiplier to the usual multiple
/// of 8.
std::int64_t scale_c(std::int64_t c, double alpha) {
  const auto scaled = static_cast<std::int64_t>(std::round(c * alpha / 8.0)) * 8;
  return std::max<std::int64_t>(8, scaled);
}

}  // namespace

Graph resnet(const std::string& name, std::int64_t batch, bool decompose_bn, int version,
             const std::array<int, 4>& blocks, bool v15) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, 224, 224);

  // Stem: 7x7/2 conv + 3x3/2 max-pool.
  if (version == 1) {
    cbr(b, 64, 7, 2);
  } else {
    b.conv(64, 7, 2);  // v2 defers BN/Relu into the pre-activation blocks
  }
  b.max_pool(3, 2);

  const std::array<std::int64_t, 4> mid_channels{64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t mid = mid_channels[static_cast<std::size_t>(stage)];
    for (int block = 0; block < blocks[static_cast<std::size_t>(stage)]; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      const bool project = block == 0;  // channel/stride change needs a shortcut conv
      const Shape4 entry = b.shape();

      if (version == 2) b.batch_norm().relu();  // pre-activation
      if (v15) {
        // v1.5: stride lives on the 3x3 conv.
        cbr(b, mid, 1, 1);
        cbr(b, mid, 3, stride);
      } else {
        cbr(b, mid, 1, stride);
        cbr(b, mid, 3, 1);
      }
      b.conv(mid * 4, 1, 1);
      if (version == 1) b.batch_norm();
      const Shape4 main_out = b.shape();

      if (project) {
        b.set_shape(entry);
        b.conv(mid * 4, 1, stride);
        if (version == 1) b.batch_norm();
        b.set_shape(main_out);
      }
      b.add_n(2);  // residual merge runs as AddN (paper Figure 4a)
      if (version == 1) b.relu();
    }
  }
  if (version == 2) b.batch_norm().relu();

  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph mobilenet_v1(const std::string& name, std::int64_t batch, bool decompose_bn, double alpha,
                   std::int64_t resolution) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, resolution, resolution);
  cbr(b, scale_c(32, alpha), 3, 2);

  struct Block {
    std::int64_t out_c;
    std::int64_t stride;
  };
  constexpr std::array<Block, 13> kBlocks{{{64, 1},
                                           {128, 2},
                                           {128, 1},
                                           {256, 2},
                                           {256, 1},
                                           {512, 2},
                                           {512, 1},
                                           {512, 1},
                                           {512, 1},
                                           {512, 1},
                                           {512, 1},
                                           {1024, 2},
                                           {1024, 1}}};
  for (const auto& blk : kBlocks) {
    b.depthwise(3, blk.stride).batch_norm().relu();
    cbr(b, scale_c(blk.out_c, alpha), 1, 1);
  }
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph mobilenet_v2(const std::string& name, std::int64_t batch, bool decompose_bn, double alpha,
                   std::int64_t resolution) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, resolution, resolution);
  cbr(b, scale_c(32, alpha), 3, 2);

  struct Block {
    std::int64_t out_c;
    int repeats;
    std::int64_t stride;
    std::int64_t expand;
  };
  constexpr std::array<Block, 7> kBlocks{{{16, 1, 1, 1},
                                          {24, 2, 2, 6},
                                          {32, 3, 2, 6},
                                          {64, 4, 2, 6},
                                          {96, 3, 1, 6},
                                          {160, 3, 2, 6},
                                          {320, 1, 1, 6}}};
  for (const auto& blk : kBlocks) {
    for (int r = 0; r < blk.repeats; ++r) {
      const std::int64_t stride = r == 0 ? blk.stride : 1;
      const std::int64_t in_c = b.shape().c;
      const std::int64_t out_c = scale_c(blk.out_c, alpha);
      const bool residual = stride == 1 && in_c == out_c;
      const Shape4 entry = b.shape();
      if (blk.expand != 1) cbr(b, in_c * blk.expand, 1, 1);
      b.depthwise(3, stride).batch_norm().relu();
      cbr(b, out_c, 1, 1, /*with_relu=*/false);  // linear bottleneck
      if (residual) {
        const Shape4 out = b.shape();
        b.set_shape(entry).set_shape(out);
        b.add_n(2);
      }
    }
  }
  cbr(b, scale_c(1280, std::max(1.0, alpha)), 1, 1);
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph vgg(const std::string& name, std::int64_t batch, int depth) {
  GraphBuilder b(name, batch, /*decompose_bn=*/true);
  b.input(3, 224, 224);
  const int per_stage = depth == 19 ? 4 : 3;
  const std::array<std::int64_t, 5> channels{64, 128, 256, 512, 512};
  const std::array<int, 5> counts{2, 2, per_stage, per_stage, per_stage};
  for (std::size_t s = 0; s < channels.size(); ++s) {
    for (int i = 0; i < counts[s]; ++i) {
      b.conv(channels[s], 3, 1).bias().relu();
    }
    b.max_pool(2, 2);
  }
  b.fc(4096).relu().fc(4096).relu().fc(1000).softmax();
  return std::move(b).build();
}

Graph alexnet(const std::string& name, std::int64_t batch) {
  GraphBuilder b(name, batch, /*decompose_bn=*/true);
  b.input(3, 227, 227);
  b.conv(96, 11, 4, 0).bias().relu().max_pool(3, 2);
  b.conv(256, 5, 1).bias().relu().max_pool(3, 2);
  b.conv(384, 3, 1).bias().relu();
  b.conv(384, 3, 1).bias().relu();
  b.conv(256, 3, 1).bias().relu().max_pool(3, 2);
  b.fc(4096).relu().fc(4096).relu().fc(1000).softmax();
  return std::move(b).build();
}

namespace {

/// Classic GoogLeNet inception module: four parallel branches concatenated.
/// Executed linearly, branch by branch, as a single-stream framework would.
void inception_module(GraphBuilder& b, bool with_bn, std::int64_t c1, std::int64_t c3r,
                      std::int64_t c3, std::int64_t c5r, std::int64_t c5, std::int64_t cp) {
  const Shape4 entry = b.shape();
  const auto conv_block = [&](std::int64_t out_c, std::int64_t k) {
    b.conv(out_c, k, 1);
    if (with_bn) b.batch_norm();
    else b.bias();
    b.relu();
  };
  conv_block(c1, 1);
  b.set_shape(entry);
  conv_block(c3r, 1);
  conv_block(c3, 3);
  b.set_shape(entry);
  conv_block(c5r, 1);
  conv_block(c5, 5);
  b.set_shape(entry);
  b.max_pool(3, 1);
  b.set_shape({entry.n, entry.c, entry.h, entry.w});
  conv_block(cp, 1);
  b.set_shape({entry.n, c1 + c3 + c5 + cp, entry.h, entry.w});
  b.concat(c1 + c3 + c5 + cp, 4);
}

}  // namespace

Graph inception_v1(const std::string& name, std::int64_t batch, bool decompose_bn,
                   bool with_bn) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, 224, 224);
  const auto stem_conv = [&](std::int64_t c, std::int64_t k, std::int64_t s) {
    b.conv(c, k, s);
    if (with_bn) b.batch_norm();
    else b.bias();
    b.relu();
  };
  stem_conv(64, 7, 2);
  b.max_pool(3, 2);
  stem_conv(64, 1, 1);
  stem_conv(192, 3, 1);
  b.max_pool(3, 2);

  inception_module(b, with_bn, 64, 96, 128, 16, 32, 32);    // 3a
  inception_module(b, with_bn, 128, 128, 192, 32, 96, 64);  // 3b
  b.max_pool(3, 2);
  inception_module(b, with_bn, 192, 96, 208, 16, 48, 64);   // 4a
  inception_module(b, with_bn, 160, 112, 224, 24, 64, 64);  // 4b
  inception_module(b, with_bn, 128, 128, 256, 24, 64, 64);  // 4c
  inception_module(b, with_bn, 112, 144, 288, 32, 64, 64);  // 4d
  inception_module(b, with_bn, 256, 160, 320, 32, 128, 128);  // 4e
  b.max_pool(3, 2);
  inception_module(b, with_bn, 256, 160, 320, 32, 128, 128);  // 5a
  inception_module(b, with_bn, 384, 192, 384, 48, 128, 128);  // 5b
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph inception_v2(const std::string& name, std::int64_t batch, bool decompose_bn) {
  // BN-Inception: v1 topology with 5x5 branches replaced by double-3x3.
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, 224, 224);
  cbr(b, 64, 7, 2);
  b.max_pool(3, 2);
  cbr(b, 64, 1, 1);
  cbr(b, 192, 3, 1);
  b.max_pool(3, 2);

  const auto module = [&](std::int64_t c1, std::int64_t c3r, std::int64_t c3, std::int64_t cd,
                          std::int64_t cp) {
    const Shape4 entry = b.shape();
    cbr(b, c1, 1);
    b.set_shape(entry);
    cbr(b, c3r, 1);
    cbr(b, c3, 3);
    b.set_shape(entry);
    cbr(b, cd / 2, 1);
    cbr(b, cd, 3);
    cbr(b, cd, 3);
    b.set_shape(entry);
    b.avg_pool(3, 1);
    b.set_shape({entry.n, entry.c, entry.h, entry.w});
    cbr(b, cp, 1);
    b.set_shape({entry.n, c1 + c3 + cd + cp, entry.h, entry.w});
    b.concat(c1 + c3 + cd + cp, 4);
  };
  module(64, 64, 64, 96, 32);
  module(64, 64, 96, 96, 64);
  b.max_pool(3, 2);
  module(224, 64, 96, 128, 128);
  module(192, 96, 128, 128, 128);
  module(160, 128, 160, 160, 96);
  module(96, 128, 192, 192, 96);
  b.max_pool(3, 2);
  module(352, 192, 320, 224, 128);
  module(352, 192, 320, 224, 128);
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph inception_v3(const std::string& name, std::int64_t batch, bool decompose_bn) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, 299, 299);
  cbr(b, 32, 3, 2, true, 0);
  cbr(b, 32, 3, 1, true, 0);
  cbr(b, 64, 3, 1);
  b.max_pool(3, 2);
  cbr(b, 80, 1, 1);
  cbr(b, 192, 3, 1, true, 0);
  b.max_pool(3, 2);

  // 3x module A (35x35).
  for (int i = 0; i < 3; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 64, 1);
    b.set_shape(entry);
    cbr(b, 48, 1);
    cbr(b, 64, 5);
    b.set_shape(entry);
    cbr(b, 64, 1);
    cbr(b, 96, 3);
    cbr(b, 96, 3);
    b.set_shape(entry);
    b.avg_pool(3, 1);
    b.set_shape({entry.n, entry.c, entry.h, entry.w});
    cbr(b, i == 0 ? 32 : 64, 1);
    const std::int64_t out_c = 64 + 64 + 96 + (i == 0 ? 32 : 64);
    b.set_shape({entry.n, out_c, entry.h, entry.w});
    b.concat(out_c, 4);
  }
  // Reduction A.
  {
    const Shape4 entry = b.shape();
    cbr(b, 384, 3, 2, true, 0);
    b.set_shape(entry);
    cbr(b, 64, 1);
    cbr(b, 96, 3);
    cbr(b, 96, 3, 2, true, 0);
    const Shape4 reduced = b.shape();
    b.set_shape(entry);
    b.max_pool(3, 2);
    b.set_shape({reduced.n, 384 + 96 + entry.c, reduced.h, reduced.w});
    b.concat(384 + 96 + entry.c, 3);
  }
  // 4x module B (17x17, factorized 7x1/1x7 approximated as 7-wide convs).
  for (int i = 0; i < 4; ++i) {
    const std::int64_t mid = i == 0 ? 128 : (i == 3 ? 192 : 160);
    const Shape4 entry = b.shape();
    cbr(b, 192, 1);
    b.set_shape(entry);
    cbr(b, mid, 1);
    cbr_f7(b, mid);
    cbr_f7(b, 192);
    b.set_shape(entry);
    cbr(b, mid, 1);
    cbr_f7(b, mid);
    cbr_f7(b, mid);
    cbr_f7(b, 192);
    b.set_shape(entry);
    b.avg_pool(3, 1);
    b.set_shape({entry.n, entry.c, entry.h, entry.w});
    cbr(b, 192, 1);
    b.set_shape({entry.n, 768, entry.h, entry.w});
    b.concat(768, 4);
  }
  // Reduction B.
  {
    const Shape4 entry = b.shape();
    cbr(b, 192, 1);
    cbr(b, 320, 3, 2, true, 0);
    b.set_shape(entry);
    cbr(b, 192, 1);
    cbr_f7(b, 192);
    cbr(b, 192, 3, 2, true, 0);
    const Shape4 reduced = b.shape();
    b.set_shape(entry);
    b.max_pool(3, 2);
    b.set_shape({reduced.n, 320 + 192 + entry.c, reduced.h, reduced.w});
    b.concat(320 + 192 + entry.c, 3);
  }
  // 2x module C (8x8).
  for (int i = 0; i < 2; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 320, 1);
    b.set_shape(entry);
    cbr(b, 384, 1);
    cbr(b, 384, 3);
    cbr(b, 384, 3);
    b.set_shape(entry);
    cbr(b, 448, 1);
    cbr(b, 384, 3);
    cbr(b, 384, 3);
    cbr(b, 384, 3);
    b.set_shape(entry);
    b.avg_pool(3, 1);
    b.set_shape({entry.n, entry.c, entry.h, entry.w});
    cbr(b, 192, 1);
    b.set_shape({entry.n, 2048, entry.h, entry.w});
    b.concat(2048, 4);
  }
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph inception_v4(const std::string& name, std::int64_t batch, bool decompose_bn) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, 299, 299);
  cbr(b, 32, 3, 2, true, 0);
  cbr(b, 32, 3, 1, true, 0);
  cbr(b, 64, 3, 1);
  b.max_pool(3, 2);
  cbr(b, 96, 3, 1, true, 0);
  cbr(b, 64, 1);
  cbr(b, 96, 3, 1, true, 0);
  cbr(b, 192, 3, 2, true, 0);

  // 4x inception-A.
  for (int i = 0; i < 4; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 96, 1);
    b.set_shape(entry);
    cbr(b, 64, 1);
    cbr(b, 96, 3);
    b.set_shape(entry);
    cbr(b, 64, 1);
    cbr(b, 96, 3);
    cbr(b, 96, 3);
    b.set_shape(entry);
    b.avg_pool(3, 1);
    b.set_shape({entry.n, entry.c, entry.h, entry.w});
    cbr(b, 96, 1);
    b.set_shape({entry.n, 384, entry.h, entry.w});
    b.concat(384, 4);
  }
  // Reduction A.
  {
    const Shape4 entry = b.shape();
    cbr(b, 384, 3, 2, true, 0);
    b.set_shape(entry);
    cbr(b, 192, 1);
    cbr(b, 224, 3);
    cbr(b, 256, 3, 2, true, 0);
    const Shape4 reduced = b.shape();
    b.set_shape(entry);
    b.max_pool(3, 2);
    b.set_shape({reduced.n, 384 + 256 + entry.c, reduced.h, reduced.w});
    b.concat(384 + 256 + entry.c, 3);
  }
  // 7x inception-B.
  for (int i = 0; i < 7; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 384, 1);
    b.set_shape(entry);
    cbr(b, 192, 1);
    cbr_f7(b, 224);
    cbr_f7(b, 256);
    b.set_shape(entry);
    cbr(b, 192, 1);
    cbr_f7(b, 192);
    cbr_f7(b, 224);
    cbr_f7(b, 224);
    cbr_f7(b, 256);
    b.set_shape(entry);
    b.avg_pool(3, 1);
    b.set_shape({entry.n, entry.c, entry.h, entry.w});
    cbr(b, 128, 1);
    b.set_shape({entry.n, 1024, entry.h, entry.w});
    b.concat(1024, 4);
  }
  // Reduction B.
  {
    const Shape4 entry = b.shape();
    cbr(b, 192, 1);
    cbr(b, 192, 3, 2, true, 0);
    b.set_shape(entry);
    cbr(b, 256, 1);
    cbr_f7(b, 256);
    cbr_f7(b, 320);
    cbr(b, 320, 3, 2, true, 0);
    const Shape4 reduced = b.shape();
    b.set_shape(entry);
    b.max_pool(3, 2);
    b.set_shape({reduced.n, 192 + 320 + entry.c, reduced.h, reduced.w});
    b.concat(192 + 320 + entry.c, 3);
  }
  // 3x inception-C.
  for (int i = 0; i < 3; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 256, 1);
    b.set_shape(entry);
    cbr(b, 384, 1);
    cbr(b, 256, 3);
    cbr(b, 256, 3);
    b.set_shape(entry);
    cbr(b, 384, 1);
    cbr(b, 448, 3);
    cbr(b, 512, 3);
    cbr(b, 256, 3);
    cbr(b, 256, 3);
    b.set_shape(entry);
    b.avg_pool(3, 1);
    b.set_shape({entry.n, entry.c, entry.h, entry.w});
    cbr(b, 256, 1);
    b.set_shape({entry.n, 1536, entry.h, entry.w});
    b.concat(1536, 4);
  }
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph inception_resnet_v2(const std::string& name, std::int64_t batch, bool decompose_bn) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, 299, 299);
  cbr(b, 32, 3, 2, true, 0);
  cbr(b, 32, 3, 1, true, 0);
  cbr(b, 64, 3, 1);
  b.max_pool(3, 2);
  cbr(b, 80, 1);
  cbr(b, 192, 3, 1, true, 0);
  b.max_pool(3, 2);
  cbr(b, 320, 1);  // stem mixer (approximates the mixed-5b block)

  // 10x block35 with residual scaling.
  for (int i = 0; i < 10; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 32, 1);
    b.set_shape(entry);
    cbr(b, 32, 1);
    cbr(b, 32, 3);
    b.set_shape(entry);
    cbr(b, 32, 1);
    cbr(b, 48, 3);
    cbr(b, 64, 3);
    b.set_shape({entry.n, 128, entry.h, entry.w});
    b.concat(128, 3);
    b.conv(entry.c, 1, 1);  // projection back to entry channels
    b.set_shape(entry);
    b.add_n(2).relu();
  }
  // Reduction A.
  {
    const Shape4 entry = b.shape();
    cbr(b, 384, 3, 2, true, 0);
    b.set_shape(entry);
    cbr(b, 256, 1);
    cbr(b, 256, 3);
    cbr(b, 384, 3, 2, true, 0);
    const Shape4 reduced = b.shape();
    b.set_shape(entry);
    b.max_pool(3, 2);
    b.set_shape({reduced.n, 384 + 384 + entry.c, reduced.h, reduced.w});
    b.concat(384 + 384 + entry.c, 3);
  }
  // 20x block17.
  for (int i = 0; i < 20; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 192, 1);
    b.set_shape(entry);
    cbr(b, 128, 1);
    cbr_f7(b, 160);
    cbr_f7(b, 192);
    b.set_shape({entry.n, 384, entry.h, entry.w});
    b.concat(384, 2);
    b.conv(entry.c, 1, 1);
    b.set_shape(entry);
    b.add_n(2).relu();
  }
  // Reduction B.
  {
    const Shape4 entry = b.shape();
    cbr(b, 256, 1);
    cbr(b, 384, 3, 2, true, 0);
    b.set_shape(entry);
    cbr(b, 256, 1);
    cbr(b, 288, 3, 2, true, 0);
    b.set_shape(entry);
    cbr(b, 256, 1);
    cbr(b, 288, 3);
    cbr(b, 320, 3, 2, true, 0);
    const Shape4 reduced = b.shape();
    b.set_shape(entry);
    b.max_pool(3, 2);
    const std::int64_t out_c = 384 + 288 + 320 + entry.c;
    b.set_shape({reduced.n, out_c, reduced.h, reduced.w});
    b.concat(out_c, 4);
  }
  // 10x block8.
  for (int i = 0; i < 10; ++i) {
    const Shape4 entry = b.shape();
    cbr(b, 192, 1);
    b.set_shape(entry);
    cbr(b, 192, 1);
    cbr(b, 224, 3);
    cbr(b, 256, 3);
    b.set_shape({entry.n, 448, entry.h, entry.w});
    b.concat(448, 2);
    b.conv(entry.c, 1, 1);
    b.set_shape(entry);
    b.add_n(2).relu();
  }
  cbr(b, 1536, 1);
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

Graph densenet121(const std::string& name, std::int64_t batch, bool decompose_bn) {
  GraphBuilder b(name, batch, decompose_bn);
  b.input(3, 224, 224);
  cbr(b, 64, 7, 2);
  b.max_pool(3, 2);

  constexpr std::array<int, 4> kBlockSizes{6, 12, 24, 16};
  constexpr std::int64_t kGrowth = 32;
  std::int64_t channels = 64;
  for (std::size_t stage = 0; stage < kBlockSizes.size(); ++stage) {
    for (int layer = 0; layer < kBlockSizes[stage]; ++layer) {
      const Shape4 entry = b.shape();
      b.batch_norm().relu();
      cbr(b, 4 * kGrowth, 1);
      b.conv(kGrowth, 3, 1);
      channels += kGrowth;
      b.set_shape({entry.n, channels, entry.h, entry.w});
      b.concat(channels, 2);
    }
    if (stage + 1 < kBlockSizes.size()) {
      b.batch_norm().relu();
      channels /= 2;
      b.conv(channels, 1, 1);
      b.avg_pool(2, 2);
    }
  }
  b.batch_norm().relu();
  b.global_avg_pool().fc(1001).softmax();
  return std::move(b).build();
}

}  // namespace xsp::models
