// Semantic-segmentation and super-resolution builders
// (Table VIII ids 52-55).
#include <array>

#include "xsp/models/builder.hpp"
#include "xsp/models/zoo.hpp"

namespace xsp::models {

namespace {

GraphBuilder& cbr(GraphBuilder& b, std::int64_t out_c, std::int64_t k, std::int64_t stride = 1) {
  return b.conv(out_c, k, stride).batch_norm().relu();
}

/// Xception-style separable conv block.
void sep_conv(GraphBuilder& b, std::int64_t out_c, std::int64_t stride = 1) {
  b.depthwise(3, stride).batch_norm();
  cbr(b, out_c, 1, 1);
}

}  // namespace

Graph deeplab_v3(const std::string& name, std::int64_t batch, bool decompose_bn,
                 const std::string& backbone) {
  GraphBuilder b(name, batch, decompose_bn);
  constexpr std::int64_t kRes = 513;
  b.input(3, kRes, kRes);

  if (backbone == "xception65") {
    cbr(b, 32, 3, 2);
    cbr(b, 64, 3, 1);
    // Entry flow: three residual stacks of separable convs.
    for (std::int64_t c : {128, 256, 728}) {
      const Shape4 entry = b.shape();
      sep_conv(b, c);
      sep_conv(b, c);
      sep_conv(b, c, 2);
      const Shape4 main_out = b.shape();
      b.set_shape(entry);
      b.conv(c, 1, 2).batch_norm();
      b.set_shape(main_out);
      b.add_n(2);
    }
    // Middle flow: 16 residual units of 3 separable convs at 728 channels.
    for (int unit = 0; unit < 16; ++unit) {
      sep_conv(b, 728);
      sep_conv(b, 728);
      sep_conv(b, 728);
      b.add_n(2);
    }
    // Exit flow.
    sep_conv(b, 728);
    sep_conv(b, 1024);
    sep_conv(b, 1024);
    sep_conv(b, 1536);
    sep_conv(b, 1536);
    sep_conv(b, 2048);
  } else {
    // MobileNet v2 backbone, full or 0.5 depth-multiplier flavour.
    const double alpha = backbone == "mobilenet_v2_dm05" ? 0.5 : 1.0;
    const auto scale_c = [alpha](std::int64_t c) {
      const auto s = static_cast<std::int64_t>(c * alpha / 8) * 8;
      return s < 8 ? 8 : s;
    };
    cbr(b, scale_c(32), 3, 2);
    const std::int64_t channels[] = {16, 24, 32, 64, 96, 160, 320};
    const std::int64_t strides[] = {1, 2, 2, 2, 1, 1, 1};  // atrous: late stages keep stride 1
    const int repeats[] = {1, 2, 3, 4, 3, 3, 1};
    for (int s = 0; s < 7; ++s) {
      for (int r = 0; r < repeats[s]; ++r) {
        const std::int64_t in_c = b.shape().c;
        cbr(b, in_c * 6, 1, 1);
        b.depthwise(3, r == 0 ? strides[s] : 1).batch_norm().relu();
        b.conv(scale_c(channels[s]), 1, 1).batch_norm();
      }
    }
  }

  // ASPP: parallel atrous convs + image pooling, concatenated.
  const Shape4 feat = b.shape();
  cbr(b, 256, 1);
  for (int i = 0; i < 3; ++i) {
    b.set_shape(feat);
    cbr(b, 256, 3);  // atrous rates 6/12/18 cost like dense 3x3 here
  }
  b.set_shape(feat);
  b.global_avg_pool();
  cbr(b, 256, 1);
  b.resize(feat.h, feat.w);
  b.set_shape({feat.n, 256 * 5, feat.h, feat.w});
  b.concat(256 * 5, 5);
  cbr(b, 256, 1);
  b.conv(21, 1, 1);
  b.resize(kRes, kRes);  // logits back to input resolution
  b.softmax();
  return std::move(b).build();
}

Graph srgan(const std::string& name, std::int64_t batch, bool decompose_bn) {
  GraphBuilder b(name, batch, decompose_bn);
  constexpr std::int64_t kLowRes = 96;
  b.input(3, kLowRes, kLowRes);
  b.conv(64, 9, 1).relu();  // paper SRGAN uses PReLU; cost-equivalent

  // 16 residual blocks.
  for (int i = 0; i < 16; ++i) {
    cbr(b, 64, 3);
    b.conv(64, 3, 1).batch_norm();
    b.add_n(2);
  }
  b.conv(64, 3, 1).batch_norm();
  b.add_n(2);  // global skip

  // Two 2x upsampling stages (conv + pixel shuffle).
  for (int i = 0; i < 2; ++i) {
    b.conv(256, 3, 1);
    const Shape4 s = b.shape();
    b.set_shape({s.n, 64, s.h * 2, s.w * 2});
    b.transpose();  // pixel-shuffle data movement
    b.relu();
  }
  b.conv(3, 9, 1);
  b.tanh();
  return std::move(b).build();
}

}  // namespace xsp::models
