// Model graph builders for every family in the paper's Tables VIII and X.
//
// Every builder takes the batch size and the framework's batch-norm
// lowering mode (true = TF's Mul/Add decomposition, false = MXNet's fused
// BatchNorm) and returns the runtime layer sequence.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "xsp/framework/layer.hpp"

namespace xsp::models {

using framework::Graph;

// --- image classification ------------------------------------------------

/// ResNet bottleneck family.
/// `version` 1 or 2 (pre-activation); `v15` moves the downsampling stride
/// to the 3x3 convolution (the MLPerf ResNet50 v1.5 variant).
Graph resnet(const std::string& name, std::int64_t batch, bool decompose_bn, int version,
             const std::array<int, 4>& blocks, bool v15);

/// MobileNet v1 grid: depth multiplier alpha in {0.25,0.5,0.75,1.0},
/// input resolution in {128,160,192,224}.
Graph mobilenet_v1(const std::string& name, std::int64_t batch, bool decompose_bn, double alpha,
                   std::int64_t resolution);

/// MobileNet v2 (inverted residuals) — backbone for SSD/DeepLab variants.
Graph mobilenet_v2(const std::string& name, std::int64_t batch, bool decompose_bn,
                   double alpha = 1.0, std::int64_t resolution = 224);

Graph vgg(const std::string& name, std::int64_t batch, int depth /* 16 or 19 */);

Graph alexnet(const std::string& name, std::int64_t batch);

/// GoogLeNet / Inception v1; `with_bn` false gives the BVLC Caffe flavour.
Graph inception_v1(const std::string& name, std::int64_t batch, bool decompose_bn, bool with_bn);

Graph inception_v2(const std::string& name, std::int64_t batch, bool decompose_bn);
Graph inception_v3(const std::string& name, std::int64_t batch, bool decompose_bn);
Graph inception_v4(const std::string& name, std::int64_t batch, bool decompose_bn);
Graph inception_resnet_v2(const std::string& name, std::int64_t batch, bool decompose_bn);

Graph densenet121(const std::string& name, std::int64_t batch, bool decompose_bn);

// --- object detection -----------------------------------------------------

/// SSD-style single-shot detector: backbone + conv box/class heads + the
/// Where-dominated post-processing block the paper highlights.
/// `head_variant`: 0 = plain, 1 = FPN feature pyramid, 2 = PPN.
Graph ssd(const std::string& name, std::int64_t batch, bool decompose_bn,
          const std::string& backbone, std::int64_t resolution, int head_variant);

/// Faster R-CNN two-stage detector (backbone + RPN + per-proposal head).
/// `nas` enables the oversized NAS backbone (conv-dominated).
Graph faster_rcnn(const std::string& name, std::int64_t batch, bool decompose_bn,
                  const std::string& backbone, bool nas = false);

/// Mask R-CNN: Faster R-CNN plus a mask head.
Graph mask_rcnn(const std::string& name, std::int64_t batch, bool decompose_bn,
                const std::string& backbone);

// --- semantic segmentation / super resolution ------------------------------

/// DeepLabv3: `backbone` is "xception65", "mobilenet_v2" or
/// "mobilenet_v2_dm05".
Graph deeplab_v3(const std::string& name, std::int64_t batch, bool decompose_bn,
                 const std::string& backbone);

Graph srgan(const std::string& name, std::int64_t batch, bool decompose_bn);

}  // namespace xsp::models
