// Model registry: the 55 TensorFlow models of Table VIII and the 10 MXNet
// models of Table X, with the paper-reported reference values attached so
// benches can print paper-vs-measured comparisons.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xsp/framework/layer.hpp"

namespace xsp::models {

/// Values reported in the paper (Table VIII columns). Accuracy and graph
/// size are metadata we reproduce verbatim (no training happens here);
/// latency/throughput are the reference points our benches compare shapes
/// against.
struct PaperRow {
  double accuracy = 0;       ///< reported top-1 / mAP / mIOU
  double graph_size_mb = 0;  ///< frozen-graph size
  double online_latency_ms = 0;
  double max_throughput = 0;  ///< inputs/sec at the optimal batch size
  int optimal_batch = 1;
  double conv_latency_pct = 0;  ///< % latency from Conv2D + depthwise layers
};

struct ModelInfo {
  int id = 0;         ///< Table VIII / Table X id
  std::string name;   ///< e.g. "MLPerf_ResNet50_v1.5"
  std::string task;   ///< IC / OD / IS / SS / SR
  PaperRow paper;
  /// Build the runtime graph at a batch size; `decompose_bn` selects the
  /// TensorFlow (true) or MXNet (false) batch-norm lowering.
  std::function<framework::Graph(std::int64_t batch, bool decompose_bn)> build;
};

/// All 55 TensorFlow models, ordered by Table VIII id.
const std::vector<ModelInfo>& tensorflow_models();

/// The 10 MXNet models of Table X (ids match the comparable Table VIII
/// rows). PaperRow carries the *normalized* online latency / throughput in
/// accuracy-agnostic fields — see Table X.
const std::vector<ModelInfo>& mxnet_models();

/// Look up a TensorFlow model by name; nullptr if absent.
const ModelInfo* find_tensorflow_model(const std::string& name);

/// Look up an MXNet model by Table X id; nullptr if absent.
const ModelInfo* find_mxnet_model(int id);

/// The 37 image-classification models (Table IX subjects).
std::vector<const ModelInfo*> image_classification_models();

}  // namespace xsp::models
