// GraphBuilder: composes runtime layer sequences with shape tracking.
//
// Builders emit the *runtime* graph a framework executes. The
// `decompose_batchnorm` switch reproduces the framework-specific lowering
// the paper observes: TensorFlow runs Conv2D -> Mul -> Add -> Relu
// sequences for ResNet's Conv -> BN -> Relu modules (Section III-D2),
// while MXNet keeps a fused BatchNorm layer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "xsp/framework/layer.hpp"

namespace xsp::models {

using dnn::Shape4;
using framework::Graph;
using framework::Layer;
using framework::LayerType;

class GraphBuilder {
 public:
  GraphBuilder(std::string model_name, std::int64_t batch, bool decompose_batchnorm);

  /// The Data layer: placeholder + host->device input transfer.
  GraphBuilder& input(std::int64_t channels, std::int64_t h, std::int64_t w);

  /// Conv2D with square kernels; pad defaults to SAME-style (k/2).
  GraphBuilder& conv(std::int64_t out_channels, std::int64_t kernel, std::int64_t stride = 1,
                     std::int64_t pad = -1);

  /// Rectangular Conv2D (factorized 1x7/7x1 convolutions of the Inception
  /// family). SAME-style padding per dimension.
  GraphBuilder& conv_rect(std::int64_t out_channels, std::int64_t kernel_h,
                          std::int64_t kernel_w, std::int64_t stride = 1);

  /// DepthwiseConv2dNative (channel multiplier 1).
  GraphBuilder& depthwise(std::int64_t kernel, std::int64_t stride = 1, std::int64_t pad = -1);

  /// BatchNorm: Mul + Add layers (TF) or one FusedBatchNorm (MXNet).
  GraphBuilder& batch_norm();

  GraphBuilder& relu();
  GraphBuilder& sigmoid();
  GraphBuilder& tanh();

  /// Standalone BiasAdd over the current activation (bias-based models
  /// like VGG/AlexNet that carry no batch norm).
  GraphBuilder& bias();

  /// Residual element-wise add with another branch of the current shape.
  GraphBuilder& add();

  /// N-ary accumulation (DenseNet-style feature aggregation).
  GraphBuilder& add_n(int n_inputs);

  GraphBuilder& max_pool(std::int64_t window, std::int64_t stride);
  GraphBuilder& avg_pool(std::int64_t window, std::int64_t stride);
  /// Global average pooling to 1x1.
  GraphBuilder& global_avg_pool();

  /// Fully connected: MatMul (+BiasAdd). Flattens the current shape.
  GraphBuilder& fc(std::int64_t units, bool bias = true);

  GraphBuilder& softmax();

  /// Explicit padding layer growing H/W by `pad` on each side.
  GraphBuilder& pad_layer(std::int64_t pad);

  /// Channel concat: current shape's channels grow to `total_channels`.
  GraphBuilder& concat(std::int64_t total_channels, int n_inputs);

  GraphBuilder& transpose();

  /// Where-style reshuffle over the current tensor (detection pipelines).
  GraphBuilder& where();

  /// Bilinear resize to h x w.
  GraphBuilder& resize(std::int64_t h, std::int64_t w);

  GraphBuilder& reduce();
  GraphBuilder& reshape(const Shape4& new_shape);

  /// Current activation shape (for saving/restoring around branches).
  [[nodiscard]] const Shape4& shape() const noexcept { return cur_; }
  GraphBuilder& set_shape(const Shape4& s) {
    cur_ = s;
    return *this;
  }

  /// Number of layers emitted so far.
  [[nodiscard]] std::size_t layer_count() const noexcept { return graph_.layers.size(); }

  [[nodiscard]] Graph build() && { return std::move(graph_); }
  [[nodiscard]] const Graph& peek() const noexcept { return graph_; }

 private:
  Layer& append(LayerType type, const Shape4& output);
  std::string next_name(LayerType type);

  Graph graph_;
  Shape4 cur_;
  bool decompose_batchnorm_;
  std::map<LayerType, int> type_counts_;
};

}  // namespace xsp::models
