// A CUPTI-shaped profiling interface over the simulated GPU device.
//
// "The CUPTI library captures the CUDA API calls, GPU activities (GPU tasks
//  such as kernel executions and memory copies), and GPU kernel metrics
//  (low-level hardware counters such as GPU achieved occupancy, flop count,
//  and memory read/write for GPU kernels)."            — paper, Section III-B
//
// Three capture surfaces are provided, mirroring the real library:
//   * callback API  — per runtime-API-call records (cudaLaunchKernel, ...),
//   * activity API  — buffered device-side execution records with
//                     correlation ids,
//   * metric API    — per-kernel counter values; collection requires kernel
//                     replay, which is what makes metric profiling expensive
//                     ("GPU memory metrics ... can slow down execution by
//                     over 100x" — Section III-C).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "xsp/common/string_table.hpp"
#include "xsp/common/time.hpp"
#include "xsp/sim/device.hpp"

namespace xsp::cupti {

/// Metric names supported by the simulated counters — the four the paper's
/// analyses use (Section III-D3).
inline constexpr const char* kFlopCountSp = "flop_count_sp";
inline constexpr const char* kDramReadBytes = "dram_read_bytes";
inline constexpr const char* kDramWriteBytes = "dram_write_bytes";
inline constexpr const char* kAchievedOccupancy = "achieved_occupancy";

/// Replay passes required to collect one metric. The GPU exposes few
/// hardware counters, so capturing a metric set requires re-running each
/// kernel once per counter group; DRAM traffic counters need the most
/// groups, which is why memory metrics are the expensive ones.
int metric_replay_passes(const std::string& metric);

/// True if `metric` is one of the supported counter names.
bool is_known_metric(const std::string& metric);

/// All supported metric names.
const std::vector<std::string>& known_metrics();

struct CuptiOptions {
  /// Capture runtime API call records via the callback API.
  bool enable_api_callbacks = true;
  /// Capture device-side activity records (kernels, memcpys).
  bool enable_activities = true;
  /// Metrics to collect per kernel; empty disables metric profiling.
  std::vector<std::string> metrics;
  /// CPU cost charged inside each instrumented API callback.
  Ns callback_overhead_ns = us(40);
  /// CPU cost of handling one activity record (buffer management), charged
  /// on the launch path as the record is committed.
  Ns activity_overhead_ns = us(40);
  /// Activity-buffer flush work performed when the application blocks in a
  /// synchronization call (CUPTI drains completed records there).
  Ns sync_flush_overhead_ns = us(800);
  /// One-time costs of attaching/flushing the profiler.
  Ns init_overhead_ns = ms(75);
  Ns flush_overhead_ns = ms(75);
};

/// One captured runtime API call. The kernel name is interned: capturing a
/// record in the callback hot path stores a 32-bit id, not a string copy.
struct ApiRecord {
  sim::ApiCallbackInfo::Api api = sim::ApiCallbackInfo::Api::kLaunchKernel;
  std::uint64_t correlation_id = 0;
  common::StrId name;
  TimePoint begin = 0;
  TimePoint end = 0;
};

/// Per-kernel metric values, keyed by metric name.
using MetricValues = std::map<std::string, double>;

/// RAII profiling session. Construction validates options; start() attaches
/// to the device (and charges the attach cost); stop() detaches and charges
/// the flush cost. Records remain readable after stop().
class CuptiProfiler {
 public:
  /// Throws std::invalid_argument on an unknown metric name.
  CuptiProfiler(sim::GpuDevice& device, CuptiOptions options);
  ~CuptiProfiler();

  CuptiProfiler(const CuptiProfiler&) = delete;
  CuptiProfiler& operator=(const CuptiProfiler&) = delete;

  /// Attach: subscribe callbacks, enable activity buffering, and configure
  /// kernel replay + serialized launches when metrics are requested (metric
  /// collection on real hardware serializes and replays kernels).
  void start();

  /// Detach and restore the device's previous replay/serialization state.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] const CuptiOptions& options() const noexcept { return options_; }

  /// Total replay passes per kernel implied by the requested metric set
  /// (1 when no metrics are collected).
  [[nodiscard]] int replay_count() const noexcept { return replay_count_; }

  /// Captured runtime API call records, in capture order.
  [[nodiscard]] const std::vector<ApiRecord>& api_records() const noexcept {
    return api_records_;
  }

  /// Drain captured device-side activity records from the device.
  /// (Also called internally by stop().)
  void flush_activities();

  /// Activity records captured so far (after flush_activities()/stop()).
  [[nodiscard]] const std::vector<sim::ActivityRecord>& activity_records() const noexcept {
    return activities_;
  }

  /// Metric values per correlation id (empty unless metrics were requested).
  [[nodiscard]] const std::map<std::uint64_t, MetricValues>& metric_records() const noexcept {
    return metrics_;
  }

 private:
  sim::GpuDevice* device_;
  CuptiOptions options_;
  int replay_count_ = 1;
  bool running_ = false;
  int subscription_ = 0;
  bool saved_serialized_ = false;
  int saved_replay_ = 1;
  bool saved_record_activities_ = true;
  std::vector<ApiRecord> api_records_;
  std::vector<sim::ActivityRecord> activities_;
  std::map<std::uint64_t, MetricValues> metrics_;
};

}  // namespace xsp::cupti
