#include "xsp/cupti/cupti.hpp"

#include <stdexcept>
#include <utility>

namespace xsp::cupti {

namespace {

struct MetricInfo {
  const char* name;
  int replay_passes;
};

// DRAM traffic counters sit behind the fewest shared hardware counter
// registers and need the most replay passes; occupancy is derived from
// cheap SM counters.
constexpr MetricInfo kMetricTable[] = {
    {kFlopCountSp, 4},
    {kDramReadBytes, 12},
    {kDramWriteBytes, 12},
    {kAchievedOccupancy, 2},
};

}  // namespace

int metric_replay_passes(const std::string& metric) {
  for (const auto& m : kMetricTable) {
    if (metric == m.name) return m.replay_passes;
  }
  return 0;
}

bool is_known_metric(const std::string& metric) { return metric_replay_passes(metric) > 0; }

const std::vector<std::string>& known_metrics() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& m : kMetricTable) v.emplace_back(m.name);
    return v;
  }();
  return names;
}

CuptiProfiler::CuptiProfiler(sim::GpuDevice& device, CuptiOptions options)
    : device_(&device), options_(std::move(options)) {
  int passes = 0;
  for (const auto& m : options_.metrics) {
    const int p = metric_replay_passes(m);
    if (p == 0) throw std::invalid_argument("unknown GPU metric: " + m);
    passes += p;
  }
  replay_count_ = 1 + passes;
}

CuptiProfiler::~CuptiProfiler() {
  if (running_) stop();
}

void CuptiProfiler::start() {
  if (running_) return;
  running_ = true;

  device_->clock().advance(options_.init_overhead_ns);

  saved_serialized_ = device_->serialized();
  saved_replay_ = device_->replay_count();
  saved_record_activities_ = true;
  device_->set_record_activities(options_.enable_activities || !options_.metrics.empty());

  if (!options_.metrics.empty()) {
    // Metric collection replays each kernel per counter group and
    // serializes launches, exactly the cost structure of nvprof/Nsight.
    device_->set_replay_count(replay_count_);
    device_->set_serialized(true);
  }

  if (options_.enable_api_callbacks) {
    subscription_ = device_->subscribe([this](const sim::ApiCallbackInfo& info) {
      // Callback body runs on the simulated CPU: charge its cost.
      device_->clock().advance(options_.callback_overhead_ns);
      ApiRecord rec;
      rec.api = info.api;
      rec.correlation_id = info.correlation_id;
      rec.name = info.name;
      rec.begin = info.begin;
      rec.end = device_->clock().now();
      api_records_.push_back(std::move(rec));
      if (info.api == sim::ApiCallbackInfo::Api::kLaunchKernel ||
          info.api == sim::ApiCallbackInfo::Api::kMemcpy) {
        // Activity-buffer bookkeeping happens on the launch path too.
        if (options_.enable_activities) {
          device_->clock().advance(options_.activity_overhead_ns);
        }
      } else if (options_.enable_activities) {
        // Synchronize entry points drain completed activity buffers.
        device_->clock().advance(options_.sync_flush_overhead_ns);
      }
    });
  }
}

void CuptiProfiler::flush_activities() {
  auto drained = device_->drain_activities();
  for (auto& rec : drained) {
    if (!options_.metrics.empty() && rec.type == sim::ActivityRecord::Type::kKernel) {
      MetricValues values;
      for (const auto& m : options_.metrics) {
        if (m == kFlopCountSp) values[m] = rec.kernel.flops;
        if (m == kDramReadBytes) values[m] = rec.kernel.dram_read_bytes;
        if (m == kDramWriteBytes) values[m] = rec.kernel.dram_write_bytes;
        if (m == kAchievedOccupancy) values[m] = rec.achieved_occupancy;
      }
      metrics_.emplace(rec.correlation_id, std::move(values));
    }
    if (options_.enable_activities) activities_.push_back(std::move(rec));
  }
}

void CuptiProfiler::stop() {
  if (!running_) return;
  running_ = false;

  // Completed work must be drained before detaching.
  device_->synchronize();
  flush_activities();
  device_->clock().advance(options_.flush_overhead_ns);

  if (options_.enable_api_callbacks) device_->unsubscribe(subscription_);
  device_->set_serialized(saved_serialized_);
  device_->set_replay_count(saved_replay_);
  device_->set_record_activities(saved_record_activities_);
}

}  // namespace xsp::cupti
