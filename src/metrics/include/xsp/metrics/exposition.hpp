// Prometheus text-exposition parsing (format 0.0.4) — the read side of
// registry.hpp's write_prometheus().
//
// Tools that scrape a /metrics endpoint (xsp_top --daemon) need to get
// the value out of lines like
//
//   xsp_ingested_spans_total 4242
//   xsp_connection_spans_total{conn="3"} 17
//   xsp_producer_heartbeat_age_seconds{conn="3"} 0.25 1723111465000
//
// where the third, optional field is a millisecond timestamp. Splitting a
// line at its *last* space — the obvious one-liner — silently parses the
// timestamp as the value whenever one is present, which is exactly the
// bug this module replaces. The grammar is parsed left-to-right instead:
// name, optional `{...}` label block (quote- and escape-aware: a label
// value may contain spaces, braces, and escaped quotes), value, optional
// timestamp. Malformed lines report as such instead of yielding garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace xsp::metrics {

/// One parsed sample line. `name` and `labels` are views into the caller's
/// line — valid only while the scraped body is.
struct ExpositionSample {
  /// Metric name, suffixes included ("xsp_foo_total", "xsp_bar_bucket").
  std::string_view name;
  /// Raw text between the braces (`k="v",k2="v2"`), without the braces;
  /// empty for an unlabeled sample. Decode one key with label_value().
  std::string_view labels;
  double value = 0;
  /// Optional trailing timestamp (milliseconds since epoch).
  bool has_timestamp = false;
  std::int64_t timestamp_ms = 0;
};

/// Parse one line of the text exposition. Returns true and fills `out`
/// for a sample line; false for blank lines, `#` comment/metadata lines,
/// and malformed input (no value, unterminated label block, trailing
/// garbage). A trailing '\r' (CRLF transport) is tolerated.
[[nodiscard]] bool parse_exposition_line(std::string_view line, ExpositionSample& out);

/// Look up `key` in a raw label block (`k="v",...`) and return its value
/// with exposition escapes (\\, \", \n) decoded; nullopt when absent.
[[nodiscard]] std::optional<std::string> label_value(std::string_view labels,
                                                     std::string_view key);

}  // namespace xsp::metrics
