// Self-metrics registry: the profiler observing itself.
//
// The stack profiles workloads across process boundaries, but its own health
// (publish/drop counts, drain latency, outbox depth, per-producer liveness)
// was scattered across RunTrace fields, wire footers, and greppable stats
// lines. This module gives every layer one registry of named, labeled series
// with a Prometheus text-exposition writer, so a running fleet is watchable
// by machines (`GET /metrics` on xsp_collectd, `xsp_top --daemon`) and the
// adaptive sampling/rebalancing loops on the roadmap have a substrate to
// read from.
//
// Design constraints, in the same spirit as analysis::OnlineAnalyzer:
//   * lock-cheap updates — Counter/Gauge/Histogram are plain relaxed
//     atomics; inc() is one fetch_add with no registry involvement,
//   * zero steady-state allocation — label sets intern as StrIds and are
//     rendered to exposition text once at registration; a scrape appends
//     into a caller-owned reusable buffer,
//   * two-way lifetime safety — instrument handles are shared_ptrs (a
//     component may outlive the registry), and callback series are removed
//     by RAII handles holding weak_ptrs (a registry may outlive the
//     component).
//
// Callback series exist so hot paths need no new code at all: a component
// registers closures over counters it already maintains (TraceServer's
// drained/sampled atomics, RemoteSink's drop accounting) and pays nothing
// until a scrape samples them under the registry lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "xsp/common/string_table.hpp"

namespace xsp::metrics {

/// Series kind, mirrored into the exposition `# TYPE` header.
enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One label dimension. Keys and values intern as StrIds so registering
/// the same label set twice costs no new storage and series identity
/// compares ids, not bytes.
struct Label {
  common::StrId key;
  common::StrId value;
};
using Labels = std::vector<Label>;

/// Monotonic counter. inc() is a single relaxed fetch_add — safe from any
/// thread, never resets, never goes down.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written signed value (queue depths, connection counts, flags).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over unsigned observations (latencies in ns,
/// sizes in bytes). Bucket upper bounds are fixed at registration, so
/// observe() is an upper_bound over a small immutable array plus three
/// relaxed fetch_adds — no locks, no allocation, safe from any thread.
/// Exposition renders cumulative `_bucket{le=...}` lines plus `_sum` and
/// `_count`, per the Prometheus histogram convention.
class Histogram {
 public:
  /// `bounds` must be strictly ascending inclusive upper bounds; a final
  /// +Inf bucket is implicit.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Decade latency bounds in nanoseconds, 1µs .. 1s — the default for
/// drain/scrape duration histograms.
[[nodiscard]] std::vector<std::uint64_t> latency_buckets_ns();

/// Callback sample: invoked at scrape time, under the registry lock. Keep
/// it cheap (read an atomic, take one short component lock) and never
/// touch the registry from inside it.
using Sample = std::function<double()>;

namespace detail {
struct State;
}  // namespace detail

class Registry;

/// RAII registration of one callback series. Destroying (or release()-ing)
/// the handle removes the series; holding only a weak_ptr to the registry
/// state, it is safe in either destruction order.
class CallbackHandle {
 public:
  CallbackHandle() = default;
  CallbackHandle(CallbackHandle&& other) noexcept;
  CallbackHandle& operator=(CallbackHandle&& other) noexcept;
  CallbackHandle(const CallbackHandle&) = delete;
  CallbackHandle& operator=(const CallbackHandle&) = delete;
  ~CallbackHandle() { release(); }

  /// Unregister now. After release() returns, the sample callback is
  /// guaranteed not to be running and will never run again (removal
  /// serializes with scrapes on the registry lock). Idempotent.
  void release() noexcept;

 private:
  friend class Registry;
  CallbackHandle(std::weak_ptr<detail::State> state, std::uint64_t id)
      : state_(std::move(state)), id_(id) {}

  std::weak_ptr<detail::State> state_;
  std::uint64_t id_ = 0;
};

/// The registry: named families of labeled series. Registration is
/// idempotent — the same (name, labels) returns the same instrument — and
/// type-checked: re-registering a name under a different kind, or with
/// different histogram bounds, throws std::logic_error. Metric names must
/// match [a-zA-Z_:][a-zA-Z0-9_:]* (std::invalid_argument otherwise).
///
/// Families expose in registration order; series within a family in their
/// own registration order — scrapes are deterministic and diffable.
class Registry {
 public:
  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (or find) a counter/gauge/histogram series. The returned
  /// shared_ptr keeps the instrument alive even if the registry dies
  /// first, so cached handles never dangle.
  std::shared_ptr<Counter> counter(std::string_view name, std::string_view help,
                                   const Labels& labels = {});
  std::shared_ptr<Gauge> gauge(std::string_view name, std::string_view help,
                               const Labels& labels = {});
  std::shared_ptr<Histogram> histogram(std::string_view name, std::string_view help,
                                       std::vector<std::uint64_t> bounds,
                                       const Labels& labels = {});

  /// Register a callback-backed series (kind kCounter or kGauge;
  /// kHistogram throws). The sample runs at scrape time under the
  /// registry lock. Duplicate (name, labels) throws std::logic_error —
  /// a callback series has exactly one owner.
  [[nodiscard]] CallbackHandle callback(std::string_view name, std::string_view help,
                                        Kind kind, const Labels& labels, Sample sample);

  /// Append the full Prometheus text exposition (format 0.0.4) to `out`.
  /// Reuse one string across scrapes to keep the steady state
  /// allocation-free once it has grown to scrape size.
  void write_prometheus(std::string& out) const;
  [[nodiscard]] std::string text() const;

  /// Number of live series across all families (callback series included).
  [[nodiscard]] std::size_t series_count() const;

 private:
  std::shared_ptr<detail::State> state_;
};

// Exposition building blocks, shared with components (net::CollectorService)
// that format dynamic per-connection series straight into the scrape buffer
// without registering them.

/// `k="v",k2="v2"` (no braces). Values are escaped per the exposition rules.
[[nodiscard]] std::string render_label_text(const Labels& labels);
/// Append `v` with `\\` -> `\\\\`, `"` -> `\\"`, newline -> `\\n`.
void append_escaped_label_value(std::string& out, std::string_view v);
/// Append a number: integral doubles in [-2^53, 2^53] print as integers,
/// everything else via %.10g.
void append_metric_value(std::string& out, double v);
/// `# HELP name help\n# TYPE name counter|gauge|histogram\n`.
void append_family_header(std::string& out, std::string_view name, std::string_view help,
                          Kind kind);
/// `name{label_text} value\n` (no braces when label_text is empty).
void append_sample_line(std::string& out, std::string_view name,
                        std::string_view label_text, double value);
void append_sample_line(std::string& out, std::string_view name,
                        std::string_view label_text, std::uint64_t value);

}  // namespace xsp::metrics
