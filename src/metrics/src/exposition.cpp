#include "xsp/metrics/exposition.hpp"

#include <cerrno>
#include <cstdlib>

namespace xsp::metrics {

namespace {

bool is_space(char c) { return c == ' ' || c == '\t'; }

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && (is_space(s.back()) || s.back() == '\r')) s.remove_suffix(1);
  return s;
}

/// Index one past the closing '}' of a label block starting at `s[0] ==
/// '{'`, honoring quoted values (which may contain spaces, commas, and
/// braces) and backslash escapes inside them; npos when unterminated.
std::size_t label_block_end(std::string_view s) {
  bool in_quotes = false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    const char c = s[i];
    if (in_quotes) {
      if (c == '\\') {
        ++i;  // escaped char, even an escaped quote
      } else if (c == '"') {
        in_quotes = false;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == '}') {
      return i + 1;
    }
  }
  return std::string_view::npos;
}

}  // namespace

bool parse_exposition_line(std::string_view line, ExpositionSample& out) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return false;

  // Name: up to the label block or the first whitespace.
  std::size_t name_end = 0;
  while (name_end < line.size() && line[name_end] != '{' && !is_space(line[name_end])) {
    ++name_end;
  }
  if (name_end == 0) return false;
  out.name = line.substr(0, name_end);
  std::string_view rest = line.substr(name_end);

  out.labels = {};
  if (!rest.empty() && rest.front() == '{') {
    const std::size_t end = label_block_end(rest);
    if (end == std::string_view::npos) return false;
    out.labels = rest.substr(1, end - 2);
    rest.remove_prefix(end);
  }

  while (!rest.empty() && is_space(rest.front())) rest.remove_prefix(1);
  if (rest.empty()) return false;  // a name alone is not a sample

  // Value token: strtod accepts the exposition's full value grammar
  // (decimals, scientific notation, +Inf/-Inf/NaN) but must consume the
  // whole token — "12abc" is malformed, not 12.
  std::size_t value_end = 0;
  while (value_end < rest.size() && !is_space(rest[value_end])) ++value_end;
  const std::string value_token(rest.substr(0, value_end));
  char* end = nullptr;
  errno = 0;
  out.value = std::strtod(value_token.c_str(), &end);
  if (end != value_token.c_str() + value_token.size() || end == value_token.c_str()) {
    return false;
  }
  rest.remove_prefix(value_end);

  // Optional timestamp (milliseconds). Anything after it is garbage.
  while (!rest.empty() && is_space(rest.front())) rest.remove_prefix(1);
  out.has_timestamp = false;
  out.timestamp_ms = 0;
  if (!rest.empty()) {
    const std::string ts_token(rest);
    errno = 0;
    const long long ts = std::strtoll(ts_token.c_str(), &end, 10);
    if (end != ts_token.c_str() + ts_token.size() || errno == ERANGE) return false;
    out.has_timestamp = true;
    out.timestamp_ms = ts;
  }
  return true;
}

std::optional<std::string> label_value(std::string_view labels, std::string_view key) {
  std::size_t pos = 0;
  while (pos < labels.size()) {
    // Key runs to '='; values are always quoted by the writers we read.
    const std::size_t eq = labels.find('=', pos);
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view k = trim(labels.substr(pos, eq - pos));
    std::size_t vstart = eq + 1;
    if (vstart >= labels.size() || labels[vstart] != '"') return std::nullopt;
    ++vstart;
    std::string value;
    std::size_t i = vstart;
    for (; i < labels.size() && labels[i] != '"'; ++i) {
      char c = labels[i];
      if (c == '\\' && i + 1 < labels.size()) {
        ++i;
        c = labels[i] == 'n' ? '\n' : labels[i];
      }
      value += c;
    }
    if (i >= labels.size()) return std::nullopt;  // unterminated value
    if (k == key) return value;
    pos = i + 1;
    if (pos < labels.size() && labels[pos] == ',') ++pos;
  }
  return std::nullopt;
}

}  // namespace xsp::metrics
