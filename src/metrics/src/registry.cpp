#include "xsp/metrics/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace xsp::metrics {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<std::uint64_t> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("metrics: histogram bounds must be strictly ascending");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(std::uint64_t v) noexcept {
  // Buckets are inclusive upper bounds (`le`): the first bound >= v.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> latency_buckets_ns() {
  return {1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000, 1'000'000'000};
}

// ---------------------------------------------------------------------------
// Registry state

namespace detail {

struct Series {
  std::string label_text;  // rendered `k="v",...`, no braces
  std::shared_ptr<Counter> counter;
  std::shared_ptr<Gauge> gauge;
  std::shared_ptr<Histogram> histogram;
  Sample sample;  // callback series when set
  std::uint64_t callback_id = 0;
};

struct Family {
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::vector<Series> series;
};

struct State {
  mutable std::mutex mu;
  std::vector<Family> families;  // exposition order == registration order
  std::uint64_t next_callback_id = 1;

  Family& family(std::string_view name, std::string_view help, Kind kind) {
    if (!valid_metric_name(name)) {
      throw std::invalid_argument("metrics: invalid metric name: " + std::string(name));
    }
    for (Family& f : families) {
      if (f.name == name) {
        if (f.kind != kind) {
          throw std::logic_error("metrics: " + f.name + " already registered as " +
                                 kind_name(f.kind) + ", requested " + kind_name(kind));
        }
        return f;
      }
    }
    Family f;
    f.name.assign(name);
    f.help.assign(help);
    f.kind = kind;
    families.push_back(std::move(f));
    return families.back();
  }

  Series* find_series(Family& f, const std::string& label_text) {
    for (Series& s : f.series) {
      if (s.label_text == label_text) return &s;
    }
    return nullptr;
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// CallbackHandle

CallbackHandle::CallbackHandle(CallbackHandle&& other) noexcept
    : state_(std::move(other.state_)), id_(other.id_) {
  other.state_.reset();
  other.id_ = 0;
}

CallbackHandle& CallbackHandle::operator=(CallbackHandle&& other) noexcept {
  if (this != &other) {
    release();
    state_ = std::move(other.state_);
    id_ = other.id_;
    other.state_.reset();
    other.id_ = 0;
  }
  return *this;
}

void CallbackHandle::release() noexcept {
  const auto state = state_.lock();
  state_.reset();
  if (!state || id_ == 0) return;
  std::lock_guard<std::mutex> lk(state->mu);
  for (auto fit = state->families.begin(); fit != state->families.end(); ++fit) {
    auto& series = fit->series;
    for (auto sit = series.begin(); sit != series.end(); ++sit) {
      if (sit->callback_id == id_) {
        series.erase(sit);
        if (series.empty()) state->families.erase(fit);
        id_ = 0;
        return;
      }
    }
  }
  id_ = 0;
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() : state_(std::make_shared<detail::State>()) {}

std::shared_ptr<Counter> Registry::counter(std::string_view name, std::string_view help,
                                           const Labels& labels) {
  const std::string label_text = render_label_text(labels);
  std::lock_guard<std::mutex> lk(state_->mu);
  detail::Family& f = state_->family(name, help, Kind::kCounter);
  if (detail::Series* s = state_->find_series(f, label_text)) {
    if (!s->counter) {
      throw std::logic_error("metrics: " + f.name + "{" + label_text +
                             "} already registered as a callback series");
    }
    return s->counter;
  }
  detail::Series s;
  s.label_text = label_text;
  s.counter = std::make_shared<Counter>();
  f.series.push_back(std::move(s));
  return f.series.back().counter;
}

std::shared_ptr<Gauge> Registry::gauge(std::string_view name, std::string_view help,
                                       const Labels& labels) {
  const std::string label_text = render_label_text(labels);
  std::lock_guard<std::mutex> lk(state_->mu);
  detail::Family& f = state_->family(name, help, Kind::kGauge);
  if (detail::Series* s = state_->find_series(f, label_text)) {
    if (!s->gauge) {
      throw std::logic_error("metrics: " + f.name + "{" + label_text +
                             "} already registered as a callback series");
    }
    return s->gauge;
  }
  detail::Series s;
  s.label_text = label_text;
  s.gauge = std::make_shared<Gauge>();
  f.series.push_back(std::move(s));
  return f.series.back().gauge;
}

std::shared_ptr<Histogram> Registry::histogram(std::string_view name, std::string_view help,
                                               std::vector<std::uint64_t> bounds,
                                               const Labels& labels) {
  const std::string label_text = render_label_text(labels);
  std::lock_guard<std::mutex> lk(state_->mu);
  detail::Family& f = state_->family(name, help, Kind::kHistogram);
  if (detail::Series* s = state_->find_series(f, label_text)) {
    if (s->histogram->bounds() != bounds) {
      throw std::logic_error("metrics: " + f.name +
                             " re-registered with different histogram bounds");
    }
    return s->histogram;
  }
  detail::Series s;
  s.label_text = label_text;
  s.histogram = std::make_shared<Histogram>(std::move(bounds));
  f.series.push_back(std::move(s));
  return f.series.back().histogram;
}

CallbackHandle Registry::callback(std::string_view name, std::string_view help, Kind kind,
                                  const Labels& labels, Sample sample) {
  if (kind == Kind::kHistogram) {
    throw std::logic_error("metrics: callback histograms are not supported");
  }
  if (!sample) throw std::invalid_argument("metrics: null callback sample");
  const std::string label_text = render_label_text(labels);
  std::lock_guard<std::mutex> lk(state_->mu);
  detail::Family& f = state_->family(name, help, kind);
  if (state_->find_series(f, label_text) != nullptr) {
    throw std::logic_error("metrics: " + f.name + "{" + label_text +
                           "} registered twice");
  }
  detail::Series s;
  s.label_text = label_text;
  s.sample = std::move(sample);
  s.callback_id = state_->next_callback_id++;
  f.series.push_back(std::move(s));
  return CallbackHandle(state_, f.series.back().callback_id);
}

void Registry::write_prometheus(std::string& out) const {
  std::lock_guard<std::mutex> lk(state_->mu);
  for (const detail::Family& f : state_->families) {
    append_family_header(out, f.name, f.help, f.kind);
    for (const detail::Series& s : f.series) {
      if (s.counter) {
        append_sample_line(out, f.name, s.label_text, s.counter->value());
      } else if (s.gauge) {
        const std::int64_t v = s.gauge->value();
        out.append(f.name);
        if (!s.label_text.empty()) {
          out.push_back('{');
          out.append(s.label_text);
          out.push_back('}');
        }
        out.push_back(' ');
        out.append(std::to_string(v));
        out.push_back('\n');
      } else if (s.histogram) {
        const Histogram& h = *s.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += h.bucket_count(i);
          out.append(f.name);
          out.append("_bucket{");
          if (!s.label_text.empty()) {
            out.append(s.label_text);
            out.push_back(',');
          }
          out.append("le=\"");
          if (i < h.bounds().size()) {
            out.append(std::to_string(h.bounds()[i]));
          } else {
            out.append("+Inf");
          }
          out.append("\"} ");
          out.append(std::to_string(cumulative));
          out.push_back('\n');
        }
        append_sample_line(out, std::string(f.name) + "_sum", s.label_text, h.sum());
        append_sample_line(out, std::string(f.name) + "_count", s.label_text, h.count());
      } else if (s.sample) {
        append_sample_line(out, f.name, s.label_text, s.sample());
      }
    }
  }
}

std::string Registry::text() const {
  std::string out;
  write_prometheus(out);
  return out;
}

std::size_t Registry::series_count() const {
  std::lock_guard<std::mutex> lk(state_->mu);
  std::size_t n = 0;
  for (const detail::Family& f : state_->families) n += f.series.size();
  return n;
}

// ---------------------------------------------------------------------------
// Exposition helpers

std::string render_label_text(const Labels& labels) {
  std::string out;
  for (const Label& l : labels) {
    if (!out.empty()) out.push_back(',');
    out.append(l.key.view());
    out.append("=\"");
    append_escaped_label_value(out, l.value.view());
    out.push_back('"');
  }
  return out;
}

void append_escaped_label_value(std::string& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '"': out.append("\\\""); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
}

void append_metric_value(std::string& out, double v) {
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (std::nearbyint(v) == v && v <= kExact && v >= -kExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out.append(buf);
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out.append(buf);
}

void append_family_header(std::string& out, std::string_view name, std::string_view help,
                          Kind kind) {
  out.append("# HELP ");
  out.append(name);
  out.push_back(' ');
  out.append(help);
  out.append("\n# TYPE ");
  out.append(name);
  out.push_back(' ');
  out.append(kind_name(kind));
  out.push_back('\n');
}

void append_sample_line(std::string& out, std::string_view name,
                        std::string_view label_text, double value) {
  out.append(name);
  if (!label_text.empty()) {
    out.push_back('{');
    out.append(label_text);
    out.push_back('}');
  }
  out.push_back(' ');
  append_metric_value(out, value);
  out.push_back('\n');
}

void append_sample_line(std::string& out, std::string_view name,
                        std::string_view label_text, std::uint64_t value) {
  out.append(name);
  if (!label_text.empty()) {
    out.push_back('{');
    out.append(label_text);
    out.push_back('}');
  }
  out.push_back(' ');
  out.append(std::to_string(value));
  out.push_back('\n');
}

}  // namespace xsp::metrics
